package contextpref

import (
	"testing"

	"contextpref/internal/distance"
	"contextpref/internal/profiletree"
	"contextpref/internal/telemetry"
)

// BenchmarkResolveInstrumentation quantifies the telemetry overhead on
// the resolution hot path over the real profile tree: "off" runs the
// plain tree, "on" attaches the full cp_resolve_* instrument set
// (outcome counter vec, two counters, one histogram). The telemetry
// layer's acceptance bar is "on" within 5% of "off".
func BenchmarkResolveInstrumentation(b *testing.B) {
	m := distance.Jaccard{}
	run := func(b *testing.B, metrics *profiletree.Metrics) {
		fx := newRealFixture(b)
		fx.tree.SetMetrics(metrics)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q := fx.coverQs[i%len(fx.coverQs)]
			if _, _, _, err := fx.tree.Resolve(q, m); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) {
		reg := telemetry.NewRegistry()
		run(b, &profiletree.Metrics{
			Resolutions:     reg.CounterVec("bench_resolve_total", "", "outcome"),
			CellsVisited:    reg.Counter("bench_resolve_cells_total", ""),
			CandidatesFound: reg.Counter("bench_resolve_candidates_total", ""),
			CellsPerResolve: reg.Histogram("bench_resolve_cells", "", telemetry.ExpBuckets(1, 2, 14)),
		})
	})
}
