package contextpref

// Concurrency test for the degraded-mode state machine: probe-driven
// recovery (Run), MarkDegraded/MarkHealthy storms, and Gate/Degraded
// readers all race under -race, while the transition counters stay
// monotonic and consistent with the observed callbacks — no transition
// is lost or double-counted.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestHealthProberRace(t *testing.T) {
	h := NewHealth()
	reg := NewTelemetryRegistry()
	RegisterHealthTelemetry(h, reg)
	trans := reg.CounterVec("cp_health_transitions_total", "", "to")
	degradedC, healthyC := trans.With("degraded"), trans.With("healthy")
	probes := reg.CounterVec("cp_health_probe_total", "", "outcome")

	var cbDegraded, cbHealthy atomic.Uint64
	h.OnChange(func(degraded bool, _ error) {
		if degraded {
			cbDegraded.Add(1)
		} else {
			cbHealthy.Add(1)
		}
	})

	// Prober: recovers the tracker whenever probes succeed.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var probeFails atomic.Bool
	var proberDone sync.WaitGroup
	proberDone.Add(1)
	go func() {
		defer proberDone.Done()
		h.Run(ctx, time.Millisecond, func() error {
			if probeFails.Load() {
				return errors.New("store still broken")
			}
			return nil
		})
	}()

	// Sampler: transition counters must never move backwards.
	samplerStop := make(chan struct{})
	var samplerDone sync.WaitGroup
	samplerDone.Add(1)
	go func() {
		defer samplerDone.Done()
		var lastD, lastH uint64
		for {
			d, hv := degradedC.Value(), healthyC.Value()
			if d < lastD || hv < lastH {
				t.Errorf("transition counters went backwards: degraded %d->%d healthy %d->%d",
					lastD, d, lastH, hv)
				return
			}
			lastD, lastH = d, hv
			select {
			case <-samplerStop:
				return
			case <-time.After(100 * time.Microsecond):
			}
		}
	}()

	// The storm: concurrent transitions and readers.
	cause := errors.New("journal write failed")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch (w + i) % 4 {
				case 0:
					h.MarkDegraded(cause)
				case 1:
					h.MarkHealthy()
				case 2:
					if err := h.Gate(); err != nil {
						var de *DegradedError
						if !errors.As(err, &de) {
							t.Errorf("Gate() = %v, want *DegradedError", err)
						}
					}
				case 3:
					h.Degraded()
					probeFails.Store(i%2 == 0)
				}
			}
		}(w)
	}
	wg.Wait()

	// Probe-driven recovery: degrade once more with probes passing and
	// wait for Run to flip the tracker healthy.
	probeFails.Store(false)
	h.MarkDegraded(cause)
	deadline := time.Now().Add(5 * time.Second)
	for h.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("prober never recovered the tracker")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	proberDone.Wait()
	close(samplerStop)
	samplerDone.Wait()

	if h.Degraded() {
		t.Error("tracker degraded after recovery")
	}
	if err := h.Gate(); err != nil {
		t.Errorf("Gate() after recovery = %v, want nil", err)
	}
	if probes.With("ok").Value() == 0 {
		t.Error("cp_health_probe_total{outcome=ok} = 0, want > 0")
	}

	// Transitions strictly alternate degraded -> healthy -> degraded...,
	// so losing one would break these invariants.
	d, hv := degradedC.Value(), healthyC.Value()
	if d == 0 {
		t.Fatal("no degraded transitions recorded")
	}
	if hv > d || d-hv > 1 {
		t.Errorf("transition counts degraded=%d healthy=%d — must alternate (0 <= d-h <= 1)", d, hv)
	}
	if cbDegraded.Load() != d || cbHealthy.Load() != hv {
		t.Errorf("callbacks saw %d/%d transitions, counters recorded %d/%d — transitions lost",
			cbDegraded.Load(), cbHealthy.Load(), d, hv)
	}
}
