// Package contextpref is a context-aware preference database system: a
// from-scratch Go implementation of "Adding Context to Preferences"
// (Stefanidis, Pitoura, Vassiliadis — ICDE 2007).
//
// Context is modeled as a set of multidimensional parameters whose
// domains form hierarchies of levels (e.g. Region ≺ City ≺ Country ≺
// ALL). Users attach interest scores to attribute values of a relation
// under context descriptors; queries carry (implicit or explicit)
// context; the system resolves each query context to the most relevant
// stored preferences — exact matches first, then the most similar
// covering states under a hierarchy- or Jaccard-based distance — and
// ranks the relation's tuples accordingly. Preferences are indexed in a
// profile tree (one trie level per context parameter), and query
// results can be cached in a context query tree.
//
// The System type wires everything together:
//
//	env, _ := contextpref.NewEnvironment(locationParam, temperatureParam, companyParam)
//	sys, _ := contextpref.NewSystem(env, pointsOfInterest)
//	_ = sys.AddPreference(contextpref.MustPreference(
//	    contextpref.MustDescriptor(
//	        contextpref.Eq("location", "Plaka"),
//	        contextpref.Eq("temperature", "warm")),
//	    contextpref.Clause{Attr: "name", Op: contextpref.OpEq, Val: contextpref.String("Acropolis")},
//	    0.8))
//	res, _ := sys.Query(contextpref.Query{TopK: 20}, currentContext)
//
// The subpackages under internal/ hold the implementation: hierarchy
// (level lattices), ctxmodel (states and descriptors), distance
// (similarity metrics), preference (profiles and conflicts),
// profiletree (the index and the Search_CS algorithm), relation (the
// storage substrate), query (Rank_CS), querytree (result caching),
// cpql (the textual query language), qualitative (score-free dominance
// rules), and dataset/usability/experiments (the paper's evaluation).
// The public httpapi package serves a System — or a multi-user
// Directory of them — over HTTP.
package contextpref

import (
	"contextpref/internal/cpql"
	"contextpref/internal/ctxmodel"
	"contextpref/internal/distance"
	"contextpref/internal/hierarchy"
	"contextpref/internal/preference"
	"contextpref/internal/profiletree"
	"contextpref/internal/qualitative"
	"contextpref/internal/query"
	"contextpref/internal/querytree"
	"contextpref/internal/relation"
)

// Context model types.
type (
	// Hierarchy is a chain of levels over a tree of values; see
	// NewHierarchy and UniformHierarchy.
	Hierarchy = hierarchy.Hierarchy
	// HierarchyBuilder assembles hierarchies from value paths.
	HierarchyBuilder = hierarchy.Builder
	// Parameter is a context parameter backed by a hierarchy.
	Parameter = ctxmodel.Parameter
	// Environment is an ordered set of context parameters.
	Environment = ctxmodel.Environment
	// State is an (extended) context state: one value per parameter.
	State = ctxmodel.State
	// ParamDescriptor constrains one context parameter (=, ∈, range).
	ParamDescriptor = ctxmodel.ParamDescriptor
	// Descriptor is a conjunctive composite context descriptor.
	Descriptor = ctxmodel.Descriptor
	// ExtendedDescriptor is a disjunction of composite descriptors.
	ExtendedDescriptor = ctxmodel.ExtendedDescriptor
)

// Preference types.
type (
	// Clause is an attribute clause "A θ a" over the relation.
	Clause = preference.Clause
	// Preference is (descriptor, clause, interest score).
	Preference = preference.Preference
	// Profile is a set of non-conflicting preferences.
	Profile = preference.Profile
	// ConflictError reports a Def. 6 preference conflict.
	ConflictError = preference.ConflictError
)

// Storage substrate types.
type (
	// Value is a typed scalar (string/int/float/bool).
	Value = relation.Value
	// Kind is a value type tag.
	Kind = relation.Kind
	// CmpOp is a comparison operator θ.
	CmpOp = relation.CmpOp
	// Column describes one relation attribute.
	Column = relation.Column
	// Schema is an ordered set of typed columns.
	Schema = relation.Schema
	// Tuple is one row of a relation.
	Tuple = relation.Tuple
	// Relation is an in-memory table.
	Relation = relation.Relation
	// Predicate is a simple selection condition.
	Predicate = relation.Predicate
	// ScoredTuple is a tuple annotated with its interest score.
	ScoredTuple = relation.ScoredTuple
	// Combiner merges duplicate-tuple scores (max/min/avg).
	Combiner = relation.Combiner
)

// Index, metric and query types.
type (
	// ProfileTree indexes preferences by context state.
	ProfileTree = profiletree.Tree
	// SequentialStore is the flat-scan baseline store.
	SequentialStore = profiletree.Sequential
	// Candidate is a covering state found during context resolution.
	Candidate = profiletree.Candidate
	// Leaf is a (clause, score) entry of the profile tree.
	Leaf = profiletree.Leaf
	// Metric measures context-state similarity.
	Metric = distance.Metric
	// HierarchyDistance is the level-based metric (Defs. 13–15).
	HierarchyDistance = distance.Hierarchy
	// JaccardDistance is the descendant-overlap metric (Defs. 16–17).
	JaccardDistance = distance.Jaccard
	// Query is a contextual query: base selection + context.
	Query = query.Contextual
	// Result is a ranked, context-resolved answer.
	Result = query.Result
	// Resolution explains how one query state was matched.
	Resolution = query.Resolution
	// QueryCache is the context query tree (result cache).
	QueryCache = querytree.Cache
	// CacheStats reports cache effectiveness.
	CacheStats = querytree.Stats
)

// Qualitative extension (Section 3.2's "both quantitative and
// qualitative approaches"): contextual dominance rules, winnow and
// stratification.
type (
	// QualitativeRule is (descriptor, better-clause ≻ worse-clause).
	QualitativeRule = qualitative.Rule
	// QualitativeProfile stores qualitative rules by context state.
	QualitativeProfile = qualitative.Profile
	// QualitativeResult is a context-resolved winnow/stratification.
	QualitativeResult = qualitative.Result
)

// NewQualitativeProfile creates an empty qualitative profile.
func NewQualitativeProfile(e *Environment) (*QualitativeProfile, error) {
	return qualitative.NewProfile(e)
}

// QualitativeQuery resolves the context state against the qualitative
// profile and returns the winnow (best matches only) plus the full
// preference stratification of the relation.
func QualitativeQuery(p *QualitativeProfile, rel *Relation, s State, m Metric) (*QualitativeResult, error) {
	return qualitative.Query(p, rel, s, m)
}

// Winnow returns the undominated tuples of the relation (restricted to
// idxs when non-nil) under the rules — Chomicki's winnow operator.
func Winnow(rel *Relation, rules []QualitativeRule, idxs []int) ([]int, error) {
	return qualitative.Winnow(rel, rules, idxs)
}

// Value constructors and operator constants.
var (
	// String builds a string value.
	String = relation.S
	// Int builds an integer value.
	Int = relation.I
	// Float builds a float value.
	Float = relation.F
	// Bool builds a boolean value.
	Bool = relation.B
)

// Comparison operators for clauses and predicates.
const (
	OpEq = relation.OpEq
	OpNe = relation.OpNe
	OpLt = relation.OpLt
	OpLe = relation.OpLe
	OpGt = relation.OpGt
	OpGe = relation.OpGe
)

// Value kinds.
const (
	KindString = relation.KindString
	KindInt    = relation.KindInt
	KindFloat  = relation.KindFloat
	KindBool   = relation.KindBool
)

// Score combiners.
const (
	CombineMax = relation.CombineMax
	CombineMin = relation.CombineMin
	CombineAvg = relation.CombineAvg
)

// All is the top value of every hierarchy.
const All = hierarchy.All

// NewHierarchy starts a hierarchy builder with the given level names,
// ordered from the detailed level upward; ALL is appended
// automatically. Add full value paths with Add and finish with Build.
func NewHierarchy(name string, levels ...string) *HierarchyBuilder {
	return hierarchy.NewBuilder(name, levels...)
}

// UniformHierarchy builds a synthetic hierarchy with the given level
// fanouts (the detailed domain is their product).
func UniformHierarchy(name string, fanouts ...int) (*Hierarchy, error) {
	return hierarchy.Uniform(name, fanouts...)
}

// NewParameter creates a context parameter over a hierarchy.
func NewParameter(name string, h *Hierarchy) (*Parameter, error) {
	return ctxmodel.NewParameter(name, h)
}

// NewEnvironment creates a context environment over the parameters.
func NewEnvironment(params ...*Parameter) (*Environment, error) {
	return ctxmodel.NewEnvironment(params...)
}

// Eq builds the parameter descriptor "param = value".
func Eq(param, value string) ParamDescriptor { return ctxmodel.Eq(param, value) }

// In builds the parameter descriptor "param ∈ {values...}".
func In(param string, values ...string) ParamDescriptor { return ctxmodel.In(param, values...) }

// Between builds the parameter descriptor "param ∈ [lo, hi]".
func Between(param, lo, hi string) ParamDescriptor { return ctxmodel.Between(param, lo, hi) }

// NewDescriptor builds a composite context descriptor (at most one
// parameter descriptor per parameter; absent parameters mean "all").
func NewDescriptor(pds ...ParamDescriptor) (Descriptor, error) {
	return ctxmodel.NewDescriptor(pds...)
}

// MustDescriptor is NewDescriptor that panics on error.
func MustDescriptor(pds ...ParamDescriptor) Descriptor { return ctxmodel.MustDescriptor(pds...) }

// NewPreference validates and builds a contextual preference.
func NewPreference(d Descriptor, c Clause, score float64) (Preference, error) {
	return preference.New(d, c, score)
}

// MustPreference is NewPreference that panics on error.
func MustPreference(d Descriptor, c Clause, score float64) Preference {
	return preference.MustNew(d, c, score)
}

// NewProfile creates an empty profile over the environment.
func NewProfile(e *Environment) (*Profile, error) { return preference.NewProfile(e) }

// NewSchema builds a relation schema.
func NewSchema(name string, cols ...Column) (*Schema, error) {
	return relation.NewSchema(name, cols...)
}

// NewRelation creates an empty relation over the schema.
func NewRelation(s *Schema) *Relation { return relation.New(s) }

// NewProfileTree creates an empty profile tree; order maps tree levels
// to environment parameter indexes (nil = identity). Place parameters
// with larger domains lower in the tree to minimize its size.
func NewProfileTree(e *Environment, order []int) (*ProfileTree, error) {
	return profiletree.New(e, order)
}

// MetricByName returns "hierarchy" or "jaccard".
func MetricByName(name string) (Metric, error) { return distance.ByName(name) }

// FormatPreference renders a preference in the line encoding the CLI
// uses ("[location = Plaka] => name = \"Acropolis\" : 0.8").
func FormatPreference(p Preference) string { return preference.Format(p) }

// ParsePreference reads a preference from the line encoding.
func ParsePreference(line string) (Preference, error) { return preference.ParseLine(line) }

// ParseQuery reads a contextual query from the cpql language:
// "[top K] [where pred {and pred}] [context composite {or composite}]".
func ParseQuery(text string) (Query, error) { return cpql.Parse(text) }

// FormatQuery renders a query back into the cpql language.
func FormatQuery(q Query) string { return cpql.Format(q) }

// ReferenceEnvironment builds the paper's running example environment
// (location, temperature, accompanying_people with the Fig. 2
// hierarchies); handy for experiments and examples.
func ReferenceEnvironment() (*Environment, error) { return ctxmodel.ReferenceEnvironment() }
