package preference

import (
	"errors"
	"strings"
	"testing"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/relation"
)

func env(t *testing.T) *ctxmodel.Environment {
	t.Helper()
	e, err := ctxmodel.ReferenceEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func nameEq(v string) Clause {
	return Clause{Attr: "name", Op: relation.OpEq, Val: relation.S(v)}
}

func typeEq(v string) Clause {
	return Clause{Attr: "type", Op: relation.OpEq, Val: relation.S(v)}
}

// Paper Section 3.2: preference 1 — at Plaka when warm, Acropolis 0.8.
func pref1() Preference {
	return MustNew(
		ctxmodel.MustDescriptor(ctxmodel.Eq("location", "Plaka"), ctxmodel.Eq("temperature", "warm")),
		nameEq("Acropolis"), 0.8)
}

// Paper preference 2 — with friends, breweries 0.9.
func pref2() Preference {
	return MustNew(
		ctxmodel.MustDescriptor(ctxmodel.Eq("accompanying_people", "friends")),
		typeEq("brewery"), 0.9)
}

// Paper preference 3 — Plaka and temperature ∈ {warm, hot}, Acropolis 0.8.
func pref3() Preference {
	return MustNew(
		ctxmodel.MustDescriptor(ctxmodel.Eq("location", "Plaka"), ctxmodel.In("temperature", "warm", "hot")),
		nameEq("Acropolis"), 0.8)
}

func TestClause(t *testing.T) {
	c := nameEq("Acropolis")
	if c.String() != "name = Acropolis" {
		t.Errorf("String = %q", c.String())
	}
	if !c.Equal(nameEq("Acropolis")) {
		t.Error("Equal broken (same)")
	}
	if c.Equal(nameEq("Benaki")) || c.Equal(typeEq("Acropolis")) {
		t.Error("Equal broken (different)")
	}
	if c.Equal(Clause{Attr: "name", Op: relation.OpNe, Val: relation.S("Acropolis")}) {
		t.Error("Equal should compare operators")
	}
	p := c.Predicate()
	if p.Col != "name" || p.Op != relation.OpEq || !p.Val.Equal(relation.S("Acropolis")) {
		t.Errorf("Predicate = %+v", p)
	}
	if c.Key() == typeEq("Acropolis").Key() {
		t.Error("Key collision across attributes")
	}
	// Kind participates in the key: "1" as string vs int.
	k1 := Clause{Attr: "a", Op: relation.OpEq, Val: relation.S("1")}.Key()
	k2 := Clause{Attr: "a", Op: relation.OpEq, Val: relation.I(1)}.Key()
	if k1 == k2 {
		t.Error("Key collision across kinds")
	}
}

func TestNewValidation(t *testing.T) {
	d := ctxmodel.MustDescriptor()
	if _, err := New(d, nameEq("x"), -0.1); err == nil {
		t.Error("negative score should fail")
	}
	if _, err := New(d, nameEq("x"), 1.1); err == nil {
		t.Error("score > 1 should fail")
	}
	if _, err := New(d, Clause{}, 0.5); err == nil {
		t.Error("empty attribute should fail")
	}
	p, err := New(d, nameEq("x"), 0)
	if err != nil || p.Score != 0 {
		t.Errorf("score 0 should be allowed: %v", err)
	}
	if _, err := New(d, nameEq("x"), 1); err != nil {
		t.Errorf("score 1 should be allowed: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid score")
		}
	}()
	MustNew(d, nameEq("x"), 2)
}

func TestPreferenceString(t *testing.T) {
	s := pref1().String()
	for _, frag := range []string{"location = Plaka", "name = Acropolis", "0.80"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String = %q missing %q", s, frag)
		}
	}
}

func TestConflictsDef6(t *testing.T) {
	e := env(t)
	// The paper's example: same clause, overlapping context, scores
	// 0.8 vs 0.3 → conflict.
	a := pref1()
	b := MustNew(a.Descriptor, a.Clause, 0.3)
	got, err := Conflicts(e, a, b)
	if err != nil || !got {
		t.Errorf("Conflicts(same cod, diff score) = %v, %v; want true", got, err)
	}
	// Same score → no conflict.
	got, _ = Conflicts(e, a, MustNew(a.Descriptor, a.Clause, 0.8))
	if got {
		t.Error("same score should not conflict")
	}
	// Different clause → no conflict.
	got, _ = Conflicts(e, a, MustNew(a.Descriptor, nameEq("Benaki"), 0.3))
	if got {
		t.Error("different clause should not conflict")
	}
	// Overlapping but not identical contexts: pref1 (warm) vs pref3
	// (warm|hot) share (Plaka, warm, all).
	got, _ = Conflicts(e, pref1(), MustNew(pref3().Descriptor, nameEq("Acropolis"), 0.2))
	if !got {
		t.Error("overlapping contexts with different scores should conflict")
	}
	// Disjoint contexts → no conflict even with different scores.
	c := MustNew(
		ctxmodel.MustDescriptor(ctxmodel.Eq("location", "Kifisia"), ctxmodel.Eq("temperature", "warm")),
		nameEq("Acropolis"), 0.1)
	got, _ = Conflicts(e, pref1(), c)
	if got {
		t.Error("disjoint contexts should not conflict")
	}
	// Bad descriptor propagates an error.
	bad := Preference{Descriptor: ctxmodel.MustDescriptor(ctxmodel.Eq("location", "Atlantis")), Clause: nameEq("x"), Score: 0.4}
	if _, err := Conflicts(e, bad, MustNew(ctxmodel.MustDescriptor(), nameEq("x"), 0.5)); err == nil {
		t.Error("invalid descriptor should error")
	}
	if _, err := Conflicts(e, MustNew(ctxmodel.MustDescriptor(), nameEq("x"), 0.5), bad); err == nil {
		t.Error("invalid descriptor (2nd) should error")
	}
}

func TestProfileAdd(t *testing.T) {
	e := env(t)
	pr, err := NewProfile(e)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Env() != e {
		t.Error("Env round-trip failed")
	}
	pr.MustAdd(pref1(), pref2(), pref3())
	if pr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", pr.Len())
	}
	if !pr.Pref(0).Clause.Equal(nameEq("Acropolis")) {
		t.Errorf("Pref(0) = %v", pr.Pref(0))
	}
	if got := len(pr.Preferences()); got != 3 {
		t.Errorf("Preferences() = %d", got)
	}
	if got := len(pr.Descriptors()); got != 3 {
		t.Errorf("Descriptors() = %d", got)
	}
	// Conflict rejected with a ConflictError naming the state.
	err = pr.Add(MustNew(pref1().Descriptor, nameEq("Acropolis"), 0.1))
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("Add conflicting = %v, want ConflictError", err)
	}
	if ce.State.String() != "(Plaka, warm, all)" {
		t.Errorf("conflict state = %v", ce.State)
	}
	if !strings.Contains(ce.Error(), "conflict") {
		t.Errorf("Error() = %q", ce.Error())
	}
	if pr.Len() != 3 {
		t.Error("conflicting Add mutated the profile")
	}
	// Invalid descriptor rejected.
	if err := pr.Add(Preference{
		Descriptor: ctxmodel.MustDescriptor(ctxmodel.Eq("location", "Atlantis")),
		Clause:     nameEq("x"), Score: 0.5,
	}); err == nil {
		t.Error("Add with invalid descriptor should fail")
	}
	// Nil environment.
	if _, err := NewProfile(nil); err == nil {
		t.Error("NewProfile(nil) should fail")
	}
	// MustAdd panics on conflict.
	defer func() {
		if recover() == nil {
			t.Error("MustAdd should panic on conflict")
		}
	}()
	pr.MustAdd(MustNew(pref1().Descriptor, nameEq("Acropolis"), 0.1))
}

func TestProfileAddSameScoreOverlap(t *testing.T) {
	e := env(t)
	pr, _ := NewProfile(e)
	pr.MustAdd(pref1())
	// pref3 overlaps pref1 on (Plaka, warm, all) with the SAME clause
	// and SAME score: allowed by Def. 6.
	if err := pr.Add(pref3()); err != nil {
		t.Fatalf("same-score overlap rejected: %v", err)
	}
	if pr.Len() != 2 {
		t.Errorf("Len = %d, want 2", pr.Len())
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	e := env(t)
	prefs := []Preference{
		pref1(),
		pref2(),
		pref3(),
		MustNew(ctxmodel.MustDescriptor(), typeEq("museum"), 0.5),
		MustNew(
			ctxmodel.MustDescriptor(ctxmodel.Between("temperature", "mild", "hot")),
			Clause{Attr: "admission_cost", Op: relation.OpLe, Val: relation.F(10)}, 0.75),
		MustNew(
			ctxmodel.MustDescriptor(ctxmodel.Eq("location", "Athens")),
			Clause{Attr: "open_air", Op: relation.OpEq, Val: relation.B(true)}, 0.6),
		MustNew(
			ctxmodel.MustDescriptor(ctxmodel.Eq("location", "Athens")),
			Clause{Attr: "pid", Op: relation.OpNe, Val: relation.I(3)}, 0.2),
	}
	for _, p := range prefs {
		line := Format(p)
		q, err := ParseLine(line)
		if err != nil {
			t.Fatalf("ParseLine(%q): %v", line, err)
		}
		if !q.Clause.Equal(p.Clause) || q.Score != p.Score {
			t.Errorf("round-trip mismatch: %v -> %q -> %v", p, line, q)
		}
		// Descriptor equivalence via expansion.
		sp, err1 := p.Descriptor.Context(e)
		sq, err2 := q.Descriptor.Context(e)
		if err1 != nil || err2 != nil || len(sp) != len(sq) {
			t.Fatalf("descriptor expansion mismatch for %q", line)
		}
		for i := range sp {
			if !sp[i].Equal(sq[i]) {
				t.Errorf("state %d mismatch: %v vs %v", i, sp[i], sq[i])
			}
		}
	}
}

func TestParseLineErrors(t *testing.T) {
	bad := []string{
		"",
		"location = Plaka => name = x : 0.5",    // missing [
		"[location = Plaka => name = x : 0.5",   // missing ]
		"[location = Plaka] name = x : 0.5",     // missing =>
		"[location = Plaka] => name = x",        // missing score
		"[location = Plaka] => name = x : high", // bad score
		"[location Plaka] => name = x : 0.5",    // bad atom
		"[location = Plaka] => name x : 0.5",    // no operator
		"[location in Plaka] => name = x : 0.5", // malformed in
		"[location in {}] => name = x : 0.5",    // empty in
		"[t between mild] => name = x : 0.5",    // one endpoint
		"[t between mild,] => name = x : 0.5",   // empty endpoint
		"[= Plaka] => name = x : 0.5",           // empty param
		"[location = Plaka] => name = x : 1.5",  // out-of-range score
		"[location = Plaka] => = x : 0.5",       // empty attr
		`[location = Plaka] => name = "x : 0.5`, // unterminated quote
		"[p = v; p = w] => name = x : 0.5",      // repeated parameter
	}
	for _, line := range bad {
		if _, err := ParseLine(line); err == nil {
			t.Errorf("ParseLine(%q) should fail", line)
		}
	}
}

func TestInferValue(t *testing.T) {
	cases := []struct {
		text string
		want relation.Value
	}{
		{`"quoted string"`, relation.S("quoted string")},
		{"true", relation.B(true)},
		{"false", relation.B(false)},
		{"42", relation.I(42)},
		{"-7", relation.I(-7)},
		{"2.5", relation.F(2.5)},
		{"barewood", relation.S("barewood")},
	}
	for _, c := range cases {
		got, err := InferValue(c.text)
		if err != nil || !got.Equal(c.want) {
			t.Errorf("InferValue(%q) = %v (%v), %v; want %v (%v)",
				c.text, got, got.Kind(), err, c.want, c.want.Kind())
		}
	}
	if _, err := InferValue(""); err == nil {
		t.Error("empty value should fail")
	}
	if _, err := InferValue(`"broken`); err == nil {
		t.Error("unterminated quote should fail")
	}
}

func TestFormatParseProfile(t *testing.T) {
	e := env(t)
	pr, _ := NewProfile(e)
	pr.MustAdd(pref1(), pref2())
	text := FormatProfile(pr)
	if got := strings.Count(text, "\n"); got != 2 {
		t.Errorf("FormatProfile lines = %d, want 2", got)
	}
	// Round-trip with comments and blanks.
	annotated := "# a comment\n\n" + text + "\n"
	back, err := ParseProfile(e, annotated)
	if err != nil {
		t.Fatalf("ParseProfile: %v", err)
	}
	if back.Len() != 2 {
		t.Errorf("parsed profile Len = %d, want 2", back.Len())
	}
	// Errors carry line numbers.
	if _, err := ParseProfile(e, "garbage line"); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("ParseProfile error = %v, want line number", err)
	}
	// Conflicts inside the text are rejected.
	conflict := Format(pref1()) + "\n" + Format(MustNew(pref1().Descriptor, nameEq("Acropolis"), 0.1))
	if _, err := ParseProfile(e, conflict); err == nil {
		t.Error("conflicting profile text should fail")
	}
	// Unknown context values are rejected on Add.
	if _, err := ParseProfile(e, "[location = Atlantis] => name = x : 0.5"); err == nil {
		t.Error("unknown value should fail")
	}
}
