// Package preference implements contextual preferences (Section 3.2 of
// "Adding Context to Preferences", ICDE 2007): attribute clauses over
// non-context attributes, interest scores, conflict detection (Def. 6)
// and profiles (Def. 7).
package preference

import (
	"fmt"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/relation"
)

// Clause is an attribute clause "A θ a" over a non-context attribute of
// the underlying relation (Def. 5; the paper mostly uses θ as equality,
// all six comparison operators are supported).
type Clause struct {
	// Attr is the non-context attribute name.
	Attr string
	// Op is the comparison operator θ.
	Op relation.CmpOp
	// Val is the attribute value a.
	Val relation.Value
}

// String renders the clause as "A θ a".
func (c Clause) String() string {
	return fmt.Sprintf("%s %s %s", c.Attr, c.Op, c.Val)
}

// Equal reports whether two clauses are identical (same attribute,
// operator and value).
func (c Clause) Equal(d Clause) bool {
	return c.Attr == d.Attr && c.Op == d.Op && c.Val.Equal(d.Val)
}

// Predicate converts the clause into a relational selection predicate.
func (c Clause) Predicate() relation.Predicate {
	return relation.Predicate{Col: c.Attr, Op: c.Op, Val: c.Val}
}

// Key returns a canonical identity string for the clause, used to
// detect conflicting preferences on the same clause.
func (c Clause) Key() string {
	return c.Attr + "\x1f" + c.Op.String() + "\x1f" + c.Val.Kind().String() + "\x1f" + c.Val.String()
}

// Preference is a contextual preference (Def. 5): a context descriptor,
// an attribute clause and an interest score in [0, 1].
type Preference struct {
	// Descriptor is the context descriptor cod delimiting where the
	// preference applies.
	Descriptor ctxmodel.Descriptor
	// Clause is the attribute clause the score attaches to.
	Clause Clause
	// Score is the degree of interest: 1 = extreme interest, 0 = none.
	Score float64
}

// New validates and builds a contextual preference.
func New(d ctxmodel.Descriptor, c Clause, score float64) (Preference, error) {
	if c.Attr == "" {
		return Preference{}, fmt.Errorf("preference: empty attribute name")
	}
	if score < 0 || score > 1 {
		return Preference{}, fmt.Errorf("preference: interest score %v outside [0, 1]", score)
	}
	return Preference{Descriptor: d, Clause: c, Score: score}, nil
}

// MustNew is New that panics on error; for literals in tests/examples.
func MustNew(d ctxmodel.Descriptor, c Clause, score float64) Preference {
	p, err := New(d, c, score)
	if err != nil {
		panic(err)
	}
	return p
}

// String renders the preference in the paper's triple notation.
func (p Preference) String() string {
	return fmt.Sprintf("(%s, (%s), %.2f)", p.Descriptor, p.Clause, p.Score)
}

// Conflicts implements Def. 6: two preferences conflict iff their
// descriptor contexts intersect, their clauses coincide, and their
// scores differ.
func Conflicts(e *ctxmodel.Environment, p1, p2 Preference) (bool, error) {
	if !p1.Clause.Equal(p2.Clause) {
		return false, nil
	}
	if p1.Score == p2.Score {
		return false, nil
	}
	s1, err := p1.Descriptor.Context(e)
	if err != nil {
		return false, err
	}
	s2, err := p2.Descriptor.Context(e)
	if err != nil {
		return false, err
	}
	set := make(map[string]bool, len(s1))
	for _, s := range s1 {
		set[s.Key()] = true
	}
	for _, s := range s2 {
		if set[s.Key()] {
			return true, nil
		}
	}
	return false, nil
}

// Profile is a set of non-conflicting contextual preferences (Def. 7).
type Profile struct {
	env   *ctxmodel.Environment
	prefs []Preference
}

// NewProfile creates an empty profile over the environment.
func NewProfile(e *ctxmodel.Environment) (*Profile, error) {
	if e == nil {
		return nil, fmt.Errorf("preference: nil environment")
	}
	return &Profile{env: e}, nil
}

// Env returns the profile's context environment.
func (pr *Profile) Env() *ctxmodel.Environment { return pr.env }

// Len returns the number of preferences.
func (pr *Profile) Len() int { return len(pr.prefs) }

// Pref returns the i-th preference.
func (pr *Profile) Pref(i int) Preference { return pr.prefs[i] }

// Preferences returns a copy of the preference list.
func (pr *Profile) Preferences() []Preference {
	return append([]Preference(nil), pr.prefs...)
}

// ConflictError reports the preference an insertion collided with, so
// callers can notify the user as the paper prescribes.
type ConflictError struct {
	// New is the rejected preference.
	New Preference
	// Existing is the profile preference it conflicts with.
	Existing Preference
	// State is a context state on which both apply.
	State ctxmodel.State
}

// Error implements error.
func (e *ConflictError) Error() string {
	return fmt.Sprintf("preference conflict on state %s: new %s vs existing %s",
		e.State, e.New, e.Existing)
}

// Add validates the preference's descriptor against the environment,
// checks Def. 6 conflicts against every stored preference, and appends
// it. On conflict it returns a *ConflictError and leaves the profile
// unchanged. Re-adding an identical preference is a no-op.
func (pr *Profile) Add(p Preference) error {
	states, err := p.Descriptor.Context(pr.env)
	if err != nil {
		return err
	}
	newKeys := make(map[string]ctxmodel.State, len(states))
	for _, s := range states {
		newKeys[s.Key()] = s
	}
	for _, q := range pr.prefs {
		if !q.Clause.Equal(p.Clause) {
			continue
		}
		qs, err := q.Descriptor.Context(pr.env)
		if err != nil {
			return err
		}
		for _, s := range qs {
			if _, hit := newKeys[s.Key()]; hit {
				if q.Score == p.Score {
					// Same clause, same score, overlapping context:
					// not a conflict under Def. 6. If the contexts are
					// identical the preference is a duplicate; either
					// way storing it is harmless, keep it for fidelity
					// with the per-state profile-tree storage.
					break
				}
				return &ConflictError{New: p, Existing: q, State: s}
			}
		}
	}
	pr.prefs = append(pr.prefs, p)
	return nil
}

// MustAdd adds a batch of preferences, panicking on any error; for
// construction of fixed profiles in tests and examples.
func (pr *Profile) MustAdd(ps ...Preference) {
	for _, p := range ps {
		if err := pr.Add(p); err != nil {
			panic(err)
		}
	}
}

// Descriptors returns the set CP of context descriptors appearing in
// the profile, in insertion order.
func (pr *Profile) Descriptors() []ctxmodel.Descriptor {
	out := make([]ctxmodel.Descriptor, len(pr.prefs))
	for i, p := range pr.prefs {
		out[i] = p.Descriptor
	}
	return out
}
