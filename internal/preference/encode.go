package preference

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/relation"
)

// This file implements a line-oriented text encoding of contextual
// preferences used by the CLI and for persisting profiles:
//
//	[location = Plaka; temperature in {warm, hot}] => name = "Acropolis" : 0.8
//	[accompanying_people = friends] => type = brewery : 0.9
//	[] => type = museum : 0.5
//
// Descriptor atoms are separated by ';' and take one of the forms
// "param = value", "param in {v1, v2, ...}" and
// "param between lo, hi". Clause values are typed by inference: quoted
// text is a string, true/false are booleans, integer literals are ints,
// decimal literals are floats, anything else is a string.

// FormatValue renders a clause value so InferValue can read it back.
func FormatValue(v relation.Value) string {
	switch v.Kind() {
	case relation.KindString:
		return strconv.Quote(v.Str())
	case relation.KindFloat:
		s := v.String()
		// Keep a decimal marker so InferValue does not read it as int.
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	}
	return v.String()
}

// InferValue parses a clause value with type inference.
func InferValue(text string) (relation.Value, error) {
	text = strings.TrimSpace(text)
	if text == "" {
		return relation.Value{}, fmt.Errorf("preference: empty value")
	}
	if strings.HasPrefix(text, "\"") {
		s, err := strconv.Unquote(text)
		if err != nil {
			return relation.Value{}, fmt.Errorf("preference: bad quoted value %s: %w", text, err)
		}
		return relation.S(s), nil
	}
	switch text {
	case "true":
		return relation.B(true), nil
	case "false":
		return relation.B(false), nil
	}
	if i, err := strconv.ParseInt(text, 10, 64); err == nil {
		return relation.I(i), nil
	}
	if f, err := strconv.ParseFloat(text, 64); err == nil {
		return relation.F(f), nil
	}
	return relation.S(text), nil
}

// Format renders the preference in the line encoding.
func Format(p Preference) string {
	var atoms []string
	for _, pd := range p.Descriptor.ParamDescriptors() {
		switch pd.Kind {
		case ctxmodel.KindEq:
			atoms = append(atoms, fmt.Sprintf("%s = %s", pd.Param, pd.Values[0]))
		case ctxmodel.KindIn:
			atoms = append(atoms, fmt.Sprintf("%s in {%s}", pd.Param, strings.Join(pd.Values, ", ")))
		case ctxmodel.KindRange:
			atoms = append(atoms, fmt.Sprintf("%s between %s, %s", pd.Param, pd.Values[0], pd.Values[1]))
		}
	}
	return fmt.Sprintf("[%s] => %s %s %s : %g",
		strings.Join(atoms, "; "), p.Clause.Attr, p.Clause.Op, FormatValue(p.Clause.Val), p.Score)
}

// ParseParamDescriptor reads one descriptor atom. The three forms are
// distinguished by whichever operator ("=", " in ", " between ")
// appears first, so values that happen to contain a later operator word
// still round-trip (e.g. "p = a in b" is an eq-descriptor). Param names
// must not contain whitespace: a spaced param ("0 in" from "0 in=0")
// would make the operator that wins depend on the spacing Format
// chooses, so the formatted line would re-parse as a different form.
func ParseParamDescriptor(text string) (ctxmodel.ParamDescriptor, error) {
	text = strings.TrimSpace(text)
	parseParam := func(raw string) (string, error) {
		p := strings.TrimSpace(raw)
		if strings.ContainsFunc(p, unicode.IsSpace) {
			return "", fmt.Errorf("preference: param %q contains whitespace in %q", p, text)
		}
		return p, nil
	}
	first := func(op string) int {
		i := strings.Index(text, op)
		if i <= 0 {
			return len(text)
		}
		return i
	}
	eqAt, inAt, betweenAt := first("="), first(" in "), first(" between ")
	if eqAt < inAt && eqAt < betweenAt {
		param, err := parseParam(text[:eqAt])
		if err != nil {
			return ctxmodel.ParamDescriptor{}, err
		}
		val := strings.TrimSpace(text[eqAt+1:])
		if param == "" || val == "" {
			return ctxmodel.ParamDescriptor{}, fmt.Errorf("preference: malformed eq-descriptor %q", text)
		}
		return ctxmodel.Eq(param, val), nil
	}
	if i := strings.Index(text, " in "); i > 0 && inAt < betweenAt {
		param, err := parseParam(text[:i])
		if err != nil {
			return ctxmodel.ParamDescriptor{}, err
		}
		rest := strings.TrimSpace(text[i+4:])
		if !strings.HasPrefix(rest, "{") || !strings.HasSuffix(rest, "}") {
			return ctxmodel.ParamDescriptor{}, fmt.Errorf("preference: malformed in-descriptor %q", text)
		}
		var vals []string
		for _, v := range strings.Split(rest[1:len(rest)-1], ",") {
			v = strings.TrimSpace(v)
			if v == "" {
				return ctxmodel.ParamDescriptor{}, fmt.Errorf("preference: empty value in %q", text)
			}
			vals = append(vals, v)
		}
		if len(vals) == 0 {
			return ctxmodel.ParamDescriptor{}, fmt.Errorf("preference: empty in-descriptor %q", text)
		}
		return ctxmodel.In(param, vals...), nil
	}
	if i := strings.Index(text, " between "); i > 0 {
		param, err := parseParam(text[:i])
		if err != nil {
			return ctxmodel.ParamDescriptor{}, err
		}
		parts := strings.Split(text[i+9:], ",")
		if len(parts) != 2 {
			return ctxmodel.ParamDescriptor{}, fmt.Errorf("preference: malformed between-descriptor %q", text)
		}
		lo, hi := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
		if lo == "" || hi == "" {
			return ctxmodel.ParamDescriptor{}, fmt.Errorf("preference: empty endpoint in %q", text)
		}
		return ctxmodel.Between(param, lo, hi), nil
	}
	return ctxmodel.ParamDescriptor{}, fmt.Errorf("preference: cannot parse descriptor atom %q", text)
}

// ParseLine reads one preference in the line encoding.
func ParseLine(line string) (Preference, error) {
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, "[") {
		return Preference{}, fmt.Errorf("preference: line must start with '[': %q", line)
	}
	end := strings.Index(line, "]")
	if end < 0 {
		return Preference{}, fmt.Errorf("preference: missing ']': %q", line)
	}
	descText := strings.TrimSpace(line[1:end])
	rest := strings.TrimSpace(line[end+1:])
	if !strings.HasPrefix(rest, "=>") {
		return Preference{}, fmt.Errorf("preference: missing '=>': %q", line)
	}
	rest = strings.TrimSpace(rest[2:])

	var pds []ctxmodel.ParamDescriptor
	if descText != "" {
		for _, atom := range strings.Split(descText, ";") {
			pd, err := ParseParamDescriptor(atom)
			if err != nil {
				return Preference{}, err
			}
			pds = append(pds, pd)
		}
	}
	d, err := ctxmodel.NewDescriptor(pds...)
	if err != nil {
		return Preference{}, err
	}

	colon := strings.LastIndex(rest, ":")
	if colon < 0 {
		return Preference{}, fmt.Errorf("preference: missing ': score': %q", line)
	}
	score, err := strconv.ParseFloat(strings.TrimSpace(rest[colon+1:]), 64)
	if err != nil {
		return Preference{}, fmt.Errorf("preference: bad score in %q: %w", line, err)
	}
	clauseText := strings.TrimSpace(rest[:colon])
	clause, err := ParseClause(clauseText)
	if err != nil {
		return Preference{}, err
	}
	return New(d, clause, score)
}

// ParseClause reads "attr op value" with type inference on the value
// (see InferValue). The operator is the *earliest* occurrence of a
// comparison symbol — not the first operator that matches anywhere —
// so operator characters inside the (possibly quoted) value are never
// mistaken for the clause's operator; at that position the two-symbol
// operator wins over its one-symbol prefix (<= over <, == over =).
func ParseClause(text string) (Clause, error) {
	at := strings.IndexAny(text, "<>=!")
	if at <= 0 {
		return Clause{}, fmt.Errorf("preference: no comparison operator in clause %q", text)
	}
	op := text[at : at+1]
	for _, two := range []string{"<=", ">=", "!=", "<>", "=="} {
		if strings.HasPrefix(text[at:], two) {
			op = two
			break
		}
	}
	attr := strings.TrimSpace(text[:at])
	valText := strings.TrimSpace(text[at+len(op):])
	if attr == "" || valText == "" {
		return Clause{}, fmt.Errorf("preference: malformed clause %q", text)
	}
	cmp, err := relation.ParseCmpOp(op)
	if err != nil {
		return Clause{}, fmt.Errorf("preference: %w in clause %q", err, text)
	}
	val, err := InferValue(valText)
	if err != nil {
		return Clause{}, err
	}
	return Clause{Attr: attr, Op: cmp, Val: val}, nil
}

// FormatProfile renders every preference of the profile, one per line.
func FormatProfile(pr *Profile) string {
	var b strings.Builder
	for _, p := range pr.Preferences() {
		b.WriteString(Format(p))
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseProfile reads a profile from its line encoding, skipping blank
// lines and lines starting with '#'.
func ParseProfile(e *ctxmodel.Environment, text string) (*Profile, error) {
	pr, err := NewProfile(e)
	if err != nil {
		return nil, err
	}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		p, err := ParseLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		if err := pr.Add(p); err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
	}
	return pr, nil
}
