package preference

import (
	"testing"

	"contextpref/internal/ctxmodel"
)

// FuzzParseLine checks that the preference line parser never panics and
// that every successfully parsed preference re-formats into a line that
// parses to an equivalent preference.
func FuzzParseLine(f *testing.F) {
	seeds := []string{
		`[location = Plaka; temperature in {warm, hot}] => name = "Acropolis" : 0.8`,
		`[accompanying_people = friends] => type = brewery : 0.9`,
		`[] => type = museum : 0.5`,
		`[t between mild, hot] => admission_cost <= 10.5 : 0.75`,
		`[p = v] => open_air = true : 1`,
		`[a = b] => x != -3 : 0`,
		`garbage`,
		`[unclosed => a = b : 0.5`,
		`[] => : 0.5`,
		`[] => a = b : nope`,
		"[\x00] => a = b : 0.5",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	env := ctxmodel.MustReferenceEnvironment()
	f.Fuzz(func(t *testing.T, line string) {
		p, err := ParseLine(line)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Round-trip: Format must produce a parseable line with the
		// same clause and score.
		again, err := ParseLine(Format(p))
		if err != nil {
			t.Fatalf("Format(%q) = %q does not re-parse: %v", line, Format(p), err)
		}
		if !again.Clause.Equal(p.Clause) || again.Score != p.Score {
			t.Fatalf("round-trip mismatch: %v vs %v", p, again)
		}
		// Descriptor expansion either fails consistently (unknown
		// values for this environment) or matches.
		s1, err1 := p.Descriptor.Context(env)
		s2, err2 := again.Descriptor.Context(env)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("expansion disagreement for %q", line)
		}
		if err1 == nil && len(s1) != len(s2) {
			t.Fatalf("expansion size mismatch for %q", line)
		}
	})
}
