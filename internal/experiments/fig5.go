package experiments

import (
	"fmt"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/dataset"
	"contextpref/internal/preference"
	"contextpref/internal/profiletree"
)

// SizeRow is one data point of a profile-tree size figure: the storage
// cost of one parameter-to-level ordering (or of the serial baseline).
type SizeRow struct {
	// Label is "serial" or the paper's "order k".
	Label string
	// Sizes are the per-level domain cardinalities (nil for serial).
	Sizes []int
	// Cells is the paper's cell count.
	Cells int
	// Bytes is the modeled byte size under the paper's accounting
	// (stored payloads; see profiletree.KeyBytes).
	Bytes int
	// PointerBytes is the byte size when 8-byte pointers are charged
	// per internal cell — an honest-implementation counterpoint the
	// paper's model omits.
	PointerBytes int
}

// Fig5Result reproduces Fig. 5: the size of the profile tree built from
// the real profile (522 preferences, domains 4/17/100) under all six
// orderings, against serial storage.
type Fig5Result struct {
	// NumPrefs is the profile size (522).
	NumPrefs int
	// Rows holds serial first, then order 1..6.
	Rows []SizeRow
}

// Fig5 builds the real profile and measures every ordering.
func Fig5(seed int64) (*Fig5Result, error) {
	env, prefs, err := dataset.RealProfile(seed)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{NumPrefs: len(prefs)}

	sq, err := profiletree.NewSequential(env)
	if err != nil {
		return nil, err
	}
	for _, p := range prefs {
		if err := sq.Insert(p); err != nil {
			return nil, err
		}
	}
	res.Rows = append(res.Rows, SizeRow{
		Label:        "serial",
		Cells:        sq.NumCells(),
		Bytes:        sq.Bytes(),
		PointerBytes: sq.Bytes(),
	})

	for _, no := range PaperOrders(env) {
		row, err := measureTree(env, prefs, no)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// measureTree builds a tree under the named order and records its size.
func measureTree(env *ctxmodel.Environment, prefs []preference.Preference, no NamedOrder) (SizeRow, error) {
	tr, err := profiletree.New(env, no.Order)
	if err != nil {
		return SizeRow{}, err
	}
	for _, p := range prefs {
		if err := tr.Insert(p); err != nil {
			return SizeRow{}, err
		}
	}
	return SizeRow{
		Label:        no.Label,
		Sizes:        no.Sizes,
		Cells:        tr.NumCells(),
		Bytes:        tr.KeyBytes(),
		PointerBytes: tr.Bytes(),
	}, nil
}

// Render formats the two panels of Fig. 5 (cells and bytes).
func (f *Fig5Result) Render() string {
	headers := []string{"Ordering", "Levels (domain sizes)", "Cells", "Bytes", "Bytes (8B ptrs)"}
	var rows [][]string
	for _, r := range f.Rows {
		lv := "-"
		if r.Sizes != nil {
			lv = orderSizesLabel(r.Sizes)
		}
		rows = append(rows, []string{r.Label, lv, fmtI(r.Cells), fmtI(r.Bytes), fmtI(r.PointerBytes)})
	}
	title := fmt.Sprintf("Fig. 5: Profile tree size, real profile (%d preferences, domains 4/17/100)", f.NumPrefs)
	return renderTable(title, headers, rows)
}
