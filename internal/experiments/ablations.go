package experiments

import (
	"fmt"
	"math/rand"

	"contextpref/internal/dataset"
	"contextpref/internal/distance"
	"contextpref/internal/profiletree"
	"contextpref/internal/query"
	"contextpref/internal/querytree"
	"contextpref/internal/relation"
)

// This file implements the ablation studies DESIGN.md calls out beyond
// the paper's own figures: the distance-metric tie behaviour that the
// usability study attributes Jaccard's advantage to, the breadth-first
// versus branch-and-bound search strategies, and the context query tree
// cache.

// DistanceAblationResult quantifies why the paper found the Jaccard
// distance more accurate: the hierarchy distance, being an integer sum
// of level offsets, produces many tied best candidates, while Jaccard's
// fractional values discriminate.
type DistanceAblationResult struct {
	// Queries is the number of multi-candidate resolutions examined.
	Queries int
	// HierarchyTies counts queries whose best hierarchy distance is
	// shared by 2+ candidate states.
	HierarchyTies int
	// JaccardTies counts the same under the Jaccard distance.
	JaccardTies int
}

// DistanceAblation resolves a mixed-level workload against the real
// profile and counts tied best candidates per metric.
func DistanceAblation(seed int64, numQueries int) (*DistanceAblationResult, error) {
	env, prefs, err := dataset.RealProfile(seed)
	if err != nil {
		return nil, err
	}
	tr, _, err := buildStores(env, prefs)
	if err != nil {
		return nil, err
	}
	queries, err := dataset.RandomQueries(env, numQueries, seed+11, 0.3)
	if err != nil {
		return nil, err
	}
	res := &DistanceAblationResult{}
	countTies := func(cands []profiletree.Candidate) int {
		best, ok := profiletree.Best(cands)
		if !ok {
			return 0
		}
		ties := 0
		for _, c := range cands {
			if c.Distance == best.Distance {
				ties++
			}
		}
		return ties
	}
	for _, q := range queries {
		hc, _, err := tr.SearchCover(q, distance.Hierarchy{})
		if err != nil {
			return nil, err
		}
		if len(hc) < 2 {
			continue // ties need at least two candidates
		}
		res.Queries++
		jc, _, err := tr.SearchCover(q, distance.Jaccard{})
		if err != nil {
			return nil, err
		}
		if countTies(hc) > 1 {
			res.HierarchyTies++
		}
		if countTies(jc) > 1 {
			res.JaccardTies++
		}
	}
	return res, nil
}

// Render formats the tie comparison.
func (r *DistanceAblationResult) Render() string {
	pct := func(n int) string {
		if r.Queries == 0 {
			return "0%"
		}
		return fmt.Sprintf("%.0f%%", 100*float64(n)/float64(r.Queries))
	}
	headers := []string{"Metric", "Queries with tied best match", "Rate"}
	rows := [][]string{
		{"hierarchy", fmtI(r.HierarchyTies), pct(r.HierarchyTies)},
		{"jaccard", fmtI(r.JaccardTies), pct(r.JaccardTies)},
	}
	title := fmt.Sprintf("Ablation: best-match ties per metric over %d multi-candidate resolutions (real profile)", r.Queries)
	return renderTable(title, headers, rows)
}

// SearchAblationResult compares the collect-all breadth-first Search_CS
// with the branch-and-bound variant the paper sketches.
type SearchAblationResult struct {
	// Queries is the workload size.
	Queries int
	// CollectCells / PrunedCells are average cells accessed per query.
	CollectCells, PrunedCells float64
	// Agreements counts queries where both strategies return the same
	// best distance (they always should).
	Agreements int
}

// SearchAblation measures both strategies on the real profile.
func SearchAblation(seed int64, numQueries int) (*SearchAblationResult, error) {
	env, prefs, err := dataset.RealProfile(seed)
	if err != nil {
		return nil, err
	}
	tr, _, err := buildStores(env, prefs)
	if err != nil {
		return nil, err
	}
	queries, err := dataset.RandomQueries(env, numQueries, seed+13, 0.3)
	if err != nil {
		return nil, err
	}
	res := &SearchAblationResult{Queries: len(queries)}
	m := distance.Hierarchy{}
	for _, q := range queries {
		cands, a1, err := tr.SearchCover(q, m)
		if err != nil {
			return nil, err
		}
		res.CollectCells += float64(a1)
		best, ok1 := profiletree.Best(cands)
		pruned, a2, ok2, err := tr.SearchCoverBest(q, m)
		if err != nil {
			return nil, err
		}
		res.PrunedCells += float64(a2)
		if ok1 == ok2 && (!ok1 || best.Distance == pruned.Distance) {
			res.Agreements++
		}
	}
	n := float64(len(queries))
	res.CollectCells /= n
	res.PrunedCells /= n
	return res, nil
}

// Render formats the strategy comparison.
func (r *SearchAblationResult) Render() string {
	headers := []string{"Strategy", "Cells/query", "Best-distance agreement"}
	rows := [][]string{
		{"collect-all (Alg. 1)", fmtF(r.CollectCells), "-"},
		{"branch-and-bound", fmtF(r.PrunedCells), fmt.Sprintf("%d/%d", r.Agreements, r.Queries)},
	}
	return renderTable("Ablation: Search_CS strategy (real profile)", headers, rows)
}

// CacheAblationResult measures the context query tree's effect on a
// repeating workload.
type CacheAblationResult struct {
	// Executions is the total number of query executions.
	Executions int
	// Hits is how many were answered from the cache.
	Hits int
	// UncachedAccesses / CachedAccesses are total store cells examined
	// without and with the cache.
	UncachedAccesses, CachedAccesses int
}

// CacheAblation replays a zipf-repeating workload of current-context
// queries with and without the context query tree.
func CacheAblation(seed int64, numQueries int) (*CacheAblationResult, error) {
	env, prefs, err := dataset.RealProfile(seed)
	if err != nil {
		return nil, err
	}
	tr, _, err := buildStores(env, prefs)
	if err != nil {
		return nil, err
	}
	rel, err := dataset.POIs(env, 300, seed)
	if err != nil {
		return nil, err
	}
	en, err := query.NewEngine(tr, rel, distance.Hierarchy{}, relation.CombineMax)
	if err != nil {
		return nil, err
	}
	cache, err := querytree.New(env, nil, 0)
	if err != nil {
		return nil, err
	}
	cen, err := querytree.NewEngine(en, cache)
	if err != nil {
		return nil, err
	}
	// A small pool of states revisited under a skewed distribution — a
	// user's context repeats (same place, same company, same hours).
	pool, err := dataset.RandomQueries(env, 12, seed+17, 0.2)
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, s := range pool {
		keys = append(keys, s.Key())
	}
	r, err := dataset.NewSampler(keys, dataset.Zipf, 1.2, rand.New(rand.NewSource(seed+19)))
	if err != nil {
		return nil, err
	}
	byKey := make(map[string]int, len(pool))
	for i, s := range pool {
		byKey[s.Key()] = i
	}
	res := &CacheAblationResult{Executions: numQueries}
	for i := 0; i < numQueries; i++ {
		s := pool[byKey[r.Draw()]]
		plain, err := en.Execute(query.Contextual{}, s)
		if err != nil {
			return nil, err
		}
		res.UncachedAccesses += plain.Accesses
		cached, hit, err := cen.Execute(query.Contextual{}, s)
		if err != nil {
			return nil, err
		}
		if hit {
			res.Hits++
		} else {
			res.CachedAccesses += cached.Accesses
		}
	}
	return res, nil
}

// Render formats the cache comparison.
func (r *CacheAblationResult) Render() string {
	headers := []string{"Configuration", "Store cells accessed", "Cache hits"}
	rows := [][]string{
		{"no cache", fmtI(r.UncachedAccesses), "-"},
		{"context query tree", fmtI(r.CachedAccesses), fmt.Sprintf("%d/%d", r.Hits, r.Executions)},
	}
	return renderTable("Ablation: context query tree cache on a repeating workload", headers, rows)
}
