package experiments

import (
	"fmt"

	"contextpref/internal/dataset"
	"contextpref/internal/profiletree"
)

// Fig6Sizes are the synthetic profile sizes of the Fig. 6/7 sweeps.
var Fig6Sizes = []int{500, 1000, 5000, 10000}

// Fig6Point holds the tree cell counts for one profile size: one entry
// per ordering label, plus the serial baseline.
type Fig6Point struct {
	// NumPrefs is the profile size.
	NumPrefs int
	// Cells maps "order k" and "serial" to cell counts.
	Cells map[string]int
}

// Fig6Result reproduces Fig. 6 left (uniform) or center (zipf a=1.5):
// tree size versus profile size for all six orderings over domains
// 50/100/1000, against serial storage.
type Fig6Result struct {
	// Dist is the value distribution used.
	Dist dataset.Dist
	// ZipfA is the zipf exponent when Dist is Zipf.
	ZipfA float64
	// Orders are the labeled orderings measured.
	Orders []NamedOrder
	// Points holds one entry per profile size.
	Points []Fig6Point
}

// Fig6 runs the sweep for one distribution.
func Fig6(dist dataset.Dist, zipfA float64, seed int64) (*Fig6Result, error) {
	env, err := dataset.Fig6Environment()
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{Dist: dist, ZipfA: zipfA, Orders: PaperOrders(env)}
	for _, n := range Fig6Sizes {
		prefs, err := dataset.ProfileSpec{
			Env:      env,
			NumPrefs: n,
			Seed:     seed + int64(n),
			Dist:     dist,
			ZipfA:    zipfA,
		}.Generate()
		if err != nil {
			return nil, err
		}
		point := Fig6Point{NumPrefs: n, Cells: make(map[string]int)}
		sq, err := profiletree.NewSequential(env)
		if err != nil {
			return nil, err
		}
		for _, p := range prefs {
			if err := sq.Insert(p); err != nil {
				return nil, err
			}
		}
		point.Cells["serial"] = sq.NumCells()
		for _, no := range res.Orders {
			row, err := measureTree(env, prefs, no)
			if err != nil {
				return nil, err
			}
			point.Cells[no.Label] = row.Cells
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// Render formats one panel of Fig. 6: rows per profile size, columns
// per ordering.
func (f *Fig6Result) Render() string {
	headers := []string{"Prefs"}
	for _, no := range f.Orders {
		headers = append(headers, fmt.Sprintf("%s %s", no.Label, orderSizesLabel(no.Sizes)))
	}
	headers = append(headers, "serial")
	var rows [][]string
	for _, pt := range f.Points {
		row := []string{fmtI(pt.NumPrefs)}
		for _, no := range f.Orders {
			row = append(row, fmtI(pt.Cells[no.Label]))
		}
		row = append(row, fmtI(pt.Cells["serial"]))
		rows = append(rows, row)
	}
	label := "uniform"
	if f.Dist == dataset.Zipf {
		label = fmt.Sprintf("zipf a=%.1f", f.ZipfA)
	}
	title := fmt.Sprintf("Fig. 6 (%s): profile tree cells vs profile size, domains 50/100/1000", label)
	return renderTable(title, headers, rows)
}

// Fig6SkewAs is the zipf-exponent sweep of Fig. 6 (right).
var Fig6SkewAs = []float64{0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5}

// Fig6SkewOrders are the three orderings of Fig. 6 (right), expressed
// as domain-size triples over the 50/100/200 environment.
var fig6SkewOrderSizes = [][]int{
	{50, 100, 200}, // order 1
	{50, 200, 100}, // order 2
	{200, 50, 100}, // order 3
}

// Fig6SkewResult reproduces Fig. 6 (right): 5000 preferences over
// domains 50/100/200 where the 200-value parameter's skew sweeps from
// uniform (a=0) to highly skewed (a=3.5); three orderings.
type Fig6SkewResult struct {
	// As is the exponent sweep.
	As []float64
	// Labels are "order 1".."order 3".
	Labels []string
	// Sizes are the per-order level domain sizes.
	Sizes [][]int
	// Cells[label][i] is the tree size at As[i].
	Cells map[string][]int
}

// Fig6Skew runs the mixed-skew sweep.
func Fig6Skew(seed int64) (*Fig6SkewResult, error) {
	env, err := dataset.Fig6SkewEnvironment()
	if err != nil {
		return nil, err
	}
	// Map size triples to parameter orders: params are p50, p100, p200
	// at indexes 0, 1, 2.
	sizeToParam := map[int]int{50: 0, 100: 1, 200: 2}
	res := &Fig6SkewResult{
		As:    Fig6SkewAs,
		Cells: make(map[string][]int),
	}
	for i, sizes := range fig6SkewOrderSizes {
		res.Labels = append(res.Labels, fmt.Sprintf("order %d", i+1))
		res.Sizes = append(res.Sizes, sizes)
	}
	for _, a := range res.As {
		prefs, err := dataset.ProfileSpec{
			Env:      env,
			NumPrefs: 5000,
			Seed:     seed + int64(a*1000),
			ParamDists: []dataset.ParamDist{
				{Dist: dataset.Uniform},
				{Dist: dataset.Uniform},
				{Dist: dataset.Zipf, ZipfA: a},
			},
		}.Generate()
		if err != nil {
			return nil, err
		}
		for li, sizes := range fig6SkewOrderSizes {
			order := make([]int, len(sizes))
			for lvl, sz := range sizes {
				order[lvl] = sizeToParam[sz]
			}
			tr, err := profiletree.New(env, order)
			if err != nil {
				return nil, err
			}
			for _, p := range prefs {
				if err := tr.Insert(p); err != nil {
					return nil, err
				}
			}
			label := res.Labels[li]
			res.Cells[label] = append(res.Cells[label], tr.NumCells())
		}
	}
	return res, nil
}

// Render formats Fig. 6 (right): rows per exponent a, columns per
// ordering.
func (f *Fig6SkewResult) Render() string {
	headers := []string{"a"}
	for i, l := range f.Labels {
		headers = append(headers, fmt.Sprintf("%s %s", l, orderSizesLabel(f.Sizes[i])))
	}
	var rows [][]string
	for i, a := range f.As {
		row := []string{fmt.Sprintf("%.1f", a)}
		for _, l := range f.Labels {
			row = append(row, fmtI(f.Cells[l][i]))
		}
		rows = append(rows, row)
	}
	title := "Fig. 6 (right): tree cells vs skew of the 200-value parameter (5000 preferences, domains 50/100/200)"
	return renderTable(title, headers, rows)
}
