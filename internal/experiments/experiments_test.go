package experiments

import (
	"strings"
	"testing"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/dataset"
	"contextpref/internal/usability"
)

// The experiment harnesses are validated on the *shapes* the paper
// reports, not on absolute numbers (DESIGN.md §4): who wins, by what
// rough factor, and where crossovers fall.

func TestPaperOrdersRealEnvironment(t *testing.T) {
	env, err := dataset.RealEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	orders := PaperOrders(env)
	if len(orders) != 6 {
		t.Fatalf("orders = %d", len(orders))
	}
	// Order 1 = ascending domain sizes (A=4, T=17, L=100).
	wantSizes := [][]int{
		{4, 17, 100}, {4, 100, 17}, {17, 4, 100}, {17, 100, 4}, {100, 4, 17}, {100, 17, 4},
	}
	for i, no := range orders {
		if no.Label != "order "+string(rune('1'+i)) {
			t.Errorf("label %d = %q", i, no.Label)
		}
		for j, sz := range wantSizes[i] {
			if no.Sizes[j] != sz {
				t.Errorf("%s sizes = %v, want %v", no.Label, no.Sizes, wantSizes[i])
				break
			}
		}
	}
	if got := orderSizesLabel([]int{4, 17, 100}); got != "(4, 17, 100)" {
		t.Errorf("orderSizesLabel = %q", got)
	}
}

func TestFig5Shapes(t *testing.T) {
	res, err := Fig5(2007)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumPrefs != dataset.RealPrefCount {
		t.Errorf("NumPrefs = %d", res.NumPrefs)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	serial := res.Rows[0]
	if serial.Label != "serial" {
		t.Fatalf("first row = %q", serial.Label)
	}
	var order1, order6 SizeRow
	for _, r := range res.Rows[1:] {
		// Paper shape: every tree ordering beats serial storage in
		// both cells and (paper-model) bytes.
		if r.Cells >= serial.Cells {
			t.Errorf("%s cells %d >= serial %d", r.Label, r.Cells, serial.Cells)
		}
		if r.Bytes >= serial.Bytes {
			t.Errorf("%s bytes %d >= serial %d", r.Label, r.Bytes, serial.Bytes)
		}
		switch r.Label {
		case "order 1":
			order1 = r
		case "order 6":
			order6 = r
		}
	}
	// Paper shape: mapping large domains lower (order 1) beats mapping
	// them higher (order 6).
	if order1.Cells >= order6.Cells {
		t.Errorf("order 1 (%d) should be smaller than order 6 (%d)", order1.Cells, order6.Cells)
	}
	out := res.Render()
	for _, frag := range []string{"Fig. 5", "serial", "order 1", "order 6", "(4, 17, 100)"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Render missing %q", frag)
		}
	}
}

func TestFig6Shapes(t *testing.T) {
	uni, err := Fig6(dataset.Uniform, 0, 2007)
	if err != nil {
		t.Fatal(err)
	}
	zipf, err := Fig6(dataset.Zipf, 1.5, 2007)
	if err != nil {
		t.Fatal(err)
	}
	if len(uni.Points) != len(Fig6Sizes) {
		t.Fatalf("points = %d", len(uni.Points))
	}
	for i, pt := range uni.Points {
		if pt.NumPrefs != Fig6Sizes[i] {
			t.Errorf("point %d prefs = %d", i, pt.NumPrefs)
		}
		// Every ordering below serial; order 1 ≤ order 6.
		for _, no := range uni.Orders {
			if pt.Cells[no.Label] >= pt.Cells["serial"] {
				t.Errorf("prefs %d: %s >= serial", pt.NumPrefs, no.Label)
			}
		}
		if pt.Cells["order 1"] > pt.Cells["order 6"] {
			t.Errorf("prefs %d: order 1 (%d) > order 6 (%d)",
				pt.NumPrefs, pt.Cells["order 1"], pt.Cells["order 6"])
		}
		// Zipf profiles produce smaller trees than uniform (hot values
		// repeat): the paper's center-vs-left comparison.
		if zipf.Points[i].Cells["order 1"] >= pt.Cells["order 1"] {
			t.Errorf("prefs %d: zipf (%d) not smaller than uniform (%d)",
				pt.NumPrefs, zipf.Points[i].Cells["order 1"], pt.Cells["order 1"])
		}
	}
	// Tree size grows with profile size.
	if uni.Points[0].Cells["order 1"] >= uni.Points[len(uni.Points)-1].Cells["order 1"] {
		t.Error("tree size should grow with profile size")
	}
	for _, frag := range []string{"Fig. 6", "order 1", "serial", "500"} {
		if !strings.Contains(uni.Render(), frag) {
			t.Errorf("Render missing %q", frag)
		}
	}
	if !strings.Contains(zipf.Render(), "zipf a=1.5") {
		t.Error("zipf Render should name the distribution")
	}
}

func TestFig6SkewCrossover(t *testing.T) {
	res, err := Fig6Skew(2007)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.As) != len(Fig6SkewAs) || len(res.Labels) != 3 {
		t.Fatalf("shape: %d as, %d labels", len(res.As), len(res.Labels))
	}
	first, last := 0, len(res.As)-1
	// At a=0 (uniform) the standard rule holds: order 1 (200 lowest)
	// is best.
	if !(res.Cells["order 1"][first] <= res.Cells["order 3"][first]) {
		t.Errorf("a=0: order 1 (%d) should beat order 3 (%d)",
			res.Cells["order 1"][first], res.Cells["order 3"][first])
	}
	// At a=3.5 the paper's crossover: mapping the skewed 200-value
	// parameter higher wins despite its large domain.
	if !(res.Cells["order 3"][last] < res.Cells["order 1"][last]) {
		t.Errorf("a=3.5: order 3 (%d) should beat order 1 (%d)",
			res.Cells["order 3"][last], res.Cells["order 1"][last])
	}
	// Skew shrinks the skewed orderings monotonically-ish: last < first.
	if !(res.Cells["order 3"][last] < res.Cells["order 3"][first]) {
		t.Error("higher skew should shrink order 3")
	}
	if !strings.Contains(res.Render(), "Fig. 6 (right)") {
		t.Error("Render missing title")
	}
}

func TestFig7RealShapes(t *testing.T) {
	res, err := Fig7Real(2007)
	if err != nil {
		t.Fatal(err)
	}
	// Tree beats serial by a wide margin on both workloads.
	if !(res.Exact.TreeCells*10 < res.Exact.SerialCells) {
		t.Errorf("exact: tree %v not ≪ serial %v", res.Exact.TreeCells, res.Exact.SerialCells)
	}
	if !(res.Cover.TreeCells*5 < res.Cover.SerialCells) {
		t.Errorf("cover: tree %v not ≪ serial %v", res.Cover.TreeCells, res.Cover.SerialCells)
	}
	// Non-exact costs more than exact for both stores.
	if !(res.Exact.TreeCells < res.Cover.TreeCells) {
		t.Errorf("tree: exact %v should cost less than cover %v", res.Exact.TreeCells, res.Cover.TreeCells)
	}
	if !(res.Exact.SerialCells <= res.Cover.SerialCells) {
		t.Errorf("serial: exact %v should cost less than cover %v", res.Exact.SerialCells, res.Cover.SerialCells)
	}
	if !strings.Contains(res.Render(), "Fig. 7 (left)") {
		t.Error("Render missing title")
	}
}

func TestFig7SyntheticShapes(t *testing.T) {
	for _, exact := range []bool{true, false} {
		res, err := Fig7Synthetic(exact, 2007)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Points) != len(Fig6Sizes) {
			t.Fatalf("points = %d", len(res.Points))
		}
		for _, pt := range res.Points {
			// Tree ≪ serial under both distributions.
			if !(pt.Uniform.TreeCells*10 < pt.Uniform.SerialCells) {
				t.Errorf("exact=%v prefs=%d uniform: tree %v not ≪ serial %v",
					exact, pt.NumPrefs, pt.Uniform.TreeCells, pt.Uniform.SerialCells)
			}
			if !(pt.Zipf.TreeCells*10 < pt.Zipf.SerialCells) {
				t.Errorf("exact=%v prefs=%d zipf: tree %v not ≪ serial %v",
					exact, pt.NumPrefs, pt.Zipf.TreeCells, pt.Zipf.SerialCells)
			}
		}
		// Serial cost grows with profile size; tree grows much slower.
		firstU, lastU := res.Points[0], res.Points[len(res.Points)-1]
		if !(firstU.Uniform.SerialCells < lastU.Uniform.SerialCells) {
			t.Errorf("exact=%v: serial should grow with profile size", exact)
		}
		serialGrowth := lastU.Uniform.SerialCells / firstU.Uniform.SerialCells
		treeGrowth := lastU.Uniform.TreeCells / firstU.Uniform.TreeCells
		if !(treeGrowth < serialGrowth) {
			t.Errorf("exact=%v: tree growth %v should trail serial growth %v", exact, treeGrowth, serialGrowth)
		}
		title := "Fig. 7 (center, exact match)"
		if !exact {
			title = "Fig. 7 (right, non-exact match)"
		}
		if !strings.Contains(res.Render(), title) {
			t.Errorf("Render missing %q", title)
		}
	}
}

func TestTable1Shapes(t *testing.T) {
	cfg := usability.DefaultConfig()
	cfg.NumUsers = 5
	cfg.NumPOIs = 200
	cfg.QueriesPerCase = 10
	res, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	avg := res.Study.Averages()
	// Paper shapes: precision is generally high; Jaccard does not trail
	// Hierarchy on multi-cover resolutions.
	if avg.ExactPct < 55 || avg.OneCoverPct < 55 {
		t.Errorf("avg precision too low: exact %v, 1-cover %v", avg.ExactPct, avg.OneCoverPct)
	}
	if avg.MultiJaccardPct+12 < avg.MultiHierarchyPct {
		t.Errorf("Jaccard (%v) trails Hierarchy (%v) too much", avg.MultiJaccardPct, avg.MultiHierarchyPct)
	}
	out := res.Render()
	for _, frag := range []string{"Table 1", "User 1", "Num of updates", "Jaccard", "Avg"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Render missing %q", frag)
		}
	}
}

func TestDistanceAblation(t *testing.T) {
	res, err := DistanceAblation(2007, 150)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Fatal("no multi-candidate resolutions found")
	}
	// The paper's explanation of Table 1: the hierarchy distance ties
	// far more often than Jaccard.
	if res.HierarchyTies <= res.JaccardTies {
		t.Errorf("hierarchy ties (%d) should exceed jaccard ties (%d)",
			res.HierarchyTies, res.JaccardTies)
	}
	if !strings.Contains(res.Render(), "hierarchy") {
		t.Error("Render missing metric name")
	}
}

func TestSearchAblation(t *testing.T) {
	res, err := SearchAblation(2007, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Agreements != res.Queries {
		t.Errorf("strategies disagree: %d/%d", res.Agreements, res.Queries)
	}
	if res.PrunedCells > res.CollectCells {
		t.Errorf("pruned (%v) should not exceed collect-all (%v)", res.PrunedCells, res.CollectCells)
	}
	if !strings.Contains(res.Render(), "branch-and-bound") {
		t.Error("Render missing strategy name")
	}
}

func TestCacheAblation(t *testing.T) {
	res, err := CacheAblation(2007, 150)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits == 0 {
		t.Error("repeating workload should produce cache hits")
	}
	if res.CachedAccesses >= res.UncachedAccesses {
		t.Errorf("cache should reduce accesses: %d vs %d", res.CachedAccesses, res.UncachedAccesses)
	}
	if !strings.Contains(res.Render(), "context query tree") {
		t.Error("Render missing configuration name")
	}
}

func TestRenderTable(t *testing.T) {
	out := renderTable("Title", []string{"A", "LongHeader"}, [][]string{{"x", "1"}, {"yy", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "LongHeader") || !strings.Contains(lines[2], "---") {
		t.Errorf("header/separator wrong: %q / %q", lines[1], lines[2])
	}
	// No-title variant.
	out = renderTable("", []string{"A"}, nil)
	if strings.HasPrefix(out, "\n") {
		t.Error("empty title should not emit a blank line")
	}
	if fmtF(1.25) != "1.2" && fmtF(1.25) != "1.3" {
		t.Errorf("fmtF = %q", fmtF(1.25))
	}
	if fmtI(42) != "42" {
		t.Errorf("fmtI = %q", fmtI(42))
	}
}

func TestMeasureTreeErrors(t *testing.T) {
	env, err := dataset.Fig6Environment()
	if err != nil {
		t.Fatal(err)
	}
	// Invalid order propagates.
	_, err = measureTree(env, nil, NamedOrder{Label: "bad", Order: []int{0}})
	if err == nil {
		t.Error("bad order should fail")
	}
	_ = ctxmodel.State{}
}
