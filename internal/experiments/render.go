// Package experiments reproduces every table and figure of the
// evaluation section of "Adding Context to Preferences" (ICDE 2007):
// Table 1 (usability study), Fig. 5 (profile-tree size, real profile),
// Fig. 6 (profile-tree size, synthetic profiles under uniform, zipf and
// mixed-skew distributions) and Fig. 7 (cell accesses during context
// resolution, real and synthetic profiles), plus the ablation studies
// DESIGN.md calls out. Each experiment returns structured results and
// renders a plain-text table whose rows correspond to the paper's data
// series.
package experiments

import (
	"fmt"
	"strings"
)

// renderTable renders an aligned text table with a header row.
func renderTable(title string, headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// fmtF renders a float with one decimal.
func fmtF(v float64) string { return fmt.Sprintf("%.1f", v) }

// fmtI renders an int.
func fmtI(v int) string { return fmt.Sprintf("%d", v) }
