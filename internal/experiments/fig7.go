package experiments

import (
	"fmt"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/dataset"
	"contextpref/internal/distance"
	"contextpref/internal/preference"
	"contextpref/internal/profiletree"
)

// NumQueries is the query-workload size of the Fig. 7 experiments.
const NumQueries = 50

// AccessStats holds average cell accesses per query for the profile
// tree and the sequential scan.
type AccessStats struct {
	// TreeCells is the average cells accessed per query using the tree.
	TreeCells float64
	// SerialCells is the average cells accessed per query scanning
	// sequentially.
	SerialCells float64
}

// Fig7RealResult reproduces Fig. 7 (left): cell accesses during context
// resolution over the real profile, for exact and non-exact workloads.
type Fig7RealResult struct {
	// NumPrefs is the profile size (522).
	NumPrefs int
	// Exact holds the exact-match workload averages.
	Exact AccessStats
	// Cover holds the non-exact (cover) workload averages.
	Cover AccessStats
}

// bestOrder returns the ordering that maps larger domains lower in the
// tree — the configuration the paper uses for the Fig. 7 measurements.
func bestOrder(env *ctxmodel.Environment) []int {
	orders := PaperOrders(env)
	return orders[0].Order // order 1 = ascending domain sizes
}

// buildStores indexes the preferences in a tree (best ordering) and the
// sequential baseline.
func buildStores(env *ctxmodel.Environment, prefs []preference.Preference) (*profiletree.Tree, *profiletree.Sequential, error) {
	tr, err := profiletree.New(env, bestOrder(env))
	if err != nil {
		return nil, nil, err
	}
	sq, err := profiletree.NewSequential(env)
	if err != nil {
		return nil, nil, err
	}
	for _, p := range prefs {
		if err := tr.Insert(p); err != nil {
			return nil, nil, err
		}
		if err := sq.Insert(p); err != nil {
			return nil, nil, err
		}
	}
	return tr, sq, nil
}

// measureExact averages exact-lookup accesses over the workload.
func measureExact(tr *profiletree.Tree, sq *profiletree.Sequential, queries []ctxmodel.State) (AccessStats, error) {
	var stats AccessStats
	for _, q := range queries {
		_, a, err := tr.SearchExact(q)
		if err != nil {
			return stats, err
		}
		stats.TreeCells += float64(a)
		_, a, err = sq.SearchExact(q)
		if err != nil {
			return stats, err
		}
		stats.SerialCells += float64(a)
	}
	n := float64(len(queries))
	stats.TreeCells /= n
	stats.SerialCells /= n
	return stats, nil
}

// measureCover averages cover-search accesses over the workload.
func measureCover(tr *profiletree.Tree, sq *profiletree.Sequential, queries []ctxmodel.State) (AccessStats, error) {
	var stats AccessStats
	m := distance.Hierarchy{}
	for _, q := range queries {
		_, a, err := tr.SearchCover(q, m)
		if err != nil {
			return stats, err
		}
		stats.TreeCells += float64(a)
		_, a, err = sq.SearchCover(q, m)
		if err != nil {
			return stats, err
		}
		stats.SerialCells += float64(a)
	}
	n := float64(len(queries))
	stats.TreeCells /= n
	stats.SerialCells /= n
	return stats, nil
}

// Fig7Real runs the real-profile access measurement.
func Fig7Real(seed int64) (*Fig7RealResult, error) {
	env, prefs, err := dataset.RealProfile(seed)
	if err != nil {
		return nil, err
	}
	tr, sq, err := buildStores(env, prefs)
	if err != nil {
		return nil, err
	}
	res := &Fig7RealResult{NumPrefs: len(prefs)}
	exactQs, err := dataset.QueriesFromPrefs(env, prefs, NumQueries, seed+1)
	if err != nil {
		return nil, err
	}
	if res.Exact, err = measureExact(tr, sq, exactQs); err != nil {
		return nil, err
	}
	coverQs, err := dataset.RandomQueries(env, NumQueries, seed+2, 0.3)
	if err != nil {
		return nil, err
	}
	if res.Cover, err = measureCover(tr, sq, coverQs); err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats Fig. 7 (left).
func (f *Fig7RealResult) Render() string {
	headers := []string{"Workload", "Profile tree (cells/query)", "Serial (cells/query)"}
	rows := [][]string{
		{"exact match", fmtF(f.Exact.TreeCells), fmtF(f.Exact.SerialCells)},
		{"non-exact match", fmtF(f.Cover.TreeCells), fmtF(f.Cover.SerialCells)},
	}
	title := fmt.Sprintf("Fig. 7 (left): cell accesses per context resolution, real profile (%d preferences)", f.NumPrefs)
	return renderTable(title, headers, rows)
}

// Fig7SyntheticPoint is one profile size of the synthetic sweep.
type Fig7SyntheticPoint struct {
	// NumPrefs is the profile size.
	NumPrefs int
	// Uniform and Zipf hold tree accesses per distribution; Serial
	// holds the per-distribution serial baseline.
	Uniform, Zipf AccessStats
}

// Fig7SyntheticResult reproduces Fig. 7 center (exact match) or right
// (non-exact match): cell accesses versus profile size over the
// synthetic 50/100/1000 environment for uniform and zipf profiles.
type Fig7SyntheticResult struct {
	// Exact distinguishes the center (true) and right (false) panels.
	Exact bool
	// Points holds one entry per profile size.
	Points []Fig7SyntheticPoint
}

// Fig7Synthetic runs the synthetic sweep.
func Fig7Synthetic(exact bool, seed int64) (*Fig7SyntheticResult, error) {
	env, err := dataset.Fig6Environment()
	if err != nil {
		return nil, err
	}
	res := &Fig7SyntheticResult{Exact: exact}
	for _, n := range Fig6Sizes {
		point := Fig7SyntheticPoint{NumPrefs: n}
		for _, dist := range []dataset.Dist{dataset.Uniform, dataset.Zipf} {
			prefs, err := dataset.ProfileSpec{
				Env:      env,
				NumPrefs: n,
				Seed:     seed + int64(n),
				Dist:     dist,
				ZipfA:    1.5,
				// Mixed-level preferences give the non-exact workload
				// covering states to find, as in the paper's setup
				// where query values span hierarchy levels.
				UpperLevelProb: 0.15,
			}.Generate()
			if err != nil {
				return nil, err
			}
			tr, sq, err := buildStores(env, prefs)
			if err != nil {
				return nil, err
			}
			var stats AccessStats
			if exact {
				qs, err := dataset.QueriesFromPrefs(env, prefs, NumQueries, seed+3)
				if err != nil {
					return nil, err
				}
				if stats, err = measureExact(tr, sq, qs); err != nil {
					return nil, err
				}
			} else {
				qs, err := dataset.RandomQueries(env, NumQueries, seed+4, 0.3)
				if err != nil {
					return nil, err
				}
				if stats, err = measureCover(tr, sq, qs); err != nil {
					return nil, err
				}
			}
			if dist == dataset.Uniform {
				point.Uniform = stats
			} else {
				point.Zipf = stats
			}
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// Render formats one synthetic panel of Fig. 7.
func (f *Fig7SyntheticResult) Render() string {
	headers := []string{"Prefs", "tree/uniform", "tree/zipf", "serial/uniform", "serial/zipf"}
	var rows [][]string
	for _, pt := range f.Points {
		rows = append(rows, []string{
			fmtI(pt.NumPrefs),
			fmtF(pt.Uniform.TreeCells), fmtF(pt.Zipf.TreeCells),
			fmtF(pt.Uniform.SerialCells), fmtF(pt.Zipf.SerialCells),
		})
	}
	panel := "center, exact match"
	if !f.Exact {
		panel = "right, non-exact match"
	}
	title := fmt.Sprintf("Fig. 7 (%s): cell accesses per query vs profile size, domains 50/100/1000", panel)
	return renderTable(title, headers, rows)
}
