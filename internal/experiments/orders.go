package experiments

import (
	"fmt"
	"sort"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/profiletree"
)

// NamedOrder is a parameter-to-level assignment with the paper's label.
type NamedOrder struct {
	// Label is "order 1" .. "order n!" in the paper's numbering.
	Label string
	// Order maps tree levels to environment parameter indexes.
	Order []int
	// Sizes are the detailed-domain cardinalities per tree level, e.g.
	// (4, 17, 100) for the real profile's order 1.
	Sizes []int
}

// PaperOrders enumerates every parameter-to-level assignment using the
// paper's numbering convention: parameters are first ranked by detailed
// domain cardinality (ascending), and permutations are then labeled in
// lexicographic order of those ranks. For the real profile
// (A=4, T=17, L=100) this yields the paper's order 1 = (A, T, L),
// order 2 = (A, L, T), ..., order 6 = (L, T, A); for the synthetic
// profiles it yields order 1 = (50, 100, 1000), order 2 =
// (50, 1000, 100), ..., order 6 = (1000, 100, 50).
func PaperOrders(env *ctxmodel.Environment) []NamedOrder {
	n := env.NumParams()
	// Rank parameters by ascending domain size (stable on ties).
	bysize := make([]int, n)
	for i := range bysize {
		bysize[i] = i
	}
	size := func(p int) int { return len(env.Param(p).Hierarchy().DetailedValues()) }
	sort.SliceStable(bysize, func(a, b int) bool { return size(bysize[a]) < size(bysize[b]) })

	perms := profiletree.AllOrders(n)
	out := make([]NamedOrder, 0, len(perms))
	for i, perm := range perms {
		// perm permutes ranks; map ranks back to parameter indexes.
		order := make([]int, n)
		sizes := make([]int, n)
		for lvl, rank := range perm {
			order[lvl] = bysize[rank]
			sizes[lvl] = size(order[lvl])
		}
		out = append(out, NamedOrder{
			Label: fmt.Sprintf("order %d", i+1),
			Order: order,
			Sizes: sizes,
		})
	}
	return out
}

// orderSizesLabel renders the level sizes, e.g. "(50, 100, 1000)".
func orderSizesLabel(sizes []int) string {
	parts := make([]string, len(sizes))
	for i, s := range sizes {
		parts[i] = fmt.Sprintf("%d", s)
	}
	return "(" + joinComma(parts) + ")"
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}
