package experiments

import (
	"fmt"

	"contextpref/internal/usability"
)

// Table1Result wraps the simulated user study of Table 1.
type Table1Result struct {
	// Study holds the per-user rows.
	Study *usability.StudyResult
}

// Table1 runs the usability study with the given configuration
// (usability.DefaultConfig mirrors the paper: 10 users, top-20).
func Table1(cfg usability.Config) (*Table1Result, error) {
	study, err := usability.Run(cfg)
	if err != nil {
		return nil, err
	}
	return &Table1Result{Study: study}, nil
}

// Render formats the study like the paper's Table 1: one column per
// user, one row per measure, plus an average column.
func (t *Table1Result) Render() string {
	users := t.Study.Users
	headers := []string{"Measure"}
	for _, u := range users {
		headers = append(headers, fmt.Sprintf("User %d", u.User))
	}
	headers = append(headers, "Avg")
	avg := t.Study.Averages()

	row := func(name string, cell func(usability.UserResult) string, avgCell string) []string {
		r := []string{name}
		for _, u := range users {
			r = append(r, cell(u))
		}
		return append(r, avgCell)
	}
	pct := func(v float64) string { return fmt.Sprintf("%.0f%%", v) }
	rows := [][]string{
		row("Num of updates", func(u usability.UserResult) string { return fmtI(u.Updates) }, fmtI(avg.Updates)),
		row("Update time (mins)", func(u usability.UserResult) string { return fmtI(u.Minutes) }, fmtI(avg.Minutes)),
		row("Exact match", func(u usability.UserResult) string { return pct(u.ExactPct) }, pct(avg.ExactPct)),
		row("1 cover state", func(u usability.UserResult) string { return pct(u.OneCoverPct) }, pct(avg.OneCoverPct)),
		row("More covers: Hierarchy", func(u usability.UserResult) string { return pct(u.MultiHierarchyPct) }, pct(avg.MultiHierarchyPct)),
		row("More covers: Jaccard", func(u usability.UserResult) string { return pct(u.MultiJaccardPct) }, pct(avg.MultiJaccardPct)),
	}
	return renderTable("Table 1: User Study Results (simulated users)", headers, rows)
}
