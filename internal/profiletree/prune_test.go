package profiletree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/distance"
	"contextpref/internal/preference"
)

func TestSearchCoverBestPaperScenario(t *testing.T) {
	e, tr := fig4Tree(t)
	q := st(t, e, "Plaka", "warm", "friends")
	best, accesses, ok, err := tr.SearchCoverBest(q, distance.Hierarchy{})
	if err != nil || !ok {
		t.Fatalf("SearchCoverBest: %v, ok=%v", err, ok)
	}
	if !best.State.Equal(st(t, e, "Plaka", "warm", "all")) || best.Distance != 1 {
		t.Errorf("best = %v (%v)", best.State, best.Distance)
	}
	if accesses <= 0 {
		t.Error("no accesses counted")
	}
	// Pruning never accesses more cells than collect-all.
	_, collectAccesses, err := tr.SearchCover(q, distance.Hierarchy{})
	if err != nil {
		t.Fatal(err)
	}
	if accesses > collectAccesses {
		t.Errorf("pruned accesses %d > collect accesses %d", accesses, collectAccesses)
	}
	// No covering state.
	e2 := env(t)
	tr2, _ := New(e2, nil)
	tr2.Insert(preference.MustNew(
		ctxmodel.MustDescriptor(ctxmodel.Eq("temperature", "cold")),
		clause("type", "museum"), 0.5))
	_, _, ok, err = tr2.SearchCoverBest(st(t, e2, "Plaka", "warm", "friends"), distance.Hierarchy{})
	if err != nil || ok {
		t.Errorf("no-cover SearchCoverBest ok=%v err=%v", ok, err)
	}
	// Invalid state.
	if _, _, _, err := tr.SearchCoverBest(ctxmodel.State{"x"}, distance.Hierarchy{}); err == nil {
		t.Error("invalid state should fail")
	}
}

// Property: SearchCoverBest agrees with Best(SearchCover) on existence,
// distance and tie-broken state, and never costs more accesses.
func TestQuickSearchCoverBestEquivalence(t *testing.T) {
	e := env(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr, _ := New(e, AllOrders(3)[r.Intn(6)])
		for _, p := range randomPrefs(e, r, 1+r.Intn(30)) {
			_ = tr.Insert(p)
		}
		for _, m := range distance.All() {
			for q := 0; q < 8; q++ {
				qs := make(ctxmodel.State, e.NumParams())
				for i := range qs {
					ed := e.Param(i).Hierarchy().ExtendedDomain()
					qs[i] = ed[r.Intn(len(ed))]
				}
				cands, aCollect, err1 := tr.SearchCover(qs, m)
				want, okWant := Best(cands)
				got, aPruned, okGot, err2 := tr.SearchCoverBest(qs, m)
				if err1 != nil || err2 != nil || okWant != okGot {
					return false
				}
				if aPruned > aCollect {
					return false
				}
				if okWant {
					if got.Distance != want.Distance || !got.State.Equal(want.State) {
						return false
					}
					if len(got.Entries) != len(want.Entries) {
						return false
					}
					if got.Specificity != want.Specificity {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCandidateSpecificity(t *testing.T) {
	e, tr := fig4Tree(t)
	q := st(t, e, "Plaka", "warm", "friends")
	cands, _, err := tr.SearchCover(q, distance.Hierarchy{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{
		// (all, all, friends): 7 regions × 5 conditions × 1.
		st(t, e, "all", "all", "friends").Key(): 35,
		// (Plaka, warm, all): 1 × 1 × 3 relationships.
		st(t, e, "Plaka", "warm", "all").Key(): 3,
	}
	for _, c := range cands {
		if w, ok := want[c.State.Key()]; !ok || c.Specificity != w {
			t.Errorf("Specificity(%v) = %d, want %d", c.State, c.Specificity, w)
		}
	}
}
