// Package profiletree implements the profile tree of Section 3.3 of
// "Adding Context to Preferences" (ICDE 2007) — a trie-like index over
// the context states appearing in a profile — together with the
// Search_CS context-resolution algorithm (Algorithm 1, Section 4.4) and
// the sequential-scan baseline the paper's performance evaluation
// compares against.
//
// Structure. The tree has one level per context parameter plus a leaf
// level, so its height is n+1. Every non-leaf node holds cells
// [key, pointer] with key ∈ edom(Ck) ∪ {all} for the parameter Ck
// assigned to that level; no two cells of a node share a key. A leaf
// node stores the attribute clauses and interest scores of the
// preferences whose descriptors produced the root-to-leaf path.
//
// Cost accounting. NumCells, Bytes and the access counters returned by
// the search methods implement the paper's cost model: one "cell" is
// one [key, pointer] pair of an internal node or one
// [attribute = value, score] entry of a leaf, and a search "accesses" a
// cell when it examines it during the linear scan of a node. The
// byte model charges each internal cell len(key) + PointerBytes and
// each leaf entry its clause text plus ScoreBytes.
package profiletree

import (
	"context"
	"fmt"
	"sort"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/distance"
	"contextpref/internal/preference"
	"contextpref/internal/telemetry"
	"contextpref/internal/tracing"
)

// PointerBytes is the byte cost charged per internal cell pointer.
const PointerBytes = 8

// ScoreBytes is the byte cost charged per stored interest score.
const ScoreBytes = 8

// cancelCheckEvery is the cooperative-cancellation granularity of the
// search loops: ctx.Err() is consulted once per this many cell
// accesses, bounding both the cancellation latency (at most this many
// cells of extra work after the deadline) and the per-cell overhead (a
// mask test on the fast path). It must be a power of two.
const cancelCheckEvery = 64

// canceled wraps a context error in the package's error vocabulary;
// errors.Is still sees context.Canceled / context.DeadlineExceeded.
func canceled(err error) error {
	return fmt.Errorf("profiletree: search stopped: %w", err)
}

// Leaf is one [attribute clause, interest score] entry of a leaf node.
type Leaf struct {
	// Clause is the preference's attribute clause.
	Clause preference.Clause
	// Score is the preference's degree of interest.
	Score float64
}

// node is either an internal node (keys/children, parallel slices in
// insertion order) or a leaf node (entries).
type node struct {
	keys     []string
	children []*node
	entries  []Leaf
}

// find linearly scans the node's cells for a key, returning the child
// and the number of cells examined.
func (nd *node) find(key string) (*node, int) {
	for i, k := range nd.keys {
		if k == key {
			return nd.children[i], i + 1
		}
	}
	return nil, len(nd.keys)
}

// child returns the child for key, creating it if absent; created
// reports whether a new cell was added.
func (nd *node) child(key string) (c *node, created bool) {
	if c, _ := nd.find(key); c != nil {
		return c, false
	}
	c = &node{}
	nd.keys = append(nd.keys, key)
	nd.children = append(nd.children, c)
	return c, true
}

// Tree is a profile tree over a context environment. The zero Tree is
// not usable; construct with New.
type Tree struct {
	env   *ctxmodel.Environment
	order []int // order[level] = environment index of the parameter at that tree level
	root  *node

	numPaths         int // distinct root-to-leaf paths (context states)
	numInternalCells int
	numLeafEntries   int
	numPrefs         int

	// metrics, when set, observes the paper's cost model live; nil (the
	// default) costs one pointer check per resolution.
	metrics *Metrics
}

// Metrics are the resolution cost counters a Tree reports, mirroring
// the paper's Section 5 cost model (cells accessed per resolution,
// candidates per resolution). Every field is optional: nil fields — and
// a nil *Metrics — are no-ops, so instrumentation can be switched off
// entirely or per metric.
type Metrics struct {
	// Resolutions counts Resolve/ResolveAll calls by outcome ("hit",
	// "miss"): a hit found at least one covering state.
	Resolutions *telemetry.CounterVec
	// CellsVisited counts profile-tree cells accessed during
	// resolution — the paper's per-query cost metric, aggregated.
	CellsVisited *telemetry.Counter
	// CandidatesFound counts covering states discovered.
	CandidatesFound *telemetry.Counter
	// CellsPerResolve is the per-resolution distribution of cells
	// accessed.
	CellsPerResolve *telemetry.Histogram
}

// observe records one resolution's cost; nil-safe.
func (m *Metrics) observe(cells, candidates int, hit bool) {
	if m == nil {
		return
	}
	outcome := "miss"
	if hit {
		outcome = "hit"
	}
	m.Resolutions.With(outcome).Inc()
	m.CellsVisited.Add(cells)
	m.CandidatesFound.Add(candidates)
	m.CellsPerResolve.Observe(float64(cells))
}

// SetMetrics attaches (or, with nil, detaches) resolution cost
// counters. Call before serving; the Tree does not synchronize metric
// swaps with concurrent searches.
func (t *Tree) SetMetrics(m *Metrics) { t.metrics = m }

// New creates an empty profile tree. order maps tree levels to
// environment parameter indexes (order[0] is the parameter indexed at
// the first level); nil means the identity order. The paper shows that
// placing parameters with larger domains lower in the tree minimizes
// its size — see Fig. 5/6, reproduced by the experiments package.
func New(env *ctxmodel.Environment, order []int) (*Tree, error) {
	if env == nil {
		return nil, fmt.Errorf("profiletree: nil environment")
	}
	n := env.NumParams()
	if order == nil {
		order = IdentityOrder(n)
	}
	if len(order) != n {
		return nil, fmt.Errorf("profiletree: order has %d entries, environment has %d parameters", len(order), n)
	}
	seen := make([]bool, n)
	for _, p := range order {
		if p < 0 || p >= n || seen[p] {
			return nil, fmt.Errorf("profiletree: order %v is not a permutation of 0..%d", order, n-1)
		}
		seen[p] = true
	}
	return &Tree{
		env:   env,
		order: append([]int(nil), order...),
		root:  &node{},
	}, nil
}

// IdentityOrder returns [0, 1, ..., n-1].
func IdentityOrder(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// AllOrders enumerates every permutation of n parameters in
// lexicographic order; the paper's "order 1" .. "order n!" labels index
// into this slice after domain-size sorting (see the experiments
// package).
func AllOrders(n int) [][]int {
	var out [][]int
	perm := IdentityOrder(n)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		// Lexicographic: choose each remaining element in order.
		rest := append([]int(nil), perm[k:]...)
		sort.Ints(rest)
		copy(perm[k:], rest)
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			sub := append([]int(nil), perm[k+1:]...)
			sort.Ints(sub)
			copy(perm[k+1:], sub)
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return out
}

// Env returns the environment the tree indexes.
func (t *Tree) Env() *ctxmodel.Environment { return t.env }

// Order returns the parameter-to-level assignment.
func (t *Tree) Order() []int { return append([]int(nil), t.order...) }

// NumPaths returns the number of distinct context states stored.
func (t *Tree) NumPaths() int { return t.numPaths }

// NumPreferences returns how many preferences were inserted.
func (t *Tree) NumPreferences() int { return t.numPrefs }

// NumInternalCells returns the number of [key, pointer] cells.
func (t *Tree) NumInternalCells() int { return t.numInternalCells }

// NumLeafEntries returns the number of [clause, score] leaf entries.
func (t *Tree) NumLeafEntries() int { return t.numLeafEntries }

// NumCells returns the paper's cell count: internal cells plus leaf
// entries.
func (t *Tree) NumCells() int { return t.numInternalCells + t.numLeafEntries }

// Bytes returns the modeled storage size of the tree, charging
// PointerBytes per internal cell pointer.
func (t *Tree) Bytes() int { return t.BytesModel(PointerBytes) }

// KeyBytes returns the storage size under the paper's byte accounting,
// which counts only stored key/value/score payloads (Fig. 5's serial
// profile ≈ 12.8 KB over ≈ 2.1k cells implies ~6 B per cell — string
// payloads with no pointer charge).
func (t *Tree) KeyBytes() int { return t.BytesModel(0) }

// BytesModel returns the modeled storage size charging pointerBytes per
// internal cell pointer.
func (t *Tree) BytesModel(pointerBytes int) int {
	total := 0
	var walk func(nd *node)
	walk = func(nd *node) {
		for i, k := range nd.keys {
			total += len(k) + pointerBytes
			walk(nd.children[i])
		}
		for _, e := range nd.entries {
			total += leafEntryBytes(e)
		}
	}
	walk(t.root)
	return total
}

// leafEntryBytes is the modeled size of one leaf entry.
func leafEntryBytes(e Leaf) int {
	return len(e.Clause.Attr) + len(e.Clause.Val.String()) + ScoreBytes
}

// toTreeOrder converts a state from environment order to tree-level
// order.
func (t *Tree) toTreeOrder(s ctxmodel.State) []string {
	out := make([]string, len(s))
	for level, param := range t.order {
		out[level] = s[param]
	}
	return out
}

// toEnvOrder converts a tree-level path back to environment order.
func (t *Tree) toEnvOrder(path []string) ctxmodel.State {
	out := make(ctxmodel.State, len(path))
	for level, param := range t.order {
		out[param] = path[level]
	}
	return out
}

// Insert adds every context state of the preference's descriptor to the
// tree (Section 3.3). Conflicts (Def. 6) are detected during insertion
// by traversing each state's root-to-leaf path first: if any state
// carries the same clause with a different score, Insert returns a
// *preference.ConflictError and the tree is left unchanged. Re-inserting
// an identical (state, clause, score) triple is a no-op for that state.
func (t *Tree) Insert(p preference.Preference) error {
	if err := t.checkInsert(p, nil); err != nil {
		return err
	}
	t.applyInsert(p)
	return nil
}

// checkInsert validates one preference without mutating the tree: score
// range, descriptor validity, and Def. 6 conflicts against both the
// stored entries and — when pending is non-nil — entries accumulated by
// earlier members of the same batch.
func (t *Tree) checkInsert(p preference.Preference, pending map[string]float64) error {
	if p.Score < 0 || p.Score > 1 {
		return fmt.Errorf("profiletree: interest score %v outside [0, 1]", p.Score)
	}
	states, err := p.Descriptor.Context(t.env)
	if err != nil {
		return err
	}
	for _, s := range states {
		if leafNode, _, _ := t.descendExact(s); leafNode != nil {
			for _, e := range leafNode.entries {
				if e.Clause.Equal(p.Clause) && e.Score != p.Score {
					return &preference.ConflictError{
						New:      p,
						Existing: preference.Preference{Descriptor: p.Descriptor, Clause: e.Clause, Score: e.Score},
						State:    s,
					}
				}
			}
		}
		if pending != nil {
			k := s.Key() + "\x1f" + p.Clause.Key()
			if sc, ok := pending[k]; ok && sc != p.Score {
				return &preference.ConflictError{
					New:      p,
					Existing: preference.Preference{Descriptor: p.Descriptor, Clause: p.Clause, Score: sc},
					State:    s,
				}
			}
			pending[k] = p.Score
		}
	}
	return nil
}

// CheckInsert reports the error InsertAll would return for the batch
// without mutating the tree: each preference is validated against the
// stored state and against the earlier members of the batch. A nil
// return guarantees InsertAll on the same batch succeeds (absent
// intervening mutations). Batch errors are annotated with the failing
// index ("preference %d: ...").
func (t *Tree) CheckInsert(ps ...preference.Preference) error {
	pending := make(map[string]float64)
	for i, p := range ps {
		if err := t.checkInsert(p, pending); err != nil {
			if len(ps) > 1 {
				return fmt.Errorf("preference %d: %w", i, err)
			}
			return err
		}
	}
	return nil
}

// InsertAll inserts a batch atomically: the whole batch is validated
// with CheckInsert first, and only then applied, so a failing batch
// leaves the tree completely unchanged — callers never observe a
// half-applied profile.
func (t *Tree) InsertAll(ps ...preference.Preference) error {
	if err := t.CheckInsert(ps...); err != nil {
		return err
	}
	for _, p := range ps {
		t.applyInsert(p)
	}
	return nil
}

// applyInsert performs the insertion with incremental counter
// maintenance. It must only run after checkInsert passed, which makes
// the descriptor expansion infallible.
func (t *Tree) applyInsert(p preference.Preference) {
	states, _ := p.Descriptor.Context(t.env)
	for _, s := range states {
		path := t.toTreeOrder(s)
		nd := t.root
		for _, key := range path {
			var created bool
			nd, created = nd.child(key)
			if created {
				t.numInternalCells++
			}
		}
		dup := false
		for _, e := range nd.entries {
			if e.Clause.Equal(p.Clause) && e.Score == p.Score {
				dup = true
				break
			}
		}
		if !dup {
			if len(nd.entries) == 0 {
				t.numPaths++
			}
			nd.entries = append(nd.entries, Leaf{Clause: p.Clause, Score: p.Score})
			t.numLeafEntries++
		}
	}
	t.numPrefs++
}

// Delete removes the preference's (clause, score) entry from every
// context state its descriptor denotes, pruning paths whose leaves
// become empty so the tree's size accounting matches a fresh build of
// the remaining preferences. It returns how many leaf entries were
// removed (zero when nothing matched) — the usability study's users
// delete preferences from their default profiles, so removal is a
// first-class operation.
//
// Storage is per (state, clause, score) entry: insertion deduplicates
// an entry shared by two preferences, and deletion symmetrically
// removes it for both.
func (t *Tree) Delete(p preference.Preference) (int, error) {
	states, err := p.Descriptor.Context(t.env)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, s := range states {
		path := t.toTreeOrder(s)
		if t.deletePath(t.root, path, 0, p) {
			removed++
		}
	}
	if removed > 0 {
		t.numPrefs--
		if t.numPrefs < 0 {
			t.numPrefs = 0
		}
	}
	return removed, nil
}

// deletePath removes the entry along one path, pruning empty nodes
// bottom-up; it reports whether an entry was removed.
func (t *Tree) deletePath(nd *node, path []string, level int, p preference.Preference) bool {
	if level == len(path) {
		for i, e := range nd.entries {
			if e.Clause.Equal(p.Clause) && e.Score == p.Score {
				nd.entries = append(nd.entries[:i], nd.entries[i+1:]...)
				t.numLeafEntries--
				if len(nd.entries) == 0 {
					t.numPaths--
				}
				return true
			}
		}
		return false
	}
	for i, key := range nd.keys {
		if key != path[level] {
			continue
		}
		child := nd.children[i]
		if !t.deletePath(child, path, level+1, p) {
			return false
		}
		// Prune the cell if the child holds nothing anymore.
		if len(child.keys) == 0 && len(child.entries) == 0 {
			nd.keys = append(nd.keys[:i], nd.keys[i+1:]...)
			nd.children = append(nd.children[:i], nd.children[i+1:]...)
			t.numInternalCells--
		}
		return true
	}
	return false
}

// InsertProfile inserts every preference of the profile atomically: on
// error nothing is inserted.
func (t *Tree) InsertProfile(pr *preference.Profile) error {
	return t.InsertAll(pr.Preferences()...)
}

// descendExact follows the exact path for a state, returning the leaf
// node (nil if the path is absent) and the number of cells accessed.
func (t *Tree) descendExact(s ctxmodel.State) (*node, int, bool) {
	path := t.toTreeOrder(s)
	nd := t.root
	accesses := 0
	for _, key := range path {
		child, scanned := nd.find(key)
		accesses += scanned
		if child == nil {
			return nil, accesses, false
		}
		nd = child
	}
	return nd, accesses, true
}

// SearchExact looks up the exact context state (the first case of the
// paper's query-complexity analysis: a single root-to-leaf traversal).
// It returns the leaf entries for the state, the number of cells
// accessed, and whether the state is present.
func (t *Tree) SearchExact(s ctxmodel.State) ([]Leaf, int, error) {
	if err := t.env.Validate(s); err != nil {
		return nil, 0, err
	}
	nd, accesses, ok := t.descendExact(s)
	if !ok {
		return nil, accesses, nil
	}
	return append([]Leaf(nil), nd.entries...), accesses, nil
}

// Candidate is one root-to-leaf path found by Search_CS whose context
// state covers the searched state, annotated with its distance.
type Candidate struct {
	// State is the candidate context state, in environment parameter
	// order.
	State ctxmodel.State
	// Entries are the leaf entries stored under the state.
	Entries []Leaf
	// Distance is the metric distance from the searched state.
	Distance float64
	// Specificity is the number of detailed context states the
	// candidate covers (the product of its values' descendant-set
	// sizes) — the paper's "cardinality" of a state. Best prefers
	// smaller (more specific) states among equal distances, per the
	// Section 4.3 discussion of selecting the most specific match.
	Specificity int
}

// specificity computes the candidate-state cardinality.
func specificity(e *ctxmodel.Environment, s ctxmodel.State) int {
	total := 1
	for i, v := range s {
		if ds, err := e.Param(i).Hierarchy().Descendants(v); err == nil {
			total *= len(ds)
		}
	}
	return total
}

// SearchCover implements Algorithm 1 (Search_CS): it collects every
// root-to-leaf path whose context state covers the searched state,
// annotating each with its distance under the metric, and returns the
// number of cells accessed.
//
// At each level the algorithm follows both the cell that exactly
// matches the searched value and every cell holding an ancestor of it
// (including "all"). The paper's pseudocode phrases these as exclusive
// branches; following both is required for correctness when the exact
// branch dead-ends deeper in the tree while an ancestor branch reaches
// a leaf, and matches the paper's own cost analysis which charges for
// all "cells that have relevant values from the upper levels".
func (t *Tree) SearchCover(s ctxmodel.State, m distance.Metric) ([]Candidate, int, error) {
	return t.SearchCoverCtx(context.Background(), s, m)
}

// SearchCoverCtx is SearchCover with cooperative cancellation: the scan
// consults ctx once per cancelCheckEvery cell accesses and aborts with
// a wrapped ctx.Err() (errors.Is-matchable against context.Canceled and
// context.DeadlineExceeded) once the context is done, so a server
// deadline or a departed client stops the tree walk early instead of
// running it to completion.
//
//cpvet:scanloop
func (t *Tree) SearchCoverCtx(ctx context.Context, s ctxmodel.State, m distance.Metric) ([]Candidate, int, error) {
	if err := t.env.Validate(s); err != nil {
		return nil, 0, err
	}
	path := t.toTreeOrder(s)
	var out []Candidate
	accesses := 0
	cur := make([]string, 0, len(path))

	var rec func(nd *node, level int, dist float64) error
	rec = func(nd *node, level int, dist float64) error {
		if level == len(path) {
			if len(nd.entries) > 0 {
				st := t.toEnvOrder(cur)
				out = append(out, Candidate{
					State:       st,
					Entries:     append([]Leaf(nil), nd.entries...),
					Distance:    dist,
					Specificity: specificity(t.env, st),
				})
			}
			return nil
		}
		param := t.order[level]
		h := t.env.Param(param).Hierarchy()
		for i, key := range nd.keys {
			accesses++
			if accesses&(cancelCheckEvery-1) == 0 {
				if err := ctx.Err(); err != nil {
					return canceled(err)
				}
			}
			if !h.IsAncestorOrSelf(key, path[level]) {
				continue
			}
			d, err := m.ValueDistance(t.env, param, key, path[level])
			if err != nil {
				return err
			}
			cur = append(cur, key)
			err = rec(nd.children[i], level+1, dist+d)
			cur = cur[:len(cur)-1]
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(t.root, 0, 0); err != nil {
		return nil, accesses, err
	}
	return out, accesses, nil
}

// SearchCoverBest is the branch-and-bound variant the paper sketches as
// "a simple runtime check that keeps the current closest leaf": it
// explores the same cells as SearchCover but abandons any branch whose
// accumulated distance already reaches the best complete path found so
// far, returning only the best candidate. Both metrics are
// per-parameter sums of non-negative terms, so the accumulated distance
// is a lower bound and pruning is safe.
func (t *Tree) SearchCoverBest(s ctxmodel.State, m distance.Metric) (Candidate, int, bool, error) {
	return t.SearchCoverBestCtx(context.Background(), s, m)
}

// SearchCoverBestCtx is SearchCoverBest with cooperative cancellation,
// on the same contract as SearchCoverCtx.
//
//cpvet:scanloop
func (t *Tree) SearchCoverBestCtx(ctx context.Context, s ctxmodel.State, m distance.Metric) (Candidate, int, bool, error) {
	if err := t.env.Validate(s); err != nil {
		return Candidate{}, 0, false, err
	}
	path := t.toTreeOrder(s)
	var best Candidate
	found := false
	accesses := 0
	cur := make([]string, 0, len(path))

	var rec func(nd *node, level int, dist float64) error
	rec = func(nd *node, level int, dist float64) error {
		// Strict inequality: equal-distance paths are still explored so
		// the specificity tie-break agrees with Best(SearchCover(...)).
		if found && dist > best.Distance {
			return nil
		}
		if level == len(path) {
			if len(nd.entries) > 0 {
				st := t.toEnvOrder(cur)
				c := Candidate{
					State:       st,
					Entries:     append([]Leaf(nil), nd.entries...),
					Distance:    dist,
					Specificity: specificity(t.env, st),
				}
				if !found || betterCandidate(c, best) {
					best = c
					found = true
				}
			}
			return nil
		}
		param := t.order[level]
		h := t.env.Param(param).Hierarchy()
		for i, key := range nd.keys {
			accesses++
			if accesses&(cancelCheckEvery-1) == 0 {
				if err := ctx.Err(); err != nil {
					return canceled(err)
				}
			}
			if !h.IsAncestorOrSelf(key, path[level]) {
				continue
			}
			d, err := m.ValueDistance(t.env, param, key, path[level])
			if err != nil {
				return err
			}
			cur = append(cur, key)
			err = rec(nd.children[i], level+1, dist+d)
			cur = cur[:len(cur)-1]
			if err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(t.root, 0, 0); err != nil {
		return Candidate{}, accesses, false, err
	}
	return best, accesses, found, nil
}

// Best returns the candidate with the minimum distance (Def. 12's
// match, disambiguated by the metric per Section 4.3), breaking exact
// ties deterministically — but otherwise arbitrarily — by state key.
// Ties are frequent under the integer-valued hierarchy distance and
// rare under Jaccard, which is exactly why the paper's usability study
// found Jaccard more accurate; the tie-break deliberately does not
// consult state cardinality, because "smallest cardinality" is the
// selection principle the Jaccard metric itself embodies (Section 4.3).
// ok is false when no stored state covers the searched one — the caller
// should then fall back to non-contextual execution, as Section 4.2
// prescribes.
func Best(cands []Candidate) (Candidate, bool) {
	if len(cands) == 0 {
		return Candidate{}, false
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if betterCandidate(c, best) {
			best = c
		}
	}
	return best, true
}

// betterCandidate orders candidates by (distance, key).
func betterCandidate(a, b Candidate) bool {
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	return a.State.Key() < b.State.Key()
}

// Resolve performs full context resolution for one searched state: an
// exact lookup first, then Search_CS with the metric. It returns the
// best candidate, the total cells accessed, and ok=false when nothing
// in the profile covers the state.
func (t *Tree) Resolve(s ctxmodel.State, m distance.Metric) (Candidate, int, bool, error) {
	return t.ResolveCtx(context.Background(), s, m)
}

// ResolveCtx is Resolve with cooperative cancellation: the Search_CS
// scan aborts (with a wrapped ctx.Err()) once ctx is done. The exact
// root-to-leaf lookup is a single bounded descent and is not gated. The
// cells accessed before the abort are still counted into the metrics,
// so cancellations are observable in cp_resolve_cells_total.
//
//cpvet:hotpath allocs=62 cover-query resolution over the real profile with full instrumentation; the budget is today's measurement, move it only with a benchmark
func (t *Tree) ResolveCtx(ctx context.Context, s ctxmodel.State, m distance.Metric) (Candidate, int, bool, error) {
	ctx, sp := tracing.Start(ctx, "profiletree.resolve")
	defer sp.End()
	entries, accesses, err := t.SearchExact(s)
	if err != nil {
		sp.Fail(err)
		return Candidate{}, 0, false, err
	}
	if len(entries) > 0 {
		t.metrics.observe(accesses, 1, true)
		sp.SetInt("cells", int64(accesses))
		sp.SetBool("exact", true)
		sp.SetBool("hit", true)
		return Candidate{State: s.Clone(), Entries: entries, Distance: 0}, accesses, true, nil
	}
	cands, more, err := t.SearchCoverCtx(ctx, s, m)
	accesses += more
	if err != nil {
		t.metrics.observe(accesses, len(cands), false)
		sp.Fail(err)
		return Candidate{}, accesses, false, err
	}
	best, ok := Best(cands)
	t.metrics.observe(accesses, len(cands), ok)
	// The paper's Section 5 cost model, per request: cells visited by
	// the Search_CS scan, covering candidates found, and the winning
	// cover's hierarchy distance and specificity.
	sp.SetInt("cells", int64(accesses))
	sp.SetInt("candidates", int64(len(cands)))
	sp.SetBool("hit", ok)
	if ok {
		sp.SetFloat("distance", best.Distance)
		sp.SetInt("specificity", int64(best.Specificity))
	}
	return best, accesses, ok, nil
}

// ResolveAll returns every stored state covering s ordered from most to
// least relevant under the metric (distance, then specificity, then
// state key). Section 4.2 suggests presenting all matches to the user
// when several states qualify and none dominates; this is that API. An
// exact match, if present, appears first with distance 0.
func (t *Tree) ResolveAll(s ctxmodel.State, m distance.Metric) ([]Candidate, int, error) {
	return t.ResolveAllCtx(context.Background(), s, m)
}

// ResolveAllCtx is ResolveAll with cooperative cancellation, on the
// same contract as ResolveCtx.
func (t *Tree) ResolveAllCtx(ctx context.Context, s ctxmodel.State, m distance.Metric) ([]Candidate, int, error) {
	ctx, sp := tracing.Start(ctx, "profiletree.resolve_all")
	defer sp.End()
	cands, accesses, err := t.SearchCoverCtx(ctx, s, m)
	if err != nil {
		t.metrics.observe(accesses, len(cands), false)
		sp.Fail(err)
		return nil, accesses, err
	}
	t.metrics.observe(accesses, len(cands), len(cands) > 0)
	sp.SetInt("cells", int64(accesses))
	sp.SetInt("candidates", int64(len(cands)))
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.Distance != b.Distance {
			return a.Distance < b.Distance
		}
		if a.Specificity != b.Specificity {
			return a.Specificity < b.Specificity
		}
		return a.State.Key() < b.State.Key()
	})
	return cands, accesses, nil
}

// Paths enumerates every stored context state (in environment order)
// with its leaf entries, in depth-first tree order; useful for tests,
// diagnostics and serialization.
func (t *Tree) Paths() []Candidate {
	var out []Candidate
	cur := make([]string, 0, len(t.order))
	var rec func(nd *node)
	rec = func(nd *node) {
		if len(cur) == len(t.order) {
			if len(nd.entries) > 0 {
				out = append(out, Candidate{
					State:   t.toEnvOrder(cur),
					Entries: append([]Leaf(nil), nd.entries...),
				})
			}
			return
		}
		for i, key := range nd.keys {
			cur = append(cur, key)
			rec(nd.children[i])
			cur = cur[:len(cur)-1]
		}
	}
	rec(t.root)
	return out
}

// MaxCells returns the paper's worst-case size bound for the given
// per-level domain cardinalities: m1*(1 + m2*(1 + ... (1 + mn))).
func MaxCells(domainSizes []int) int {
	if len(domainSizes) == 0 {
		return 0
	}
	acc := domainSizes[len(domainSizes)-1]
	for i := len(domainSizes) - 2; i >= 0; i-- {
		acc = domainSizes[i] * (1 + acc)
	}
	return acc
}
