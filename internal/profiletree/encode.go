package profiletree

import (
	"fmt"
	"sort"
	"strings"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/preference"
)

// This file implements a line-oriented text serialization of profile
// trees and an order-suggestion heuristic.
//
// Serialization reuses the preference line codec: every stored
// (state, clause, score) triple becomes one preference whose descriptor
// constrains each non-"all" parameter with an equality. Decoding such
// lines reproduces a tree with identical paths and leaf entries — the
// original descriptors (e.g. in-sets that expanded to several states)
// are not preserved, but the tree they produced is, which is the only
// thing resolution semantics depend on.

// Encode renders the tree's contents, one line per leaf entry, in a
// deterministic (state-sorted) order.
func (t *Tree) Encode() (string, error) {
	paths := t.Paths()
	sort.Slice(paths, func(i, j int) bool { return paths[i].State.Key() < paths[j].State.Key() })
	var b strings.Builder
	for _, p := range paths {
		var pds []ctxmodel.ParamDescriptor
		for i, v := range p.State {
			if v != "all" {
				pds = append(pds, ctxmodel.Eq(t.env.Param(i).Name(), v))
			}
		}
		d, err := ctxmodel.NewDescriptor(pds...)
		if err != nil {
			return "", err
		}
		for _, e := range p.Entries {
			pref, err := preference.New(d, e.Clause, e.Score)
			if err != nil {
				return "", err
			}
			b.WriteString(preference.Format(pref))
			b.WriteByte('\n')
		}
	}
	return b.String(), nil
}

// Decode builds a tree (with the given order; nil = identity) from the
// Encode text format. Blank lines and '#' comments are skipped.
func Decode(env *ctxmodel.Environment, order []int, text string) (*Tree, error) {
	t, err := New(env, order)
	if err != nil {
		return nil, err
	}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		p, err := preference.ParseLine(line)
		if err != nil {
			return nil, fmt.Errorf("profiletree: line %d: %w", ln+1, err)
		}
		if err := t.Insert(p); err != nil {
			return nil, fmt.Errorf("profiletree: line %d: %w", ln+1, err)
		}
	}
	return t, nil
}

// SuggestOrder proposes a parameter-to-level assignment for the given
// preference workload: parameters are placed top-to-bottom by the
// number of *distinct* values their descriptors actually use, smallest
// first. For uniform workloads this degenerates to the paper's
// "larger domains lower" rule (Fig. 5/6 left–center); for skewed
// workloads it captures the Fig. 6 (right) refinement that a large but
// very skewed domain — few distinct hot values — belongs higher in the
// tree. Parameters never mentioned by any descriptor count as a single
// "all" value. Ties break toward the smaller full domain.
func SuggestOrder(env *ctxmodel.Environment, prefs []preference.Preference) ([]int, error) {
	if env == nil {
		return nil, fmt.Errorf("profiletree: nil environment")
	}
	n := env.NumParams()
	distinct := make([]map[string]bool, n)
	for i := range distinct {
		distinct[i] = make(map[string]bool)
	}
	for _, p := range prefs {
		states, err := p.Descriptor.Context(env)
		if err != nil {
			return nil, err
		}
		for _, s := range states {
			for i, v := range s {
				distinct[i][v] = true
			}
		}
	}
	order := IdentityOrder(n)
	sort.SliceStable(order, func(a, b int) bool {
		da, db := len(distinct[order[a]]), len(distinct[order[b]])
		if da != db {
			return da < db
		}
		sa := len(env.Param(order[a]).Hierarchy().DetailedValues())
		sb := len(env.Param(order[b]).Hierarchy().DetailedValues())
		return sa < sb
	})
	return order, nil
}
