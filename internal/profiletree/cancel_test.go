package profiletree

// Cooperative-cancellation tests: a done context stops the cover scans
// after at most cancelCheckEvery accesses instead of running the full
// search, in both the tree and the sequential baseline, and the error
// stays classifiable with errors.Is.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/distance"
	"contextpref/internal/hierarchy"
	"contextpref/internal/preference"
)

// densePrefs spans every combination of location, temperature and
// accompanying_people descriptor values (including upper levels and the
// omitted-parameter "all"), except the Kastro region — so the query
// state (Kastro, warm, friends) has no exact match and a cover search
// must scan well past one cancelCheckEvery window.
func densePrefs(t *testing.T) []preference.Preference {
	t.Helper()
	locs := []string{"", "Plaka", "Kifisia", "Acropolis_Area", "Perama",
		"Ladadika", "Ano_Poli", "Athens", "Ioannina", "Thessaloniki", "Greece"}
	temps := []string{"", "freezing", "cold", "mild", "warm", "hot", "bad", "good"}
	people := []string{"", "friends", "family", "alone"}
	var out []preference.Preference
	for _, l := range locs {
		for _, tv := range temps {
			for _, pv := range people {
				var pds []ctxmodel.ParamDescriptor
				if l != "" {
					pds = append(pds, ctxmodel.Eq("location", l))
				}
				if tv != "" {
					pds = append(pds, ctxmodel.Eq("temperature", tv))
				}
				if pv != "" {
					pds = append(pds, ctxmodel.Eq("accompanying_people", pv))
				}
				out = append(out, preference.MustNew(
					ctxmodel.MustDescriptor(pds...), clause("type", "cafeteria"), 0.5))
			}
		}
	}
	return out
}

func denseTree(t *testing.T) (*ctxmodel.Environment, *Tree) {
	t.Helper()
	e := env(t)
	tr, err := New(e, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range densePrefs(t) {
		if err := tr.Insert(p); err != nil {
			t.Fatalf("Insert(%v): %v", p, err)
		}
	}
	return e, tr
}

func canceledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func expiredCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	t.Cleanup(cancel)
	return ctx
}

func TestSearchCoverCtxCanceledStopsEarly(t *testing.T) {
	e, tr := denseTree(t)
	q := st(t, e, "Kastro", "warm", "friends")

	full, fullAcc, err := tr.SearchCover(q, distance.Hierarchy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) == 0 {
		t.Fatal("fixture broken: no covering candidates")
	}
	if fullAcc <= cancelCheckEvery {
		t.Fatalf("fixture broken: full scan accesses %d <= check granularity %d",
			fullAcc, cancelCheckEvery)
	}

	cands, acc, err := tr.SearchCoverCtx(canceledCtx(), q, distance.Hierarchy{})
	if err == nil {
		t.Fatal("canceled context should abort the scan")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want errors.Is(err, context.Canceled)", err)
	}
	if len(cands) != 0 {
		t.Errorf("aborted scan returned %d candidates, want none", len(cands))
	}
	if acc >= fullAcc {
		t.Errorf("aborted scan accessed %d cells, full scan accesses %d — no early stop", acc, fullAcc)
	}
	if acc > cancelCheckEvery {
		t.Errorf("aborted scan accessed %d cells, want at most %d", acc, cancelCheckEvery)
	}
}

func TestSearchCoverCtxBackgroundMatchesSearchCover(t *testing.T) {
	e, tr := denseTree(t)
	q := st(t, e, "Kastro", "warm", "friends")
	want, wantAcc, err := tr.SearchCover(q, distance.Hierarchy{})
	if err != nil {
		t.Fatal(err)
	}
	got, gotAcc, err := tr.SearchCoverCtx(context.Background(), q, distance.Hierarchy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || gotAcc != wantAcc {
		t.Errorf("SearchCoverCtx(Background) = %d cands / %d accesses, SearchCover = %d / %d",
			len(got), gotAcc, len(want), wantAcc)
	}
}

// wideTree is a single-parameter tree whose root node alone holds more
// keys than one cancelCheckEvery window, so even the branch-and-bound
// search (which prunes whole subtrees, keeping its access count low on
// hierarchical fixtures) must cross a cancellation check.
func wideTree(t *testing.T) (*ctxmodel.Environment, *Tree) {
	t.Helper()
	b := hierarchy.NewBuilder("region", "Region")
	for i := 0; i < 3*cancelCheckEvery; i++ {
		b.Add(fmt.Sprintf("r%03d", i))
	}
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := ctxmodel.NewParameter("region", h)
	if err != nil {
		t.Fatal(err)
	}
	e, err := ctxmodel.NewEnvironment(p)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(e, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*cancelCheckEvery; i++ {
		pref := preference.MustNew(
			ctxmodel.MustDescriptor(ctxmodel.Eq("region", fmt.Sprintf("r%03d", i))),
			clause("type", "cafeteria"), 0.5)
		if err := tr.Insert(pref); err != nil {
			t.Fatal(err)
		}
	}
	return e, tr
}

func TestSearchCoverBestCtxDeadline(t *testing.T) {
	e, tr := wideTree(t)
	q := st(t, e, "r000")
	if _, acc, _, err := tr.SearchCoverBest(q, distance.Hierarchy{}); err != nil || acc <= cancelCheckEvery {
		t.Fatalf("fixture broken: full best scan accesses %d (err %v), need > %d",
			acc, err, cancelCheckEvery)
	}
	_, _, _, err := tr.SearchCoverBestCtx(expiredCtx(t), q, distance.Hierarchy{})
	if err == nil {
		t.Fatal("expired deadline should abort the scan")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want errors.Is(err, context.DeadlineExceeded)", err)
	}
}

func TestResolveCtxCanceled(t *testing.T) {
	e, tr := denseTree(t)
	q := st(t, e, "Kastro", "warm", "friends")
	if _, _, _, err := tr.ResolveCtx(canceledCtx(), q, distance.Hierarchy{}); !errors.Is(err, context.Canceled) {
		t.Errorf("ResolveCtx err = %v, want context.Canceled", err)
	}
	if _, _, err := tr.ResolveAllCtx(canceledCtx(), q, distance.Hierarchy{}); !errors.Is(err, context.Canceled) {
		t.Errorf("ResolveAllCtx err = %v, want context.Canceled", err)
	}
	// The uncancelled resolve still succeeds on the same fixture.
	if _, _, ok, err := tr.ResolveCtx(context.Background(), q, distance.Hierarchy{}); err != nil || !ok {
		t.Errorf("ResolveCtx(Background) = ok=%v err=%v, want a match", ok, err)
	}
}

func TestSequentialSearchCoverCtxCanceled(t *testing.T) {
	e := env(t)
	sq, err := NewSequential(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range densePrefs(t) {
		if err := sq.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if sq.NumStates() <= cancelCheckEvery {
		t.Fatalf("fixture broken: %d states <= check granularity %d",
			sq.NumStates(), cancelCheckEvery)
	}
	q := st(t, e, "Kastro", "warm", "friends")

	full, fullAcc, err := sq.SearchCover(q, distance.Hierarchy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) == 0 {
		t.Fatal("fixture broken: no covering candidates")
	}

	_, acc, err := sq.SearchCoverCtx(canceledCtx(), q, distance.Hierarchy{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if acc >= fullAcc {
		t.Errorf("aborted scan accessed %d cells, full scan %d — no early stop", acc, fullAcc)
	}

	if _, _, _, err := sq.ResolveCtx(expiredCtx(t), q, distance.Hierarchy{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("ResolveCtx err = %v, want context.DeadlineExceeded", err)
	}
}
