package profiletree

import (
	"errors"
	"strings"
	"testing"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/preference"
)

func batchEnv(t *testing.T) *ctxmodel.Environment {
	t.Helper()
	env, err := ctxmodel.ReferenceEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func pref(t *testing.T, line string) preference.Preference {
	t.Helper()
	p, err := preference.ParseLine(line)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestInsertAllAtomic: a batch whose later member conflicts with stored
// state must leave the tree exactly as it was — no partial application.
func TestInsertAllAtomic(t *testing.T) {
	env := batchEnv(t)
	tr, err := New(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(pref(t, `[location = Plaka] => type = museum : 0.8`)); err != nil {
		t.Fatal(err)
	}
	before, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	beforePrefs, beforeCells := tr.NumPreferences(), tr.NumCells()

	err = tr.InsertAll(
		pref(t, `[temperature = warm] => type = park : 0.5`),               // valid
		pref(t, `[location = Plaka] => type = museum : 0.1`),               // conflicts with stored
		pref(t, `[accompanying_people = friends] => type = brewery : 0.9`), // never reached
	)
	var ce *preference.ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("InsertAll = %v, want ConflictError", err)
	}
	if !strings.Contains(err.Error(), "preference 1") {
		t.Errorf("error does not name the failing index: %v", err)
	}
	after, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Errorf("failed batch mutated the tree:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	if tr.NumPreferences() != beforePrefs || tr.NumCells() != beforeCells {
		t.Errorf("counters drifted: prefs %d->%d cells %d->%d",
			beforePrefs, tr.NumPreferences(), beforeCells, tr.NumCells())
	}
}

// TestInsertAllIntraBatchConflict: two members of the same batch that
// conflict with each other must be rejected even though neither
// conflicts with stored state.
func TestInsertAllIntraBatchConflict(t *testing.T) {
	env := batchEnv(t)
	tr, err := New(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = tr.InsertAll(
		pref(t, `[location = Plaka] => type = museum : 0.8`),
		pref(t, `[location in {Plaka, Kifisia}] => type = museum : 0.3`),
	)
	var ce *preference.ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("intra-batch conflict not detected: %v", err)
	}
	if tr.NumPreferences() != 0 || tr.NumCells() != 0 {
		t.Errorf("rejected batch left residue: prefs=%d cells=%d", tr.NumPreferences(), tr.NumCells())
	}
}

func TestCheckInsertDoesNotMutate(t *testing.T) {
	env := batchEnv(t)
	tr, err := New(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	batch := []preference.Preference{
		pref(t, `[location = Plaka] => type = museum : 0.8`),
		pref(t, `[] => type = park : 0.4`),
	}
	if err := tr.CheckInsert(batch...); err != nil {
		t.Fatal(err)
	}
	if tr.NumPreferences() != 0 || tr.NumCells() != 0 || tr.NumPaths() != 0 {
		t.Errorf("CheckInsert mutated the tree: prefs=%d cells=%d", tr.NumPreferences(), tr.NumCells())
	}
	if err := tr.InsertAll(batch...); err != nil {
		t.Fatalf("validated batch failed to apply: %v", err)
	}
	if tr.NumPreferences() != 2 {
		t.Errorf("NumPreferences = %d, want 2", tr.NumPreferences())
	}
	// Same-score overlap within a batch is a harmless duplicate, not a
	// conflict (Def. 6 requires differing scores).
	if err := tr.CheckInsert(
		pref(t, `[temperature = warm] => name = "Lake" : 0.6`),
		pref(t, `[temperature = warm] => name = "Lake" : 0.6`),
	); err != nil {
		t.Errorf("duplicate scores flagged as conflict: %v", err)
	}
	// A single-preference batch keeps the bare (unwrapped) error.
	err = tr.CheckInsert(pref(t, `[location = Plaka] => type = museum : 0.2`))
	if err == nil || strings.Contains(err.Error(), "preference 0") {
		t.Errorf("single check error = %v, want bare conflict", err)
	}
}
