package profiletree

import (
	"fmt"
	"testing"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/distance"
	"contextpref/internal/hierarchy"
	"contextpref/internal/preference"
)

// The paper's experiments use three context parameters; nothing in the
// structure restricts n. These tests exercise degenerate (1 parameter)
// and wide (5 parameters) environments.

func narrowEnv(t *testing.T) *ctxmodel.Environment {
	t.Helper()
	h, err := hierarchy.Uniform("only", 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ctxmodel.NewParameter("only", h)
	if err != nil {
		t.Fatal(err)
	}
	e, err := ctxmodel.NewEnvironment(p)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func wideEnv(t *testing.T) *ctxmodel.Environment {
	t.Helper()
	var params []*ctxmodel.Parameter
	for i := 0; i < 5; i++ {
		h, err := hierarchy.Uniform(fmt.Sprintf("p%d", i), 2+i, 2)
		if err != nil {
			t.Fatal(err)
		}
		p, err := ctxmodel.NewParameter("", h)
		if err != nil {
			t.Fatal(err)
		}
		params = append(params, p)
	}
	e, err := ctxmodel.NewEnvironment(params...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSingleParameterTree(t *testing.T) {
	e := narrowEnv(t)
	tr, err := New(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	dv := e.Param(0).Hierarchy().DetailedValues()
	mid := e.Param(0).Hierarchy().ValuesAt(1)
	// Detailed, mid-level and all-level preferences.
	for i, v := range []string{dv[0], dv[5], mid[0]} {
		p := preference.MustNew(
			ctxmodel.MustDescriptor(ctxmodel.Eq("only", v)),
			clause("a", fmt.Sprintf("v%d", i)), 0.5)
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	allPref := preference.MustNew(ctxmodel.MustDescriptor(), clause("a", "base"), 0.3)
	if err := tr.Insert(allPref); err != nil {
		t.Fatal(err)
	}
	if tr.NumPaths() != 4 {
		t.Errorf("NumPaths = %d, want 4", tr.NumPaths())
	}
	// Resolution: a detailed query under mid[0] prefers the exact
	// detailed state, then the mid state, then all.
	q := ctxmodel.State{dv[0]} // dv[0]'s parent is mid[0]
	cands, _, err := tr.SearchCover(q, distance.Hierarchy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 3 { // dv[0], mid[0], all
		t.Fatalf("candidates = %v", cands)
	}
	best, ok := Best(cands)
	if !ok || !best.State.Equal(q) || best.Distance != 0 {
		t.Errorf("best = %+v", best)
	}
	// Sequential equivalence holds for n=1 too.
	sq, _ := NewSequential(e)
	for _, p := range []preference.Preference{allPref} {
		if err := sq.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	entries, _, err := sq.SearchExact(ctxmodel.State{"all"})
	if err != nil || len(entries) != 1 {
		t.Errorf("sequential n=1: %v, %v", entries, err)
	}
}

func TestFiveParameterTree(t *testing.T) {
	e := wideEnv(t)
	if e.NumParams() != 5 {
		t.Fatal("wide env wrong")
	}
	tr, err := New(e, []int{4, 3, 2, 1, 0}) // reversed order
	if err != nil {
		t.Fatal(err)
	}
	// Preferences constraining different parameter subsets.
	var prefs []preference.Preference
	for i := 0; i < 5; i++ {
		dv := e.Param(i).Hierarchy().DetailedValues()
		prefs = append(prefs, preference.MustNew(
			ctxmodel.MustDescriptor(ctxmodel.Eq(e.Param(i).Name(), dv[0])),
			clause("a", fmt.Sprintf("p%d", i)), 0.5))
	}
	// One fully-specified preference.
	var pds []ctxmodel.ParamDescriptor
	full := make(ctxmodel.State, 5)
	for i := 0; i < 5; i++ {
		dv := e.Param(i).Hierarchy().DetailedValues()
		pds = append(pds, ctxmodel.Eq(e.Param(i).Name(), dv[0]))
		full[i] = dv[0]
	}
	prefs = append(prefs, preference.MustNew(
		ctxmodel.MustDescriptor(pds...), clause("a", "full"), 0.9))
	for _, p := range prefs {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if tr.NumPaths() != 6 {
		t.Errorf("NumPaths = %d, want 6", tr.NumPaths())
	}
	// The fully-specified state resolves exactly; all six states cover
	// it.
	cands, _, err := tr.SearchCover(full, distance.Jaccard{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 6 {
		t.Fatalf("candidates = %d, want 6", len(cands))
	}
	best, ok := Best(cands)
	if !ok || best.Distance != 0 || len(best.Entries) != 1 || best.Entries[0].Score != 0.9 {
		t.Errorf("best = %+v", best)
	}
	// Branch-and-bound agrees on a 5-level tree.
	pruned, _, ok2, err := tr.SearchCoverBest(full, distance.Jaccard{})
	if err != nil || !ok2 || pruned.Distance != best.Distance {
		t.Errorf("pruned = %+v (%v)", pruned, err)
	}
	// MaxCells bound for 5 levels.
	sizes := make([]int, 5)
	for lvl, param := range tr.Order() {
		sizes[lvl] = e.Param(param).Hierarchy().ExtendedDomainSize()
	}
	if tr.NumInternalCells() > MaxCells(sizes) {
		t.Errorf("internal cells %d exceed bound %d", tr.NumInternalCells(), MaxCells(sizes))
	}
}
