package profiletree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/distance"
	"contextpref/internal/preference"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e, tr := fig4Tree(t)
	text, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(text, "\n"); got != tr.NumLeafEntries() {
		t.Errorf("encoded lines = %d, want %d", got, tr.NumLeafEntries())
	}
	back, err := Decode(e, tr.Order(), text)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumPaths() != tr.NumPaths() || back.NumLeafEntries() != tr.NumLeafEntries() {
		t.Fatalf("round-trip paths/entries: %d/%d, want %d/%d",
			back.NumPaths(), back.NumLeafEntries(), tr.NumPaths(), tr.NumLeafEntries())
	}
	// Resolution behaviour is identical.
	q := st(t, e, "Plaka", "warm", "friends")
	a, _, _ := tr.SearchCover(q, distance.Hierarchy{})
	b, _, _ := back.SearchCover(q, distance.Hierarchy{})
	if len(a) != len(b) {
		t.Fatalf("cover candidates differ: %d vs %d", len(a), len(b))
	}
	// Comments and blanks are skipped.
	back2, err := Decode(e, nil, "# header\n\n"+text)
	if err != nil || back2.NumPaths() != tr.NumPaths() {
		t.Fatalf("decode with comments: %v", err)
	}
	// Errors carry line numbers.
	if _, err := Decode(e, nil, "garbage"); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("Decode(garbage) = %v", err)
	}
	if _, err := Decode(e, nil, "[location = Atlantis] => a = b : 0.5"); err == nil {
		t.Error("unknown value should fail")
	}
	if _, err := Decode(nil, nil, ""); err == nil {
		t.Error("nil environment should fail")
	}
	if _, err := Decode(e, []int{0}, ""); err == nil {
		t.Error("bad order should fail")
	}
}

// Property: Encode/Decode preserves the path set and every leaf entry
// for random trees, regardless of tree order on either side.
func TestQuickEncodeRoundTrip(t *testing.T) {
	e := env(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr, _ := New(e, AllOrders(3)[r.Intn(6)])
		for _, p := range randomPrefs(e, r, 1+r.Intn(25)) {
			_ = tr.Insert(p)
		}
		text, err := tr.Encode()
		if err != nil {
			return false
		}
		back, err := Decode(e, AllOrders(3)[r.Intn(6)], text)
		if err != nil {
			return false
		}
		if back.NumPaths() != tr.NumPaths() || back.NumLeafEntries() != tr.NumLeafEntries() {
			return false
		}
		for _, p := range tr.Paths() {
			entries, _, err := back.SearchExact(p.State)
			if err != nil || len(entries) != len(p.Entries) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSuggestOrder(t *testing.T) {
	e := env(t)
	// Uniform usage across full domains → ascending domain size, the
	// paper's basic rule: people (3) < temperature (5) < location (7).
	var prefs []preference.Preference
	for _, loc := range e.Param(0).Hierarchy().DetailedValues() {
		for _, tmp := range e.Param(1).Hierarchy().DetailedValues() {
			for _, ppl := range e.Param(2).Hierarchy().DetailedValues() {
				prefs = append(prefs, preference.MustNew(
					ctxmodel.MustDescriptor(
						ctxmodel.Eq("location", loc),
						ctxmodel.Eq("temperature", tmp),
						ctxmodel.Eq("accompanying_people", ppl)),
					clause("type", "museum"), 0.5))
			}
		}
	}
	order, err := SuggestOrder(e, prefs)
	if err != nil {
		t.Fatal(err)
	}
	// Environment order: location(7 regions), temperature(5), people(3).
	if want := []int{2, 1, 0}; order[0] != want[0] || order[1] != want[1] || order[2] != want[2] {
		t.Errorf("uniform SuggestOrder = %v, want %v", order, want)
	}
	// Skewed usage: only ONE location ever appears → location belongs
	// at the top despite its large domain (the Fig. 6 right insight).
	var skewed []preference.Preference
	for _, tmp := range e.Param(1).Hierarchy().DetailedValues() {
		for _, ppl := range e.Param(2).Hierarchy().DetailedValues() {
			skewed = append(skewed, preference.MustNew(
				ctxmodel.MustDescriptor(
					ctxmodel.Eq("location", "Plaka"),
					ctxmodel.Eq("temperature", tmp),
					ctxmodel.Eq("accompanying_people", ppl)),
				clause("type", "museum"), 0.5))
		}
	}
	order, err = SuggestOrder(e, skewed)
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != 0 {
		t.Errorf("skewed SuggestOrder = %v, want location (0) first", order)
	}
	// The suggestion actually helps: compare tree sizes.
	best, _ := New(e, order)
	naive, _ := New(e, []int{2, 1, 0}) // ascending-domain rule
	for _, p := range skewed {
		if err := best.Insert(p); err != nil {
			t.Fatal(err)
		}
		if err := naive.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if best.NumCells() > naive.NumCells() {
		t.Errorf("suggested order (%d cells) should not lose to naive (%d)",
			best.NumCells(), naive.NumCells())
	}
	// Empty workload: falls back to domain sizes.
	order, err = SuggestOrder(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Errorf("empty SuggestOrder = %v", order)
	}
	// Errors.
	if _, err := SuggestOrder(nil, nil); err == nil {
		t.Error("nil env should fail")
	}
	bad := []preference.Preference{{
		Descriptor: ctxmodel.MustDescriptor(ctxmodel.Eq("location", "Atlantis")),
		Clause:     clause("a", "b"), Score: 0.5,
	}}
	if _, err := SuggestOrder(e, bad); err == nil {
		t.Error("bad descriptor should fail")
	}
}
