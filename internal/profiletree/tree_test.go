package profiletree

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/distance"
	"contextpref/internal/preference"
	"contextpref/internal/relation"
)

func env(t *testing.T) *ctxmodel.Environment {
	t.Helper()
	e, err := ctxmodel.ReferenceEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func clause(attr, val string) preference.Clause {
	return preference.Clause{Attr: attr, Op: relation.OpEq, Val: relation.S(val)}
}

// fig4Prefs are the three preferences of the paper's Fig. 4 example.
func fig4Prefs() []preference.Preference {
	return []preference.Preference{
		preference.MustNew(
			ctxmodel.MustDescriptor(
				ctxmodel.Eq("location", "Kifisia"),
				ctxmodel.Eq("temperature", "warm"),
				ctxmodel.Eq("accompanying_people", "friends")),
			clause("type", "cafeteria"), 0.9),
		preference.MustNew(
			ctxmodel.MustDescriptor(ctxmodel.Eq("accompanying_people", "friends")),
			clause("type", "brewery"), 0.9),
		preference.MustNew(
			ctxmodel.MustDescriptor(
				ctxmodel.Eq("location", "Plaka"),
				ctxmodel.In("temperature", "warm", "hot")),
			clause("name", "Acropolis"), 0.8),
	}
}

// fig4Order assigns accompanying_people to level 1, temperature to
// level 2 and location to level 3, as in the paper's Fig. 4.
func fig4Order(t *testing.T, e *ctxmodel.Environment) []int {
	t.Helper()
	order := make([]int, 0, 3)
	for _, name := range []string{"accompanying_people", "temperature", "location"} {
		i, ok := e.ParamIndex(name)
		if !ok {
			t.Fatalf("missing parameter %s", name)
		}
		order = append(order, i)
	}
	return order
}

func fig4Tree(t *testing.T) (*ctxmodel.Environment, *Tree) {
	t.Helper()
	e := env(t)
	tr, err := New(e, fig4Order(t, e))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range fig4Prefs() {
		if err := tr.Insert(p); err != nil {
			t.Fatalf("Insert(%v): %v", p, err)
		}
	}
	return e, tr
}

func st(t *testing.T, e *ctxmodel.Environment, vs ...string) ctxmodel.State {
	t.Helper()
	s, err := e.NewState(vs...)
	if err != nil {
		t.Fatalf("NewState(%v): %v", vs, err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	e := env(t)
	if _, err := New(nil, nil); err == nil {
		t.Error("nil environment should fail")
	}
	if _, err := New(e, []int{0, 1}); err == nil {
		t.Error("short order should fail")
	}
	if _, err := New(e, []int{0, 0, 1}); err == nil {
		t.Error("non-permutation should fail")
	}
	if _, err := New(e, []int{0, 1, 3}); err == nil {
		t.Error("out-of-range order should fail")
	}
	tr, err := New(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Order(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("default Order = %v", got)
	}
	if tr.Env() != e {
		t.Error("Env round-trip failed")
	}
}

func TestFig4Structure(t *testing.T) {
	_, tr := fig4Tree(t)
	// Paths: pref1 → (Kifisia, warm, friends); pref2 → (all, all, friends);
	// pref3 → (Plaka, warm, all) and (Plaka, hot, all). 4 paths.
	if got := tr.NumPaths(); got != 4 {
		t.Errorf("NumPaths = %d, want 4", got)
	}
	if got := tr.NumPreferences(); got != 3 {
		t.Errorf("NumPreferences = %d, want 3", got)
	}
	if got := tr.NumLeafEntries(); got != 4 {
		t.Errorf("NumLeafEntries = %d, want 4", got)
	}
	// Fig. 4 cells: level1 {friends, all} = 2; level2: under friends
	// {warm, all}, under all {warm, hot} = 4; level3: Kifisia, all,
	// Plaka, Plaka = 4. Total internal = 10.
	if got := tr.NumInternalCells(); got != 10 {
		t.Errorf("NumInternalCells = %d, want 10", got)
	}
	if got := tr.NumCells(); got != 14 {
		t.Errorf("NumCells = %d, want 14", got)
	}
	if tr.Bytes() <= 0 {
		t.Error("Bytes should be positive")
	}
	// Paths() enumerates all four states with their entries.
	paths := tr.Paths()
	if len(paths) != 4 {
		t.Fatalf("Paths = %d, want 4", len(paths))
	}
	byKey := map[string][]Leaf{}
	for _, p := range paths {
		byKey[p.State.Key()] = p.Entries
	}
	e := tr.Env()
	if es := byKey[st(t, e, "Kifisia", "warm", "friends").Key()]; len(es) != 1 || es[0].Score != 0.9 {
		t.Errorf("path (Kifisia, warm, friends) = %v", es)
	}
	if es := byKey[st(t, e, "all", "all", "friends").Key()]; len(es) != 1 || !es[0].Clause.Equal(clause("type", "brewery")) {
		t.Errorf("path (all, all, friends) = %v", es)
	}
	if es := byKey[st(t, e, "Plaka", "hot", "all").Key()]; len(es) != 1 || !es[0].Clause.Equal(clause("name", "Acropolis")) {
		t.Errorf("path (Plaka, hot, all) = %v", es)
	}
}

func TestInsertConflictAtomic(t *testing.T) {
	e, tr := fig4Tree(t)
	cellsBefore, pathsBefore := tr.NumCells(), tr.NumPaths()
	// Conflicts with pref3 on (Plaka, warm, all): same clause, new score.
	bad := preference.MustNew(
		ctxmodel.MustDescriptor(
			ctxmodel.Eq("location", "Plaka"),
			ctxmodel.In("temperature", "mild", "warm")),
		clause("name", "Acropolis"), 0.3)
	err := tr.Insert(bad)
	var ce *preference.ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("Insert conflicting = %v, want ConflictError", err)
	}
	if !ce.State.Equal(st(t, e, "Plaka", "warm", "all")) {
		t.Errorf("conflict state = %v", ce.State)
	}
	// Atomic: the (Plaka, mild, all) state must not have been inserted.
	if tr.NumCells() != cellsBefore || tr.NumPaths() != pathsBefore {
		t.Error("failed insert mutated the tree")
	}
	if entries, _, _ := tr.SearchExact(st(t, e, "Plaka", "mild", "all")); len(entries) != 0 {
		t.Error("partial insertion leaked a state")
	}
	// Same clause same score on an overlapping context is fine.
	ok := preference.MustNew(
		ctxmodel.MustDescriptor(
			ctxmodel.Eq("location", "Plaka"),
			ctxmodel.In("temperature", "mild", "warm")),
		clause("name", "Acropolis"), 0.8)
	if err := tr.Insert(ok); err != nil {
		t.Fatalf("same-score insert failed: %v", err)
	}
	// (Plaka, warm, all) entry not duplicated; (Plaka, mild, all) added.
	entries, _, _ := tr.SearchExact(st(t, e, "Plaka", "warm", "all"))
	if len(entries) != 1 {
		t.Errorf("duplicate leaf entry: %v", entries)
	}
	entries, _, _ = tr.SearchExact(st(t, e, "Plaka", "mild", "all"))
	if len(entries) != 1 {
		t.Errorf("missing new state: %v", entries)
	}
	// Score validation.
	if err := tr.Insert(preference.Preference{Descriptor: ctxmodel.MustDescriptor(), Clause: clause("a", "b"), Score: 1.5}); err == nil {
		t.Error("score out of range should fail")
	}
	// Bad descriptor.
	if err := tr.Insert(preference.Preference{
		Descriptor: ctxmodel.MustDescriptor(ctxmodel.Eq("location", "Atlantis")),
		Clause:     clause("a", "b"), Score: 0.5}); err == nil {
		t.Error("bad descriptor should fail")
	}
}

func TestInsertProfile(t *testing.T) {
	e := env(t)
	pr, _ := preference.NewProfile(e)
	pr.MustAdd(fig4Prefs()...)
	tr, _ := New(e, nil)
	if err := tr.InsertProfile(pr); err != nil {
		t.Fatal(err)
	}
	if tr.NumPreferences() != 3 || tr.NumPaths() != 4 {
		t.Errorf("after InsertProfile: prefs=%d paths=%d", tr.NumPreferences(), tr.NumPaths())
	}
	// Error propagation with index.
	tr2, _ := New(e, nil)
	pr2, _ := preference.NewProfile(e)
	pr2.MustAdd(fig4Prefs()[2])
	// Bypass Profile.Add's check by constructing the conflicting pref
	// directly in a fresh profile and inserting both into one tree.
	if err := tr2.Insert(fig4Prefs()[2]); err != nil {
		t.Fatal(err)
	}
	conflict := preference.MustNew(fig4Prefs()[2].Descriptor, clause("name", "Acropolis"), 0.1)
	pr3, _ := preference.NewProfile(e)
	pr3.MustAdd(conflict)
	if err := tr2.InsertProfile(pr3); err == nil {
		t.Error("InsertProfile should surface conflicts")
	}
}

func TestSearchExact(t *testing.T) {
	e, tr := fig4Tree(t)
	entries, accesses, err := tr.SearchExact(st(t, e, "Kifisia", "warm", "friends"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !entries[0].Clause.Equal(clause("type", "cafeteria")) {
		t.Errorf("entries = %v", entries)
	}
	if accesses <= 0 {
		t.Errorf("accesses = %d", accesses)
	}
	// Exact-match cost bound: Σ per-level node sizes ≤ Σ |edom(Ci)|.
	bound := 0
	for i := 0; i < e.NumParams(); i++ {
		bound += e.Param(i).Hierarchy().ExtendedDomainSize()
	}
	if accesses > bound {
		t.Errorf("accesses %d exceeds edom bound %d", accesses, bound)
	}
	// Absent state: no entries, still counts accesses.
	entries, accesses, err = tr.SearchExact(st(t, e, "Perama", "cold", "alone"))
	if err != nil || len(entries) != 0 {
		t.Errorf("absent state: %v, %v", entries, err)
	}
	if accesses <= 0 {
		t.Error("absent search should still scan the root")
	}
	// Invalid state errors.
	if _, _, err := tr.SearchExact(ctxmodel.State{"x", "y", "z"}); err == nil {
		t.Error("invalid state should fail")
	}
}

func TestSearchCoverPaperScenario(t *testing.T) {
	e, tr := fig4Tree(t)
	// Query state (Plaka, warm, friends): covered by
	// (all, all, friends) [brewery] and (Plaka, warm, all) [Acropolis].
	q := st(t, e, "Plaka", "warm", "friends")
	cands, accesses, err := tr.SearchCover(q, distance.Hierarchy{})
	if err != nil {
		t.Fatal(err)
	}
	if accesses <= 0 {
		t.Error("no accesses counted")
	}
	if len(cands) != 2 {
		t.Fatalf("candidates = %v, want 2", cands)
	}
	got := map[string]float64{}
	for _, c := range cands {
		got[c.State.Key()] = c.Distance
	}
	// (all, all, friends): location 3 + temperature 2 + people 0 = 5.
	if d := got[st(t, e, "all", "all", "friends").Key()]; d != 5 {
		t.Errorf("dist(all,all,friends) = %v, want 5", d)
	}
	// (Plaka, warm, all): 0 + 0 + 1 = 1.
	if d := got[st(t, e, "Plaka", "warm", "all").Key()]; d != 1 {
		t.Errorf("dist(Plaka,warm,all) = %v, want 1", d)
	}
	best, ok := Best(cands)
	if !ok || !best.State.Equal(st(t, e, "Plaka", "warm", "all")) {
		t.Errorf("Best = %v, %v", best, ok)
	}
	// Under Jaccard the same state wins (desc(all)=3 people values →
	// 2/3 < location 1 + temp 2/3 + people ... compute: (all,all,friends):
	// loc 1-1/7, temp 1-1/5, people 2/3; (Plaka,warm,all): 0 + 0 + 2/3).
	cands, _, err = tr.SearchCover(q, distance.Jaccard{})
	if err != nil {
		t.Fatal(err)
	}
	best, ok = Best(cands)
	if !ok || !best.State.Equal(st(t, e, "Plaka", "warm", "all")) {
		t.Errorf("Jaccard Best = %v, %v", best, ok)
	}
	// Invalid state errors.
	if _, _, err := tr.SearchCover(ctxmodel.State{"x", "y", "z"}, distance.Hierarchy{}); err == nil {
		t.Error("invalid state should fail")
	}
}

// The paper's Section 4.2 tie example: two matches where neither covers
// the other; the metric must pick the more specific one.
func TestSearchCoverDeadEndExactBranch(t *testing.T) {
	e := env(t)
	tr, _ := New(e, nil)
	// Profile: (Athens, cold, all) and (all, warm, all).
	tr.Insert(preference.MustNew(
		ctxmodel.MustDescriptor(ctxmodel.Eq("location", "Athens"), ctxmodel.Eq("temperature", "cold")),
		clause("type", "museum"), 0.7))
	tr.Insert(preference.MustNew(
		ctxmodel.MustDescriptor(ctxmodel.Eq("temperature", "warm")),
		clause("type", "park"), 0.6))
	// Query (Plaka, warm, friends): the exact-looking branch Athens
	// dead-ends (cold ≠ warm); the correct answer comes from the "all"
	// branch. A literal reading of the paper's if/else pseudocode would
	// miss it.
	best, _, ok, err := tr.Resolve(st(t, e, "Plaka", "warm", "friends"), distance.Hierarchy{})
	if err != nil || !ok {
		t.Fatalf("Resolve: %v, ok=%v", err, ok)
	}
	if !best.State.Equal(st(t, e, "all", "warm", "all")) {
		t.Errorf("best = %v, want (all, warm, all)", best.State)
	}
	if len(best.Entries) != 1 || !best.Entries[0].Clause.Equal(clause("type", "park")) {
		t.Errorf("entries = %v", best.Entries)
	}
}

func TestResolveExactShortCircuit(t *testing.T) {
	e, tr := fig4Tree(t)
	q := st(t, e, "Kifisia", "warm", "friends")
	best, accesses, ok, err := tr.Resolve(q, distance.Hierarchy{})
	if err != nil || !ok {
		t.Fatalf("Resolve: %v, %v", err, ok)
	}
	if best.Distance != 0 || !best.State.Equal(q) {
		t.Errorf("exact resolve = %+v", best)
	}
	// Exact path only: accesses must be small (≤ sum of node widths).
	if accesses > 10 {
		t.Errorf("exact resolve accesses = %d, expected short-circuit", accesses)
	}
	// No covering state at all → ok=false.
	e2 := env(t)
	tr2, _ := New(e2, nil)
	tr2.Insert(preference.MustNew(
		ctxmodel.MustDescriptor(ctxmodel.Eq("temperature", "cold")),
		clause("type", "museum"), 0.5))
	_, _, ok, err = tr2.Resolve(st(t, e2, "Plaka", "warm", "friends"), distance.Hierarchy{})
	if err != nil || ok {
		t.Errorf("Resolve with no cover = ok %v, err %v; want ok=false", ok, err)
	}
	if _, _, _, err := tr2.Resolve(ctxmodel.State{"bad"}, distance.Hierarchy{}); err == nil {
		t.Error("invalid state should fail")
	}
}

func TestBest(t *testing.T) {
	if _, ok := Best(nil); ok {
		t.Error("Best(nil) should be not-ok")
	}
	a := Candidate{State: ctxmodel.State{"b"}, Distance: 1}
	b := Candidate{State: ctxmodel.State{"a"}, Distance: 1}
	c := Candidate{State: ctxmodel.State{"c"}, Distance: 2}
	best, ok := Best([]Candidate{a, b, c})
	if !ok || !best.State.Equal(b.State) {
		t.Errorf("Best tie-break = %v", best)
	}
	best, _ = Best([]Candidate{c, a})
	if !best.State.Equal(a.State) {
		t.Errorf("Best min = %v", best)
	}
}

func TestMaxCells(t *testing.T) {
	// Paper formula: m1*(1 + m2*(1 + m3)).
	if got := MaxCells([]int{2, 3, 4}); got != 2*(1+3*(1+4)) {
		t.Errorf("MaxCells = %d", got)
	}
	if got := MaxCells([]int{5}); got != 5 {
		t.Errorf("MaxCells single = %d", got)
	}
	if got := MaxCells(nil); got != 0 {
		t.Errorf("MaxCells nil = %d", got)
	}
}

func TestAllOrders(t *testing.T) {
	orders := AllOrders(3)
	if len(orders) != 6 {
		t.Fatalf("AllOrders(3) = %d, want 6", len(orders))
	}
	want := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	if !reflect.DeepEqual(orders, want) {
		t.Errorf("AllOrders(3) = %v, want %v", orders, want)
	}
	if len(AllOrders(1)) != 1 {
		t.Error("AllOrders(1) should have one order")
	}
}

func TestOrderInvariance(t *testing.T) {
	// Every ordering stores the same states and answers the same
	// queries; only cell counts differ.
	e := env(t)
	prefs := fig4Prefs()
	var trees []*Tree
	for _, order := range AllOrders(3) {
		tr, err := New(e, order)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range prefs {
			if err := tr.Insert(p); err != nil {
				t.Fatal(err)
			}
		}
		trees = append(trees, tr)
	}
	q := st(t, e, "Plaka", "warm", "friends")
	ref, _, _ := trees[0].SearchCover(q, distance.Hierarchy{})
	refSet := map[string]float64{}
	for _, c := range ref {
		refSet[c.State.Key()] = c.Distance
	}
	for i, tr := range trees[1:] {
		if tr.NumPaths() != trees[0].NumPaths() {
			t.Errorf("tree %d: NumPaths = %d, want %d", i+1, tr.NumPaths(), trees[0].NumPaths())
		}
		cands, _, _ := tr.SearchCover(q, distance.Hierarchy{})
		if len(cands) != len(ref) {
			t.Fatalf("tree %d: %d candidates, want %d", i+1, len(cands), len(ref))
		}
		for _, c := range cands {
			if d, ok := refSet[c.State.Key()]; !ok || d != c.Distance {
				t.Errorf("tree %d: candidate %v distance %v mismatch", i+1, c.State, c.Distance)
			}
		}
	}
}

func TestSequentialBasics(t *testing.T) {
	e := env(t)
	if _, err := NewSequential(nil); err == nil {
		t.Error("nil environment should fail")
	}
	sq, err := NewSequential(e)
	if err != nil {
		t.Fatal(err)
	}
	if sq.Env() != e {
		t.Error("Env round-trip failed")
	}
	for _, p := range fig4Prefs() {
		if err := sq.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if sq.NumPreferences() != 3 || sq.NumStates() != 4 {
		t.Errorf("prefs=%d states=%d", sq.NumPreferences(), sq.NumStates())
	}
	// Cells: 4 states × 3 values + 4 entries = 16.
	if got := sq.NumCells(); got != 16 {
		t.Errorf("NumCells = %d, want 16", got)
	}
	if sq.Bytes() <= 0 {
		t.Error("Bytes should be positive")
	}
	// Conflict detection mirrors the tree.
	bad := preference.MustNew(fig4Prefs()[2].Descriptor, clause("name", "Acropolis"), 0.1)
	var ce *preference.ConflictError
	if err := sq.Insert(bad); !errors.As(err, &ce) {
		t.Errorf("Insert conflicting = %v", err)
	}
	// Idempotent re-insert.
	if err := sq.Insert(fig4Prefs()[1]); err != nil {
		t.Fatal(err)
	}
	if sq.NumStates() != 4 {
		t.Errorf("re-insert changed states: %d", sq.NumStates())
	}
	// Validation.
	if err := sq.Insert(preference.Preference{Descriptor: ctxmodel.MustDescriptor(), Clause: clause("a", "b"), Score: -1}); err == nil {
		t.Error("bad score should fail")
	}
	if err := sq.Insert(preference.Preference{
		Descriptor: ctxmodel.MustDescriptor(ctxmodel.Eq("location", "Atlantis")),
		Clause:     clause("a", "b"), Score: 0.5}); err == nil {
		t.Error("bad descriptor should fail")
	}
	// Profile insertion.
	pr, _ := preference.NewProfile(e)
	pr.MustAdd(fig4Prefs()...)
	sq2, _ := NewSequential(e)
	if err := sq2.InsertProfile(pr); err != nil {
		t.Fatal(err)
	}
	if sq2.NumStates() != 4 {
		t.Errorf("InsertProfile states = %d", sq2.NumStates())
	}
	// Search validation errors.
	if _, _, err := sq.SearchExact(ctxmodel.State{"bad"}); err == nil {
		t.Error("invalid exact search should fail")
	}
	if _, _, err := sq.SearchCover(ctxmodel.State{"bad"}, distance.Hierarchy{}); err == nil {
		t.Error("invalid cover search should fail")
	}
	if _, _, _, err := sq.Resolve(ctxmodel.State{"bad"}, distance.Hierarchy{}); err == nil {
		t.Error("invalid resolve should fail")
	}
}

// randomPrefs generates n random preferences over the reference
// environment, avoiding conflicts by deriving the score from the
// clause value.
func randomPrefs(e *ctxmodel.Environment, r *rand.Rand, n int) []preference.Preference {
	var out []preference.Preference
	for len(out) < n {
		var pds []ctxmodel.ParamDescriptor
		for i := 0; i < e.NumParams(); i++ {
			if r.Intn(2) == 0 {
				continue
			}
			ed := e.Param(i).Hierarchy().ExtendedDomain()
			if r.Intn(4) == 0 {
				// in-descriptor with 2 values
				a, b := ed[r.Intn(len(ed))], ed[r.Intn(len(ed))]
				if a == b {
					pds = append(pds, ctxmodel.Eq(e.Param(i).Name(), a))
				} else {
					pds = append(pds, ctxmodel.In(e.Param(i).Name(), a, b))
				}
			} else {
				pds = append(pds, ctxmodel.Eq(e.Param(i).Name(), ed[r.Intn(len(ed))]))
			}
		}
		d, err := ctxmodel.NewDescriptor(pds...)
		if err != nil {
			continue
		}
		v := r.Intn(10)
		p, err := preference.New(d, clause("type", string(rune('a'+v))), float64(v)/10)
		if err != nil {
			continue
		}
		out = append(out, p)
	}
	return out
}

// Property: tree and sequential store resolve every query to the same
// best distance and the same entry multiset, and the tree never
// accesses more cells than the sequential scan on cover queries.
func TestQuickTreeSequentialEquivalence(t *testing.T) {
	e := env(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prefs := randomPrefs(e, r, 1+r.Intn(30))
		order := AllOrders(3)[r.Intn(6)]
		tr, err := New(e, order)
		if err != nil {
			return false
		}
		sq, err := NewSequential(e)
		if err != nil {
			return false
		}
		for _, p := range prefs {
			e1 := tr.Insert(p)
			e2 := sq.Insert(p)
			if (e1 == nil) != (e2 == nil) {
				return false // both stores must agree on conflicts
			}
		}
		if tr.NumPaths() != sq.NumStates() {
			return false
		}
		for _, m := range distance.All() {
			for q := 0; q < 10; q++ {
				qs := make(ctxmodel.State, e.NumParams())
				for i := range qs {
					ed := e.Param(i).Hierarchy().ExtendedDomain()
					qs[i] = ed[r.Intn(len(ed))]
				}
				tc, _, err1 := tr.SearchCover(qs, m)
				sc, _, err2 := sq.SearchCover(qs, m)
				if err1 != nil || err2 != nil || len(tc) != len(sc) {
					return false
				}
				tb, tok := Best(tc)
				sb, sok := Best(sc)
				if tok != sok {
					return false
				}
				// The tree sums per-value distances in tree-level
				// order, the baseline in environment order; allow for
				// float reassociation.
				if tok && (math.Abs(tb.Distance-sb.Distance) > 1e-9 || len(tb.Entries) != len(sb.Entries)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: every candidate returned by SearchCover covers the query,
// its distance matches the metric, and its entries equal SearchExact on
// the candidate state. Exact lookups of stored paths always succeed.
func TestQuickSearchCoverSoundComplete(t *testing.T) {
	e := env(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prefs := randomPrefs(e, r, 1+r.Intn(25))
		tr, _ := New(e, nil)
		for _, p := range prefs {
			_ = tr.Insert(p) // conflicts fine, skip them
		}
		m := distance.All()[r.Intn(2)]
		qs := make(ctxmodel.State, e.NumParams())
		for i := range qs {
			dv := e.Param(i).Hierarchy().DetailedValues()
			qs[i] = dv[r.Intn(len(dv))]
		}
		cands, _, err := tr.SearchCover(qs, m)
		if err != nil {
			return false
		}
		found := map[string]bool{}
		for _, c := range cands {
			if !e.Covers(c.State, qs) {
				return false
			}
			want, err := m.StateDistance(e, c.State, qs)
			if err != nil || want != c.Distance {
				return false
			}
			entries, _, err := tr.SearchExact(c.State)
			if err != nil || len(entries) != len(c.Entries) {
				return false
			}
			found[c.State.Key()] = true
		}
		// Completeness: every stored path that covers qs is a candidate.
		for _, p := range tr.Paths() {
			if e.Covers(p.State, qs) && !found[p.State.Key()] {
				return false
			}
		}
		// Exact lookups of stored paths succeed.
		for _, p := range tr.Paths() {
			entries, _, err := tr.SearchExact(p.State)
			if err != nil || len(entries) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: cell accounting — NumCells ≤ MaxCells bound for the chosen
// order, and NumLeafEntries ≥ NumPaths.
func TestQuickCellAccounting(t *testing.T) {
	e := env(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		order := AllOrders(3)[r.Intn(6)]
		tr, _ := New(e, order)
		for _, p := range randomPrefs(e, r, 1+r.Intn(40)) {
			_ = tr.Insert(p)
		}
		sizes := make([]int, len(order))
		for lvl, param := range order {
			sizes[lvl] = e.Param(param).Hierarchy().ExtendedDomainSize()
		}
		return tr.NumInternalCells() <= MaxCells(sizes) &&
			tr.NumLeafEntries() >= tr.NumPaths() &&
			tr.NumCells() == tr.NumInternalCells()+tr.NumLeafEntries()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDelete(t *testing.T) {
	e, tr := fig4Tree(t)
	prefs := fig4Prefs()
	// Deleting pref3 removes two paths ((Plaka, warm, all) and
	// (Plaka, hot, all)) and their cells.
	before := tr.NumCells()
	removed, err := tr.Delete(prefs[2])
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("removed = %d, want 2", removed)
	}
	if tr.NumPaths() != 2 || tr.NumPreferences() != 2 {
		t.Errorf("paths=%d prefs=%d after delete", tr.NumPaths(), tr.NumPreferences())
	}
	if tr.NumCells() >= before {
		t.Errorf("cells %d not pruned (was %d)", tr.NumCells(), before)
	}
	if entries, _, _ := tr.SearchExact(st(t, e, "Plaka", "warm", "all")); len(entries) != 0 {
		t.Error("deleted state still resolvable")
	}
	// Deleting again is a no-op.
	removed, err = tr.Delete(prefs[2])
	if err != nil || removed != 0 {
		t.Errorf("second delete = %d, %v", removed, err)
	}
	// Deleting a different-score variant does not match.
	variant := preference.MustNew(prefs[1].Descriptor, prefs[1].Clause, 0.1234)
	if removed, _ := tr.Delete(variant); removed != 0 {
		t.Error("score-mismatched delete removed an entry")
	}
	// Bad descriptor propagates.
	bad := preference.Preference{
		Descriptor: ctxmodel.MustDescriptor(ctxmodel.Eq("location", "Atlantis")),
		Clause:     clause("a", "b"), Score: 0.5,
	}
	if _, err := tr.Delete(bad); err == nil {
		t.Error("bad descriptor should fail")
	}
	// Delete-then-reinsert restores resolution.
	if err := tr.Insert(prefs[2]); err != nil {
		t.Fatal(err)
	}
	if entries, _, _ := tr.SearchExact(st(t, e, "Plaka", "hot", "all")); len(entries) != 1 {
		t.Error("reinsert after delete failed")
	}
}

// Property: deleting a random subset of preferences with pairwise
// distinct clauses leaves a tree identical (paths, entries, cells) to
// one freshly built from the complement. Distinct clauses matter:
// storage is per (state, clause, score) entry — two preferences whose
// expansions share an entry also share its deletion, mirroring how
// insertion deduplicates it.
func TestQuickDeleteEquivalence(t *testing.T) {
	e := env(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		prefs := make([]preference.Preference, 0, n)
		for i := 0; i < n; i++ {
			var pds []ctxmodel.ParamDescriptor
			for k := 0; k < e.NumParams(); k++ {
				if r.Intn(2) == 0 {
					continue
				}
				ed := e.Param(k).Hierarchy().ExtendedDomain()
				if r.Intn(4) == 0 {
					a, b := ed[r.Intn(len(ed))], ed[r.Intn(len(ed))]
					if a != b {
						pds = append(pds, ctxmodel.In(e.Param(k).Name(), a, b))
						continue
					}
				}
				pds = append(pds, ctxmodel.Eq(e.Param(k).Name(), ed[r.Intn(len(ed))]))
			}
			d, err := ctxmodel.NewDescriptor(pds...)
			if err != nil {
				return false
			}
			// A unique clause per preference keeps entries disjoint.
			prefs = append(prefs, preference.MustNew(d,
				clause("type", fmt.Sprintf("t%d", i)), 0.5))
		}
		full, _ := New(e, nil)
		for _, p := range prefs {
			if err := full.Insert(p); err != nil {
				return false
			}
		}
		var kept []preference.Preference
		for _, p := range prefs {
			if r.Intn(2) == 0 {
				if removed, err := full.Delete(p); err != nil || removed == 0 {
					return false
				}
			} else {
				kept = append(kept, p)
			}
		}
		rebuilt, _ := New(e, nil)
		for _, p := range kept {
			_ = rebuilt.Insert(p)
		}
		if full.NumPaths() != rebuilt.NumPaths() ||
			full.NumLeafEntries() != rebuilt.NumLeafEntries() ||
			full.NumInternalCells() != rebuilt.NumInternalCells() {
			return false
		}
		for _, p := range rebuilt.Paths() {
			entries, _, err := full.SearchExact(p.State)
			if err != nil || len(entries) != len(p.Entries) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSequentialDelete(t *testing.T) {
	e := env(t)
	sq, _ := NewSequential(e)
	prefs := fig4Prefs()
	for _, p := range prefs {
		if err := sq.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := sq.Delete(prefs[2])
	if err != nil || removed != 2 {
		t.Fatalf("Delete = %d, %v", removed, err)
	}
	if sq.NumStates() != 2 || sq.NumPreferences() != 2 {
		t.Errorf("states=%d prefs=%d", sq.NumStates(), sq.NumPreferences())
	}
	if entries, _, _ := sq.SearchExact(st(t, e, "Plaka", "hot", "all")); len(entries) != 0 {
		t.Error("deleted state still present")
	}
	// Remaining states still resolvable (index consistency after drop).
	if entries, _, _ := sq.SearchExact(st(t, e, "all", "all", "friends")); len(entries) != 1 {
		t.Error("surviving state lost")
	}
	if removed, _ := sq.Delete(prefs[2]); removed != 0 {
		t.Error("second delete removed something")
	}
	bad := preference.Preference{
		Descriptor: ctxmodel.MustDescriptor(ctxmodel.Eq("location", "Atlantis")),
		Clause:     clause("a", "b"), Score: 0.5,
	}
	if _, err := sq.Delete(bad); err == nil {
		t.Error("bad descriptor should fail")
	}
}

// Property: tree and sequential deletes stay in lockstep — after the
// same inserts and deletes both stores hold the same states and answer
// identically.
func TestQuickDeleteParity(t *testing.T) {
	e := env(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(15)
		var prefs []preference.Preference
		for i := 0; i < n; i++ {
			var pds []ctxmodel.ParamDescriptor
			for k := 0; k < e.NumParams(); k++ {
				if r.Intn(2) == 0 {
					continue
				}
				dom := e.Param(k).Hierarchy().ExtendedDomain()
				pds = append(pds, ctxmodel.Eq(e.Param(k).Name(), dom[r.Intn(len(dom))]))
			}
			d, err := ctxmodel.NewDescriptor(pds...)
			if err != nil {
				return false
			}
			prefs = append(prefs, preference.MustNew(d,
				clause("type", fmt.Sprintf("u%d", i)), 0.5))
		}
		tr, _ := New(e, AllOrders(3)[r.Intn(6)])
		sq, _ := NewSequential(e)
		for _, p := range prefs {
			if err := tr.Insert(p); err != nil {
				return false
			}
			if err := sq.Insert(p); err != nil {
				return false
			}
		}
		for _, p := range prefs {
			if r.Intn(2) == 0 {
				continue
			}
			a, err1 := tr.Delete(p)
			b, err2 := sq.Delete(p)
			if err1 != nil || err2 != nil || a != b {
				return false
			}
		}
		if tr.NumPaths() != sq.NumStates() || tr.NumPreferences() != sq.NumPreferences() {
			return false
		}
		for _, p := range tr.Paths() {
			entries, _, err := sq.SearchExact(p.State)
			if err != nil || len(entries) != len(p.Entries) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
