package profiletree

import (
	"context"
	"fmt"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/distance"
	"contextpref/internal/preference"
)

// Sequential is the baseline the paper's performance evaluation
// compares the profile tree against: preferences stored as a flat list
// of (context state, clause, score) records, grouped by state. One
// stored state costs n value cells plus one cell per leaf entry, so the
// total cell count is Σ_states (n + #entries) — for a profile whose
// preferences each produce one state this is |P| × (n+1), matching the
// paper's serial numbers (e.g. 522 × 4 ≈ 2100 cells in Fig. 5).
type Sequential struct {
	env    *ctxmodel.Environment
	states []seqState
	index  map[string]int // state key -> position in states
	prefs  int
}

type seqState struct {
	state   ctxmodel.State
	entries []Leaf
}

// NewSequential creates an empty sequential store.
func NewSequential(env *ctxmodel.Environment) (*Sequential, error) {
	if env == nil {
		return nil, fmt.Errorf("profiletree: nil environment")
	}
	return &Sequential{env: env, index: make(map[string]int)}, nil
}

// Env returns the store's environment.
func (sq *Sequential) Env() *ctxmodel.Environment { return sq.env }

// NumPreferences returns how many preferences were inserted.
func (sq *Sequential) NumPreferences() int { return sq.prefs }

// NumStates returns the number of distinct stored context states.
func (sq *Sequential) NumStates() int { return len(sq.states) }

// NumCells implements the paper's serial cell count.
func (sq *Sequential) NumCells() int {
	total := 0
	for _, s := range sq.states {
		total += len(s.state) + len(s.entries)
	}
	return total
}

// Bytes returns the modeled storage size: every stored value string
// plus each leaf entry's clause text and score. No pointers are charged
// — sequential storage shares nothing but needs no structure.
func (sq *Sequential) Bytes() int {
	total := 0
	for _, s := range sq.states {
		for _, v := range s.state {
			total += len(v)
		}
		for _, e := range s.entries {
			total += leafEntryBytes(e)
		}
	}
	return total
}

// Insert adds every context state of the preference, detecting Def. 6
// conflicts; like Tree.Insert it is atomic and idempotent per
// (state, clause, score).
func (sq *Sequential) Insert(p preference.Preference) error {
	if p.Score < 0 || p.Score > 1 {
		return fmt.Errorf("profiletree: interest score %v outside [0, 1]", p.Score)
	}
	states, err := p.Descriptor.Context(sq.env)
	if err != nil {
		return err
	}
	for _, s := range states {
		if i, ok := sq.index[s.Key()]; ok {
			for _, e := range sq.states[i].entries {
				if e.Clause.Equal(p.Clause) && e.Score != p.Score {
					return &preference.ConflictError{
						New:      p,
						Existing: preference.Preference{Descriptor: p.Descriptor, Clause: e.Clause, Score: e.Score},
						State:    s,
					}
				}
			}
		}
	}
	for _, s := range states {
		i, ok := sq.index[s.Key()]
		if !ok {
			i = len(sq.states)
			sq.states = append(sq.states, seqState{state: s.Clone()})
			sq.index[s.Key()] = i
		}
		dup := false
		for _, e := range sq.states[i].entries {
			if e.Clause.Equal(p.Clause) && e.Score == p.Score {
				dup = true
				break
			}
		}
		if !dup {
			sq.states[i].entries = append(sq.states[i].entries, Leaf{Clause: p.Clause, Score: p.Score})
		}
	}
	sq.prefs++
	return nil
}

// InsertProfile inserts every preference of the profile.
func (sq *Sequential) InsertProfile(pr *preference.Profile) error {
	for i := 0; i < pr.Len(); i++ {
		if err := sq.Insert(pr.Pref(i)); err != nil {
			return err
		}
	}
	return nil
}

// SearchExact scans the store until the matching state is found (the
// paper's sequential exact-match cost model) and returns its entries
// with the number of cells accessed. Scanning a stored state costs its
// full cell size (n values + entries).
func (sq *Sequential) SearchExact(s ctxmodel.State) ([]Leaf, int, error) {
	if err := sq.env.Validate(s); err != nil {
		return nil, 0, err
	}
	accesses := 0
	for _, st := range sq.states {
		accesses += len(st.state) + len(st.entries)
		if st.state.Equal(s) {
			return append([]Leaf(nil), st.entries...), accesses, nil
		}
	}
	return nil, accesses, nil
}

// SearchCover scans the whole store (the paper's non-exact sequential
// cost model) collecting every state that covers s, annotated with its
// metric distance.
func (sq *Sequential) SearchCover(s ctxmodel.State, m distance.Metric) ([]Candidate, int, error) {
	return sq.SearchCoverCtx(context.Background(), s, m)
}

// SearchCoverCtx is SearchCover with cooperative cancellation, on the
// same contract as Tree.SearchCoverCtx: the flat scan consults ctx
// every cancelCheckEvery stored states and aborts with a wrapped
// ctx.Err() once the context is done.
//
//cpvet:scanloop
func (sq *Sequential) SearchCoverCtx(ctx context.Context, s ctxmodel.State, m distance.Metric) ([]Candidate, int, error) {
	if err := sq.env.Validate(s); err != nil {
		return nil, 0, err
	}
	accesses := 0
	var out []Candidate
	for i, st := range sq.states {
		if i&(cancelCheckEvery-1) == cancelCheckEvery-1 {
			if err := ctx.Err(); err != nil {
				return nil, accesses, canceled(err)
			}
		}
		accesses += len(st.state) + len(st.entries)
		if !sq.env.Covers(st.state, s) {
			continue
		}
		d, err := m.StateDistance(sq.env, st.state, s)
		if err != nil {
			return nil, accesses, err
		}
		out = append(out, Candidate{
			State:       st.state.Clone(),
			Entries:     append([]Leaf(nil), st.entries...),
			Distance:    d,
			Specificity: specificity(sq.env, st.state),
		})
	}
	return out, accesses, nil
}

// Resolve mirrors Tree.Resolve over the sequential store.
func (sq *Sequential) Resolve(s ctxmodel.State, m distance.Metric) (Candidate, int, bool, error) {
	return sq.ResolveCtx(context.Background(), s, m)
}

// ResolveCtx mirrors Tree.ResolveCtx over the sequential store.
func (sq *Sequential) ResolveCtx(ctx context.Context, s ctxmodel.State, m distance.Metric) (Candidate, int, bool, error) {
	entries, accesses, err := sq.SearchExact(s)
	if err != nil {
		return Candidate{}, 0, false, err
	}
	if len(entries) > 0 {
		return Candidate{State: s.Clone(), Entries: entries, Distance: 0}, accesses, true, nil
	}
	cands, more, err := sq.SearchCoverCtx(ctx, s, m)
	accesses += more
	if err != nil {
		return Candidate{}, accesses, false, err
	}
	best, ok := Best(cands)
	return best, accesses, ok, nil
}

// Delete removes the preference's (clause, score) entry from every
// state its descriptor denotes, dropping states that become empty; it
// mirrors Tree.Delete and returns how many entries were removed.
func (sq *Sequential) Delete(p preference.Preference) (int, error) {
	states, err := p.Descriptor.Context(sq.env)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, s := range states {
		i, ok := sq.index[s.Key()]
		if !ok {
			continue
		}
		entries := sq.states[i].entries
		for e := range entries {
			if entries[e].Clause.Equal(p.Clause) && entries[e].Score == p.Score {
				sq.states[i].entries = append(entries[:e], entries[e+1:]...)
				removed++
				break
			}
		}
		if len(sq.states[i].entries) == 0 {
			sq.dropState(i)
		}
	}
	if removed > 0 {
		sq.prefs--
		if sq.prefs < 0 {
			sq.prefs = 0
		}
	}
	return removed, nil
}

// dropState removes the i-th state, keeping the index consistent.
func (sq *Sequential) dropState(i int) {
	delete(sq.index, sq.states[i].state.Key())
	sq.states = append(sq.states[:i], sq.states[i+1:]...)
	for k := i; k < len(sq.states); k++ {
		sq.index[sq.states[k].state.Key()] = k
	}
}
