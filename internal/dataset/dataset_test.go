package dataset

import (
	"math"
	"strings"
	"testing"

	"contextpref/internal/relation"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/hierarchy"
	"contextpref/internal/preference"
	"contextpref/internal/profiletree"
	"math/rand"
)

func TestRealEnvironment(t *testing.T) {
	env, err := RealEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	if env.NumParams() != 3 {
		t.Fatalf("NumParams = %d", env.NumParams())
	}
	// Active domain cardinalities of the paper: 4, 17, 100.
	wantSizes := map[string]int{"accompanying_people": 4, "time": 17, "location": 100}
	wantLevels := map[string]int{"accompanying_people": 2, "time": 3, "location": 4}
	for name, size := range wantSizes {
		p, ok := env.ParamByName(name)
		if !ok {
			t.Fatalf("missing parameter %s", name)
		}
		if got := len(p.Hierarchy().DetailedValues()); got != size {
			t.Errorf("%s detailed domain = %d, want %d", name, got, size)
		}
		if got := p.Hierarchy().NumLevels(); got != wantLevels[name] {
			t.Errorf("%s levels = %d, want %d", name, got, wantLevels[name])
		}
	}
	// The time hierarchy groups into 5 dayparts.
	tp, _ := env.ParamByName("time")
	if got := len(tp.Hierarchy().ValuesAt(1)); got != 5 {
		t.Errorf("dayparts = %d, want 5", got)
	}
	// Location groups into the two cities.
	lp, _ := env.ParamByName("location")
	if got := tp != nil && lp != nil; !got {
		t.Fatal("params missing")
	}
	cities := lp.Hierarchy().ValuesAt(1)
	if len(cities) != 2 || cities[0] != "Athens" || cities[1] != "Thessaloniki" {
		t.Errorf("cities = %v", cities)
	}
}

func TestPOIs(t *testing.T) {
	env, err := RealEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	rel, err := POIs(env, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 300 {
		t.Fatalf("Len = %d", rel.Len())
	}
	if rel.Schema().NumCols() != 7 {
		t.Errorf("cols = %d", rel.Schema().NumCols())
	}
	// Locations are valid regions; types are known; costs sane.
	lp, _ := env.ParamByName("location")
	typeSet := map[string]bool{}
	for _, tp := range POITypes {
		typeSet[tp] = true
	}
	seenTypes := map[string]bool{}
	for i := 0; i < rel.Len(); i++ {
		loc, _ := rel.Value(i, "location")
		if lv, ok := lp.Hierarchy().LevelOf(loc.Str()); !ok || lv != 0 {
			t.Fatalf("tuple %d: bad location %q", i, loc.Str())
		}
		typ, _ := rel.Value(i, "type")
		if !typeSet[typ.Str()] {
			t.Fatalf("tuple %d: bad type %q", i, typ.Str())
		}
		seenTypes[typ.Str()] = true
		cost, _ := rel.Value(i, "admission_cost")
		if cost.Float() < 0 || cost.Float() > 20 {
			t.Fatalf("tuple %d: cost %v", i, cost.Float())
		}
		name, _ := rel.Value(i, "name")
		if name.Str() == "" {
			t.Fatalf("tuple %d: empty name", i)
		}
	}
	if len(seenTypes) < len(POITypes) {
		t.Errorf("only %d/%d types generated", len(seenTypes), len(POITypes))
	}
	// Determinism.
	rel2, _ := POIs(env, 300, 1)
	for i := 0; i < rel.Len(); i++ {
		a, _ := rel.Value(i, "name")
		b, _ := rel2.Value(i, "name")
		if !a.Equal(b) {
			t.Fatalf("POIs not deterministic at %d", i)
		}
	}
	// Different seed differs somewhere.
	rel3, _ := POIs(env, 300, 2)
	same := true
	for i := 0; i < rel.Len() && same; i++ {
		a, _ := rel.Value(i, "name")
		b, _ := rel3.Value(i, "name")
		same = a.Equal(b)
	}
	if same {
		t.Error("different seeds produced identical POIs")
	}
	// Errors.
	if _, err := POIs(env, 0, 1); err == nil {
		t.Error("n=0 should fail")
	}
	refEnv := ctxmodel.MustReferenceEnvironment()
	if _, err := POIs(refEnv, 10, 1); err != nil {
		t.Errorf("reference environment has location too: %v", err)
	}
	// Environment without location fails.
	h, _ := hierarchy.Uniform("x", 3)
	p, _ := ctxmodel.NewParameter("x", h)
	envNoLoc, _ := ctxmodel.NewEnvironment(p)
	if _, err := POIs(envNoLoc, 10, 1); err == nil {
		t.Error("environment without location should fail")
	}
}

func TestTitleCase(t *testing.T) {
	cases := map[string]string{
		"museum":              "Museum",
		"archaeological_site": "Archaeological Site",
		"x":                   "X",
	}
	for in, want := range cases {
		if got := titleCase(in); got != want {
			t.Errorf("titleCase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSampler(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	vals := []string{"a", "b", "c", "d", "e"}
	// Uniform covers the domain.
	s, err := NewSampler(vals, Uniform, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 5000; i++ {
		counts[s.Draw()]++
	}
	for _, v := range vals {
		if counts[v] < 700 { // expect ~1000 each
			t.Errorf("uniform: %s drawn %d times", v, counts[v])
		}
	}
	// Zipf is skewed toward early values.
	z, err := NewSampler(vals, Zipf, 1.5, r)
	if err != nil {
		t.Fatal(err)
	}
	zc := map[string]int{}
	for i := 0; i < 5000; i++ {
		zc[z.Draw()]++
	}
	if !(zc["a"] > zc["b"] && zc["b"] > zc["c"]) {
		t.Errorf("zipf counts not decreasing: %v", zc)
	}
	if zc["a"] < 2*zc["e"] {
		t.Errorf("zipf not skewed enough: %v", zc)
	}
	// Zipf with a=0 behaves uniformly.
	u0, _ := NewSampler(vals, Zipf, 0, r)
	c0 := map[string]int{}
	for i := 0; i < 5000; i++ {
		c0[u0.Draw()]++
	}
	for _, v := range vals {
		if c0[v] < 700 {
			t.Errorf("zipf(0): %s drawn %d times", v, c0[v])
		}
	}
	// Errors.
	if _, err := NewSampler(nil, Uniform, 0, r); err == nil {
		t.Error("empty domain should fail")
	}
	if _, err := NewSampler(vals, Uniform, 0, nil); err == nil {
		t.Error("nil rand should fail")
	}
	// Dist names.
	if Uniform.String() != "uniform" || Zipf.String() != "zipf" {
		t.Error("Dist.String broken")
	}
	if !strings.Contains(Dist(9).String(), "9") {
		t.Error("unknown Dist.String should embed code")
	}
}

func TestProfileSpecGenerate(t *testing.T) {
	env, err := Fig6Environment()
	if err != nil {
		t.Fatal(err)
	}
	spec := ProfileSpec{Env: env, NumPrefs: 500, Seed: 42, Dist: Uniform}
	prefs, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(prefs) != 500 {
		t.Fatalf("generated %d prefs", len(prefs))
	}
	// Every preference denotes exactly one state; every descriptor is
	// valid; scores within range.
	for i, p := range prefs {
		states, err := p.Descriptor.Context(env)
		if err != nil {
			t.Fatalf("pref %d: %v", i, err)
		}
		if len(states) != 1 {
			t.Fatalf("pref %d denotes %d states", i, len(states))
		}
		if p.Score < 0 || p.Score > 1 {
			t.Fatalf("pref %d score %v", i, p.Score)
		}
	}
	// Conflict-free: insertion into a tree never errors.
	tr, _ := profiletree.New(env, nil)
	for _, p := range prefs {
		if err := tr.Insert(p); err != nil {
			t.Fatalf("conflict in generated profile: %v", err)
		}
	}
	// Determinism.
	again, _ := spec.Generate()
	for i := range prefs {
		if prefs[i].String() != again[i].String() {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
	// Upper levels appear when requested.
	mixed, err := ProfileSpec{Env: env, NumPrefs: 300, Seed: 7, Dist: Uniform, UpperLevelProb: 0.5}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	upper := 0
	for _, p := range mixed {
		states, _ := p.Descriptor.Context(env)
		levels, _ := env.LevelsOf(states[0])
		for _, l := range levels {
			if l > 0 {
				upper++
				break
			}
		}
	}
	if upper < 200 {
		t.Errorf("only %d/300 mixed-level prefs", upper)
	}
	// Per-parameter distributions.
	pd := []ParamDist{{Uniform, 0}, {Uniform, 0}, {Zipf, 3.0}}
	skew, err := ProfileSpec{Env: env, NumPrefs: 400, Seed: 9, ParamDists: pd}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[string]bool{}
	for _, p := range skew {
		for _, ppd := range p.Descriptor.ParamDescriptors() {
			if ppd.Param == "p1000" {
				distinct[ppd.Values[0]] = true
			}
		}
	}
	// zipf a=3 concentrates mass on very few of the 1000 values.
	if len(distinct) > 60 {
		t.Errorf("zipf(3.0) used %d distinct values, expected heavy skew", len(distinct))
	}
	// Errors.
	if _, err := (ProfileSpec{Env: nil, NumPrefs: 1}).Generate(); err == nil {
		t.Error("nil env should fail")
	}
	if _, err := (ProfileSpec{Env: env, NumPrefs: 0}).Generate(); err == nil {
		t.Error("zero prefs should fail")
	}
	if _, err := (ProfileSpec{Env: env, NumPrefs: 1, UpperLevelProb: 2}).Generate(); err == nil {
		t.Error("bad UpperLevelProb should fail")
	}
	if _, err := (ProfileSpec{Env: env, NumPrefs: 1, ParamDists: pd[:1]}).Generate(); err == nil {
		t.Error("short ParamDists should fail")
	}
}

func TestRealProfile(t *testing.T) {
	env, prefs, err := RealProfile(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(prefs) != RealPrefCount {
		t.Fatalf("real profile size = %d, want %d", len(prefs), RealPrefCount)
	}
	// Insertable without conflicts into both stores.
	tr, _ := profiletree.New(env, nil)
	sq, _ := profiletree.NewSequential(env)
	for _, p := range prefs {
		if err := tr.Insert(p); err != nil {
			t.Fatalf("tree insert: %v", err)
		}
		if err := sq.Insert(p); err != nil {
			t.Fatalf("seq insert: %v", err)
		}
	}
	// Serial cell count ≈ 522 × 4 (states may deduplicate slightly).
	if got := sq.NumCells(); got > RealPrefCount*4 || got < RealPrefCount*3 {
		t.Errorf("serial cells = %d, want ≈ %d", got, RealPrefCount*4)
	}
	// The zipf skew concentrates on few regions: distinct stored states
	// well below 522 are expected but not degenerate.
	if sq.NumStates() < 100 || sq.NumStates() > RealPrefCount {
		t.Errorf("distinct states = %d", sq.NumStates())
	}
}

func TestSyntheticEnvironments(t *testing.T) {
	env, err := Fig6Environment()
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{50, 100, 1000}
	levels := []int{3, 4, 4}
	for i := 0; i < 3; i++ {
		h := env.Param(i).Hierarchy()
		if got := len(h.DetailedValues()); got != sizes[i] {
			t.Errorf("param %d: domain %d, want %d", i, got, sizes[i])
		}
		if got := h.NumLevels(); got != levels[i] {
			t.Errorf("param %d: levels %d, want %d", i, got, levels[i])
		}
	}
	skew, err := Fig6SkewEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(skew.Param(2).Hierarchy().DetailedValues()); got != 200 {
		t.Errorf("skew param domain = %d, want 200", got)
	}
	// Invalid spec propagates.
	if _, err := SyntheticEnvironment(SyntheticSpec{Name: "bad", Fanouts: []int{0}}); err == nil {
		t.Error("bad fanout should fail")
	}
}

func TestQueryWorkloads(t *testing.T) {
	env, prefs, err := RealProfile(3)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := QueriesFromPrefs(env, prefs, 50, 4)
	if err != nil || len(qs) != 50 {
		t.Fatalf("QueriesFromPrefs: %d, %v", len(qs), err)
	}
	// Every sampled query has an exact match in the profile tree.
	tr, _ := profiletree.New(env, nil)
	for _, p := range prefs {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range qs {
		entries, _, err := tr.SearchExact(q)
		if err != nil || len(entries) == 0 {
			t.Fatalf("query %v has no exact match: %v", q, err)
		}
	}
	// Random queries validate and respect upperProb=0 (all detailed).
	rq, err := RandomQueries(env, 50, 5, 0)
	if err != nil || len(rq) != 50 {
		t.Fatalf("RandomQueries: %d, %v", len(rq), err)
	}
	for _, q := range rq {
		if err := env.Validate(q); err != nil {
			t.Fatalf("invalid query %v: %v", q, err)
		}
		if !env.IsDetailed(q) {
			t.Fatalf("query %v not detailed", q)
		}
	}
	// Mixed-level queries include upper levels.
	mq, _ := RandomQueries(env, 100, 6, 0.6)
	upper := 0
	for _, q := range mq {
		if !env.IsDetailed(q) {
			upper++
		}
	}
	if upper < 40 {
		t.Errorf("mixed queries: only %d/100 non-detailed", upper)
	}
	// Errors.
	if _, err := QueriesFromPrefs(env, nil, 5, 1); err == nil {
		t.Error("no prefs should fail")
	}
	if _, err := RandomQueries(env, 5, 1, 2); err == nil {
		t.Error("bad upperProb should fail")
	}
}

func TestDemographics(t *testing.T) {
	ds := Demographics()
	if len(ds) != 12 {
		t.Fatalf("demographics = %d, want 12", len(ds))
	}
	keys := map[string]bool{}
	for _, d := range ds {
		if keys[d.Key()] {
			t.Fatalf("duplicate key %s", d.Key())
		}
		keys[d.Key()] = true
	}
	if !keys["under30_male_mainstream"] || !keys["over50_female_offbeat"] {
		t.Errorf("unexpected keys: %v", keys)
	}
}

func TestBaseScore(t *testing.T) {
	d := Demographic{Age: "under30", Sex: "male", Taste: "mainstream"}
	s, err := d.BaseScore("brewery")
	if err != nil {
		t.Fatal(err)
	}
	// 0.5 base + 0.2 under30 + 0.05 male = 0.75.
	if math.Abs(s-0.75) > 1e-12 {
		t.Errorf("BaseScore(brewery) = %v, want 0.75", s)
	}
	// Clamped.
	d2 := Demographic{Age: "over50", Sex: "male", Taste: "offbeat"}
	s2, _ := d2.BaseScore("brewery") // 0.7 - 0.2 + 0.05 = 0.55
	if math.Abs(s2-0.55) > 1e-12 {
		t.Errorf("BaseScore = %v", s2)
	}
	if _, err := d.BaseScore("volcano"); err == nil {
		t.Error("unknown type should fail")
	}
	// All scores clamped to [0.05, 0.95].
	for _, dd := range Demographics() {
		for _, tp := range POITypes {
			s, err := dd.BaseScore(tp)
			if err != nil || s < 0.05 || s > 0.95 {
				t.Errorf("%s/%s: score %v, err %v", dd.Key(), tp, s, err)
			}
		}
	}
}

func TestDefaultProfiles(t *testing.T) {
	env, err := RealEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	all, err := DefaultProfiles(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 12 {
		t.Fatalf("profiles = %d", len(all))
	}
	for key, prefs := range all {
		if len(prefs) != len(POITypes)+len(contextRules) {
			t.Errorf("%s: %d prefs, want %d", key, len(prefs), len(POITypes)+len(contextRules))
		}
		// Conflict-free and insertable.
		pr, _ := preference.NewProfile(env)
		for _, p := range prefs {
			if err := pr.Add(p); err != nil {
				t.Fatalf("%s: default profile conflicts: %v", key, err)
			}
		}
		tr, _ := profiletree.New(env, nil)
		if err := tr.InsertProfile(pr); err != nil {
			t.Fatalf("%s: tree insert: %v", key, err)
		}
	}
	// Distinct demographics produce distinct profiles.
	a := all["under30_male_mainstream"]
	b := all["over50_female_offbeat"]
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i].String() != b[i].String() {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("distinct demographics produced identical profiles")
	}
}

func TestPOIsFromCSV(t *testing.T) {
	env, err := RealEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip a generated relation through CSV.
	gen, err := POIs(env, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := relation.WriteCSV(gen, &buf); err != nil {
		t.Fatal(err)
	}
	rel, err := POIsFromCSV(env, strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != gen.Len() {
		t.Errorf("Len = %d, want %d", rel.Len(), gen.Len())
	}
	// Unknown region is rejected.
	bad := `pid,name,type,location,open_air,hours_of_operation,admission_cost
1,X,museum,atlantis_r1,true,09:00-17:00,5
`
	if _, err := POIsFromCSV(env, strings.NewReader(bad)); err == nil {
		t.Error("unknown region should fail")
	}
	// City-level (non-detailed) region is rejected.
	bad2 := `pid,name,type,location,open_air,hours_of_operation,admission_cost
1,X,museum,Athens,true,09:00-17:00,5
`
	if _, err := POIsFromCSV(env, strings.NewReader(bad2)); err == nil {
		t.Error("non-detailed region should fail")
	}
	// Malformed CSV propagates.
	if _, err := POIsFromCSV(env, strings.NewReader("nope")); err == nil {
		t.Error("bad CSV should fail")
	}
}
