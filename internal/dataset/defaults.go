package dataset

import (
	"fmt"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/preference"
	"contextpref/internal/relation"
)

// This file builds the twelve default profiles of the usability study
// (Section 5.1): one per combination of age band (below 30, 30–50,
// above 50), sex, and taste (mainstream or out-of-the-beaten-track).
// Users are assigned the profile matching their demographic and then
// modify it toward their personal preferences.

// Age bands of the study.
var Ages = []string{"under30", "30to50", "over50"}

// Sexes of the study.
var Sexes = []string{"female", "male"}

// Tastes of the study.
var Tastes = []string{"mainstream", "offbeat"}

// Demographic identifies one of the twelve default profiles.
type Demographic struct {
	// Age is one of Ages.
	Age string
	// Sex is one of Sexes.
	Sex string
	// Taste is one of Tastes.
	Taste string
}

// Key renders the demographic as "age_sex_taste".
func (d Demographic) Key() string { return d.Age + "_" + d.Sex + "_" + d.Taste }

// Demographics enumerates all twelve combinations.
func Demographics() []Demographic {
	var out []Demographic
	for _, a := range Ages {
		for _, s := range Sexes {
			for _, t := range Tastes {
				out = append(out, Demographic{Age: a, Sex: s, Taste: t})
			}
		}
	}
	return out
}

// baseScores gives the context-free interest per POI type and taste.
var baseScores = map[string]map[string]float64{
	"mainstream": {
		"museum": 0.70, "monument": 0.80, "archaeological_site": 0.70,
		"zoo": 0.60, "park": 0.60, "brewery": 0.50, "cafeteria": 0.60,
		"restaurant": 0.70, "gallery": 0.45, "theater": 0.60,
	},
	"offbeat": {
		"museum": 0.50, "monument": 0.45, "archaeological_site": 0.75,
		"zoo": 0.35, "park": 0.55, "brewery": 0.70, "cafeteria": 0.55,
		"restaurant": 0.60, "gallery": 0.80, "theater": 0.70,
	},
}

// ageAdjust shifts type scores per age band.
var ageAdjust = map[string]map[string]float64{
	"under30": {"brewery": 0.20, "cafeteria": 0.10, "museum": -0.10, "theater": -0.05},
	"30to50":  {"restaurant": 0.10, "park": 0.05},
	"over50":  {"museum": 0.15, "theater": 0.15, "zoo": -0.10, "brewery": -0.20},
}

// sexAdjust applies a small deterministic differentiation so all twelve
// defaults are distinct.
var sexAdjust = map[string]map[string]float64{
	"female": {"gallery": 0.05, "theater": 0.05},
	"male":   {"monument": 0.05, "brewery": 0.05},
}

// clamp keeps a score inside [0.05, 0.95] so edits in either direction
// remain expressible.
func clamp(s float64) float64 {
	if s < 0.05 {
		return 0.05
	}
	if s > 0.95 {
		return 0.95
	}
	return s
}

// BaseScore returns the demographic's context-free interest in a POI
// type; it is also the seed of the simulated users' ground truth.
func (d Demographic) BaseScore(poiType string) (float64, error) {
	base, ok := baseScores[d.Taste][poiType]
	if !ok {
		return 0, fmt.Errorf("dataset: unknown POI type %q", poiType)
	}
	return clamp(base + ageAdjust[d.Age][poiType] + sexAdjust[d.Sex][poiType]), nil
}

// typeClause scores tuples of one POI type.
func typeClause(t string) preference.Clause {
	return preference.Clause{Attr: "type", Op: relation.OpEq, Val: relation.S(t)}
}

// contextRule is one context-dependent preference template of the
// default profiles.
type contextRule struct {
	pds   []ctxmodel.ParamDescriptor
	typ   string
	delta float64 // applied on top of the demographic base score
}

// contextRules inject the kind of context-dependence the paper's
// examples motivate: breweries with friends, zoos and parks with
// family, museums in the morning, theaters and restaurants in the
// evening.
var contextRules = []contextRule{
	{[]ctxmodel.ParamDescriptor{ctxmodel.Eq("accompanying_people", "friends")}, "brewery", 0.20},
	{[]ctxmodel.ParamDescriptor{ctxmodel.Eq("accompanying_people", "friends")}, "cafeteria", 0.15},
	{[]ctxmodel.ParamDescriptor{ctxmodel.Eq("accompanying_people", "family")}, "zoo", 0.25},
	{[]ctxmodel.ParamDescriptor{ctxmodel.Eq("accompanying_people", "family")}, "park", 0.20},
	{[]ctxmodel.ParamDescriptor{ctxmodel.Eq("accompanying_people", "family")}, "brewery", -0.25},
	{[]ctxmodel.ParamDescriptor{ctxmodel.Eq("accompanying_people", "alone")}, "gallery", 0.15},
	{[]ctxmodel.ParamDescriptor{ctxmodel.Eq("accompanying_people", "colleagues")}, "restaurant", 0.15},
	{[]ctxmodel.ParamDescriptor{ctxmodel.Eq("time", "morning")}, "museum", 0.15},
	{[]ctxmodel.ParamDescriptor{ctxmodel.Eq("time", "morning")}, "archaeological_site", 0.10},
	{[]ctxmodel.ParamDescriptor{ctxmodel.Eq("time", "evening")}, "theater", 0.20},
	{[]ctxmodel.ParamDescriptor{ctxmodel.Eq("time", "evening")}, "restaurant", 0.15},
	{[]ctxmodel.ParamDescriptor{ctxmodel.Eq("time", "night")}, "brewery", 0.15},
	{[]ctxmodel.ParamDescriptor{ctxmodel.Eq("time", "night")}, "museum", -0.30},
	{[]ctxmodel.ParamDescriptor{ctxmodel.Eq("time", "noon")}, "park", -0.10},
	{[]ctxmodel.ParamDescriptor{ctxmodel.Eq("time", "noon")}, "restaurant", 0.15},
	{[]ctxmodel.ParamDescriptor{
		ctxmodel.Eq("accompanying_people", "friends"), ctxmodel.Eq("time", "evening")}, "brewery", 0.25},
	{[]ctxmodel.ParamDescriptor{
		ctxmodel.Eq("accompanying_people", "family"), ctxmodel.Eq("time", "morning")}, "zoo", 0.30},
}

// DefaultProfile builds the default preference list for a demographic:
// one context-free preference per POI type plus the contextual rules,
// each scored relative to the demographic's base interests. The list is
// conflict-free (every clause appears at most once per context state).
func DefaultProfile(env *ctxmodel.Environment, d Demographic) ([]preference.Preference, error) {
	var out []preference.Preference
	for _, t := range POITypes {
		score, err := d.BaseScore(t)
		if err != nil {
			return nil, err
		}
		desc, err := ctxmodel.NewDescriptor()
		if err != nil {
			return nil, err
		}
		// Context-free interests are deliberately scaled below the
		// contextual rules: what a user wants in a concrete situation
		// dominates their general tastes, which is the premise of the
		// whole contextual-preference model.
		p, err := preference.New(desc, typeClause(t), clamp(0.4*score))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	for _, rule := range contextRules {
		base, err := d.BaseScore(rule.typ)
		if err != nil {
			return nil, err
		}
		desc, err := ctxmodel.NewDescriptor(rule.pds...)
		if err != nil {
			return nil, err
		}
		if _, err := desc.Context(env); err != nil {
			return nil, fmt.Errorf("dataset: default profile rule invalid: %w", err)
		}
		p, err := preference.New(desc, typeClause(rule.typ), clamp(base+rule.delta))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// DefaultProfiles builds all twelve default profiles keyed by
// Demographic.Key().
func DefaultProfiles(env *ctxmodel.Environment) (map[string][]preference.Preference, error) {
	out := make(map[string][]preference.Preference, 12)
	for _, d := range Demographics() {
		prefs, err := DefaultProfile(env, d)
		if err != nil {
			return nil, err
		}
		out[d.Key()] = prefs
	}
	return out, nil
}
