// Package dataset generates the data the paper's evaluation runs on:
// the points-of-interest database, the "real" profile of 522
// preferences (Section 5.2), the synthetic profiles with uniform/zipf
// value distributions (Figs. 6–7), query workloads, and the twelve
// default profiles of the usability study (Table 1).
//
// The paper used a proprietary POI database of Athens and Thessaloniki
// and a real user profile. We substitute deterministic generators that
// match the published statistics — schema, active-domain cardinalities
// (4 / 17 / 100), profile size (522), hierarchy depths — which are the
// only properties the reported experiments depend on. See DESIGN.md for
// the substitution rationale.
package dataset

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/hierarchy"
	"contextpref/internal/preference"
	"contextpref/internal/relation"
)

// RealPrefCount is the size of the paper's real profile.
const RealPrefCount = 522

// Cities of the usability study's POI database.
var Cities = []string{"Athens", "Thessaloniki"}

// POITypes are the point-of-interest categories used across the
// examples, the usability study and the generated profiles.
var POITypes = []string{
	"museum", "monument", "archaeological_site", "zoo", "park",
	"brewery", "cafeteria", "restaurant", "gallery", "theater",
}

// RealEnvironment builds the context environment of the paper's real
// profile (Section 5.2): accompanying_people with 4 detailed values,
// time with 17, and location with 100 regions over the two cities.
//
// Hierarchies:
//
//	accompanying_people: Relationship(4) ≺ ALL
//	time:                Period(17) ≺ Daypart(5) ≺ ALL
//	location:            Region(100) ≺ City(2) ≺ Country(1) ≺ ALL
func RealEnvironment() (*ctxmodel.Environment, error) {
	people, err := hierarchy.NewBuilder("accompanying_people", "Relationship").
		Add("friends").
		Add("family").
		Add("alone").
		Add("colleagues").
		Build()
	if err != nil {
		return nil, err
	}

	tb := hierarchy.NewBuilder("time", "Period", "Daypart")
	dayparts := []struct {
		name    string
		periods int
	}{
		{"morning", 4}, {"noon", 3}, {"afternoon", 4}, {"evening", 3}, {"night", 3},
	}
	i := 1
	for _, dp := range dayparts {
		for k := 0; k < dp.periods; k++ {
			tb.Add(fmt.Sprintf("t%02d", i), dp.name)
			i++
		}
	}
	times, err := tb.Build()
	if err != nil {
		return nil, err
	}
	if got := len(times.DetailedValues()); got != 17 {
		return nil, fmt.Errorf("dataset: time hierarchy has %d periods, want 17", got)
	}

	lb := hierarchy.NewBuilder("location", "Region", "City", "Country")
	// 60 Athens regions, 40 Thessaloniki regions: 100 total.
	for r := 1; r <= 60; r++ {
		lb.Add(fmt.Sprintf("ath_r%02d", r), "Athens", "Greece")
	}
	for r := 1; r <= 40; r++ {
		lb.Add(fmt.Sprintf("the_r%02d", r), "Thessaloniki", "Greece")
	}
	locs, err := lb.Build()
	if err != nil {
		return nil, err
	}

	pp, err := ctxmodel.NewParameter("accompanying_people", people)
	if err != nil {
		return nil, err
	}
	pt, err := ctxmodel.NewParameter("time", times)
	if err != nil {
		return nil, err
	}
	pl, err := ctxmodel.NewParameter("location", locs)
	if err != nil {
		return nil, err
	}
	return ctxmodel.NewEnvironment(pp, pt, pl)
}

// POISchema is the schema of the paper's reference relation:
// Points_of_Interest(pid, name, type, location, open_air,
// hours_of_operation, admission_cost).
func POISchema() (*relation.Schema, error) {
	return relation.NewSchema("points_of_interest",
		relation.Column{Name: "pid", Kind: relation.KindInt},
		relation.Column{Name: "name", Kind: relation.KindString},
		relation.Column{Name: "type", Kind: relation.KindString},
		relation.Column{Name: "location", Kind: relation.KindString},
		relation.Column{Name: "open_air", Kind: relation.KindBool},
		relation.Column{Name: "hours_of_operation", Kind: relation.KindString},
		relation.Column{Name: "admission_cost", Kind: relation.KindFloat},
	)
}

// openAirTypes marks categories that are predominantly open-air.
var openAirTypes = map[string]bool{
	"monument": true, "archaeological_site": true, "zoo": true, "park": true,
}

var hourChoices = []string{
	"08:00-15:00", "09:00-17:00", "10:00-18:00", "10:00-22:00", "12:00-24:00",
}

// POIs generates n points of interest whose location column draws from
// the detailed regions of the environment's location parameter.
func POIs(env *ctxmodel.Environment, n int, seed int64) (*relation.Relation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: POI count %d must be positive", n)
	}
	locParam, ok := env.ParamByName("location")
	if !ok {
		return nil, fmt.Errorf("dataset: environment has no location parameter")
	}
	regions := locParam.Hierarchy().DetailedValues()
	schema, err := POISchema()
	if err != nil {
		return nil, err
	}
	rel := relation.New(schema)
	r := rand.New(rand.NewSource(seed))
	for pid := 1; pid <= n; pid++ {
		typ := POITypes[r.Intn(len(POITypes))]
		region := regions[r.Intn(len(regions))]
		name := fmt.Sprintf("%s %s #%d", titleCase(typ), region, pid)
		openAir := openAirTypes[typ]
		if r.Intn(10) == 0 {
			openAir = !openAir // a few exceptions keep the column informative
		}
		cost := math.Round(r.Float64()*200) / 10 // 0.0 .. 20.0
		if typ == "park" || typ == "monument" {
			if r.Intn(2) == 0 {
				cost = 0
			}
		}
		hours := hourChoices[r.Intn(len(hourChoices))]
		if _, err := rel.Insert(
			relation.I(int64(pid)),
			relation.S(name),
			relation.S(typ),
			relation.S(region),
			relation.B(openAir),
			relation.S(hours),
			relation.F(cost),
		); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// titleCase capitalizes the first letter and replaces underscores.
func titleCase(s string) string {
	out := make([]byte, 0, len(s))
	up := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_':
			out = append(out, ' ')
			up = true
		case up && c >= 'a' && c <= 'z':
			out = append(out, c-'a'+'A')
			up = false
		default:
			out = append(out, c)
			up = false
		}
	}
	return string(out)
}

// Dist selects the value distribution of a profile generator.
type Dist int

const (
	// Uniform draws values uniformly from the detailed domain.
	Uniform Dist = iota
	// Zipf draws values with probability ∝ (rank+1)^-a.
	Zipf
)

// String names the distribution.
func (d Dist) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Zipf:
		return "zipf"
	}
	return fmt.Sprintf("Dist(%d)", int(d))
}

// Sampler draws values from a finite domain under Uniform or Zipf.
// Zipf with a = 0 degenerates to Uniform, which is exactly how the
// Fig. 6 (right) sweep treats its left endpoint.
type Sampler struct {
	values []string
	cdf    []float64 // nil for uniform
	r      *rand.Rand
}

// NewSampler builds a sampler over the values. For Zipf, a ≥ 0 is the
// skew exponent.
func NewSampler(values []string, d Dist, a float64, r *rand.Rand) (*Sampler, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("dataset: sampler over empty domain")
	}
	if r == nil {
		return nil, fmt.Errorf("dataset: sampler needs a rand source")
	}
	s := &Sampler{values: values, r: r}
	if d == Zipf && a > 0 {
		cdf := make([]float64, len(values))
		total := 0.0
		for k := range values {
			total += math.Pow(float64(k+1), -a)
			cdf[k] = total
		}
		for k := range cdf {
			cdf[k] /= total
		}
		s.cdf = cdf
	}
	return s, nil
}

// Draw returns one value.
func (s *Sampler) Draw() string {
	if s.cdf == nil {
		return s.values[s.r.Intn(len(s.values))]
	}
	u := s.r.Float64()
	lo, hi := 0, len(s.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return s.values[lo]
}

// ProfileSpec parameterizes synthetic preference generation.
type ProfileSpec struct {
	// Env is the context environment.
	Env *ctxmodel.Environment
	// NumPrefs is the number of preferences to generate.
	NumPrefs int
	// Seed makes generation deterministic.
	Seed int64
	// Dist selects the value distribution over each parameter's
	// detailed domain.
	Dist Dist
	// ZipfA is the zipf exponent (used when Dist == Zipf).
	ZipfA float64
	// ParamDists optionally overrides Dist/ZipfA per parameter (by
	// environment index); used by the Fig. 6 (right) mixed-skew sweep.
	ParamDists []ParamDist
	// UpperLevelProb is the probability that a drawn context value is
	// lifted to a random higher hierarchy level (including ALL),
	// producing preferences at mixed levels of detail.
	UpperLevelProb float64
	// Attr is the clause attribute every preference scores (default
	// "type").
	Attr string
	// AttrValues are the clause values drawn from (default POITypes).
	AttrValues []string
}

// ParamDist is a per-parameter distribution override.
type ParamDist struct {
	// Dist selects the distribution for this parameter.
	Dist Dist
	// ZipfA is its zipf exponent.
	ZipfA float64
}

// Generate produces a deterministic, conflict-free preference list:
// each preference's descriptor constrains every context parameter with
// an equality (so it denotes exactly one context state, matching the
// paper's profile-size accounting), and the interest score is a
// function of the clause value, so two preferences with the same clause
// never carry different scores.
func (spec ProfileSpec) Generate() ([]preference.Preference, error) {
	if spec.Env == nil {
		return nil, fmt.Errorf("dataset: nil environment")
	}
	if spec.NumPrefs <= 0 {
		return nil, fmt.Errorf("dataset: NumPrefs %d must be positive", spec.NumPrefs)
	}
	if spec.UpperLevelProb < 0 || spec.UpperLevelProb > 1 {
		return nil, fmt.Errorf("dataset: UpperLevelProb %v outside [0, 1]", spec.UpperLevelProb)
	}
	attr := spec.Attr
	if attr == "" {
		attr = "type"
	}
	attrValues := spec.AttrValues
	if len(attrValues) == 0 {
		attrValues = POITypes
	}
	r := rand.New(rand.NewSource(spec.Seed))
	n := spec.Env.NumParams()
	samplers := make([]*Sampler, n)
	for i := 0; i < n; i++ {
		d, a := spec.Dist, spec.ZipfA
		if spec.ParamDists != nil {
			if len(spec.ParamDists) != n {
				return nil, fmt.Errorf("dataset: ParamDists has %d entries, environment has %d parameters", len(spec.ParamDists), n)
			}
			d, a = spec.ParamDists[i].Dist, spec.ParamDists[i].ZipfA
		}
		s, err := NewSampler(spec.Env.Param(i).Hierarchy().DetailedValues(), d, a, r)
		if err != nil {
			return nil, err
		}
		samplers[i] = s
	}
	out := make([]preference.Preference, 0, spec.NumPrefs)
	for len(out) < spec.NumPrefs {
		pds := make([]ctxmodel.ParamDescriptor, 0, n)
		for i := 0; i < n; i++ {
			v := samplers[i].Draw()
			h := spec.Env.Param(i).Hierarchy()
			if spec.UpperLevelProb > 0 && r.Float64() < spec.UpperLevelProb {
				lv := 1 + r.Intn(h.NumLevels()-1)
				a, err := h.Anc(v, lv)
				if err != nil {
					return nil, err
				}
				v = a
			}
			if v != hierarchy.All {
				// An "all" value is expressed by omitting the
				// parameter from the descriptor (Def. 4).
				pds = append(pds, ctxmodel.Eq(spec.Env.Param(i).Name(), v))
			}
		}
		d, err := ctxmodel.NewDescriptor(pds...)
		if err != nil {
			return nil, err
		}
		vi := r.Intn(len(attrValues))
		clause := preference.Clause{Attr: attr, Op: relation.OpEq, Val: relation.S(attrValues[vi])}
		// Score derived from the clause value: conflict-free by
		// construction (Def. 6 needs differing scores on one clause).
		score := 0.1 + 0.8*float64(vi)/float64(maxInt(1, len(attrValues)-1))
		p, err := preference.New(d, clause, score)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RealProfile generates the stand-in for the paper's real profile: 522
// preferences over RealEnvironment with mildly skewed (zipf a = 1.0)
// value distributions — users concentrate on a few favourite regions
// and times — and 20% of context values lifted to higher levels.
func RealProfile(seed int64) (*ctxmodel.Environment, []preference.Preference, error) {
	env, err := RealEnvironment()
	if err != nil {
		return nil, nil, err
	}
	prefs, err := ProfileSpec{
		Env:            env,
		NumPrefs:       RealPrefCount,
		Seed:           seed,
		Dist:           Zipf,
		ZipfA:          1.0,
		UpperLevelProb: 0.2,
	}.Generate()
	if err != nil {
		return nil, nil, err
	}
	return env, prefs, nil
}

// SyntheticSpec describes one parameter of a synthetic environment as
// a chain of level fanouts (see hierarchy.Uniform); the detailed domain
// size is the product of the fanouts.
type SyntheticSpec struct {
	// Name is the parameter name.
	Name string
	// Fanouts configure the hierarchy levels.
	Fanouts []int
}

// SyntheticEnvironment builds an environment from per-parameter specs.
func SyntheticEnvironment(specs ...SyntheticSpec) (*ctxmodel.Environment, error) {
	params := make([]*ctxmodel.Parameter, 0, len(specs))
	for _, sp := range specs {
		h, err := hierarchy.Uniform(sp.Name, sp.Fanouts...)
		if err != nil {
			return nil, err
		}
		p, err := ctxmodel.NewParameter(sp.Name, h)
		if err != nil {
			return nil, err
		}
		params = append(params, p)
	}
	return ctxmodel.NewEnvironment(params...)
}

// Fig6Environment is the synthetic environment of Figs. 6 (left,
// center) and 7 (center, right): domains of 50, 100 and 1000 values
// with 2, 3 and 3 hierarchy levels respectively (plus ALL).
func Fig6Environment() (*ctxmodel.Environment, error) {
	return SyntheticEnvironment(
		SyntheticSpec{Name: "p50", Fanouts: []int{5, 10}},        // 50 → 10 → ALL
		SyntheticSpec{Name: "p100", Fanouts: []int{5, 4, 5}},     // 100 → 20 → 5 → ALL
		SyntheticSpec{Name: "p1000", Fanouts: []int{10, 10, 10}}, // 1000 → 100 → 10 → ALL
	)
}

// Fig6SkewEnvironment is the environment of the Fig. 6 (right)
// experiment: domains of 50, 100 and 200 values.
func Fig6SkewEnvironment() (*ctxmodel.Environment, error) {
	return SyntheticEnvironment(
		SyntheticSpec{Name: "p50", Fanouts: []int{5, 10}},    // 50 → 10 → ALL
		SyntheticSpec{Name: "p100", Fanouts: []int{5, 4, 5}}, // 100 → 20 → 5 → ALL
		SyntheticSpec{Name: "p200", Fanouts: []int{10, 20}},  // 200 → 20 → ALL
	)
}

// QueriesFromPrefs samples n query states from the context states the
// preferences denote, so exact-match lookups succeed (the Fig. 7
// exact-match workloads).
func QueriesFromPrefs(env *ctxmodel.Environment, prefs []preference.Preference, n int, seed int64) ([]ctxmodel.State, error) {
	if len(prefs) == 0 {
		return nil, fmt.Errorf("dataset: no preferences to sample queries from")
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]ctxmodel.State, 0, n)
	for len(out) < n {
		p := prefs[r.Intn(len(prefs))]
		states, err := p.Descriptor.Context(env)
		if err != nil {
			return nil, err
		}
		out = append(out, states[r.Intn(len(states))])
	}
	return out, nil
}

// RandomQueries draws n random context states with each value lifted to
// a random upper level with probability upperProb — the mixed-level
// query workload of the Fig. 7 non-exact experiments.
func RandomQueries(env *ctxmodel.Environment, n int, seed int64, upperProb float64) ([]ctxmodel.State, error) {
	if upperProb < 0 || upperProb > 1 {
		return nil, fmt.Errorf("dataset: upperProb %v outside [0, 1]", upperProb)
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]ctxmodel.State, 0, n)
	for len(out) < n {
		s := make(ctxmodel.State, env.NumParams())
		for i := range s {
			h := env.Param(i).Hierarchy()
			dv := h.DetailedValues()
			v := dv[r.Intn(len(dv))]
			if upperProb > 0 && r.Float64() < upperProb {
				lv := 1 + r.Intn(h.NumLevels()-1)
				a, err := h.Anc(v, lv)
				if err != nil {
					return nil, err
				}
				v = a
			}
			s[i] = v
		}
		out = append(out, s)
	}
	return out, nil
}

// POIsFromCSV loads a points-of-interest relation from CSV (schema
// POISchema, header row required) and validates that every location
// value is a detailed region of the environment's location parameter,
// so generated and user-supplied databases behave identically.
func POIsFromCSV(env *ctxmodel.Environment, r io.Reader) (*relation.Relation, error) {
	locParam, ok := env.ParamByName("location")
	if !ok {
		return nil, fmt.Errorf("dataset: environment has no location parameter")
	}
	schema, err := POISchema()
	if err != nil {
		return nil, err
	}
	rel, err := relation.ReadCSV(schema, r)
	if err != nil {
		return nil, err
	}
	h := locParam.Hierarchy()
	for i := 0; i < rel.Len(); i++ {
		loc, err := rel.Value(i, "location")
		if err != nil {
			return nil, err
		}
		if lv, ok := h.LevelOf(loc.Str()); !ok || lv != 0 {
			return nil, fmt.Errorf("dataset: CSV row %d: location %q is not a detailed region of the environment",
				i+1, loc.Str())
		}
	}
	return rel, nil
}
