package replication

// FuzzReplicationFrame drives the length-prefixed wire decoder with
// arbitrary bytes: truncated headers, truncated payloads, unknown
// types, absurd declared lengths, and garbage payloads must all error
// cleanly — never panic, and never allocate anywhere near a lying
// length header. Decoded frames are pushed through the payload
// decoders too, since that is exactly what a session does.

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

func FuzzReplicationFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{frameHello, 0, 0, 0, 16})
	f.Add(frameBytes(frameHello, encodeHello(42)))
	f.Add(frameBytes(frameBatch, encodeBatch(1, 3, []byte("A\t1\t\"u\"\tdeadbeef\tp\n"))))
	f.Add(frameBytes(frameSnapshot, encodeSnapshot(9, []byte("# cpjournal v2 snapshot\n"))))
	f.Add(frameBytes(frameHeartbeat, encodeSeq(7)))
	f.Add(frameBytes(frameAck, encodeSeq(8)))
	// cprepl/2 shapes: the sharded hello, segment-tagged payloads, and
	// the refusal frame.
	f.Add(frameBytes(frameHello, encodeHelloV2(4, 2, 42)))
	f.Add(frameBytes(frameHello, encodeHelloV2(0, 0, 1))) // zero shards must error, not panic
	f.Add(frameBytes(frameBatch, prependSegment(2, encodeBatch(1, 3, []byte("A\t1\t\"u\"\tdeadbeef\tp\n")))))
	f.Add(frameBytes(frameSnapshot, prependSegment(1, encodeSnapshot(9, []byte("# cpjournal v2 snapshot\n")))))
	f.Add(frameBytes(frameAck, prependSegment(3, encodeSeq(8))))
	f.Add(frameBytes(frameRefuse, []byte("shard count mismatch: leader has 4 journal segments, follower declared 2")))
	f.Add(frameBytes(frameRefuse, []byte{}))
	// A header declaring 2 GiB with no payload behind it.
	huge := []byte{frameSnapshot, 0x7f, 0xff, 0xff, 0xff}
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			typ, payload, err := readFrame(r)
			if err != nil {
				break // any malformed input must land here, not panic
			}
			if len(payload) > len(data) {
				t.Fatalf("decoder produced %d payload bytes from %d input bytes", len(payload), len(data))
			}
			switch typ {
			case frameHello:
				decodeHello(payload)
				decodeHelloAny(payload)
			case frameBatch:
				if first, commit, raw, err := decodeBatch(payload); err == nil {
					_ = first
					_ = commit
					_ = raw
				}
				// A v2 session strips the segment tag first; both paths
				// must fail cleanly on arbitrary bytes.
				if _, body, err := splitSegment(payload); err == nil {
					decodeBatch(body)
				}
			case frameSnapshot:
				decodeSnapshot(payload)
				if _, body, err := splitSegment(payload); err == nil {
					decodeSnapshot(body)
				}
			case frameHeartbeat, frameAck:
				decodeSeq(payload)
				if _, body, err := splitSegment(payload); err == nil {
					decodeSeq(body)
				}
			case frameRefuse:
				decodeRefusal(payload)
			}
		}
	})
}

// FuzzReplicationFrameRoundTrip checks the codec against itself: every
// encodable frame decodes back to the same type and payload.
func FuzzReplicationFrameRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(1), []byte("x\n"))
	f.Add(uint64(7), uint64(12), []byte{})
	f.Fuzz(func(t *testing.T, a, b uint64, data []byte) {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		var buf bytes.Buffer
		payloads := [][]byte{
			encodeHello(a),
			encodeBatch(a, b, data),
			encodeSnapshot(a, data),
			encodeSeq(b),
		}
		types := []byte{frameHello, frameBatch, frameSnapshot, frameAck}
		for i, p := range payloads {
			if err := writeFrame(&buf, types[i], p); err != nil {
				t.Fatal(err)
			}
		}
		for i, want := range payloads {
			typ, got, err := readFrame(&buf)
			if err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
			if typ != types[i] || !bytes.Equal(got, want) {
				t.Fatalf("frame %d: round-trip mismatch", i)
			}
		}
		if _, _, err := readFrame(&buf); err != io.EOF {
			t.Fatalf("trailing read: %v, want EOF", err)
		}
		// The v2 codecs invert each other exactly: the sharded hello and
		// the segment tag every v2 payload carries.
		shards := uint32(b%1024) + 1
		seg := uint32(a % uint64(shards))
		h, err := decodeHelloAny(encodeHelloV2(shards, seg, b))
		if err != nil || !h.v2 || h.shards != shards || h.segment != seg || h.lastSeq != b {
			t.Fatalf("v2 hello round-trip: %+v, %v", h, err)
		}
		gotSeg, body, err := splitSegment(prependSegment(seg, data))
		if err != nil || gotSeg != seg || !bytes.Equal(body, data) {
			t.Fatalf("segment tag round-trip: %d, %v", gotSeg, err)
		}
	})
}

// frameBytes renders one frame for seed corpora.
func frameBytes(typ byte, payload []byte) []byte {
	b := make([]byte, frameHeaderLen+len(payload))
	b[0] = typ
	binary.BigEndian.PutUint32(b[1:], uint32(len(payload)))
	copy(b[frameHeaderLen:], payload)
	return b
}
