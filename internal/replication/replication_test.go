package replication

// Unit and chaos coverage for the replication pair over an in-memory
// transport: steady-state shipping, snapshot bootstrap, reconnect
// idempotency under mid-frame disconnects, torn follower tails, lagged
// sessions, and promotion on operator signal and leader silence.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"contextpref/internal/faultfs"
	"contextpref/internal/journal"
)

// memListener is an in-memory net.Listener over net.Pipe: dial hands
// one end to Accept. Pipe conns support deadlines, which the follower
// relies on.
type memListener struct {
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

func newMemListener() *memListener {
	return &memListener{ch: make(chan net.Conn), done: make(chan struct{})}
}

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "mem" }

func (l *memListener) Addr() net.Addr { return memAddr{} }

func (l *memListener) dial(ctx context.Context) (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.ch <- server:
		return client, nil
	case <-l.done:
		client.Close()
		server.Close()
		return nil, net.ErrClosed
	case <-ctx.Done():
		client.Close()
		server.Close()
		return nil, ctx.Err()
	}
}

// flakyConn injects a mid-stream disconnect: after budget bytes have
// been read, every operation fails and the underlying conn closes —
// the follower sees a truncated frame, exactly like a leader crash
// mid-record.
type flakyConn struct {
	net.Conn
	mu     sync.Mutex
	budget int // bytes readable before the cut; <0 = unlimited
}

var errInjectedCut = errors.New("injected mid-stream disconnect")

func (c *flakyConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	budget := c.budget
	c.mu.Unlock()
	if budget < 0 {
		return c.Conn.Read(p)
	}
	if budget == 0 {
		c.Conn.Close()
		return 0, errInjectedCut
	}
	if len(p) > budget {
		p = p[:budget]
	}
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	c.budget -= n
	c.mu.Unlock()
	return n, err
}

// replicaState is a test in-memory state fed by Apply/Reset.
type replicaState struct {
	mu   sync.Mutex
	recs []journal.Record
}

func (s *replicaState) apply(recs []journal.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs = append(s.recs, recs...)
	return nil
}

func (s *replicaState) reset(recs []journal.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs = append([]journal.Record(nil), recs...)
	return nil
}

func (s *replicaState) snapshot() []journal.Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]journal.Record(nil), s.recs...)
}

func testRecs(n int, tag string) []journal.Record {
	recs := make([]journal.Record, n)
	for i := range recs {
		recs[i] = journal.Record{Op: journal.OpAdd, User: "alice", Line: fmt.Sprintf("%s-%d", tag, i)}
	}
	return recs
}

// waitFor polls until cond or the deadline.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

type replPair struct {
	leaderJ, followerJ *journal.Journal
	leader             *Leader
	follower           *Follower
	state              *replicaState
	ln                 *memListener
	runErr             chan error
	cancel             context.CancelFunc
}

// startPair wires a leader and a running follower over the in-memory
// transport. wrap, when non-nil, intercepts each dialed conn.
func startPair(t *testing.T, fcfg FollowerConfig, wrap func(net.Conn) net.Conn) *replPair {
	t.Helper()
	lj, _, err := journal.OpenFS(faultfs.NewMemFS(), "leader")
	if err != nil {
		t.Fatal(err)
	}
	fj, _, err := journal.OpenFS(faultfs.NewMemFS(), "follower")
	if err != nil {
		t.Fatal(err)
	}
	ln := newMemListener()
	leader := NewLeader(lj, LeaderConfig{Heartbeat: 10 * time.Millisecond})
	go leader.Serve(ln)

	state := &replicaState{}
	fcfg.Dial = func(ctx context.Context) (net.Conn, error) {
		c, err := ln.dial(ctx)
		if err != nil {
			return nil, err
		}
		if wrap != nil {
			c = wrap(c)
		}
		return c, nil
	}
	fcfg.Apply = state.apply
	fcfg.Reset = state.reset
	if fcfg.Backoff == 0 {
		fcfg.Backoff = time.Millisecond
	}
	if fcfg.ReadTimeout == 0 {
		fcfg.ReadTimeout = 200 * time.Millisecond
	}
	follower, err := NewFollower(fj, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- follower.Run(ctx) }()
	p := &replPair{lj, fj, leader, follower, state, ln, runErr, cancel}
	t.Cleanup(func() {
		cancel()
		select {
		case <-p.runErr:
		case <-time.After(2 * time.Second):
			t.Error("follower.Run did not return after cancel")
		}
		leader.Close()
		lj.Close()
		fj.Close()
	})
	return p
}

// settle waits until the follower has durably applied everything the
// leader committed and the leader has seen the matching ack.
func (p *replPair) settle(t *testing.T) {
	t.Helper()
	want := p.leaderJ.LastSeq()
	waitFor(t, 5*time.Second, fmt.Sprintf("follower to reach seq %d", want), func() bool {
		return p.follower.AppliedSeq() == want
	})
	waitFor(t, 5*time.Second, "leader to see the ack", func() bool {
		return p.leader.Acked() == want
	})
}

func TestShipSteadyState(t *testing.T) {
	p := startPair(t, FollowerConfig{}, nil)
	var want []journal.Record
	for i := 0; i < 5; i++ {
		recs := testRecs(3, fmt.Sprintf("b%d", i))
		if err := p.leaderJ.Append(recs...); err != nil {
			t.Fatal(err)
		}
		want = append(want, recs...)
	}
	p.settle(t)
	got := p.state.snapshot()
	if len(got) != len(want) {
		t.Fatalf("follower state has %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	// Fresh heartbeats keep staleness bounded.
	waitFor(t, time.Second, "staleness to collapse", func() bool {
		return p.follower.Staleness() < 150*time.Millisecond
	})
}

func TestSnapshotBootstrapColdFollower(t *testing.T) {
	lj, _, err := journal.OpenFS(faultfs.NewMemFS(), "leader")
	if err != nil {
		t.Fatal(err)
	}
	defer lj.Close()
	// History the cold follower never saw, compacted away.
	pre := testRecs(6, "pre")
	if err := lj.Append(pre...); err != nil {
		t.Fatal(err)
	}
	if err := lj.Snapshot(pre); err != nil {
		t.Fatal(err)
	}
	post := testRecs(2, "post")
	if err := lj.Append(post...); err != nil {
		t.Fatal(err)
	}

	ln := newMemListener()
	leader := NewLeader(lj, LeaderConfig{Heartbeat: 10 * time.Millisecond})
	go leader.Serve(ln)
	defer leader.Close()

	fj, _, err := journal.OpenFS(faultfs.NewMemFS(), "follower")
	if err != nil {
		t.Fatal(err)
	}
	defer fj.Close()
	state := &replicaState{}
	var resets int
	f, err := NewFollower(fj, FollowerConfig{
		Dial:  ln.dial,
		Apply: state.apply,
		Reset: func(recs []journal.Record) error {
			resets++
			return state.reset(recs)
		},
		Backoff:     time.Millisecond,
		ReadTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()
	defer func() { cancel(); <-done }()

	waitFor(t, 5*time.Second, "bootstrap to converge", func() bool {
		return f.AppliedSeq() == lj.LastSeq()
	})
	if resets != 1 {
		t.Fatalf("Reset called %d times, want 1 (snapshot bootstrap)", resets)
	}
	got := state.snapshot()
	want := append(append([]journal.Record(nil), pre...), post...)
	if len(got) != len(want) {
		t.Fatalf("bootstrapped state has %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	// The follower's own journal recovers to the same state.
	if fj.LastSeq() != lj.LastSeq() {
		t.Fatalf("follower journal at seq %d, leader %d", fj.LastSeq(), lj.LastSeq())
	}
}

func TestReconnectAfterMidFrameCutsIsIdempotent(t *testing.T) {
	// Every session is cut after a deterministic byte budget —
	// truncating frames mid-header and mid-record — until the budgets
	// run out and a clean session finishes the job. The applied state
	// must come out exactly once, in order.
	budgets := []int{3, 9, 30, 75, 160, 310}
	var mu sync.Mutex
	next := 0
	wrap := func(c net.Conn) net.Conn {
		mu.Lock()
		defer mu.Unlock()
		b := -1
		if next < len(budgets) {
			b = budgets[next]
			next++
		}
		return &flakyConn{Conn: c, budget: b}
	}
	p := startPair(t, FollowerConfig{Rand: rand.New(rand.NewSource(11))}, wrap)
	var want []journal.Record
	for i := 0; i < 8; i++ {
		recs := testRecs(2, fmt.Sprintf("c%d", i))
		if err := p.leaderJ.Append(recs...); err != nil {
			t.Fatal(err)
		}
		want = append(want, recs...)
	}
	p.settle(t)
	mu.Lock()
	cuts := next
	mu.Unlock()
	if cuts != len(budgets) {
		t.Fatalf("only %d of %d flaky sessions were exercised", cuts, len(budgets))
	}
	got := p.state.snapshot()
	if len(got) != len(want) {
		t.Fatalf("after %d cuts: %d records applied, want %d (duplicates or losses)", cuts, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestFollowerTornTailResyncs(t *testing.T) {
	// A follower that crashed mid-append recovers with a truncated
	// tail and a stale hello; the leader re-ships from there.
	lj, _, err := journal.OpenFS(faultfs.NewMemFS(), "leader")
	if err != nil {
		t.Fatal(err)
	}
	defer lj.Close()
	var shipped []journal.Batch
	lj.OnAppend(func(first, commit uint64, data []byte) {
		shipped = append(shipped, journal.Batch{FirstSeq: first, CommitSeq: commit, Data: data})
	})
	all := testRecs(6, "t")
	for i := 0; i < 3; i++ {
		if err := lj.Append(all[2*i : 2*i+2]...); err != nil {
			t.Fatal(err)
		}
	}

	// Replicate two batches, then crash the follower's disk mid-way
	// through a direct append of the third — a torn tail.
	ffs := faultfs.NewMemFS()
	inj := faultfs.NewInject(ffs)
	fj, _, err := journal.OpenFS(inj, "follower")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range shipped[:2] {
		if _, _, err := fj.AppendReplicated(b.Data); err != nil {
			t.Fatal(err)
		}
	}
	inj.CrashAt(1)
	if _, _, err := fj.AppendReplicated(shipped[2].Data); err == nil {
		t.Fatal("append through a crashing disk succeeded")
	}
	fj.Close()
	inj.Lift()

	// Reopen: recovery truncates the torn batch; the journal is two
	// batches deep again.
	fj2, recovered, err := journal.OpenFS(inj, "follower")
	if err != nil {
		t.Fatal(err)
	}
	defer fj2.Close()
	if len(recovered) != 4 {
		t.Fatalf("recovered %d records after torn tail, want 4", len(recovered))
	}

	// Tail the leader from the recovered horizon: exactly the missing
	// batch ships, and the follower converges.
	ln := newMemListener()
	leader := NewLeader(lj, LeaderConfig{Heartbeat: 10 * time.Millisecond})
	go leader.Serve(ln)
	defer leader.Close()
	state := &replicaState{}
	state.reset(recovered)
	f, err := NewFollower(fj2, FollowerConfig{
		Dial: ln.dial, Apply: state.apply, Reset: state.reset,
		Backoff: time.Millisecond, ReadTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()
	defer func() { cancel(); <-done }()
	waitFor(t, 5*time.Second, "torn follower to resync", func() bool {
		return f.AppliedSeq() == lj.LastSeq()
	})
	got := state.snapshot()
	if len(got) != len(all) {
		t.Fatalf("resynced state has %d records, want %d", len(got), len(all))
	}
	for i := range got {
		if got[i] != all[i] {
			t.Fatalf("record %d: %+v, want %+v", i, got[i], all[i])
		}
	}
}

func TestManualPromote(t *testing.T) {
	p := startPair(t, FollowerConfig{}, nil)
	if err := p.leaderJ.Append(testRecs(2, "m")...); err != nil {
		t.Fatal(err)
	}
	p.settle(t)
	p.follower.Promote()
	select {
	case err := <-p.runErr:
		if !errors.Is(err, ErrPromoted) {
			t.Fatalf("Run returned %v, want ErrPromoted", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after Promote")
	}
	p.runErr <- nil // keep Cleanup's drain happy
}

func TestPromoteOnLeaderSilence(t *testing.T) {
	// The leader stops heartbeating (wedged, not crashed: the conn
	// stays open); the watchdog promotes after the silence bound.
	p := startPair(t, FollowerConfig{
		ReadTimeout:  30 * time.Millisecond,
		PromoteAfter: 100 * time.Millisecond,
	}, nil)
	if err := p.leaderJ.Append(testRecs(1, "w")...); err != nil {
		t.Fatal(err)
	}
	p.settle(t)
	applied := p.follower.AppliedSeq()
	// Wedge: close the leader so nothing more is sent, ever.
	p.leader.Close()
	select {
	case err := <-p.runErr:
		if !errors.Is(err, ErrPromoted) {
			t.Fatalf("Run returned %v, want ErrPromoted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower did not self-promote on leader silence")
	}
	// Promotion preserved the acked prefix.
	if p.follower.AppliedSeq() != applied {
		t.Fatalf("promotion changed applied seq %d -> %d", applied, p.follower.AppliedSeq())
	}
	p.runErr <- nil
}

func TestLaggedFollowerIsCutAndResyncs(t *testing.T) {
	// A follower that reads slower than the leader appends overflows
	// the tiny send buffer, is disconnected, and must still converge
	// by resyncing from disk on reconnect.
	lj, _, err := journal.OpenFS(faultfs.NewMemFS(), "leader")
	if err != nil {
		t.Fatal(err)
	}
	defer lj.Close()
	ln := newMemListener()
	leader := NewLeader(lj, LeaderConfig{Heartbeat: 5 * time.Millisecond, SendBuffer: 1})
	go leader.Serve(ln)
	defer leader.Close()

	fj, _, err := journal.OpenFS(faultfs.NewMemFS(), "follower")
	if err != nil {
		t.Fatal(err)
	}
	defer fj.Close()
	state := &replicaState{}
	var mu sync.Mutex
	throttle := true
	f, err := NewFollower(fj, FollowerConfig{
		Dial: ln.dial,
		Apply: func(recs []journal.Record) error {
			mu.Lock()
			slow := throttle
			mu.Unlock()
			if slow {
				time.Sleep(20 * time.Millisecond)
			}
			return state.apply(recs)
		},
		Reset:       state.reset,
		Backoff:     time.Millisecond,
		ReadTimeout: 300 * time.Millisecond,
		Metrics:     &Metrics{},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()
	defer func() { cancel(); <-done }()

	var want []journal.Record
	for i := 0; i < 30; i++ {
		recs := testRecs(1, fmt.Sprintf("l%d", i))
		if err := lj.Append(recs...); err != nil {
			t.Fatal(err)
		}
		want = append(want, recs...)
	}
	mu.Lock()
	throttle = false
	mu.Unlock()
	waitFor(t, 10*time.Second, "lagged follower to converge", func() bool {
		return f.AppliedSeq() == lj.LastSeq()
	})
	got := state.snapshot()
	if len(got) != len(want) {
		t.Fatalf("converged state has %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestWireRoundTrip(t *testing.T) {
	c, s := net.Pipe()
	defer c.Close()
	defer s.Close()
	go func() {
		writeFrame(c, frameHello, encodeHello(42))
		writeFrame(c, frameBatch, encodeBatch(7, 9, []byte("lines\n")))
		writeFrame(c, frameSnapshot, encodeSnapshot(9, []byte("snap\n")))
		writeFrame(c, frameHeartbeat, encodeSeq(11))
		writeFrame(c, frameAck, encodeSeq(12))
	}()
	typ, p, err := readFrame(s)
	if err != nil || typ != frameHello {
		t.Fatalf("frame 1: %c %v", typ, err)
	}
	if seq, err := decodeHello(p); err != nil || seq != 42 {
		t.Fatalf("hello: %d %v", seq, err)
	}
	typ, p, err = readFrame(s)
	if err != nil || typ != frameBatch {
		t.Fatalf("frame 2: %c %v", typ, err)
	}
	first, commit, data, err := decodeBatch(p)
	if err != nil || first != 7 || commit != 9 || string(data) != "lines\n" {
		t.Fatalf("batch: [%d,%d] %q %v", first, commit, data, err)
	}
	typ, p, err = readFrame(s)
	if err != nil || typ != frameSnapshot {
		t.Fatalf("frame 3: %c %v", typ, err)
	}
	if seq, data, err := decodeSnapshot(p); err != nil || seq != 9 || string(data) != "snap\n" {
		t.Fatalf("snapshot: %d %q %v", seq, data, err)
	}
	for want := uint64(11); want <= 12; want++ {
		_, p, err = readFrame(s)
		if err != nil {
			t.Fatal(err)
		}
		if seq, err := decodeSeq(p); err != nil || seq != want {
			t.Fatalf("seq frame: %d %v, want %d", seq, err, want)
		}
	}
}
