package replication

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"contextpref/internal/journal"
	"contextpref/internal/tracing"
)

// LeaderConfig tunes a Leader. The zero value is usable: discard
// logging, no telemetry, default heartbeat interval and send buffer.
type LeaderConfig struct {
	// Heartbeat is the interval between heartbeat frames on an idle
	// session; defaults to 1s. Followers use missed heartbeats to
	// detect a wedged leader, so it should be several times smaller
	// than the follower's promote-after timeout.
	Heartbeat time.Duration
	// SendBuffer is the per-session batch queue length; defaults to
	// 128. A follower that falls further behind than the buffer holds
	// is disconnected and resynchronizes on reconnect, so a slow
	// replica never blocks the leader's append path.
	SendBuffer int
	// Logger receives session lifecycle events; nil discards them.
	Logger *slog.Logger
	// Metrics, when non-nil, records shipped record counts and
	// snapshot bootstrap sizes.
	Metrics *Metrics
	// SegmentMetrics, when non-nil, holds one instrument set per
	// journal segment (index-aligned with the segments passed to
	// NewShardedLeader) so a sharded store's shipping is attributable
	// per shard. Segments past its length fall back to Metrics.
	SegmentMetrics []*Metrics
	// Tracer, when non-nil, records a replication.ship trace per
	// shipped batch. Ship traces are leader-originated roots (there is
	// no inbound request to parent them under); retention follows the
	// tracer's usual slow/error/sample policy.
	Tracer *tracing.Tracer
}

// metricsFor resolves the instrument set for one segment.
func (c *LeaderConfig) metricsFor(seg int) *Metrics {
	if seg < len(c.SegmentMetrics) && c.SegmentMetrics[seg] != nil {
		return c.SegmentMetrics[seg]
	}
	return c.Metrics
}

// Leader serves the replication protocol over a store's journal
// segments: it taps each segment's append stream, accepts follower
// sessions, bootstraps each to the current state (incrementally when
// possible, by snapshot when not), and then pushes every committed
// batch plus periodic heartbeats, collecting sequence-numbered acks.
//
// Each session carries exactly one segment, named by the follower's
// hello, so every segment replicates on its own logical stream and a
// slow or cut stream never blocks the others. An unsharded store is
// the one-segment case and speaks cprepl/1 unchanged; a sharded
// leader refuses hellos whose shard count does not match its own.
//
// The journal taps run under each journal's lock and only enqueue into
// per-session buffers — the leader never performs I/O or re-enters a
// journal from a tap.
type Leader struct {
	segs []*journal.Journal
	cfg  LeaderConfig
	log  *slog.Logger

	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	acked  []uint64 // per segment: newest sequence acked by any session
	closed bool
	lns    []net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// subscriber is one session's batch queue, bound to one segment.
type subscriber struct {
	seg  int
	ch   chan journal.Batch
	drop chan struct{} // closed when the queue overflowed
	once sync.Once
}

func (s *subscriber) overflow() { s.once.Do(func() { close(s.drop) }) }

// NewLeader builds a leader over a single (unsharded) journal and
// installs the append tap. The leader serves nothing until Serve is
// called; Close detaches the tap.
func NewLeader(j *journal.Journal, cfg LeaderConfig) *Leader {
	return NewShardedLeader([]*journal.Journal{j}, cfg)
}

// NewShardedLeader builds a leader over one journal segment per shard,
// index-aligned with the directory's shard numbering, and installs an
// append tap on every segment. Followers must present the same shard
// count at handshake; each of their connections streams one segment.
func NewShardedLeader(segs []*journal.Journal, cfg LeaderConfig) *Leader {
	if len(segs) == 0 {
		panic("replication: NewShardedLeader needs at least one segment")
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	if cfg.SendBuffer <= 0 {
		cfg.SendBuffer = 128
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	l := &Leader{
		segs:  segs,
		cfg:   cfg,
		log:   log,
		subs:  make(map[*subscriber]struct{}),
		acked: make([]uint64, len(segs)),
		conns: make(map[net.Conn]struct{}),
	}
	for i, j := range segs {
		seg := i
		j.OnAppend(func(firstSeq, commitSeq uint64, data []byte) {
			l.ship(seg, firstSeq, commitSeq, data)
		})
	}
	return l
}

// Segments returns the number of journal segments the leader serves.
func (l *Leader) Segments() int { return len(l.segs) }

// ship fans one committed batch out to every session queue on its
// segment. Called synchronously under that journal's lock: enqueue
// only, never block. A full queue marks the session lagged; its writer
// disconnects it and the follower resynchronizes by reconnecting.
func (l *Leader) ship(seg int, firstSeq, commitSeq uint64, data []byte) {
	b := journal.Batch{FirstSeq: firstSeq, CommitSeq: commitSeq, Data: data}
	l.mu.Lock()
	defer l.mu.Unlock()
	for s := range l.subs {
		if s.seg != seg {
			continue
		}
		select {
		case s.ch <- b:
		default:
			s.overflow()
		}
	}
}

// Acked returns the newest sequence number any follower has
// acknowledged as durably applied on the first segment — the whole
// store, for an unsharded leader. Promotion safety is stated against
// this value: a promoted follower's state is a prefix of the acked
// stream. Sharded leaders account per segment; see AckedSegment.
func (l *Leader) Acked() uint64 { return l.AckedSegment(0) }

// AckedSegment returns the newest acked sequence number for one
// journal segment.
func (l *Leader) AckedSegment(seg int) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.acked[seg]
}

// Serve accepts follower sessions on ln until the listener closes or
// the leader is closed. It blocks; run it in its own goroutine. Serve
// may be called on several listeners concurrently.
func (l *Leader) Serve(ln net.Listener) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		ln.Close()
		return errors.New("replication: leader is closed")
	}
	l.lns = append(l.lns, ln)
	l.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			l.mu.Lock()
			closed := l.closed
			l.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("replication: accept: %w", err)
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			conn.Close()
			return nil
		}
		l.conns[conn] = struct{}{}
		l.wg.Add(1)
		l.mu.Unlock()
		go func() {
			defer l.wg.Done()
			l.serveConn(conn)
		}()
	}
}

// Close detaches the journal taps, closes the listeners and every live
// session, and waits for session goroutines to drain.
func (l *Leader) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	lns := l.lns
	conns := make([]net.Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	for _, j := range l.segs {
		j.OnAppend(nil)
	}
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	l.wg.Wait()
	return nil
}

// serveConn runs one follower session to completion.
func (l *Leader) serveConn(conn net.Conn) {
	peer := conn.RemoteAddr().String()
	err := l.session(conn)
	conn.Close()
	l.mu.Lock()
	delete(l.conns, conn)
	closed := l.closed
	l.mu.Unlock()
	if err != nil && !closed && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
		l.log.Warn("replication session ended", "peer", peer, "error", err)
	} else {
		l.log.Debug("replication session closed", "peer", peer)
	}
}

// refuse tells the peer why its handshake cannot be served, then
// errors the session. Refusal is a protocol answer, not a transport
// fault: the follower must not retry into the same topology mismatch.
func (l *Leader) refuse(conn net.Conn, reason string) error {
	// Best-effort: the refusal is advisory; the close is authoritative.
	_ = writeFrame(conn, frameRefuse, []byte(reason))
	return fmt.Errorf("replication: refused session: %s", reason)
}

func (l *Leader) session(conn net.Conn) error {
	typ, payload, err := readFrame(conn)
	if err != nil {
		return err
	}
	if typ != frameHello {
		return fmt.Errorf("replication: session opened with %c frame, want hello", typ)
	}
	h, err := decodeHelloAny(payload)
	if err != nil {
		return err
	}
	switch {
	case !h.v2 && len(l.segs) != 1:
		return l.refuse(conn, fmt.Sprintf(
			"sharded leader serves %d journal segments; cprepl/1 followers replicate only unsharded stores", len(l.segs)))
	case h.v2 && int(h.shards) != len(l.segs):
		return l.refuse(conn, fmt.Sprintf(
			"shard count mismatch: leader has %d journal segments, follower declared %d", len(l.segs), h.shards))
	}
	seg := int(h.segment)
	jrn := l.segs[seg]
	followerSeq := h.lastSeq
	metrics := l.cfg.metricsFor(seg)

	// send serializes every leader→follower frame on this session,
	// tagging payloads with the segment on v2.
	sendFrame := func(typ byte, payload []byte) error {
		if h.v2 {
			payload = prependSegment(h.segment, payload)
		}
		return writeFrame(conn, typ, payload)
	}

	// Subscribe before reading the tail: batches committed during the
	// bootstrap read land in the queue, and the dedupe below drops the
	// overlap. The queue is registered first so nothing can fall in
	// the gap between the two.
	sub := &subscriber{seg: seg, ch: make(chan journal.Batch, l.cfg.SendBuffer), drop: make(chan struct{})}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return net.ErrClosed
	}
	l.subs[sub] = struct{}{}
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.subs, sub)
		l.mu.Unlock()
	}()

	// Ack reader: updates the segment's acked watermark and unblocks
	// the writer on disconnect by closing the connection. It must start
	// before the bootstrap sends below — the follower acks each batch
	// as it lands, and an unread ack would deadlock an unbuffered
	// transport against the next bootstrap write.
	readErr := make(chan error, 1)
	go func() {
		for {
			typ, payload, err := readFrame(conn)
			if err != nil {
				readErr <- err
				conn.Close()
				return
			}
			if typ != frameAck {
				readErr <- fmt.Errorf("replication: follower sent %c frame, want ack", typ)
				conn.Close()
				return
			}
			if h.v2 {
				ackSeg, body, err := splitSegment(payload)
				if err != nil {
					readErr <- err
					conn.Close()
					return
				}
				if ackSeg != h.segment {
					readErr <- fmt.Errorf("replication: ack for segment %d on segment %d's stream", ackSeg, h.segment)
					conn.Close()
					return
				}
				payload = body
			}
			seq, err := decodeSeq(payload)
			if err != nil {
				readErr <- err
				conn.Close()
				return
			}
			l.mu.Lock()
			if seq > l.acked[seg] {
				l.acked[seg] = seq
			}
			l.mu.Unlock()
		}
	}()

	snap, batches, lastSeq, err := jrn.TailSince(followerSeq)
	if err != nil {
		return err
	}
	var sentSeq uint64 // newest commitSeq this session has written
	if snap != nil {
		var snapSeq uint64
		// The snapshot's own horizon anchors the stream; recompute it
		// from the batches' base when the rendering predates them.
		if len(batches) > 0 {
			snapSeq = batches[0].FirstSeq - 1
		} else {
			snapSeq = lastSeq
		}
		if err := sendFrame(frameSnapshot, encodeSnapshot(snapSeq, snap)); err != nil {
			return err
		}
		sentSeq = snapSeq
		if metrics != nil {
			metrics.SnapshotBytes.Set(float64(len(snap)))
		}
		l.log.Info("replication bootstrap by snapshot",
			"peer", conn.RemoteAddr().String(), "segment", seg, "bytes", len(snap), "horizon", snapSeq)
	} else {
		sentSeq = followerSeq
	}
	send := func(b journal.Batch) error {
		if b.CommitSeq <= sentSeq {
			return nil // duplicate of the bootstrap read or the queue overlap
		}
		_, sp := l.cfg.Tracer.StartRoot(context.Background(), "replication.ship", tracing.Traceparent{})
		sp.SetInt("segment", int64(seg))
		sp.SetInt("records", int64(b.CommitSeq-b.FirstSeq))
		sp.SetInt("bytes", int64(len(b.Data)))
		sp.SetInt("commit_seq", int64(b.CommitSeq))
		err := sendFrame(frameBatch, encodeBatch(b.FirstSeq, b.CommitSeq, b.Data))
		sp.Fail(err)
		sp.End()
		sp.Release()
		if err != nil {
			return err
		}
		sentSeq = b.CommitSeq
		if metrics != nil {
			metrics.Shipped.Add(int(b.CommitSeq - b.FirstSeq))
		}
		return nil
	}
	for _, b := range batches {
		if err := send(b); err != nil {
			return err
		}
	}

	ticker := time.NewTicker(l.cfg.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case b := <-sub.ch:
			if err := send(b); err != nil {
				return err
			}
		case <-ticker.C:
			if err := sendFrame(frameHeartbeat, encodeSeq(jrn.LastSeq())); err != nil {
				return err
			}
		case <-sub.drop:
			// The session fell behind the send buffer; cut it loose
			// and let the reconnect resynchronize from disk.
			return fmt.Errorf("replication: follower lagged past the send buffer at seq %d", sentSeq)
		case err := <-readErr:
			return err
		}
	}
}
