package replication

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"contextpref/internal/journal"
	"contextpref/internal/tracing"
)

// LeaderConfig tunes a Leader. The zero value is usable: discard
// logging, no telemetry, default heartbeat interval and send buffer.
type LeaderConfig struct {
	// Heartbeat is the interval between heartbeat frames on an idle
	// session; defaults to 1s. Followers use missed heartbeats to
	// detect a wedged leader, so it should be several times smaller
	// than the follower's promote-after timeout.
	Heartbeat time.Duration
	// SendBuffer is the per-session batch queue length; defaults to
	// 128. A follower that falls further behind than the buffer holds
	// is disconnected and resynchronizes on reconnect, so a slow
	// replica never blocks the leader's append path.
	SendBuffer int
	// Logger receives session lifecycle events; nil discards them.
	Logger *slog.Logger
	// Metrics, when non-nil, records shipped record counts and
	// snapshot bootstrap sizes.
	Metrics *Metrics
	// Tracer, when non-nil, records a replication.ship trace per
	// shipped batch. Ship traces are leader-originated roots (there is
	// no inbound request to parent them under); retention follows the
	// tracer's usual slow/error/sample policy.
	Tracer *tracing.Tracer
}

// Leader serves the replication protocol over a journal: it taps the
// journal's append stream, accepts follower sessions, bootstraps each
// to the current state (incrementally when possible, by snapshot when
// not), and then pushes every committed batch plus periodic
// heartbeats, collecting sequence-numbered acks.
//
// The journal tap runs under the journal's lock and only enqueues into
// per-session buffers — the leader never performs I/O or re-enters the
// journal from the tap.
type Leader struct {
	j   *journal.Journal
	cfg LeaderConfig
	log *slog.Logger

	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	acked  uint64 // newest sequence acked by any session
	closed bool
	lns    []net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// subscriber is one session's batch queue.
type subscriber struct {
	ch   chan journal.Batch
	drop chan struct{} // closed when the queue overflowed
	once sync.Once
}

func (s *subscriber) overflow() { s.once.Do(func() { close(s.drop) }) }

// NewLeader builds a leader over j and installs the journal append
// tap. The leader serves nothing until Serve is called; Close detaches
// the tap.
func NewLeader(j *journal.Journal, cfg LeaderConfig) *Leader {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	if cfg.SendBuffer <= 0 {
		cfg.SendBuffer = 128
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	l := &Leader{
		j:     j,
		cfg:   cfg,
		log:   log,
		subs:  make(map[*subscriber]struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	j.OnAppend(l.ship)
	return l
}

// ship fans one committed batch out to every session queue. Called
// synchronously under the journal lock: enqueue only, never block. A
// full queue marks the session lagged; its writer disconnects it and
// the follower resynchronizes by reconnecting.
func (l *Leader) ship(firstSeq, commitSeq uint64, data []byte) {
	b := journal.Batch{FirstSeq: firstSeq, CommitSeq: commitSeq, Data: data}
	l.mu.Lock()
	defer l.mu.Unlock()
	for s := range l.subs {
		select {
		case s.ch <- b:
		default:
			s.overflow()
		}
	}
}

// Acked returns the newest sequence number any follower has
// acknowledged as durably applied. Promotion safety is stated against
// this value: a promoted follower's state is a prefix of the acked
// stream.
func (l *Leader) Acked() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.acked
}

// Serve accepts follower sessions on ln until the listener closes or
// the leader is closed. It blocks; run it in its own goroutine. Serve
// may be called on several listeners concurrently.
func (l *Leader) Serve(ln net.Listener) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		ln.Close()
		return errors.New("replication: leader is closed")
	}
	l.lns = append(l.lns, ln)
	l.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			l.mu.Lock()
			closed := l.closed
			l.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("replication: accept: %w", err)
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			conn.Close()
			return nil
		}
		l.conns[conn] = struct{}{}
		l.wg.Add(1)
		l.mu.Unlock()
		go func() {
			defer l.wg.Done()
			l.serveConn(conn)
		}()
	}
}

// Close detaches the journal tap, closes the listeners and every live
// session, and waits for session goroutines to drain.
func (l *Leader) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	lns := l.lns
	conns := make([]net.Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	l.j.OnAppend(nil)
	for _, ln := range lns {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	l.wg.Wait()
	return nil
}

// serveConn runs one follower session to completion.
func (l *Leader) serveConn(conn net.Conn) {
	peer := conn.RemoteAddr().String()
	err := l.session(conn)
	conn.Close()
	l.mu.Lock()
	delete(l.conns, conn)
	closed := l.closed
	l.mu.Unlock()
	if err != nil && !closed && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
		l.log.Warn("replication session ended", "peer", peer, "error", err)
	} else {
		l.log.Debug("replication session closed", "peer", peer)
	}
}

func (l *Leader) session(conn net.Conn) error {
	typ, payload, err := readFrame(conn)
	if err != nil {
		return err
	}
	if typ != frameHello {
		return fmt.Errorf("replication: session opened with %c frame, want hello", typ)
	}
	followerSeq, err := decodeHello(payload)
	if err != nil {
		return err
	}

	// Subscribe before reading the tail: batches committed during the
	// bootstrap read land in the queue, and the dedupe below drops the
	// overlap. The queue is registered first so nothing can fall in
	// the gap between the two.
	sub := &subscriber{ch: make(chan journal.Batch, l.cfg.SendBuffer), drop: make(chan struct{})}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return net.ErrClosed
	}
	l.subs[sub] = struct{}{}
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.subs, sub)
		l.mu.Unlock()
	}()

	// Ack reader: updates the leader-wide acked watermark and unblocks
	// the writer on disconnect by closing the connection. It must start
	// before the bootstrap sends below — the follower acks each batch
	// as it lands, and an unread ack would deadlock an unbuffered
	// transport against the next bootstrap write.
	readErr := make(chan error, 1)
	go func() {
		for {
			typ, payload, err := readFrame(conn)
			if err != nil {
				readErr <- err
				conn.Close()
				return
			}
			if typ != frameAck {
				readErr <- fmt.Errorf("replication: follower sent %c frame, want ack", typ)
				conn.Close()
				return
			}
			seq, err := decodeSeq(payload)
			if err != nil {
				readErr <- err
				conn.Close()
				return
			}
			l.mu.Lock()
			if seq > l.acked {
				l.acked = seq
			}
			l.mu.Unlock()
		}
	}()

	snap, batches, lastSeq, err := l.j.TailSince(followerSeq)
	if err != nil {
		return err
	}
	var sentSeq uint64 // newest commitSeq this session has written
	if snap != nil {
		var snapSeq uint64
		// The snapshot's own horizon anchors the stream; recompute it
		// from the batches' base when the rendering predates them.
		if len(batches) > 0 {
			snapSeq = batches[0].FirstSeq - 1
		} else {
			snapSeq = lastSeq
		}
		if err := writeFrame(conn, frameSnapshot, encodeSnapshot(snapSeq, snap)); err != nil {
			return err
		}
		sentSeq = snapSeq
		if m := l.cfg.Metrics; m != nil {
			m.SnapshotBytes.Set(float64(len(snap)))
		}
		l.log.Info("replication bootstrap by snapshot",
			"peer", conn.RemoteAddr().String(), "bytes", len(snap), "horizon", snapSeq)
	} else {
		sentSeq = followerSeq
	}
	send := func(b journal.Batch) error {
		if b.CommitSeq <= sentSeq {
			return nil // duplicate of the bootstrap read or the queue overlap
		}
		_, sp := l.cfg.Tracer.StartRoot(context.Background(), "replication.ship", tracing.Traceparent{})
		sp.SetInt("records", int64(b.CommitSeq-b.FirstSeq))
		sp.SetInt("bytes", int64(len(b.Data)))
		sp.SetInt("commit_seq", int64(b.CommitSeq))
		err := writeFrame(conn, frameBatch, encodeBatch(b.FirstSeq, b.CommitSeq, b.Data))
		sp.Fail(err)
		sp.End()
		sp.Release()
		if err != nil {
			return err
		}
		sentSeq = b.CommitSeq
		if m := l.cfg.Metrics; m != nil {
			m.Shipped.Add(int(b.CommitSeq - b.FirstSeq))
		}
		return nil
	}
	for _, b := range batches {
		if err := send(b); err != nil {
			return err
		}
	}

	ticker := time.NewTicker(l.cfg.Heartbeat)
	defer ticker.Stop()
	for {
		select {
		case b := <-sub.ch:
			if err := send(b); err != nil {
				return err
			}
		case <-ticker.C:
			if err := writeFrame(conn, frameHeartbeat, encodeSeq(l.j.LastSeq())); err != nil {
				return err
			}
		case <-sub.drop:
			// The session fell behind the send buffer; cut it loose
			// and let the reconnect resynchronize from disk.
			return fmt.Errorf("replication: follower lagged past the send buffer at seq %d", sentSeq)
		case err := <-readErr:
			return err
		}
	}
}
