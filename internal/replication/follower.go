package replication

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"time"

	"contextpref/internal/journal"
	"contextpref/internal/tracing"
)

// ErrPromoted is returned by Follower.Run when the follower leaves the
// replication stream to take over as leader — either by operator
// signal (Promote) or because the leader went silent past
// PromoteAfter. The caller owns the actual role change: attach a
// persister, flip the health role, start serving writes.
var ErrPromoted = errors.New("replication: follower promoted")

// FollowerConfig tunes a Follower. Dial, Apply, and Reset are
// required; everything else has serviceable defaults.
type FollowerConfig struct {
	// Dial opens a connection to the leader. Injectable so tests can
	// splice in flaky in-memory connections.
	Dial func(ctx context.Context) (net.Conn, error)
	// Apply folds one replicated batch's records into the in-memory
	// state, after the batch is durable in the local journal. An error
	// is fatal to Run: disk and memory have diverged.
	Apply func(recs []journal.Record) error
	// Reset rebuilds the in-memory state from scratch with a
	// snapshot's records, discarding whatever was there — the
	// follower fell behind the leader's compaction horizon and
	// bootstraps fresh.
	Reset func(recs []journal.Record) error
	// Backoff is the base reconnect delay, jittered by Rand to a
	// uniform draw from [Backoff/2, Backoff*3/2); defaults to 500ms.
	Backoff time.Duration
	// Rand jitters reconnect backoff. Injected, never the global
	// source, so chaos runs replay deterministically; nil disables
	// jitter.
	Rand *rand.Rand
	// ReadTimeout bounds the silence on an established session before
	// the follower treats it as dead and reconnects; defaults to 5s.
	// Keep it a few heartbeat intervals wide.
	ReadTimeout time.Duration
	// PromoteAfter, when positive, is the total leader silence —
	// spanning reconnect attempts — after which the follower declares
	// the leader wedged and Run returns ErrPromoted. Zero disables
	// automatic promotion; Promote still works.
	PromoteAfter time.Duration
	// Logger receives session lifecycle events; nil discards them.
	Logger *slog.Logger
	// Metrics, when non-nil, records lag, applied records, reconnects,
	// and installed snapshot sizes.
	Metrics *Metrics
	// Tracer, when non-nil, records a replication.graft trace per
	// applied batch, with the local durable append (and its fsync) as
	// child spans. Graft traces are follower-originated roots.
	Tracer *tracing.Tracer
}

// Follower tails a leader's replication stream into a local journal
// and tracks how stale the local state is. It owns the transport and
// durability; the in-memory state is the caller's, mutated only
// through the Apply/Reset callbacks (already serialized — Run is a
// single loop).
type Follower struct {
	j   *journal.Journal
	cfg FollowerConfig
	log *slog.Logger

	mu         sync.Mutex
	appliedSeq uint64    // newest sequence durably applied locally
	leaderSeq  uint64    // newest sequence the leader has announced
	freshAt    time.Time // last instant appliedSeq covered leaderSeq
	lastHeard  time.Time // last frame from the leader (any type)

	promoteCh chan struct{}
	promoted  sync.Once
}

// NewFollower builds a follower over the local journal j. Run starts
// the tailing loop.
func NewFollower(j *journal.Journal, cfg FollowerConfig) (*Follower, error) {
	if cfg.Dial == nil || cfg.Apply == nil || cfg.Reset == nil {
		return nil, errors.New("replication: FollowerConfig needs Dial, Apply, and Reset")
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 500 * time.Millisecond
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 5 * time.Second
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Follower{j: j, cfg: cfg, log: log, promoteCh: make(chan struct{})}, nil
}

// Staleness reports how long the local state has possibly been behind
// the leader: zero-ish while caught up (it grows between heartbeats
// and snaps back), the time since the last confirmed catch-up while
// lagging or disconnected, and effectively infinite before the first
// sync. Serving code compares it against the -max-staleness bound.
func (f *Follower) Staleness() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.freshAt.IsZero() {
		return time.Duration(1<<63 - 1)
	}
	return time.Since(f.freshAt)
}

// AppliedSeq returns the newest sequence number durably applied to the
// local journal and in-memory state.
func (f *Follower) AppliedSeq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.appliedSeq
}

// Promote asks the running loop to step out of the stream; Run returns
// ErrPromoted. Safe to call at any time, from any goroutine, more than
// once.
func (f *Follower) Promote() {
	f.promoted.Do(func() { close(f.promoteCh) })
}

// markFresh records that the local state covered everything the leader
// had announced as of now.
func (f *Follower) markFresh() {
	f.mu.Lock()
	if f.appliedSeq >= f.leaderSeq {
		f.freshAt = time.Now()
		if m := f.cfg.Metrics; m != nil {
			m.Lag.Set(0)
		}
	} else if m := f.cfg.Metrics; m != nil && !f.freshAt.IsZero() {
		m.Lag.Set(time.Since(f.freshAt).Seconds())
	}
	f.mu.Unlock()
}

// Run tails the leader until ctx is canceled (returns ctx.Err()), the
// follower is promoted (returns ErrPromoted), or a local fault makes
// tailing impossible — a wedged journal or a failed Apply (returns
// that error). Transport faults are not fatal: Run reconnects with
// jittered backoff, resuming idempotently from the local journal's
// sequence horizon.
func (f *Follower) Run(ctx context.Context) error {
	f.mu.Lock()
	f.appliedSeq = f.j.LastSeq()
	f.lastHeard = time.Now()
	f.mu.Unlock()
	for {
		if err := f.checkPromotion(ctx); err != nil {
			return err
		}
		err := f.session(ctx)
		switch {
		case err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			if ctx.Err() != nil {
				return ctx.Err()
			}
		case errors.Is(err, ErrPromoted):
			return ErrPromoted
		case isFatal(err):
			return err
		}
		if m := f.cfg.Metrics; m != nil {
			m.Reconnects.Inc()
		}
		f.log.Warn("replication session lost; reconnecting", "error", err)
		if err := f.sleep(ctx, jittered(f.cfg.Rand, f.cfg.Backoff)); err != nil {
			return err
		}
	}
}

// checkPromotion enforces the leader-wedge watchdog and the operator
// signal between session attempts.
func (f *Follower) checkPromotion(ctx context.Context) error {
	select {
	case <-f.promoteCh:
		return ErrPromoted
	case <-ctx.Done():
		return ctx.Err()
	default:
	}
	if f.cfg.PromoteAfter <= 0 {
		return nil
	}
	f.mu.Lock()
	silence := time.Since(f.lastHeard)
	f.mu.Unlock()
	if silence > f.cfg.PromoteAfter {
		f.log.Warn("leader silent past promote-after; promoting",
			"silence", silence, "promote_after", f.cfg.PromoteAfter)
		return ErrPromoted
	}
	return nil
}

// isFatal classifies session errors: local durability or state-apply
// failures cannot be fixed by reconnecting.
func isFatal(err error) bool {
	return errors.Is(err, journal.ErrWedged) || errors.Is(err, journal.ErrClosed) ||
		errors.Is(err, errApply)
}

// errApply wraps Apply/Reset callback failures so Run can classify
// them as fatal.
var errApply = errors.New("replication: applying replicated state")

// session runs one connection to the leader: hello, bootstrap, then
// tail until a fault.
func (f *Follower) session(ctx context.Context) error {
	conn, err := f.cfg.Dial(ctx)
	if err != nil {
		return err
	}
	defer conn.Close()
	// Promotion and cancellation must cut through a blocked read.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-f.promoteCh:
			conn.Close()
		case <-done:
		}
	}()

	if err := writeFrame(conn, frameHello, encodeHello(f.j.LastSeq())); err != nil {
		return err
	}
	f.log.Info("replication session established", "leader", conn.RemoteAddr().String(), "after", f.j.LastSeq())
	for {
		select {
		case <-f.promoteCh:
			return ErrPromoted
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		if err := conn.SetReadDeadline(time.Now().Add(f.cfg.ReadTimeout)); err != nil {
			return err
		}
		typ, payload, err := readFrame(conn)
		if err != nil {
			return err
		}
		f.mu.Lock()
		f.lastHeard = time.Now()
		f.mu.Unlock()
		switch typ {
		case frameSnapshot:
			if err := f.installSnapshot(payload); err != nil {
				return err
			}
		case frameBatch:
			if err := f.applyBatch(conn, payload); err != nil {
				return err
			}
		case frameHeartbeat:
			seq, err := decodeSeq(payload)
			if err != nil {
				return err
			}
			f.mu.Lock()
			if seq > f.leaderSeq {
				f.leaderSeq = seq
			}
			f.mu.Unlock()
			f.markFresh()
			if err := writeFrame(conn, frameAck, encodeSeq(f.AppliedSeq())); err != nil {
				return err
			}
		default:
			return fmt.Errorf("replication: leader sent unexpected %c frame", typ)
		}
	}
}

// installSnapshot durably installs a bootstrap snapshot and rebuilds
// the in-memory state from it.
func (f *Follower) installSnapshot(payload []byte) error {
	horizon, data, err := decodeSnapshot(payload)
	if err != nil {
		return err
	}
	recs, lastSeq, err := f.j.InstallSnapshot(data)
	if err != nil {
		return err
	}
	if lastSeq != horizon {
		return fmt.Errorf("replication: snapshot declares horizon %d but renders %d", horizon, lastSeq)
	}
	if err := f.cfg.Reset(recs); err != nil {
		return fmt.Errorf("%w: reset: %w", errApply, err)
	}
	f.mu.Lock()
	f.appliedSeq = lastSeq
	if lastSeq > f.leaderSeq {
		f.leaderSeq = lastSeq
	}
	f.mu.Unlock()
	if m := f.cfg.Metrics; m != nil {
		m.SnapshotBytes.Set(float64(len(data)))
		m.Applied.Add(len(recs))
	}
	f.markFresh()
	f.log.Info("replication snapshot installed", "records", len(recs), "horizon", lastSeq)
	return nil
}

// applyBatch grafts one shipped batch: durable first, then in-memory,
// then ack. Duplicates are skipped idempotently; a sequence gap is
// repaired by reconnecting (the next hello triggers a bootstrap).
func (f *Follower) applyBatch(conn net.Conn, payload []byte) error {
	firstSeq, commitSeq, data, err := decodeBatch(payload)
	if err != nil {
		return err
	}
	ctx, sp := f.cfg.Tracer.StartRoot(context.Background(), "replication.graft", tracing.Traceparent{})
	defer sp.Release() // runs after the End below; the graft is synchronous
	defer sp.End()
	sp.SetInt("bytes", int64(len(data)))
	sp.SetInt("commit_seq", int64(commitSeq))
	recs, lastSeq, err := f.j.AppendReplicatedCtx(ctx, data)
	if err != nil {
		if errors.Is(err, journal.ErrOutOfSync) {
			err = fmt.Errorf("replication: batch [%d,%d] does not graft locally: %w", firstSeq, commitSeq, err)
		}
		sp.Fail(err)
		return err
	}
	if recs != nil {
		if err := f.cfg.Apply(recs); err != nil {
			err = fmt.Errorf("%w: %w", errApply, err)
			sp.Fail(err)
			return err
		}
		sp.SetInt("records", int64(len(recs)))
		if m := f.cfg.Metrics; m != nil {
			m.Applied.Add(len(recs))
		}
	}
	f.mu.Lock()
	f.appliedSeq = lastSeq
	if commitSeq > f.leaderSeq {
		f.leaderSeq = commitSeq
	}
	f.mu.Unlock()
	f.markFresh()
	return writeFrame(conn, frameAck, encodeSeq(lastSeq))
}

// sleep waits d or until cancellation/promotion.
func (f *Follower) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-f.promoteCh:
		return ErrPromoted
	}
}

// jittered spreads a backoff to a uniform draw from [d/2, d*3/2) so
// followers that lost the same leader do not reconnect in lockstep.
// The source is injected; nil means no jitter.
func jittered(rnd *rand.Rand, d time.Duration) time.Duration {
	if rnd == nil || d <= 0 {
		return d
	}
	return d/2 + time.Duration(rnd.Int63n(int64(d)))
}
