package replication

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"time"

	"contextpref/internal/journal"
	"contextpref/internal/tracing"
)

// ErrPromoted is returned by Follower.Run when the follower leaves the
// replication stream to take over as leader — either by operator
// signal (Promote) or because the leader went silent past
// PromoteAfter. The caller owns the actual role change: attach a
// persister, flip the health role, start serving writes.
var ErrPromoted = errors.New("replication: follower promoted")

// ErrHandshakeRefused is returned by Follower.Run when the leader
// answers the hello with a refusal frame — most commonly a shard-count
// mismatch between the two stores. Retrying cannot help: the topology
// is wrong, and grafting anyway would corrupt the store, so the
// refusal is fatal to the whole Run, not one segment.
var ErrHandshakeRefused = errors.New("replication: handshake refused by leader")

// FollowerConfig tunes a Follower. Dial, Apply, and Reset are
// required for an unsharded follower (NewFollower); a sharded follower
// (NewShardedFollower) requires ApplySegment, ResetSegment, and one of
// Dial/DialSegment. Everything else has serviceable defaults.
type FollowerConfig struct {
	// Dial opens a connection to the leader. Injectable so tests can
	// splice in flaky in-memory connections.
	Dial func(ctx context.Context) (net.Conn, error)
	// DialSegment, when non-nil, dials the leader for one segment's
	// stream, taking precedence over Dial. Production followers dial
	// the same address for every segment; tests use the segment to
	// fault one stream while leaving the others healthy.
	DialSegment func(ctx context.Context, segment int) (net.Conn, error)
	// Apply folds one replicated batch's records into the in-memory
	// state, after the batch is durable in the local journal. An error
	// is fatal to Run: disk and memory have diverged.
	Apply func(recs []journal.Record) error
	// Reset rebuilds the in-memory state from scratch with a
	// snapshot's records, discarding whatever was there — the
	// follower fell behind the leader's compaction horizon and
	// bootstraps fresh.
	Reset func(recs []journal.Record) error
	// ApplySegment and ResetSegment are the sharded variants of Apply
	// and Reset, scoped to one shard's records. When set they take
	// precedence; a sharded reset must clear only its own shard.
	ApplySegment func(segment int, recs []journal.Record) error
	ResetSegment func(segment int, recs []journal.Record) error
	// SegmentFault, when non-nil, is called once when one segment's
	// stream stops on a local fault (wedged segment journal, failed
	// apply) while other segments keep replicating — the hook that
	// degrades that shard's health. Unsharded followers never call it:
	// with one segment the fault is fatal to Run itself.
	SegmentFault func(segment int, err error)
	// Backoff is the base reconnect delay, jittered by Rand to a
	// uniform draw from [Backoff/2, Backoff*3/2); defaults to 500ms.
	// Each segment stream retries independently on its own backoff, so
	// one flapping stream never delays another.
	Backoff time.Duration
	// Rand jitters reconnect backoff. Injected, never the global
	// source, so chaos runs replay deterministically; nil disables
	// jitter. Sharded followers derive one independent source per
	// segment from it at Run start (rand.Rand is not goroutine-safe).
	Rand *rand.Rand
	// ReadTimeout bounds the silence on an established session before
	// the follower treats it as dead and reconnects; defaults to 5s.
	// Keep it a few heartbeat intervals wide.
	ReadTimeout time.Duration
	// PromoteAfter, when positive, is the total leader silence —
	// spanning reconnect attempts, measured across every segment
	// stream — after which the follower declares the leader wedged and
	// Run returns ErrPromoted. Only frames received from the leader
	// count as hearing from it: local apply progress, reconnect
	// attempts, and backoff sleeps on any segment never feed the
	// watchdog. Zero disables automatic promotion; Promote still
	// works.
	PromoteAfter time.Duration
	// Logger receives session lifecycle events; nil discards them.
	Logger *slog.Logger
	// Metrics, when non-nil, records lag, applied records, reconnects,
	// and installed snapshot sizes.
	Metrics *Metrics
	// SegmentMetrics, when non-nil, holds one instrument set per
	// segment (index-aligned) so a sharded follower's lag and graft
	// traffic are attributable per shard. Segments past its length
	// fall back to Metrics.
	SegmentMetrics []*Metrics
	// Tracer, when non-nil, records a replication.graft trace per
	// applied batch, with the local durable append (and its fsync) as
	// child spans. Graft traces are follower-originated roots.
	Tracer *tracing.Tracer
}

// metricsFor resolves the instrument set for one segment.
func (c *FollowerConfig) metricsFor(seg int) *Metrics {
	if seg < len(c.SegmentMetrics) && c.SegmentMetrics[seg] != nil {
		return c.SegmentMetrics[seg]
	}
	return c.Metrics
}

// segmentState is one segment stream's replication bookkeeping.
type segmentState struct {
	appliedSeq uint64    // newest sequence durably applied locally
	leaderSeq  uint64    // newest sequence the leader has announced
	freshAt    time.Time // last instant appliedSeq covered leaderSeq
	fault      error     // non-nil: the stream stopped on a local fault
}

// Follower tails a leader's replication stream into the local journal
// segments and tracks how stale each is. It owns the transport and
// durability; the in-memory state is the caller's, mutated only
// through the Apply/Reset callbacks (serialized per segment — each
// segment stream is a single loop, and segments never share state).
//
// A sharded follower runs one connection per segment. The segments are
// independent fault domains: a stalled, desynced, or faulted stream
// degrades only its own shard, retried on its own jittered backoff,
// while the promotion watchdog spans them all — the leader is silent
// only when no segment has heard from it.
type Follower struct {
	segs []*journal.Journal
	cfg  FollowerConfig
	log  *slog.Logger

	mu        sync.Mutex
	st        []segmentState
	lastHeard time.Time // last frame from the leader on any segment

	promoteCh chan struct{}
	promoted  sync.Once
}

// NewFollower builds a follower over the single (unsharded) local
// journal j. Run starts the tailing loop.
func NewFollower(j *journal.Journal, cfg FollowerConfig) (*Follower, error) {
	if cfg.Dial == nil || cfg.Apply == nil || cfg.Reset == nil {
		return nil, errors.New("replication: FollowerConfig needs Dial, Apply, and Reset")
	}
	return newFollower([]*journal.Journal{j}, cfg)
}

// NewShardedFollower builds a follower over one local journal segment
// per shard, index-aligned with the directory's shard numbering. The
// shard count must match the leader's; the handshake refuses a
// mismatch. Run starts one tailing loop per segment.
func NewShardedFollower(segs []*journal.Journal, cfg FollowerConfig) (*Follower, error) {
	if len(segs) == 0 {
		return nil, errors.New("replication: NewShardedFollower needs at least one segment")
	}
	if cfg.Dial == nil && cfg.DialSegment == nil {
		return nil, errors.New("replication: FollowerConfig needs Dial or DialSegment")
	}
	if cfg.ApplySegment == nil || cfg.ResetSegment == nil {
		return nil, errors.New("replication: sharded FollowerConfig needs ApplySegment and ResetSegment")
	}
	return newFollower(segs, cfg)
}

func newFollower(segs []*journal.Journal, cfg FollowerConfig) (*Follower, error) {
	if cfg.Backoff <= 0 {
		cfg.Backoff = 500 * time.Millisecond
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 5 * time.Second
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Follower{
		segs:      segs,
		cfg:       cfg,
		log:       log,
		st:        make([]segmentState, len(segs)),
		promoteCh: make(chan struct{}),
	}, nil
}

// Segments returns the number of journal segments the follower tails.
func (f *Follower) Segments() int { return len(f.segs) }

// Staleness reports how long the local state has possibly been behind
// the leader: zero-ish while caught up (it grows between heartbeats
// and snaps back), the time since the last confirmed catch-up while
// lagging or disconnected, and effectively infinite before the first
// sync. On a sharded follower it is the worst segment — the whole
// store is only as fresh as its most lagging shard. Serving code
// compares it against the -max-staleness bound.
func (f *Follower) Staleness() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	worst := time.Duration(0)
	for i := range f.st {
		if s := stalenessOf(f.st[i].freshAt); s > worst {
			worst = s
		}
	}
	return worst
}

// SegmentStaleness reports one segment's staleness, so serving code
// can gate reads per shard instead of failing the whole store over one
// lagging stream.
func (f *Follower) SegmentStaleness(seg int) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return stalenessOf(f.st[seg].freshAt)
}

func stalenessOf(freshAt time.Time) time.Duration {
	if freshAt.IsZero() {
		return time.Duration(1<<63 - 1)
	}
	return time.Since(freshAt)
}

// AppliedSeq returns the newest sequence number durably applied to the
// first segment — the whole store, for an unsharded follower.
func (f *Follower) AppliedSeq() uint64 { return f.AppliedSeqSegment(0) }

// AppliedSeqSegment returns the newest sequence number durably applied
// to one segment's journal and in-memory shard.
func (f *Follower) AppliedSeqSegment(seg int) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.st[seg].appliedSeq
}

// SegmentFaultErr returns the local fault that stopped one segment's
// stream, or nil while it is live (reconnecting streams are live: a
// transport fault is not a local fault).
func (f *Follower) SegmentFaultErr(seg int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.st[seg].fault
}

// Promote asks the running loop to step out of the stream; Run returns
// ErrPromoted. Safe to call at any time, from any goroutine, more than
// once.
func (f *Follower) Promote() {
	f.promoted.Do(func() { close(f.promoteCh) })
}

// markFresh records that segment seg's local state covered everything
// its leader stream had announced as of now. It never touches
// lastHeard: freshness is local bookkeeping, not evidence the leader
// is alive.
func (f *Follower) markFresh(seg int) {
	m := f.cfg.metricsFor(seg)
	f.mu.Lock()
	st := &f.st[seg]
	if st.appliedSeq >= st.leaderSeq {
		st.freshAt = time.Now()
		if m != nil {
			m.Lag.Set(0)
		}
	} else if m != nil && !st.freshAt.IsZero() {
		m.Lag.Set(time.Since(st.freshAt).Seconds())
	}
	f.mu.Unlock()
}

// heard records evidence of leader liveness: a frame arrived on some
// segment's stream. This is the only input to the promotion watchdog.
func (f *Follower) heard() {
	f.mu.Lock()
	f.lastHeard = time.Now()
	f.mu.Unlock()
}

// Run tails the leader until ctx is canceled (returns ctx.Err()), the
// follower is promoted (returns ErrPromoted), the leader refuses the
// handshake (returns ErrHandshakeRefused — the topologies disagree),
// or local faults make tailing impossible (returns the fault). Each
// segment tails on its own connection and reconnects from transport
// faults with its own jittered backoff, resuming idempotently from its
// local journal's sequence horizon; a local fault on one segment of a
// sharded follower stops only that stream (reported through
// SegmentFault) and Run keeps tailing the rest until every segment has
// faulted.
func (f *Follower) Run(ctx context.Context) error {
	f.mu.Lock()
	for i, j := range f.segs {
		f.st[i].appliedSeq = j.LastSeq()
	}
	f.lastHeard = time.Now()
	f.mu.Unlock()

	ctx, cancel := context.WithCancel(ctx)
	// LIFO: cancel the segment loops first, then wait them out, so the
	// Apply/Reset callbacks are quiescent by the time Run returns and
	// the caller changes roles.
	var wg sync.WaitGroup
	defer wg.Wait()
	defer cancel()

	// One reconnecting loop per segment, each with its own derived
	// jitter source (the shared one is not goroutine-safe).
	fatalCh := make(chan error, len(f.segs))
	for i := range f.segs {
		var rnd *rand.Rand
		if f.cfg.Rand != nil {
			rnd = rand.New(rand.NewSource(f.cfg.Rand.Int63()))
		}
		wg.Add(1)
		go func(seg int, rnd *rand.Rand) {
			defer wg.Done()
			f.runSegment(ctx, seg, rnd, fatalCh)
		}(i, rnd)
	}

	// The promotion watchdog spans every segment: the leader is silent
	// only if no stream has heard a frame. Progress on one segment —
	// applies, reconnect attempts, backoff — must never defer a
	// promotion the others' silence has earned, and silence on one
	// segment must never trigger a promotion while another still hears
	// heartbeats.
	var tickCh <-chan time.Time
	if f.cfg.PromoteAfter > 0 {
		interval := f.cfg.PromoteAfter / 4
		if interval < time.Millisecond {
			interval = time.Millisecond
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		tickCh = ticker.C
	}
	faulted := 0
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-f.promoteCh:
			return ErrPromoted
		case err := <-fatalCh:
			if len(f.segs) == 1 || errors.Is(err, ErrHandshakeRefused) {
				return err
			}
			if faulted++; faulted == len(f.segs) {
				return fmt.Errorf("replication: every segment stream stopped on a local fault; last: %w", err)
			}
		case <-tickCh:
			f.mu.Lock()
			silence := time.Since(f.lastHeard)
			f.mu.Unlock()
			if silence > f.cfg.PromoteAfter {
				f.log.Warn("leader silent past promote-after; promoting",
					"silence", silence, "promote_after", f.cfg.PromoteAfter)
				return ErrPromoted
			}
		}
	}
}

// runSegment reconnects one segment's stream until cancellation,
// promotion, or a local fault.
func (f *Follower) runSegment(ctx context.Context, seg int, rnd *rand.Rand, fatalCh chan<- error) {
	for {
		err := f.session(ctx, seg)
		switch {
		case err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			if ctx.Err() != nil {
				return
			}
		case errors.Is(err, ErrPromoted):
			return
		case errors.Is(err, ErrHandshakeRefused):
			fatalCh <- err
			return
		case isFatal(err):
			// A local fault: this segment's journal or in-memory shard
			// cannot take the stream. Stop this stream only; the other
			// segments are separate fault domains.
			f.mu.Lock()
			f.st[seg].fault = err
			f.mu.Unlock()
			if cb := f.cfg.SegmentFault; cb != nil && len(f.segs) > 1 {
				cb(seg, err)
			}
			fatalCh <- fmt.Errorf("segment %d: %w", seg, err)
			return
		}
		if m := f.cfg.metricsFor(seg); m != nil {
			m.Reconnects.Inc()
		}
		f.log.Warn("replication session lost; reconnecting", "segment", seg, "error", err)
		if err := f.sleep(ctx, jittered(rnd, f.cfg.Backoff)); err != nil {
			return
		}
	}
}

// isFatal classifies session errors: local durability or state-apply
// failures cannot be fixed by reconnecting.
func isFatal(err error) bool {
	return errors.Is(err, journal.ErrWedged) || errors.Is(err, journal.ErrClosed) ||
		errors.Is(err, errApply)
}

// errApply wraps Apply/Reset callback failures so Run can classify
// them as fatal.
var errApply = errors.New("replication: applying replicated state")

// dial opens the connection for one segment's stream.
func (f *Follower) dial(ctx context.Context, seg int) (net.Conn, error) {
	if f.cfg.DialSegment != nil {
		return f.cfg.DialSegment(ctx, seg)
	}
	return f.cfg.Dial(ctx)
}

// apply folds one segment's replicated records into the in-memory
// state.
func (f *Follower) apply(seg int, recs []journal.Record) error {
	if f.cfg.ApplySegment != nil {
		return f.cfg.ApplySegment(seg, recs)
	}
	return f.cfg.Apply(recs)
}

// reset rebuilds one segment's in-memory state from snapshot records.
func (f *Follower) reset(seg int, recs []journal.Record) error {
	if f.cfg.ResetSegment != nil {
		return f.cfg.ResetSegment(seg, recs)
	}
	return f.cfg.Reset(recs)
}

// session runs one connection of one segment's stream to the leader:
// hello, bootstrap, then tail until a fault.
func (f *Follower) session(ctx context.Context, seg int) error {
	conn, err := f.dial(ctx, seg)
	if err != nil {
		return err
	}
	defer conn.Close()
	// Promotion and cancellation must cut through a blocked read.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
		case <-f.promoteCh:
			conn.Close()
		case <-done:
		}
	}()

	jrn := f.segs[seg]
	v2 := len(f.segs) > 1
	var helloPayload []byte
	if v2 {
		helloPayload = encodeHelloV2(uint32(len(f.segs)), uint32(seg), jrn.LastSeq())
	} else {
		helloPayload = encodeHello(jrn.LastSeq())
	}
	if err := writeFrame(conn, frameHello, helloPayload); err != nil {
		return err
	}
	f.log.Info("replication session established",
		"leader", conn.RemoteAddr().String(), "segment", seg, "after", jrn.LastSeq())
	for {
		select {
		case <-f.promoteCh:
			return ErrPromoted
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		if err := conn.SetReadDeadline(time.Now().Add(f.cfg.ReadTimeout)); err != nil {
			return err
		}
		typ, payload, err := readFrame(conn)
		if err != nil {
			return err
		}
		f.heard()
		if typ == frameRefuse {
			return fmt.Errorf("%w: %s", ErrHandshakeRefused, decodeRefusal(payload))
		}
		if v2 {
			frameSeg, body, err := splitSegment(payload)
			if err != nil {
				return err
			}
			if int(frameSeg) != seg {
				return fmt.Errorf("replication: %c frame for segment %d on segment %d's stream", typ, frameSeg, seg)
			}
			payload = body
		}
		switch typ {
		case frameSnapshot:
			if err := f.installSnapshot(seg, payload); err != nil {
				return err
			}
		case frameBatch:
			if err := f.applyBatch(conn, seg, v2, payload); err != nil {
				return err
			}
		case frameHeartbeat:
			seq, err := decodeSeq(payload)
			if err != nil {
				return err
			}
			f.mu.Lock()
			if seq > f.st[seg].leaderSeq {
				f.st[seg].leaderSeq = seq
			}
			f.mu.Unlock()
			f.markFresh(seg)
			if err := f.writeAck(conn, seg, v2, f.AppliedSeqSegment(seg)); err != nil {
				return err
			}
		default:
			return fmt.Errorf("replication: leader sent unexpected %c frame", typ)
		}
	}
}

// writeAck sends the segment's durably-applied watermark back to the
// leader, segment-tagged on v2 sessions.
func (f *Follower) writeAck(conn net.Conn, seg int, v2 bool, seq uint64) error {
	payload := encodeSeq(seq)
	if v2 {
		payload = prependSegment(uint32(seg), payload)
	}
	return writeFrame(conn, frameAck, payload)
}

// installSnapshot durably installs one segment's bootstrap snapshot
// and rebuilds that shard's in-memory state from it.
func (f *Follower) installSnapshot(seg int, payload []byte) error {
	horizon, data, err := decodeSnapshot(payload)
	if err != nil {
		return err
	}
	recs, lastSeq, err := f.segs[seg].InstallSnapshot(data)
	if err != nil {
		return err
	}
	if lastSeq != horizon {
		return fmt.Errorf("replication: snapshot declares horizon %d but renders %d", horizon, lastSeq)
	}
	if err := f.reset(seg, recs); err != nil {
		return fmt.Errorf("%w: reset: %w", errApply, err)
	}
	f.mu.Lock()
	f.st[seg].appliedSeq = lastSeq
	if lastSeq > f.st[seg].leaderSeq {
		f.st[seg].leaderSeq = lastSeq
	}
	f.mu.Unlock()
	if m := f.cfg.metricsFor(seg); m != nil {
		m.SnapshotBytes.Set(float64(len(data)))
		m.Applied.Add(len(recs))
	}
	f.markFresh(seg)
	f.log.Info("replication snapshot installed", "segment", seg, "records", len(recs), "horizon", lastSeq)
	return nil
}

// applyBatch grafts one shipped batch: durable first, then in-memory,
// then ack. Duplicates are skipped idempotently; a sequence gap is
// repaired by reconnecting (the next hello triggers a bootstrap).
func (f *Follower) applyBatch(conn net.Conn, seg int, v2 bool, payload []byte) error {
	firstSeq, commitSeq, data, err := decodeBatch(payload)
	if err != nil {
		return err
	}
	ctx, sp := f.cfg.Tracer.StartRoot(context.Background(), "replication.graft", tracing.Traceparent{})
	defer sp.Release() // runs after the End below; the graft is synchronous
	defer sp.End()
	sp.SetInt("segment", int64(seg))
	sp.SetInt("bytes", int64(len(data)))
	sp.SetInt("commit_seq", int64(commitSeq))
	recs, lastSeq, err := f.segs[seg].AppendReplicatedCtx(ctx, data)
	if err != nil {
		if errors.Is(err, journal.ErrOutOfSync) {
			err = fmt.Errorf("replication: batch [%d,%d] does not graft locally: %w", firstSeq, commitSeq, err)
		}
		sp.Fail(err)
		return err
	}
	if recs != nil {
		if err := f.apply(seg, recs); err != nil {
			err = fmt.Errorf("%w: %w", errApply, err)
			sp.Fail(err)
			return err
		}
		sp.SetInt("records", int64(len(recs)))
		if m := f.cfg.metricsFor(seg); m != nil {
			m.Applied.Add(len(recs))
		}
	}
	f.mu.Lock()
	f.st[seg].appliedSeq = lastSeq
	if commitSeq > f.st[seg].leaderSeq {
		f.st[seg].leaderSeq = commitSeq
	}
	f.mu.Unlock()
	f.markFresh(seg)
	return f.writeAck(conn, seg, v2, lastSeq)
}

// sleep waits d or until cancellation/promotion.
func (f *Follower) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-f.promoteCh:
		return ErrPromoted
	}
}

// jittered spreads a backoff to a uniform draw from [d/2, d*3/2) so
// followers that lost the same leader do not reconnect in lockstep.
// The source is injected; nil means no jitter.
func jittered(rnd *rand.Rand, d time.Duration) time.Duration {
	if rnd == nil || d <= 0 {
		return d
	}
	return d/2 + time.Duration(rnd.Int63n(int64(d)))
}
