package replication

// Coverage for protocol revision 2: per-segment streams over a sharded
// store. Golden bytes pin both hello encodings and the refusal frame so
// the wire format cannot drift; interop tests pin the v1↔v2 matrix
// (and that topology mismatches are refused at handshake, not grafted);
// fault-domain tests show one segment's stall or local fault degrading
// only its own shard; and the watchdog tests pin the promotion
// contract — fire on total leader silence even while segment loops are
// locally busy, never fire while any segment still hears frames.

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"contextpref/internal/faultfs"
	"contextpref/internal/journal"
)

// shardRecs builds n records for a per-segment user so batches are
// distinguishable across segments.
func shardRecs(seg, n int, tag string) []journal.Record {
	recs := make([]journal.Record, n)
	for i := range recs {
		recs[i] = journal.Record{
			Op:   journal.OpAdd,
			User: fmt.Sprintf("seg%d", seg),
			Line: fmt.Sprintf("%s-%d-%d", tag, seg, i),
		}
	}
	return recs
}

type shardedPair struct {
	leaderJs   []*journal.Journal
	followerJs []*journal.Journal
	leader     *Leader
	follower   *Follower
	states     []*replicaState
	resets     []atomic.Int64
	ln         *memListener
	runErr     chan error
	cancel     context.CancelFunc

	mu          sync.Mutex
	applyFaults map[int]error
}

// setApplyFault makes every subsequent apply on segment seg fail with
// err — a local (non-transport) fault on that shard only.
func (p *shardedPair) setApplyFault(seg int, err error) {
	p.mu.Lock()
	p.applyFaults[seg] = err
	p.mu.Unlock()
}

func (p *shardedPair) applyFault(seg int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.applyFaults[seg]
}

// startShardedPair wires an n-segment leader and a running sharded
// follower over one in-memory listener (sessions self-identify their
// segment in the hello, exactly like production sharing one address).
func startShardedPair(t *testing.T, n int, fcfg FollowerConfig) *shardedPair {
	t.Helper()
	p := &shardedPair{
		states:      make([]*replicaState, n),
		resets:      make([]atomic.Int64, n),
		applyFaults: make(map[int]error),
	}
	for i := 0; i < n; i++ {
		lj, _, err := journal.OpenFS(faultfs.NewMemFS(), "leader")
		if err != nil {
			t.Fatal(err)
		}
		fj, _, err := journal.OpenFS(faultfs.NewMemFS(), "follower")
		if err != nil {
			t.Fatal(err)
		}
		p.leaderJs = append(p.leaderJs, lj)
		p.followerJs = append(p.followerJs, fj)
		p.states[i] = &replicaState{}
	}
	p.ln = newMemListener()
	p.leader = NewShardedLeader(p.leaderJs, LeaderConfig{Heartbeat: 10 * time.Millisecond})
	go p.leader.Serve(p.ln)

	if fcfg.Dial == nil && fcfg.DialSegment == nil {
		fcfg.Dial = p.ln.dial
	}
	fcfg.ApplySegment = func(seg int, recs []journal.Record) error {
		if err := p.applyFault(seg); err != nil {
			return err
		}
		return p.states[seg].apply(recs)
	}
	fcfg.ResetSegment = func(seg int, recs []journal.Record) error {
		p.resets[seg].Add(1)
		return p.states[seg].reset(recs)
	}
	if fcfg.Backoff == 0 {
		fcfg.Backoff = time.Millisecond
	}
	if fcfg.ReadTimeout == 0 {
		fcfg.ReadTimeout = 200 * time.Millisecond
	}
	if fcfg.Rand == nil {
		fcfg.Rand = rand.New(rand.NewSource(43))
	}
	var err error
	p.follower, err = NewShardedFollower(p.followerJs, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	p.cancel = cancel
	p.runErr = make(chan error, 1)
	go func() { p.runErr <- p.follower.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-p.runErr:
		case <-time.After(5 * time.Second):
			t.Error("sharded follower.Run did not return after cancel")
		}
		p.leader.Close()
		for i := range p.leaderJs {
			p.leaderJs[i].Close()
			p.followerJs[i].Close()
		}
	})
	return p
}

// settleSegment waits until one segment's follower state and the
// leader's ack watermark both cover the segment's journal.
func (p *shardedPair) settleSegment(t *testing.T, seg int) {
	t.Helper()
	want := p.leaderJs[seg].LastSeq()
	waitFor(t, 5*time.Second, fmt.Sprintf("segment %d to reach seq %d", seg, want), func() bool {
		return p.follower.AppliedSeqSegment(seg) == want
	})
	waitFor(t, 5*time.Second, fmt.Sprintf("segment %d ack", seg), func() bool {
		return p.leader.AckedSegment(seg) == want
	})
}

func (p *shardedPair) settleAll(t *testing.T) {
	t.Helper()
	for i := range p.leaderJs {
		p.settleSegment(t, i)
	}
}

func TestShardedSteadyStatePerSegmentStreams(t *testing.T) {
	const n = 4
	p := startShardedPair(t, n, FollowerConfig{})
	want := make([][]journal.Record, n)
	for round := 0; round < 3; round++ {
		for seg := 0; seg < n; seg++ {
			recs := shardRecs(seg, 2, fmt.Sprintf("r%d", round))
			if err := p.leaderJs[seg].Append(recs...); err != nil {
				t.Fatal(err)
			}
			want[seg] = append(want[seg], recs...)
		}
	}
	p.settleAll(t)
	for seg := 0; seg < n; seg++ {
		got := p.states[seg].snapshot()
		if len(got) != len(want[seg]) {
			t.Fatalf("segment %d has %d records, want %d", seg, len(got), len(want[seg]))
		}
		for i := range got {
			if got[i] != want[seg][i] {
				t.Fatalf("segment %d record %d: %+v, want %+v", seg, i, got[i], want[seg][i])
			}
			// No cross-segment leakage: every record names its own shard.
			if got[i].User != fmt.Sprintf("seg%d", seg) {
				t.Fatalf("segment %d grafted record for %q", seg, got[i].User)
			}
		}
	}
	// Every segment's staleness collapses under the heartbeat cadence.
	for seg := 0; seg < n; seg++ {
		seg := seg
		waitFor(t, time.Second, fmt.Sprintf("segment %d staleness", seg), func() bool {
			return p.follower.SegmentStaleness(seg) < 150*time.Millisecond
		})
	}
	if p.follower.Segments() != n || p.leader.Segments() != n {
		t.Fatalf("segment counts: follower %d, leader %d, want %d",
			p.follower.Segments(), p.leader.Segments(), n)
	}
}

func TestShardedSnapshotBootstrapPerSegment(t *testing.T) {
	// Segment 0's history is compacted beyond a cold follower's horizon,
	// segment 1's is not: only segment 0 bootstraps by snapshot.
	ljs := make([]*journal.Journal, 2)
	for i := range ljs {
		j, _, err := journal.OpenFS(faultfs.NewMemFS(), "leader")
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		ljs[i] = j
	}
	pre := shardRecs(0, 5, "pre")
	if err := ljs[0].Append(pre...); err != nil {
		t.Fatal(err)
	}
	if err := ljs[0].Snapshot(pre); err != nil {
		t.Fatal(err)
	}
	if err := ljs[0].Append(shardRecs(0, 2, "post")...); err != nil {
		t.Fatal(err)
	}
	if err := ljs[1].Append(shardRecs(1, 3, "plain")...); err != nil {
		t.Fatal(err)
	}

	ln := newMemListener()
	leader := NewShardedLeader(ljs, LeaderConfig{Heartbeat: 10 * time.Millisecond})
	go leader.Serve(ln)
	defer leader.Close()

	fjs := make([]*journal.Journal, 2)
	states := [2]*replicaState{{}, {}}
	var resets [2]atomic.Int64
	for i := range fjs {
		j, _, err := journal.OpenFS(faultfs.NewMemFS(), "follower")
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		fjs[i] = j
	}
	f, err := NewShardedFollower(fjs, FollowerConfig{
		Dial: ln.dial,
		ApplySegment: func(seg int, recs []journal.Record) error {
			return states[seg].apply(recs)
		},
		ResetSegment: func(seg int, recs []journal.Record) error {
			resets[seg].Add(1)
			return states[seg].reset(recs)
		},
		Backoff:     time.Millisecond,
		ReadTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()
	defer func() { cancel(); <-done }()

	for seg := 0; seg < 2; seg++ {
		seg := seg
		waitFor(t, 5*time.Second, fmt.Sprintf("segment %d bootstrap", seg), func() bool {
			return f.AppliedSeqSegment(seg) == ljs[seg].LastSeq()
		})
	}
	if got := resets[0].Load(); got != 1 {
		t.Fatalf("segment 0 reset %d times, want 1 (snapshot bootstrap)", got)
	}
	if got := resets[1].Load(); got != 0 {
		t.Fatalf("segment 1 reset %d times, want 0 (incremental tail)", got)
	}
	if got := len(states[0].snapshot()); got != 7 {
		t.Fatalf("segment 0 bootstrapped %d records, want 7", got)
	}
	if got := len(states[1].snapshot()); got != 3 {
		t.Fatalf("segment 1 tailed %d records, want 3", got)
	}
}

func TestSegmentFaultDegradesOnlyThatShard(t *testing.T) {
	// A local apply fault on segment 1 stops that stream only: the hook
	// fires for segment 1, the other segments keep replicating, and Run
	// keeps going until every segment has faulted.
	var faultMu sync.Mutex
	faults := make(map[int]error)
	p := startShardedPair(t, 3, FollowerConfig{
		SegmentFault: func(seg int, err error) {
			faultMu.Lock()
			faults[seg] = err
			faultMu.Unlock()
		},
	})
	p.setApplyFault(1, errors.New("shard 1 state rejects the graft"))
	for seg := 0; seg < 3; seg++ {
		if err := p.leaderJs[seg].Append(shardRecs(seg, 2, "a")...); err != nil {
			t.Fatal(err)
		}
	}
	p.settleSegment(t, 0)
	p.settleSegment(t, 2)
	waitFor(t, 5*time.Second, "segment 1 fault to be reported", func() bool {
		return p.follower.SegmentFaultErr(1) != nil
	})
	faultMu.Lock()
	_, hooked := faults[1]
	others := len(faults)
	faultMu.Unlock()
	if !hooked || others != 1 {
		t.Fatalf("SegmentFault fired for %v, want exactly segment 1", faults)
	}
	if err := p.follower.SegmentFaultErr(0); err != nil {
		t.Fatalf("segment 0 faulted: %v", err)
	}
	select {
	case err := <-p.runErr:
		t.Fatalf("Run returned %v with two segments still healthy", err)
	default:
	}
	// The healthy shards still make progress after the fault.
	if err := p.leaderJs[0].Append(shardRecs(0, 1, "b")...); err != nil {
		t.Fatal(err)
	}
	p.settleSegment(t, 0)

	// Fault the remaining segments: Run now returns the aggregate.
	p.setApplyFault(0, errors.New("shard 0 down"))
	p.setApplyFault(2, errors.New("shard 2 down"))
	for _, seg := range []int{0, 2} {
		if err := p.leaderJs[seg].Append(shardRecs(seg, 1, "c")...); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-p.runErr:
		if err == nil || !strings.Contains(err.Error(), "every segment stream stopped") {
			t.Fatalf("Run returned %v, want the all-segments-faulted aggregate", err)
		}
		p.runErr <- nil // keep Cleanup's drain happy
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after every segment faulted")
	}
}

func TestSegmentCutDegradesOnlyThatShard(t *testing.T) {
	// One segment's transport is cut (live conn killed, redials refused)
	// while the others keep hearing heartbeats: no promotion fires, the
	// cut shard's staleness grows past the bound while the healthy
	// shard's stays collapsed, and healing the transport lets the cut
	// shard resync idempotently.
	const promoteAfter = 80 * time.Millisecond
	var cut atomic.Bool
	var connMu sync.Mutex
	var seg1Conns []net.Conn
	ln := newMemListener()
	p := startShardedPair(t, 2, FollowerConfig{
		DialSegment: func(ctx context.Context, seg int) (net.Conn, error) {
			if seg == 1 && cut.Load() {
				return nil, errors.New("injected: segment 1 transport refused")
			}
			c, err := ln.dial(ctx)
			if err != nil {
				return nil, err
			}
			if seg == 1 {
				connMu.Lock()
				seg1Conns = append(seg1Conns, c)
				connMu.Unlock()
			}
			return c, nil
		},
		ReadTimeout:  30 * time.Millisecond,
		PromoteAfter: promoteAfter,
	})
	// The pair helper built its own listener the follower never dials;
	// serve the real one too.
	go p.leader.Serve(ln)
	defer ln.Close()

	for seg := 0; seg < 2; seg++ {
		if err := p.leaderJs[seg].Append(shardRecs(seg, 2, "pre")...); err != nil {
			t.Fatal(err)
		}
	}
	p.settleAll(t)

	// Cut segment 1: kill its live conns and refuse redials.
	cut.Store(true)
	connMu.Lock()
	for _, c := range seg1Conns {
		c.Close()
	}
	connMu.Unlock()

	// Segment 0 keeps flowing while 1 is dark.
	var want0 int
	deadline := time.Now().Add(8 * promoteAfter)
	for time.Now().Before(deadline) {
		if err := p.leaderJs[0].Append(shardRecs(0, 1, "during")...); err != nil {
			t.Fatal(err)
		}
		want0++
		time.Sleep(promoteAfter / 8)
	}
	select {
	case err := <-p.runErr:
		t.Fatalf("Run returned %v while segment 0 still heard the leader", err)
	default:
	}
	p.settleSegment(t, 0)
	if got := len(p.states[0].snapshot()); got != 2+want0 {
		t.Fatalf("healthy segment applied %d records during the cut, want %d", got, 2+want0)
	}
	if s := p.follower.SegmentStaleness(1); s < promoteAfter {
		t.Fatalf("cut segment staleness = %v, want at least %v", s, promoteAfter)
	}
	if s := p.follower.SegmentStaleness(0); s > promoteAfter {
		t.Fatalf("healthy segment staleness = %v, want under %v", s, promoteAfter)
	}
	if err := p.follower.SegmentFaultErr(1); err != nil {
		t.Fatalf("transport cut reported as local fault: %v", err)
	}

	// Heal the transport: segment 1 resyncs exactly once-applied.
	if err := p.leaderJs[1].Append(shardRecs(1, 2, "post")...); err != nil {
		t.Fatal(err)
	}
	cut.Store(false)
	p.settleAll(t)
	got := p.states[1].snapshot()
	if len(got) != 4 {
		t.Fatalf("healed segment 1 has %d records, want 4 (duplicates or losses)", len(got))
	}
}

func TestWatchdogPromotesOnTotalSilenceDespiteSegmentActivity(t *testing.T) {
	// Regression: the watchdog must count only frames heard from the
	// leader. After the leader dies, every segment loop stays locally
	// busy — dial attempts, backoff, reconnect churn — and none of that
	// activity may defer the promotion.
	p := startShardedPair(t, 4, FollowerConfig{
		ReadTimeout:  30 * time.Millisecond,
		PromoteAfter: 100 * time.Millisecond,
	})
	if err := p.leaderJs[2].Append(shardRecs(2, 1, "w")...); err != nil {
		t.Fatal(err)
	}
	p.settleSegment(t, 2)
	applied := p.follower.AppliedSeqSegment(2)
	p.leader.Close() // every stream goes dark; redials fail fast
	select {
	case err := <-p.runErr:
		if !errors.Is(err, ErrPromoted) {
			t.Fatalf("Run returned %v, want ErrPromoted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sharded follower did not self-promote on total leader silence")
	}
	if got := p.follower.AppliedSeqSegment(2); got != applied {
		t.Fatalf("promotion changed segment 2 applied seq %d -> %d", applied, got)
	}
	p.runErr <- nil
}

func TestShardCountMismatchRefusedAtHandshake(t *testing.T) {
	// A 4-segment leader.
	ljs := make([]*journal.Journal, 4)
	for i := range ljs {
		j, _, err := journal.OpenFS(faultfs.NewMemFS(), "leader")
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		ljs[i] = j
	}
	ln := newMemListener()
	leader := NewShardedLeader(ljs, LeaderConfig{Heartbeat: 10 * time.Millisecond})
	go leader.Serve(ln)
	defer leader.Close()

	runFollower := func(t *testing.T, build func() (*Follower, func())) error {
		t.Helper()
		f, cleanup := build()
		defer cleanup()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		done := make(chan error, 1)
		go func() { done <- f.Run(ctx) }()
		select {
		case err := <-done:
			return err
		case <-time.After(5 * time.Second):
			cancel()
			<-done
			t.Fatal("refused follower kept running")
			return nil
		}
	}

	t.Run("v2 wrong shard count", func(t *testing.T) {
		err := runFollower(t, func() (*Follower, func()) {
			fjs := make([]*journal.Journal, 2)
			var closers []func()
			for i := range fjs {
				j, _, err := journal.OpenFS(faultfs.NewMemFS(), "follower")
				if err != nil {
					t.Fatal(err)
				}
				closers = append(closers, func() { j.Close() })
				fjs[i] = j
			}
			state := &replicaState{}
			f, err := NewShardedFollower(fjs, FollowerConfig{
				Dial:         ln.dial,
				ApplySegment: func(_ int, recs []journal.Record) error { return state.apply(recs) },
				ResetSegment: func(_ int, recs []journal.Record) error { return state.reset(recs) },
				Backoff:      time.Millisecond,
				ReadTimeout:  200 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			return f, func() {
				for _, c := range closers {
					c()
				}
			}
		})
		if !errors.Is(err, ErrHandshakeRefused) {
			t.Fatalf("Run returned %v, want ErrHandshakeRefused", err)
		}
		if !strings.Contains(err.Error(), "shard count mismatch") {
			t.Fatalf("refusal reason not carried to the follower: %v", err)
		}
	})

	t.Run("v1 against sharded leader", func(t *testing.T) {
		err := runFollower(t, func() (*Follower, func()) {
			fj, _, err := journal.OpenFS(faultfs.NewMemFS(), "follower")
			if err != nil {
				t.Fatal(err)
			}
			state := &replicaState{}
			f, err := NewFollower(fj, FollowerConfig{
				Dial:        ln.dial,
				Apply:       state.apply,
				Reset:       state.reset,
				Backoff:     time.Millisecond,
				ReadTimeout: 200 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			return f, func() { fj.Close() }
		})
		if !errors.Is(err, ErrHandshakeRefused) {
			t.Fatalf("Run returned %v, want ErrHandshakeRefused", err)
		}
		if !strings.Contains(err.Error(), "cprepl/1") {
			t.Fatalf("refusal reason not carried to the follower: %v", err)
		}
	})
}

func TestHandshakeGoldenBytes(t *testing.T) {
	// The hello payloads are pinned byte-for-byte: a drift here is a
	// wire-protocol break against every deployed peer.
	if got := hex.EncodeToString(encodeHello(42)); got != "63707265706c2f31000000000000002a" {
		t.Fatalf("v1 hello bytes drifted: %s", got)
	}
	if got := hex.EncodeToString(encodeHelloV2(4, 2, 42)); got != "63707265706c2f320000000400000002000000000000002a" {
		t.Fatalf("v2 hello bytes drifted: %s", got)
	}
	// Both decode through the any-revision decoder.
	h, err := decodeHelloAny(encodeHello(42))
	if err != nil || h.v2 || h.shards != 1 || h.segment != 0 || h.lastSeq != 42 {
		t.Fatalf("v1 hello decoded as %+v, %v", h, err)
	}
	h, err = decodeHelloAny(encodeHelloV2(4, 2, 42))
	if err != nil || !h.v2 || h.shards != 4 || h.segment != 2 || h.lastSeq != 42 {
		t.Fatalf("v2 hello decoded as %+v, %v", h, err)
	}
	// Internal consistency is enforced at decode.
	if _, err := decodeHelloAny(encodeHelloV2(0, 0, 1)); err == nil {
		t.Fatal("zero-shard hello decoded")
	}
	if _, err := decodeHelloAny(encodeHelloV2(4, 4, 1)); err == nil {
		t.Fatal("out-of-range segment hello decoded")
	}
	if _, err := decodeHelloAny([]byte("cprepl/3--------")); err == nil {
		t.Fatal("unknown magic decoded")
	}
	// Segment tagging round-trips and rejects truncation.
	tagged := prependSegment(3, encodeSeq(9))
	if got := hex.EncodeToString(tagged); got != "000000030000000000000009" {
		t.Fatalf("segment-tagged payload drifted: %s", got)
	}
	seg, body, err := splitSegment(tagged)
	if err != nil || seg != 3 {
		t.Fatalf("splitSegment: %d, %v", seg, err)
	}
	if s, err := decodeSeq(body); err != nil || s != 9 {
		t.Fatalf("tagged seq: %d, %v", s, err)
	}
	if _, _, err := splitSegment([]byte{0, 0}); err == nil {
		t.Fatal("truncated segment tag split")
	}
	// The refusal frame carries a bounded UTF-8 reason.
	if got := decodeRefusal([]byte("shard count mismatch")); got != "shard count mismatch" {
		t.Fatalf("refusal reason = %q", got)
	}
	if got := decodeRefusal([]byte(strings.Repeat("x", 4096))); len(got) != 512 {
		t.Fatalf("refusal reason not bounded: %d bytes", len(got))
	}
}
