// Package replication ships committed journal batches from a leader to
// read-only followers over a length-prefixed TCP protocol, giving the
// read-heavy resolution workload horizontally scalable replicas with an
// explicit staleness contract.
//
// # Wire format
//
// Every frame is a 1-byte type, a 4-byte big-endian payload length, and
// the payload. Payload integers are big-endian u64. The frame types:
//
//	'H' hello      follower → leader   8-byte magic "cprepl/1" + lastSeq
//	'S' snapshot   leader → follower   lastSeq + snapshot file rendering
//	'B' batch      leader → follower   firstSeq + commitSeq + batch bytes
//	'P' heartbeat  leader → follower   leader lastSeq
//	'A' ack        follower → leader   follower applied seq
//	'E' refuse     leader → follower   UTF-8 reason; the leader closes
//
// # Protocol revision 2: sharded stores
//
// A sharded store (PR 8) keeps one journal segment per shard, and each
// segment replicates on its own connection — its own logical stream —
// so a stall or fault on one segment never blocks another. A v2
// session opens with the "cprepl/2" magic and a hello that names the
// follower's shard count, the segment this connection carries, and the
// follower's lastSeq *for that segment*. Every subsequent payload on a
// v2 session is prefixed with the 4-byte segment ID, so a misrouted
// frame is detected rather than grafted into the wrong shard.
//
// The leader refuses a topology it cannot serve with an 'E' frame
// before closing: a shard-count mismatch (grafting segment k of an
// N-shard stream into an M-shard store would corrupt it), or a
// cprepl/1 hello against a sharded leader. Unsharded stores keep
// speaking cprepl/1 byte-for-byte, so v1 peers interoperate with them
// unchanged.
//
// Batch and snapshot payloads reuse the journal's on-disk encoding
// byte-for-byte — CRC-framed record lines plus the batch commit marker
// — so the transport inherits the disk format's torn-tail and
// corruption detection, and a follower's journal is directly
// comparable to its leader's. The frame length is bounded by MaxFrame;
// a decoder reads through io.LimitReader, so a lying length can make it
// error, never over-allocate.
//
// # Session
//
// A follower dials the leader, sends hello with the newest sequence
// number its local journal holds, and the leader responds with either
// an incremental stream of batches after that point or — when the
// follower is behind the leader's snapshot horizon, or its hello does
// not align with a batch boundary — a snapshot frame to install first,
// followed by the journal tail. Thereafter the leader pushes every
// committed batch as it happens and a heartbeat each interval;
// the follower acks the newest sequence it has durably applied.
// Recovery from any transport fault is by reconnecting: the new hello
// names what the follower already has, duplicate batches are skipped
// idempotently by sequence number, and a gap forces a fresh bootstrap.
package replication

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frame types. The values are printable so captures read naturally.
const (
	frameHello     = 'H'
	frameSnapshot  = 'S'
	frameBatch     = 'B'
	frameHeartbeat = 'P'
	frameAck       = 'A'
	frameRefuse    = 'E'
)

// helloMagic opens every session; a mismatch means the peer is not
// speaking this protocol (or version) and the connection is refused.
// helloMagic2 opens a per-segment session against a sharded store.
const (
	helloMagic  = "cprepl/1"
	helloMagic2 = "cprepl/2"
)

// MaxFrame bounds a frame payload. Snapshot frames carry a full store
// rendering, so the bound is generous; everything else is tiny.
const MaxFrame = 256 << 20

// frameHeaderLen is the fixed frame prefix: type byte + u32 length.
const frameHeaderLen = 5

// writeFrame sends one frame. The payload may be nil.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("replication: %c frame payload %d bytes exceeds MaxFrame", typ, len(payload))
	}
	hdr := make([]byte, frameHeaderLen, frameHeaderLen+len(payload))
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	// One Write call per frame keeps frames intact under concurrent
	// writers guarded by the caller's mutex.
	if _, err := w.Write(append(hdr, payload...)); err != nil {
		return fmt.Errorf("replication: writing %c frame: %w", typ, err)
	}
	return nil
}

// readFrame reads one frame. A declared length beyond MaxFrame is
// refused before any payload allocation; a truncated payload surfaces
// as io.ErrUnexpectedEOF. The payload is read through a LimitReader so
// a length that lies about the stream cannot force an oversized
// allocation.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("replication: truncated frame header: %w", err)
		}
		return 0, nil, err
	}
	typ = hdr[0]
	switch typ {
	case frameHello, frameSnapshot, frameBatch, frameHeartbeat, frameAck, frameRefuse:
	default:
		return 0, nil, fmt.Errorf("replication: unknown frame type 0x%02x", typ)
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("replication: %c frame declares %d bytes, limit %d", typ, n, MaxFrame)
	}
	payload, err = io.ReadAll(io.LimitReader(r, int64(n)))
	if err != nil {
		return 0, nil, fmt.Errorf("replication: reading %c frame payload: %w", typ, err)
	}
	if uint32(len(payload)) != n {
		return 0, nil, fmt.Errorf("replication: %c frame truncated: %d of %d bytes: %w",
			typ, len(payload), n, io.ErrUnexpectedEOF)
	}
	return typ, payload, nil
}

// encodeHello builds the hello payload: magic + follower lastSeq.
func encodeHello(lastSeq uint64) []byte {
	p := make([]byte, len(helloMagic)+8)
	copy(p, helloMagic)
	binary.BigEndian.PutUint64(p[len(helloMagic):], lastSeq)
	return p
}

// decodeHello validates the magic and extracts the follower's lastSeq.
func decodeHello(p []byte) (lastSeq uint64, err error) {
	if len(p) != len(helloMagic)+8 {
		return 0, fmt.Errorf("replication: hello payload is %d bytes, want %d", len(p), len(helloMagic)+8)
	}
	if string(p[:len(helloMagic)]) != helloMagic {
		return 0, fmt.Errorf("replication: hello magic %q, want %q", p[:len(helloMagic)], helloMagic)
	}
	return binary.BigEndian.Uint64(p[len(helloMagic):]), nil
}

// hello is a decoded hello of either protocol revision. A v1 hello
// reads as the degenerate sharding: one shard, segment zero.
type hello struct {
	v2      bool
	shards  uint32
	segment uint32
	lastSeq uint64
}

// encodeHelloV2 builds the cprepl/2 hello payload: magic + follower
// shard count + the segment this connection carries + the follower's
// lastSeq for that segment.
func encodeHelloV2(shards, segment uint32, lastSeq uint64) []byte {
	p := make([]byte, len(helloMagic2)+16)
	copy(p, helloMagic2)
	binary.BigEndian.PutUint32(p[len(helloMagic2):], shards)
	binary.BigEndian.PutUint32(p[len(helloMagic2)+4:], segment)
	binary.BigEndian.PutUint64(p[len(helloMagic2)+8:], lastSeq)
	return p
}

// decodeHelloAny accepts a hello of either revision, distinguished by
// the magic, and validates its internal consistency (a v2 segment must
// fall inside its own shard count). Topology compatibility with the
// local store is the leader's call, not the codec's.
func decodeHelloAny(p []byte) (hello, error) {
	if len(p) == len(helloMagic)+8 && string(p[:len(helloMagic)]) == helloMagic {
		return hello{shards: 1, lastSeq: binary.BigEndian.Uint64(p[len(helloMagic):])}, nil
	}
	if len(p) == len(helloMagic2)+16 && string(p[:len(helloMagic2)]) == helloMagic2 {
		h := hello{
			v2:      true,
			shards:  binary.BigEndian.Uint32(p[len(helloMagic2):]),
			segment: binary.BigEndian.Uint32(p[len(helloMagic2)+4:]),
			lastSeq: binary.BigEndian.Uint64(p[len(helloMagic2)+8:]),
		}
		if h.shards == 0 {
			return hello{}, fmt.Errorf("replication: hello declares zero shards")
		}
		if h.segment >= h.shards {
			return hello{}, fmt.Errorf("replication: hello names segment %d of %d shards", h.segment, h.shards)
		}
		return h, nil
	}
	return hello{}, fmt.Errorf("replication: unrecognized hello payload (%d bytes; magic %q or %q)",
		len(p), helloMagic, helloMagic2)
}

// prependSegment tags a v2 payload with the 4-byte segment ID that
// routes it. Every non-hello frame of a v2 session carries one.
func prependSegment(segment uint32, payload []byte) []byte {
	p := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(p, segment)
	copy(p[4:], payload)
	return p
}

// splitSegment strips the v2 segment tag back off.
func splitSegment(p []byte) (segment uint32, payload []byte, err error) {
	if len(p) < 4 {
		return 0, nil, fmt.Errorf("replication: v2 payload is %d bytes, want segment tag plus body", len(p))
	}
	return binary.BigEndian.Uint32(p), p[4:], nil
}

// decodeRefusal extracts the human-readable reason from an 'E' frame.
// The reason is bounded so a hostile peer cannot stuff a log line.
func decodeRefusal(p []byte) string {
	const maxReason = 512
	if len(p) > maxReason {
		p = p[:maxReason]
	}
	return string(p)
}

// encodeBatch builds the batch payload: firstSeq + commitSeq + bytes.
func encodeBatch(firstSeq, commitSeq uint64, data []byte) []byte {
	p := make([]byte, 16+len(data))
	binary.BigEndian.PutUint64(p, firstSeq)
	binary.BigEndian.PutUint64(p[8:], commitSeq)
	copy(p[16:], data)
	return p
}

// decodeBatch splits the batch payload. The sequence header must be
// internally consistent — a batch spans at least one record plus its
// commit marker — but the record bytes themselves are validated by the
// journal's strict batch parser at apply time.
func decodeBatch(p []byte) (firstSeq, commitSeq uint64, data []byte, err error) {
	if len(p) < 17 {
		return 0, 0, nil, fmt.Errorf("replication: batch payload is %d bytes, want header plus records", len(p))
	}
	firstSeq = binary.BigEndian.Uint64(p)
	commitSeq = binary.BigEndian.Uint64(p[8:])
	if commitSeq <= firstSeq {
		return 0, 0, nil, fmt.Errorf("replication: batch header spans [%d,%d]", firstSeq, commitSeq)
	}
	return firstSeq, commitSeq, p[16:], nil
}

// encodeSnapshot builds the snapshot payload: lastSeq + rendering.
func encodeSnapshot(lastSeq uint64, data []byte) []byte {
	p := make([]byte, 8+len(data))
	binary.BigEndian.PutUint64(p, lastSeq)
	copy(p[8:], data)
	return p
}

// decodeSnapshot splits the snapshot payload.
func decodeSnapshot(p []byte) (lastSeq uint64, data []byte, err error) {
	if len(p) < 9 {
		return 0, nil, fmt.Errorf("replication: snapshot payload is %d bytes, want header plus rendering", len(p))
	}
	return binary.BigEndian.Uint64(p), p[8:], nil
}

// encodeSeq builds the 8-byte payload shared by heartbeat and ack.
func encodeSeq(seq uint64) []byte {
	p := make([]byte, 8)
	binary.BigEndian.PutUint64(p, seq)
	return p
}

// decodeSeq extracts the heartbeat/ack sequence number.
func decodeSeq(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("replication: sequence payload is %d bytes, want 8", len(p))
	}
	return binary.BigEndian.Uint64(p), nil
}
