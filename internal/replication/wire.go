// Package replication ships committed journal batches from a leader to
// read-only followers over a length-prefixed TCP protocol, giving the
// read-heavy resolution workload horizontally scalable replicas with an
// explicit staleness contract.
//
// # Wire format
//
// Every frame is a 1-byte type, a 4-byte big-endian payload length, and
// the payload. Payload integers are big-endian u64. The frame types:
//
//	'H' hello      follower → leader   8-byte magic "cprepl/1" + lastSeq
//	'S' snapshot   leader → follower   lastSeq + snapshot file rendering
//	'B' batch      leader → follower   firstSeq + commitSeq + batch bytes
//	'P' heartbeat  leader → follower   leader lastSeq
//	'A' ack        follower → leader   follower applied seq
//
// Batch and snapshot payloads reuse the journal's on-disk encoding
// byte-for-byte — CRC-framed record lines plus the batch commit marker
// — so the transport inherits the disk format's torn-tail and
// corruption detection, and a follower's journal is directly
// comparable to its leader's. The frame length is bounded by MaxFrame;
// a decoder reads through io.LimitReader, so a lying length can make it
// error, never over-allocate.
//
// # Session
//
// A follower dials the leader, sends hello with the newest sequence
// number its local journal holds, and the leader responds with either
// an incremental stream of batches after that point or — when the
// follower is behind the leader's snapshot horizon, or its hello does
// not align with a batch boundary — a snapshot frame to install first,
// followed by the journal tail. Thereafter the leader pushes every
// committed batch as it happens and a heartbeat each interval;
// the follower acks the newest sequence it has durably applied.
// Recovery from any transport fault is by reconnecting: the new hello
// names what the follower already has, duplicate batches are skipped
// idempotently by sequence number, and a gap forces a fresh bootstrap.
package replication

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frame types. The values are printable so captures read naturally.
const (
	frameHello     = 'H'
	frameSnapshot  = 'S'
	frameBatch     = 'B'
	frameHeartbeat = 'P'
	frameAck       = 'A'
)

// helloMagic opens every session; a mismatch means the peer is not
// speaking this protocol (or version) and the connection is refused.
const helloMagic = "cprepl/1"

// MaxFrame bounds a frame payload. Snapshot frames carry a full store
// rendering, so the bound is generous; everything else is tiny.
const MaxFrame = 256 << 20

// frameHeaderLen is the fixed frame prefix: type byte + u32 length.
const frameHeaderLen = 5

// writeFrame sends one frame. The payload may be nil.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("replication: %c frame payload %d bytes exceeds MaxFrame", typ, len(payload))
	}
	hdr := make([]byte, frameHeaderLen, frameHeaderLen+len(payload))
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	// One Write call per frame keeps frames intact under concurrent
	// writers guarded by the caller's mutex.
	if _, err := w.Write(append(hdr, payload...)); err != nil {
		return fmt.Errorf("replication: writing %c frame: %w", typ, err)
	}
	return nil
}

// readFrame reads one frame. A declared length beyond MaxFrame is
// refused before any payload allocation; a truncated payload surfaces
// as io.ErrUnexpectedEOF. The payload is read through a LimitReader so
// a length that lies about the stream cannot force an oversized
// allocation.
func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, nil, fmt.Errorf("replication: truncated frame header: %w", err)
		}
		return 0, nil, err
	}
	typ = hdr[0]
	switch typ {
	case frameHello, frameSnapshot, frameBatch, frameHeartbeat, frameAck:
	default:
		return 0, nil, fmt.Errorf("replication: unknown frame type 0x%02x", typ)
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("replication: %c frame declares %d bytes, limit %d", typ, n, MaxFrame)
	}
	payload, err = io.ReadAll(io.LimitReader(r, int64(n)))
	if err != nil {
		return 0, nil, fmt.Errorf("replication: reading %c frame payload: %w", typ, err)
	}
	if uint32(len(payload)) != n {
		return 0, nil, fmt.Errorf("replication: %c frame truncated: %d of %d bytes: %w",
			typ, len(payload), n, io.ErrUnexpectedEOF)
	}
	return typ, payload, nil
}

// encodeHello builds the hello payload: magic + follower lastSeq.
func encodeHello(lastSeq uint64) []byte {
	p := make([]byte, len(helloMagic)+8)
	copy(p, helloMagic)
	binary.BigEndian.PutUint64(p[len(helloMagic):], lastSeq)
	return p
}

// decodeHello validates the magic and extracts the follower's lastSeq.
func decodeHello(p []byte) (lastSeq uint64, err error) {
	if len(p) != len(helloMagic)+8 {
		return 0, fmt.Errorf("replication: hello payload is %d bytes, want %d", len(p), len(helloMagic)+8)
	}
	if string(p[:len(helloMagic)]) != helloMagic {
		return 0, fmt.Errorf("replication: hello magic %q, want %q", p[:len(helloMagic)], helloMagic)
	}
	return binary.BigEndian.Uint64(p[len(helloMagic):]), nil
}

// encodeBatch builds the batch payload: firstSeq + commitSeq + bytes.
func encodeBatch(firstSeq, commitSeq uint64, data []byte) []byte {
	p := make([]byte, 16+len(data))
	binary.BigEndian.PutUint64(p, firstSeq)
	binary.BigEndian.PutUint64(p[8:], commitSeq)
	copy(p[16:], data)
	return p
}

// decodeBatch splits the batch payload. The sequence header must be
// internally consistent — a batch spans at least one record plus its
// commit marker — but the record bytes themselves are validated by the
// journal's strict batch parser at apply time.
func decodeBatch(p []byte) (firstSeq, commitSeq uint64, data []byte, err error) {
	if len(p) < 17 {
		return 0, 0, nil, fmt.Errorf("replication: batch payload is %d bytes, want header plus records", len(p))
	}
	firstSeq = binary.BigEndian.Uint64(p)
	commitSeq = binary.BigEndian.Uint64(p[8:])
	if commitSeq <= firstSeq {
		return 0, 0, nil, fmt.Errorf("replication: batch header spans [%d,%d]", firstSeq, commitSeq)
	}
	return firstSeq, commitSeq, p[16:], nil
}

// encodeSnapshot builds the snapshot payload: lastSeq + rendering.
func encodeSnapshot(lastSeq uint64, data []byte) []byte {
	p := make([]byte, 8+len(data))
	binary.BigEndian.PutUint64(p, lastSeq)
	copy(p[8:], data)
	return p
}

// decodeSnapshot splits the snapshot payload.
func decodeSnapshot(p []byte) (lastSeq uint64, data []byte, err error) {
	if len(p) < 9 {
		return 0, nil, fmt.Errorf("replication: snapshot payload is %d bytes, want header plus rendering", len(p))
	}
	return binary.BigEndian.Uint64(p), p[8:], nil
}

// encodeSeq builds the 8-byte payload shared by heartbeat and ack.
func encodeSeq(seq uint64) []byte {
	p := make([]byte, 8)
	binary.BigEndian.PutUint64(p, seq)
	return p
}

// decodeSeq extracts the heartbeat/ack sequence number.
func decodeSeq(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("replication: sequence payload is %d bytes, want 8", len(p))
	}
	return binary.BigEndian.Uint64(p), nil
}
