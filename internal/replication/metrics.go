package replication

import "contextpref/internal/telemetry"

// Metrics are the replication instruments (cp_replication_*); see
// contextpref.NewReplicationMetrics for the registration site. All
// fields are nil-safe, so a nil *Metrics (or any nil field) disables
// telemetry without conditional wiring.
type Metrics struct {
	// Lag reports the follower's current staleness in seconds: how
	// long since it last confirmed it held everything the leader had
	// announced (cp_replication_lag_seconds gauge).
	Lag *telemetry.Gauge
	// Shipped counts records the leader handed to follower sessions
	// (cp_replication_records_total{direction="shipped"}).
	Shipped *telemetry.Counter
	// Applied counts records the follower durably applied
	// (cp_replication_records_total{direction="applied"}).
	Applied *telemetry.Counter
	// Reconnects counts follower session re-establishments after a
	// transport fault (cp_replication_reconnects_total).
	Reconnects *telemetry.Counter
	// SnapshotBytes reports the size of the last snapshot shipped or
	// installed for bootstrap (cp_replication_snapshot_bytes gauge).
	SnapshotBytes *telemetry.Gauge
}
