package relation

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadCSV(t *testing.T) {
	schema := poiSchema(t)
	csvText := `pid,name,type,location,open_air,admission_cost
1,Acropolis,monument,Acropolis_Area,true,20
2,"Benaki, the Museum",museum,Plaka,false,12.5
3,Plaka Brewery,brewery,Plaka,false,0
`
	rel, err := ReadCSV(schema, strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("Len = %d", rel.Len())
	}
	name, _ := rel.Value(1, "name")
	if name.Str() != "Benaki, the Museum" {
		t.Errorf("quoted field = %q", name.Str())
	}
	cost, _ := rel.Value(1, "admission_cost")
	if cost.Float() != 12.5 {
		t.Errorf("float field = %v", cost.Float())
	}
	open, _ := rel.Value(0, "open_air")
	if !open.Bool() {
		t.Error("bool field wrong")
	}
	pid, _ := rel.Value(2, "pid")
	if pid.Int() != 3 {
		t.Errorf("int field = %v", pid.Int())
	}
}

func TestReadCSVErrors(t *testing.T) {
	schema := poiSchema(t)
	cases := []struct {
		name string
		text string
	}{
		{"empty", ""},
		{"short header", "pid,name\n"},
		{"wrong column name", "pid,name,type,location,open_air,cost\n"},
		{"bad int", "pid,name,type,location,open_air,admission_cost\nx,a,b,c,true,1\n"},
		{"bad bool", "pid,name,type,location,open_air,admission_cost\n1,a,b,c,maybe,1\n"},
		{"bad float", "pid,name,type,location,open_air,admission_cost\n1,a,b,c,true,x\n"},
		{"ragged row", "pid,name,type,location,open_air,admission_cost\n1,a,b\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(schema, strings.NewReader(c.text)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestWriteReadCSVRoundTrip(t *testing.T) {
	rel := poiRelation(t)
	var b strings.Builder
	if err := WriteCSV(rel, &b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(rel.Schema(), strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("ReadCSV(WriteCSV): %v\n%s", err, b.String())
	}
	if back.Len() != rel.Len() {
		t.Fatalf("round-trip Len = %d, want %d", back.Len(), rel.Len())
	}
	for i := 0; i < rel.Len(); i++ {
		a, bt := rel.Tuple(i), back.Tuple(i)
		for c := range a {
			if !a[c].Equal(bt[c]) {
				t.Fatalf("tuple %d col %d: %v vs %v", i, c, a[c], bt[c])
			}
		}
	}
}

// Property: WriteCSV/ReadCSV round-trips random relations, including
// strings with commas, quotes and newlines.
func TestQuickCSVRoundTrip(t *testing.T) {
	schema, err := NewSchema("t",
		Column{"s", KindString},
		Column{"i", KindInt},
		Column{"f", KindFloat},
		Column{"b", KindBool},
	)
	if err != nil {
		t.Fatal(err)
	}
	chars := []string{"a", "b", ",", `"`, "\n", " ", "é"}
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		rel := New(schema)
		for n := rnd.Intn(25); n > 0; n-- {
			var sb strings.Builder
			for l := rnd.Intn(8); l > 0; l-- {
				sb.WriteString(chars[rnd.Intn(len(chars))])
			}
			_, err := rel.Insert(
				S(sb.String()),
				I(int64(rnd.Intn(1000)-500)),
				F(float64(rnd.Intn(1000))/8),
				B(rnd.Intn(2) == 0),
			)
			if err != nil {
				return false
			}
		}
		var buf strings.Builder
		if err := WriteCSV(rel, &buf); err != nil {
			return false
		}
		back, err := ReadCSV(schema, strings.NewReader(buf.String()))
		if err != nil || back.Len() != rel.Len() {
			return false
		}
		for i := 0; i < rel.Len(); i++ {
			a, b := rel.Tuple(i), back.Tuple(i)
			for c := range a {
				if !a[c].Equal(b[c]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
