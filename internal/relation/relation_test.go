package relation

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func poiSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("points_of_interest",
		Column{"pid", KindInt},
		Column{"name", KindString},
		Column{"type", KindString},
		Column{"location", KindString},
		Column{"open_air", KindBool},
		Column{"admission_cost", KindFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func poiRelation(t *testing.T) *Relation {
	t.Helper()
	r := New(poiSchema(t))
	rows := []Tuple{
		{I(1), S("Acropolis"), S("monument"), S("Acropolis_Area"), B(true), F(20)},
		{I(2), S("Benaki Museum"), S("museum"), S("Plaka"), B(false), F(12)},
		{I(3), S("Plaka Brewery"), S("brewery"), S("Plaka"), B(false), F(0)},
		{I(4), S("National Garden"), S("park"), S("Plaka"), B(true), F(0)},
		{I(5), S("Ioannina Castle"), S("monument"), S("Kastro"), B(true), F(5)},
	}
	for _, row := range rows {
		if _, err := r.Insert(row...); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{S("x"), KindString, "x"},
		{I(-7), KindInt, "-7"},
		{F(2.5), KindFloat, "2.5"},
		{B(true), KindBool, "true"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("Kind of %v = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("String of %v = %q, want %q", c.v, c.v.String(), c.str)
		}
	}
	if S("a").Str() != "a" || I(3).Int() != 3 || F(1.5).Float() != 1.5 || !B(true).Bool() {
		t.Error("payload accessors broken")
	}
	if !S("a").Equal(S("a")) || S("a").Equal(S("b")) || S("1").Equal(I(1)) {
		t.Error("Equal broken")
	}
	for k, want := range map[Kind]string{KindString: "string", KindInt: "int", KindFloat: "float", KindBool: "bool"} {
		if k.String() != want {
			t.Errorf("Kind.String = %q, want %q", k.String(), want)
		}
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Error("unknown Kind.String should embed code")
	}
}

func TestValueCompare(t *testing.T) {
	lt := [][2]Value{
		{S("a"), S("b")},
		{I(1), I(2)},
		{F(1.5), F(2.5)},
		{B(false), B(true)},
	}
	for _, p := range lt {
		c, err := p[0].Compare(p[1])
		if err != nil || c != -1 {
			t.Errorf("Compare(%v, %v) = %d, %v; want -1", p[0], p[1], c, err)
		}
		c, _ = p[1].Compare(p[0])
		if c != 1 {
			t.Errorf("Compare(%v, %v) = %d; want 1", p[1], p[0], c)
		}
		c, _ = p[0].Compare(p[0])
		if c != 0 {
			t.Errorf("Compare(%v, %v) = %d; want 0", p[0], p[0], c)
		}
	}
	if _, err := S("a").Compare(I(1)); err == nil {
		t.Error("cross-kind compare should fail")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		k    Kind
		text string
		want Value
	}{
		{KindString, "hello", S("hello")},
		{KindInt, "42", I(42)},
		{KindFloat, "2.5", F(2.5)},
		{KindBool, "true", B(true)},
	}
	for _, c := range cases {
		got, err := Parse(c.k, c.text)
		if err != nil || !got.Equal(c.want) {
			t.Errorf("Parse(%v, %q) = %v, %v; want %v", c.k, c.text, got, err, c.want)
		}
	}
	for _, bad := range []struct {
		k    Kind
		text string
	}{{KindInt, "x"}, {KindFloat, "x"}, {KindBool, "x"}, {Kind(9), "x"}} {
		if _, err := Parse(bad.k, bad.text); err == nil {
			t.Errorf("Parse(%v, %q) should fail", bad.k, bad.text)
		}
	}
}

func TestCmpOps(t *testing.T) {
	cases := []struct {
		op   CmpOp
		a, b Value
		want bool
	}{
		{OpEq, I(1), I(1), true},
		{OpEq, I(1), I(2), false},
		{OpNe, I(1), I(2), true},
		{OpLt, I(1), I(2), true},
		{OpLe, I(2), I(2), true},
		{OpGt, S("b"), S("a"), true},
		{OpGe, F(2), F(2), true},
		{OpGe, F(1), F(2), false},
	}
	for _, c := range cases {
		got, err := c.op.Eval(c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("%v.Eval(%v, %v) = %v, %v; want %v", c.op, c.a, c.b, got, err, c.want)
		}
	}
	if _, err := OpEq.Eval(I(1), S("1")); err == nil {
		t.Error("cross-kind Eval should fail")
	}
	for s, want := range map[string]CmpOp{"=": OpEq, "==": OpEq, "!=": OpNe, "<>": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe} {
		got, err := ParseCmpOp(s)
		if err != nil || got != want {
			t.Errorf("ParseCmpOp(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseCmpOp("~"); err == nil {
		t.Error("ParseCmpOp(~) should fail")
	}
	for op, want := range map[CmpOp]string{OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">="} {
		if op.String() != want {
			t.Errorf("%d.String = %q, want %q", int(op), op.String(), want)
		}
	}
}

func TestSchema(t *testing.T) {
	s := poiSchema(t)
	if s.Name() != "points_of_interest" || s.NumCols() != 6 {
		t.Errorf("schema basics wrong: %s %d", s.Name(), s.NumCols())
	}
	if i, ok := s.ColIndex("type"); !ok || i != 2 {
		t.Errorf("ColIndex(type) = %d, %v", i, ok)
	}
	if _, ok := s.ColIndex("bogus"); ok {
		t.Error("ColIndex(bogus) should be absent")
	}
	if s.Col(1).Name != "name" {
		t.Errorf("Col(1) = %v", s.Col(1))
	}
	cols := s.Columns()
	cols[0].Name = "mutated"
	if s.Col(0).Name == "mutated" {
		t.Error("Columns() exposed internal state")
	}
	if !strings.Contains(s.String(), "pid int") {
		t.Errorf("String() = %q", s.String())
	}
	// Errors.
	if _, err := NewSchema(""); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewSchema("r"); err == nil {
		t.Error("no columns should fail")
	}
	if _, err := NewSchema("r", Column{"", KindInt}); err == nil {
		t.Error("empty column name should fail")
	}
	if _, err := NewSchema("r", Column{"a", KindInt}, Column{"a", KindInt}); err == nil {
		t.Error("duplicate columns should fail")
	}
}

func TestRelationInsertAndAccess(t *testing.T) {
	r := poiRelation(t)
	if r.Len() != 5 {
		t.Fatalf("Len = %d, want 5", r.Len())
	}
	if r.Schema().Name() != "points_of_interest" {
		t.Error("Schema() round-trip failed")
	}
	v, err := r.Value(0, "name")
	if err != nil || v.Str() != "Acropolis" {
		t.Errorf("Value(0, name) = %v, %v", v, err)
	}
	if _, err := r.Value(0, "bogus"); err == nil {
		t.Error("Value of unknown column should fail")
	}
	if _, err := r.Insert(I(9)); err == nil {
		t.Error("short insert should fail")
	}
	if _, err := r.Insert(S("x"), S("y"), S("z"), S("w"), B(true), F(1)); err == nil {
		t.Error("kind mismatch should fail")
	}
	idx, err := r.Insert(I(6), S("Zoo"), S("zoo"), S("Kifisia"), B(true), F(8))
	if err != nil || idx != 5 {
		t.Errorf("Insert = %d, %v", idx, err)
	}
	if got := r.Tuple(5)[1].Str(); got != "Zoo" {
		t.Errorf("Tuple(5).name = %q", got)
	}
}

func TestSelect(t *testing.T) {
	r := poiRelation(t)
	idxs, err := r.Select(Predicate{"type", OpEq, S("monument")})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 4}; !reflect.DeepEqual(idxs, want) {
		t.Errorf("Select(type=monument) = %v, want %v", idxs, want)
	}
	// Conjunction.
	idxs, err = r.Select(
		Predicate{"location", OpEq, S("Plaka")},
		Predicate{"admission_cost", OpEq, F(0)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{2, 3}; !reflect.DeepEqual(idxs, want) {
		t.Errorf("Select(Plaka ∧ free) = %v, want %v", idxs, want)
	}
	// Non-equality θ.
	idxs, _ = r.Select(Predicate{"admission_cost", OpGt, F(4)})
	if want := []int{0, 1, 4}; !reflect.DeepEqual(idxs, want) {
		t.Errorf("Select(cost>4) = %v, want %v", idxs, want)
	}
	// No predicates selects everything.
	idxs, _ = r.Select()
	if len(idxs) != r.Len() {
		t.Errorf("Select() = %d rows, want %d", len(idxs), r.Len())
	}
	// Unknown column errors.
	if _, err := r.Select(Predicate{"bogus", OpEq, S("x")}); err == nil {
		t.Error("unknown column should fail")
	}
	// Kind mismatch errors.
	if _, err := r.Select(Predicate{"pid", OpEq, S("1")}); err == nil {
		t.Error("kind mismatch should fail")
	}
	if got := (Predicate{"type", OpEq, S("zoo")}).String(); got != "type = zoo" {
		t.Errorf("Predicate.String = %q", got)
	}
}

func TestCombiners(t *testing.T) {
	scores := []float64{0.2, 0.8, 0.5}
	if got := CombineMax.Combine(scores); got != 0.8 {
		t.Errorf("max = %v", got)
	}
	if got := CombineMin.Combine(scores); got != 0.2 {
		t.Errorf("min = %v", got)
	}
	if got := CombineAvg.Combine(scores); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("avg = %v", got)
	}
	if got := CombineMax.Combine(nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	for c, want := range map[Combiner]string{CombineMax: "max", CombineMin: "min", CombineAvg: "avg"} {
		if c.String() != want {
			t.Errorf("Combiner.String = %q, want %q", c.String(), want)
		}
	}
	if !strings.Contains(Combiner(9).String(), "9") {
		t.Error("unknown Combiner.String should embed code")
	}
}

func TestResultSetRanking(t *testing.T) {
	r := poiRelation(t)
	rs := NewResultSet(r)
	rs.Add(0, 0.8)
	rs.Add(2, 0.9)
	rs.Add(2, 0.3) // duplicate match with a second score
	rs.Add(4, 0.8)
	if rs.Len() != 3 {
		t.Fatalf("Len = %d, want 3", rs.Len())
	}
	ranked := rs.Ranked(CombineMax)
	// 2 (0.9), then 0 and 4 tied at 0.8 ordered by index.
	if ranked[0].Index != 2 || ranked[1].Index != 0 || ranked[2].Index != 4 {
		t.Errorf("Ranked order = %v", ranked)
	}
	if ranked[0].Score != 0.9 || ranked[1].Score != 0.8 {
		t.Errorf("Ranked scores = %v", ranked)
	}
	if ranked[0].Tuple[1].Str() != "Plaka Brewery" {
		t.Errorf("Ranked tuple = %v", ranked[0].Tuple)
	}
	// Min combiner demotes the duplicate-matched tuple.
	ranked = rs.Ranked(CombineMin)
	if ranked[len(ranked)-1].Index != 2 || ranked[len(ranked)-1].Score != 0.3 {
		t.Errorf("min-ranked = %v", ranked)
	}
}

func TestResultSetTopWithTies(t *testing.T) {
	r := poiRelation(t)
	rs := NewResultSet(r)
	rs.Add(0, 0.9)
	rs.Add(1, 0.8)
	rs.Add(2, 0.8)
	rs.Add(3, 0.8)
	rs.Add(4, 0.1)
	top := rs.Top(2, CombineMax)
	// k=2 but indexes 1,2,3 all tie at 0.8 → 4 results.
	if len(top) != 4 {
		t.Fatalf("Top(2) = %d results, want 4 (ties included)", len(top))
	}
	if top[len(top)-1].Score != 0.8 {
		t.Errorf("last of Top = %v", top[len(top)-1])
	}
	if got := rs.Top(0, CombineMax); len(got) != 5 {
		t.Errorf("Top(0) = %d, want all 5", len(got))
	}
	if got := rs.Top(10, CombineMax); len(got) != 5 {
		t.Errorf("Top(10) = %d, want all 5", len(got))
	}
}

// Property: Ranked is totally ordered by (score desc, index asc) and
// contains exactly the added indexes.
func TestQuickRankedOrdering(t *testing.T) {
	r := poiRelation(t)
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		rs := NewResultSet(r)
		added := map[int]bool{}
		for n := rnd.Intn(20); n > 0; n-- {
			idx := rnd.Intn(r.Len())
			rs.Add(idx, float64(rnd.Intn(10))/10)
			added[idx] = true
		}
		ranked := rs.Ranked(CombineMax)
		if len(ranked) != len(added) {
			return false
		}
		for i := 1; i < len(ranked); i++ {
			a, b := ranked[i-1], ranked[i]
			if a.Score < b.Score {
				return false
			}
			if a.Score == b.Score && a.Index >= b.Index {
				return false
			}
		}
		for _, st := range ranked {
			if !added[st.Index] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: combiners bound — min ≤ avg ≤ max.
func TestQuickCombinerBounds(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		scores := make([]float64, len(raw))
		for i, v := range raw {
			scores[i] = math.Abs(math.Mod(v, 1))
			if math.IsNaN(scores[i]) {
				scores[i] = 0
			}
		}
		mn := CombineMin.Combine(scores)
		av := CombineAvg.Combine(scores)
		mx := CombineMax.Combine(scores)
		return mn <= av+1e-9 && av <= mx+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
