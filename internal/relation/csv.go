package relation

import (
	"encoding/csv"
	"fmt"
	"io"
)

// This file adds CSV import/export so the command-line tools can load
// real datasets instead of generated ones. The header row must name the
// schema's columns in order; values are parsed per column kind.

// ReadCSV loads rows into a new relation over the schema. The first
// record must be a header matching the schema's column names exactly.
func ReadCSV(schema *Schema, r io.Reader) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	if len(header) != schema.NumCols() {
		return nil, fmt.Errorf("relation: CSV header has %d columns, schema %s has %d",
			len(header), schema.Name(), schema.NumCols())
	}
	for i, name := range header {
		if schema.Col(i).Name != name {
			return nil, fmt.Errorf("relation: CSV column %d is %q, schema expects %q",
				i, name, schema.Col(i).Name)
		}
	}
	rel := New(schema)
	for line := 2; ; line++ {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: CSV line %d: %w", line, err)
		}
		vals := make([]Value, len(record))
		for i, text := range record {
			v, err := Parse(schema.Col(i).Kind, text)
			if err != nil {
				return nil, fmt.Errorf("relation: CSV line %d, column %s: %w",
					line, schema.Col(i).Name, err)
			}
			vals[i] = v
		}
		if _, err := rel.Insert(vals...); err != nil {
			return nil, fmt.Errorf("relation: CSV line %d: %w", line, err)
		}
	}
	return rel, nil
}

// WriteCSV writes the relation with a header row; ReadCSV reads it
// back to an identical relation.
func WriteCSV(rel *Relation, w io.Writer) error {
	cw := csv.NewWriter(w)
	schema := rel.Schema()
	header := make([]string, schema.NumCols())
	for i := range header {
		header[i] = schema.Col(i).Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("relation: writing CSV header: %w", err)
	}
	record := make([]string, schema.NumCols())
	for i := 0; i < rel.Len(); i++ {
		t := rel.Tuple(i)
		for c := range record {
			record[c] = t[c].String()
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("relation: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
