package relation

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func indexedRelation(t *testing.T) *Relation {
	t.Helper()
	r := poiRelation(t)
	if err := r.CreateIndex("type"); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCreateIndex(t *testing.T) {
	r := indexedRelation(t)
	if got := r.IndexedColumns(); !reflect.DeepEqual(got, []string{"type"}) {
		t.Errorf("IndexedColumns = %v", got)
	}
	// Idempotent.
	if err := r.CreateIndex("type"); err != nil {
		t.Fatal(err)
	}
	if got := len(r.IndexedColumns()); got != 1 {
		t.Errorf("duplicate CreateIndex grew the list: %d", got)
	}
	// Second index.
	if err := r.CreateIndex("location"); err != nil {
		t.Fatal(err)
	}
	if got := len(r.IndexedColumns()); got != 2 {
		t.Errorf("IndexedColumns = %d", got)
	}
	// Unknown column.
	if err := r.CreateIndex("bogus"); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestIndexedSelectMatchesScan(t *testing.T) {
	r := indexedRelation(t)
	plain := poiRelation(t)
	cases := [][]Predicate{
		{{Col: "type", Op: OpEq, Val: S("monument")}},
		{{Col: "type", Op: OpEq, Val: S("nothing")}},
		{{Col: "type", Op: OpEq, Val: S("monument")}, {Col: "admission_cost", Op: OpGt, Val: F(10)}},
		{{Col: "location", Op: OpEq, Val: S("Plaka")}, {Col: "type", Op: OpEq, Val: S("brewery")}},
		{{Col: "admission_cost", Op: OpLe, Val: F(5)}}, // no eq predicate → scan
		{}, // no predicates → scan everything
	}
	for _, preds := range cases {
		want, err1 := plain.Select(preds...)
		got, err2 := r.Select(preds...)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error mismatch for %v: %v vs %v", preds, err1, err2)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Select(%v): indexed %v vs scan %v", preds, got, want)
		}
	}
	// Both paths reject malformed predicates identically, even with an
	// empty candidate bucket.
	if _, err := r.Select(
		Predicate{Col: "type", Op: OpEq, Val: S("nothing")},
		Predicate{Col: "bogus", Op: OpEq, Val: S("x")},
	); err == nil {
		t.Error("unknown column should fail on the indexed path")
	}
	if _, err := r.Select(Predicate{Col: "type", Op: OpEq, Val: I(3)}); err == nil {
		t.Error("kind mismatch should fail")
	}
}

func TestIndexMaintainedOnInsert(t *testing.T) {
	r := indexedRelation(t)
	idx, err := r.Insert(I(9), S("New Brewery"), S("brewery"), S("Kifisia"), B(false), F(3))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Select(Predicate{Col: "type", Op: OpEq, Val: S("brewery")})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, i := range got {
		if i == idx {
			found = true
		}
	}
	if !found {
		t.Errorf("new tuple missing from indexed select: %v", got)
	}
}

// Property: for random data and random predicates, the indexed and
// unindexed relations answer identically.
func TestQuickIndexEquivalence(t *testing.T) {
	schema, err := NewSchema("t",
		Column{"a", KindString},
		Column{"b", KindInt},
		Column{"c", KindBool},
	)
	if err != nil {
		t.Fatal(err)
	}
	letters := []string{"x", "y", "z", "w"}
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		plain := New(schema)
		indexed := New(schema)
		if err := indexed.CreateIndex("a"); err != nil {
			return false
		}
		if err := indexed.CreateIndex("b"); err != nil {
			return false
		}
		for n := rnd.Intn(60); n > 0; n-- {
			row := []Value{
				S(letters[rnd.Intn(len(letters))]),
				I(int64(rnd.Intn(5))),
				B(rnd.Intn(2) == 0),
			}
			if _, err := plain.Insert(row...); err != nil {
				return false
			}
			if _, err := indexed.Insert(row...); err != nil {
				return false
			}
		}
		for q := 0; q < 10; q++ {
			var preds []Predicate
			if rnd.Intn(2) == 0 {
				preds = append(preds, Predicate{Col: "a", Op: OpEq, Val: S(letters[rnd.Intn(len(letters))])})
			}
			if rnd.Intn(2) == 0 {
				preds = append(preds, Predicate{Col: "b", Op: CmpOp(rnd.Intn(6)), Val: I(int64(rnd.Intn(5)))})
			}
			if rnd.Intn(2) == 0 {
				preds = append(preds, Predicate{Col: "c", Op: OpEq, Val: B(rnd.Intn(2) == 0)})
			}
			want, err1 := plain.Select(preds...)
			got, err2 := indexed.Select(preds...)
			if err1 != nil || err2 != nil {
				return false
			}
			if !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
