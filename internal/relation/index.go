package relation

import "fmt"

// This file adds hash indexes on equality columns. Rank_CS turns every
// matched preference into a selection σ_{A=a}(R); with an index on A
// the selection reads one bucket instead of scanning the relation.
// Indexes are maintained incrementally on Insert and are transparent:
// Select's results are identical with or without them (verified by a
// property test), only the work changes.

// index is a hash index over one column. Value is a comparable struct,
// so it can key a map directly.
type index struct {
	col     int
	buckets map[Value][]int
}

// CreateIndex builds a hash index over the named column, indexing the
// tuples already present. Creating an index twice is a no-op.
func (r *Relation) CreateIndex(col string) error {
	ci, ok := r.schema.ColIndex(col)
	if !ok {
		return fmt.Errorf("relation %s: unknown column %q", r.schema.name, col)
	}
	for _, ix := range r.indexes {
		if ix.col == ci {
			return nil
		}
	}
	ix := &index{col: ci, buckets: make(map[Value][]int)}
	for i, t := range r.tuples {
		ix.buckets[t[ci]] = append(ix.buckets[t[ci]], i)
	}
	r.indexes = append(r.indexes, ix)
	return nil
}

// IndexedColumns returns the names of indexed columns, in creation
// order.
func (r *Relation) IndexedColumns() []string {
	out := make([]string, len(r.indexes))
	for i, ix := range r.indexes {
		out[i] = r.schema.cols[ix.col].Name
	}
	return out
}

// lookupIndex returns the index over the column, if any.
func (r *Relation) lookupIndex(col int) *index {
	for _, ix := range r.indexes {
		if ix.col == col {
			return ix
		}
	}
	return nil
}

// selectIndexed answers a conjunctive selection using the smallest
// available equality-index bucket as the candidate set, then filters
// the remaining predicates. ok is false when no predicate is an
// indexed equality; the caller then falls back to a scan.
func (r *Relation) selectIndexed(preds []Predicate) ([]int, bool, error) {
	best := -1
	var bestBucket []int
	for pi, p := range preds {
		if p.Op != OpEq {
			continue
		}
		ci, ok := r.schema.ColIndex(p.Col)
		if !ok {
			return nil, false, fmt.Errorf("relation %s: unknown column %q", r.schema.name, p.Col)
		}
		if p.Val.Kind() != r.schema.cols[ci].Kind {
			return nil, false, fmt.Errorf("relation %s: cannot compare %s with %s",
				r.schema.name, r.schema.cols[ci].Kind, p.Val.Kind())
		}
		ix := r.lookupIndex(ci)
		if ix == nil {
			continue
		}
		bucket := ix.buckets[p.Val]
		if best < 0 || len(bucket) < len(bestBucket) {
			best = pi
			bestBucket = bucket
		}
	}
	if best < 0 {
		return nil, false, nil
	}
	var out []int
	for _, i := range bestBucket {
		match := true
		for pi, p := range preds {
			if pi == best {
				continue
			}
			ok, err := p.Eval(r.schema, r.tuples[i])
			if err != nil {
				return nil, false, err
			}
			if !ok {
				match = false
				break
			}
		}
		if match {
			out = append(out, i)
		}
	}
	return out, true, nil
}
