package relation

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// Column describes one attribute of a schema.
type Column struct {
	// Name is the attribute name (unique within the schema).
	Name string
	// Kind is the attribute's value type.
	Kind Kind
}

// Schema is an ordered set of typed columns with a relation name.
type Schema struct {
	name  string
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema, rejecting empty or duplicate column names.
func NewSchema(name string, cols ...Column) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("relation: empty schema name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("relation: schema %s has no columns", name)
	}
	s := &Schema{name: name, cols: append([]Column(nil), cols...), index: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("relation: schema %s: empty column name at %d", name, i)
		}
		if _, dup := s.index[c.Name]; dup {
			return nil, fmt.Errorf("relation: schema %s: duplicate column %q", name, c.Name)
		}
		s.index[c.Name] = i
	}
	return s, nil
}

// Name returns the relation name.
func (s *Schema) Name() string { return s.name }

// NumCols returns the number of columns.
func (s *Schema) NumCols() int { return len(s.cols) }

// Col returns the i-th column.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// ColIndex returns the position of the named column.
func (s *Schema) ColIndex(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// String renders "name(col kind, ...)".
func (s *Schema) String() string {
	parts := make([]string, len(s.cols))
	for i, c := range s.cols {
		parts[i] = c.Name + " " + c.Kind.String()
	}
	return s.name + "(" + strings.Join(parts, ", ") + ")"
}

// Tuple is one row; values are in schema column order.
type Tuple []Value

// Relation is an append-only in-memory table, optionally with hash
// indexes on equality columns (see CreateIndex).
type Relation struct {
	schema  *Schema
	tuples  []Tuple
	indexes []*index
}

// New creates an empty relation over the schema.
func New(schema *Schema) *Relation { return &Relation{schema: schema} }

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Insert appends a tuple after validating arity and column kinds, and
// returns its index.
func (r *Relation) Insert(vals ...Value) (int, error) {
	if len(vals) != len(r.schema.cols) {
		return 0, fmt.Errorf("relation %s: tuple arity %d, want %d", r.schema.name, len(vals), len(r.schema.cols))
	}
	for i, v := range vals {
		if v.Kind() != r.schema.cols[i].Kind {
			return 0, fmt.Errorf("relation %s: column %s expects %s, got %s",
				r.schema.name, r.schema.cols[i].Name, r.schema.cols[i].Kind, v.Kind())
		}
	}
	r.tuples = append(r.tuples, append(Tuple(nil), vals...))
	idx := len(r.tuples) - 1
	for _, ix := range r.indexes {
		ix.buckets[vals[ix.col]] = append(ix.buckets[vals[ix.col]], idx)
	}
	return idx, nil
}

// Tuple returns the i-th tuple. The returned slice must not be mutated.
func (r *Relation) Tuple(i int) Tuple { return r.tuples[i] }

// Value returns the named column of the i-th tuple.
func (r *Relation) Value(i int, col string) (Value, error) {
	ci, ok := r.schema.index[col]
	if !ok {
		return Value{}, fmt.Errorf("relation %s: unknown column %q", r.schema.name, col)
	}
	return r.tuples[i][ci], nil
}

// Predicate is a simple selection condition "col θ value".
type Predicate struct {
	// Col names the column the predicate tests.
	Col string
	// Op is the comparison operator.
	Op CmpOp
	// Val is the constant compared against.
	Val Value
}

// String renders the predicate.
func (p Predicate) String() string {
	return fmt.Sprintf("%s %s %s", p.Col, p.Op, p.Val)
}

// Eval tests the predicate against a tuple of the schema.
func (p Predicate) Eval(s *Schema, t Tuple) (bool, error) {
	ci, ok := s.ColIndex(p.Col)
	if !ok {
		return false, fmt.Errorf("relation %s: unknown column %q", s.name, p.Col)
	}
	return p.Op.Eval(t[ci], p.Val)
}

// Select returns the indexes of tuples satisfying every predicate
// (σ of the relational algebra, restricted to conjunctions of simple
// comparisons — all Algorithm 2 needs). An equality predicate over an
// indexed column answers from its hash bucket; otherwise the relation
// is scanned. Results are identical either way and always in tuple
// order.
func (r *Relation) Select(preds ...Predicate) ([]int, error) {
	return r.SelectCtx(context.Background(), preds...)
}

// selectCheckEvery is the cooperative-cancellation granularity of the
// relation scan: ctx.Err() is consulted once per this many tuples. It
// must be a power of two.
const selectCheckEvery = 256

// SelectCtx is Select with cooperative cancellation: the full-relation
// scan consults ctx every selectCheckEvery tuples and aborts with a
// wrapped ctx.Err() once the context is done, so a server deadline or
// a departed client stops a large scan early. The indexed path reads
// one bucket and is not gated.
//
//cpvet:scanloop
func (r *Relation) SelectCtx(ctx context.Context, preds ...Predicate) ([]int, error) {
	// Validate predicates up front so the indexed and scanning paths
	// reject malformed queries identically, independent of data.
	for _, p := range preds {
		ci, ok := r.schema.ColIndex(p.Col)
		if !ok {
			return nil, fmt.Errorf("relation %s: unknown column %q", r.schema.name, p.Col)
		}
		if p.Val.Kind() != r.schema.cols[ci].Kind {
			return nil, fmt.Errorf("relation %s: cannot compare %s with %s",
				r.schema.name, r.schema.cols[ci].Kind, p.Val.Kind())
		}
	}
	if out, ok, err := r.selectIndexed(preds); err != nil {
		return nil, err
	} else if ok {
		return out, nil
	}
	var out []int
	for i, t := range r.tuples {
		if i&(selectCheckEvery-1) == selectCheckEvery-1 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("relation %s: scan stopped: %w", r.schema.name, err)
			}
		}
		match := true
		for _, p := range preds {
			ok, err := p.Eval(r.schema, t)
			if err != nil {
				return nil, err
			}
			if !ok {
				match = false
				break
			}
		}
		if match {
			out = append(out, i)
		}
	}
	return out, nil
}

// Combiner merges the scores of a tuple matched by several scored
// selections, per the Rank_CS remark ("keeping the max (equivalently,
// avg, min ...)").
type Combiner int

const (
	// CombineMax keeps the maximum score.
	CombineMax Combiner = iota
	// CombineMin keeps the minimum score.
	CombineMin
	// CombineAvg averages the scores.
	CombineAvg
)

// String names the combiner.
func (c Combiner) String() string {
	switch c {
	case CombineMax:
		return "max"
	case CombineMin:
		return "min"
	case CombineAvg:
		return "avg"
	}
	return fmt.Sprintf("Combiner(%d)", int(c))
}

// Combine reduces a non-empty score list.
func (c Combiner) Combine(scores []float64) float64 {
	if len(scores) == 0 {
		return 0
	}
	switch c {
	case CombineMin:
		m := scores[0]
		for _, s := range scores[1:] {
			if s < m {
				m = s
			}
		}
		return m
	case CombineAvg:
		sum := 0.0
		for _, s := range scores {
			sum += s
		}
		return sum / float64(len(scores))
	default: // CombineMax
		m := scores[0]
		for _, s := range scores[1:] {
			if s > m {
				m = s
			}
		}
		return m
	}
}

// ScoredTuple is a tuple index annotated with its interest score.
type ScoredTuple struct {
	// Index is the tuple's position in the relation.
	Index int
	// Tuple is the row itself.
	Tuple Tuple
	// Score is the combined interest score in [0, 1].
	Score float64
}

// ResultSet accumulates scored tuple matches and ranks them.
type ResultSet struct {
	rel    *Relation
	scores map[int][]float64
}

// NewResultSet creates an empty result set over a relation.
func NewResultSet(rel *Relation) *ResultSet {
	return &ResultSet{rel: rel, scores: make(map[int][]float64)}
}

// Add records that tuple idx matched a preference with the given score.
func (rs *ResultSet) Add(idx int, score float64) {
	rs.scores[idx] = append(rs.scores[idx], score)
}

// Len returns the number of distinct tuples in the result set.
func (rs *ResultSet) Len() int { return len(rs.scores) }

// Ranked returns the distinct tuples ordered by combined score
// descending; ties break by tuple index ascending so results are
// deterministic.
func (rs *ResultSet) Ranked(c Combiner) []ScoredTuple {
	out := make([]ScoredTuple, 0, len(rs.scores))
	for idx, ss := range rs.scores {
		out = append(out, ScoredTuple{Index: idx, Tuple: rs.rel.Tuple(idx), Score: c.Combine(ss)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// Top returns the best k tuples under the combiner, extended past k
// only to include tuples tied with the k-th score, matching the
// usability study's "when there are ties in the ranking, we consider
// all results with the same score".
func (rs *ResultSet) Top(k int, c Combiner) []ScoredTuple {
	ranked := rs.Ranked(c)
	if k <= 0 || len(ranked) <= k {
		return ranked
	}
	cut := k
	for cut < len(ranked) && ranked[cut].Score == ranked[k-1].Score {
		cut++
	}
	return ranked[:cut]
}
