// Package relation is the in-memory relational substrate that the
// contextual preference system of "Adding Context to Preferences"
// (ICDE 2007) scores and ranks over. It provides typed values, schemas,
// tuples, relations, selection predicates (the σ of Algorithm 2) and
// score-annotated result sets with duplicate elimination under a
// combining function (max/min/avg), as the paper's Rank_CS remark
// prescribes.
package relation

import (
	"fmt"
	"strconv"
)

// Kind enumerates the value types the substrate supports.
type Kind int

const (
	// KindString is a UTF-8 string.
	KindString Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit float.
	KindFloat
	// KindBool is a boolean.
	KindBool
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Value is an immutable typed scalar.
type Value struct {
	kind Kind
	s    string
	i    int64
	f    float64
	b    bool
}

// S builds a string value.
func S(v string) Value { return Value{kind: KindString, s: v} }

// I builds an integer value.
func I(v int64) Value { return Value{kind: KindInt, i: v} }

// F builds a float value.
func F(v float64) Value { return Value{kind: KindFloat, f: v} }

// B builds a boolean value.
func B(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind returns the value's type.
func (v Value) Kind() Kind { return v.kind }

// Str returns the string payload; zero for other kinds.
func (v Value) Str() string { return v.s }

// Int returns the integer payload; zero for other kinds.
func (v Value) Int() int64 { return v.i }

// Float returns the float payload; zero for other kinds.
func (v Value) Float() float64 { return v.f }

// Bool returns the boolean payload; false for other kinds.
func (v Value) Bool() bool { return v.b }

// Equal reports whether two values have the same kind and payload.
func (v Value) Equal(w Value) bool { return v == w }

// Compare orders two values of the same kind: -1, 0 or +1. Booleans
// order false < true. Comparing values of different kinds is an error.
func (v Value) Compare(w Value) (int, error) {
	if v.kind != w.kind {
		return 0, fmt.Errorf("relation: cannot compare %s with %s", v.kind, w.kind)
	}
	switch v.kind {
	case KindString:
		switch {
		case v.s < w.s:
			return -1, nil
		case v.s > w.s:
			return 1, nil
		}
	case KindInt:
		switch {
		case v.i < w.i:
			return -1, nil
		case v.i > w.i:
			return 1, nil
		}
	case KindFloat:
		switch {
		case v.f < w.f:
			return -1, nil
		case v.f > w.f:
			return 1, nil
		}
	case KindBool:
		switch {
		case !v.b && w.b:
			return -1, nil
		case v.b && !w.b:
			return 1, nil
		}
	}
	return 0, nil
}

// String renders the payload.
func (v Value) String() string {
	switch v.kind {
	case KindString:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	}
	return "?"
}

// Parse converts text into a value of the given kind.
func Parse(k Kind, text string) (Value, error) {
	switch k {
	case KindString:
		return S(text), nil
	case KindInt:
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("relation: parse int %q: %w", text, err)
		}
		return I(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Value{}, fmt.Errorf("relation: parse float %q: %w", text, err)
		}
		return F(f), nil
	case KindBool:
		b, err := strconv.ParseBool(text)
		if err != nil {
			return Value{}, fmt.Errorf("relation: parse bool %q: %w", text, err)
		}
		return B(b), nil
	}
	return Value{}, fmt.Errorf("relation: parse: unknown kind %v", k)
}

// CmpOp is a comparison operator θ ∈ {=, ≠, <, ≤, >, ≥} as used in
// attribute clauses (Def. 5).
type CmpOp int

const (
	// OpEq is =.
	OpEq CmpOp = iota
	// OpNe is ≠.
	OpNe
	// OpLt is <.
	OpLt
	// OpLe is ≤.
	OpLe
	// OpGt is >.
	OpGt
	// OpGe is ≥.
	OpGe
)

// String renders the operator symbol.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return fmt.Sprintf("CmpOp(%d)", int(op))
}

// ParseCmpOp reads an operator symbol.
func ParseCmpOp(s string) (CmpOp, error) {
	switch s {
	case "=", "==":
		return OpEq, nil
	case "!=", "<>":
		return OpNe, nil
	case "<":
		return OpLt, nil
	case "<=":
		return OpLe, nil
	case ">":
		return OpGt, nil
	case ">=":
		return OpGe, nil
	}
	return 0, fmt.Errorf("relation: unknown comparison operator %q", s)
}

// Eval applies the operator to two values of the same kind.
func (op CmpOp) Eval(a, b Value) (bool, error) {
	c, err := a.Compare(b)
	if err != nil {
		return false, err
	}
	switch op {
	case OpEq:
		return c == 0, nil
	case OpNe:
		return c != 0, nil
	case OpLt:
		return c < 0, nil
	case OpLe:
		return c <= 0, nil
	case OpGt:
		return c > 0, nil
	case OpGe:
		return c >= 0, nil
	}
	return false, fmt.Errorf("relation: unknown operator %v", op)
}
