package querytree

import (
	"testing"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/distance"
	"contextpref/internal/preference"
	"contextpref/internal/profiletree"
	"contextpref/internal/query"
	"contextpref/internal/relation"
)

func env(t *testing.T) *ctxmodel.Environment {
	t.Helper()
	e, err := ctxmodel.ReferenceEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func st(t *testing.T, e *ctxmodel.Environment, vs ...string) ctxmodel.State {
	t.Helper()
	s, err := e.NewState(vs...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func someTuples(score float64) []relation.ScoredTuple {
	return []relation.ScoredTuple{{Index: 0, Score: score}}
}

func TestNewValidation(t *testing.T) {
	e := env(t)
	if _, err := New(nil, nil, 0); err == nil {
		t.Error("nil environment should fail")
	}
	if _, err := New(e, []int{0}, 0); err == nil {
		t.Error("short order should fail")
	}
	if _, err := New(e, []int{0, 0, 1}, 0); err == nil {
		t.Error("non-permutation should fail")
	}
	if _, err := New(e, nil, -1); err == nil {
		t.Error("negative capacity should fail")
	}
	c, err := New(e, []int{2, 1, 0}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Env() != e {
		t.Error("Env round-trip failed")
	}
}

func TestGetPutInvalidate(t *testing.T) {
	e := env(t)
	c, _ := New(e, nil, 0)
	s1 := st(t, e, "Plaka", "warm", "friends")
	s2 := st(t, e, "Athens", "good", "all")

	// Miss on empty cache.
	if _, _, ok, err := c.Get(s1); ok || err != nil {
		t.Fatalf("Get on empty = %v, %v", ok, err)
	}
	// Put and hit.
	if err := c.Put(s1, someTuples(0.8), query.Resolution{}); err != nil {
		t.Fatal(err)
	}
	tuples, _, ok, err := c.Get(s1)
	if err != nil || !ok || len(tuples) != 1 || tuples[0].Score != 0.8 {
		t.Fatalf("Get after Put = %v, %v, %v", tuples, ok, err)
	}
	// Sibling state still misses (exact-state semantics).
	if _, _, ok, _ := c.Get(s2); ok {
		t.Error("cover state should not hit an exact-state cache")
	}
	// Overwrite.
	if err := c.Put(s1, someTuples(0.5), query.Resolution{}); err != nil {
		t.Fatal(err)
	}
	tuples, _, _, _ = c.Get(s1)
	if tuples[0].Score != 0.5 {
		t.Errorf("overwrite failed: %v", tuples)
	}
	// Stats.
	stats := c.Stats()
	if stats.Hits != 2 || stats.Misses != 2 || stats.Puts != 1 || stats.Entries != 1 {
		t.Errorf("Stats = %+v", stats)
	}
	if stats.InternalCells != 3 {
		t.Errorf("InternalCells = %d, want 3 (one path)", stats.InternalCells)
	}
	// InvalidateState.
	if err := c.InvalidateState(s1); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := c.Get(s1); ok {
		t.Error("InvalidateState did not evict")
	}
	// InvalidateState of an absent state is a no-op.
	if err := c.InvalidateState(s2); err != nil {
		t.Fatal(err)
	}
	// Full invalidation.
	c.Put(s1, someTuples(0.8), query.Resolution{})
	c.Put(s2, someTuples(0.6), query.Resolution{})
	c.Invalidate()
	if got := c.Stats().Entries; got != 0 {
		t.Errorf("Entries after Invalidate = %d", got)
	}
	if got := c.Stats().InternalCells; got != 0 {
		t.Errorf("InternalCells after Invalidate = %d", got)
	}
	// Validation errors.
	if _, _, _, err := c.Get(ctxmodel.State{"bad"}); err == nil {
		t.Error("Get with invalid state should fail")
	}
	if err := c.Put(ctxmodel.State{"bad"}, nil, query.Resolution{}); err == nil {
		t.Error("Put with invalid state should fail")
	}
	if err := c.InvalidateState(ctxmodel.State{"bad"}); err == nil {
		t.Error("InvalidateState with invalid state should fail")
	}
}

func TestEviction(t *testing.T) {
	e := env(t)
	c, _ := New(e, nil, 2)
	s1 := st(t, e, "Plaka", "warm", "friends")
	s2 := st(t, e, "Kifisia", "warm", "friends")
	s3 := st(t, e, "Perama", "cold", "alone")
	c.Put(s1, someTuples(0.1), query.Resolution{})
	c.Put(s2, someTuples(0.2), query.Resolution{})
	c.Put(s3, someTuples(0.3), query.Resolution{})
	if _, _, ok, _ := c.Get(s1); ok {
		t.Error("oldest entry should have been evicted")
	}
	if _, _, ok, _ := c.Get(s2); !ok {
		t.Error("second entry should survive")
	}
	if _, _, ok, _ := c.Get(s3); !ok {
		t.Error("newest entry should survive")
	}
	stats := c.Stats()
	if stats.Evictions != 1 || stats.Entries != 2 {
		t.Errorf("Stats = %+v", stats)
	}
	// Overwriting does not grow the FIFO.
	c.Put(s2, someTuples(0.9), query.Resolution{})
	c.Put(s3, someTuples(0.9), query.Resolution{})
	if got := c.Stats().Entries; got != 2 {
		t.Errorf("Entries after overwrites = %d", got)
	}
}

func buildEngine(t *testing.T) (*ctxmodel.Environment, *query.Engine) {
	t.Helper()
	e := env(t)
	tr, _ := profiletree.New(e, nil)
	err := tr.Insert(preference.MustNew(
		ctxmodel.MustDescriptor(ctxmodel.Eq("location", "Plaka")),
		preference.Clause{Attr: "type", Op: relation.OpEq, Val: relation.S("monument")}, 0.8))
	if err != nil {
		t.Fatal(err)
	}
	schema, _ := relation.NewSchema("poi",
		relation.Column{Name: "name", Kind: relation.KindString},
		relation.Column{Name: "type", Kind: relation.KindString},
	)
	rel := relation.New(schema)
	rel.Insert(relation.S("Acropolis"), relation.S("monument"))
	rel.Insert(relation.S("Benaki"), relation.S("museum"))
	en, err := query.NewEngine(tr, rel, distance.Hierarchy{}, relation.CombineMax)
	if err != nil {
		t.Fatal(err)
	}
	return e, en
}

func TestCachedEngine(t *testing.T) {
	e, inner := buildEngine(t)
	cache, _ := New(e, nil, 0)
	if _, err := NewEngine(nil, cache); err == nil {
		t.Error("nil inner should fail")
	}
	if _, err := NewEngine(inner, nil); err == nil {
		t.Error("nil cache should fail")
	}
	en, err := NewEngine(inner, cache)
	if err != nil {
		t.Fatal(err)
	}
	if en.Cache() != cache {
		t.Error("Cache round-trip failed")
	}
	cur := st(t, e, "Plaka", "warm", "friends")

	// First execution: miss, computed, cached.
	res, hit, err := en.Execute(query.Contextual{}, cur)
	if err != nil || hit {
		t.Fatalf("first Execute hit=%v err=%v", hit, err)
	}
	if len(res.Tuples) != 1 || res.Tuples[0].Tuple[0].Str() != "Acropolis" {
		t.Fatalf("tuples = %v", res.Tuples)
	}
	// Second execution: cache hit, same answer.
	res2, hit, err := en.Execute(query.Contextual{}, cur)
	if err != nil || !hit {
		t.Fatalf("second Execute hit=%v err=%v", hit, err)
	}
	if len(res2.Tuples) != 1 || res2.Tuples[0].Tuple[0].Str() != "Acropolis" {
		t.Fatalf("cached tuples = %v", res2.Tuples)
	}
	if cache.Stats().Hits != 1 || cache.Stats().Puts != 1 {
		t.Errorf("cache stats = %+v", cache.Stats())
	}
	// Queries with selections bypass the cache.
	sel := query.Contextual{Selection: []relation.Predicate{{Col: "type", Op: relation.OpEq, Val: relation.S("monument")}}}
	_, hit, err = en.Execute(sel, cur)
	if err != nil || hit {
		t.Fatalf("selection query must bypass cache: hit=%v err=%v", hit, err)
	}
	// Multi-state queries bypass the cache.
	multi := query.Contextual{Ecod: ctxmodel.ExtendedDescriptor{
		ctxmodel.MustDescriptor(ctxmodel.In("location", "Plaka", "Kifisia")),
	}}
	_, hit, err = en.Execute(multi, cur)
	if err != nil || hit {
		t.Fatalf("multi-state query must bypass cache: hit=%v err=%v", hit, err)
	}
	// Non-contextual fallbacks are not cached.
	far := st(t, e, "Perama", "cold", "alone")
	_, hit, err = en.Execute(query.Contextual{}, far)
	if err != nil || hit {
		t.Fatal("fallback should not hit")
	}
	_, hit, err = en.Execute(query.Contextual{}, far)
	if err != nil || hit {
		t.Error("fallback result must not be cached")
	}
	// Invalid inputs propagate.
	if _, _, err := en.Execute(query.Contextual{}, ctxmodel.State{"bad"}); err == nil {
		t.Error("invalid state should fail")
	}
}
