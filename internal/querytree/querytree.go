// Package querytree implements the context query tree announced in the
// contributions and summary of "Adding Context to Preferences"
// (ICDE 2007): an index that caches the results of contextual queries
// based on their context. (The paper's dedicated section is not part of
// the available text; this is the natural construction implied by the
// profile tree: the same trie shape — one level per context parameter —
// with leaves holding ranked result sets instead of preference entries.)
//
// The cache stores results per single context state. Queries whose
// extended descriptor expands to several states bypass it, because
// their answer is a combination across states. The cache must be
// invalidated when the profile changes, since cached rankings embed
// preference scores.
package querytree

import (
	"context"
	"fmt"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/query"
	"contextpref/internal/relation"
	"contextpref/internal/tracing"
)

// Stats reports cache effectiveness counters.
type Stats struct {
	// Hits counts Get calls answered from the cache.
	Hits int
	// Misses counts Get calls that found nothing.
	Misses int
	// Puts counts results stored.
	Puts int
	// Evictions counts entries dropped to respect the capacity.
	Evictions int
	// Entries is the number of currently cached states.
	Entries int
	// InternalCells is the number of [key, pointer] cells of the trie.
	InternalCells int
}

type node struct {
	keys       []string
	children   []*node
	result     []relation.ScoredTuple
	resolution query.Resolution
	occupied   bool
}

func (nd *node) find(key string) *node {
	for i, k := range nd.keys {
		if k == key {
			return nd.children[i]
		}
	}
	return nil
}

// Cache is a context query tree.
type Cache struct {
	env      *ctxmodel.Environment
	order    []int
	root     *node
	capacity int
	fifo     []string // state keys in insertion order, for eviction
	index    map[string]*node
	stats    Stats
}

// New creates a cache over the environment. order assigns parameters to
// trie levels (nil = identity, mirroring profiletree.New). capacity
// bounds the number of cached states; 0 means unbounded.
func New(env *ctxmodel.Environment, order []int, capacity int) (*Cache, error) {
	if env == nil {
		return nil, fmt.Errorf("querytree: nil environment")
	}
	n := env.NumParams()
	if order == nil {
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("querytree: order has %d entries, environment has %d parameters", len(order), n)
	}
	seen := make([]bool, n)
	for _, p := range order {
		if p < 0 || p >= n || seen[p] {
			return nil, fmt.Errorf("querytree: order %v is not a permutation of 0..%d", order, n-1)
		}
		seen[p] = true
	}
	if capacity < 0 {
		return nil, fmt.Errorf("querytree: negative capacity %d", capacity)
	}
	return &Cache{
		env:      env,
		order:    append([]int(nil), order...),
		root:     &node{},
		capacity: capacity,
		index:    make(map[string]*node),
	}, nil
}

// Env returns the cache's environment.
func (c *Cache) Env() *ctxmodel.Environment { return c.env }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	s := c.stats
	s.Entries = len(c.index)
	s.InternalCells = c.countCells(c.root)
	return s
}

func (c *Cache) countCells(nd *node) int {
	total := len(nd.keys)
	for _, ch := range nd.children {
		total += c.countCells(ch)
	}
	return total
}

func (c *Cache) path(s ctxmodel.State) []string {
	out := make([]string, len(s))
	for level, param := range c.order {
		out[level] = s[param]
	}
	return out
}

// Get returns the cached result and its resolution for the exact
// context state.
//
//cpvet:hotpath allocs=2 one path slice from c.path plus Validate's bookkeeping; a hit must never copy the cached tuples
func (c *Cache) Get(s ctxmodel.State) ([]relation.ScoredTuple, query.Resolution, bool, error) {
	if err := c.env.Validate(s); err != nil {
		return nil, query.Resolution{}, false, err
	}
	nd := c.root
	for _, key := range c.path(s) {
		nd = nd.find(key)
		if nd == nil {
			c.stats.Misses++
			return nil, query.Resolution{}, false, nil
		}
	}
	if !nd.occupied {
		c.stats.Misses++
		return nil, query.Resolution{}, false, nil
	}
	c.stats.Hits++
	return nd.result, nd.resolution, true, nil
}

// Put stores a query result and its resolution under the context
// state, evicting the oldest cached state when the capacity is
// exceeded. Storing twice overwrites.
func (c *Cache) Put(s ctxmodel.State, result []relation.ScoredTuple, resolution query.Resolution) error {
	if err := c.env.Validate(s); err != nil {
		return err
	}
	key := s.Key()
	if nd, ok := c.index[key]; ok {
		nd.result = append([]relation.ScoredTuple(nil), result...)
		nd.resolution = resolution
		return nil
	}
	nd := c.root
	for _, k := range c.path(s) {
		child := nd.find(k)
		if child == nil {
			child = &node{}
			nd.keys = append(nd.keys, k)
			nd.children = append(nd.children, child)
		}
		nd = child
	}
	nd.result = append([]relation.ScoredTuple(nil), result...)
	nd.resolution = resolution
	nd.occupied = true
	c.index[key] = nd
	c.fifo = append(c.fifo, key)
	c.stats.Puts++
	if c.capacity > 0 && len(c.index) > c.capacity {
		c.evictOldest()
	}
	return nil
}

// evictOldest removes the least recently inserted state.
func (c *Cache) evictOldest() {
	for len(c.fifo) > 0 {
		key := c.fifo[0]
		c.fifo = c.fifo[1:]
		if nd, ok := c.index[key]; ok {
			nd.result = nil
			nd.resolution = query.Resolution{}
			nd.occupied = false
			delete(c.index, key)
			c.stats.Evictions++
			return
		}
	}
}

// InvalidateState drops one cached state, if present.
func (c *Cache) InvalidateState(s ctxmodel.State) error {
	if err := c.env.Validate(s); err != nil {
		return err
	}
	if nd, ok := c.index[s.Key()]; ok {
		nd.result = nil
		nd.resolution = query.Resolution{}
		nd.occupied = false
		delete(c.index, s.Key())
	}
	return nil
}

// Invalidate drops every cached result. Call it whenever the profile
// changes: cached rankings embed preference scores.
func (c *Cache) Invalidate() {
	c.root = &node{}
	c.index = make(map[string]*node)
	c.fifo = nil
}

// Engine wraps a query.Engine with the cache: single-state queries are
// answered from the cache when possible and cached after execution.
type Engine struct {
	inner *query.Engine
	cache *Cache
}

// NewEngine wires a query engine and a cache together.
func NewEngine(inner *query.Engine, cache *Cache) (*Engine, error) {
	if inner == nil {
		return nil, fmt.Errorf("querytree: nil inner engine")
	}
	if cache == nil {
		return nil, fmt.Errorf("querytree: nil cache")
	}
	return &Engine{inner: inner, cache: cache}, nil
}

// Cache returns the engine's cache, e.g. to invalidate it on profile
// updates.
func (en *Engine) Cache() *Cache { return en.cache }

// Execute answers the query, consulting the cache for single-state
// queries without base selections (selections change the answer and
// would pollute the per-state cache). The cache stores the *full*
// ranked result of a context state; top-k truncation — including the
// paper's ties-extend-the-cutoff rule — is applied on the way out, so
// top-k queries share the cached entry of their state.
func (en *Engine) Execute(cq query.Contextual, current ctxmodel.State) (*query.Result, bool, error) {
	return en.ExecuteCtx(context.Background(), cq, current)
}

// ExecuteCtx is Execute with cooperative cancellation: ctx is threaded
// into the inner engine's resolution and relation scans. Cache lookups
// are trie descents of bounded depth and are not gated; a cancelled
// query is never cached.
func (en *Engine) ExecuteCtx(ctx context.Context, cq query.Contextual, current ctxmodel.State) (*query.Result, bool, error) {
	if len(cq.Selection) == 0 {
		states, err := en.inner.QueryStates(cq, current)
		if err != nil {
			return nil, false, err
		}
		if len(states) == 1 {
			if tuples, resolution, ok, err := en.cache.Get(states[0]); err != nil {
				return nil, false, err
			} else if ok {
				tracing.AddEvent(ctx, "querytree.hit")
				return &query.Result{
					Tuples:      cutTopK(tuples, cq.TopK),
					Resolutions: []query.Resolution{resolution},
					Contextual:  true,
				}, true, nil
			}
			tracing.AddEvent(ctx, "querytree.miss")
			full := cq
			full.TopK = 0
			res, err := en.inner.ExecuteCtx(ctx, full, current)
			if err != nil {
				return nil, false, err
			}
			if res.Contextual {
				if err := en.cache.Put(states[0], res.Tuples, res.Resolutions[0]); err != nil {
					return nil, false, err
				}
				res.Tuples = cutTopK(res.Tuples, cq.TopK)
			} else if cq.TopK > 0 && len(res.Tuples) > cq.TopK {
				// Non-contextual fallback: plain truncation, mirroring
				// query.Engine's behaviour.
				res.Tuples = res.Tuples[:cq.TopK]
			}
			return res, false, nil
		}
	}
	res, err := en.inner.ExecuteCtx(ctx, cq, current)
	return res, false, err
}

// cutTopK truncates a ranked list to k entries, extended through ties
// with the k-th score (the semantics of relation.ResultSet.Top).
func cutTopK(tuples []relation.ScoredTuple, k int) []relation.ScoredTuple {
	if k <= 0 || len(tuples) <= k {
		return tuples
	}
	cut := k
	for cut < len(tuples) && tuples[cut].Score == tuples[k-1].Score {
		cut++
	}
	return tuples[:cut]
}
