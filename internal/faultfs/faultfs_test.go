package faultfs

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

// exercise runs the same op sequence against any FS and returns the
// final journal-file bytes, so OS and MemFS can be checked for
// identical semantics.
func exercise(t *testing.T, fsys FS, dir string) string {
	t.Helper()
	if err := fsys.MkdirAll(dir); err != nil {
		t.Fatal(err)
	}
	name := filepath.Join(dir, "f.txt")
	f, err := fsys.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"one\n", "two\n", "three\n"} {
		if _, err := f.Write([]byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// Roll back the last record, then append over the cut: O_APPEND
	// must continue at the new end.
	if err := f.Truncate(int64(len("one\ntwo\n"))); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("THREE\n")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if sz, err := fsys.Size(name); err != nil || sz != int64(len("one\ntwo\nTHREE\n")) {
		t.Fatalf("Size = %d, %v", sz, err)
	}
	// Atomic-replace dance: write temp, rename over, fsync dir.
	tmp := filepath.Join(dir, "f.tmp")
	tf, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tf.Write([]byte("replaced\n")); err != nil {
		t.Fatal(err)
	}
	if err := tf.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := tf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Rename(tmp, name); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Size(tmp); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("renamed-away temp Size err = %v, want ErrNotExist", err)
	}
	if err := fsys.Remove(name); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove(name); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("double remove err = %v, want ErrNotExist", err)
	}
	// Re-create to read back.
	rf, err := fsys.OpenFile(name, os.O_CREATE|os.O_WRONLY)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rf.Write([]byte("final\n")); err != nil {
		t.Fatal(err)
	}
	rf.Close()
	data, err := fsys.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestOSAndMemFSAgree(t *testing.T) {
	osGot := exercise(t, OS{}, t.TempDir())
	memGot := exercise(t, NewMemFS(), "/mem/store")
	if osGot != memGot {
		t.Errorf("OS produced %q, MemFS produced %q", osGot, memGot)
	}
	if osGot != "final\n" {
		t.Errorf("final contents = %q, want %q", osGot, "final\n")
	}
}

func TestMemFSReadFileMissing(t *testing.T) {
	m := NewMemFS()
	if _, err := m.ReadFile("/nope"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("ReadFile missing = %v, want ErrNotExist", err)
	}
	if _, err := m.OpenFile("/nope", os.O_WRONLY); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("OpenFile without O_CREATE = %v, want ErrNotExist", err)
	}
}

func TestInjectNthMatchingOp(t *testing.T) {
	inj := NewInject(NewMemFS())
	inj.AddFault(Fault{Op: OpWrite, After: 1, Count: 1, Err: ErrNoSpace})
	f, err := inj.OpenFile("/j", os.O_CREATE|os.O_WRONLY|os.O_APPEND)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("a")); err != nil {
		t.Fatalf("first write = %v, want nil", err)
	}
	if _, err := f.Write([]byte("b")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("second write = %v, want ENOSPC", err)
	}
	if _, err := f.Write([]byte("c")); err != nil {
		t.Fatalf("third write = %v, want nil (Count=1 exhausted)", err)
	}
	data, _ := inj.ReadFile("/j")
	if string(data) != "ac" {
		t.Errorf("contents = %q, want %q", data, "ac")
	}
}

func TestInjectShortWrite(t *testing.T) {
	inj := NewInject(NewMemFS())
	inj.AddFault(Fault{Op: OpWrite, Count: 1, Err: ErrIO, Short: 3})
	f, _ := inj.OpenFile("/j", os.O_CREATE|os.O_WRONLY|os.O_APPEND)
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, ErrIO) {
		t.Fatalf("torn write = (%d, %v), want (3, EIO)", n, err)
	}
	data, _ := inj.ReadFile("/j")
	if string(data) != "abc" {
		t.Errorf("contents = %q, want %q (the torn prefix)", data, "abc")
	}
}

func TestInjectPathFilter(t *testing.T) {
	inj := NewInject(NewMemFS())
	inj.AddFault(Fault{Op: OpWrite, Path: "journal", Err: ErrIO})
	jf, _ := inj.OpenFile("/store/journal.cpj", os.O_CREATE|os.O_WRONLY)
	of, _ := inj.OpenFile("/store/other.cpj", os.O_CREATE|os.O_WRONLY)
	if _, err := jf.Write([]byte("x")); !errors.Is(err, ErrIO) {
		t.Errorf("journal write = %v, want EIO", err)
	}
	if _, err := of.Write([]byte("x")); err != nil {
		t.Errorf("other write = %v, want nil", err)
	}
}

func TestInjectCrashFault(t *testing.T) {
	inj := NewInject(NewMemFS())
	inj.AddFault(Fault{Op: OpSync, Count: 1, Err: ErrIO, Crash: true})
	f, _ := inj.OpenFile("/j", os.O_CREATE|os.O_WRONLY)
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrIO) {
		t.Fatalf("sync = %v, want EIO", err)
	}
	if !inj.Crashed() {
		t.Fatal("not crashed after Crash fault fired")
	}
	if _, err := f.Write([]byte("y")); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash write = %v, want ErrCrashed", err)
	}
	if _, err := inj.OpenFile("/k", os.O_CREATE|os.O_WRONLY); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash open = %v, want ErrCrashed", err)
	}
	inj.Lift()
	if _, err := f.Write([]byte("z")); err != nil {
		t.Errorf("post-Lift write = %v, want nil", err)
	}
}

func TestInjectCrashAtEveryOp(t *testing.T) {
	// The counting pass measures the op space; every crash index must
	// then stop the workload at exactly that op.
	workload := func(fsys FS) error {
		if err := fsys.MkdirAll("/d"); err != nil {
			return err
		}
		f, err := fsys.OpenFile("/d/f", os.O_CREATE|os.O_WRONLY|os.O_APPEND)
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte("hello")); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
		return f.Close()
	}
	counter := NewInject(NewMemFS())
	if err := workload(counter); err != nil {
		t.Fatal(err)
	}
	total := counter.Ops()
	if total != 5 {
		t.Fatalf("workload ops = %d, want 5", total)
	}
	for k := 1; k <= total; k++ {
		inj := NewInject(NewMemFS())
		inj.CrashAt(k)
		if err := workload(inj); err == nil {
			t.Errorf("crash at op %d: workload succeeded", k)
		}
		if !inj.Crashed() {
			t.Errorf("crash at op %d: not crashed", k)
		}
	}
}

func TestInjectOpsCounts(t *testing.T) {
	inj := NewInject(NewMemFS())
	_ = inj.MkdirAll("/d")
	f, _ := inj.OpenFile("/d/f", os.O_CREATE|os.O_WRONLY)
	_, _ = f.Write([]byte("x"))
	_ = f.Sync()
	_ = f.Close()
	_, _ = inj.Size("/d/f")
	_, _ = inj.ReadFile("/d/f")
	if got := inj.Ops(); got != 7 {
		t.Errorf("Ops = %d, want 7", got)
	}
}
