// Package faultfs is the filesystem seam under the durability layer:
// a narrow interface covering exactly the operations internal/journal
// performs, a passthrough OS implementation (the production default),
// an in-memory implementation for fast deterministic tests, and a
// fault injector that can fail the Nth matching operation with a chosen
// error, produce short (torn) writes, and simulate a whole-machine
// crash after which every operation fails.
//
// The seam exists so crash-safety claims can be tested systematically
// instead of anecdotally: a torture test can run a workload once to
// count the filesystem operations it performs, then re-run it with a
// crash injected at every operation index in turn and assert that
// recovery always restores a consistent prefix of the workload.
package faultfs

// FS is the set of filesystem operations the journal uses. All paths
// are plain OS paths. Implementations must be safe for concurrent use.
type FS interface {
	// MkdirAll creates the directory (and parents) if missing.
	MkdirAll(dir string) error
	// Remove deletes the named file; removing a missing file is an
	// error (fs.ErrNotExist).
	Remove(name string) error
	// ReadFile returns the file's contents (fs.ErrNotExist if absent).
	ReadFile(name string) ([]byte, error)
	// Size returns the file's length in bytes (fs.ErrNotExist if
	// absent).
	Size(name string) (int64, error)
	// Truncate cuts the named file to the given length.
	Truncate(name string, size int64) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// SyncDir fsyncs the directory so a rename within it is durable.
	SyncDir(dir string) error
	// OpenFile opens the named file with os.OpenFile semantics for
	// flag (O_CREATE, O_WRONLY, O_APPEND, O_TRUNC).
	OpenFile(name string, flag int) (File, error)
}

// File is an open file handle.
type File interface {
	// Write appends or writes at the current position, like
	// (*os.File).Write.
	Write(p []byte) (int, error)
	// Sync flushes the file to stable storage.
	Sync() error
	// Truncate cuts the file to the given length. Writes on a handle
	// opened with O_APPEND continue at the new end.
	Truncate(size int64) error
	// Close releases the handle.
	Close() error
}

// Op names a filesystem operation class for fault matching.
type Op string

// The operation classes, one per FS/File method.
const (
	OpMkdirAll Op = "mkdirall"
	OpRemove   Op = "remove"
	OpReadFile Op = "readfile"
	OpSize     Op = "size"
	OpTruncate Op = "truncate" // both FS.Truncate and File.Truncate
	OpRename   Op = "rename"
	OpSyncDir  Op = "syncdir"
	OpOpen     Op = "open"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpClose    Op = "close"
)
