package faultfs

import "os"

// OS is the passthrough implementation over the real filesystem — the
// production default. The zero value is ready to use.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// ReadFile implements FS.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Size implements FS.
func (OS) Size(name string) (int64, error) {
	st, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Truncate implements FS.
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// SyncDir implements FS.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// OpenFile implements FS.
func (OS) OpenFile(name string, flag int) (File, error) {
	f, err := os.OpenFile(name, flag, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}
