package faultfs

import (
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
)

// ErrCrashed is the error every operation returns after a simulated
// crash: the "machine" is off, nothing works until the store is
// reopened on a fresh FS over the same state.
var ErrCrashed = errors.New("faultfs: simulated crash")

// ErrInjected is the default error of a Fault with no Err set.
var ErrInjected = errors.New("faultfs: injected fault")

// Common injectable errnos, re-exported so tests do not need to import
// syscall.
var (
	// ErrNoSpace is ENOSPC, the disk-full error.
	ErrNoSpace error = syscall.ENOSPC
	// ErrIO is EIO, the generic device error.
	ErrIO error = syscall.EIO
)

// Fault describes one injected failure rule.
type Fault struct {
	// Op restricts the rule to one operation class ("" matches any).
	Op Op
	// Path, when non-empty, restricts the rule to operations whose
	// file's base name contains it (e.g. "journal").
	Path string
	// After skips the first After matching operations before firing.
	After int
	// Count bounds how many times the rule fires; 0 means every match
	// after After.
	Count int
	// Err is the returned error (ErrInjected if nil).
	Err error
	// Short, for write operations, is the number of bytes actually
	// written before the error — a torn write. 0 writes nothing.
	Short int
	// Crash, when set, simulates a machine crash once the rule fires:
	// the faulted operation fails and every later operation returns
	// ErrCrashed.
	Crash bool

	seen  int
	fired int
}

// Inject wraps an FS and fails operations according to registered
// Fault rules and the CrashAt schedule. With no rules it is a pure
// passthrough that counts operations, which is how a torture test
// measures the op-index space to crash over. It is safe for
// concurrent use.
type Inject struct {
	inner FS

	mu      sync.Mutex
	ops     int
	crashAt int
	crashed bool
	faults  []*Fault
}

// NewInject wraps inner with an initially fault-free injector.
func NewInject(inner FS) *Inject {
	return &Inject{inner: inner}
}

// AddFault registers a failure rule.
func (i *Inject) AddFault(f Fault) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.faults = append(i.faults, &f)
}

// Lift removes every failure rule and clears the crashed state, as if
// the faulty device had been replaced. The operation counter keeps
// running.
func (i *Inject) Lift() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.faults = nil
	i.crashed = false
	i.crashAt = 0
}

// CrashAt schedules a simulated crash at the nth operation (1-based)
// counted from now: that operation fails — a write tears, persisting
// only a deterministic prefix of its bytes — and every later operation
// returns ErrCrashed. n <= 0 cancels the schedule.
func (i *Inject) CrashAt(n int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if n <= 0 {
		i.crashAt = 0
		return
	}
	i.crashAt = i.ops + n
}

// Crashed reports whether the simulated crash has happened.
func (i *Inject) Crashed() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.crashed
}

// Ops returns how many operations have been attempted (including
// failed and post-crash ones).
func (i *Inject) Ops() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.ops
}

// check advances the op counter and decides the fate of one operation.
// For writes, writeLen is the intended length; the returned short is
// how many bytes to write before failing (only meaningful when err is
// non-nil).
func (i *Inject) check(op Op, path string, writeLen int) (short int, err error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.ops++
	if i.crashed {
		return 0, ErrCrashed
	}
	if i.crashAt > 0 && i.ops >= i.crashAt {
		i.crashed = true
		// Tear the crashing write deterministically: the op index picks
		// how much of the buffer "reached the disk", anywhere from none
		// of it to all of it (all-of-it models a crash after the write
		// but before the fsync acknowledged it).
		return (i.ops * 7919) % (writeLen + 1), ErrCrashed
	}
	for _, f := range i.faults {
		if f.Op != "" && f.Op != op {
			continue
		}
		if f.Path != "" && !strings.Contains(filepath.Base(path), f.Path) {
			continue
		}
		f.seen++
		if f.seen <= f.After {
			continue
		}
		if f.Count > 0 && f.fired >= f.Count {
			continue
		}
		f.fired++
		if f.Crash {
			i.crashed = true
		}
		err := f.Err
		if err == nil {
			err = ErrInjected
		}
		return f.Short, err
	}
	return 0, nil
}

// MkdirAll implements FS.
func (i *Inject) MkdirAll(dir string) error {
	if _, err := i.check(OpMkdirAll, dir, 0); err != nil {
		return err
	}
	return i.inner.MkdirAll(dir)
}

// Remove implements FS.
func (i *Inject) Remove(name string) error {
	if _, err := i.check(OpRemove, name, 0); err != nil {
		return err
	}
	return i.inner.Remove(name)
}

// ReadFile implements FS.
func (i *Inject) ReadFile(name string) ([]byte, error) {
	if _, err := i.check(OpReadFile, name, 0); err != nil {
		return nil, err
	}
	return i.inner.ReadFile(name)
}

// Size implements FS.
func (i *Inject) Size(name string) (int64, error) {
	if _, err := i.check(OpSize, name, 0); err != nil {
		return 0, err
	}
	return i.inner.Size(name)
}

// Truncate implements FS.
func (i *Inject) Truncate(name string, size int64) error {
	if _, err := i.check(OpTruncate, name, 0); err != nil {
		return err
	}
	return i.inner.Truncate(name, size)
}

// Rename implements FS.
func (i *Inject) Rename(oldpath, newpath string) error {
	if _, err := i.check(OpRename, oldpath, 0); err != nil {
		return err
	}
	return i.inner.Rename(oldpath, newpath)
}

// SyncDir implements FS.
func (i *Inject) SyncDir(dir string) error {
	if _, err := i.check(OpSyncDir, dir, 0); err != nil {
		return err
	}
	return i.inner.SyncDir(dir)
}

// OpenFile implements FS.
func (i *Inject) OpenFile(name string, flag int) (File, error) {
	if _, err := i.check(OpOpen, name, 0); err != nil {
		return nil, err
	}
	f, err := i.inner.OpenFile(name, flag)
	if err != nil {
		return nil, err
	}
	return &injHandle{inj: i, inner: f, name: name}, nil
}

// injHandle wraps an open file so writes, syncs, truncates, and closes
// pass through the injector.
type injHandle struct {
	inj   *Inject
	inner File
	name  string
}

// Write implements File; an injected failure with Short > 0 tears the
// write, persisting only a prefix.
func (h *injHandle) Write(p []byte) (int, error) {
	short, err := h.inj.check(OpWrite, h.name, len(p))
	if err != nil {
		n := 0
		if short > 0 {
			if short > len(p) {
				short = len(p)
			}
			n, _ = h.inner.Write(p[:short])
		}
		return n, err
	}
	return h.inner.Write(p)
}

// Sync implements File.
func (h *injHandle) Sync() error {
	if _, err := h.inj.check(OpSync, h.name, 0); err != nil {
		return err
	}
	return h.inner.Sync()
}

// Truncate implements File.
func (h *injHandle) Truncate(size int64) error {
	if _, err := h.inj.check(OpTruncate, h.name, 0); err != nil {
		return err
	}
	return h.inner.Truncate(size)
}

// Close implements File. Close is never failed by fault rules — the
// journal treats close errors as unrecoverable, and no real filesystem
// fails close without a preceding write/sync error — but it still
// counts toward, and can trigger, the CrashAt schedule.
func (h *injHandle) Close() error {
	h.inj.mu.Lock()
	h.inj.ops++
	if h.inj.crashAt > 0 && h.inj.ops >= h.inj.crashAt {
		h.inj.crashed = true
	}
	crashed := h.inj.crashed
	h.inj.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return h.inner.Close()
}
