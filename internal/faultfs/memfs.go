package faultfs

import (
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// MemFS is an in-memory FS with os-like semantics for the operations
// the journal uses. It exists so crash-consistency torture tests can
// run thousands of simulated crash/recover cycles without touching the
// disk; writes apply immediately (Sync is a no-op), which models a
// filesystem that persists exactly what was written when the simulated
// crash cuts power.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	dirs  map[string]bool
}

type memFile struct {
	data []byte
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile), dirs: make(map[string]bool)}
}

func memPath(name string) string { return filepath.Clean(name) }

// MkdirAll implements FS.
func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[memPath(dir)] = true
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := memPath(name)
	if _, ok := m.files[p]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, p)
	return nil
}

// ReadFile implements FS.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[memPath(name)]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out, nil
}

// Size implements FS.
func (m *MemFS) Size(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[memPath(name)]
	if !ok {
		return 0, &fs.PathError{Op: "stat", Path: name, Err: fs.ErrNotExist}
	}
	return int64(len(f.data)), nil
}

// Truncate implements FS.
func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[memPath(name)]
	if !ok {
		return &fs.PathError{Op: "truncate", Path: name, Err: fs.ErrNotExist}
	}
	return f.truncate(size)
}

func (f *memFile) truncate(size int64) error {
	if size < 0 {
		return fs.ErrInvalid
	}
	if int64(len(f.data)) > size {
		f.data = f.data[:size]
	} else {
		f.data = append(f.data, make([]byte, size-int64(len(f.data)))...)
	}
	return nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	op, np := memPath(oldpath), memPath(newpath)
	f, ok := m.files[op]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	delete(m.files, op)
	m.files[np] = f
	return nil
}

// SyncDir implements FS: a no-op, everything is already "durable".
func (m *MemFS) SyncDir(dir string) error { return nil }

// OpenFile implements FS.
func (m *MemFS) OpenFile(name string, flag int) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := memPath(name)
	f, ok := m.files[p]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
		}
		f = &memFile{}
		m.files[p] = f
	} else if flag&os.O_TRUNC != 0 {
		f.data = nil
	}
	return &memHandle{fs: m, f: f, appendMode: flag&os.O_APPEND != 0, pos: 0}, nil
}

// memHandle is an open MemFS file.
type memHandle struct {
	fs         *MemFS
	f          *memFile
	appendMode bool
	pos        int64
	closed     bool
}

// Write implements File.
func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if h.appendMode {
		h.pos = int64(len(h.f.data))
	}
	if grow := h.pos + int64(len(p)) - int64(len(h.f.data)); grow > 0 {
		h.f.data = append(h.f.data, make([]byte, grow)...)
	}
	copy(h.f.data[h.pos:], p)
	h.pos += int64(len(p))
	return len(p), nil
}

// Sync implements File: a no-op.
func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	return nil
}

// Truncate implements File.
func (h *memHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	return h.f.truncate(size)
}

// Close implements File.
func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	h.closed = true
	return nil
}
