// Package query implements contextual preference queries (Section 4 of
// "Adding Context to Preferences", ICDE 2007): queries enhanced with
// extended context descriptors, context resolution against a preference
// store, and the Rank_CS algorithm (Algorithm 2) that annotates the
// tuples of the underlying relation with interest scores.
package query

import (
	"context"
	"fmt"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/distance"
	"contextpref/internal/profiletree"
	"contextpref/internal/relation"
	"contextpref/internal/tracing"
)

// Store is a preference store capable of context resolution: both the
// profile tree and the sequential baseline satisfy it.
type Store interface {
	// Env returns the store's context environment.
	Env() *ctxmodel.Environment
	// Resolve returns the best-matching candidate for the state under
	// the metric, the number of cells accessed, and whether any stored
	// state covers the searched one.
	Resolve(s ctxmodel.State, m distance.Metric) (profiletree.Candidate, int, bool, error)
	// ResolveCtx is Resolve with cooperative cancellation: the
	// resolution scan aborts with a wrapped ctx.Err() once ctx is done.
	ResolveCtx(ctx context.Context, s ctxmodel.State, m distance.Metric) (profiletree.Candidate, int, bool, error)
}

var (
	_ Store = (*profiletree.Tree)(nil)
	_ Store = (*profiletree.Sequential)(nil)
)

// Contextual is a contextual query CQ (Def. 9): a base query over the
// relation (a conjunctive selection, possibly empty) enhanced with an
// extended context descriptor.
type Contextual struct {
	// Ecod is the explicit context of the query. When empty, the
	// query's implicit context — the current state passed to Execute —
	// is used instead.
	Ecod ctxmodel.ExtendedDescriptor
	// Selection is the base selection σ of the underlying query; tuples
	// failing it are never returned.
	Selection []relation.Predicate
	// TopK limits the ranked result (0 = unlimited). Per the paper's
	// usability study, ties with the k-th score are included.
	TopK int
}

// Resolution records how one context state of the query was resolved.
type Resolution struct {
	// Query is the searched context state.
	Query ctxmodel.State
	// Match is the best-matching stored candidate (zero if !Found).
	Match profiletree.Candidate
	// Found reports whether any stored state covered the query state.
	Found bool
	// Exact reports whether the match was exact (distance 0 and equal
	// states).
	Exact bool
	// Accesses is the number of store cells examined.
	Accesses int
}

// Result is the outcome of executing a contextual query.
type Result struct {
	// Tuples is the ranked answer.
	Tuples []relation.ScoredTuple
	// Resolutions describe the context resolution per query state, in
	// the order the extended descriptor produced them.
	Resolutions []Resolution
	// Accesses is the total number of store cells examined.
	Accesses int
	// Contextual is false when the query fell back to non-contextual
	// execution because no preference matched (Section 4.2).
	Contextual bool
}

// Engine executes contextual queries against a preference store and a
// relation.
type Engine struct {
	store    Store
	rel      *relation.Relation
	metric   distance.Metric
	combiner relation.Combiner
}

// NewEngine wires a store, a relation, a distance metric and a score
// combiner into a query engine.
func NewEngine(store Store, rel *relation.Relation, m distance.Metric, c relation.Combiner) (*Engine, error) {
	if store == nil {
		return nil, fmt.Errorf("query: nil store")
	}
	if rel == nil {
		return nil, fmt.Errorf("query: nil relation")
	}
	if m == nil {
		return nil, fmt.Errorf("query: nil metric")
	}
	return &Engine{store: store, rel: rel, metric: m, combiner: c}, nil
}

// Store returns the engine's preference store.
func (en *Engine) Store() Store { return en.store }

// Relation returns the engine's relation.
func (en *Engine) Relation() *relation.Relation { return en.rel }

// Metric returns the engine's distance metric.
func (en *Engine) Metric() distance.Metric { return en.metric }

// QueryStates determines the context states of a contextual query: the
// expansion of its extended descriptor if present, otherwise the
// current (implicit) state. A nil current state with an empty
// descriptor yields no states — the query is non-contextual.
func (en *Engine) QueryStates(cq Contextual, current ctxmodel.State) ([]ctxmodel.State, error) {
	if len(cq.Ecod) > 0 {
		return cq.Ecod.Context(en.store.Env())
	}
	if current == nil {
		return nil, nil
	}
	if err := en.store.Env().Validate(current); err != nil {
		return nil, err
	}
	return []ctxmodel.State{current.Clone()}, nil
}

// Execute runs the contextual query: it resolves every query state
// against the store (Search_CS via Store.Resolve), turns the matched
// leaf entries into scored selections over the relation (Rank_CS), and
// ranks the union after combining duplicate-tuple scores. If no state
// resolves, the query executes as a plain selection with no scores, as
// Section 4.2 prescribes.
func (en *Engine) Execute(cq Contextual, current ctxmodel.State) (*Result, error) {
	return en.ExecuteCtx(context.Background(), cq, current)
}

// ExecuteCtx is Execute with cooperative cancellation: ctx is threaded
// into every context resolution (Store.ResolveCtx) and every relation
// scan (Relation.SelectCtx), and consulted between query states, so a
// server deadline or a departed client stops a multi-state Rank_CS
// evaluation at the next check instead of running it to completion. The
// returned error wraps ctx.Err() and is errors.Is-matchable against
// context.Canceled and context.DeadlineExceeded.
func (en *Engine) ExecuteCtx(ctx context.Context, cq Contextual, current ctxmodel.State) (*Result, error) {
	ctx, sp := tracing.Start(ctx, "query.execute")
	res, err := en.executeCtx(ctx, cq, current)
	sp.Fail(err)
	if err == nil {
		sp.SetInt("states", int64(len(res.Resolutions)))
		sp.SetInt("tuples", int64(len(res.Tuples)))
		sp.SetInt("accesses", int64(res.Accesses))
		sp.SetBool("contextual", res.Contextual)
	}
	sp.End()
	return res, err
}

// executeCtx is the ExecuteCtx body, split out so the query.execute
// span can annotate the result on the way out.
//
//cpvet:scanloop
func (en *Engine) executeCtx(ctx context.Context, cq Contextual, current ctxmodel.State) (*Result, error) {
	states, err := en.QueryStates(cq, current)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	rs := relation.NewResultSet(en.rel)
	matched := false
	for _, s := range states {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("query: evaluation stopped: %w", err)
		}
		cand, accesses, found, err := en.store.ResolveCtx(ctx, s, en.metric)
		res.Accesses += accesses
		if err != nil {
			return nil, err
		}
		r := Resolution{Query: s, Match: cand, Found: found, Accesses: accesses}
		if found {
			matched = true
			r.Exact = cand.Distance == 0 && cand.State.Equal(s)
			for _, leaf := range cand.Entries {
				preds := append([]relation.Predicate{leaf.Clause.Predicate()}, cq.Selection...)
				idxs, err := en.rel.SelectCtx(ctx, preds...)
				if err != nil {
					return nil, err
				}
				for _, idx := range idxs {
					rs.Add(idx, leaf.Score)
				}
			}
		}
		res.Resolutions = append(res.Resolutions, r)
	}
	if !matched {
		// Non-contextual fallback: plain selection, unranked.
		idxs, err := en.rel.SelectCtx(ctx, cq.Selection...)
		if err != nil {
			return nil, err
		}
		for _, idx := range idxs {
			res.Tuples = append(res.Tuples, relation.ScoredTuple{Index: idx, Tuple: en.rel.Tuple(idx)})
		}
		if cq.TopK > 0 && len(res.Tuples) > cq.TopK {
			res.Tuples = res.Tuples[:cq.TopK]
		}
		return res, nil
	}
	res.Contextual = true
	if cq.TopK > 0 {
		res.Tuples = rs.Top(cq.TopK, en.combiner)
	} else {
		res.Tuples = rs.Ranked(en.combiner)
	}
	return res, nil
}
