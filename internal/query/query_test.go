package query

import (
	"testing"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/distance"
	"contextpref/internal/preference"
	"contextpref/internal/profiletree"
	"contextpref/internal/relation"
)

func env(t *testing.T) *ctxmodel.Environment {
	t.Helper()
	e, err := ctxmodel.ReferenceEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func poiRelation(t *testing.T) *relation.Relation {
	t.Helper()
	s, err := relation.NewSchema("points_of_interest",
		relation.Column{Name: "pid", Kind: relation.KindInt},
		relation.Column{Name: "name", Kind: relation.KindString},
		relation.Column{Name: "type", Kind: relation.KindString},
		relation.Column{Name: "open_air", Kind: relation.KindBool},
	)
	if err != nil {
		t.Fatal(err)
	}
	r := relation.New(s)
	rows := [][]relation.Value{
		{relation.I(1), relation.S("Acropolis"), relation.S("monument"), relation.B(true)},
		{relation.I(2), relation.S("Benaki Museum"), relation.S("museum"), relation.B(false)},
		{relation.I(3), relation.S("Plaka Brewery"), relation.S("brewery"), relation.B(false)},
		{relation.I(4), relation.S("Mikro Cafe"), relation.S("cafeteria"), relation.B(true)},
		{relation.I(5), relation.S("City Zoo"), relation.S("zoo"), relation.B(true)},
	}
	for _, row := range rows {
		if _, err := r.Insert(row...); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func clause(attr, val string) preference.Clause {
	return preference.Clause{Attr: attr, Op: relation.OpEq, Val: relation.S(val)}
}

func loadedTree(t *testing.T, e *ctxmodel.Environment) *profiletree.Tree {
	t.Helper()
	tr, err := profiletree.New(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	prefs := []preference.Preference{
		preference.MustNew(
			ctxmodel.MustDescriptor(ctxmodel.Eq("location", "Plaka"), ctxmodel.Eq("temperature", "warm")),
			clause("name", "Acropolis"), 0.8),
		preference.MustNew(
			ctxmodel.MustDescriptor(ctxmodel.Eq("accompanying_people", "friends")),
			clause("type", "brewery"), 0.9),
		preference.MustNew(
			ctxmodel.MustDescriptor(ctxmodel.Eq("location", "Athens")),
			clause("type", "museum"), 0.6),
		preference.MustNew(
			ctxmodel.MustDescriptor(ctxmodel.Eq("temperature", "good")),
			clause("type", "zoo"), 0.4),
	}
	for _, p := range prefs {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func engine(t *testing.T) (*ctxmodel.Environment, *Engine) {
	t.Helper()
	e := env(t)
	en, err := NewEngine(loadedTree(t, e), poiRelation(t), distance.Hierarchy{}, relation.CombineMax)
	if err != nil {
		t.Fatal(err)
	}
	return e, en
}

func TestNewEngineValidation(t *testing.T) {
	e := env(t)
	tr := loadedTree(t, e)
	rel := poiRelation(t)
	if _, err := NewEngine(nil, rel, distance.Hierarchy{}, relation.CombineMax); err == nil {
		t.Error("nil store should fail")
	}
	if _, err := NewEngine(tr, nil, distance.Hierarchy{}, relation.CombineMax); err == nil {
		t.Error("nil relation should fail")
	}
	if _, err := NewEngine(tr, rel, nil, relation.CombineMax); err == nil {
		t.Error("nil metric should fail")
	}
	en, err := NewEngine(tr, rel, distance.Jaccard{}, relation.CombineAvg)
	if err != nil {
		t.Fatal(err)
	}
	if en.Store() != Store(tr) || en.Relation() != rel || en.Metric().Name() != "jaccard" {
		t.Error("accessors broken")
	}
}

func TestQueryStates(t *testing.T) {
	e, en := engine(t)
	// Explicit descriptor wins.
	cq := Contextual{Ecod: ctxmodel.ExtendedDescriptor{
		ctxmodel.MustDescriptor(ctxmodel.Eq("location", "Plaka"), ctxmodel.In("temperature", "warm", "hot")),
	}}
	cur, _ := e.NewState("Perama", "cold", "alone")
	states, err := en.QueryStates(cq, cur)
	if err != nil || len(states) != 2 {
		t.Fatalf("QueryStates = %v, %v", states, err)
	}
	// Implicit current context.
	states, err = en.QueryStates(Contextual{}, cur)
	if err != nil || len(states) != 1 || !states[0].Equal(cur) {
		t.Fatalf("implicit QueryStates = %v, %v", states, err)
	}
	// Neither → none.
	states, err = en.QueryStates(Contextual{}, nil)
	if err != nil || states != nil {
		t.Fatalf("no-context QueryStates = %v, %v", states, err)
	}
	// Invalid current state.
	if _, err := en.QueryStates(Contextual{}, ctxmodel.State{"bad"}); err == nil {
		t.Error("invalid current state should fail")
	}
	// Invalid descriptor.
	bad := Contextual{Ecod: ctxmodel.ExtendedDescriptor{ctxmodel.MustDescriptor(ctxmodel.Eq("location", "Atlantis"))}}
	if _, err := en.QueryStates(bad, nil); err == nil {
		t.Error("invalid descriptor should fail")
	}
}

func TestExecuteExactMatch(t *testing.T) {
	e, en := engine(t)
	// Current context exactly (Plaka, warm, all) — stored for pref 1.
	cur, _ := e.NewState("Plaka", "warm", "all")
	res, err := en.Execute(Contextual{}, cur)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contextual {
		t.Fatal("expected contextual execution")
	}
	if len(res.Resolutions) != 1 || !res.Resolutions[0].Found || !res.Resolutions[0].Exact {
		t.Fatalf("resolutions = %+v", res.Resolutions)
	}
	if len(res.Tuples) != 1 || res.Tuples[0].Tuple[1].Str() != "Acropolis" || res.Tuples[0].Score != 0.8 {
		t.Fatalf("tuples = %v", res.Tuples)
	}
	if res.Accesses <= 0 {
		t.Error("accesses not counted")
	}
}

func TestExecuteCoverMatch(t *testing.T) {
	e, en := engine(t)
	// (Plaka, warm, friends) is not stored; best cover is
	// (Plaka, warm, all) at hierarchy distance 1.
	cur, _ := e.NewState("Plaka", "warm", "friends")
	res, err := en.Execute(Contextual{}, cur)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Resolutions[0]
	if !r.Found || r.Exact {
		t.Fatalf("resolution = %+v", r)
	}
	if !r.Match.State.Equal(ctxmodel.State{"Plaka", "warm", "all"}) {
		t.Errorf("match = %v", r.Match.State)
	}
	if len(res.Tuples) != 1 || res.Tuples[0].Tuple[1].Str() != "Acropolis" {
		t.Errorf("tuples = %v", res.Tuples)
	}
}

func TestExecuteExploratoryQuery(t *testing.T) {
	e, en := engine(t)
	_ = e
	// "When I am in Athens with good weather": two composite
	// descriptors resolve to museum (0.6) and zoo (0.4).
	cq := Contextual{Ecod: ctxmodel.ExtendedDescriptor{
		ctxmodel.MustDescriptor(ctxmodel.Eq("location", "Athens")),
		ctxmodel.MustDescriptor(ctxmodel.Eq("temperature", "good")),
	}}
	res, err := en.Execute(cq, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Resolutions) != 2 {
		t.Fatalf("resolutions = %d", len(res.Resolutions))
	}
	if len(res.Tuples) != 2 {
		t.Fatalf("tuples = %v", res.Tuples)
	}
	if res.Tuples[0].Tuple[2].Str() != "museum" || res.Tuples[0].Score != 0.6 {
		t.Errorf("top tuple = %v score %v", res.Tuples[0].Tuple, res.Tuples[0].Score)
	}
	if res.Tuples[1].Tuple[2].Str() != "zoo" || res.Tuples[1].Score != 0.4 {
		t.Errorf("second tuple = %v score %v", res.Tuples[1].Tuple, res.Tuples[1].Score)
	}
}

func TestExecuteSelectionAndTopK(t *testing.T) {
	e, en := engine(t)
	cur, _ := e.NewState("Athens", "good", "friends")
	// Base selection restricts to open-air POIs; brewery/museum are
	// indoor so only the zoo survives.
	cq := Contextual{Selection: []relation.Predicate{{Col: "open_air", Op: relation.OpEq, Val: relation.B(true)}}}
	res, err := en.Execute(cq, cur)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Tuples {
		if !st.Tuple[3].Bool() {
			t.Errorf("selection leaked indoor tuple %v", st.Tuple)
		}
	}
	// TopK truncation. The best cover of (Athens, good, friends) is
	// (Athens, all, all) at hierarchy distance 2, whose entry is the
	// museum preference at 0.6.
	cq = Contextual{TopK: 1}
	res, err = en.Execute(cq, cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 {
		t.Fatalf("TopK tuples = %v", res.Tuples)
	}
	if res.Tuples[0].Score != 0.6 {
		t.Errorf("top score = %v, want 0.6 (museum)", res.Tuples[0].Score)
	}
	// Selection errors propagate.
	cq = Contextual{Selection: []relation.Predicate{{Col: "bogus", Op: relation.OpEq, Val: relation.S("x")}}}
	if _, err := en.Execute(cq, cur); err == nil {
		t.Error("bad selection should fail")
	}
}

func TestExecuteNonContextualFallback(t *testing.T) {
	e, en := engine(t)
	// (Perama, cold, alone): nothing in the profile covers it except…
	// actually (all,good,all) does not cover cold; brewery needs
	// friends; museum needs Athens. No match → plain query.
	cur, _ := e.NewState("Perama", "cold", "alone")
	res, err := en.Execute(Contextual{}, cur)
	if err != nil {
		t.Fatal(err)
	}
	if res.Contextual {
		t.Fatal("expected non-contextual fallback")
	}
	if len(res.Tuples) != 5 {
		t.Fatalf("fallback should return all tuples, got %d", len(res.Tuples))
	}
	for _, st := range res.Tuples {
		if st.Score != 0 {
			t.Errorf("fallback tuple has score %v", st.Score)
		}
	}
	// Fallback with TopK.
	res, err = en.Execute(Contextual{TopK: 2}, cur)
	if err != nil || len(res.Tuples) != 2 {
		t.Fatalf("fallback TopK = %v, %v", res.Tuples, err)
	}
	// Fallback with selection.
	res, err = en.Execute(Contextual{Selection: []relation.Predicate{{Col: "type", Op: relation.OpEq, Val: relation.S("zoo")}}}, cur)
	if err != nil || len(res.Tuples) != 1 {
		t.Fatalf("fallback selection = %v, %v", res.Tuples, err)
	}
	// No context at all behaves like a plain query too.
	res, err = en.Execute(Contextual{}, nil)
	if err != nil || res.Contextual || len(res.Tuples) != 5 {
		t.Fatalf("no-context execute = %+v, %v", res, err)
	}
}

func TestExecuteDuplicateCombining(t *testing.T) {
	e := env(t)
	tr, _ := profiletree.New(e, nil)
	// Two preferences whose clauses both select the brewery tuple.
	tr.Insert(preference.MustNew(
		ctxmodel.MustDescriptor(ctxmodel.Eq("accompanying_people", "friends")),
		clause("type", "brewery"), 0.9))
	tr.Insert(preference.MustNew(
		ctxmodel.MustDescriptor(ctxmodel.Eq("accompanying_people", "friends")),
		clause("name", "Plaka Brewery"), 0.5))
	rel := poiRelation(t)
	cur, _ := e.NewState("Plaka", "warm", "friends")

	enMax, _ := NewEngine(tr, rel, distance.Hierarchy{}, relation.CombineMax)
	res, err := enMax.Execute(Contextual{}, cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 1 || res.Tuples[0].Score != 0.9 {
		t.Fatalf("max combine = %v", res.Tuples)
	}
	enMin, _ := NewEngine(tr, rel, distance.Hierarchy{}, relation.CombineMin)
	res, _ = enMin.Execute(Contextual{}, cur)
	if res.Tuples[0].Score != 0.5 {
		t.Errorf("min combine = %v", res.Tuples[0].Score)
	}
	enAvg, _ := NewEngine(tr, rel, distance.Hierarchy{}, relation.CombineAvg)
	res, _ = enAvg.Execute(Contextual{}, cur)
	if res.Tuples[0].Score != 0.7 {
		t.Errorf("avg combine = %v", res.Tuples[0].Score)
	}
}

func TestEngineOverSequentialStore(t *testing.T) {
	e := env(t)
	sq, _ := profiletree.NewSequential(e)
	prefsTree := loadedTree(t, e)
	for _, p := range prefsTree.Paths() {
		_ = p
	}
	// Load the same preferences into the sequential store.
	prefs := []preference.Preference{
		preference.MustNew(
			ctxmodel.MustDescriptor(ctxmodel.Eq("location", "Plaka"), ctxmodel.Eq("temperature", "warm")),
			clause("name", "Acropolis"), 0.8),
		preference.MustNew(
			ctxmodel.MustDescriptor(ctxmodel.Eq("accompanying_people", "friends")),
			clause("type", "brewery"), 0.9),
	}
	for _, p := range prefs {
		if err := sq.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	en, err := NewEngine(sq, poiRelation(t), distance.Hierarchy{}, relation.CombineMax)
	if err != nil {
		t.Fatal(err)
	}
	cur, _ := e.NewState("Plaka", "warm", "friends")
	res, err := en.Execute(Contextual{}, cur)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contextual || len(res.Tuples) == 0 {
		t.Fatalf("sequential-store execution failed: %+v", res)
	}
}

func TestExecuteErrorPropagation(t *testing.T) {
	e, en := engine(t)
	_ = e
	// Bad extended descriptor.
	bad := Contextual{Ecod: ctxmodel.ExtendedDescriptor{ctxmodel.MustDescriptor(ctxmodel.Eq("location", "Atlantis"))}}
	if _, err := en.Execute(bad, nil); err == nil {
		t.Error("bad ecod should fail")
	}
	// Clause referencing a column absent from the relation.
	e2 := env(t)
	tr, _ := profiletree.New(e2, nil)
	tr.Insert(preference.MustNew(
		ctxmodel.MustDescriptor(ctxmodel.Eq("location", "Plaka")),
		clause("nonexistent", "x"), 0.5))
	en2, _ := NewEngine(tr, poiRelation(t), distance.Hierarchy{}, relation.CombineMax)
	cur, _ := e2.NewState("Plaka", "warm", "friends")
	if _, err := en2.Execute(Contextual{}, cur); err == nil {
		t.Error("clause over unknown column should fail")
	}
}
