package query

import (
	"math/rand"
	"testing"
	"testing/quick"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/dataset"
	"contextpref/internal/distance"
	"contextpref/internal/preference"
	"contextpref/internal/profiletree"
	"contextpref/internal/relation"
)

// randomPrefs generates conflict-free preferences over the reference
// environment (score derived from the clause value).
func randomPrefs(e *ctxmodel.Environment, r *rand.Rand, n int) []preference.Preference {
	types := dataset.POITypes
	var out []preference.Preference
	for len(out) < n {
		var pds []ctxmodel.ParamDescriptor
		for i := 0; i < e.NumParams(); i++ {
			if r.Intn(2) == 0 {
				continue
			}
			ed := e.Param(i).Hierarchy().ExtendedDomain()
			pds = append(pds, ctxmodel.Eq(e.Param(i).Name(), ed[r.Intn(len(ed))]))
		}
		d, err := ctxmodel.NewDescriptor(pds...)
		if err != nil {
			continue
		}
		vi := r.Intn(len(types))
		p, err := preference.New(d,
			preference.Clause{Attr: "type", Op: relation.OpEq, Val: relation.S(types[vi])},
			0.1+0.08*float64(vi))
		if err != nil {
			continue
		}
		out = append(out, p)
	}
	return out
}

// Property: the query engine produces identical ranked answers whether
// the store is the profile tree or the sequential baseline — the index
// is a pure optimization.
func TestQuickEngineStoreEquivalence(t *testing.T) {
	e, err := ctxmodel.ReferenceEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	schema, _ := relation.NewSchema("poi",
		relation.Column{Name: "name", Kind: relation.KindString},
		relation.Column{Name: "type", Kind: relation.KindString},
	)
	rel := relation.New(schema)
	for i, tp := range dataset.POITypes {
		for k := 0; k < 3; k++ {
			rel.Insert(relation.S(string(rune('A'+i))+string(rune('0'+k))), relation.S(tp))
		}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prefs := randomPrefs(e, r, 1+r.Intn(25))
		tr, _ := profiletree.New(e, nil)
		sq, _ := profiletree.NewSequential(e)
		for _, p := range prefs {
			e1, e2 := tr.Insert(p), sq.Insert(p)
			if (e1 == nil) != (e2 == nil) {
				return false
			}
		}
		for _, m := range distance.All() {
			enTree, err1 := NewEngine(tr, rel, m, relation.CombineMax)
			enSeq, err2 := NewEngine(sq, rel, m, relation.CombineMax)
			if err1 != nil || err2 != nil {
				return false
			}
			for q := 0; q < 6; q++ {
				cur := make(ctxmodel.State, e.NumParams())
				for i := range cur {
					ed := e.Param(i).Hierarchy().ExtendedDomain()
					cur[i] = ed[r.Intn(len(ed))]
				}
				a, err1 := enTree.Execute(Contextual{TopK: 10}, cur)
				b, err2 := enSeq.Execute(Contextual{TopK: 10}, cur)
				if err1 != nil || err2 != nil {
					return false
				}
				if a.Contextual != b.Contextual || len(a.Tuples) != len(b.Tuples) {
					return false
				}
				// Scores must agree pairwise; tuple identity can differ
				// only within exact score ties.
				for i := range a.Tuples {
					if a.Tuples[i].Score != b.Tuples[i].Score {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
