package journal

// This file is the journal's replication surface: the leader-side tap
// that observes every durably committed batch (OnAppend, TailSince)
// and the follower-side entry points that graft leader batches onto a
// local journal while preserving the leader's sequence numbers
// (AppendReplicated, InstallSnapshot). The record encoding on the wire
// is byte-for-byte the on-disk encoding — CRC-framed lines plus the
// batch commit marker — so the transport inherits the same torn-tail
// and corruption detection the disk format already has, and a
// follower's journal file is directly comparable to its leader's.
//
// Sequencing contract. The leader's sequence numbers are the
// replication stream's identity: a follower only ever appends a batch
// whose first sequence number is exactly its own next one, skips
// batches it already holds (reconnect replay is idempotent), and
// refuses gaps and straddles with ErrOutOfSync so the caller can fall
// back to a snapshot bootstrap. Because batches are written atomically
// under the same commit framing as local appends, a follower's
// recovered state is always a prefix of the leader's acked batches —
// the promotion safety argument rests on exactly this.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// ShipFunc observes one durably committed batch: the records' sequence
// numbers span [firstSeq, commitSeq) with the commit marker at
// commitSeq, and batch holds the exact bytes appended to the journal
// (record lines plus the commit line, newline-terminated). The slice
// is the observer's to keep. Called synchronously under the journal
// lock — implementations must not call back into the journal and
// should only hand the batch off (e.g. to per-follower send buffers).
type ShipFunc func(firstSeq, commitSeq uint64, batch []byte)

// OnAppend registers the batch observer (nil detaches). One observer
// is kept; the replication leader fans batches out from it.
func (j *Journal) OnAppend(fn ShipFunc) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.onAppend = fn
}

// LastSeq returns the newest committed sequence number (0 on a fresh
// store). It counts commit markers too, so it is exactly the value a
// follower acknowledges after applying the newest batch.
func (j *Journal) LastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextSeq - 1
}

// Batch is one committed batch of the replication stream.
type Batch struct {
	// FirstSeq is the first record's sequence number.
	FirstSeq uint64
	// CommitSeq is the commit marker's sequence number; the batch
	// holds CommitSeq-FirstSeq records.
	CommitSeq uint64
	// Data is the batch's exact journal encoding (record lines plus
	// the commit line, newline-terminated).
	Data []byte
}

// ErrOutOfSync reports a replicated batch that does not graft onto the
// local journal tail — a sequence gap or a batch straddling the local
// horizon. The follower must resynchronize (reconnect and accept a
// snapshot bootstrap); appending anything would corrupt the prefix
// property.
var ErrOutOfSync = errors.New("journal: replicated batch out of sync with local tail")

// TailSince reads the committed stream after afterSeq from the store,
// consistently under the append lock. When the journal alone still
// holds everything needed (afterSeq at or past the snapshot horizon),
// snapshot is nil and batches holds the batches with sequence numbers
// after afterSeq. When afterSeq predates the snapshot horizon — a cold
// follower, or one that fell behind a compaction — snapshot holds the
// snapshot file's rendering (install it first, see InstallSnapshot)
// and batches holds the full journal tail on top of it. lastSeq is the
// newest committed sequence number.
func (j *Journal) TailSince(afterSeq uint64) (snapshot []byte, batches []Batch, lastSeq uint64, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil, nil, 0, ErrClosed
	}
	snapData, err := j.fsys.ReadFile(filepath.Join(j.dir, snapshotFile))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, 0, fmt.Errorf("journal: reading snapshot for shipping: %w", err)
	}
	var snapSeq uint64
	if snapData != nil {
		if _, snapSeq, _, err = parseSnapshot(snapData); err != nil {
			return nil, nil, 0, err
		}
	}
	jData, err := j.fsys.ReadFile(j.path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, 0, fmt.Errorf("journal: reading journal for shipping: %w", err)
	}
	all := scanBatches(jData)
	lastSeq = j.nextSeq - 1
	if afterSeq >= snapSeq {
		var out []Batch
		aligned := true
		for _, b := range all {
			if b.CommitSeq <= afterSeq {
				continue
			}
			if b.FirstSeq <= afterSeq {
				aligned = false // afterSeq splits a batch: foreign follower
				break
			}
			out = append(out, b)
		}
		if aligned {
			return nil, out, lastSeq, nil
		}
	}
	// The follower is behind the snapshot horizon (or mis-aligned):
	// full bootstrap — snapshot plus the whole journal tail.
	return snapData, all, lastSeq, nil
}

// scanBatches tolerantly splits a journal file into its committed
// batches: comments and blank lines between batches are skipped, and
// scanning stops at the first torn or corrupt line, mirroring
// readJournal's recovery discipline.
//
//cpvet:deterministic
func scanBatches(data []byte) []Batch {
	var out []Batch
	var pendingFirst uint64
	var pendingCount int
	start := -1 // byte offset where the pending batch began
	off := 0
	for off < len(data) {
		// Index on the byte slice: a string conversion here would copy
		// the whole remaining file once per line, turning every
		// bootstrap scan quadratic.
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // unterminated final line: torn write
		}
		end := off + nl + 1
		line := strings.TrimRight(string(data[off:off+nl]), "\r")
		if strings.TrimSpace(line) == "" || strings.HasPrefix(line, "#") {
			if pendingCount > 0 {
				break // comment mid-batch cannot occur; treat as torn
			}
			off = end
			continue
		}
		r, seq, perr := parseRecord(line)
		if perr != nil {
			break
		}
		switch {
		case r.Op == opCommit:
			count, cerr := strconv.Atoi(r.Line)
			if cerr != nil || count != pendingCount || count == 0 {
				return out // mis-framed commit: keep the committed prefix
			}
			batch := make([]byte, end-start)
			copy(batch, data[start:end])
			out = append(out, Batch{FirstSeq: pendingFirst, CommitSeq: seq, Data: batch})
			pendingCount, start = 0, -1
		default:
			if pendingCount == 0 {
				pendingFirst, start = seq, off
			}
			pendingCount++
		}
		off = end
	}
	return out
}

// parseBatch strictly validates one wire batch: at least one record
// line, consecutive sequence numbers, a final commit marker whose
// count matches, CRC-checked payloads, and nothing else — no comments,
// no blank lines, newline-terminated. Returns the records (without the
// commit marker) and the batch's sequence span.
//
//cpvet:deterministic
func parseBatch(data []byte) (recs []Record, firstSeq, commitSeq uint64, err error) {
	if len(data) == 0 || data[len(data)-1] != '\n' {
		return nil, 0, 0, fmt.Errorf("journal: replicated batch not newline-terminated")
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	for i, line := range lines {
		r, seq, perr := parseRecord(line)
		if perr != nil {
			return nil, 0, 0, fmt.Errorf("journal: replicated batch line %d: %w", i+1, perr)
		}
		if i == 0 {
			firstSeq = seq
		} else if seq != firstSeq+uint64(i) {
			return nil, 0, 0, fmt.Errorf("journal: replicated batch line %d: sequence %d, want %d",
				i+1, seq, firstSeq+uint64(i))
		}
		if i == len(lines)-1 {
			if r.Op != opCommit {
				return nil, 0, 0, fmt.Errorf("journal: replicated batch missing commit marker")
			}
			count, cerr := strconv.Atoi(r.Line)
			if cerr != nil || count != len(recs) || count == 0 {
				return nil, 0, 0, fmt.Errorf("journal: replicated batch mis-framed commit %q over %d records",
					r.Line, len(recs))
			}
			commitSeq = seq
			return recs, firstSeq, commitSeq, nil
		}
		if r.Op == opCommit {
			return nil, 0, 0, fmt.Errorf("journal: replicated batch line %d: interior commit marker", i+1)
		}
		recs = append(recs, r)
	}
	return nil, 0, 0, fmt.Errorf("journal: empty replicated batch")
}

// AppendReplicated validates and durably appends one leader-shipped
// batch, preserving the leader's sequence numbers. A batch the journal
// already holds (its commit marker at or below the local tail) is
// skipped without touching the disk — reconnect replay is idempotent
// by sequence number. A batch that neither duplicates nor extends the
// tail fails with an error wrapping ErrOutOfSync and writes nothing.
// It returns the batch's records (nil for a skipped duplicate) for the
// caller to apply to its in-memory state, and the journal's new last
// sequence number.
func (j *Journal) AppendReplicated(batch []byte) ([]Record, uint64, error) {
	return j.AppendReplicatedCtx(context.Background(), batch)
}

// AppendReplicatedCtx is AppendReplicated carrying the follower's
// session context for span provenance (the durable write's fsyncs
// become journal.fsync child spans). The context does not cancel the
// write.
//
//cpvet:lockheld grafted batches share the append path's invariant: sequence-ordered durable writes require the fsync under j.mu
func (j *Journal) AppendReplicatedCtx(ctx context.Context, batch []byte) ([]Record, uint64, error) {
	recs, firstSeq, commitSeq, err := parseBatch(batch)
	if err != nil {
		return nil, 0, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil, 0, ErrClosed
	}
	if j.wedged != nil {
		return nil, 0, j.wedged
	}
	if commitSeq < j.nextSeq {
		return nil, j.nextSeq - 1, nil // full duplicate: already durable here
	}
	if firstSeq != j.nextSeq {
		return nil, 0, fmt.Errorf("%w: batch [%d,%d] against local tail %d",
			ErrOutOfSync, firstSeq, commitSeq, j.nextSeq-1)
	}
	var start time.Time
	if j.metrics != nil {
		start = time.Now()
	}
	if err := j.writeDurable(ctx, string(batch), start); err != nil {
		return nil, 0, err
	}
	j.nextSeq = commitSeq + 1
	j.size += int64(len(batch))
	if m := j.metrics; m != nil {
		m.AppendSeconds.ObserveSince(start)
		m.AppendBytes.Add(len(batch))
		m.AppendRecords.Add(len(recs))
		m.SizeBytes.Set(float64(j.size))
	}
	if j.onAppend != nil {
		// Chain replication: a promoted follower that is itself a
		// leader re-ships the batch downstream. Fresh copy, as in
		// Append, so the observer may retain it.
		j.onAppend(firstSeq, commitSeq, append([]byte(nil), batch...))
	}
	return recs, commitSeq, nil
}

// InstallSnapshot atomically replaces the local store with a
// leader-shipped snapshot rendering: the snapshot is validated, written
// with the same write-temp-rename-syncdir discipline as a local
// compaction, the journal restarts empty, and the journal adopts the
// snapshot's sequence horizon. It returns the snapshot's records so the
// caller can rebuild its in-memory state from scratch, and the adopted
// last sequence number. The rendering must carry a "!lastseq" line — a
// snapshot without a horizon cannot anchor the stream that follows it.
//
//cpvet:lockheld installing a snapshot atomically supersedes the local tail; appends racing the swap would write into a file about to be truncated
func (j *Journal) InstallSnapshot(data []byte) ([]Record, uint64, error) {
	recs, lastSeq, hasMeta, err := parseSnapshot(data)
	if err != nil {
		return nil, 0, err
	}
	if !hasMeta {
		return nil, 0, fmt.Errorf("journal: replicated snapshot has no %q line", strings.TrimSpace(metaPrefix))
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil, 0, ErrClosed
	}
	if j.wedged != nil {
		return nil, 0, j.wedged
	}
	tmp := filepath.Join(j.dir, snapshotTemp)
	if err := writeFileSync(j.fsys, tmp, string(data)); err != nil {
		return nil, 0, err
	}
	if err := j.fsys.Rename(tmp, filepath.Join(j.dir, snapshotFile)); err != nil {
		return nil, 0, fmt.Errorf("journal: snapshot rename: %w", err)
	}
	if err := syncDir(j.fsys, j.dir); err != nil {
		return nil, 0, err
	}
	// The snapshot owns everything up to lastSeq; local journal state
	// (whatever divergent or stale tail it held) is superseded.
	if err := j.f.Truncate(0); err != nil {
		return nil, 0, fmt.Errorf("journal: resetting after snapshot install: %w", err)
	}
	j.size = 0
	if _, err := j.f.Write([]byte(fileHeader + "\n")); err != nil {
		return nil, 0, fmt.Errorf("journal: resetting after snapshot install: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return nil, 0, fmt.Errorf("journal: fsync: %w", err)
	}
	j.size = int64(len(fileHeader) + 1)
	j.nextSeq = lastSeq + 1
	if m := j.metrics; m != nil {
		m.SnapshotBytes.Set(float64(len(data)))
		m.SizeBytes.Set(float64(j.size))
	}
	return recs, lastSeq, nil
}
