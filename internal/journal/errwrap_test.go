package journal

// Regression tests for the error-wrapping contract cpvet's errwrap
// analyzer enforces: wrapped causes must stay errors.Is-reachable
// through every journal failure chain, so callers can classify a
// wedged journal's root faults without parsing message text.

import (
	"errors"
	"testing"
	"time"

	"contextpref/internal/faultfs"
)

// TestWedgedErrorExposesCauses pins the %w chain of the wedged error:
// ErrWedged, the rollback failure, and the original append failure
// must all be errors.Is-matchable. (This chain used %v before PR 5,
// which flattened the causes to text.)
func TestWedgedErrorExposesCauses(t *testing.T) {
	inj, dir := memStore(t)
	j, _ := mustOpenFS(t, inj, dir, WithRetry(1, time.Microsecond))
	if err := j.Append(Record{Op: OpAdd, User: "u", Line: "[] => type = park : 0.4"}); err != nil {
		t.Fatal(err)
	}
	// Distinct sentinels for the two failures so the test can prove
	// each is individually reachable: the append write dies with
	// ENOSPC, the rollback truncate with EIO.
	inj.AddFault(faultfs.Fault{
		Op: faultfs.OpWrite, Path: "journal", Count: 1,
		Err: faultfs.ErrNoSpace, Short: 3,
	})
	inj.AddFault(faultfs.Fault{Op: faultfs.OpTruncate, Path: "journal", Count: 1, Err: faultfs.ErrIO})
	err := j.Append(Record{Op: OpAdd, User: "u", Line: "[] => type = zoo : 0.2"})
	if err == nil {
		t.Fatal("append with failed rollback succeeded, want wedge")
	}
	if !errors.Is(err, ErrWedged) {
		t.Errorf("errors.Is(err, ErrWedged) = false for %v", err)
	}
	if !errors.Is(err, faultfs.ErrIO) {
		t.Errorf("rollback cause lost: errors.Is(err, ErrIO) = false for %v", err)
	}
	if !errors.Is(err, faultfs.ErrNoSpace) {
		t.Errorf("append cause lost: errors.Is(err, ErrNoSpace) = false for %v", err)
	}
	j.Close()
}

// TestAppendErrorExposesCause: the ordinary (non-wedged) append
// failure chain also keeps its root cause reachable after the bounded
// retry is exhausted.
func TestAppendErrorExposesCause(t *testing.T) {
	inj, dir := memStore(t)
	j, _ := mustOpenFS(t, inj, dir, WithRetry(1, time.Microsecond))
	defer j.Close()
	inj.AddFault(faultfs.Fault{Op: faultfs.OpWrite, Path: "journal", Err: faultfs.ErrNoSpace})
	err := j.Append(Record{Op: OpAdd, User: "u", Line: "[] => type = park : 0.4"})
	if !errors.Is(err, faultfs.ErrNoSpace) {
		t.Errorf("errors.Is(err, ErrNoSpace) = false for %v", err)
	}
	inj.Lift()
}
