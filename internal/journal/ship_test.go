package journal

// Replication-surface coverage for the journal: the OnAppend tap, the
// graft rules of AppendReplicated (extend / duplicate-skip / gap),
// TailSince's incremental-versus-bootstrap decision, snapshot
// installation, and the jittered retry backoff satellite.

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"contextpref/internal/faultfs"
)

func shipRecs(n int, tag string) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Op: OpAdd, User: "alice", Line: tag + "-" + string(rune('a'+i))}
	}
	return recs
}

func TestOnAppendObservesBatches(t *testing.T) {
	fsys := faultfs.NewMemFS()
	j, _, err := OpenFS(fsys, "store")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	type shipped struct {
		first, commit uint64
		data          []byte
	}
	var got []shipped
	j.OnAppend(func(first, commit uint64, batch []byte) {
		got = append(got, shipped{first, commit, batch})
	})
	if err := j.Append(shipRecs(2, "b1")...); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(shipRecs(3, "b2")...); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("observer saw %d batches, want 2", len(got))
	}
	// Batch 1: records at seq 1,2, commit at 3. Batch 2: 4,5,6, commit 7.
	if got[0].first != 1 || got[0].commit != 3 {
		t.Fatalf("batch 1 span [%d,%d], want [1,3]", got[0].first, got[0].commit)
	}
	if got[1].first != 4 || got[1].commit != 7 {
		t.Fatalf("batch 2 span [%d,%d], want [4,7]", got[1].first, got[1].commit)
	}
	if j.LastSeq() != 7 {
		t.Fatalf("LastSeq = %d, want 7", j.LastSeq())
	}
	// The shipped bytes are exactly the journal's own encoding: the
	// concatenation must equal the journal file minus its header.
	data, err := fsys.ReadFile(filepath.Join("store", journalFile))
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte(nil), got[0].data...), got[1].data...)
	if !bytes.HasSuffix(data, want) {
		t.Fatalf("journal file does not end with the shipped bytes\nfile:\n%s\nshipped:\n%s", data, want)
	}
	// Each shipped batch must round-trip through the strict validator.
	for i, s := range got {
		recs, first, commit, perr := parseBatch(s.data)
		if perr != nil {
			t.Fatalf("batch %d does not re-parse: %v", i+1, perr)
		}
		if first != s.first || commit != s.commit {
			t.Fatalf("batch %d re-parses to span [%d,%d], shipped [%d,%d]", i+1, first, commit, s.first, s.commit)
		}
		if len(recs) != int(commit-first) {
			t.Fatalf("batch %d re-parses to %d records, want %d", i+1, len(recs), commit-first)
		}
	}
}

func TestAppendReplicatedGraftRules(t *testing.T) {
	// Leader produces batches; follower grafts them.
	lfs := faultfs.NewMemFS()
	leader, _, err := OpenFS(lfs, "leader")
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	var batches []Batch
	leader.OnAppend(func(first, commit uint64, data []byte) {
		batches = append(batches, Batch{FirstSeq: first, CommitSeq: commit, Data: data})
	})
	for i := 0; i < 3; i++ {
		if err := leader.Append(shipRecs(2, "w")...); err != nil {
			t.Fatal(err)
		}
	}

	ffs := faultfs.NewMemFS()
	follower, _, err := OpenFS(ffs, "follower")
	if err != nil {
		t.Fatal(err)
	}

	// Gap: batch 2 before batch 1 must refuse with ErrOutOfSync.
	if _, _, err := follower.AppendReplicated(batches[1].Data); !errors.Is(err, ErrOutOfSync) {
		t.Fatalf("gap graft error = %v, want ErrOutOfSync", err)
	}

	// In order: every batch extends the tail and returns its records.
	var applied []Record
	for i, b := range batches {
		recs, last, err := follower.AppendReplicated(b.Data)
		if err != nil {
			t.Fatalf("batch %d: %v", i+1, err)
		}
		if last != b.CommitSeq {
			t.Fatalf("batch %d: last seq %d, want %d", i+1, last, b.CommitSeq)
		}
		if len(recs) != 2 {
			t.Fatalf("batch %d: %d records, want 2", i+1, len(recs))
		}
		applied = append(applied, recs...)
	}

	// Reconnect replay: duplicates are skipped idempotently, no disk
	// growth, nil records.
	size := follower.Size()
	for i, b := range batches {
		recs, last, err := follower.AppendReplicated(b.Data)
		if err != nil {
			t.Fatalf("duplicate batch %d: %v", i+1, err)
		}
		if recs != nil {
			t.Fatalf("duplicate batch %d returned %d records, want skip", i+1, len(recs))
		}
		if last != follower.LastSeq() {
			t.Fatalf("duplicate batch %d: last %d, want %d", i+1, last, follower.LastSeq())
		}
	}
	if follower.Size() != size {
		t.Fatalf("duplicate replay grew the journal %d -> %d bytes", size, follower.Size())
	}

	// The follower's recovered state equals the leader's.
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, recovered, err := OpenFS(ffs, "follower")
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if len(recovered) != len(applied) {
		t.Fatalf("recovered %d records, applied %d", len(recovered), len(applied))
	}
	for i := range recovered {
		if recovered[i] != applied[i] {
			t.Fatalf("record %d: recovered %+v, applied %+v", i, recovered[i], applied[i])
		}
	}
	if reopened.LastSeq() != leader.LastSeq() {
		t.Fatalf("follower LastSeq %d, leader %d", reopened.LastSeq(), leader.LastSeq())
	}
}

func mustMarshal(t *testing.T, r Record, seq uint64) string {
	t.Helper()
	s, err := marshal(r, seq)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAppendReplicatedRejectsMalformed(t *testing.T) {
	fsys := faultfs.NewMemFS()
	j, _, err := OpenFS(fsys, "store")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	rec := mustMarshal(t, Record{Op: OpAdd, User: "u", Line: "p"}, 1)
	commit := func(seq uint64) string { return mustMarshal(t, Record{Op: opCommit, Line: "1"}, seq) }
	good := rec + commit(2)
	cases := map[string]string{
		"empty":           "",
		"no newline":      good[:len(good)-1],
		"no commit":       rec,
		"bad count":       rec + mustMarshal(t, Record{Op: opCommit, Line: "2"}, 2),
		"gapped seqs":     rec + commit(5),
		"interior commit": commit(1) + commit(2),
		"corrupt crc":     "A\t1\t\"u\"\tdeadbeef\tp\n" + commit(2),
		"garbage":         "not a journal line\n",
	}
	for name, batch := range cases {
		if _, _, err := j.AppendReplicated([]byte(batch)); err == nil {
			t.Errorf("%s: malformed batch accepted", name)
		}
	}
	if j.LastSeq() != 0 {
		t.Fatalf("malformed batches advanced the journal to seq %d", j.LastSeq())
	}
}

func TestTailSinceIncrementalAndBootstrap(t *testing.T) {
	fsys := faultfs.NewMemFS()
	j, _, err := OpenFS(fsys, "store")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var state []Record
	for i := 0; i < 3; i++ {
		recs := shipRecs(2, "pre")
		if err := j.Append(recs...); err != nil {
			t.Fatal(err)
		}
		state = append(state, recs...)
	}
	// Batches span [1,3] [4,6] [7,9]; LastSeq = 9.

	// Incremental from the tip: nothing to ship.
	snap, batches, last, err := j.TailSince(9)
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil || len(batches) != 0 || last != 9 {
		t.Fatalf("TailSince(tip) = snap %d bytes, %d batches, last %d", len(snap), len(batches), last)
	}

	// Incremental from a batch boundary: ships the remainder.
	_, batches, _, err = j.TailSince(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 || batches[0].FirstSeq != 4 || batches[1].CommitSeq != 9 {
		t.Fatalf("TailSince(3) shipped %+v", batches)
	}

	// Compact, then append more: a cold follower (afterSeq 0) must get
	// the snapshot plus the journal tail.
	if err := j.Snapshot(state); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(shipRecs(1, "post")...); err != nil {
		t.Fatal(err)
	}
	snap, batches, last, err = j.TailSince(0)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("cold TailSince after compaction shipped no snapshot")
	}
	if len(batches) != 1 || batches[0].FirstSeq != 10 || last != 11 {
		t.Fatalf("cold TailSince = %d batches %+v, last %d", len(batches), batches, last)
	}

	// A follower caught up past the snapshot horizon stays incremental.
	snap2, batches2, _, err := j.TailSince(9)
	if err != nil {
		t.Fatal(err)
	}
	if snap2 != nil || len(batches2) != 1 {
		t.Fatalf("TailSince(9) after compaction = snap %d bytes, %d batches", len(snap2), len(batches2))
	}

	// Install the bootstrap on a fresh follower and verify equivalence.
	ffs := faultfs.NewMemFS()
	f, _, err := OpenFS(ffs, "f")
	if err != nil {
		t.Fatal(err)
	}
	recs, lastSeq, err := f.InstallSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if lastSeq != 9 {
		t.Fatalf("installed snapshot horizon %d, want 9", lastSeq)
	}
	applied := append([]Record(nil), recs...)
	for _, b := range batches {
		rs, _, err := f.AppendReplicated(b.Data)
		if err != nil {
			t.Fatal(err)
		}
		applied = append(applied, rs...)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f2, recovered, err := OpenFS(ffs, "f")
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if f2.LastSeq() != j.LastSeq() {
		t.Fatalf("bootstrapped follower LastSeq %d, leader %d", f2.LastSeq(), j.LastSeq())
	}
	if len(recovered) != len(applied) {
		t.Fatalf("bootstrapped follower recovered %d records, applied %d", len(recovered), len(applied))
	}
	for i := range recovered {
		if recovered[i] != applied[i] {
			t.Fatalf("record %d: recovered %+v, applied %+v", i, recovered[i], applied[i])
		}
	}
}

func TestInstallSnapshotRejectsHorizonless(t *testing.T) {
	fsys := faultfs.NewMemFS()
	j, _, err := OpenFS(fsys, "store")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	// A rendering without !lastseq cannot anchor the stream.
	bad := fileHeader + "\n" + mustMarshal(t, Record{Op: OpAdd, User: "u", Line: "p"}, 1)
	if _, _, err := j.InstallSnapshot([]byte(bad)); err == nil {
		t.Fatal("horizonless snapshot accepted")
	}
}

func TestJitterBackoffBounds(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	const d = 10 * time.Millisecond
	for i := 0; i < 1000; i++ {
		got := jitterBackoff(rnd, d)
		if got < d/2 || got >= d+d/2 {
			t.Fatalf("jitterBackoff(%v) = %v, want in [%v, %v)", d, got, d/2, d+d/2)
		}
	}
	if got := jitterBackoff(nil, d); got != d {
		t.Fatalf("nil source: %v, want %v", got, d)
	}
	if got := jitterBackoff(rnd, 0); got != 0 {
		t.Fatalf("zero backoff: %v, want 0", got)
	}
}

func TestJitteredRetryStillHeals(t *testing.T) {
	// The jitter option composes with the retry path: a transient
	// fsync fault heals on retry exactly as without jitter.
	fsys := faultfs.NewMemFS()
	inj := faultfs.NewInject(fsys)
	j, _, err := OpenFS(inj, "store",
		WithRetry(3, time.Microsecond),
		WithRetryJitter(rand.New(rand.NewSource(7))))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	inj.AddFault(faultfs.Fault{Op: faultfs.OpSync, Path: "journal", Count: 1, Err: faultfs.ErrIO})
	if err := j.Append(shipRecs(1, "x")...); err != nil {
		t.Fatalf("append with jittered retry did not heal: %v", err)
	}
	if j.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d, want 2", j.LastSeq())
	}
}
