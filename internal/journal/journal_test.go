package journal

import (
	"os"
	"path/filepath"
	"testing"
)

func mustOpen(t *testing.T, dir string) (*Journal, []Record) {
	t.Helper()
	j, recs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return j, recs
}

func TestAppendRecover(t *testing.T) {
	dir := t.TempDir()
	j, recs := mustOpen(t, dir)
	if len(recs) != 0 {
		t.Fatalf("fresh store replayed %d records", len(recs))
	}
	batch := []Record{
		{Op: OpUser, User: "alice"},
		{Op: OpAdd, User: "alice", Line: "[time = morning] => type = museum : 0.8"},
		{Op: OpAdd, User: "alice", Line: "[] => type = park : 0.4"},
		{Op: OpRemove, User: "alice", Line: "[] => type = park : 0.4"},
		{Op: OpDrop, User: "bob"},
	}
	if err := j.Append(batch...); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, recs := mustOpen(t, dir)
	defer j2.Close()
	if len(recs) != len(batch) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(batch))
	}
	for i, r := range recs {
		if r != batch[i] {
			t.Errorf("record %d = %+v, want %+v", i, r, batch[i])
		}
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	j, _ := mustOpen(t, t.TempDir())
	j.Close()
	if err := j.Append(Record{Op: OpUser, User: "x"}); err != ErrClosed {
		t.Errorf("append after close = %v, want ErrClosed", err)
	}
	if err := j.Snapshot(nil); err != ErrClosed {
		t.Errorf("snapshot after close = %v, want ErrClosed", err)
	}
	if err := j.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

func TestRejectsBadRecords(t *testing.T) {
	j, _ := mustOpen(t, t.TempDir())
	defer j.Close()
	if err := j.Append(Record{Op: 'X', User: "u"}); err == nil {
		t.Error("invalid op accepted")
	}
	if err := j.Append(Record{Op: OpAdd, User: "u", Line: "a\nb"}); err == nil {
		t.Error("payload with newline accepted")
	}
}

// TestTornTail simulates a crash mid-append: the final batch is
// truncated at every possible byte boundary and recovery must keep
// exactly the committed prefix — batches are atomic, so a torn second
// batch recovers none of its records even when some of its lines are
// intact.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	first := Record{Op: OpAdd, User: "u", Line: "[time = morning] => type = museum : 0.8"}
	if err := j.Append(first); err != nil {
		t.Fatal(err)
	}
	goodLen := int(j.Size())
	second := []Record{
		{Op: OpAdd, User: "u", Line: "[] => type = park : 0.4"},
		{Op: OpAdd, User: "u", Line: "[] => type = zoo : 0.2"},
	}
	if err := j.Append(second...); err != nil {
		t.Fatal(err)
	}
	j.Close()
	jpath := filepath.Join(dir, "journal.cpj")
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}

	for cut := goodLen; cut < len(data); cut++ {
		work := t.TempDir()
		wpath := filepath.Join(work, "journal.cpj")
		if err := os.WriteFile(wpath, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, recs, err := Open(work)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if len(recs) != 1 || recs[0] != first {
			t.Fatalf("cut at %d: replayed %+v, want only the first batch", cut, recs)
		}
		// The torn tail must be gone: appending and reopening stays clean.
		if err := j2.Append(Record{Op: OpDrop, User: "u"}); err != nil {
			t.Fatal(err)
		}
		j2.Close()
		_, recs2, err := Open(work)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs2) != 2 || recs2[1].Op != OpDrop {
			t.Fatalf("cut at %d: after repair replayed %+v", cut, recs2)
		}
	}
}

func TestCorruptMidRecordTruncates(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	if err := j.Append(Record{Op: OpAdd, User: "u", Line: "[] => type = park : 0.4"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Op: OpAdd, User: "u", Line: "[] => type = museum : 0.6"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	jpath := filepath.Join(dir, "journal.cpj")
	data, _ := os.ReadFile(jpath)
	// Flip a byte in the second batch: its checksum must fail and the
	// whole batch must be dropped.
	corrupted := append([]byte(nil), data...)
	corrupted[len(corrupted)-3] ^= 0xff
	if err := os.WriteFile(jpath, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, recs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1", len(recs))
	}
	st, _ := os.Stat(jpath)
	if int64(len(data)) <= st.Size() {
		t.Errorf("corrupt tail not truncated: %d -> %d bytes", len(data), st.Size())
	}
}

func TestSnapshotCompacts(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	if err := j.Append(
		Record{Op: OpUser, User: "alice"},
		Record{Op: OpAdd, User: "alice", Line: "[] => type = park : 0.4"},
		Record{Op: OpRemove, User: "alice", Line: "[] => type = park : 0.4"},
		Record{Op: OpAdd, User: "alice", Line: "[] => type = museum : 0.6"},
	); err != nil {
		t.Fatal(err)
	}
	compacted := []Record{
		{Op: OpUser, User: "alice"},
		{Op: OpAdd, User: "alice", Line: "[] => type = museum : 0.6"},
	}
	if err := j.Snapshot(compacted); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot appends land in the (now empty) journal.
	if err := j.Append(Record{Op: OpAdd, User: "alice", Line: "[] => type = zoo : 0.2"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, recs := mustOpen(t, dir)
	defer j2.Close()
	want := append(append([]Record(nil), compacted...),
		Record{Op: OpAdd, User: "alice", Line: "[] => type = zoo : 0.2"})
	if len(recs) != len(want) {
		t.Fatalf("replayed %+v, want %+v", recs, want)
	}
	for i := range want {
		if recs[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, recs[i], want[i])
		}
	}
}

// TestStaleJournalAfterSnapshot simulates a crash between the snapshot
// rename and the journal truncation: records already folded into the
// snapshot remain in the journal but must be skipped on recovery via
// their sequence numbers.
func TestStaleJournalAfterSnapshot(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	if err := j.Append(
		Record{Op: OpUser, User: "u"},
		Record{Op: OpAdd, User: "u", Line: "[] => type = park : 0.4"},
	); err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(dir, "journal.cpj")
	preSnapshot, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Snapshot([]Record{
		{Op: OpUser, User: "u"},
		{Op: OpAdd, User: "u", Line: "[] => type = park : 0.4"},
	}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Undo the truncation, as if the crash hit before it.
	if err := os.WriteFile(jpath, preSnapshot, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, recs := mustOpen(t, dir)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2 (stale journal records not skipped): %+v", len(recs), recs)
	}
	// New appends must get sequence numbers beyond the stale ones.
	if err := j2.Append(Record{Op: OpDrop, User: "u"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, recs3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs3) != 3 || recs3[2].Op != OpDrop {
		t.Fatalf("after stale recovery replayed %+v", recs3)
	}
}

func TestUserNamesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	users := []string{"", "plain", "with space", "tab\tand\nnewline", `quote"back\slash`}
	for _, u := range users {
		if err := j.Append(Record{Op: OpUser, User: u}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	_, recs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(users) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(users))
	}
	for i, u := range users {
		if recs[i].User != u {
			t.Errorf("user %d = %q, want %q", i, recs[i].User, u)
		}
	}
}

func TestOpenCleansStaleTemp(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, "snapshot.cpj.tmp")
	if err := os.WriteFile(tmp, []byte("half-written snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs := mustOpen(t, dir)
	defer j.Close()
	if len(recs) != 0 {
		t.Errorf("stale temp produced records: %+v", recs)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("stale snapshot temp file not removed")
	}
}
