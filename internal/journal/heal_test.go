package journal

// Self-healing and fault-injection coverage: torn-write rollback,
// bounded retry, wedging, the probe path, and v1-journal migration,
// all driven through the internal/faultfs injector over an in-memory
// filesystem.

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"contextpref/internal/faultfs"
)

func memStore(t *testing.T) (*faultfs.Inject, string) {
	t.Helper()
	return faultfs.NewInject(faultfs.NewMemFS()), "/store"
}

func mustOpenFS(t *testing.T, fsys faultfs.FS, dir string, opts ...Option) (*Journal, []Record) {
	t.Helper()
	j, recs, err := OpenFS(fsys, dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return j, recs
}

// TestShortWriteRollbackRetry is the regression test for the partial
// -write corruption bug: a torn append must roll the file back to the
// last-known-good offset before the retry, so the retried batch cannot
// interleave with the half-written bytes.
func TestShortWriteRollbackRetry(t *testing.T) {
	inj, dir := memStore(t)
	j, _ := mustOpenFS(t, inj, dir, WithRetry(2, time.Microsecond))
	first := Record{Op: OpAdd, User: "u", Line: "[] => type = park : 0.4"}
	if err := j.Append(first); err != nil {
		t.Fatal(err)
	}
	// Tear the next journal write after 10 bytes, once.
	inj.AddFault(faultfs.Fault{
		Op: faultfs.OpWrite, Path: "journal", Count: 1,
		Err: faultfs.ErrIO, Short: 10,
	})
	second := Record{Op: OpAdd, User: "u", Line: "[] => type = museum : 0.6"}
	if err := j.Append(second); err != nil {
		t.Fatalf("append with one torn attempt = %v, want nil (healed by retry)", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, recs := mustOpenFS(t, inj, dir)
	defer j2.Close()
	if len(recs) != 2 || recs[0] != first || recs[1] != second {
		t.Fatalf("recovered %+v, want the two appended records exactly once", recs)
	}
	// The torn bytes must not survive in the file: the second record's
	// payload appears exactly once.
	data, err := inj.ReadFile(dir + "/journal.cpj")
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), "museum"); got != 1 {
		t.Errorf("torn bytes interleaved with the retry:\n%s", data)
	}
}

// TestAppendENOSPCSurfacesAfterRetries: a persistent disk-full error
// exhausts the bounded retry and surfaces, leaving the file rolled
// back; lifting the fault heals the journal without reopening.
func TestAppendENOSPCSurfacesAfterRetries(t *testing.T) {
	inj, dir := memStore(t)
	j, _ := mustOpenFS(t, inj, dir, WithRetry(2, time.Microsecond))
	first := Record{Op: OpAdd, User: "u", Line: "[] => type = park : 0.4"}
	if err := j.Append(first); err != nil {
		t.Fatal(err)
	}
	sizeBefore := j.Size()
	inj.AddFault(faultfs.Fault{Op: faultfs.OpWrite, Path: "journal", Err: faultfs.ErrNoSpace})
	err := j.Append(Record{Op: OpAdd, User: "u", Line: "[] => type = zoo : 0.2"})
	if !errors.Is(err, faultfs.ErrNoSpace) {
		t.Fatalf("append on full disk = %v, want ENOSPC", err)
	}
	if got := j.Size(); got != sizeBefore {
		t.Errorf("size after failed append = %d, want rolled back to %d", got, sizeBefore)
	}
	inj.Lift()
	second := Record{Op: OpAdd, User: "u", Line: "[] => type = zoo : 0.2"}
	if err := j.Append(second); err != nil {
		t.Fatalf("append after fault lifted = %v, want nil", err)
	}
	j.Close()
	_, recs := mustOpenFS(t, inj, dir)
	if len(recs) != 2 || recs[0] != first || recs[1] != second {
		t.Fatalf("recovered %+v, want exactly the two acknowledged records", recs)
	}
}

// TestWedgedJournal: when the rollback truncate itself fails, the
// journal must refuse all further writes (the tail is untrusted) until
// a reopen truncates the torn bytes away.
func TestWedgedJournal(t *testing.T) {
	inj, dir := memStore(t)
	j, _ := mustOpenFS(t, inj, dir, WithRetry(2, time.Microsecond))
	first := Record{Op: OpAdd, User: "u", Line: "[] => type = park : 0.4"}
	if err := j.Append(first); err != nil {
		t.Fatal(err)
	}
	inj.AddFault(faultfs.Fault{
		Op: faultfs.OpWrite, Path: "journal", Count: 1,
		Err: faultfs.ErrIO, Short: 7,
	})
	inj.AddFault(faultfs.Fault{Op: faultfs.OpTruncate, Path: "journal", Count: 1, Err: faultfs.ErrIO})
	err := j.Append(Record{Op: OpAdd, User: "u", Line: "[] => type = zoo : 0.2"})
	if !errors.Is(err, ErrWedged) {
		t.Fatalf("append with failed rollback = %v, want ErrWedged", err)
	}
	if err := j.Append(first); !errors.Is(err, ErrWedged) {
		t.Errorf("append on wedged journal = %v, want ErrWedged", err)
	}
	if err := j.Probe(); !errors.Is(err, ErrWedged) {
		t.Errorf("probe on wedged journal = %v, want ErrWedged", err)
	}
	if err := j.Snapshot(nil); !errors.Is(err, ErrWedged) {
		t.Errorf("snapshot on wedged journal = %v, want ErrWedged", err)
	}
	j.Close()
	// Reopen truncates the torn tail: only the acknowledged record
	// survives, and the journal works again.
	j2, recs := mustOpenFS(t, inj, dir)
	defer j2.Close()
	if len(recs) != 1 || recs[0] != first {
		t.Fatalf("recovered %+v, want only the acknowledged record", recs)
	}
	if err := j2.Append(Record{Op: OpDrop, User: "u"}); err != nil {
		t.Errorf("append after reopen = %v, want nil", err)
	}
}

// TestProbe: the probe exercises the durable append path without
// leaving anything recovery or compaction would see.
func TestProbe(t *testing.T) {
	inj, dir := memStore(t)
	j, _ := mustOpenFS(t, inj, dir, WithRetry(0, 0))
	if err := j.Probe(); err != nil {
		t.Fatalf("probe on healthy journal = %v", err)
	}
	rec := Record{Op: OpAdd, User: "u", Line: "[] => type = park : 0.4"}
	if err := j.Append(rec); err != nil {
		t.Fatal(err)
	}
	inj.AddFault(faultfs.Fault{Op: faultfs.OpSync, Path: "journal", Err: faultfs.ErrIO})
	if err := j.Probe(); !errors.Is(err, faultfs.ErrIO) {
		t.Fatalf("probe with failing fsync = %v, want EIO", err)
	}
	inj.Lift()
	if err := j.Probe(); err != nil {
		t.Fatalf("probe after fault lifted = %v", err)
	}
	j.Close()
	_, recs := mustOpenFS(t, inj, dir)
	if len(recs) != 1 || recs[0] != rec {
		t.Fatalf("recovered %+v, want probes to be invisible", recs)
	}
}

// TestLegacyJournalMigration: a v1 journal (per-record durability, no
// commit markers) is recovered in full and atomically rewritten in the
// commit-framed format.
func TestLegacyJournalMigration(t *testing.T) {
	fsys := faultfs.NewMemFS()
	dir := "/store"
	if err := fsys.MkdirAll(dir); err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Op: OpUser, User: "alice"},
		{Op: OpAdd, User: "alice", Line: "[] => type = park : 0.4"},
	}
	var b strings.Builder
	b.WriteString(legacyHeader + "\n")
	for i, r := range recs {
		line, err := marshal(r, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(line)
	}
	// A torn final line, as a crashed v1 writer would leave behind.
	b.WriteString("A\t3\t\"alice\"\tdeadbeef")
	f, err := fsys.OpenFile(dir+"/journal.cpj", os.O_CREATE|os.O_WRONLY)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(b.String())); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j, got := mustOpenFS(t, fsys, dir)
	if len(got) != len(recs) {
		t.Fatalf("migrated recovery = %+v, want %+v", got, recs)
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
	data, err := fsys.ReadFile(dir + "/journal.cpj")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), fileHeader+"\n") {
		t.Errorf("migrated journal still has the v1 header:\n%s", data)
	}
	if !strings.Contains(string(data), "\nC\t") {
		t.Errorf("migrated journal has no commit marker:\n%s", data)
	}
	// New appends continue with sequence numbers past the migration.
	next := Record{Op: OpDrop, User: "alice"}
	if err := j.Append(next); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, got2 := mustOpenFS(t, fsys, dir)
	if len(got2) != 3 || got2[2] != next {
		t.Fatalf("post-migration recovery = %+v", got2)
	}
}

// TestCrashDuringSnapshotAtEveryOp drives a compaction into a simulated
// crash at every filesystem operation in turn; reopening must always
// recover the full pre-compaction state (from the old snapshot+journal,
// the new snapshot, or the new snapshot plus stale journal, depending
// on where the crash hit).
func TestCrashDuringSnapshotAtEveryOp(t *testing.T) {
	recs := []Record{
		{Op: OpUser, User: "u"},
		{Op: OpAdd, User: "u", Line: "[] => type = park : 0.4"},
	}
	compacted := []Record{
		{Op: OpUser, User: "u"},
		{Op: OpAdd, User: "u", Line: "[] => type = park : 0.4"},
	}
	// Counting pass: how many fs ops does the snapshot perform?
	count, dir := memStore(t)
	j, _ := mustOpenFS(t, count, dir)
	if err := j.Append(recs...); err != nil {
		t.Fatal(err)
	}
	before := count.Ops()
	if err := j.Snapshot(compacted); err != nil {
		t.Fatal(err)
	}
	total := count.Ops() - before
	if total < 5 {
		t.Fatalf("snapshot performed only %d ops", total)
	}
	for k := 1; k <= total; k++ {
		k := k
		t.Run(fmt.Sprintf("crash_at_%d", k), func(t *testing.T) {
			mem := faultfs.NewMemFS()
			inj := faultfs.NewInject(mem)
			j, _ := mustOpenFS(t, inj, dir, WithRetry(0, 0))
			if err := j.Append(recs...); err != nil {
				t.Fatal(err)
			}
			inj.CrashAt(k)
			if err := j.Snapshot(compacted); err == nil {
				t.Fatal("snapshot succeeded through a crash")
			}
			// Restart: reopen the surviving files without faults.
			j2, got, err := OpenFS(mem, dir)
			if err != nil {
				t.Fatalf("recovery after crash at op %d: %v", k, err)
			}
			defer j2.Close()
			if len(got) != len(recs) {
				t.Fatalf("crash at op %d recovered %+v, want %+v", k, got, recs)
			}
			for i := range recs {
				if got[i] != recs[i] {
					t.Errorf("crash at op %d: record %d = %+v, want %+v", k, i, got[i], recs[i])
				}
			}
		})
	}
}
