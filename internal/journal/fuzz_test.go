package journal

import (
	"os"
	"testing"

	"contextpref/internal/faultfs"
)

// FuzzJournalRecovery feeds arbitrary bytes to Open as the journal
// file: recovery must never panic and never fail — whatever the tail
// looks like, it truncates to a valid prefix and reopening must then
// be byte-for-byte stable.
func FuzzJournalRecovery(f *testing.F) {
	f.Add([]byte(fileHeader + "\n"))
	f.Add([]byte(legacyHeader + "\nU\t1\t\"alice\"\t0\t\n"))
	f.Add([]byte(fileHeader + "\nA\t1\t\"u\"\tdeadbeef\t[] => type = park : 0.4\nC\t1\t0\t1\n"))
	f.Add([]byte("garbage that is not a journal at all"))
	f.Add([]byte{})
	f.Add([]byte(fileHeader + "\nC\t1\t\"\"\t0\t5\n"))
	seed := func() []byte {
		fsys := faultfs.NewMemFS()
		j, _, err := OpenFS(fsys, "/s")
		if err != nil {
			f.Fatal(err)
		}
		if err := j.Append(
			Record{Op: OpUser, User: "alice"},
			Record{Op: OpAdd, User: "alice", Line: "[] => type = park : 0.4"},
		); err != nil {
			f.Fatal(err)
		}
		j.Close()
		data, err := fsys.ReadFile("/s/journal.cpj")
		if err != nil {
			f.Fatal(err)
		}
		return data
	}()
	f.Add(seed)
	f.Add(seed[:len(seed)-4])

	f.Fuzz(func(t *testing.T, data []byte) {
		fsys := faultfs.NewMemFS()
		dir := "/store"
		if err := fsys.MkdirAll(dir); err != nil {
			t.Fatal(err)
		}
		w, err := fsys.OpenFile(dir+"/journal.cpj", os.O_CREATE|os.O_WRONLY)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(data); err != nil {
			t.Fatal(err)
		}
		w.Close()

		j, recs, err := OpenFS(fsys, dir)
		if err != nil {
			t.Fatalf("Open on arbitrary journal bytes = %v, want recovery", err)
		}
		for _, r := range recs {
			if !r.Op.valid() {
				t.Fatalf("recovery produced invalid op %q", r.Op)
			}
		}
		// The journal must be usable after recovery.
		if err := j.Append(Record{Op: OpUser, User: "fuzz"}); err != nil {
			t.Fatalf("append after recovery = %v", err)
		}
		j.Close()
		j2, recs2, err := OpenFS(fsys, dir)
		if err != nil {
			t.Fatalf("reopen after recovery = %v", err)
		}
		defer j2.Close()
		if len(recs2) != len(recs)+1 {
			t.Fatalf("reopen replayed %d records, want %d", len(recs2), len(recs)+1)
		}
		for i := range recs {
			if recs2[i] != recs[i] {
				t.Fatalf("reopen record %d = %+v, want %+v (recovery not stable)", i, recs2[i], recs[i])
			}
		}
	})
}
