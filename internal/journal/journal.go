// Package journal implements an append-only, fsync'd write-ahead log
// of preference mutations, giving the in-memory preference database a
// durable, crash-safe persistence layer.
//
// # File format
//
// A store directory holds two line-oriented text files:
//
//	journal.cpj    the write-ahead log, appended (and fsync'd) per batch
//	snapshot.cpj   a compacted rendering of the full state, replaced
//	               atomically (write-temp-then-rename) by Snapshot
//
// Every record is one line of five tab-separated fields:
//
//	<op> TAB <seq> TAB <quoted-user> TAB <crc32-hex> TAB <payload>
//
// where op is one of
//
//	U   user created (payload empty)
//	A   preference added (payload: the preference line encoding)
//	R   preference removed (payload: the preference line encoding)
//	D   user dropped (payload empty)
//
// seq is a monotonically increasing decimal sequence number, user is a
// Go-quoted user name ("" in single-user deployments) and crc32-hex is
// the IEEE CRC-32 of the payload bytes in fixed-width hex. Blank lines
// and lines starting with '#' are ignored. The payload reuses the
// preference line encoding of internal/preference, e.g.
//
//	A	7	"alice"	89e2c90c	[accompanying_people = friends] => type = brewery : 0.9
//
// # Crash recovery
//
// Open replays the snapshot first and then every journal record whose
// sequence number is newer than the snapshot's. A torn final journal
// record — a line missing its trailing newline, with missing fields, or
// whose checksum does not match, as left behind by a crash mid-append —
// is tolerated: the journal is truncated back to the end of the last
// valid record and recovery proceeds with the valid prefix.
//
// Snapshot writes the compacted state to a temporary file, fsyncs it,
// renames it over snapshot.cpj, fsyncs the directory, and only then
// truncates the journal. A crash between the rename and the truncation
// merely leaves already-snapshotted records in the journal; their stale
// sequence numbers make the next Open skip them.
package journal

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"contextpref/internal/telemetry"
)

// Op identifies a journal record type.
type Op byte

// The journal record types.
const (
	// OpUser records the creation of a user profile.
	OpUser Op = 'U'
	// OpAdd records an added preference (payload: line encoding).
	OpAdd Op = 'A'
	// OpRemove records a removed preference (payload: line encoding).
	OpRemove Op = 'R'
	// OpDrop records the deletion of a user profile.
	OpDrop Op = 'D'
)

func (op Op) valid() bool {
	switch op {
	case OpUser, OpAdd, OpRemove, OpDrop:
		return true
	}
	return false
}

// Record is one journaled preference mutation.
type Record struct {
	// Op is the mutation type.
	Op Op
	// User is the owning user name ("" in single-user deployments).
	User string
	// Line is the preference in the line encoding; empty for OpUser
	// and OpDrop.
	Line string
}

const (
	journalFile  = "journal.cpj"
	snapshotFile = "snapshot.cpj"
	snapshotTemp = "snapshot.cpj.tmp"
	fileHeader   = "# cpjournal v1"
	// metaPrefix introduces the snapshot's last-compacted sequence
	// number ("!lastseq <n>").
	metaPrefix = "!lastseq "
)

// Journal is an open write-ahead log. It is safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	dir     string
	f       *os.File
	nextSeq uint64
	size    int64 // current journal file size in bytes
	closed  bool

	// metrics, when set, observes append/fsync/compaction cost; nil
	// (the default) is a no-op.
	metrics *Metrics
}

// Metrics are the durability cost instruments a Journal reports. Every
// field is optional; nil fields — and a nil *Metrics — are no-ops, so a
// journal embedded without telemetry pays only a nil check per append.
type Metrics struct {
	// AppendSeconds times whole append batches (marshal + write +
	// fsync).
	AppendSeconds *telemetry.Histogram
	// FsyncSeconds times the fsync alone, isolating stalls caused by
	// the storage device from the cheap in-memory framing.
	FsyncSeconds *telemetry.Histogram
	// AppendBytes counts journal bytes written by appends.
	AppendBytes *telemetry.Counter
	// AppendRecords counts journaled records.
	AppendRecords *telemetry.Counter
	// SnapshotSeconds times compactions (snapshot write + rename +
	// journal truncation).
	SnapshotSeconds *telemetry.Histogram
	// SnapshotBytes reports the size of the last written snapshot.
	SnapshotBytes *telemetry.Gauge
	// SizeBytes tracks the current journal file size; compaction drops
	// it back to the header.
	SizeBytes *telemetry.Gauge
}

// SetMetrics attaches (or, with nil, detaches) durability cost
// instruments and primes the size gauge with the current journal size.
func (j *Journal) SetMetrics(m *Metrics) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.metrics = m
	if m != nil {
		m.SizeBytes.Set(float64(j.size))
	}
}

// Size returns the current journal file size in bytes.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// ErrClosed is returned by operations on a closed journal.
var ErrClosed = errors.New("journal: closed")

// Open opens (creating it if needed) the store directory, recovers the
// persisted records — snapshot first, then the journal tail — and
// returns the journal ready for appending. A torn final journal record
// is truncated away; see the package comment.
func Open(dir string) (*Journal, []Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	// A stale temp file is debris from a crashed snapshot; the rename
	// never happened, so it is dead weight.
	_ = os.Remove(filepath.Join(dir, snapshotTemp))

	recs, lastSeq, err := readSnapshot(filepath.Join(dir, snapshotFile))
	if err != nil {
		return nil, nil, err
	}
	jpath := filepath.Join(dir, journalFile)
	jrecs, seqs, validLen, err := readJournal(jpath)
	if err != nil {
		return nil, nil, err
	}
	if st, err := os.Stat(jpath); err == nil && st.Size() > validLen {
		// Torn or corrupt tail: truncate back to the last valid record.
		if err := os.Truncate(jpath, validLen); err != nil {
			return nil, nil, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	nextSeq := lastSeq + 1
	for i, r := range jrecs {
		if seqs[i] <= lastSeq {
			continue // already folded into the snapshot
		}
		recs = append(recs, r)
		if seqs[i] >= nextSeq {
			nextSeq = seqs[i] + 1
		}
	}
	f, err := os.OpenFile(jpath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	if st, err := f.Stat(); err == nil && st.Size() == 0 {
		if _, err := f.WriteString(fileHeader + "\n"); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: %w", err)
		}
	}
	size := int64(0)
	if st, err := f.Stat(); err == nil {
		size = st.Size()
	}
	return &Journal{dir: dir, f: f, nextSeq: nextSeq, size: size}, recs, nil
}

// Dir returns the store directory.
func (j *Journal) Dir() string { return j.dir }

// Append durably writes the records as one batch: all lines are written
// with consecutive sequence numbers and a single fsync. On error the
// caller must assume none of the batch is durable.
func (j *Journal) Append(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	var start time.Time
	if j.metrics != nil {
		start = time.Now()
	}
	var b strings.Builder
	for _, r := range recs {
		line, err := marshal(r, j.nextSeq)
		if err != nil {
			return err
		}
		b.WriteString(line)
		j.nextSeq++
	}
	if _, err := j.f.WriteString(b.String()); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	var syncStart time.Time
	if j.metrics != nil {
		syncStart = time.Now()
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.size += int64(b.Len())
	if m := j.metrics; m != nil {
		m.FsyncSeconds.ObserveSince(syncStart)
		m.AppendSeconds.ObserveSince(start)
		m.AppendBytes.Add(b.Len())
		m.AppendRecords.Add(len(recs))
		m.SizeBytes.Set(float64(j.size))
	}
	return nil
}

// Snapshot atomically replaces the snapshot with the given compacted
// state and truncates the journal. state should reconstruct the full
// current database when replayed (typically OpUser + OpAdd records).
func (j *Journal) Snapshot(state []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	var start time.Time
	if j.metrics != nil {
		start = time.Now()
	}
	lastSeq := j.nextSeq - 1
	var b strings.Builder
	b.WriteString(fileHeader + " snapshot\n")
	fmt.Fprintf(&b, "%s%d\n", metaPrefix, lastSeq)
	for _, r := range state {
		line, err := marshal(r, lastSeq)
		if err != nil {
			return err
		}
		b.WriteString(line)
	}
	tmp := filepath.Join(j.dir, snapshotTemp)
	if err := writeFileSync(tmp, b.String()); err != nil {
		return err
	}
	final := filepath.Join(j.dir, snapshotFile)
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("journal: snapshot rename: %w", err)
	}
	if err := syncDir(j.dir); err != nil {
		return err
	}
	// Compaction: the snapshot now owns everything up to lastSeq, so
	// the journal restarts empty.
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("journal: compacting: %w", err)
	}
	if _, err := j.f.WriteString(fileHeader + "\n"); err != nil {
		return fmt.Errorf("journal: compacting: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.size = int64(len(fileHeader) + 1)
	if m := j.metrics; m != nil {
		m.SnapshotSeconds.ObserveSince(start)
		m.SnapshotBytes.Set(float64(b.Len()))
		m.SizeBytes.Set(float64(j.size))
	}
	return nil
}

// Close flushes and closes the journal. Further operations return
// ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return fmt.Errorf("journal: fsync: %w", err)
	}
	return j.f.Close()
}

// marshal renders one record line.
func marshal(r Record, seq uint64) (string, error) {
	if !r.Op.valid() {
		return "", fmt.Errorf("journal: invalid op %q", string(rune(r.Op)))
	}
	if strings.ContainsAny(r.Line, "\n\r") {
		return "", fmt.Errorf("journal: payload contains a line break: %q", r.Line)
	}
	return fmt.Sprintf("%c\t%d\t%s\t%08x\t%s\n",
		byte(r.Op), seq, strconv.Quote(r.User), crc32.ChecksumIEEE([]byte(r.Line)), r.Line), nil
}

// parseRecord reads one record line (without its trailing newline).
func parseRecord(line string) (Record, uint64, error) {
	parts := strings.SplitN(line, "\t", 5)
	if len(parts) != 5 {
		return Record{}, 0, fmt.Errorf("journal: %d fields, want 5", len(parts))
	}
	if len(parts[0]) != 1 || !Op(parts[0][0]).valid() {
		return Record{}, 0, fmt.Errorf("journal: invalid op %q", parts[0])
	}
	seq, err := strconv.ParseUint(parts[1], 10, 64)
	if err != nil {
		return Record{}, 0, fmt.Errorf("journal: bad sequence number %q", parts[1])
	}
	user, err := strconv.Unquote(parts[2])
	if err != nil {
		return Record{}, 0, fmt.Errorf("journal: bad user field %q", parts[2])
	}
	sum, err := strconv.ParseUint(parts[3], 16, 32)
	if err != nil {
		return Record{}, 0, fmt.Errorf("journal: bad checksum field %q", parts[3])
	}
	if got := crc32.ChecksumIEEE([]byte(parts[4])); got != uint32(sum) {
		return Record{}, 0, fmt.Errorf("journal: checksum mismatch (%08x != %08x)", got, sum)
	}
	return Record{Op: Op(parts[0][0]), User: user, Line: parts[4]}, seq, nil
}

// readSnapshot strictly parses the snapshot file (it is written
// atomically, so any damage is real corruption, not a torn write).
// Missing file means empty state.
func readSnapshot(path string) ([]Record, uint64, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("journal: reading snapshot: %w", err)
	}
	var recs []Record
	var lastSeq uint64
	for ln, raw := range strings.Split(string(data), "\n") {
		// Only trim the line ending: a record with an empty payload
		// legitimately ends in a tab.
		line := strings.TrimRight(raw, "\r")
		if strings.TrimSpace(line) == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if rest, ok := strings.CutPrefix(line, metaPrefix); ok {
			lastSeq, err = strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				return nil, 0, fmt.Errorf("journal: snapshot line %d: bad lastseq: %w", ln+1, err)
			}
			continue
		}
		r, _, err := parseRecord(line)
		if err != nil {
			return nil, 0, fmt.Errorf("journal: snapshot line %d: %w", ln+1, err)
		}
		recs = append(recs, r)
	}
	return recs, lastSeq, nil
}

// readJournal tolerantly parses the journal: it stops at the first
// invalid or unterminated line and reports the byte length of the valid
// prefix so the caller can truncate the torn tail away.
func readJournal(path string) (recs []Record, seqs []uint64, validLen int64, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil, 0, nil
	}
	if err != nil {
		return nil, nil, 0, fmt.Errorf("journal: reading journal: %w", err)
	}
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // unterminated final line: torn write
		}
		end := off + nl + 1
		line := strings.TrimRight(string(data[off:off+nl]), "\r")
		if strings.TrimSpace(line) == "" || strings.HasPrefix(line, "#") {
			validLen, off = int64(end), end
			continue
		}
		r, seq, perr := parseRecord(line)
		if perr != nil {
			break // corrupt record: keep only the prefix before it
		}
		recs = append(recs, r)
		seqs = append(seqs, seq)
		validLen, off = int64(end), end
	}
	return recs, seqs, validLen, nil
}

// writeFileSync writes content to path and fsyncs it.
func writeFileSync(path, content string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.WriteString(content); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: fsync: %w", err)
	}
	return f.Close()
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: fsync dir: %w", err)
	}
	return nil
}
