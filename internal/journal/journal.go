// Package journal implements an append-only, fsync'd write-ahead log
// of preference mutations, giving the in-memory preference database a
// durable, crash-safe persistence layer.
//
// # File format
//
// A store directory holds two line-oriented text files:
//
//	journal.cpj    the write-ahead log, appended (and fsync'd) per batch
//	snapshot.cpj   a compacted rendering of the full state, replaced
//	               atomically (write-temp-then-rename) by Snapshot
//
// Every record is one line of five tab-separated fields:
//
//	<op> TAB <seq> TAB <quoted-user> TAB <crc32-hex> TAB <payload>
//
// where op is one of
//
//	U   user created (payload empty)
//	A   preference added (payload: the preference line encoding)
//	R   preference removed (payload: the preference line encoding)
//	D   user dropped (payload empty)
//	C   batch commit marker (payload: the batch's record count)
//
// seq is a monotonically increasing decimal sequence number, user is a
// Go-quoted user name ("" in single-user deployments) and crc32-hex is
// the IEEE CRC-32 of the payload bytes in fixed-width hex. Blank lines
// and lines starting with '#' are ignored. The payload reuses the
// preference line encoding of internal/preference, e.g.
//
//	A	7	"alice"	89e2c90c	[accompanying_people = friends] => type = brewery : 0.9
//
// Each Append writes its records followed by one commit marker, all in
// a single write and fsync. Recovery replays only records covered by a
// commit marker, so a batch is atomic on disk exactly as it is in
// memory: a crash mid-batch recovers none of it, never a prefix of it.
//
// # Crash recovery
//
// Open replays the snapshot first and then every committed journal
// record whose sequence number is newer than the snapshot's. A torn
// journal tail — an unterminated line, a corrupt record, or a batch
// missing its commit marker, as left behind by a crash mid-append — is
// tolerated: the journal is truncated back to the end of the last
// committed batch and recovery proceeds with the valid prefix. Journals
// written by the v1 format (no commit markers; every record stood
// alone) are detected by their header and atomically rewritten in the
// current format on open.
//
// Snapshot writes the compacted state to a temporary file, fsyncs it,
// renames it over snapshot.cpj, fsyncs the directory, and only then
// truncates the journal. A crash between the rename and the truncation
// merely leaves already-snapshotted records in the journal; their stale
// sequence numbers make the next Open skip them.
//
// # Self-healing appends
//
// A failed append attempt (short write, failed fsync) rolls the journal
// file back to the last-known-good offset before anything else happens,
// so a half-written batch can never interleave with a retry, and is
// then retried a bounded number of times with exponential backoff
// (configurable via WithRetry) before the error surfaces. If the
// rollback itself fails the journal is wedged — every further write
// returns ErrWedged and the store must be reopened, which re-runs torn
// -tail recovery.
//
// All filesystem access goes through an internal/faultfs.FS, so tests
// can inject disk-full, torn-write, and whole-machine-crash faults at
// any operation; production uses the passthrough OS implementation.
package journal

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"contextpref/internal/faultfs"
	"contextpref/internal/telemetry"
	"contextpref/internal/tracing"
)

// Op identifies a journal record type.
type Op byte

// The journal record types.
const (
	// OpUser records the creation of a user profile.
	OpUser Op = 'U'
	// OpAdd records an added preference (payload: line encoding).
	OpAdd Op = 'A'
	// OpRemove records a removed preference (payload: line encoding).
	OpRemove Op = 'R'
	// OpDrop records the deletion of a user profile.
	OpDrop Op = 'D'
	// opCommit is the internal batch commit marker (payload: record
	// count); it never appears in the records Open returns.
	opCommit Op = 'C'
)

func (op Op) valid() bool {
	switch op {
	case OpUser, OpAdd, OpRemove, OpDrop:
		return true
	}
	return false
}

// Record is one journaled preference mutation.
type Record struct {
	// Op is the mutation type.
	Op Op
	// User is the owning user name ("" in single-user deployments).
	User string
	// Line is the preference in the line encoding; empty for OpUser
	// and OpDrop.
	Line string
}

const (
	journalFile  = "journal.cpj"
	journalTemp  = "journal.cpj.tmp"
	snapshotFile = "snapshot.cpj"
	snapshotTemp = "snapshot.cpj.tmp"
	fileHeader   = "# cpjournal v2"
	legacyHeader = "# cpjournal v1"
	// metaPrefix introduces the snapshot's last-compacted sequence
	// number ("!lastseq <n>").
	metaPrefix = "!lastseq "
	// probeLine is what Probe durably appends: a comment, invisible to
	// recovery and dropped at the next compaction.
	probeLine = "# probe\n"
)

// Journal is an open write-ahead log. It is safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	fsys    faultfs.FS
	dir     string
	path    string // the journal file path
	f       faultfs.File
	nextSeq uint64
	size    int64 // last-known-good journal length in bytes
	closed  bool
	// wedged is non-nil after a failed append rollback: the on-disk
	// tail may hold a half-written batch at an offset this handle can
	// no longer trust, so every further write is refused until the
	// store is reopened (which truncates the torn tail away).
	wedged error

	// retries is how many times a failed append attempt is retried
	// (after rolling back), with backoff doubling each time.
	retries int
	backoff time.Duration
	// jitter, when non-nil, randomizes each retry sleep to a uniform
	// draw from [backoff/2, backoff*3/2), so a fleet of journals (one
	// per shard, one per follower) hitting the same transient stall
	// does not retry in lockstep. The source is injected, never the
	// global one, so tests and replay stay deterministic.
	jitter *rand.Rand

	// onAppend, when set via OnAppend, observes every durably
	// committed batch for replication shipping; see replicate.go.
	onAppend ShipFunc

	// metrics, when set, observes append/fsync/compaction cost; nil
	// (the default) is a no-op.
	metrics *Metrics
}

// Option configures an opened journal.
type Option func(*Journal)

// WithRetry sets the bounded retry policy for failed append attempts:
// up to retries re-attempts after the first failure, sleeping backoff
// before the first retry and doubling it each time. retries < 0 is
// treated as 0 (fail on the first error).
func WithRetry(retries int, backoff time.Duration) Option {
	return func(j *Journal) {
		if retries < 0 {
			retries = 0
		}
		j.retries = retries
		j.backoff = backoff
	}
}

// WithRetryJitter attaches a seeded randomness source that spreads the
// WithRetry backoff sleeps over [backoff/2, backoff*3/2), de-syncing
// retry storms across shards and followers that share a stalled
// device. The source is injected rather than global so the replay and
// torture paths stay deterministic under a fixed seed; nil disables
// jitter (the default, exact exponential backoff).
func WithRetryJitter(rnd *rand.Rand) Option {
	return func(j *Journal) { j.jitter = rnd }
}

// jitterBackoff returns the sleep for one retry: d exactly when no
// jitter source is attached, otherwise a uniform draw from [d/2, 3d/2)
// so concurrent retriers spread out instead of thundering together.
func jitterBackoff(rnd *rand.Rand, d time.Duration) time.Duration {
	if rnd == nil || d <= 0 {
		return d
	}
	return d/2 + time.Duration(rnd.Int63n(int64(d)))
}

// Metrics are the durability cost instruments a Journal reports. Every
// field is optional; nil fields — and a nil *Metrics — are no-ops, so a
// journal embedded without telemetry pays only a nil check per append.
type Metrics struct {
	// AppendSeconds times whole append batches (marshal + write +
	// fsync).
	AppendSeconds *telemetry.Histogram
	// FsyncSeconds times the fsync alone, isolating stalls caused by
	// the storage device from the cheap in-memory framing.
	FsyncSeconds *telemetry.Histogram
	// AppendBytes counts journal bytes written by appends.
	AppendBytes *telemetry.Counter
	// AppendRecords counts journaled records.
	AppendRecords *telemetry.Counter
	// AppendRetries counts append attempts retried after a transient
	// write or fsync failure.
	AppendRetries *telemetry.Counter
	// AppendRollbacks counts truncate-to-last-good rollbacks performed
	// after a failed append attempt.
	AppendRollbacks *telemetry.Counter
	// SnapshotSeconds times compactions (snapshot write + rename +
	// journal truncation).
	SnapshotSeconds *telemetry.Histogram
	// SnapshotBytes reports the size of the last written snapshot.
	SnapshotBytes *telemetry.Gauge
	// SizeBytes tracks the current journal file size; compaction drops
	// it back to the header.
	SizeBytes *telemetry.Gauge
}

// SetMetrics attaches (or, with nil, detaches) durability cost
// instruments and primes the size gauge with the current journal size.
func (j *Journal) SetMetrics(m *Metrics) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.metrics = m
	if m != nil {
		m.SizeBytes.Set(float64(j.size))
	}
}

// Size returns the current journal file size in bytes.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// ErrClosed is returned by operations on a closed journal.
var ErrClosed = errors.New("journal: closed")

// ErrWedged is returned by writes after a failed append rollback left
// the file tail in an untrusted state; reopening the store truncates
// the tail and clears the condition.
var ErrWedged = errors.New("journal: wedged by a failed append rollback; reopen required")

// ShardDir returns the conventional sub-directory name for one shard's
// journal segment inside a sharded store: "shard-NNN". The zero-padded
// fixed width keeps directory listings sorted by shard index.
func ShardDir(shard int) string {
	return fmt.Sprintf("shard-%03d", shard)
}

// Open opens (creating it if needed) the store directory on the real
// filesystem, recovers the persisted records — snapshot first, then the
// journal tail — and returns the journal ready for appending. A torn
// journal tail is truncated away; see the package comment.
func Open(dir string, opts ...Option) (*Journal, []Record, error) {
	return OpenFS(faultfs.OS{}, dir, opts...)
}

// OpenFS is Open over an explicit filesystem implementation — the
// fault-injection seam. Production callers use Open.
func OpenFS(fsys faultfs.FS, dir string, opts ...Option) (*Journal, []Record, error) {
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	// Stale temp files are debris from a crashed snapshot or format
	// migration; the rename never happened, so they are dead weight.
	_ = fsys.Remove(filepath.Join(dir, snapshotTemp))
	_ = fsys.Remove(filepath.Join(dir, journalTemp))

	recs, lastSeq, err := readSnapshot(fsys, filepath.Join(dir, snapshotFile))
	if err != nil {
		return nil, nil, err
	}
	jpath := filepath.Join(dir, journalFile)
	scan, err := readJournal(fsys, jpath)
	if err != nil {
		return nil, nil, err
	}
	if scan.legacy {
		// Rewrite the v1 journal in the commit-framed format so every
		// later open parses one format only.
		if err := migrate(fsys, dir, &scan); err != nil {
			return nil, nil, err
		}
	} else if sz, err := fsys.Size(jpath); err == nil && sz > scan.validLen {
		// Torn or corrupt tail: truncate back to the last committed
		// batch.
		if err := fsys.Truncate(jpath, scan.validLen); err != nil {
			return nil, nil, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	nextSeq := lastSeq + 1
	for i, r := range scan.recs {
		if scan.seqs[i] <= lastSeq {
			continue // already folded into the snapshot
		}
		recs = append(recs, r)
	}
	if scan.maxSeq >= nextSeq {
		nextSeq = scan.maxSeq + 1
	}
	f, err := fsys.OpenFile(jpath, os.O_CREATE|os.O_WRONLY|os.O_APPEND)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	size, _ := fsys.Size(jpath)
	if size == 0 {
		if _, err := f.Write([]byte(fileHeader + "\n")); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: %w", err)
		}
		size = int64(len(fileHeader) + 1)
	}
	j := &Journal{
		fsys: fsys, dir: dir, path: jpath, f: f,
		nextSeq: nextSeq, size: size,
		retries: 2, backoff: 2 * time.Millisecond,
	}
	for _, o := range opts {
		o(j)
	}
	return j, recs, nil
}

// Dir returns the store directory.
func (j *Journal) Dir() string { return j.dir }

// Append durably writes the records as one batch: all lines are written
// with consecutive sequence numbers, framed by a commit marker, and
// fsync'd once. On error none of the batch is durable — recovery drops
// an uncommitted batch entirely — and the in-file state has been rolled
// back so a retry cannot interleave with the torn bytes.
func (j *Journal) Append(recs ...Record) error {
	return j.AppendCtx(context.Background(), recs...)
}

// AppendCtx is Append carrying the caller's request context for span
// provenance: the batch is recorded as a journal.append span (records,
// bytes) with the fsyncs as child spans, so a retained trace attributes
// a slow mutation to the device, not the framing. Durability semantics
// are identical to Append — the context does not cancel the write; a
// batch either commits whole or rolls back.
//
//cpvet:lockheld j.mu is the durability serialization point: batches must reach the disk in sequence order, so the fsync happens under the lock by design
func (j *Journal) AppendCtx(ctx context.Context, recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.wedged != nil {
		return j.wedged
	}
	ctx, sp := tracing.Start(ctx, "journal.append")
	defer sp.End()
	sp.SetInt("records", int64(len(recs)))
	var start time.Time
	if j.metrics != nil {
		start = time.Now()
	}
	seq := j.nextSeq
	var b strings.Builder
	for _, r := range recs {
		if !r.Op.valid() {
			err := fmt.Errorf("journal: invalid op %q", string(rune(r.Op)))
			sp.Fail(err)
			return err
		}
		line, err := marshal(r, seq)
		if err != nil {
			sp.Fail(err)
			return err
		}
		b.WriteString(line)
		seq++
	}
	commit, err := marshal(Record{Op: opCommit, Line: strconv.Itoa(len(recs))}, seq)
	if err != nil {
		sp.Fail(err)
		return err
	}
	b.WriteString(commit)
	commitSeq := seq
	seq++
	batch := b.String()
	sp.SetInt("bytes", int64(len(batch)))
	if err := j.writeDurable(ctx, batch, start); err != nil {
		sp.Fail(err)
		return err
	}
	firstSeq := j.nextSeq
	j.nextSeq = seq
	j.size += int64(b.Len())
	if m := j.metrics; m != nil {
		m.AppendSeconds.ObserveSince(start)
		m.AppendBytes.Add(b.Len())
		m.AppendRecords.Add(len(recs))
		m.SizeBytes.Set(float64(j.size))
	}
	if j.onAppend != nil {
		// []byte(batch) is a fresh copy, so the observer may retain it.
		j.onAppend(firstSeq, commitSeq, []byte(batch))
	}
	return nil
}

// Probe verifies the append path end to end by durably writing a
// comment line, which recovery ignores and the next compaction drops.
// It is what a degraded-mode health probe calls to test whether the
// store has recovered. The caller must hold no expectations about
// sequence numbers: a probe consumes none.
//
//cpvet:lockheld the probe is a durable no-op append and shares the append path's lock-across-fsync design
func (j *Journal) Probe() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.wedged != nil {
		return j.wedged
	}
	if err := j.writeDurable(context.Background(), probeLine, time.Time{}); err != nil {
		return err
	}
	j.size += int64(len(probeLine))
	if m := j.metrics; m != nil {
		m.SizeBytes.Set(float64(j.size))
	}
	return nil
}

// writeDurable writes s at the journal tail and fsyncs, retrying
// transient failures up to j.retries times. Every failed attempt first
// rolls the file back to the last-known-good offset (j.size); if that
// rollback fails the journal wedges. Callers hold j.mu. ctx carries
// span provenance only (each fsync attempt becomes a journal.fsync
// span); it does not cancel the write.
func (j *Journal) writeDurable(ctx context.Context, s string, metricStart time.Time) error {
	backoff := j.backoff
	for attempt := 0; ; attempt++ {
		err := func() error {
			if _, err := j.f.Write([]byte(s)); err != nil {
				return fmt.Errorf("journal: append: %w", err)
			}
			var syncStart time.Time
			if j.metrics != nil && !metricStart.IsZero() {
				syncStart = time.Now()
			}
			_, fsp := tracing.Start(ctx, "journal.fsync")
			err := j.f.Sync()
			fsp.Fail(err)
			fsp.End()
			if err != nil {
				return fmt.Errorf("journal: fsync: %w", err)
			}
			if m := j.metrics; m != nil && !syncStart.IsZero() {
				m.FsyncSeconds.ObserveSince(syncStart)
			}
			return nil
		}()
		if err == nil {
			return nil
		}
		// Roll back to the last-known-good offset so the torn bytes of
		// this attempt cannot interleave with a later one.
		if terr := j.f.Truncate(j.size); terr != nil {
			j.wedged = fmt.Errorf("%w (rollback: %w; append: %w)", ErrWedged, terr, err)
			return j.wedged
		}
		if m := j.metrics; m != nil {
			m.AppendRollbacks.Inc()
		}
		if attempt >= j.retries {
			return err
		}
		if m := j.metrics; m != nil {
			m.AppendRetries.Inc()
		}
		time.Sleep(jitterBackoff(j.jitter, backoff))
		backoff *= 2
	}
}

// Snapshot atomically replaces the snapshot with the given compacted
// state and truncates the journal. state should reconstruct the full
// current database when replayed (typically OpUser + OpAdd records).
func (j *Journal) Snapshot(state []Record) error {
	return j.SnapshotCtx(context.Background(), state)
}

// SnapshotCtx is Snapshot carrying the caller's context for span
// provenance: the compaction is recorded as a journal.compact span
// (records, snapshot bytes), so a trace of a request stalled behind
// compaction names the stall. The context does not cancel the
// compaction.
//
//cpvet:lockheld compaction swaps the snapshot and truncates the journal; appends must not interleave, so the lock covers the fsyncs
func (j *Journal) SnapshotCtx(ctx context.Context, state []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.wedged != nil {
		return j.wedged
	}
	_, sp := tracing.Start(ctx, "journal.compact")
	defer sp.End()
	sp.SetInt("records", int64(len(state)))
	err := j.snapshotLocked(state)
	sp.Fail(err)
	return err
}

// snapshotLocked is the compaction body; callers hold j.mu.
func (j *Journal) snapshotLocked(state []Record) error {
	var start time.Time
	if j.metrics != nil {
		start = time.Now()
	}
	lastSeq := j.nextSeq - 1
	var b strings.Builder
	b.WriteString(fileHeader + " snapshot\n")
	fmt.Fprintf(&b, "%s%d\n", metaPrefix, lastSeq)
	for _, r := range state {
		line, err := marshal(r, lastSeq)
		if err != nil {
			return err
		}
		b.WriteString(line)
	}
	tmp := filepath.Join(j.dir, snapshotTemp)
	if err := writeFileSync(j.fsys, tmp, b.String()); err != nil {
		return err
	}
	final := filepath.Join(j.dir, snapshotFile)
	if err := j.fsys.Rename(tmp, final); err != nil {
		return fmt.Errorf("journal: snapshot rename: %w", err)
	}
	if err := syncDir(j.fsys, j.dir); err != nil {
		return err
	}
	// Compaction: the snapshot now owns everything up to lastSeq, so
	// the journal restarts empty.
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("journal: compacting: %w", err)
	}
	j.size = 0
	if _, err := j.f.Write([]byte(fileHeader + "\n")); err != nil {
		return fmt.Errorf("journal: compacting: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	j.size = int64(len(fileHeader) + 1)
	if m := j.metrics; m != nil {
		m.SnapshotSeconds.ObserveSince(start)
		m.SnapshotBytes.Set(float64(b.Len()))
		m.SizeBytes.Set(float64(j.size))
	}
	return nil
}

// Close flushes and closes the journal. Further operations return
// ErrClosed.
//
//cpvet:lockheld the final flush must exclude concurrent appends; cold path, runs once at shutdown
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return fmt.Errorf("journal: fsync: %w", err)
	}
	return j.f.Close()
}

// marshal renders one record line.
func marshal(r Record, seq uint64) (string, error) {
	if !r.Op.valid() && r.Op != opCommit {
		return "", fmt.Errorf("journal: invalid op %q", string(rune(r.Op)))
	}
	if strings.ContainsAny(r.Line, "\n\r") {
		return "", fmt.Errorf("journal: payload contains a line break: %q", r.Line)
	}
	return fmt.Sprintf("%c\t%d\t%s\t%08x\t%s\n",
		byte(r.Op), seq, strconv.Quote(r.User), crc32.ChecksumIEEE([]byte(r.Line)), r.Line), nil
}

// parseRecord reads one record line (without its trailing newline).
func parseRecord(line string) (Record, uint64, error) {
	parts := strings.SplitN(line, "\t", 5)
	if len(parts) != 5 {
		return Record{}, 0, fmt.Errorf("journal: %d fields, want 5", len(parts))
	}
	if len(parts[0]) != 1 || !(Op(parts[0][0]).valid() || Op(parts[0][0]) == opCommit) {
		return Record{}, 0, fmt.Errorf("journal: invalid op %q", parts[0])
	}
	seq, err := strconv.ParseUint(parts[1], 10, 64)
	if err != nil {
		return Record{}, 0, fmt.Errorf("journal: bad sequence number %q", parts[1])
	}
	user, err := strconv.Unquote(parts[2])
	if err != nil {
		return Record{}, 0, fmt.Errorf("journal: bad user field %q", parts[2])
	}
	sum, err := strconv.ParseUint(parts[3], 16, 32)
	if err != nil {
		return Record{}, 0, fmt.Errorf("journal: bad checksum field %q", parts[3])
	}
	if got := crc32.ChecksumIEEE([]byte(parts[4])); got != uint32(sum) {
		return Record{}, 0, fmt.Errorf("journal: checksum mismatch (%08x != %08x)", got, sum)
	}
	return Record{Op: Op(parts[0][0]), User: user, Line: parts[4]}, seq, nil
}

// readSnapshot strictly parses the snapshot file (it is written
// atomically, so any damage is real corruption, not a torn write).
// Missing file means empty state.
//
//cpvet:deterministic
func readSnapshot(fsys faultfs.FS, path string) ([]Record, uint64, error) {
	data, err := fsys.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("journal: reading snapshot: %w", err)
	}
	recs, lastSeq, _, err := parseSnapshot(data)
	return recs, lastSeq, err
}

// parseSnapshot strictly parses a snapshot rendering. hasMeta reports
// whether a "!lastseq" line was present — a snapshot shipped over the
// replication wire must carry one, while a locally written snapshot
// always does.
//
//cpvet:deterministic
func parseSnapshot(data []byte) (recs []Record, lastSeq uint64, hasMeta bool, err error) {
	for ln, raw := range strings.Split(string(data), "\n") {
		// Only trim the line ending: a record with an empty payload
		// legitimately ends in a tab.
		line := strings.TrimRight(raw, "\r")
		if strings.TrimSpace(line) == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if rest, ok := strings.CutPrefix(line, metaPrefix); ok {
			lastSeq, err = strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				return nil, 0, false, fmt.Errorf("journal: snapshot line %d: bad lastseq: %w", ln+1, err)
			}
			hasMeta = true
			continue
		}
		r, _, err := parseRecord(line)
		if err != nil {
			return nil, 0, false, fmt.Errorf("journal: snapshot line %d: %w", ln+1, err)
		}
		if r.Op == opCommit {
			return nil, 0, false, fmt.Errorf("journal: snapshot line %d: commit marker in snapshot", ln+1)
		}
		recs = append(recs, r)
	}
	return recs, lastSeq, hasMeta, nil
}

// journalScan is the result of tolerantly parsing the journal file.
type journalScan struct {
	// recs/seqs hold the committed records in order.
	recs []Record
	seqs []uint64
	// maxSeq is the highest committed sequence number, including the
	// commit markers' own numbers.
	maxSeq uint64
	// validLen is the byte length of the committed prefix; everything
	// past it is a torn or corrupt tail to truncate away.
	validLen int64
	// legacy reports the v1 header: per-record durability, no commit
	// markers.
	legacy bool
}

// readJournal tolerantly parses the journal: it stops at the first
// invalid, unterminated, or mis-framed line and reports the byte length
// of the committed prefix so the caller can truncate the tail away. In
// the commit-framed format, records are buffered until their batch's
// commit marker is seen — an uncommitted batch is dropped entirely.
//
//cpvet:deterministic
func readJournal(fsys faultfs.FS, path string) (journalScan, error) {
	var scan journalScan
	data, err := fsys.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return scan, nil
	}
	if err != nil {
		return scan, fmt.Errorf("journal: reading journal: %w", err)
	}
	scan.legacy = bytes.HasPrefix(data, []byte(legacyHeader+"\n")) ||
		string(data) == legacyHeader // torn header newline: still v1
	var pending []Record
	var pendingSeqs []uint64
	off := 0
scanLoop:
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // unterminated final line: torn write
		}
		end := off + nl + 1
		line := strings.TrimRight(string(data[off:off+nl]), "\r")
		if strings.TrimSpace(line) == "" || strings.HasPrefix(line, "#") {
			// Comments between batches (the header, probe lines) are
			// committed ground; mid-batch they cannot occur, and
			// advancing there would resurrect a torn batch.
			if len(pending) == 0 {
				scan.validLen = int64(end)
			}
			off = end
			continue
		}
		r, seq, perr := parseRecord(line)
		if perr != nil {
			break // corrupt record: keep only the prefix before it
		}
		switch {
		case scan.legacy:
			if r.Op == opCommit {
				// v1 journals have no commit markers; one is corruption.
				break scanLoop
			}
			scan.recs = append(scan.recs, r)
			scan.seqs = append(scan.seqs, seq)
			if seq > scan.maxSeq {
				scan.maxSeq = seq
			}
			scan.validLen = int64(end)
		case r.Op == opCommit:
			count, cerr := strconv.Atoi(r.Line)
			if cerr != nil || count != len(pending) || count == 0 {
				break scanLoop // mis-framed commit: corruption
			}
			scan.recs = append(scan.recs, pending...)
			scan.seqs = append(scan.seqs, pendingSeqs...)
			pending, pendingSeqs = pending[:0], pendingSeqs[:0]
			if seq > scan.maxSeq {
				scan.maxSeq = seq
			}
			scan.validLen = int64(end)
		default:
			pending = append(pending, r)
			pendingSeqs = append(pendingSeqs, seq)
		}
		off = end
	}
	return scan, nil
}

// migrate atomically rewrites a v1 journal in the commit-framed format,
// wrapping its surviving records in a single batch. scan.maxSeq is
// advanced past the new commit marker.
//
//cpvet:deterministic
func migrate(fsys faultfs.FS, dir string, scan *journalScan) error {
	var b strings.Builder
	b.WriteString(fileHeader + "\n")
	if len(scan.recs) > 0 {
		for i, r := range scan.recs {
			line, err := marshal(r, scan.seqs[i])
			if err != nil {
				return fmt.Errorf("journal: migrating v1 journal: %w", err)
			}
			b.WriteString(line)
		}
		commitSeq := scan.maxSeq + 1
		commit, err := marshal(Record{Op: opCommit, Line: strconv.Itoa(len(scan.recs))}, commitSeq)
		if err != nil {
			return fmt.Errorf("journal: migrating v1 journal: %w", err)
		}
		b.WriteString(commit)
		scan.maxSeq = commitSeq
	}
	tmp := filepath.Join(dir, journalTemp)
	if err := writeFileSync(fsys, tmp, b.String()); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, journalFile)); err != nil {
		return fmt.Errorf("journal: migrating v1 journal: %w", err)
	}
	return syncDir(fsys, dir)
}

// writeFileSync writes content to path and fsyncs it.
func writeFileSync(fsys faultfs.FS, path, content string) error {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Write([]byte(content)); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: fsync: %w", err)
	}
	return f.Close()
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(fsys faultfs.FS, dir string) error {
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("journal: fsync dir: %w", err)
	}
	return nil
}
