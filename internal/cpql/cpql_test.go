package cpql

import (
	"strings"
	"testing"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/relation"
)

func TestParseEmpty(t *testing.T) {
	cq, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if cq.TopK != 0 || cq.Selection != nil || cq.Ecod != nil {
		t.Errorf("empty query = %+v", cq)
	}
	if Format(cq) != "" {
		t.Errorf("Format(empty) = %q", Format(cq))
	}
}

func TestParseTop(t *testing.T) {
	cq, err := Parse("top 5")
	if err != nil || cq.TopK != 5 {
		t.Fatalf("Parse(top 5) = %+v, %v", cq, err)
	}
	for _, bad := range []string{"top", "top zero", "top -3", "top 0", "top 1.5"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseWhere(t *testing.T) {
	cq, err := Parse("where type = museum and open_air = true and admission_cost <= 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(cq.Selection) != 3 {
		t.Fatalf("predicates = %d", len(cq.Selection))
	}
	p := cq.Selection[0]
	if p.Col != "type" || p.Op != relation.OpEq || !p.Val.Equal(relation.S("museum")) {
		t.Errorf("pred 0 = %+v", p)
	}
	if cq.Selection[1].Val.Kind() != relation.KindBool {
		t.Errorf("pred 1 kind = %v", cq.Selection[1].Val.Kind())
	}
	if cq.Selection[2].Op != relation.OpLe || cq.Selection[2].Val.Kind() != relation.KindInt {
		t.Errorf("pred 2 = %+v", cq.Selection[2])
	}
	// Quoted values may contain keywords.
	cq, err = Parse(`where name = "top of the hill"`)
	if err != nil {
		t.Fatal(err)
	}
	if got := cq.Selection[0].Val.Str(); got != "top of the hill" {
		t.Errorf("quoted value = %q", got)
	}
	for _, bad := range []string{"where", "where type museum", "where and"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseContext(t *testing.T) {
	env := ctxmodel.MustReferenceEnvironment()
	cq, err := Parse("context location = Athens; temperature in {warm, hot} or accompanying_people = family")
	if err != nil {
		t.Fatal(err)
	}
	if len(cq.Ecod) != 2 {
		t.Fatalf("composites = %d", len(cq.Ecod))
	}
	states, err := cq.Ecod.Context(env)
	if err != nil {
		t.Fatal(err)
	}
	// (Athens, warm, all), (Athens, hot, all), (all, all, family).
	if len(states) != 3 {
		t.Errorf("states = %v", states)
	}
	// Range atoms.
	cq, err = Parse("context temperature between mild, hot")
	if err != nil {
		t.Fatal(err)
	}
	states, err = cq.Ecod.Context(env)
	if err != nil || len(states) != 3 {
		t.Errorf("range context = %v, %v", states, err)
	}
	for _, bad := range []string{
		"context",
		"context garbage atom",
		"context location = Athens;",
		"context location = Athens; location = Plaka", // repeated param
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseFullQuery(t *testing.T) {
	cq, err := Parse("top 10 where type = museum context location = Athens or time = morning")
	if err != nil {
		t.Fatal(err)
	}
	if cq.TopK != 10 || len(cq.Selection) != 1 || len(cq.Ecod) != 2 {
		t.Errorf("full query = %+v", cq)
	}
}

func TestParseClauseOrder(t *testing.T) {
	bad := []string{
		"where type = museum top 5",                  // top after where
		"context time = morning top 5",               // top after context
		"context time = morning where type = museum", // where after context
		"top 5 top 6", // duplicate
		"hello world", // no keyword
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestSplitKeywordBraces(t *testing.T) {
	// "or" inside braces must not split composites... values with
	// spaces around commas keep brace depth balanced per field.
	parts := splitKeyword("location in {a, b} or time = morning", "or")
	if len(parts) != 2 {
		t.Fatalf("parts = %v", parts)
	}
	parts = splitKeyword("a and b and c", "and")
	if len(parts) != 3 {
		t.Fatalf("parts = %v", parts)
	}
	// Leading keyword does not produce an empty part.
	parts = splitKeyword("and a", "and")
	if len(parts) != 1 {
		t.Fatalf("leading keyword parts = %v", parts)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	queries := []string{
		"top 5",
		"where type = museum",
		"top 3 where type = museum and open_air = true",
		"context location = Athens; temperature in {warm, hot} or accompanying_people = family",
		"top 7 where admission_cost <= 10.5 context temperature between mild, hot",
	}
	for _, q := range queries {
		cq, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		text := Format(cq)
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(Format(%q)) = %q failed: %v", q, text, err)
		}
		if back.TopK != cq.TopK || len(back.Selection) != len(cq.Selection) || len(back.Ecod) != len(cq.Ecod) {
			t.Errorf("round-trip mismatch: %q -> %q", q, text)
		}
		if Format(back) != text {
			t.Errorf("Format not stable: %q vs %q", Format(back), text)
		}
	}
	// Format quotes string values so they re-parse.
	cq, _ := Parse(`where name = "top secret"`)
	if !strings.Contains(Format(cq), `"top secret"`) {
		t.Errorf("Format(%+v) = %q should quote strings", cq, Format(cq))
	}
}
