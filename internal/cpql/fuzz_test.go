package cpql

import "testing"

// FuzzParse checks that the query parser never panics and that
// Parse∘Format is idempotent on accepted inputs.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"top 5",
		"where type = museum and open_air = true",
		"context location = Athens; temperature in {warm, hot} or accompanying_people = family",
		"top 7 where admission_cost <= 10.5 context temperature between mild, hot",
		"top top top",
		"where and and",
		"context ; ;",
		"top -1 where",
		"TOP 5 WHERE type = museum", // uppercase keywords
		"top 5 where name = \"top secret\"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		cq, err := Parse(text)
		if err != nil {
			return
		}
		rendered := Format(cq)
		back, err := Parse(rendered)
		if err != nil {
			t.Fatalf("Format(%q) = %q does not re-parse: %v", text, rendered, err)
		}
		if back.TopK != cq.TopK || len(back.Selection) != len(cq.Selection) || len(back.Ecod) != len(cq.Ecod) {
			t.Fatalf("round-trip mismatch for %q: %+v vs %+v", text, cq, back)
		}
		if again := Format(back); again != rendered {
			t.Fatalf("Format not stable for %q: %q vs %q", text, rendered, again)
		}
	})
}
