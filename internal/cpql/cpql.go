// Package cpql implements a small textual language for contextual
// preference queries, used by the cpdb shell and offered as a library
// convenience. A query is a sequence of optional clauses, in order:
//
//	[top K] [where PRED {and PRED}] [context COMPOSITE {or COMPOSITE}]
//
// where PRED is "column op value" (op ∈ {=, !=, <, <=, >, >=}; values
// are typed by inference: quoted → string, true/false → bool, integer,
// float, bare word → string) and COMPOSITE is a ';'-separated list of
// context descriptor atoms: "param = value", "param in {v1, v2}",
// "param between lo, hi". Examples:
//
//	top 5
//	where type = museum and open_air = true
//	top 10 context location = Athens; temperature in {warm, hot} or accompanying_people = family
//	top 3 where admission_cost <= 10 context time = morning
//
// The "context" clause builds the query's extended descriptor
// (disjunction of composites, Def. 8); without it the query uses the
// caller's current context.
package cpql

import (
	"fmt"
	"strconv"
	"strings"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/preference"
	"contextpref/internal/query"
	"contextpref/internal/relation"
)

// keywords that start a clause, in the order they must appear.
var keywords = []string{"top", "where", "context"}

// Parse reads a query. The empty string is a valid query (no
// truncation, no selection, implicit context).
func Parse(text string) (query.Contextual, error) {
	segs, err := segment(text)
	if err != nil {
		return query.Contextual{}, err
	}
	var cq query.Contextual
	if topText, ok := segs["top"]; ok {
		k, err := strconv.Atoi(strings.TrimSpace(topText))
		if err != nil || k <= 0 {
			return query.Contextual{}, fmt.Errorf("cpql: 'top' needs a positive integer, got %q", topText)
		}
		cq.TopK = k
	}
	if whereText, ok := segs["where"]; ok {
		preds, err := parseWhere(whereText)
		if err != nil {
			return query.Contextual{}, err
		}
		cq.Selection = preds
	}
	if ctxText, ok := segs["context"]; ok {
		ecod, err := parseContext(ctxText)
		if err != nil {
			return query.Contextual{}, err
		}
		cq.Ecod = ecod
	}
	return cq, nil
}

// segment splits the query into its keyword-introduced clauses and
// validates their order and uniqueness.
func segment(text string) (map[string]string, error) {
	fields := strings.Fields(text)
	segs := make(map[string]string, len(keywords))
	lastKeyword := -1
	current := ""
	var parts []string
	flush := func() error {
		if current == "" {
			if len(parts) > 0 {
				return fmt.Errorf("cpql: query must start with one of %v, got %q", keywords, parts[0])
			}
			return nil
		}
		segs[current] = strings.Join(parts, " ")
		parts = nil
		return nil
	}
	for _, f := range fields {
		ki := keywordIndex(strings.ToLower(f))
		// A keyword token only opens a clause at the top level; inside
		// a clause body the words "in"/"between" etc. are never clause
		// keywords, and "top"/"where"/"context" cannot appear as bare
		// body words in the grammar.
		if ki >= 0 {
			if err := flush(); err != nil {
				return nil, err
			}
			if ki <= lastKeyword {
				if _, dup := segs[keywords[ki]]; dup {
					return nil, fmt.Errorf("cpql: duplicate clause %q", keywords[ki])
				}
				return nil, fmt.Errorf("cpql: clause %q out of order (expected top, where, context)", keywords[ki])
			}
			lastKeyword = ki
			current = keywords[ki]
			continue
		}
		parts = append(parts, f)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	for kw, body := range segs {
		if strings.TrimSpace(body) == "" {
			return nil, fmt.Errorf("cpql: clause %q has no body", kw)
		}
	}
	return segs, nil
}

func keywordIndex(word string) int {
	for i, k := range keywords {
		if word == k {
			return i
		}
	}
	return -1
}

// reserved are the grammar's bare keywords; they cannot appear as
// unquoted identifiers or context values, or the rendered query would
// not re-parse. Quote string values ("name = \"or\"") to use them.
var reserved = map[string]bool{
	"top": true, "where": true, "context": true, "and": true, "or": true,
	"in": true, "between": true,
}

// checkWord rejects reserved words used as bare identifiers, and
// multi-token identifiers: the whitespace grammar cannot round-trip a
// context value like "or 0", and every hierarchy value is a single
// token anyway.
func checkWord(kind, w string) error {
	if reserved[strings.ToLower(w)] {
		return fmt.Errorf("cpql: reserved word %q cannot be a bare %s (quote it if it is a value)", w, kind)
	}
	if len(strings.Fields(w)) != 1 {
		return fmt.Errorf("cpql: %s %q must be a single token", kind, w)
	}
	return nil
}

// parseWhere reads "pred and pred and ...".
func parseWhere(text string) ([]relation.Predicate, error) {
	var out []relation.Predicate
	for _, part := range splitKeyword(text, "and") {
		clause, err := preference.ParseClause(part)
		if err != nil {
			return nil, fmt.Errorf("cpql: %w", err)
		}
		// Only the attribute needs the reserved-word check: the
		// formatter always quotes string values, so a value like "or"
		// re-parses unambiguously.
		if err := checkWord("column", clause.Attr); err != nil {
			return nil, err
		}
		out = append(out, clause.Predicate())
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cpql: empty where clause")
	}
	return out, nil
}

// parseContext reads "composite or composite or ...".
func parseContext(text string) (ctxmodel.ExtendedDescriptor, error) {
	var out ctxmodel.ExtendedDescriptor
	for _, comp := range splitKeyword(text, "or") {
		var pds []ctxmodel.ParamDescriptor
		for _, atom := range strings.Split(comp, ";") {
			if strings.TrimSpace(atom) == "" {
				return nil, fmt.Errorf("cpql: empty descriptor atom in %q", comp)
			}
			pd, err := preference.ParseParamDescriptor(atom)
			if err != nil {
				return nil, fmt.Errorf("cpql: %w", err)
			}
			if err := checkWord("context parameter", pd.Param); err != nil {
				return nil, err
			}
			for _, v := range pd.Values {
				if err := checkWord("context value", v); err != nil {
					return nil, err
				}
			}
			pds = append(pds, pd)
		}
		d, err := ctxmodel.NewDescriptor(pds...)
		if err != nil {
			return nil, fmt.Errorf("cpql: %w", err)
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cpql: empty context clause")
	}
	return out, nil
}

// splitKeyword splits text on a lowercase word boundary keyword ("and"
// / "or"), ignoring it inside braces so "in {a, b}" set values survive.
func splitKeyword(text, kw string) []string {
	fields := strings.Fields(text)
	var out []string
	var cur []string
	depth := 0
	for _, f := range fields {
		depth += strings.Count(f, "{") - strings.Count(f, "}")
		if depth == 0 && strings.ToLower(f) == kw && len(cur) > 0 {
			out = append(out, strings.Join(cur, " "))
			cur = nil
			continue
		}
		cur = append(cur, f)
	}
	if len(cur) > 0 {
		out = append(out, strings.Join(cur, " "))
	}
	return out
}

// Format renders a contextual query back into the language (modulo
// whitespace); useful for echoing parsed queries.
func Format(cq query.Contextual) string {
	var parts []string
	if cq.TopK > 0 {
		parts = append(parts, fmt.Sprintf("top %d", cq.TopK))
	}
	if len(cq.Selection) > 0 {
		preds := make([]string, len(cq.Selection))
		for i, p := range cq.Selection {
			preds[i] = fmt.Sprintf("%s %s %s", p.Col, p.Op, preference.FormatValue(p.Val))
		}
		parts = append(parts, "where "+strings.Join(preds, " and "))
	}
	if len(cq.Ecod) > 0 {
		comps := make([]string, len(cq.Ecod))
		for i, d := range cq.Ecod {
			var atoms []string
			for _, pd := range d.ParamDescriptors() {
				switch pd.Kind {
				case ctxmodel.KindEq:
					atoms = append(atoms, fmt.Sprintf("%s = %s", pd.Param, pd.Values[0]))
				case ctxmodel.KindIn:
					atoms = append(atoms, fmt.Sprintf("%s in {%s}", pd.Param, strings.Join(pd.Values, ", ")))
				case ctxmodel.KindRange:
					atoms = append(atoms, fmt.Sprintf("%s between %s, %s", pd.Param, pd.Values[0], pd.Values[1]))
				}
			}
			comps[i] = strings.Join(atoms, "; ")
		}
		parts = append(parts, "context "+strings.Join(comps, " or "))
	}
	return strings.Join(parts, " ")
}
