// Package hierarchy implements multidimensional attribute hierarchies as
// defined in Section 3.1 of "Adding Context to Preferences" (Stefanidis,
// Pitoura, Vassiliadis — ICDE 2007).
//
// A hierarchy is a chain of levels L1 ≺ L2 ≺ ... ≺ ALL where L1 is the
// detailed level and ALL is the single top level whose only value is
// "all". Values of adjacent levels are related through ancestor (anc)
// functions; anc functions across non-adjacent levels are obtained by
// composition, and desc functions are their inverses.
//
// The paper allows a general lattice of levels; every hierarchy used in
// the paper (location, temperature, accompanying_people, and the
// synthetic ones in the evaluation) is a chain, and the level-distance
// metric of Def. 14 (minimum path length) degenerates to the absolute
// difference of level indexes on a chain. This package therefore
// implements chains of levels over tree-structured value sets, which is
// exactly the structure every experiment in the paper exercises.
package hierarchy

import (
	"fmt"
	"sort"
	"strings"
)

// All is the unique value of the ALL level of every hierarchy.
const All = "all"

// LevelAll is the conventional name of the top level of every hierarchy.
const LevelAll = "ALL"

// Hierarchy is an immutable chain of levels over a tree of values. The
// detailed level has index 0 and the ALL level has index NumLevels()-1.
// Build one with a Builder; the zero Hierarchy is not usable.
type Hierarchy struct {
	name   string
	levels []string // level names, detailed first, LevelAll last

	levelIndex map[string]int // level name -> index
	valueLevel map[string]int // value -> level index
	parent     map[string]string
	children   map[string][]string // value -> ordered children (next level down)
	valuesAt   [][]string          // per level, values in insertion order
	rank       map[string]int      // value -> position within its level (total order)
}

// Name returns the hierarchy's name (usually the context parameter name).
func (h *Hierarchy) Name() string { return h.name }

// Levels returns the level names from the detailed level up to ALL.
func (h *Hierarchy) Levels() []string {
	out := make([]string, len(h.levels))
	copy(out, h.levels)
	return out
}

// NumLevels returns the number of levels, including ALL.
func (h *Hierarchy) NumLevels() int { return len(h.levels) }

// LevelName returns the name of the level with the given index.
func (h *Hierarchy) LevelName(i int) string { return h.levels[i] }

// LevelIndex returns the index of the named level, detailed = 0.
func (h *Hierarchy) LevelIndex(name string) (int, bool) {
	i, ok := h.levelIndex[name]
	return i, ok
}

// Contains reports whether v belongs to the extended domain of the
// hierarchy, i.e. to the domain of any level including ALL.
func (h *Hierarchy) Contains(v string) bool {
	_, ok := h.valueLevel[v]
	return ok
}

// LevelOf returns the index of the level the value belongs to.
func (h *Hierarchy) LevelOf(v string) (int, bool) {
	l, ok := h.valueLevel[v]
	return l, ok
}

// ValuesAt returns the domain of the level with index i, in the total
// order of the level.
func (h *Hierarchy) ValuesAt(i int) []string {
	out := make([]string, len(h.valuesAt[i]))
	copy(out, h.valuesAt[i])
	return out
}

// DetailedValues returns dom(C), the domain of the detailed level.
func (h *Hierarchy) DetailedValues() []string { return h.ValuesAt(0) }

// ExtendedDomainSize returns |edom(C)|, the total number of values
// across all levels including "all".
func (h *Hierarchy) ExtendedDomainSize() int { return len(h.valueLevel) }

// ExtendedDomain returns every value of every level, detailed level
// first, ALL last.
func (h *Hierarchy) ExtendedDomain() []string {
	out := make([]string, 0, len(h.valueLevel))
	for i := range h.levels {
		out = append(out, h.valuesAt[i]...)
	}
	return out
}

// Parent returns anc to the immediately higher level. The parent of a
// value of the level below ALL is "all"; "all" has no parent.
func (h *Hierarchy) Parent(v string) (string, bool) {
	p, ok := h.parent[v]
	return p, ok
}

// Children returns the desc set of v at the immediately lower level, in
// level order. Values of the detailed level have no children.
func (h *Hierarchy) Children(v string) []string {
	ch := h.children[v]
	out := make([]string, len(ch))
	copy(out, ch)
	return out
}

// Anc implements the anc_{Lj}^{Li} functions of the paper composed up to
// the target level: it maps v to its ancestor at level index target.
// It returns an error if v is unknown or target is below v's own level.
// Anc(v, level(v)) is v itself (the identity composition).
func (h *Hierarchy) Anc(v string, target int) (string, error) {
	lv, ok := h.valueLevel[v]
	if !ok {
		return "", fmt.Errorf("hierarchy %s: unknown value %q", h.name, v)
	}
	if target < lv || target >= len(h.levels) {
		return "", fmt.Errorf("hierarchy %s: no anc of %q (level %s) at level index %d",
			h.name, v, h.levels[lv], target)
	}
	for lv < target {
		v = h.parent[v]
		lv++
	}
	return v, nil
}

// DescAt returns the desc set of v at the given lower (or equal) level
// index, in level order. DescAt(v, level(v)) is {v}.
func (h *Hierarchy) DescAt(v string, target int) ([]string, error) {
	lv, ok := h.valueLevel[v]
	if !ok {
		return nil, fmt.Errorf("hierarchy %s: unknown value %q", h.name, v)
	}
	if target > lv || target < 0 {
		return nil, fmt.Errorf("hierarchy %s: no desc of %q (level %s) at level index %d",
			h.name, v, h.levels[lv], target)
	}
	frontier := []string{v}
	for l := lv; l > target; l-- {
		next := make([]string, 0, len(frontier)*2)
		for _, f := range frontier {
			next = append(next, h.children[f]...)
		}
		frontier = next
	}
	return frontier, nil
}

// Descendants returns the desc set of v at the detailed level. For a
// detailed value it is the singleton {v}; for "all" it is the whole
// detailed domain.
func (h *Hierarchy) Descendants(v string) ([]string, error) {
	return h.DescAt(v, 0)
}

// IsAncestorOrSelf reports whether a = v or a is an ancestor of v at
// some higher level (a = anc(v) for some pair of levels). This is the
// per-parameter ingredient of the covers relation (Def. 10).
func (h *Hierarchy) IsAncestorOrSelf(a, v string) bool {
	la, ok := h.valueLevel[a]
	if !ok {
		return false
	}
	lv, ok := h.valueLevel[v]
	if !ok {
		return false
	}
	if la < lv {
		return false
	}
	anc, err := h.Anc(v, la)
	return err == nil && anc == a
}

// Ancestors returns v followed by each of its ancestors up to and
// including "all", ordered from v's own level upward.
func (h *Hierarchy) Ancestors(v string) ([]string, error) {
	lv, ok := h.valueLevel[v]
	if !ok {
		return nil, fmt.Errorf("hierarchy %s: unknown value %q", h.name, v)
	}
	out := make([]string, 0, len(h.levels)-lv)
	out = append(out, v)
	for v != All {
		v = h.parent[v]
		out = append(out, v)
	}
	return out, nil
}

// LevelDistance implements Def. 14: the minimum number of edges between
// two levels of the chain, i.e. the absolute difference of their indexes.
func (h *Hierarchy) LevelDistance(i, j int) int {
	if i > j {
		return i - j
	}
	return j - i
}

// Rank returns the position of v within the total order of its level.
// The detailed-level order is the insertion order of the builder, and
// higher-level orders are induced by it (condition 3 of the paper:
// the anc functions are monotone).
func (h *Hierarchy) Rank(v string) (int, bool) {
	r, ok := h.rank[v]
	return r, ok
}

// Range returns the values x of v1's level with v1 <= x <= v2 in the
// level's total order, implementing range descriptors (Def. 1, case 3).
// Both endpoints must belong to the same level.
func (h *Hierarchy) Range(v1, v2 string) ([]string, error) {
	l1, ok1 := h.valueLevel[v1]
	l2, ok2 := h.valueLevel[v2]
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("hierarchy %s: unknown range endpoint in [%s, %s]", h.name, v1, v2)
	}
	if l1 != l2 {
		return nil, fmt.Errorf("hierarchy %s: range endpoints %q (level %s) and %q (level %s) belong to different levels",
			h.name, v1, h.levels[l1], v2, h.levels[l2])
	}
	r1, r2 := h.rank[v1], h.rank[v2]
	if r1 > r2 {
		return nil, fmt.Errorf("hierarchy %s: empty range [%s, %s]: %q follows %q in the level order",
			h.name, v1, v2, v1, v2)
	}
	vals := h.valuesAt[l1]
	out := make([]string, 0, r2-r1+1)
	out = append(out, vals[r1:r2+1]...)
	return out, nil
}

// String renders a compact description of the hierarchy.
func (h *Hierarchy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(", h.name)
	for i, l := range h.levels {
		if i > 0 {
			b.WriteString(" ≺ ")
		}
		fmt.Fprintf(&b, "%s[%d]", l, len(h.valuesAt[i]))
	}
	b.WriteString(")")
	return b.String()
}

// Builder assembles a Hierarchy from root-to-leaf value paths.
type Builder struct {
	name   string
	levels []string // detailed first, excluding ALL
	paths  [][]string
	err    error
}

// NewBuilder starts a hierarchy with the given non-ALL level names
// ordered from the detailed level upward. ALL is appended automatically.
func NewBuilder(name string, levels ...string) *Builder {
	b := &Builder{name: name, levels: append([]string(nil), levels...)}
	if name == "" {
		b.err = fmt.Errorf("hierarchy: empty name")
	}
	if len(levels) == 0 {
		b.err = fmt.Errorf("hierarchy %s: at least one non-ALL level required", name)
	}
	seen := map[string]bool{LevelAll: true}
	for _, l := range levels {
		if l == "" || seen[l] {
			b.err = fmt.Errorf("hierarchy %s: invalid or duplicate level name %q", name, l)
		}
		seen[l] = true
	}
	return b
}

// Add registers one full path of values from the detailed level upward,
// excluding "all" (e.g. Add("Plaka", "Athens", "Greece") for levels
// Region, City, Country). Paths sharing a prefix of upper-level values
// must agree on them; the detailed value must be fresh. The insertion
// order of detailed values defines the total order of the detailed
// level and must be consistent with the grouping so that anc functions
// are monotone (validated by Build).
func (b *Builder) Add(path ...string) *Builder {
	if b.err != nil {
		return b
	}
	if len(path) != len(b.levels) {
		b.err = fmt.Errorf("hierarchy %s: path %v has %d values, want %d (levels %v)",
			b.name, path, len(path), len(b.levels), b.levels)
		return b
	}
	for _, v := range path {
		if v == "" || v == All {
			b.err = fmt.Errorf("hierarchy %s: invalid value %q in path %v", b.name, v, path)
			return b
		}
	}
	b.paths = append(b.paths, append([]string(nil), path...))
	return b
}

// Build validates the accumulated paths and returns the hierarchy.
func (b *Builder) Build() (*Hierarchy, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.paths) == 0 {
		return nil, fmt.Errorf("hierarchy %s: no values", b.name)
	}
	n := len(b.levels) + 1
	h := &Hierarchy{
		name:       b.name,
		levels:     append(append([]string(nil), b.levels...), LevelAll),
		levelIndex: make(map[string]int, n),
		valueLevel: make(map[string]int),
		parent:     make(map[string]string),
		children:   make(map[string][]string),
		valuesAt:   make([][]string, n),
		rank:       make(map[string]int),
	}
	for i, l := range h.levels {
		h.levelIndex[l] = i
	}
	h.valueLevel[All] = n - 1
	h.valuesAt[n-1] = []string{All}
	h.rank[All] = 0

	for _, path := range b.paths {
		// path[0] is detailed; path[len-1] is just below ALL.
		for i, v := range path {
			wantParent := All
			if i+1 < len(path) {
				wantParent = path[i+1]
			}
			if lv, ok := h.valueLevel[v]; ok {
				if lv != i {
					return nil, fmt.Errorf("hierarchy %s: value %q appears at levels %s and %s",
						b.name, v, h.levels[lv], h.levels[i])
				}
				if h.parent[v] != wantParent {
					return nil, fmt.Errorf("hierarchy %s: value %q has conflicting parents %q and %q",
						b.name, v, h.parent[v], wantParent)
				}
				if i == 0 {
					return nil, fmt.Errorf("hierarchy %s: duplicate detailed value %q", b.name, v)
				}
				continue
			}
			h.valueLevel[v] = i
			h.parent[v] = wantParent
			h.rank[v] = len(h.valuesAt[i])
			h.valuesAt[i] = append(h.valuesAt[i], v)
			h.children[wantParent] = append(h.children[wantParent], v)
		}
	}
	if err := h.validateMonotone(); err != nil {
		return nil, err
	}
	return h, nil
}

// validateMonotone checks condition 3 of the paper: for x < y in the
// order of a level, anc(x) <= anc(y) one level up. On a chain of levels
// with tree-structured values this is equivalent to every parent's
// children forming a contiguous run of the child level's order.
func (h *Hierarchy) validateMonotone() error {
	for l := 0; l < len(h.levels)-1; l++ {
		prevParentRank := -1
		for _, v := range h.valuesAt[l] {
			pr := h.rank[h.parent[v]]
			if pr < prevParentRank {
				return fmt.Errorf("hierarchy %s: anc is not monotone at level %s: value %q breaks the order",
					h.name, h.levels[l], v)
			}
			prevParentRank = pr
		}
	}
	return nil
}

// Uniform builds a synthetic hierarchy for the performance experiments:
// fanouts[i] is the number of children each value of level i+1 has, so
// the detailed level has the product of all fanouts values. Level names
// are "L1".."Lk" plus ALL and values are name:l<level>:v<index>.
// A single fanout of m produces a flat hierarchy of m detailed values.
func Uniform(name string, fanouts ...int) (*Hierarchy, error) {
	if len(fanouts) == 0 {
		return nil, fmt.Errorf("hierarchy %s: no fanouts", name)
	}
	levels := make([]string, len(fanouts))
	for i := range fanouts {
		if fanouts[i] < 1 {
			return nil, fmt.Errorf("hierarchy %s: fanout %d < 1", name, fanouts[i])
		}
		levels[i] = fmt.Sprintf("L%d", i+1)
	}
	b := NewBuilder(name, levels...)
	total := 1
	for _, f := range fanouts {
		total *= f
	}
	for i := 0; i < total; i++ {
		path := make([]string, len(fanouts))
		group := i
		for l := 0; l < len(fanouts); l++ {
			path[l] = fmt.Sprintf("%s:l%d:v%d", name, l+1, group)
			group /= fanouts[l]
		}
		b.Add(path...)
	}
	return b.Build()
}

// SortedCopy returns the values sorted lexicographically; a convenience
// for tests and deterministic rendering.
func SortedCopy(vs []string) []string {
	out := make([]string, len(vs))
	copy(out, vs)
	sort.Strings(out)
	return out
}
