package hierarchy

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// locationHierarchy builds the paper's Fig. 1 location hierarchy:
// Region ≺ City ≺ Country ≺ ALL.
func locationHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := NewBuilder("location", "Region", "City", "Country").
		Add("Plaka", "Athens", "Greece").
		Add("Kifisia", "Athens", "Greece").
		Add("Perama", "Ioannina", "Greece").
		Build()
	if err != nil {
		t.Fatalf("build location: %v", err)
	}
	return h
}

// temperatureHierarchy builds the paper's Fig. 2 temperature hierarchy:
// Conditions ≺ Weather_Characterization ≺ ALL.
func temperatureHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := NewBuilder("temperature", "Conditions", "Characterization").
		Add("freezing", "bad").
		Add("cold", "bad").
		Add("mild", "good").
		Add("warm", "good").
		Add("hot", "good").
		Build()
	if err != nil {
		t.Fatalf("build temperature: %v", err)
	}
	return h
}

func TestLevels(t *testing.T) {
	h := locationHierarchy(t)
	want := []string{"Region", "City", "Country", "ALL"}
	if got := h.Levels(); !reflect.DeepEqual(got, want) {
		t.Errorf("Levels() = %v, want %v", got, want)
	}
	if h.NumLevels() != 4 {
		t.Errorf("NumLevels() = %d, want 4", h.NumLevels())
	}
	for i, name := range want {
		if got, ok := h.LevelIndex(name); !ok || got != i {
			t.Errorf("LevelIndex(%q) = %d,%v, want %d,true", name, got, ok, i)
		}
		if h.LevelName(i) != name {
			t.Errorf("LevelName(%d) = %q, want %q", i, h.LevelName(i), name)
		}
	}
	if _, ok := h.LevelIndex("Continent"); ok {
		t.Error("LevelIndex(Continent) should not exist")
	}
}

func TestAncExamplesFromPaper(t *testing.T) {
	h := locationHierarchy(t)
	// anc^City_Region(Plaka) = Athens
	city, _ := h.LevelIndex("City")
	got, err := h.Anc("Plaka", city)
	if err != nil || got != "Athens" {
		t.Errorf("Anc(Plaka, City) = %q, %v; want Athens", got, err)
	}
	country, _ := h.LevelIndex("Country")
	got, err = h.Anc("Plaka", country)
	if err != nil || got != "Greece" {
		t.Errorf("Anc(Plaka, Country) = %q, %v; want Greece", got, err)
	}
	got, err = h.Anc("Plaka", 3)
	if err != nil || got != All {
		t.Errorf("Anc(Plaka, ALL) = %q, %v; want all", got, err)
	}
	// Identity composition.
	got, err = h.Anc("Athens", city)
	if err != nil || got != "Athens" {
		t.Errorf("Anc(Athens, City) = %q, %v; want Athens", got, err)
	}
	// Below own level is an error.
	if _, err := h.Anc("Athens", 0); err == nil {
		t.Error("Anc(Athens, Region) should fail")
	}
	if _, err := h.Anc("Atlantis", 1); err == nil {
		t.Error("Anc of unknown value should fail")
	}
}

func TestDescExamplesFromPaper(t *testing.T) {
	h := locationHierarchy(t)
	// desc^City_Region(Athens) = {Plaka, Kifisia}
	ds, err := h.DescAt("Athens", 0)
	if err != nil {
		t.Fatalf("DescAt(Athens, Region): %v", err)
	}
	if want := []string{"Plaka", "Kifisia"}; !reflect.DeepEqual(ds, want) {
		t.Errorf("DescAt(Athens, Region) = %v, want %v", ds, want)
	}
	// desc^Country_City(Greece) = {Athens, Ioannina}
	city, _ := h.LevelIndex("City")
	ds, err = h.DescAt("Greece", city)
	if err != nil {
		t.Fatalf("DescAt(Greece, City): %v", err)
	}
	if want := []string{"Athens", "Ioannina"}; !reflect.DeepEqual(ds, want) {
		t.Errorf("DescAt(Greece, City) = %v, want %v", ds, want)
	}
	// Descendants of all = full detailed domain.
	ds, err = h.Descendants(All)
	if err != nil {
		t.Fatalf("Descendants(all): %v", err)
	}
	if want := []string{"Plaka", "Kifisia", "Perama"}; !reflect.DeepEqual(ds, want) {
		t.Errorf("Descendants(all) = %v, want %v", ds, want)
	}
	// Descendants of a detailed value is itself.
	ds, _ = h.Descendants("Plaka")
	if !reflect.DeepEqual(ds, []string{"Plaka"}) {
		t.Errorf("Descendants(Plaka) = %v, want [Plaka]", ds)
	}
	if _, err := h.DescAt("Plaka", 1); err == nil {
		t.Error("DescAt above own level should fail")
	}
}

func TestAncestors(t *testing.T) {
	h := locationHierarchy(t)
	as, err := h.Ancestors("Plaka")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"Plaka", "Athens", "Greece", All}; !reflect.DeepEqual(as, want) {
		t.Errorf("Ancestors(Plaka) = %v, want %v", as, want)
	}
	as, _ = h.Ancestors(All)
	if !reflect.DeepEqual(as, []string{All}) {
		t.Errorf("Ancestors(all) = %v, want [all]", as)
	}
	if _, err := h.Ancestors("nowhere"); err == nil {
		t.Error("Ancestors of unknown value should fail")
	}
}

func TestIsAncestorOrSelf(t *testing.T) {
	h := locationHierarchy(t)
	cases := []struct {
		a, v string
		want bool
	}{
		{"Plaka", "Plaka", true},
		{"Athens", "Plaka", true},
		{"Greece", "Plaka", true},
		{All, "Plaka", true},
		{All, All, true},
		{"Plaka", "Athens", false}, // wrong direction
		{"Ioannina", "Plaka", false},
		{"Athens", "Perama", false},
		{"Plaka", "Kifisia", false},
		{"nope", "Plaka", false},
		{"Plaka", "nope", false},
	}
	for _, c := range cases {
		if got := h.IsAncestorOrSelf(c.a, c.v); got != c.want {
			t.Errorf("IsAncestorOrSelf(%q, %q) = %v, want %v", c.a, c.v, got, c.want)
		}
	}
}

func TestTemperatureGrouping(t *testing.T) {
	h := temperatureHierarchy(t)
	ds, err := h.Descendants("good")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"mild", "warm", "hot"}; !reflect.DeepEqual(ds, want) {
		t.Errorf("Descendants(good) = %v, want %v", ds, want)
	}
	ds, _ = h.Descendants("bad")
	if want := []string{"freezing", "cold"}; !reflect.DeepEqual(ds, want) {
		t.Errorf("Descendants(bad) = %v, want %v", ds, want)
	}
	if h.ExtendedDomainSize() != 5+2+1 {
		t.Errorf("ExtendedDomainSize() = %d, want 8", h.ExtendedDomainSize())
	}
}

func TestRange(t *testing.T) {
	h := temperatureHierarchy(t)
	// The paper: temperature ∈ [mild, hot] = {mild, warm, hot}.
	got, err := h.Range("mild", "hot")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"mild", "warm", "hot"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Range(mild, hot) = %v, want %v", got, want)
	}
	got, _ = h.Range("cold", "cold")
	if !reflect.DeepEqual(got, []string{"cold"}) {
		t.Errorf("Range(cold, cold) = %v, want [cold]", got)
	}
	if _, err := h.Range("hot", "mild"); err == nil {
		t.Error("reversed range should fail")
	}
	if _, err := h.Range("mild", "good"); err == nil {
		t.Error("cross-level range should fail")
	}
	if _, err := h.Range("mild", "boiling"); err == nil {
		t.Error("unknown endpoint should fail")
	}
}

func TestLevelDistance(t *testing.T) {
	h := locationHierarchy(t)
	if d := h.LevelDistance(0, 3); d != 3 {
		t.Errorf("LevelDistance(0,3) = %d, want 3", d)
	}
	if d := h.LevelDistance(3, 0); d != 3 {
		t.Errorf("LevelDistance(3,0) = %d, want 3", d)
	}
	if d := h.LevelDistance(2, 2); d != 0 {
		t.Errorf("LevelDistance(2,2) = %d, want 0", d)
	}
}

func TestExtendedDomain(t *testing.T) {
	h := locationHierarchy(t)
	ed := h.ExtendedDomain()
	want := []string{"Plaka", "Kifisia", "Perama", "Athens", "Ioannina", "Greece", All}
	if !reflect.DeepEqual(ed, want) {
		t.Errorf("ExtendedDomain() = %v, want %v", ed, want)
	}
	if h.ExtendedDomainSize() != len(want) {
		t.Errorf("ExtendedDomainSize() = %d, want %d", h.ExtendedDomainSize(), len(want))
	}
	for _, v := range want {
		if !h.Contains(v) {
			t.Errorf("Contains(%q) = false", v)
		}
	}
	if h.Contains("Atlantis") {
		t.Error("Contains(Atlantis) = true")
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder("", "L1").Add("x").Build(); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewBuilder("h").Build(); err == nil {
		t.Error("no levels should fail")
	}
	if _, err := NewBuilder("h", "L1", "L1").Add("a", "b").Build(); err == nil {
		t.Error("duplicate level names should fail")
	}
	if _, err := NewBuilder("h", "ALL").Add("a").Build(); err == nil {
		t.Error("level named ALL should fail")
	}
	if _, err := NewBuilder("h", "L1").Build(); err == nil {
		t.Error("no paths should fail")
	}
	if _, err := NewBuilder("h", "L1", "L2").Add("a").Build(); err == nil {
		t.Error("short path should fail")
	}
	if _, err := NewBuilder("h", "L1").Add("all").Build(); err == nil {
		t.Error("value 'all' should fail")
	}
	if _, err := NewBuilder("h", "L1").Add("").Build(); err == nil {
		t.Error("empty value should fail")
	}
	if _, err := NewBuilder("h", "L1").Add("a").Add("a").Build(); err == nil {
		t.Error("duplicate detailed value should fail")
	}
	// Same value at two different levels.
	if _, err := NewBuilder("h", "L1", "L2").Add("a", "b").Add("b", "c").Build(); err == nil {
		t.Error("value at two levels should fail")
	}
	// Conflicting parents.
	if _, err := NewBuilder("h", "L1", "L2", "L3").
		Add("a", "p", "g1").Add("b", "p", "g2").Build(); err == nil {
		t.Error("conflicting parents should fail")
	}
	// Non-monotone grouping: a < b < c detailed but parents interleave.
	if _, err := NewBuilder("h", "L1", "L2").
		Add("a", "p1").Add("b", "p2").Add("c", "p1").Build(); err == nil {
		t.Error("non-monotone anc should fail")
	}
}

func TestUniform(t *testing.T) {
	h, err := Uniform("p", 5, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumLevels() != 4 {
		t.Fatalf("NumLevels() = %d, want 4", h.NumLevels())
	}
	if got := len(h.DetailedValues()); got != 60 {
		t.Errorf("detailed values = %d, want 60", got)
	}
	if got := len(h.ValuesAt(1)); got != 12 {
		t.Errorf("level-1 values = %d, want 12", got)
	}
	if got := len(h.ValuesAt(2)); got != 3 {
		t.Errorf("level-2 values = %d, want 3", got)
	}
	// Every level-1 value has exactly 5 children.
	for _, v := range h.ValuesAt(1) {
		if got := len(h.Children(v)); got != 5 {
			t.Errorf("Children(%s) = %d, want 5", v, got)
		}
	}
	// Flat hierarchy.
	flat, err := Uniform("q", 7)
	if err != nil {
		t.Fatal(err)
	}
	if flat.NumLevels() != 2 || len(flat.DetailedValues()) != 7 {
		t.Errorf("flat: levels=%d detailed=%d, want 2 and 7", flat.NumLevels(), len(flat.DetailedValues()))
	}
	if _, err := Uniform("r"); err == nil {
		t.Error("Uniform with no fanouts should fail")
	}
	if _, err := Uniform("r", 0); err == nil {
		t.Error("Uniform with fanout 0 should fail")
	}
}

func TestString(t *testing.T) {
	h := locationHierarchy(t)
	s := h.String()
	for _, frag := range []string{"location", "Region[3]", "City[2]", "Country[1]", "ALL[1]"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

// quickHierarchy builds a random uniform hierarchy for property tests.
func quickHierarchy(r *rand.Rand) *Hierarchy {
	depth := 1 + r.Intn(3)
	fanouts := make([]int, depth)
	for i := range fanouts {
		fanouts[i] = 1 + r.Intn(4)
	}
	h, err := Uniform("q", fanouts...)
	if err != nil {
		panic(err)
	}
	return h
}

// Property: Anc composes — anc to Lk then to Lj equals anc straight to Lj.
func TestQuickAncComposition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := quickHierarchy(r)
		dv := h.DetailedValues()
		v := dv[r.Intn(len(dv))]
		mid := r.Intn(h.NumLevels())
		top := mid + r.Intn(h.NumLevels()-mid)
		a1, err1 := h.Anc(v, mid)
		if err1 != nil {
			return false
		}
		a2, err2 := h.Anc(a1, top)
		if err2 != nil {
			return false
		}
		direct, err3 := h.Anc(v, top)
		return err3 == nil && a2 == direct
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Desc is the inverse of Anc — x ∈ desc(v) iff anc(x) = v.
func TestQuickDescInverseOfAnc(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := quickHierarchy(r)
		lv := r.Intn(h.NumLevels())
		vals := h.ValuesAt(lv)
		v := vals[r.Intn(len(vals))]
		ds, err := h.Descendants(v)
		if err != nil {
			return false
		}
		seen := make(map[string]bool, len(ds))
		for _, d := range ds {
			a, err := h.Anc(d, lv)
			if err != nil || a != v {
				return false
			}
			seen[d] = true
		}
		// Completeness: every detailed value with anc v is in ds.
		for _, d := range h.DetailedValues() {
			a, err := h.Anc(d, lv)
			if err != nil {
				return false
			}
			if (a == v) != seen[d] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Anc is monotone (condition 3 of the paper).
func TestQuickAncMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := quickHierarchy(r)
		dv := h.DetailedValues()
		i, j := r.Intn(len(dv)), r.Intn(len(dv))
		if i > j {
			i, j = j, i
		}
		lv := r.Intn(h.NumLevels())
		ai, err1 := h.Anc(dv[i], lv)
		aj, err2 := h.Anc(dv[j], lv)
		if err1 != nil || err2 != nil {
			return false
		}
		ri, _ := h.Rank(ai)
		rj, _ := h.Rank(aj)
		return ri <= rj
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: partitioning — the desc sets of the values of any level
// partition the detailed domain.
func TestQuickDescPartition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := quickHierarchy(r)
		lv := r.Intn(h.NumLevels())
		count := 0
		seen := make(map[string]bool)
		for _, v := range h.ValuesAt(lv) {
			ds, err := h.Descendants(v)
			if err != nil {
				return false
			}
			for _, d := range ds {
				if seen[d] {
					return false
				}
				seen[d] = true
			}
			count += len(ds)
		}
		return count == len(h.DetailedValues())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSortedCopy(t *testing.T) {
	in := []string{"b", "a", "c"}
	got := SortedCopy(in)
	if !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("SortedCopy = %v", got)
	}
	if !reflect.DeepEqual(in, []string{"b", "a", "c"}) {
		t.Error("SortedCopy mutated its input")
	}
}
