package tracing

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"contextpref/internal/telemetry"
)

func newTestMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		SpansStarted:    reg.Counter("t_spans_total", ""),
		RetainedSlow:    reg.Counter("t_slow_total", ""),
		RetainedError:   reg.Counter("t_err_total", ""),
		RetainedSampled: reg.Counter("t_sampled_total", ""),
		Dropped:         reg.Counter("t_dropped_total", ""),
	}
}

func TestSpanTreeParentageAndAttrs(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	ctx, root := tr.StartRoot(context.Background(), "http.query", Traceparent{})
	if root == nil {
		t.Fatal("StartRoot returned nil span on a live tracer")
	}
	ctx2, child := Start(ctx, "system.query")
	child.SetInt("cells", 42)
	child.SetString("user", "alice")
	child.SetBool("hit", true)
	child.SetFloat("distance", 0.5)
	_, grand := Start(ctx2, "journal.append")
	AddEvent(ctx2, "querytree.miss")
	grand.End()
	child.End()
	root.End()

	snap := root.Snapshot()
	if snap == nil {
		t.Fatal("no snapshot after root End")
	}
	if snap.Status != StatusSampled {
		t.Fatalf("status = %q, want sampled", snap.Status)
	}
	if len(snap.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(snap.Spans))
	}
	byName := map[string]SpanData{}
	for _, sp := range snap.Spans {
		byName[sp.Name] = sp
	}
	r, c, g := byName["http.query"], byName["system.query"], byName["journal.append"]
	if r.Parent != 0 {
		t.Errorf("root parent = %d, want 0", r.Parent)
	}
	if c.Parent != r.ID {
		t.Errorf("child parent = %d, want root id %d", c.Parent, r.ID)
	}
	if g.Parent != c.ID {
		t.Errorf("grandchild parent = %d, want child id %d", g.Parent, c.ID)
	}
	if len(c.Attrs) != 4 {
		t.Fatalf("child attrs = %v, want 4", c.Attrs)
	}
	want := map[string]any{"cells": int64(42), "user": "alice", "hit": true, "distance": 0.5}
	for _, a := range c.Attrs {
		if a.Value() != want[a.Key] {
			t.Errorf("attr %s = %v (%T), want %v", a.Key, a.Value(), a.Value(), want[a.Key])
		}
	}
	// AddEvent landed on the deepest span in ctx2's chain at call time:
	// ctx2 carries the child span.
	if len(c.Events) != 1 || c.Events[0].Name != "querytree.miss" {
		t.Errorf("child events = %v, want one querytree.miss", c.Events)
	}
	if snap.TraceID != root.TraceID() || len(snap.TraceID) != 32 {
		t.Errorf("trace id mismatch: snap %q, span %q", snap.TraceID, root.TraceID())
	}
}

func TestRetentionError(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := newTestMetrics(reg)
	tr := New(Config{SampleRate: 0, Metrics: m})
	ctx, root := tr.StartRoot(context.Background(), "http.query", Traceparent{})
	_, child := Start(ctx, "journal.append")
	child.Fail(errors.New("disk wedged"))
	child.End()
	root.End()
	snap := root.Snapshot()
	if snap.Status != StatusError {
		t.Fatalf("status = %q, want error", snap.Status)
	}
	if got := tr.Lookup(snap.TraceID); got != snap {
		t.Fatal("errored trace not retained in ring")
	}
	if m.RetainedError.Value() != 1 {
		t.Errorf("RetainedError = %d, want 1", m.RetainedError.Value())
	}
	for _, sp := range snap.Spans {
		if sp.Name == "journal.append" && sp.Err != "disk wedged" {
			t.Errorf("span err = %q, want disk wedged", sp.Err)
		}
	}
}

func TestRetentionSlow(t *testing.T) {
	tr := New(Config{SlowTrace: time.Nanosecond, SampleRate: 0})
	_, root := tr.StartRoot(context.Background(), "http.query", Traceparent{})
	time.Sleep(time.Millisecond)
	root.End()
	if snap := root.Snapshot(); snap.Status != StatusSlow {
		t.Fatalf("status = %q, want slow", snap.Status)
	}
	if len(tr.Snapshots()) != 1 {
		t.Fatal("slow trace not retained")
	}
}

func TestRetentionDropped(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := newTestMetrics(reg)
	tr := New(Config{SampleRate: 0, Metrics: m})
	_, root := tr.StartRoot(context.Background(), "http.query", Traceparent{})
	root.End()
	snap := root.Snapshot()
	if snap == nil || snap.Status != StatusDropped {
		t.Fatalf("snapshot = %+v, want dropped status", snap)
	}
	if len(tr.Snapshots()) != 0 {
		t.Fatal("dropped trace leaked into the ring")
	}
	if m.Dropped.Value() != 1 {
		t.Errorf("Dropped = %d, want 1", m.Dropped.Value())
	}
}

func TestDeterministicSampling(t *testing.T) {
	tr := New(Config{SampleRate: 0.25})
	kept := 0
	for i := 0; i < 100; i++ {
		_, root := tr.StartRoot(context.Background(), "r", Traceparent{})
		root.End()
		if root.Snapshot().Status == StatusSampled {
			kept++
		}
	}
	if kept != 25 {
		t.Fatalf("kept %d of 100 at rate 0.25, want exactly 25 (sampling must be deterministic)", kept)
	}
}

func TestRemoteParentAdoptedAndSampled(t *testing.T) {
	tr := New(Config{SampleRate: 0})
	tp, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if !ok {
		t.Fatal("canonical traceparent did not parse")
	}
	_, root := tr.StartRoot(context.Background(), "http.query", tp)
	if got := root.TraceID(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id = %q, want the inbound one", got)
	}
	out := root.Traceparent()
	if !strings.HasPrefix(out, "00-4bf92f3577b34da6a3ce929d0e0e4736-") || !strings.HasSuffix(out, "-01") {
		t.Fatalf("outbound traceparent %q does not continue the inbound trace as sampled", out)
	}
	root.End()
	if root.Snapshot().Status != StatusSampled {
		t.Fatal("remote sampled flag did not force retention")
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := New(Config{SampleRate: 1, Capacity: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		_, root := tr.StartRoot(context.Background(), "r", Traceparent{})
		root.End()
		ids = append(ids, root.TraceID())
		time.Sleep(time.Millisecond) // distinct Start times for newest-first order
	}
	snaps := tr.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("ring holds %d traces, want 2", len(snaps))
	}
	if snaps[0].TraceID != ids[2] || snaps[1].TraceID != ids[1] {
		t.Fatalf("ring = [%s %s], want newest-first [%s %s]",
			snaps[0].TraceID, snaps[1].TraceID, ids[2], ids[1])
	}
	if tr.Lookup(ids[0]) != nil {
		t.Fatal("oldest trace should have been overwritten")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, root := tr.StartRoot(context.Background(), "r", Traceparent{})
	if root != nil {
		t.Fatal("nil tracer minted a span")
	}
	ctx2, child := Start(ctx, "c")
	if child != nil || ctx2 != ctx {
		t.Fatal("Start without a span must return (ctx, nil) unchanged")
	}
	// All of these must be safe no-ops.
	child.SetInt("k", 1)
	child.SetString("k", "v")
	child.SetBool("k", true)
	child.SetFloat("k", 1.5)
	child.AddEvent("e")
	child.Fail(errors.New("x"))
	child.End()
	AddEvent(ctx, "e")
	if child.TraceID() != "" || child.Traceparent() != "" || child.Snapshot() != nil {
		t.Fatal("nil span getters must return zero values")
	}
	if tr.Snapshots() != nil || tr.Lookup("x") != nil {
		t.Fatal("nil tracer getters must return nil")
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	_, root := tr.StartRoot(context.Background(), "r", Traceparent{})
	root.End()
	root.End()
	if n := len(root.Snapshot().Spans); n != 1 {
		t.Fatalf("double End recorded %d spans, want 1", n)
	}
}

func TestSlowestExcludesRootAndOrders(t *testing.T) {
	ts := &TraceSnapshot{Spans: []SpanData{
		{ID: 1, Parent: 0, Name: "root", Duration: 100 * time.Millisecond},
		{ID: 2, Parent: 1, Name: "a", Duration: 5 * time.Millisecond},
		{ID: 3, Parent: 1, Name: "b", Duration: 50 * time.Millisecond},
		{ID: 4, Parent: 3, Name: "c", Duration: 20 * time.Millisecond},
		{ID: 5, Parent: 1, Name: "d", Duration: time.Millisecond},
	}}
	got := ts.Slowest(3)
	if len(got) != 3 || got[0].Name != "b" || got[1].Name != "c" || got[2].Name != "a" {
		t.Fatalf("Slowest(3) = %v, want [b c a]", got)
	}
	if (*TraceSnapshot)(nil).Slowest(3) != nil {
		t.Fatal("nil snapshot Slowest must return nil")
	}
}

func TestHandlerListAndTree(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	ctx, root := tr.StartRoot(context.Background(), "http.query", Traceparent{})
	_, child := Start(ctx, "system.query")
	child.SetInt("cells", 7)
	child.End()
	root.End()
	id := root.TraceID()

	h := Handler(tr)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), id) {
		t.Fatalf("list: code %d body %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/"+id, nil))
	body := rec.Body.String()
	if rec.Code != 200 {
		t.Fatalf("tree: code %d", rec.Code)
	}
	for _, want := range []string{"trace " + id, "└─ http.query", "   └─ system.query", "cells=7"} {
		if !strings.Contains(body, want) {
			t.Errorf("tree output missing %q:\n%s", want, body)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/"+id+"?format=json", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"system.query"`) {
		t.Fatalf("json: code %d body %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/nope", nil))
	if rec.Code != 404 {
		t.Fatalf("missing trace: code %d, want 404", rec.Code)
	}

	// Filtered list excludes non-matching statuses.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?status=error", nil))
	if strings.Contains(rec.Body.String(), id) {
		t.Fatal("status filter did not exclude the sampled trace")
	}

	// ?trace_id= is the paste-from-a-log-line form of the path lookup.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?trace_id="+id, nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "trace "+id) {
		t.Fatalf("trace_id param: code %d body %q", rec.Code, rec.Body.String())
	}

	// ?limit bounds the list (0 is a valid "just the shape" probe);
	// junk is a 400, not a silent full listing.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?limit=0", nil))
	if rec.Code != 200 || strings.Contains(rec.Body.String(), id) {
		t.Fatalf("limit=0: code %d body %q", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?limit=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("limit=bogus: code %d, want 400", rec.Code)
	}

	// A nil tracer serves an empty list, not a panic.
	rec = httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("nil tracer list: code %d", rec.Code)
	}
}

func TestLateChildNotInSnapshot(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	ctx, root := tr.StartRoot(context.Background(), "r", Traceparent{})
	_, child := Start(ctx, "async")
	root.End()
	child.End() // after the root: must not mutate the published snapshot
	if n := len(root.Snapshot().Spans); n != 1 {
		t.Fatalf("snapshot has %d spans, want 1 (late child excluded)", n)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", true},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00", true},
		{"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", true}, // future version
		{"", false},
		{"00", false},
		{"00-00000000000000000000000000000000-00f067aa0ba902b7-01", false}, // zero trace id
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", false}, // zero span id
		{"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false}, // invalid version
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x", false},
		{"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		{"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
	}
	for _, c := range cases {
		tp, ok := ParseTraceparent(c.in)
		if ok != c.ok {
			t.Errorf("ParseTraceparent(%q) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		back, ok2 := ParseTraceparent(tp.String())
		if !ok2 || back != tp {
			t.Errorf("round trip of %q: got %+v via %q", c.in, back, tp.String())
		}
	}
}

func TestConcurrentSpansOneTrace(t *testing.T) {
	tr := New(Config{SampleRate: 1})
	ctx, root := tr.StartRoot(context.Background(), "r", Traceparent{})
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer close(make(chan struct{}))
			_, sp := Start(ctx, "worker")
			sp.SetInt("i", 1)
			sp.End()
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	root.End()
	if n := len(root.Snapshot().Spans); n != 9 {
		t.Fatalf("got %d spans, want 9", n)
	}
}

// TestReleasePoolSafety pins the recycling contract: Release recycles
// only dropped traces whose snapshot was never built, a snapshot taken
// before Release pins the buffers against reuse, retained traces are
// never recycled, and Release is idempotent and nil-safe.
func TestReleasePoolSafety(t *testing.T) {
	tr := New(Config{})
	// Dropped and untouched: eligible for recycling.
	_, a := tr.StartRoot(context.Background(), "a", Traceparent{})
	a.End()
	a.Release()
	a.Release() // second call must be a no-op

	// Dropped but snapshotted: the snapshot must survive later traces
	// reusing the pool.
	_, c := tr.StartRoot(context.Background(), "c", Traceparent{})
	c.SetString("k", "v")
	c.End()
	snap := c.Snapshot()
	if snap == nil || snap.Status != StatusDropped {
		t.Fatalf("snapshot = %+v, want a dropped trace", snap)
	}
	c.Release()
	for i := 0; i < 4; i++ {
		_, d := tr.StartRoot(context.Background(), "d", Traceparent{})
		d.SetString("k", "overwritten")
		d.End()
		d.Release()
	}
	if snap.Root != "c" || len(snap.Spans) != 1 {
		t.Fatalf("snapshot corrupted by pool reuse: %+v", snap)
	}
	if got := snap.Spans[0].Attrs[0].Str; got != "v" {
		t.Fatalf("snapshot attr = %q, want %q (buffer was recycled)", got, "v")
	}

	// Retained trace: Release is a no-op and the ring entry survives.
	kept := New(Config{SampleRate: 1})
	_, r := kept.StartRoot(context.Background(), "r", Traceparent{})
	r.End()
	id := r.TraceID()
	r.Release()
	_, r2 := kept.StartRoot(context.Background(), "r2", Traceparent{})
	r2.End()
	if got := kept.Lookup(id); got == nil || got.Root != "r" {
		t.Fatalf("retained trace %s lost or corrupted after Release: %+v", id, got)
	}

	var nilSpan *Span
	nilSpan.Release() // must not panic
}
