package tracing

import (
	"context"
	"time"
)

// spanKey is the context key identifying the current *Span.
type spanKey struct{}

// A *Span is itself a context.Context: it carries the context it was
// started under and answers Value(spanKey{}) with itself. Start and
// StartRoot return the span as the derived context, so threading a
// span costs no context.WithValue allocation — the span struct (arena-
// allocated with its trace) is the carrier.
var _ context.Context = (*Span)(nil)

// Deadline implements context.Context by delegation.
func (s *Span) Deadline() (time.Time, bool) { return s.ctx.Deadline() }

// Done implements context.Context by delegation.
func (s *Span) Done() <-chan struct{} { return s.ctx.Done() }

// Err implements context.Context by delegation.
func (s *Span) Err() error { return s.ctx.Err() }

// Value implements context.Context: the span answers for spanKey and
// delegates everything else.
func (s *Span) Value(key any) any {
	if _, ok := key.(spanKey); ok {
		return s
	}
	return s.ctx.Value(key)
}

// FromContext returns the current span, or nil when the context carries
// none (tracing disabled or an un-instrumented entry point).
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// Start begins a child of the context's current span and returns a
// derived context carrying it. When the context has no span — tracing
// disabled, or a code path entered outside a traced request — it
// returns (ctx, nil) unchanged, and every method on the nil span
// no-ops. The caller must End the returned span.
//
//cpvet:hotpath allocs=0 the untraced path: when the context carries no span, instrumented code must pay nothing for the tracing hooks
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.tr.newSpan(ctx, name, parent.id)
	return sp, sp
}

// AddEvent attaches a point-in-time event to the context's current
// span, if any. It is the lightweight alternative to a child span for
// instants like cache hits.
func AddEvent(ctx context.Context, name string) {
	FromContext(ctx).AddEvent(name)
}
