package tracing

import "testing"

// FuzzTraceparent throws arbitrary header values at the traceparent
// parser: it must never panic, and every accepted value must survive a
// format → reparse round trip with the identity fields intact.
func FuzzTraceparent(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	f.Add("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-tail")
	f.Add("ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("")
	f.Add("00-\x00\x00-00f067aa0ba902b7-01")
	f.Fuzz(func(t *testing.T, s string) {
		tp, ok := ParseTraceparent(s)
		if !ok {
			if tp != (Traceparent{}) {
				t.Fatalf("rejected input %q returned non-zero value %+v", s, tp)
			}
			return
		}
		if tp.TraceID == ([16]byte{}) || tp.SpanID == ([8]byte{}) {
			t.Fatalf("accepted %q with a zero id: %+v", s, tp)
		}
		out := tp.String()
		back, ok2 := ParseTraceparent(out)
		if !ok2 {
			t.Fatalf("formatted value %q (from %q) did not reparse", out, s)
		}
		if back != tp {
			t.Fatalf("round trip mismatch: %+v -> %q -> %+v", tp, out, back)
		}
	})
}
