package tracing

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Handler serves the retained-trace ring on the admin listener:
//
//	GET /debug/traces             — JSON list of retained traces, newest first
//	GET /debug/traces?status=slow — filter by retention status
//	GET /debug/traces?limit=N     — at most N newest traces
//	GET /debug/traces/<trace_id>  — one trace as an indented text tree
//	GET /debug/traces/<trace_id>?format=json — the same trace as JSON
//
// ?trace_id=<32 hex> is accepted as an alternative to the path form —
// it is what a slow-request log line or a traceparent header pastes
// into naturally.
//
// A nil tracer serves an empty list, so the admin surface is stable
// whether or not tracing is enabled.
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/debug/traces")
		rest = strings.Trim(rest, "/")
		if rest == "" {
			rest = r.URL.Query().Get("trace_id")
		}
		if rest == "" {
			serveList(t, w, r)
			return
		}
		serveTrace(t, w, r, rest)
	})
}

// traceSummary is one row in the trace list: identity and shape, not
// the full span set (fetch the single-trace view for that).
type traceSummary struct {
	TraceID    string  `json:"trace_id"`
	Status     string  `json:"status"`
	Root       string  `json:"root"`
	Start      string  `json:"start"`
	DurationMS float64 `json:"duration_ms"`
	Spans      int     `json:"spans"`
}

func serveList(t *Tracer, w http.ResponseWriter, r *http.Request) {
	filter := r.URL.Query().Get("status")
	limit := -1
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "limit must be a non-negative integer", http.StatusBadRequest)
			return
		}
		limit = n
	}
	snaps := t.Snapshots()
	out := make([]traceSummary, 0, len(snaps))
	for _, ts := range snaps {
		if filter != "" && ts.Status != filter {
			continue
		}
		if limit >= 0 && len(out) >= limit {
			break
		}
		out = append(out, traceSummary{
			TraceID:    ts.TraceID,
			Status:     ts.Status,
			Root:       ts.Root,
			Start:      ts.Start.UTC().Format("2006-01-02T15:04:05.000Z07:00"),
			DurationMS: float64(ts.Duration.Microseconds()) / 1e3,
			Spans:      len(ts.Spans),
		})
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{"traces": out})
}

func serveTrace(t *Tracer, w http.ResponseWriter, r *http.Request, id string) {
	ts := t.Lookup(id)
	if ts == nil {
		http.Error(w, "trace not found (the ring may have rolled past it)", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(ts)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte(RenderTree(ts)))
}

// RenderTree renders the trace's span tree as indented text, one span
// per line with duration, attributes, events, and error, children
// indented under parents in start order:
//
//	trace 0af7651916cd43dd8448eb211c80319c status=slow duration=52.1ms
//	└─ http.preferences 52.1ms
//	   └─ system.add_preferences 51.8ms
//	      └─ journal.append 51.2ms records=1
//	         └─ journal.fsync 50.9ms
func RenderTree(ts *TraceSnapshot) string {
	if ts == nil {
		return ""
	}
	children := make(map[uint64][]SpanData)
	for _, sp := range ts.Spans {
		children[sp.Parent] = append(children[sp.Parent], sp)
	}
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool {
			if !kids[i].Start.Equal(kids[j].Start) {
				return kids[i].Start.Before(kids[j].Start)
			}
			return kids[i].ID < kids[j].ID
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s status=%s duration=%s\n", ts.TraceID, ts.Status, ts.Duration)
	var walk func(parent uint64, indent string)
	walk = func(parent uint64, indent string) {
		kids := children[parent]
		for i, sp := range kids {
			branch, next := "├─ ", "│  "
			if i == len(kids)-1 {
				branch, next = "└─ ", "   "
			}
			b.WriteString(indent)
			b.WriteString(branch)
			b.WriteString(sp.Name)
			fmt.Fprintf(&b, " %s", sp.Duration)
			for _, a := range sp.Attrs {
				fmt.Fprintf(&b, " %s=%v", a.Key, a.Value())
			}
			for _, e := range sp.Events {
				fmt.Fprintf(&b, " [%s]", e.Name)
			}
			if sp.Err != "" {
				fmt.Fprintf(&b, " error=%q", sp.Err)
			}
			b.WriteByte('\n')
			walk(sp.ID, indent+next)
		}
	}
	walk(0, "")
	return b.String()
}
