package tracing

import (
	"context"
	"testing"
	"time"
)

// BenchmarkRequestLifecycle is the tracer's share of one healthy
// (dropped, zero-sampling) resolve request: a root with the middleware
// attrs, two nested child spans with the resolver attrs, the
// traceparent render, and the Release that recycles the block. This is
// the number the end-to-end overhead bar in BENCH_PR7.json is made of.
func BenchmarkRequestLifecycle(b *testing.B) {
	tr := New(Config{SlowTrace: time.Hour})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now() // the middleware's own request timestamp
		rctx, root := tr.StartRootAt(ctx, "http /resolve", Traceparent{}, start)
		root.SetString("method", "GET")
		root.SetString("path", "/resolve")
		root.SetString("request_id", "42")
		_ = root.Traceparent()
		sctx, sys := Start(rctx, "system.resolve_all")
		_, leaf := Start(sctx, "profiletree.resolve_all")
		leaf.SetInt("cells", 12)
		leaf.SetInt("candidates", 3)
		leaf.End()
		sys.End()
		root.SetInt("status", 200)
		root.EndAfter(time.Since(start))
		root.Release()
	}
}
