package tracing

import "encoding/hex"

// Traceparent is a parsed W3C traceparent header (version 00):
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//
// The zero value means "no inbound trace context".
type Traceparent struct {
	TraceID [16]byte
	SpanID  [8]byte
	Sampled bool
}

// ParseTraceparent parses a traceparent header value. It accepts any
// known-format version except the invalid 0xff, per the W3C trace
// context spec's forward-compatibility rule: version-00 values must be
// exactly four fields, later versions may carry extra suffix fields.
// All-zero trace or span IDs are rejected.
func ParseTraceparent(s string) (Traceparent, bool) {
	var tp Traceparent
	// version(2) '-' traceid(32) '-' spanid(16) '-' flags(2)
	if len(s) < 55 {
		return Traceparent{}, false
	}
	if s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return Traceparent{}, false
	}
	var ver [1]byte
	if _, err := hex.Decode(ver[:], []byte(s[0:2])); err != nil || ver[0] == 0xff {
		return Traceparent{}, false
	}
	if ver[0] == 0 && len(s) != 55 {
		return Traceparent{}, false
	}
	if ver[0] != 0 && len(s) > 55 && s[55] != '-' {
		return Traceparent{}, false
	}
	if _, err := hex.Decode(tp.TraceID[:], []byte(s[3:35])); err != nil {
		return Traceparent{}, false
	}
	if _, err := hex.Decode(tp.SpanID[:], []byte(s[36:52])); err != nil {
		return Traceparent{}, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(s[53:55])); err != nil {
		return Traceparent{}, false
	}
	if tp.TraceID == ([16]byte{}) || tp.SpanID == ([8]byte{}) {
		return Traceparent{}, false
	}
	tp.Sampled = flags[0]&0x01 != 0
	return tp, true
}

// String renders the version-00 header form. The zero value renders an
// all-zero (invalid) header; callers should not emit it.
func (tp Traceparent) String() string {
	// A fixed stack buffer keeps this to the one unavoidable
	// allocation (the returned string); this runs once per traced
	// request for the response header.
	var buf [55]byte
	buf[0], buf[1], buf[2] = '0', '0', '-'
	hex.Encode(buf[3:35], tp.TraceID[:])
	buf[35] = '-'
	hex.Encode(buf[36:52], tp.SpanID[:])
	buf[52], buf[53] = '-', '0'
	buf[54] = '0'
	if tp.Sampled {
		buf[54] = '1'
	}
	return string(buf[:])
}
