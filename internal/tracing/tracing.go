// Package tracing is a dependency-free request-scoped span tracer for
// the context-aware preference database: every request gets a tree of
// named, timed spans with typed attributes, threaded through the same
// context.Context plumbing the deadline layer laid down.
//
// The design goal is provenance, not distributed tracing: when the
// metrics layer says p99 resolve latency spiked, a retained trace names
// the guilty stage — a Search_CS cover scan, a journal fsync, admission
// queueing — with per-span attributes carrying the paper's cost model
// (cells visited, candidates found, cover level, hierarchy distance).
//
// # Retention
//
// Completed traces land in a bounded lock-free ring buffer with
// tail-based retention: every trace that was slow (root duration at or
// above Config.SlowTrace) or errored is kept verbatim; healthy traces
// are head-sampled at Config.SampleRate using a deterministic counter
// (no randomness on the hot path). The ring overwrites oldest-first, so
// retention is best-effort: a burst of slow traces evicts older ones.
//
// # Nil safety
//
// Like internal/telemetry, everything degrades to a no-op when
// disabled: a nil *Tracer returns a nil root span, Start on a context
// without a span returns a nil span, and every Span method is safe on a
// nil receiver. Instrumented packages thread spans unconditionally; the
// disabled cost is one nil check per call.
//
// # Concurrency
//
// A Span must only be mutated (attributes, events, Fail, End) by one
// goroutine at a time — the natural shape for request-scoped code.
// Spans may start and run on different goroutines, but every span must
// end before the root span ends: ending the root is the trace's
// synchronization point, where the finished spans are read back whole.
// Request-scoped code gets this ordering for free — whatever forked a
// child span joins it before the handler returns. A span still running
// when the root ends is a contract violation (and, like a span that
// was never ended, is absent from the snapshot).
//
// # Cost
//
// A trace's spans, finished-span records, and attributes are carved
// out of one arena block allocated at StartRoot, and the root owner
// may hand a dropped trace's block back via Span.Release — the
// enabled-but-unsampled healthy path then allocates nothing at steady
// state beyond context plumbing. Ending a non-root span is two field
// writes; the flat record list, the snapshot, and the trace-ID hex are
// built only for traces somebody keeps or inspects. That is what keeps
// the tracer always-on-affordable (see BENCH_PR7.json).
package tracing

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"contextpref/internal/telemetry"
)

// Config configures a Tracer.
type Config struct {
	// SlowTrace is the root-span duration at or above which a trace is
	// retained verbatim regardless of sampling. Zero disables slow
	// retention (errored traces are still kept).
	SlowTrace time.Duration
	// SampleRate is the fraction of healthy (neither slow nor errored)
	// traces to retain, in [0, 1]. Sampling is deterministic: every
	// 1/rate-th root span is kept, so a rate of 0.01 keeps exactly one
	// trace per hundred, not one in expectation.
	SampleRate float64
	// Capacity is the trace ring size (default 256).
	Capacity int
	// Metrics receives span/trace accounting; nil disables it.
	Metrics *Metrics
}

// Metrics holds the tracer's telemetry instruments. All fields are
// optional; nil handles no-op.
type Metrics struct {
	SpansStarted    *telemetry.Counter // spans created
	RetainedSlow    *telemetry.Counter // traces kept because slow
	RetainedError   *telemetry.Counter // traces kept because errored
	RetainedSampled *telemetry.Counter // healthy traces kept by head sampling
	Dropped         *telemetry.Counter // healthy traces discarded
}

// DefaultCapacity is the ring size used when Config.Capacity is zero.
const DefaultCapacity = 256

// Tracer mints trace/span IDs, decides retention, and owns the ring of
// retained traces. A nil *Tracer is a valid "tracing disabled" tracer.
type Tracer struct {
	slow    time.Duration
	rate    float64
	sampleN atomic.Uint64
	idHi    uint64        // random process prefix for trace IDs
	idLo    atomic.Uint64 // per-process trace counter
	slots   []atomic.Pointer[TraceSnapshot]
	next    atomic.Uint64
	metrics *Metrics
	pool    sync.Pool // recycled *trace blocks (see Span.Release)
}

// New creates a Tracer. The trace-ID prefix is drawn from crypto/rand
// once at construction; per-trace IDs are a counter under it, so IDs
// are unique within a process and collision-resistant across restarts.
func New(cfg Config) *Tracer {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	var seed [8]byte
	_, _ = rand.Read(seed[:])
	hi := binary.BigEndian.Uint64(seed[:])
	if hi == 0 {
		hi = 1 // trace IDs must be non-zero
	}
	return &Tracer{
		slow:    cfg.SlowTrace,
		rate:    cfg.SampleRate,
		idHi:    hi,
		slots:   make([]atomic.Pointer[TraceSnapshot], capacity),
		metrics: cfg.Metrics,
	}
}

// sampleHead reports whether the n-th healthy trace should be kept.
// With rate r, the floor of n*r increments exactly on the kept traces,
// giving deterministic 1-in-1/r retention without math/rand.
func (t *Tracer) sampleHead() bool {
	r := t.rate
	if r <= 0 {
		return false
	}
	if r >= 1 {
		return true
	}
	n := t.sampleN.Add(1)
	return uint64(float64(n)*r) != uint64(float64(n-1)*r)
}

// Attr is one typed span attribute. Exactly one value field is
// meaningful, named by Type ("string", "int", "float", "bool").
type Attr struct {
	Key   string  `json:"key"`
	Type  string  `json:"type"`
	Str   string  `json:"str,omitempty"`
	Int   int64   `json:"int,omitempty"`
	Float float64 `json:"float,omitempty"`
	Bool  bool    `json:"bool,omitempty"`
}

// Value returns the attribute's value as an untyped interface.
func (a Attr) Value() any {
	switch a.Type {
	case "int":
		return a.Int
	case "float":
		return a.Float
	case "bool":
		return a.Bool
	default:
		return a.Str
	}
}

// Event is a point-in-time annotation on a span (e.g. a query-tree
// cache hit).
type Event struct {
	Name string    `json:"name"`
	Time time.Time `json:"time"`
}

// SpanData is the immutable record of one finished span.
type SpanData struct {
	ID       uint64        `json:"id"`
	Parent   uint64        `json:"parent,omitempty"` // 0 for the root
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Err      string        `json:"error,omitempty"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Events   []Event       `json:"events,omitempty"`
}

// arenaSpans and arenaAttrChunk size the per-trace arena: one
// allocation at StartRoot serves the span structs, finished-span
// records, and attribute storage of a typical request (an instrumented
// resolve uses three spans; a journaled mutation about seven). Spans
// and attributes beyond the arena silently fall back to the heap, so
// the sizes bound the fast path, not the trace.
const (
	arenaSpans     = 4
	arenaAttrChunk = 4
)

// trace is the mutable in-flight state shared by a request's spans.
// Everything a healthy (eventually dropped) trace needs lives in this
// one allocation: span structs come from spanBuf, finished-span
// records from dataBuf, and attributes from attrBuf, all handed out by
// atomic indices. Finished spans keep their data in their Span structs;
// the flat record list is materialized in one pass only when someone
// needs it — at finalize for retained traces, at Snapshot for dropped
// ones — so on the zero-sampling hot path a healthy trace costs one
// allocation and never builds a record at all.
type trace struct {
	tracer  *Tracer
	id      [16]byte
	sampled bool      // head-sample decision, fixed at root start
	start   time.Time // root start; child spans derive timestamps from it
	nextID  atomic.Uint64
	attrN   atomic.Int32

	mu       sync.Mutex
	extra    []*Span        // heap spans beyond the arena (rare)
	spans    []SpanData     // records; see built
	built    bool           // records materialized from the span structs
	done     bool           // root span ended; status decided
	released bool           // returned to the pool (guards double Release)
	status   string         // set when the root span ends
	snap     *TraceSnapshot // built at finalize (retained) or on demand

	spanBuf [arenaSpans]Span
	dataBuf [arenaSpans]SpanData
	attrBuf [3 * arenaAttrChunk]Attr
}

// reset readies a recycled trace block for its next request. The
// arenas are not cleared: newSpan overwrites span fields and the
// zero-length slices handed out by takeAttrs never expose stale
// entries.
func (tr *trace) reset() {
	tr.nextID.Store(0)
	tr.attrN.Store(0)
	tr.extra = nil
	tr.spans = tr.dataBuf[:0]
	tr.built = false
	tr.done = false
	tr.released = false
	tr.status = ""
	tr.snap = nil
}

// Span is one live timed operation. All methods are no-ops on a nil
// receiver, so instrumented code needs no enabled/disabled branches. A
// *Span is also the context.Context returned by Start/StartRoot (see
// context.go): ctx is the context the span was started under, and
// deadline/cancellation questions delegate to it.
type Span struct {
	tr     *trace
	ctx    context.Context
	id     uint64
	parent uint64 // 0 for the root
	name   string
	start  time.Time
	dur    time.Duration // set by End/EndAfter
	err    error
	attrs  []Attr
	events []Event
	ended  bool
}

// StartRoot begins a new trace rooted at a span with the given name and
// returns a derived context carrying it. remote is the inbound
// traceparent, if any: its trace ID is adopted (so the caller's trace
// continues through this process) and its sampled flag forces
// retention-by-sampling. Pass Traceparent{} when there is none. A nil
// tracer returns (ctx, nil) unchanged.
func (t *Tracer) StartRoot(ctx context.Context, name string, remote Traceparent) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	return t.StartRootAt(ctx, name, remote, time.Now())
}

// StartRootAt is StartRoot with a caller-supplied start time, for
// callers that already timestamped the request — the HTTP middleware
// reads the clock once and shares it between its latency metrics, the
// slow-request log, and the root span.
func (t *Tracer) StartRootAt(ctx context.Context, name string, remote Traceparent, start time.Time) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	tr, _ := t.pool.Get().(*trace)
	if tr == nil {
		tr = &trace{tracer: t}
		tr.spans = tr.dataBuf[:0]
	} else {
		tr.reset()
	}
	if remote.TraceID != ([16]byte{}) {
		tr.id = remote.TraceID
		tr.sampled = remote.Sampled || t.sampleHead()
	} else {
		binary.BigEndian.PutUint64(tr.id[:8], t.idHi)
		binary.BigEndian.PutUint64(tr.id[8:], t.idLo.Add(1))
		tr.sampled = t.sampleHead()
	}
	tr.start = start
	sp := tr.newSpanAt(ctx, name, 0, start)
	return sp, sp
}

// newSpan hands out the next span in the trace — from the arena while
// it lasts, from the heap after. ctx is the context the span derives
// from; the span itself is the derived context (see context.go), so
// starting a span allocates nothing beyond the span when the arena has
// room. The child's wall-clock start is derived from the root's: one
// monotonic-clock read instead of a full time.Now, with the same
// monotonic component for the later End.
func (tr *trace) newSpan(ctx context.Context, name string, parent uint64) *Span {
	return tr.newSpanAt(ctx, name, parent, tr.start.Add(time.Since(tr.start)))
}

func (tr *trace) newSpanAt(ctx context.Context, name string, parent uint64, start time.Time) *Span {
	tr.tracer.metrics.spansStarted()
	id := tr.nextID.Add(1)
	var sp *Span
	if id <= arenaSpans {
		sp = &tr.spanBuf[id-1]
	} else {
		sp = new(Span)
		tr.mu.Lock()
		tr.extra = append(tr.extra, sp)
		tr.mu.Unlock()
	}
	sp.tr = tr
	sp.ctx = ctx
	sp.id = id
	sp.parent = parent
	sp.name = name
	sp.start = start
	sp.err = nil
	sp.attrs = nil
	sp.events = nil
	sp.ended = false
	return sp
}

// takeAttrs carves one attribute chunk out of the trace arena,
// returning a zero-length slice whose capacity triggers a normal heap
// grow if the span outruns it. Returns nil once the arena is spent.
func (tr *trace) takeAttrs() []Attr {
	n := tr.attrN.Add(arenaAttrChunk)
	if int(n) > len(tr.attrBuf) {
		return nil
	}
	return tr.attrBuf[n-arenaAttrChunk : n-arenaAttrChunk : n]
}

func (m *Metrics) spansStarted() {
	if m != nil {
		m.SpansStarted.Inc()
	}
}

// End finishes the span, recording its duration. Ending the root span
// finalizes the trace: retention is decided and, if kept, the snapshot
// is published to the ring. End is idempotent; spans ending after their
// root has ended are not part of the snapshot.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.finish(time.Since(s.start))
}

// EndAfter is End with a caller-measured duration, for callers that
// already read the clock — the HTTP middleware measures the request
// once and shares the reading between its latency metrics, the
// slow-request log, and the root span.
func (s *Span) EndAfter(d time.Duration) {
	if s == nil || s.ended {
		return
	}
	s.finish(d)
}

// finish stamps the span done. A non-root span touches nothing shared:
// its data stays in the span struct, and the root's finalize — the
// trace's synchronization point — reads it back when something needs
// the records. Only the root takes the trace lock.
func (s *Span) finish(dur time.Duration) {
	s.dur = dur
	s.ended = true
	if s.parent != 0 {
		return
	}
	tr := s.tr
	tr.mu.Lock()
	if !tr.done {
		tr.finalizeLocked(s)
	}
	tr.mu.Unlock()
}

// finalizeLocked applies the retention policy. Retained traces get
// their records and snapshot built and published to the ring here;
// dropped traces record only the verdict, deferring everything to the
// rare caller that still asks (Snapshot on the slow-log path) — the
// zero-sampling healthy path pays for no records, no snapshot, and no
// hex encoding. Caller holds tr.mu.
func (tr *trace) finalizeLocked(root *Span) {
	tr.done = true
	t := tr.tracer
	switch {
	case tr.erroredLocked():
		tr.status = StatusError
		t.metricInc(func(m *Metrics) *telemetry.Counter { return m.RetainedError })
	case t.slow > 0 && root.dur >= t.slow:
		tr.status = StatusSlow
		t.metricInc(func(m *Metrics) *telemetry.Counter { return m.RetainedSlow })
	case tr.sampled:
		tr.status = StatusSampled
		t.metricInc(func(m *Metrics) *telemetry.Counter { return m.RetainedSampled })
	default:
		tr.status = StatusDropped
		t.metricInc(func(m *Metrics) *telemetry.Counter { return m.Dropped })
		return
	}
	tr.buildRecordsLocked()
	snap := tr.buildSnapshotLocked()
	i := t.next.Add(1) - 1
	t.slots[i%uint64(len(t.slots))].Store(snap)
}

// erroredLocked reports whether any finished span failed. Caller holds
// tr.mu.
func (tr *trace) erroredLocked() bool {
	n := tr.nextID.Load()
	if n > arenaSpans {
		n = arenaSpans
	}
	for i := uint64(0); i < n; i++ {
		if s := &tr.spanBuf[i]; s.ended && s.err != nil {
			return true
		}
	}
	for _, s := range tr.extra {
		if s.ended && s.err != nil {
			return true
		}
	}
	return false
}

// buildRecordsLocked materializes the flat finished-span list from the
// span structs, in start order. Spans that never ended (leaked, or
// still running in violation of the root-ends-last contract) are
// skipped. Caller holds tr.mu.
func (tr *trace) buildRecordsLocked() {
	if tr.built {
		return
	}
	tr.built = true
	tr.spans = tr.dataBuf[:0]
	n := tr.nextID.Load()
	if n > arenaSpans {
		n = arenaSpans
	}
	for i := uint64(0); i < n; i++ {
		tr.appendRecordLocked(&tr.spanBuf[i])
	}
	for _, s := range tr.extra {
		tr.appendRecordLocked(s)
	}
}

func (tr *trace) appendRecordLocked(s *Span) {
	if !s.ended {
		return
	}
	k := len(tr.spans)
	if k < cap(tr.spans) {
		tr.spans = tr.spans[:k+1]
	} else {
		tr.spans = append(tr.spans, SpanData{})
	}
	d := &tr.spans[k]
	d.ID = s.id
	d.Parent = s.parent
	d.Name = s.name
	d.Start = s.start
	d.Duration = s.dur
	d.Err = ""
	if s.err != nil {
		d.Err = s.err.Error()
	}
	d.Attrs = s.attrs
	d.Events = s.events
}

// buildSnapshotLocked materializes the finished trace. Caller holds
// tr.mu, has finalized the trace, and has built the records. The root
// span is always the trace's first span, so its identity is read
// straight from the first arena slot.
func (tr *trace) buildSnapshotLocked() *TraceSnapshot {
	root := &tr.spanBuf[0]
	tr.snap = &TraceSnapshot{
		TraceID:  hex.EncodeToString(tr.id[:]),
		Status:   tr.status,
		Root:     root.name,
		Start:    root.start,
		Duration: root.dur,
		Spans:    tr.spans,
	}
	return tr.snap
}

func (t *Tracer) metricInc(pick func(*Metrics) *telemetry.Counter) {
	if t.metrics != nil {
		pick(t.metrics).Inc()
	}
}

// Fail records err on the span; any failed span marks the whole trace
// errored, which retains it verbatim. A nil err is ignored.
func (s *Span) Fail(err error) {
	if s != nil && err != nil {
		s.err = err
	}
}

// addAttr reserves the next attribute slot, sourcing the first chunk
// of storage from the trace arena. Callers must set every field: a
// slot from a recycled arena may hold a stale attribute.
func (s *Span) addAttr() *Attr {
	if s.attrs == nil {
		s.attrs = s.tr.takeAttrs()
	}
	n := len(s.attrs)
	if n < cap(s.attrs) {
		s.attrs = s.attrs[:n+1]
	} else {
		s.attrs = append(s.attrs, Attr{})
	}
	return &s.attrs[n]
}

// SetString attaches a string attribute.
func (s *Span) SetString(key, v string) {
	if s == nil {
		return
	}
	a := s.addAttr()
	a.Key, a.Type, a.Str = key, "string", v
	a.Int, a.Float, a.Bool = 0, 0, false
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	a := s.addAttr()
	a.Key, a.Type, a.Int = key, "int", v
	a.Str, a.Float, a.Bool = "", 0, false
}

// SetFloat attaches a float attribute.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	a := s.addAttr()
	a.Key, a.Type, a.Float = key, "float", v
	a.Str, a.Int, a.Bool = "", 0, false
}

// SetBool attaches a boolean attribute.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	a := s.addAttr()
	a.Key, a.Type, a.Bool = key, "bool", v
	a.Str, a.Int, a.Float = "", 0, 0
}

// AddEvent attaches a point-in-time event to the span.
func (s *Span) AddEvent(name string) {
	if s != nil {
		s.events = append(s.events, Event{Name: name, Time: time.Now()})
	}
}

// TraceID returns the span's 32-hex-digit trace ID ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return hex.EncodeToString(s.tr.id[:])
}

// Traceparent returns the W3C traceparent value identifying this span,
// for propagation on responses or outbound calls ("" on nil).
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	var tp Traceparent
	tp.TraceID = s.tr.id
	binary.BigEndian.PutUint64(tp.SpanID[:], s.id)
	tp.Sampled = s.tr.sampled
	return tp.String()
}

// Snapshot returns the finished trace. It is non-nil only after the
// root span's End, and is returned even for dropped traces so callers
// (e.g. the slow-request log) can inspect spans without racing the
// retention policy.
func (s *Span) Snapshot() *TraceSnapshot {
	if s == nil {
		return nil
	}
	tr := s.tr
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if !tr.done {
		return nil
	}
	if tr.snap == nil {
		// Dropped trace: nobody built the records or snapshot at
		// finalize; do it now for this caller.
		tr.buildRecordsLocked()
		return tr.buildSnapshotLocked()
	}
	return tr.snap
}

// Release returns a dropped trace's buffers to the tracer for reuse,
// making the healthy (unsampled, fast, error-free) path allocation-
// free at steady state. Call it on the root span only, after the trace
// is completely finished with: every span ended, and any TraceID,
// Traceparent, or Snapshot reads done. After Release, every span of
// the trace is invalid — a span that outlives its root (a background
// goroutine holding the request context, say) must not exist when
// Release is used, or it will write into an unrelated later trace.
// Retained traces and traces whose snapshot was built are never
// recycled (the ring owns their buffers), so Release is always safe to
// call unconditionally at the end of a request; it is a no-op on a nil
// span, a non-root span, and an unfinished or already-released trace.
func (s *Span) Release() {
	if s == nil || s.parent != 0 {
		return
	}
	tr := s.tr
	tr.mu.Lock()
	ok := tr.done && tr.snap == nil && !tr.released
	if ok {
		tr.released = true
	}
	tr.mu.Unlock()
	if ok {
		tr.tracer.pool.Put(tr)
	}
}

// Trace retention statuses.
const (
	StatusSlow    = "slow"
	StatusError   = "error"
	StatusSampled = "sampled"
	StatusDropped = "dropped" // never stored in the ring
)

// TraceSnapshot is one finished trace: the root identity plus every
// span that ended before the root did. Snapshots are immutable once
// published.
type TraceSnapshot struct {
	TraceID  string        `json:"trace_id"`
	Status   string        `json:"status"`
	Root     string        `json:"root"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Spans    []SpanData    `json:"spans"`
}

// Slowest returns up to n non-root spans ordered by descending
// duration — the "where did the time go" digest for log lines.
func (ts *TraceSnapshot) Slowest(n int) []SpanData {
	if ts == nil || n <= 0 {
		return nil
	}
	out := make([]SpanData, 0, len(ts.Spans))
	for _, sp := range ts.Spans {
		if sp.Parent != 0 {
			out = append(out, sp)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Duration != out[j].Duration {
			return out[i].Duration > out[j].Duration
		}
		return out[i].ID < out[j].ID // stable, deterministic tie-break
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Snapshots returns the retained traces, newest first. Nil tracer →
// nil. The result is a stable copy; the ring keeps rolling underneath.
func (t *Tracer) Snapshots() []*TraceSnapshot {
	if t == nil {
		return nil
	}
	out := make([]*TraceSnapshot, 0, len(t.slots))
	for i := range t.slots {
		if ts := t.slots[i].Load(); ts != nil {
			out = append(out, ts)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	return out
}

// Lookup returns the retained trace with the given hex ID, or nil.
func (t *Tracer) Lookup(id string) *TraceSnapshot {
	if t == nil {
		return nil
	}
	for i := range t.slots {
		if ts := t.slots[i].Load(); ts != nil && ts.TraceID == id {
			return ts
		}
	}
	return nil
}
