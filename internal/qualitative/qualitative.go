// Package qualitative extends the contextual model to qualitative
// preferences. Section 3.2 of "Adding Context to Preferences"
// (ICDE 2007) notes that the context model "can be used for extending
// both quantitative and qualitative approaches" and Section 6 points at
// Chomicki's preference formulas [4] as the canonical qualitative
// framework; this package implements that extension.
//
// A qualitative contextual preference is a rule
// (cod, better-clause ≻ worse-clause): within the context states of
// cod, tuples satisfying the better clause are preferred over tuples
// satisfying the worse one. Rules attach to context states exactly like
// quantitative preferences, and context resolution — covers plus a
// distance metric — is shared with the rest of the system. Queries
// return the winnow (best-matches-only) of the relation under the rules
// of the most relevant state, or a full stratification of the tuples
// into preference levels.
package qualitative

import (
	"fmt"
	"sort"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/distance"
	"contextpref/internal/preference"
	"contextpref/internal/relation"
)

// Rule is one qualitative contextual preference: in the contexts of
// Descriptor, tuples matching Better dominate tuples matching Worse.
type Rule struct {
	// Descriptor scopes the rule's applicability.
	Descriptor ctxmodel.Descriptor
	// Better selects the preferred tuples.
	Better preference.Clause
	// Worse selects the dominated tuples.
	Worse preference.Clause
}

// String renders the rule.
func (r Rule) String() string {
	return fmt.Sprintf("(%s, %s ≻ %s)", r.Descriptor, r.Better, r.Worse)
}

// Profile stores qualitative rules indexed by the context states their
// descriptors denote.
type Profile struct {
	env    *ctxmodel.Environment
	states []stateRules
	index  map[string]int
	rules  int
}

type stateRules struct {
	state ctxmodel.State
	rules []Rule
}

// NewProfile creates an empty qualitative profile.
func NewProfile(env *ctxmodel.Environment) (*Profile, error) {
	if env == nil {
		return nil, fmt.Errorf("qualitative: nil environment")
	}
	return &Profile{env: env, index: make(map[string]int)}, nil
}

// Env returns the profile's environment.
func (p *Profile) Env() *ctxmodel.Environment { return p.env }

// Len returns the number of rules added.
func (p *Profile) Len() int { return p.rules }

// NumStates returns the number of distinct context states with rules.
func (p *Profile) NumStates() int { return len(p.states) }

// Add validates the rule and attaches it to every state its descriptor
// denotes. A rule whose Better and Worse clauses coincide is rejected —
// it would make matching tuples dominate themselves.
func (p *Profile) Add(r Rule) error {
	if r.Better.Attr == "" || r.Worse.Attr == "" {
		return fmt.Errorf("qualitative: empty clause attribute in %s", r)
	}
	if r.Better.Equal(r.Worse) {
		return fmt.Errorf("qualitative: rule %s prefers a clause over itself", r)
	}
	states, err := r.Descriptor.Context(p.env)
	if err != nil {
		return err
	}
	for _, s := range states {
		i, ok := p.index[s.Key()]
		if !ok {
			i = len(p.states)
			p.states = append(p.states, stateRules{state: s.Clone()})
			p.index[s.Key()] = i
		}
		p.states[i].rules = append(p.states[i].rules, r)
	}
	p.rules++
	return nil
}

// Resolution describes how a query state matched the profile.
type Resolution struct {
	// State is the matched stored state.
	State ctxmodel.State
	// Distance is the metric distance to the query state.
	Distance float64
	// Rules are the rules attached to the matched state.
	Rules []Rule
}

// Resolve finds the stored state most relevant to the query state: an
// exact match if present, otherwise the covering state with the
// smallest metric distance. ok is false when nothing covers the state.
func (p *Profile) Resolve(s ctxmodel.State, m distance.Metric) (Resolution, bool, error) {
	if err := p.env.Validate(s); err != nil {
		return Resolution{}, false, err
	}
	if i, exact := p.index[s.Key()]; exact {
		return Resolution{State: p.states[i].state.Clone(), Rules: p.states[i].rules}, true, nil
	}
	best := Resolution{}
	found := false
	for _, sr := range p.states {
		if !p.env.Covers(sr.state, s) {
			continue
		}
		d, err := m.StateDistance(p.env, sr.state, s)
		if err != nil {
			return Resolution{}, false, err
		}
		if !found || d < best.Distance ||
			(d == best.Distance && sr.state.Key() < best.State.Key()) {
			best = Resolution{State: sr.state.Clone(), Distance: d, Rules: sr.rules}
			found = true
		}
	}
	return best, found, nil
}

// dominates reports whether tuple a dominates tuple b under the rules:
// some rule's Better matches a while its Worse matches b.
func dominates(schema *relation.Schema, rules []Rule, a, b relation.Tuple) (bool, error) {
	for _, r := range rules {
		ba, err := r.Better.Predicate().Eval(schema, a)
		if err != nil {
			return false, err
		}
		if !ba {
			continue
		}
		wb, err := r.Worse.Predicate().Eval(schema, b)
		if err != nil {
			return false, err
		}
		if wb {
			return true, nil
		}
	}
	return false, nil
}

// Winnow implements Chomicki's winnow operator over the subset of
// tuples given by idxs (nil = all): it returns the indexes of tuples
// not dominated by any other tuple of the subset, in relation order.
func Winnow(rel *relation.Relation, rules []Rule, idxs []int) ([]int, error) {
	if idxs == nil {
		idxs = make([]int, rel.Len())
		for i := range idxs {
			idxs[i] = i
		}
	}
	schema := rel.Schema()
	var out []int
	for _, i := range idxs {
		dominated := false
		for _, j := range idxs {
			if i == j {
				continue
			}
			d, err := dominates(schema, rules, rel.Tuple(j), rel.Tuple(i))
			if err != nil {
				return nil, err
			}
			if d {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out, nil
}

// Stratify partitions the tuples into preference levels by iterated
// winnow: level 0 holds the undominated tuples, level 1 the tuples
// undominated once level 0 is removed, and so on. Preference cycles —
// every remaining tuple dominated by another — would make a winnow
// level empty; the remaining tuples then form one final level so the
// stratification always terminates and covers the relation.
func Stratify(rel *relation.Relation, rules []Rule) ([][]int, error) {
	remaining := make([]int, rel.Len())
	for i := range remaining {
		remaining[i] = i
	}
	var levels [][]int
	for len(remaining) > 0 {
		level, err := Winnow(rel, rules, remaining)
		if err != nil {
			return nil, err
		}
		if len(level) == 0 {
			// Preference cycle among the remaining tuples.
			levels = append(levels, append([]int(nil), remaining...))
			break
		}
		levels = append(levels, level)
		inLevel := make(map[int]bool, len(level))
		for _, i := range level {
			inLevel[i] = true
		}
		next := remaining[:0]
		for _, i := range remaining {
			if !inLevel[i] {
				next = append(next, i)
			}
		}
		remaining = next
	}
	return levels, nil
}

// Result is a context-resolved qualitative query answer.
type Result struct {
	// Resolution explains the matched state (zero if !Contextual).
	Resolution Resolution
	// Contextual is false when no stored state covered the query
	// context; Best then holds every tuple (no preference applies).
	Contextual bool
	// Best holds the winnow result (tuple indexes in relation order).
	Best []int
	// Levels holds the full stratification, Levels[0] == Best.
	Levels [][]int
}

// Query resolves the context state against the profile and evaluates
// the matched rules over the relation.
func Query(p *Profile, rel *relation.Relation, s ctxmodel.State, m distance.Metric) (*Result, error) {
	res, ok, err := p.Resolve(s, m)
	if err != nil {
		return nil, err
	}
	if !ok {
		all := make([]int, rel.Len())
		for i := range all {
			all[i] = i
		}
		return &Result{Best: all, Levels: [][]int{all}}, nil
	}
	levels, err := Stratify(rel, res.Rules)
	if err != nil {
		return nil, err
	}
	out := &Result{Resolution: res, Contextual: true, Levels: levels}
	if len(levels) > 0 {
		out.Best = levels[0]
	}
	return out, nil
}

// SortedStates returns the stored states in key order; for diagnostics
// and deterministic rendering.
func (p *Profile) SortedStates() []ctxmodel.State {
	out := make([]ctxmodel.State, 0, len(p.states))
	for _, sr := range p.states {
		out = append(out, sr.state.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}
