package qualitative

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/distance"
	"contextpref/internal/preference"
	"contextpref/internal/relation"
)

func env(t *testing.T) *ctxmodel.Environment {
	t.Helper()
	e, err := ctxmodel.ReferenceEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func typeEq(v string) preference.Clause {
	return preference.Clause{Attr: "type", Op: relation.OpEq, Val: relation.S(v)}
}

func poiRelation(t *testing.T) *relation.Relation {
	t.Helper()
	schema, err := relation.NewSchema("poi",
		relation.Column{Name: "name", Kind: relation.KindString},
		relation.Column{Name: "type", Kind: relation.KindString},
	)
	if err != nil {
		t.Fatal(err)
	}
	rel := relation.New(schema)
	rows := [][2]string{
		{"Acropolis", "monument"},    // 0
		{"Benaki", "museum"},         // 1
		{"Plaka Brewery", "brewery"}, // 2
		{"City Zoo", "zoo"},          // 3
		{"Odeon", "theater"},         // 4
	}
	for _, r := range rows {
		if _, err := rel.Insert(relation.S(r[0]), relation.S(r[1])); err != nil {
			t.Fatal(err)
		}
	}
	return rel
}

// familyRules: with family, museums beat breweries and zoos beat
// theaters.
func familyRules(t *testing.T) []Rule {
	t.Helper()
	return []Rule{
		{
			Descriptor: ctxmodel.MustDescriptor(ctxmodel.Eq("accompanying_people", "family")),
			Better:     typeEq("museum"),
			Worse:      typeEq("brewery"),
		},
		{
			Descriptor: ctxmodel.MustDescriptor(ctxmodel.Eq("accompanying_people", "family")),
			Better:     typeEq("zoo"),
			Worse:      typeEq("theater"),
		},
	}
}

func TestProfileAdd(t *testing.T) {
	e := env(t)
	p, err := NewProfile(e)
	if err != nil {
		t.Fatal(err)
	}
	if p.Env() != e {
		t.Error("Env round-trip failed")
	}
	for _, r := range familyRules(t) {
		if err := p.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if p.Len() != 2 || p.NumStates() != 1 {
		t.Errorf("Len=%d NumStates=%d", p.Len(), p.NumStates())
	}
	// Multi-state descriptor fans out.
	r := Rule{
		Descriptor: ctxmodel.MustDescriptor(ctxmodel.In("temperature", "warm", "hot")),
		Better:     typeEq("park"),
		Worse:      typeEq("museum"),
	}
	if err := p.Add(r); err != nil {
		t.Fatal(err)
	}
	if p.NumStates() != 3 {
		t.Errorf("NumStates = %d, want 3", p.NumStates())
	}
	if got := len(p.SortedStates()); got != 3 {
		t.Errorf("SortedStates = %d", got)
	}
	// Validation.
	if _, err := NewProfile(nil); err == nil {
		t.Error("nil env should fail")
	}
	if err := p.Add(Rule{Descriptor: ctxmodel.MustDescriptor(), Better: typeEq("x"), Worse: typeEq("x")}); err == nil {
		t.Error("self-preferring rule should fail")
	}
	if err := p.Add(Rule{Descriptor: ctxmodel.MustDescriptor(), Worse: typeEq("x")}); err == nil {
		t.Error("empty better clause should fail")
	}
	if err := p.Add(Rule{
		Descriptor: ctxmodel.MustDescriptor(ctxmodel.Eq("location", "Atlantis")),
		Better:     typeEq("a"), Worse: typeEq("b"),
	}); err == nil {
		t.Error("bad descriptor should fail")
	}
	if !strings.Contains(familyRules(t)[0].String(), "≻") {
		t.Error("Rule.String missing ≻")
	}
}

func TestResolve(t *testing.T) {
	e := env(t)
	p, _ := NewProfile(e)
	for _, r := range familyRules(t) {
		if err := p.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	// Exact state.
	s, _ := e.NewState("all", "all", "family")
	res, ok, err := p.Resolve(s, distance.Hierarchy{})
	if err != nil || !ok {
		t.Fatalf("Resolve exact: %v %v", ok, err)
	}
	if res.Distance != 0 || len(res.Rules) != 2 {
		t.Errorf("exact resolution = %+v", res)
	}
	// Covered state.
	s, _ = e.NewState("Plaka", "warm", "family")
	res, ok, err = p.Resolve(s, distance.Hierarchy{})
	if err != nil || !ok {
		t.Fatalf("Resolve covered: %v %v", ok, err)
	}
	if res.Distance != 5 { // location 3 + temperature 2 + people 0
		t.Errorf("distance = %v, want 5", res.Distance)
	}
	// Uncovered state.
	s, _ = e.NewState("Plaka", "warm", "friends")
	_, ok, err = p.Resolve(s, distance.Hierarchy{})
	if err != nil || ok {
		t.Errorf("Resolve uncovered: ok=%v err=%v", ok, err)
	}
	// Invalid state.
	if _, _, err := p.Resolve(ctxmodel.State{"bad"}, distance.Hierarchy{}); err == nil {
		t.Error("invalid state should fail")
	}
}

func TestWinnow(t *testing.T) {
	e := env(t)
	rel := poiRelation(t)
	rules := familyRules(t)
	_ = e
	best, err := Winnow(rel, rules, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Dominated: brewery (2) by museum, theater (4) by zoo.
	want := []int{0, 1, 3}
	if len(best) != len(want) {
		t.Fatalf("winnow = %v, want %v", best, want)
	}
	for i := range want {
		if best[i] != want[i] {
			t.Fatalf("winnow = %v, want %v", best, want)
		}
	}
	// Restricted subset: without any museum tuple, the brewery is
	// undominated.
	best, err = Winnow(rel, rules, []int{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(best) != 2 || best[0] != 2 || best[1] != 3 {
		t.Errorf("restricted winnow = %v", best)
	}
	// No rules: everything survives.
	best, _ = Winnow(rel, nil, nil)
	if len(best) != rel.Len() {
		t.Errorf("ruleless winnow = %v", best)
	}
	// Error propagation: clause over unknown column.
	bad := []Rule{{Better: preference.Clause{Attr: "bogus", Op: relation.OpEq, Val: relation.S("x")}, Worse: typeEq("museum")}}
	if _, err := Winnow(rel, bad, nil); err == nil {
		t.Error("bad clause should fail")
	}
}

func TestStratify(t *testing.T) {
	rel := poiRelation(t)
	rules := familyRules(t)
	levels, err := Stratify(rel, rules)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 2 {
		t.Fatalf("levels = %v", levels)
	}
	// Level 0: monument, museum, zoo; level 1: brewery, theater.
	if len(levels[0]) != 3 || len(levels[1]) != 2 {
		t.Errorf("levels = %v", levels)
	}
	// Partition check.
	seen := map[int]bool{}
	total := 0
	for _, lv := range levels {
		for _, i := range lv {
			if seen[i] {
				t.Fatalf("tuple %d in two levels", i)
			}
			seen[i] = true
			total++
		}
	}
	if total != rel.Len() {
		t.Errorf("stratification covers %d of %d tuples", total, rel.Len())
	}
}

func TestStratifyCycle(t *testing.T) {
	rel := poiRelation(t)
	// museum ≻ brewery ≻ museum: a preference cycle.
	rules := []Rule{
		{Better: typeEq("museum"), Worse: typeEq("brewery")},
		{Better: typeEq("brewery"), Worse: typeEq("museum")},
	}
	levels, err := Stratify(rel, rules)
	if err != nil {
		t.Fatal(err)
	}
	// Level 0: the three tuples outside the cycle; final level: the
	// cyclic remainder.
	if len(levels) != 2 {
		t.Fatalf("levels = %v", levels)
	}
	if len(levels[1]) != 2 {
		t.Errorf("cycle level = %v", levels[1])
	}
}

func TestQuery(t *testing.T) {
	e := env(t)
	rel := poiRelation(t)
	p, _ := NewProfile(e)
	for _, r := range familyRules(t) {
		if err := p.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	// Covered context.
	s, _ := e.NewState("Plaka", "warm", "family")
	res, err := Query(p, rel, s, distance.Jaccard{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contextual || len(res.Best) != 3 || len(res.Levels) != 2 {
		t.Errorf("result = %+v", res)
	}
	if !res.Resolution.State.Equal(ctxmodel.State{"all", "all", "family"}) {
		t.Errorf("resolved state = %v", res.Resolution.State)
	}
	// Uncovered context: everything, single level.
	s, _ = e.NewState("Plaka", "warm", "friends")
	res, err = Query(p, rel, s, distance.Jaccard{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Contextual || len(res.Best) != rel.Len() {
		t.Errorf("fallback result = %+v", res)
	}
	// Invalid state propagates.
	if _, err := Query(p, rel, ctxmodel.State{"bad"}, distance.Jaccard{}); err == nil {
		t.Error("invalid state should fail")
	}
}

// Property: winnow returns exactly the undominated tuples, and
// stratification is a partition whose level-0 equals winnow.
func TestQuickWinnowSemantics(t *testing.T) {
	rel := poiRelation(t)
	types := []string{"monument", "museum", "brewery", "zoo", "theater"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var rules []Rule
		for n := 1 + r.Intn(5); n > 0; n-- {
			b, w := types[r.Intn(len(types))], types[r.Intn(len(types))]
			if b == w {
				continue
			}
			rules = append(rules, Rule{
				Descriptor: ctxmodel.MustDescriptor(),
				Better:     typeEq(b),
				Worse:      typeEq(w),
			})
		}
		best, err := Winnow(rel, rules, nil)
		if err != nil {
			return false
		}
		inBest := map[int]bool{}
		for _, i := range best {
			inBest[i] = true
		}
		// Check the winnow definition directly.
		for i := 0; i < rel.Len(); i++ {
			dominated := false
			for j := 0; j < rel.Len() && !dominated; j++ {
				if i == j {
					continue
				}
				d, err := dominates(rel.Schema(), rules, rel.Tuple(j), rel.Tuple(i))
				if err != nil {
					return false
				}
				dominated = d
			}
			if inBest[i] == dominated {
				return false
			}
		}
		levels, err := Stratify(rel, rules)
		if err != nil {
			return false
		}
		total := 0
		for _, lv := range levels {
			total += len(lv)
		}
		if total != rel.Len() {
			return false
		}
		if len(best) == 0 {
			// Every tuple dominated (a cycle covering the whole
			// relation): Stratify's fallback puts everything in one
			// level.
			return len(levels) == 1 && len(levels[0]) == rel.Len()
		}
		if len(levels) == 0 || len(levels[0]) != len(best) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
