// Package distance implements the two context-state similarity measures
// of Section 4.3 of "Adding Context to Preferences" (ICDE 2007): the
// hierarchy distance (Defs. 13–15) and the Jaccard distance
// (Defs. 16–17). Both are consistent with the covers partial order
// (Properties 1–3), which the context-resolution algorithm relies on.
package distance

import (
	"fmt"
	"math"

	"contextpref/internal/ctxmodel"
)

// Metric measures how far apart two extended context states are. A
// smaller distance means a better match during context resolution.
// Implementations return +Inf for states that are not comparable under
// the metric (e.g. values on disconnected hierarchy branches for the
// Jaccard metric with empty overlap never happens; the hierarchy metric
// is always finite inside one environment).
type Metric interface {
	// StateDistance returns the distance between s1 and s2 under the
	// environment's hierarchies. It equals the sum of ValueDistance
	// over all parameters (both paper metrics are per-parameter sums),
	// which lets the Search_CS algorithm accumulate the distance level
	// by level while descending the profile tree.
	StateDistance(e *ctxmodel.Environment, s1, s2 ctxmodel.State) (float64, error)
	// ValueDistance returns the distance contribution of the param-th
	// context parameter for values v1 and v2.
	ValueDistance(e *ctxmodel.Environment, param int, v1, v2 string) (float64, error)
	// Name identifies the metric in reports ("hierarchy" or "jaccard").
	Name() string
}

// Hierarchy is the level-based distance of Def. 15: the sum over
// parameters of the level distance (Def. 14) between the levels of the
// two values. On the chain hierarchies of the paper the level distance
// is the absolute difference of level indexes.
type Hierarchy struct{}

// Name implements Metric.
func (Hierarchy) Name() string { return "hierarchy" }

// StateDistance implements Metric.
func (Hierarchy) StateDistance(e *ctxmodel.Environment, s1, s2 ctxmodel.State) (float64, error) {
	l1, err := e.LevelsOf(s1)
	if err != nil {
		return 0, fmt.Errorf("distance: %w", err)
	}
	l2, err := e.LevelsOf(s2)
	if err != nil {
		return 0, fmt.Errorf("distance: %w", err)
	}
	total := 0
	for i := range l1 {
		total += e.Param(i).Hierarchy().LevelDistance(l1[i], l2[i])
	}
	return float64(total), nil
}

// ValueDistance implements Metric: the level distance between the
// levels of the two values (Def. 14).
func (Hierarchy) ValueDistance(e *ctxmodel.Environment, param int, v1, v2 string) (float64, error) {
	h := e.Param(param).Hierarchy()
	l1, ok := h.LevelOf(v1)
	if !ok {
		return 0, fmt.Errorf("distance: value %q not in edom(%s)", v1, e.Param(param).Name())
	}
	l2, ok := h.LevelOf(v2)
	if !ok {
		return 0, fmt.Errorf("distance: value %q not in edom(%s)", v2, e.Param(param).Name())
	}
	return float64(h.LevelDistance(l1, l2)), nil
}

// Jaccard is the distance of Defs. 16–17: per parameter,
// 1 − |desc(v1) ∩ desc(v2)| / |desc(v1) ∪ desc(v2)| over detailed-level
// descendant sets, summed across parameters.
type Jaccard struct{}

// Name implements Metric.
func (Jaccard) Name() string { return "jaccard" }

// StateDistance implements Metric.
func (Jaccard) StateDistance(e *ctxmodel.Environment, s1, s2 ctxmodel.State) (float64, error) {
	if len(s1) != e.NumParams() || len(s2) != e.NumParams() {
		return 0, fmt.Errorf("distance: state arity %d/%d, want %d", len(s1), len(s2), e.NumParams())
	}
	total := 0.0
	for i := range s1 {
		d, err := JaccardValue(e, i, s1[i], s2[i])
		if err != nil {
			return 0, err
		}
		total += d
	}
	return total, nil
}

// ValueDistance implements Metric via JaccardValue (Def. 16).
func (Jaccard) ValueDistance(e *ctxmodel.Environment, param int, v1, v2 string) (float64, error) {
	return JaccardValue(e, param, v1, v2)
}

// JaccardValue computes the Def. 16 distance between two values of the
// i-th parameter's hierarchy.
func JaccardValue(e *ctxmodel.Environment, param int, v1, v2 string) (float64, error) {
	h := e.Param(param).Hierarchy()
	d1, err := h.Descendants(v1)
	if err != nil {
		return 0, fmt.Errorf("distance: %w", err)
	}
	d2, err := h.Descendants(v2)
	if err != nil {
		return 0, fmt.Errorf("distance: %w", err)
	}
	set1 := make(map[string]bool, len(d1))
	for _, v := range d1 {
		set1[v] = true
	}
	inter := 0
	for _, v := range d2 {
		if set1[v] {
			inter++
		}
	}
	union := len(d1) + len(d2) - inter
	if union == 0 {
		// Cannot happen for well-formed hierarchies: every value has at
		// least one detailed descendant.
		return math.Inf(1), nil
	}
	return 1 - float64(inter)/float64(union), nil
}

// ByName returns the metric with the given name.
func ByName(name string) (Metric, error) {
	switch name {
	case "hierarchy":
		return Hierarchy{}, nil
	case "jaccard":
		return Jaccard{}, nil
	}
	return nil, fmt.Errorf("distance: unknown metric %q (want hierarchy or jaccard)", name)
}

// All returns every available metric, for experiments that sweep them.
func All() []Metric { return []Metric{Hierarchy{}, Jaccard{}} }
