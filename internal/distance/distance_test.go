package distance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"contextpref/internal/ctxmodel"
)

func env(t *testing.T) *ctxmodel.Environment {
	t.Helper()
	e, err := ctxmodel.ReferenceEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func st(t *testing.T, e *ctxmodel.Environment, vs ...string) ctxmodel.State {
	t.Helper()
	s, err := e.NewState(vs...)
	if err != nil {
		t.Fatalf("NewState(%v): %v", vs, err)
	}
	return s
}

func TestHierarchyDistance(t *testing.T) {
	e := env(t)
	h := Hierarchy{}
	if h.Name() != "hierarchy" {
		t.Errorf("Name = %q", h.Name())
	}
	cases := []struct {
		s1, s2 ctxmodel.State
		want   float64
	}{
		// Identical states.
		{st(t, e, "Plaka", "warm", "friends"), st(t, e, "Plaka", "warm", "friends"), 0},
		// One parameter one level apart (Region→City).
		{st(t, e, "Athens", "warm", "friends"), st(t, e, "Plaka", "warm", "friends"), 1},
		// Region→Country = 2.
		{st(t, e, "Greece", "warm", "friends"), st(t, e, "Plaka", "warm", "friends"), 2},
		// Mixed: location 2 + temperature 1 + people 1 = 4.
		{st(t, e, "Greece", "good", "all"), st(t, e, "Plaka", "warm", "friends"), 4},
		// ALL everywhere vs detailed: 3 + 2 + 1 = 6.
		{e.AllState(), st(t, e, "Plaka", "warm", "friends"), 6},
		// Distance is purely level-based: siblings at the same level are 0.
		{st(t, e, "Kifisia", "warm", "friends"), st(t, e, "Plaka", "warm", "friends"), 0},
	}
	for _, c := range cases {
		got, err := h.StateDistance(e, c.s1, c.s2)
		if err != nil {
			t.Fatalf("StateDistance(%v, %v): %v", c.s1, c.s2, err)
		}
		if got != c.want {
			t.Errorf("distH(%v, %v) = %v, want %v", c.s1, c.s2, got, c.want)
		}
		// Symmetry.
		back, _ := h.StateDistance(e, c.s2, c.s1)
		if back != got {
			t.Errorf("distH not symmetric on (%v, %v): %v vs %v", c.s1, c.s2, got, back)
		}
	}
	if _, err := h.StateDistance(e, ctxmodel.State{"Plaka"}, e.AllState()); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := h.StateDistance(e, ctxmodel.State{"x", "y", "z"}, e.AllState()); err == nil {
		t.Error("unknown values should fail")
	}
}

func TestJaccardDistance(t *testing.T) {
	e := env(t)
	j := Jaccard{}
	if j.Name() != "jaccard" {
		t.Errorf("Name = %q", j.Name())
	}
	// Identical detailed values: distance 0 per parameter.
	d, err := j.StateDistance(e, st(t, e, "Plaka", "warm", "friends"), st(t, e, "Plaka", "warm", "friends"))
	if err != nil || d != 0 {
		t.Errorf("identical states: %v, %v", d, err)
	}
	// Athens vs Plaka: desc(Athens) = {Plaka, Kifisia, Acropolis_Area},
	// desc(Plaka) = {Plaka} → 1 − 1/3 = 2/3.
	d, err = j.StateDistance(e, st(t, e, "Athens", "warm", "friends"), st(t, e, "Plaka", "warm", "friends"))
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 - 1.0/3.0; math.Abs(d-want) > 1e-12 {
		t.Errorf("Athens vs Plaka = %v, want %v", d, want)
	}
	// Disjoint siblings: Plaka vs Kifisia → 1.
	d, _ = j.StateDistance(e, st(t, e, "Plaka", "warm", "friends"), st(t, e, "Kifisia", "warm", "friends"))
	if d != 1 {
		t.Errorf("disjoint siblings = %v, want 1", d)
	}
	// good vs warm: desc(good) = {mild, warm, hot}, desc(warm) = {warm}
	// → 2/3; all (people) vs friends: 1 − 1/3 = 2/3.
	d, err = j.StateDistance(e, st(t, e, "Plaka", "good", "all"), st(t, e, "Plaka", "warm", "friends"))
	if err != nil {
		t.Fatal(err)
	}
	if want := 2.0/3.0 + 2.0/3.0; math.Abs(d-want) > 1e-12 {
		t.Errorf("mixed = %v, want %v", d, want)
	}
	if _, err := j.StateDistance(e, ctxmodel.State{"Plaka"}, e.AllState()); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := j.StateDistance(e, ctxmodel.State{"Atlantis", "warm", "friends"}, e.AllState()); err == nil {
		t.Error("unknown value should fail")
	}
}

func TestJaccardValueBounds(t *testing.T) {
	e := env(t)
	h := e.Param(0).Hierarchy()
	for _, v1 := range h.ExtendedDomain() {
		for _, v2 := range h.ExtendedDomain() {
			d, err := JaccardValue(e, 0, v1, v2)
			if err != nil {
				t.Fatalf("JaccardValue(%s, %s): %v", v1, v2, err)
			}
			if d < 0 || d > 1 {
				t.Errorf("JaccardValue(%s, %s) = %v out of [0,1]", v1, v2, d)
			}
			if v1 == v2 && d != 0 {
				t.Errorf("JaccardValue(%s, %s) = %v, want 0", v1, v2, d)
			}
		}
	}
	if _, err := JaccardValue(e, 0, "Atlantis", "Plaka"); err == nil {
		t.Error("unknown v1 should fail")
	}
	if _, err := JaccardValue(e, 0, "Plaka", "Atlantis"); err == nil {
		t.Error("unknown v2 should fail")
	}
}

// Property shared by both metrics: StateDistance is the sum of
// ValueDistance across parameters — the Search_CS accumulation rule.
func TestValueDistanceSumsToStateDistance(t *testing.T) {
	e := env(t)
	r := rand.New(rand.NewSource(7))
	for _, m := range All() {
		for trial := 0; trial < 200; trial++ {
			s1 := generalize(e, randomDetailed(e, r), r)
			s2 := generalize(e, randomDetailed(e, r), r)
			want, err := m.StateDistance(e, s1, s2)
			if err != nil {
				t.Fatal(err)
			}
			sum := 0.0
			for i := range s1 {
				d, err := m.ValueDistance(e, i, s1[i], s2[i])
				if err != nil {
					t.Fatal(err)
				}
				sum += d
			}
			if math.Abs(sum-want) > 1e-12 {
				t.Fatalf("%s: Σ ValueDistance = %v, StateDistance = %v (%v vs %v)",
					m.Name(), sum, want, s1, s2)
			}
		}
	}
	// Error paths.
	for _, m := range All() {
		if _, err := m.ValueDistance(e, 0, "Atlantis", "Plaka"); err == nil {
			t.Errorf("%s: unknown v1 should fail", m.Name())
		}
		if _, err := m.ValueDistance(e, 0, "Plaka", "Atlantis"); err == nil {
			t.Errorf("%s: unknown v2 should fail", m.Name())
		}
	}
}

func TestByNameAndAll(t *testing.T) {
	m, err := ByName("hierarchy")
	if err != nil || m.Name() != "hierarchy" {
		t.Errorf("ByName(hierarchy) = %v, %v", m, err)
	}
	m, err = ByName("jaccard")
	if err != nil || m.Name() != "jaccard" {
		t.Errorf("ByName(jaccard) = %v, %v", m, err)
	}
	if _, err := ByName("cosine"); err == nil {
		t.Error("unknown metric should fail")
	}
	if got := len(All()); got != 2 {
		t.Errorf("All() = %d metrics, want 2", got)
	}
}

// randomDetailed draws a detailed state.
func randomDetailed(e *ctxmodel.Environment, r *rand.Rand) ctxmodel.State {
	s := make(ctxmodel.State, e.NumParams())
	for i := range s {
		dv := e.Param(i).Hierarchy().DetailedValues()
		s[i] = dv[r.Intn(len(dv))]
	}
	return s
}

// generalize lifts each component up zero or more levels.
func generalize(e *ctxmodel.Environment, s ctxmodel.State, r *rand.Rand) ctxmodel.State {
	out := s.Clone()
	for i := range out {
		h := e.Param(i).Hierarchy()
		lv, _ := h.LevelOf(out[i])
		a, err := h.Anc(out[i], lv+r.Intn(h.NumLevels()-lv))
		if err != nil {
			panic(err)
		}
		out[i] = a
	}
	return out
}

// Property 1 of the paper: along an ancestor chain v1 ≤ v2 ≤ v3, the
// Jaccard distance to the bottom value grows: distJ(v3, v1) ≥ distJ(v2, v1).
func TestQuickJaccardMonotoneAlongChain(t *testing.T) {
	e := env(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		i := r.Intn(e.NumParams())
		h := e.Param(i).Hierarchy()
		dv := h.DetailedValues()
		v1 := dv[r.Intn(len(dv))]
		l2 := r.Intn(h.NumLevels())
		l3 := l2 + r.Intn(h.NumLevels()-l2)
		v2, err := h.Anc(v1, l2)
		if err != nil {
			return false
		}
		v3, err := h.Anc(v1, l3)
		if err != nil {
			return false
		}
		d21, err := JaccardValue(e, i, v2, v1)
		if err != nil {
			return false
		}
		d31, err := JaccardValue(e, i, v3, v1)
		if err != nil {
			return false
		}
		return d31 >= d21-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Properties 2 and 3 of the paper: for s3 covers s2 covers s1 with
// s2 ≠ s3, both distances order s2 strictly closer to s1 than s3
// (hierarchy) and at least as close (Jaccard; strictness holds in the
// paper's statement, ≥ is what the proof establishes per parameter —
// we check the strict form for the hierarchy metric and weak form plus
// covers-consistency for Jaccard).
func TestQuickDistanceConsistentWithCovers(t *testing.T) {
	e := env(t)
	hm, jm := Hierarchy{}, Jaccard{}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s1 := randomDetailed(e, r)
		s2 := generalize(e, s1, r)
		s3 := generalize(e, s2, r)
		if s2.Equal(s3) {
			return true // premise s2 ≠ s3 not met
		}
		h21, err := hm.StateDistance(e, s2, s1)
		if err != nil {
			return false
		}
		h31, err := hm.StateDistance(e, s3, s1)
		if err != nil {
			return false
		}
		if !(h31 > h21) {
			return false
		}
		j21, err := jm.StateDistance(e, s2, s1)
		if err != nil {
			return false
		}
		j31, err := jm.StateDistance(e, s3, s1)
		if err != nil {
			return false
		}
		return j31 >= j21-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: both metrics are non-negative and zero on identical states.
func TestQuickMetricAxioms(t *testing.T) {
	e := env(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := generalize(e, randomDetailed(e, r), r)
		for _, m := range All() {
			d, err := m.StateDistance(e, s, s)
			if err != nil || d != 0 {
				return false
			}
			s2 := generalize(e, randomDetailed(e, r), r)
			d, err = m.StateDistance(e, s, s2)
			if err != nil || d < 0 {
				return false
			}
			back, err := m.StateDistance(e, s2, s)
			if err != nil || math.Abs(back-d) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
