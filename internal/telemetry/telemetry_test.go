package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Registration is idempotent: same name, same handle.
	if again := r.Counter("test_total", "a counter"); again != c {
		t.Error("re-registration returned a different counter")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-2.5)
	if got := g.Value(); got != 7.5 {
		t.Errorf("gauge = %v, want 7.5", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "a histogram", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 56.05 {
		t.Errorf("sum = %v, want 56.05", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_seconds_bucket{le="0.1"} 1`,
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="10"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		`test_seconds_sum 56.05`,
		`test_seconds_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestObserveSince(t *testing.T) {
	h := NewRegistry().Histogram("t_seconds", "", DefBuckets)
	h.ObserveSince(time.Now().Add(-50 * time.Millisecond))
	if h.Count() != 1 || h.Sum() < 0.05 || h.Sum() > 5 {
		t.Errorf("ObserveSince: count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestVectors(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "requests", "endpoint", "code")
	v.With("/query", "200").Add(3)
	v.With("/query", "400").Inc()
	v.With("/resolve", "200").Inc()
	// Same labels → same child.
	if v.With("/query", "200").Value() != 3 {
		t.Error("vec child not shared")
	}
	// Arity mismatch is a safe no-op handle.
	v.With("/query").Inc()

	hv := r.HistogramVec("req_seconds", "latency", []float64{0.1, 1}, "endpoint")
	hv.With("/query").Observe(0.05)
	hv.With("/query").Observe(0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`req_total{endpoint="/query",code="200"} 3`,
		`req_total{endpoint="/query",code="400"} 1`,
		`req_total{endpoint="/resolve",code="200"} 1`,
		`req_seconds_bucket{endpoint="/query",le="0.1"} 1`,
		`req_seconds_bucket{endpoint="/query",le="+Inf"} 2`,
		`req_seconds_count{endpoint="/query"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestPrometheusFormat checks the output is line-parseable: every
// non-comment line is "name{labels} value" with a numeric value, and
// every family has a TYPE line before its samples.
func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "counts a").Inc()
	r.Gauge("b_current", "level of b").Set(2.5)
	r.Histogram("c_seconds", "timing of c", DefBuckets).Observe(0.3)
	r.GaugeFunc("d_info", "computed", func() float64 { return 42 })
	r.CounterVec("e_total", "labeled", "x").With(`we"ird\`).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			typed[strings.Fields(rest)[0]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// name{...} value — split at the last space.
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable line %q", line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Errorf("non-numeric value in %q", line)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !typed[name] && !typed[family] {
			t.Errorf("sample %q has no preceding TYPE line", line)
		}
	}
	for _, want := range []string{"a_total", "b_current", "c_seconds", "d_info", "e_total"} {
		if !typed[want] {
			t.Errorf("family %s missing a TYPE line", want)
		}
	}
}

func TestHandlers(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "h").Add(7)
	r.Histogram("h_seconds", "t", []float64{1}).Observe(0.5)

	rec := httptest.NewRecorder()
	r.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content-type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "h_total 7\n") {
		t.Errorf("metrics body:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	r.VarzHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/varz", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("varz content-type = %q", ct)
	}
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("varz not JSON: %v\n%s", err, rec.Body.String())
	}
	if m["h_total"] != float64(7) {
		t.Errorf("varz h_total = %v", m["h_total"])
	}
	hist, ok := m["h_seconds"].(map[string]any)
	if !ok || hist["count"] != float64(1) {
		t.Errorf("varz h_seconds = %v", m["h_seconds"])
	}
}

// TestNilSafety: a nil registry hands out nil metric handles and every
// operation on them — including exposition — is a safe no-op. This is
// the "telemetry disabled" embeddable mode.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	g := r.Gauge("x", "")
	g.Set(1)
	g.Inc()
	g.Dec()
	g.Add(2)
	_ = g.Value()
	h := r.Histogram("x_seconds", "", DefBuckets)
	h.Observe(1)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram recorded")
	}
	r.GaugeFunc("x_func", "", func() float64 { return 1 })
	cv := r.CounterVec("x_vec_total", "", "l")
	cv.With("v").Inc()
	hv := r.HistogramVec("x_vec_seconds", "", DefBuckets, "l")
	hv.With("v").Observe(1)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil registry wrote %q (err %v)", b.String(), err)
	}
	if snap := r.Snapshot(); len(snap) != 0 {
		t.Errorf("nil registry snapshot = %v", snap)
	}
	rec := httptest.NewRecorder()
	r.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	rec = httptest.NewRecorder()
	r.VarzHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/varz", nil))
	if strings.TrimSpace(rec.Body.String()) != "{}" {
		t.Errorf("nil varz = %q", rec.Body.String())
	}
}

func TestRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("invalid name", func() { r.Counter("bad name!", "") })
	r.Counter("dup", "")
	mustPanic("kind mismatch", func() { r.Gauge("dup", "") })
	mustPanic("bad buckets", func() { r.Histogram("hb", "", []float64{1, 1}) })
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	g := r.Gauge("conc_gauge", "")
	h := r.Histogram("conc_seconds", "", DefBuckets)
	v := r.CounterVec("conc_vec_total", "", "w")
	var wg sync.WaitGroup
	const workers, iters = 8, 1000
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%10) / 100)
				v.With(strconv.Itoa(w % 2)).Inc()
			}
		}()
	}
	// Scrape concurrently with the writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			r.WritePrometheus(&b)
			r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != workers*iters {
		t.Errorf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if g.Value() != workers*iters {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*iters)
	}
	if h.Count() != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	sum := v.With("0").Value() + v.With("1").Value()
	if sum != workers*iters {
		t.Errorf("vec sum = %d, want %d", sum, workers*iters)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}
