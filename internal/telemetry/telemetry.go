// Package telemetry is a dependency-free metrics substrate for the
// context-aware preference database: a registry of counters, gauges,
// and fixed-bucket histograms, exposed in the Prometheus text format
// (GET /metrics) and as JSON (GET /varz).
//
// The paper's own evaluation (Section 5) is built around cost metrics —
// cells visited per resolution, tree size per parameter ordering — and
// this package is how the running service reports the same quantities
// continuously instead of only in offline experiments.
//
// # Nil safety
//
// Every constructor and every metric method is a no-op on a nil
// receiver: a nil *Registry returns nil metric handles, and Inc, Add,
// Set, and Observe on nil handles do nothing. Instrumented packages can
// therefore hold plain metric fields and update them unconditionally;
// when telemetry is disabled the whole hot-path cost is one nil check
// per update, keeping the library embeddable without build tags or
// interface indirection.
//
// # Concurrency
//
// All metric updates are lock-free atomics and safe for concurrent use.
// Registration takes a registry-wide mutex and is idempotent: asking
// for an already-registered name of the same kind returns the existing
// metric, so several subsystems (e.g. per-user systems in a Directory)
// can share one counter by name. Re-registering a name as a different
// kind panics — that is a programming error, not a runtime condition.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// metric is one registered family: a scalar metric or a labeled vector.
type metric interface {
	// meta returns the family name, help text, and Prometheus type
	// ("counter", "gauge", "histogram").
	meta() (name, help, typ string)
	// writeProm appends the family's sample lines (without HELP/TYPE).
	writeProm(b *strings.Builder)
	// varz returns the family's JSON value for /varz.
	varz() any
}

// Registry holds named metrics. The zero value is not usable; construct
// with NewRegistry. A nil *Registry is a valid "telemetry disabled"
// registry: every constructor returns a nil handle.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// register returns the existing metric under name or installs the one
// built by mk. It panics on an invalid name or a kind mismatch.
func register[M metric](r *Registry, name string, mk func() M) M {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.metrics[name]; ok {
		m, ok := existing.(M)
		if !ok {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as a different kind", name))
		}
		return m
	}
	m := mk()
	r.metrics[name] = m
	return m
}

// validName reports whether name matches the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// Counter returns the registered monotonically increasing counter,
// creating it if absent. Nil registry → nil handle.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return register(r, name, func() *Counter { return &Counter{name: name, help: help} })
}

// CounterVec returns the registered counter family with the given label
// names, creating it if absent. Nil registry → nil handle.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return register(r, name, func() *CounterVec {
		return &CounterVec{name: name, help: help, labels: labels, kids: map[string]*Counter{}}
	})
}

// Gauge returns the registered gauge, creating it if absent. Nil
// registry → nil handle.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return register(r, name, func() *Gauge { return &Gauge{name: name, help: help} })
}

// GaugeVec returns the registered gauge family with the given label
// names, creating it if absent. Nil registry → nil handle.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return register(r, name, func() *GaugeVec {
		return &GaugeVec{name: name, help: help, labels: labels, kids: map[string]*Gauge{}}
	})
}

// GaugeFunc registers a gauge whose value is computed by f at scrape
// time (e.g. goroutine counts, directory sizes). Re-registering a name
// keeps the first function. Nil registry or nil f → no-op.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	if r == nil || f == nil {
		return
	}
	register(r, name, func() *gaugeFunc { return &gaugeFunc{name: name, help: help, f: f} })
}

// Histogram returns the registered fixed-bucket histogram, creating it
// if absent; buckets are upper bounds in increasing order (an implicit
// +Inf bucket is appended). Nil registry → nil handle.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return register(r, name, func() *Histogram { return newHistogram(name, help, buckets) })
}

// HistogramVec returns the registered histogram family with the given
// label names, creating it if absent. Nil registry → nil handle.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return register(r, name, func() *HistogramVec {
		return &HistogramVec{
			name: name, help: help, labels: labels,
			buckets: checkBuckets(buckets), kids: map[string]*Histogram{},
		}
	})
}

// sorted returns the registered metrics ordered by name.
func (r *Registry) sorted() []metric {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]metric, 0, len(names))
	for _, n := range names {
		out = append(out, r.metrics[n])
	}
	return out
}

// Counter is a monotonically increasing counter. All methods are no-ops
// on a nil receiver.
type Counter struct {
	n           atomic.Uint64
	name, help  string
	labelValues []string // non-nil only for vec children
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.n.Add(1)
	}
}

// Add adds n (which must be non-negative for the counter to remain
// monotonic; negative deltas are ignored).
func (c *Counter) Add(n int) {
	if c != nil && n > 0 {
		c.n.Add(uint64(n))
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

func (c *Counter) meta() (string, string, string) { return c.name, c.help, "counter" }

func (c *Counter) writeProm(b *strings.Builder) {
	fmt.Fprintf(b, "%s %d\n", c.name, c.n.Load())
}

func (c *Counter) varz() any { return c.n.Load() }

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct {
	name, help string
	labels     []string
	mu         sync.RWMutex
	kids       map[string]*Counter
}

// With returns the child counter for the given label values (one per
// label name, in declaration order), creating it on first use. A nil
// receiver or a label-arity mismatch returns nil, which is itself a
// safe no-op handle.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil || len(values) != len(v.labels) {
		return nil
	}
	key := strings.Join(values, "\x1f")
	v.mu.RLock()
	c, ok := v.kids[key]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.kids[key]; ok {
		return c
	}
	c = &Counter{name: v.name, help: v.help, labelValues: append([]string(nil), values...)}
	v.kids[key] = c
	return c
}

func (v *CounterVec) meta() (string, string, string) { return v.name, v.help, "counter" }

func (v *CounterVec) writeProm(b *strings.Builder) {
	for _, c := range v.children() {
		fmt.Fprintf(b, "%s%s %d\n", v.name, labelString(v.labels, c.labelValues), c.n.Load())
	}
}

func (v *CounterVec) varz() any {
	out := make(map[string]uint64)
	for _, c := range v.children() {
		out[labelString(v.labels, c.labelValues)] = c.n.Load()
	}
	return out
}

// children returns the child counters sorted by label key.
func (v *CounterVec) children() []*Counter {
	v.mu.RLock()
	defer v.mu.RUnlock()
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Counter, 0, len(keys))
	for _, k := range keys {
		out = append(out, v.kids[k])
	}
	return out
}

// Gauge is a value that can go up and down. All methods are no-ops on a
// nil receiver.
type Gauge struct {
	bits        atomic.Uint64 // float64 bits
	name, help  string
	labelValues []string // non-nil only for vec children
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) meta() (string, string, string) { return g.name, g.help, "gauge" }

func (g *Gauge) writeProm(b *strings.Builder) {
	fmt.Fprintf(b, "%s %s\n", g.name, formatFloat(g.Value()))
}

func (g *Gauge) varz() any { return g.Value() }

// GaugeVec is a family of gauges distinguished by label values. The
// canonical use is an info-style metric (cp_build_info) whose value is
// constant 1 and whose labels carry the payload.
type GaugeVec struct {
	name, help string
	labels     []string
	mu         sync.RWMutex
	kids       map[string]*Gauge
}

// With returns the child gauge for the given label values (one per
// label name, in declaration order), creating it on first use. A nil
// receiver or a label-arity mismatch returns nil, which is itself a
// safe no-op handle.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil || len(values) != len(v.labels) {
		return nil
	}
	key := strings.Join(values, "\x1f")
	v.mu.RLock()
	g, ok := v.kids[key]
	v.mu.RUnlock()
	if ok {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok := v.kids[key]; ok {
		return g
	}
	g = &Gauge{name: v.name, help: v.help, labelValues: append([]string(nil), values...)}
	v.kids[key] = g
	return g
}

func (v *GaugeVec) meta() (string, string, string) { return v.name, v.help, "gauge" }

func (v *GaugeVec) writeProm(b *strings.Builder) {
	for _, g := range v.children() {
		fmt.Fprintf(b, "%s%s %s\n", v.name, labelString(v.labels, g.labelValues), formatFloat(g.Value()))
	}
}

func (v *GaugeVec) varz() any {
	out := make(map[string]float64)
	for _, g := range v.children() {
		out[labelString(v.labels, g.labelValues)] = g.Value()
	}
	return out
}

// children returns the child gauges sorted by label key.
func (v *GaugeVec) children() []*Gauge {
	v.mu.RLock()
	defer v.mu.RUnlock()
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Gauge, 0, len(keys))
	for _, k := range keys {
		out = append(out, v.kids[k])
	}
	return out
}

// gaugeFunc is a gauge computed at scrape time.
type gaugeFunc struct {
	name, help string
	f          func() float64
}

func (g *gaugeFunc) meta() (string, string, string) { return g.name, g.help, "gauge" }

func (g *gaugeFunc) writeProm(b *strings.Builder) {
	fmt.Fprintf(b, "%s %s\n", g.name, formatFloat(g.f()))
}

func (g *gaugeFunc) varz() any { return g.f() }

// Histogram is a fixed-bucket histogram of float64 observations
// (typically latencies in seconds, following the Prometheus
// convention). All methods are no-ops on a nil receiver.
type Histogram struct {
	name, help  string
	labelValues []string
	buckets     []float64 // upper bounds, increasing; +Inf is implicit
	counts      []atomic.Uint64
	sum         atomic.Uint64 // float64 bits
	count       atomic.Uint64
}

// checkBuckets validates bucket upper bounds: increasing, no NaN, and a
// trailing +Inf is stripped (it is implicit).
func checkBuckets(buckets []float64) []float64 {
	out := append([]float64(nil), buckets...)
	if n := len(out); n > 0 && math.IsInf(out[n-1], +1) {
		out = out[:n-1]
	}
	for i, b := range out {
		if math.IsNaN(b) || (i > 0 && out[i-1] >= b) {
			panic(fmt.Sprintf("telemetry: histogram buckets %v not strictly increasing", buckets))
		}
	}
	return out
}

func newHistogram(name, help string, buckets []float64) *Histogram {
	bs := checkBuckets(buckets)
	return &Histogram{name: name, help: help, buckets: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one observation.
//
//cpvet:hotpath allocs=0 the instrument sits inside every resolve; a single heap byte here is multiplied by the request rate
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.buckets, v) // first bucket with bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, upd) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start; it is the
// idiomatic way to time a code path:
//
//	defer h.ObserveSince(time.Now())
func (h *Histogram) ObserveSince(start time.Time) {
	if h != nil {
		h.Observe(time.Since(start).Seconds())
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

func (h *Histogram) meta() (string, string, string) { return h.name, h.help, "histogram" }

func (h *Histogram) writeProm(b *strings.Builder) {
	h.writePromLabeled(b, nil, nil)
}

// writePromLabeled renders the histogram's sample lines with the given
// extra labels (used by HistogramVec children).
func (h *Histogram) writePromLabeled(b *strings.Builder, labels, values []string) {
	ls := make([]string, len(labels)+1)
	copy(ls, labels)
	ls[len(labels)] = "le"
	vs := make([]string, len(values)+1)
	copy(vs, values)
	cum := uint64(0)
	for i, bound := range h.buckets {
		cum += h.counts[i].Load()
		vs[len(values)] = formatFloat(bound)
		fmt.Fprintf(b, "%s_bucket%s %d\n", h.name, labelString(ls, vs), cum)
	}
	cum += h.counts[len(h.buckets)].Load()
	vs[len(values)] = "+Inf"
	fmt.Fprintf(b, "%s_bucket%s %d\n", h.name, labelString(ls, vs), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", h.name, labelString(labels, values), formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", h.name, labelString(labels, values), h.count.Load())
}

// varzValue is the JSON rendering of one histogram.
func (h *Histogram) varzValue() map[string]any {
	buckets := make(map[string]uint64, len(h.buckets)+1)
	cum := uint64(0)
	for i, bound := range h.buckets {
		cum += h.counts[i].Load()
		buckets[formatFloat(bound)] = cum
	}
	cum += h.counts[len(h.buckets)].Load()
	buckets["+Inf"] = cum
	return map[string]any{"count": h.count.Load(), "sum": h.Sum(), "buckets": buckets}
}

func (h *Histogram) varz() any { return h.varzValue() }

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct {
	name, help string
	labels     []string
	buckets    []float64
	mu         sync.RWMutex
	kids       map[string]*Histogram
}

// With returns the child histogram for the given label values, creating
// it on first use; nil receiver or arity mismatch returns a nil no-op
// handle.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil || len(values) != len(v.labels) {
		return nil
	}
	key := strings.Join(values, "\x1f")
	v.mu.RLock()
	h, ok := v.kids[key]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.kids[key]; ok {
		return h
	}
	h = newHistogram(v.name, v.help, v.buckets)
	h.labelValues = append([]string(nil), values...)
	v.kids[key] = h
	return h
}

func (v *HistogramVec) meta() (string, string, string) { return v.name, v.help, "histogram" }

func (v *HistogramVec) writeProm(b *strings.Builder) {
	for _, h := range v.children() {
		h.writePromLabeled(b, v.labels, h.labelValues)
	}
}

func (v *HistogramVec) varz() any {
	out := make(map[string]any)
	for _, h := range v.children() {
		out[labelString(v.labels, h.labelValues)] = h.varzValue()
	}
	return out
}

func (v *HistogramVec) children() []*Histogram {
	v.mu.RLock()
	defer v.mu.RUnlock()
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Histogram, 0, len(keys))
	for _, k := range keys {
		out = append(out, v.kids[k])
	}
	return out
}

// DefBuckets are the standard request-latency buckets in seconds
// (Prometheus' defaults).
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// IOBuckets resolve sub-millisecond storage operations (fsyncs, tree
// searches) that DefBuckets would lump into the first bucket.
var IOBuckets = []float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, 1}

// ExpBuckets returns count buckets starting at start and growing by
// factor, for size- and cost-shaped distributions (bytes, cells).
func ExpBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// labelString renders {k1="v1",k2="v2"}, or "" with no labels.
func labelString(labels, values []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}
