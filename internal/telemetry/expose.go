package telemetry

// Exposition: the Prometheus text format for GET /metrics and a JSON
// rendering for GET /varz. Both render from the same registry snapshot,
// so a scrape and a varz poll always agree on metric names.

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4), families sorted by name, each
// preceded by its HELP and TYPE lines. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, m := range r.sorted() {
		name, help, typ := m.meta()
		if help != "" {
			b.WriteString("# HELP ")
			b.WriteString(name)
			b.WriteByte(' ')
			b.WriteString(escapeHelp(help))
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(typ)
		b.WriteByte('\n')
		m.writeProm(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot returns a point-in-time JSON-marshalable view of every
// registered metric: counters and gauges as numbers, vectors as
// {labels: value} maps, histograms as {count, sum, buckets}. A nil
// registry returns an empty map.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, m := range r.sorted() {
		name, _, _ := m.meta()
		out[name] = m.varz()
	}
	return out
}

// MetricsHandler serves the registry in the Prometheus text format.
// Safe on a nil registry (serves an empty body).
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// VarzHandler serves the registry snapshot as indented JSON. Safe on a
// nil registry (serves "{}").
func (r *Registry) VarzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

// escapeHelp escapes a help string per the text format (backslash and
// newline).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}
