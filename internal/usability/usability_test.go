package usability

import (
	"testing"

	"contextpref/internal/dataset"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumUsers = 4
	cfg.NumPOIs = 150
	cfg.QueriesPerCase = 4
	return cfg
}

func TestRunShapes(t *testing.T) {
	res, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Users) != 4 {
		t.Fatalf("users = %d", len(res.Users))
	}
	for _, u := range res.Users {
		if u.Updates <= 0 {
			t.Errorf("user %d: updates = %d", u.User, u.Updates)
		}
		if u.Minutes < int(res.Config.OverheadMinutes) {
			t.Errorf("user %d: minutes = %d below overhead", u.User, u.Minutes)
		}
		for name, pct := range map[string]float64{
			"exact": u.ExactPct, "one": u.OneCoverPct,
			"multiH": u.MultiHierarchyPct, "multiJ": u.MultiJaccardPct,
		} {
			if pct < 0 || pct > 100 {
				t.Errorf("user %d: %s = %v out of range", u.User, name, pct)
			}
		}
		if u.Demographic.Key() == "" {
			t.Errorf("user %d: empty demographic", u.User)
		}
	}
	// Paper shape: on average precision is high and exact-match
	// precision is at least in the ballpark of the cover cases.
	avg := res.Averages()
	if avg.ExactPct < 60 {
		t.Errorf("average exact precision %v suspiciously low", avg.ExactPct)
	}
	if avg.MultiJaccardPct+10 < avg.MultiHierarchyPct {
		t.Errorf("Jaccard (%v) should not trail Hierarchy (%v) by a wide margin",
			avg.MultiJaccardPct, avg.MultiHierarchyPct)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := smallConfig()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Users {
		if a.Users[i] != b.Users[i] {
			t.Fatalf("user %d differs across runs: %+v vs %+v", i, a.Users[i], b.Users[i])
		}
	}
	// Different seed should differ somewhere.
	cfg.Seed++
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Users {
		if a.Users[i] != c.Users[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical studies")
	}
}

func TestRunValidation(t *testing.T) {
	bad := smallConfig()
	bad.NumUsers = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero users should fail")
	}
	bad = smallConfig()
	bad.TopK = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero TopK should fail")
	}
}

func TestAveragesEmpty(t *testing.T) {
	sr := &StudyResult{}
	if got := sr.Averages(); got.Updates != 0 || got.ExactPct != 0 {
		t.Errorf("Averages on empty = %+v", got)
	}
}

func TestPrefKeyDistinguishes(t *testing.T) {
	env, err := dataset.RealEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	defaults, err := dataset.DefaultProfile(env, dataset.Demographic{Age: "under30", Sex: "male", Taste: "mainstream"})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range defaults {
		k, err := prefKey(env, p)
		if err != nil {
			t.Fatal(err)
		}
		if seen[k] {
			t.Fatalf("duplicate pref key %q", k)
		}
		seen[k] = true
	}
}

func TestExtraRulePoolValid(t *testing.T) {
	env, err := dataset.RealEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	pool := extraRulePool(env)
	if len(pool) < 10 {
		t.Fatalf("pool = %d rules", len(pool))
	}
	for i, p := range pool {
		if _, err := p.Descriptor.Context(env); err != nil {
			t.Errorf("rule %d invalid: %v", i, err)
		}
		if p.Score < 0 || p.Score > 1 {
			t.Errorf("rule %d score %v", i, p.Score)
		}
	}
}
