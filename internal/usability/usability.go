// Package usability simulates the paper's Table 1 user study
// (Section 5.1). The original study put 10 first-time users in front of
// the system: each was assigned one of 12 default profiles by
// demographic, modified it toward their actual tastes, and then ranked
// contextual query results by hand; the paper reports the number of
// modifications, the time spent, and the precision of the system's
// top-20 against the user's own ranking for exact-match, single-cover
// and multi-cover resolutions (the latter under both distances).
//
// We substitute simulated users: each user has a hidden ground-truth
// profile (a perturbation of their demographic's default), performs a
// meticulousness-dependent number of edits moving the default toward
// the truth, and "hand-ranks" results by scoring tuples with the truth
// profile plus small rating noise. This reproduces the study's
// shape: precision is high overall, exact ≥ covers, more edits → better
// results, and Jaccard ≥ Hierarchy on multi-cover ties (the paper
// attributes Hierarchy's deficit to its many ties).
package usability

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"contextpref/internal/ctxmodel"
	"contextpref/internal/dataset"
	"contextpref/internal/distance"
	"contextpref/internal/preference"
	"contextpref/internal/profiletree"
	"contextpref/internal/query"
	"contextpref/internal/relation"
)

// Config parameterizes the simulated study.
type Config struct {
	// NumUsers is the number of simulated users (paper: 10).
	NumUsers int
	// NumPOIs is the size of the generated POI database.
	NumPOIs int
	// QueriesPerCase is how many queries are evaluated per resolution
	// category (exact / one cover / multiple covers).
	QueriesPerCase int
	// TopK is the result-list cutoff (paper: best 20, ties included).
	TopK int
	// Seed drives all randomness.
	Seed int64
	// NoiseProb is the probability the simulated user mis-rates one
	// tuple while hand-ranking (the paper observed users deviating even
	// from their own stated preferences).
	NoiseProb float64
	// NoiseMag is the magnitude of a mis-rating.
	NoiseMag float64
	// MinutesPerEdit converts modification counts to profile-editing
	// time; OverheadMinutes models first-time system familiarization.
	MinutesPerEdit float64
	// OverheadMinutes is the fixed familiarization time.
	OverheadMinutes float64
}

// DefaultConfig mirrors the paper's setup.
func DefaultConfig() Config {
	return Config{
		NumUsers:        10,
		NumPOIs:         500,
		QueriesPerCase:  20,
		TopK:            20,
		Seed:            2007,
		NoiseProb:       0.06,
		NoiseMag:        0.15,
		MinutesPerEdit:  1.0,
		OverheadMinutes: 8,
	}
}

// UserResult is one row of Table 1.
type UserResult struct {
	// User is the 1-based user number.
	User int
	// Demographic is the default profile the user started from.
	Demographic dataset.Demographic
	// Updates is the number of profile modifications performed.
	Updates int
	// Minutes is the modeled profile-specification time.
	Minutes int
	// ExactPct is the precision (%) for exact-match queries.
	ExactPct float64
	// OneCoverPct is the precision (%) when exactly one state covers.
	OneCoverPct float64
	// MultiHierarchyPct is the multi-cover precision (%) under the
	// hierarchy distance.
	MultiHierarchyPct float64
	// MultiJaccardPct is the multi-cover precision (%) under the
	// Jaccard distance.
	MultiJaccardPct float64
}

// StudyResult aggregates the simulated study.
type StudyResult struct {
	// Config echoes the configuration used.
	Config Config
	// Users holds one row per simulated user.
	Users []UserResult
}

// Averages returns the column means across users.
func (sr *StudyResult) Averages() UserResult {
	var avg UserResult
	n := float64(len(sr.Users))
	if n == 0 {
		return avg
	}
	for _, u := range sr.Users {
		avg.Updates += u.Updates
		avg.Minutes += u.Minutes
		avg.ExactPct += u.ExactPct
		avg.OneCoverPct += u.OneCoverPct
		avg.MultiHierarchyPct += u.MultiHierarchyPct
		avg.MultiJaccardPct += u.MultiJaccardPct
	}
	avg.Updates = int(math.Round(float64(avg.Updates) / n))
	avg.Minutes = int(math.Round(float64(avg.Minutes) / n))
	avg.ExactPct /= n
	avg.OneCoverPct /= n
	avg.MultiHierarchyPct /= n
	avg.MultiJaccardPct /= n
	return avg
}

// prefKey identifies a preference by its descriptor's context states
// and its clause, the granularity at which edits apply.
func prefKey(env *ctxmodel.Environment, p preference.Preference) (string, error) {
	states, err := p.Descriptor.Context(env)
	if err != nil {
		return "", err
	}
	keys := make([]string, len(states))
	for i, s := range states {
		keys[i] = s.Key()
	}
	sort.Strings(keys)
	key := p.Clause.Key()
	for _, k := range keys {
		key += "|" + k
	}
	return key, nil
}

// extraRulePool holds contextual preferences the ground-truth profiles
// may add beyond the defaults — including location-dependent tastes the
// defaults lack.
func extraRulePool(env *ctxmodel.Environment) []preference.Preference {
	mk := func(score float64, typ string, pds ...ctxmodel.ParamDescriptor) preference.Preference {
		return preference.MustNew(
			ctxmodel.MustDescriptor(pds...),
			preference.Clause{Attr: "type", Op: relation.OpEq, Val: relation.S(typ)},
			score)
	}
	return []preference.Preference{
		mk(0.85, "restaurant", ctxmodel.Eq("location", "Athens")),
		mk(0.80, "gallery", ctxmodel.Eq("location", "Thessaloniki")),
		mk(0.75, "monument", ctxmodel.Eq("location", "Athens"), ctxmodel.Eq("time", "morning")),
		mk(0.70, "park", ctxmodel.Eq("time", "afternoon")),
		mk(0.65, "cafeteria", ctxmodel.Eq("time", "noon")),
		mk(0.90, "theater", ctxmodel.Eq("accompanying_people", "friends"), ctxmodel.Eq("time", "night")),
		mk(0.60, "archaeological_site", ctxmodel.Eq("location", "Thessaloniki"), ctxmodel.Eq("accompanying_people", "family")),
		mk(0.65, "zoo", ctxmodel.Eq("time", "morning"), ctxmodel.Eq("accompanying_people", "family")),
		mk(0.85, "brewery", ctxmodel.Eq("location", "Thessaloniki"), ctxmodel.Eq("accompanying_people", "friends")),
		mk(0.60, "museum", ctxmodel.Eq("time", "noon")),
		mk(0.80, "restaurant", ctxmodel.Eq("accompanying_people", "colleagues"), ctxmodel.Eq("time", "noon")),
		mk(0.60, "monument", ctxmodel.Eq("time", "night")),
	}
}

// user bundles one simulated user's state.
type user struct {
	demographic   dataset.Demographic
	truth         []preference.Preference // hidden ground truth
	edited        []preference.Preference // default profile after edits
	meticulous    float64
	updates       int
	truthTree     *profiletree.Tree
	editedTree    *profiletree.Tree
	truthEngine   *query.Engine
	editedEngines map[string]*query.Engine // by metric name
}

// simulateUser derives the truth profile, applies edits, and builds the
// trees and engines.
func simulateUser(env *ctxmodel.Environment, rel *relation.Relation, defaults []preference.Preference, d dataset.Demographic, r *rand.Rand) (*user, error) {
	u := &user{demographic: d, meticulous: 0.7 + 0.3*r.Float64()}

	// Ground truth: perturb default scores, drop a few, add extras.
	pool := extraRulePool(env)
	deleted := map[int]bool{}
	for n := r.Intn(3); n > 0; n-- {
		deleted[r.Intn(len(defaults))] = true
	}
	var truth []preference.Preference
	for i, p := range defaults {
		if deleted[i] {
			continue
		}
		q := p
		// Context-free base preferences are the demographic's general
		// tastes, which users state accurately; what they get wrong —
		// and later fix — is the context-dependent part.
		contextual := len(p.Descriptor.ParamDescriptors()) > 0
		if contextual && r.Float64() < 0.6 {
			delta := (0.04 + 0.12*r.Float64())
			if r.Intn(2) == 0 {
				delta = -delta
			}
			s := q.Score + delta
			if s < 0.05 {
				s = 0.05
			}
			if s > 0.95 {
				s = 0.95
			}
			q.Score = math.Round(s*100) / 100
		}
		truth = append(truth, q)
	}
	// Extras join the truth only if they do not conflict (Def. 6) with
	// the perturbed defaults — e.g. an extra duplicating a default
	// rule's context state and clause at a different score.
	scratch, err := buildTree(env, truth)
	if err != nil {
		return nil, err
	}
	perm := r.Perm(len(pool))
	for _, pi := range perm[:2+r.Intn(4)] {
		if err := scratch.Insert(pool[pi]); err != nil {
			var ce *preference.ConflictError
			if errors.As(err, &ce) {
				continue
			}
			return nil, err
		}
		truth = append(truth, pool[pi])
	}
	u.truth = truth

	// Diffs between the default and the truth.
	defKeys := make(map[string]int)
	for i, p := range defaults {
		k, err := prefKey(env, p)
		if err != nil {
			return nil, err
		}
		defKeys[k] = i
	}
	type edit struct {
		kind string // "update", "insert", "delete"
		idx  int    // index into defaults (update/delete) or truth (insert)
	}
	var edits []edit
	truthKeys := make(map[string]bool)
	for ti, p := range truth {
		k, err := prefKey(env, p)
		if err != nil {
			return nil, err
		}
		truthKeys[k] = true
		if di, ok := defKeys[k]; ok {
			if defaults[di].Score != p.Score {
				edits = append(edits, edit{"update", ti})
			}
		} else {
			edits = append(edits, edit{"insert", ti})
		}
	}
	for k, di := range defKeys {
		if !truthKeys[k] {
			edits = append(edits, edit{"delete", di})
		}
	}
	r.Shuffle(len(edits), func(i, j int) { edits[i], edits[j] = edits[j], edits[i] })
	// Users fix structural mismatches (missing preferences, stale
	// preferences) before fine-tuning scores: a forgotten or stale
	// preference distorts every query its context covers, while an
	// off-by-a-bit score only reorders neighbours. The random order is
	// kept within each kind.
	rank := map[string]int{"insert": 0, "delete": 1, "update": 2}
	sort.SliceStable(edits, func(i, j int) bool {
		return rank[edits[i].kind] < rank[edits[j].kind]
	})
	m := int(math.Round(u.meticulous * float64(len(edits))))
	if m > len(edits) {
		m = len(edits)
	}
	u.updates = m

	// Apply the first m edits to a copy of the default profile.
	edited := append([]preference.Preference(nil), defaults...)
	removed := map[int]bool{}
	for _, e := range edits[:m] {
		switch e.kind {
		case "update":
			k, err := prefKey(env, truth[e.idx])
			if err != nil {
				return nil, err
			}
			edited[defKeys[k]].Score = truth[e.idx].Score
		case "insert":
			edited = append(edited, truth[e.idx])
		case "delete":
			removed[e.idx] = true
		}
	}
	var final []preference.Preference
	for i, p := range edited {
		if i < len(defaults) && removed[i] {
			continue
		}
		final = append(final, p)
	}
	u.edited = final

	// Build trees and engines.
	if u.truthTree, err = buildTree(env, u.truth); err != nil {
		return nil, err
	}
	if u.editedTree, err = buildTree(env, u.edited); err != nil {
		return nil, err
	}
	if u.truthEngine, err = query.NewEngine(u.truthTree, rel, distance.Jaccard{}, relation.CombineMax); err != nil {
		return nil, err
	}
	u.editedEngines = make(map[string]*query.Engine, 2)
	for _, m := range distance.All() {
		en, err := query.NewEngine(u.editedTree, rel, m, relation.CombineMax)
		if err != nil {
			return nil, err
		}
		u.editedEngines[m.Name()] = en
	}
	return u, nil
}

func buildTree(env *ctxmodel.Environment, prefs []preference.Preference) (*profiletree.Tree, error) {
	tr, err := profiletree.New(env, nil)
	if err != nil {
		return nil, err
	}
	for _, p := range prefs {
		if err := tr.Insert(p); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// classify determines the resolution category of a query state against
// the user's edited tree: "exact", "one" (single cover) or "multi".
func (u *user) classify(s ctxmodel.State) (string, error) {
	entries, _, err := u.editedTree.SearchExact(s)
	if err != nil {
		return "", err
	}
	if len(entries) > 0 {
		return "exact", nil
	}
	cands, _, err := u.editedTree.SearchCover(s, distance.Hierarchy{})
	if err != nil {
		return "", err
	}
	switch len(cands) {
	case 0:
		return "none", nil
	case 1:
		return "one", nil
	}
	return "multi", nil
}

// handRank produces the user's own top-K list for a query state. A real
// user ranks every result by their whole applicable taste, not by the
// preferences of a single matched context state: for every clause, the
// effective score comes from the most specific truth-profile state
// covering the query (a cascade — the (all, ..., all) base preferences
// are its least specific layer), with rating noise on top. This model
// is metric-free, so neither system metric is privileged.
func (u *user) handRank(s ctxmodel.State, topK int, noiseProb, noiseMag float64, r *rand.Rand) (map[int]bool, error) {
	cands, _, err := u.truthTree.SearchCover(s, distance.Jaccard{})
	if err != nil {
		return nil, err
	}
	type eff struct {
		distance    float64
		specificity int
		score       float64
	}
	// Per clause, the user applies the preference of the most relevant
	// covering state — the most specific one, which Section 4.3
	// identifies with the smallest Jaccard distance (cardinality breaks
	// exact ties).
	byClause := make(map[string]eff)
	for _, c := range cands {
		for _, leaf := range c.Entries {
			k := leaf.Clause.Key()
			cur, ok := byClause[k]
			if !ok || c.Distance < cur.distance ||
				(c.Distance == cur.distance && c.Specificity < cur.specificity) {
				byClause[k] = eff{distance: c.Distance, specificity: c.Specificity, score: leaf.Score}
			}
		}
	}
	rel := u.truthEngine.Relation()
	byIndex := make(map[int]float64)
	for _, c := range cands {
		for _, leaf := range c.Entries {
			e := byClause[leaf.Clause.Key()]
			idxs, err := rel.Select(leaf.Clause.Predicate())
			if err != nil {
				return nil, err
			}
			for _, idx := range idxs {
				if e.score > byIndex[idx] {
					byIndex[idx] = e.score
				}
			}
		}
	}
	scored := make([]relation.ScoredTuple, 0, len(byIndex))
	for idx, score := range byIndex {
		scored = append(scored, relation.ScoredTuple{Index: idx, Score: score})
	}
	// Deterministic noise: fix the iteration order before drawing.
	sort.Slice(scored, func(i, j int) bool { return scored[i].Index < scored[j].Index })
	for i := range scored {
		if r.Float64() < noiseProb {
			delta := noiseMag * (r.Float64()*2 - 1)
			scored[i].Score += delta
		}
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].Score != scored[j].Score {
			return scored[i].Score > scored[j].Score
		}
		return scored[i].Index < scored[j].Index
	})
	cut := len(scored)
	if topK > 0 && cut > topK {
		cut = topK
		for cut < len(scored) && scored[cut].Score == scored[topK-1].Score {
			cut++
		}
	}
	out := make(map[int]bool, cut)
	for _, st := range scored[:cut] {
		out[st.Index] = true
	}
	return out, nil
}

// queryRand derives a per-query random source so the user's hand
// ranking of one query is identical no matter which system metric is
// being evaluated against it — the metric comparison is paired.
func queryRand(seed int64, userID int, s ctxmodel.State) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%s", seed, userID, s.Key())
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// precision evaluates the system's top-K under the metric against the
// user's hand ranking: the percentage of system results the user also
// listed.
func (u *user) precision(s ctxmodel.State, metricName string, cfg Config, userID int) (float64, bool, error) {
	sys, err := u.editedEngines[metricName].Execute(query.Contextual{TopK: cfg.TopK}, s)
	if err != nil {
		return 0, false, err
	}
	if !sys.Contextual || len(sys.Tuples) == 0 {
		return 0, false, nil
	}
	userSet, err := u.handRank(s, cfg.TopK, cfg.NoiseProb, cfg.NoiseMag, queryRand(cfg.Seed, userID, s))
	if err != nil {
		return 0, false, err
	}
	if len(userSet) == 0 {
		return 0, false, nil
	}
	hit := 0
	for _, st := range sys.Tuples {
		if userSet[st.Index] {
			hit++
		}
	}
	return 100 * float64(hit) / float64(len(sys.Tuples)), true, nil
}

// Run executes the simulated study.
func Run(cfg Config) (*StudyResult, error) {
	if cfg.NumUsers <= 0 || cfg.NumPOIs <= 0 || cfg.QueriesPerCase <= 0 || cfg.TopK <= 0 {
		return nil, fmt.Errorf("usability: non-positive config %+v", cfg)
	}
	env, err := dataset.RealEnvironment()
	if err != nil {
		return nil, err
	}
	rel, err := dataset.POIs(env, cfg.NumPOIs, cfg.Seed)
	if err != nil {
		return nil, err
	}
	defaults, err := dataset.DefaultProfiles(env)
	if err != nil {
		return nil, err
	}
	demographics := dataset.Demographics()
	r := rand.New(rand.NewSource(cfg.Seed))
	result := &StudyResult{Config: cfg}

	for ui := 1; ui <= cfg.NumUsers; ui++ {
		d := demographics[r.Intn(len(demographics))]
		u, err := simulateUser(env, rel, defaults[d.Key()], d, r)
		if err != nil {
			return nil, fmt.Errorf("usability: user %d: %w", ui, err)
		}
		row := UserResult{
			User:        ui,
			Demographic: d,
			Updates:     u.updates,
			Minutes: int(math.Round(cfg.OverheadMinutes +
				cfg.MinutesPerEdit*float64(u.updates)*(0.8+0.4*r.Float64()))),
		}

		// Collect queries per category.
		var exactQs, oneQs, multiQs []ctxmodel.State
		exactPool := u.editedTree.Paths()
		r.Shuffle(len(exactPool), func(i, j int) { exactPool[i], exactPool[j] = exactPool[j], exactPool[i] })
		for _, p := range exactPool {
			if len(exactQs) >= cfg.QueriesPerCase {
				break
			}
			exactQs = append(exactQs, p.State)
		}
		for attempts := 0; attempts < 4000 && (len(oneQs) < cfg.QueriesPerCase || len(multiQs) < cfg.QueriesPerCase); attempts++ {
			qs, err := dataset.RandomQueries(env, 1, cfg.Seed+int64(ui*100000+attempts), 0.3)
			if err != nil {
				return nil, err
			}
			cat, err := u.classify(qs[0])
			if err != nil {
				return nil, err
			}
			switch cat {
			case "one":
				if len(oneQs) < cfg.QueriesPerCase {
					oneQs = append(oneQs, qs[0])
				}
			case "multi":
				if len(multiQs) < cfg.QueriesPerCase {
					multiQs = append(multiQs, qs[0])
				}
			}
		}

		avg := func(qs []ctxmodel.State, metric string) (float64, error) {
			total, n := 0.0, 0
			for _, q := range qs {
				p, ok, err := u.precision(q, metric, cfg, ui)
				if err != nil {
					return 0, err
				}
				if ok {
					total += p
					n++
				}
			}
			if n == 0 {
				return 0, nil
			}
			return total / float64(n), nil
		}
		if row.ExactPct, err = avg(exactQs, "hierarchy"); err != nil {
			return nil, err
		}
		if row.OneCoverPct, err = avg(oneQs, "hierarchy"); err != nil {
			return nil, err
		}
		if row.MultiHierarchyPct, err = avg(multiQs, "hierarchy"); err != nil {
			return nil, err
		}
		if row.MultiJaccardPct, err = avg(multiQs, "jaccard"); err != nil {
			return nil, err
		}
		result.Users = append(result.Users, row)
	}
	return result, nil
}
