package ctxmodel

import "contextpref/internal/hierarchy"

// ReferenceEnvironment builds the paper's running example (Section 2,
// Fig. 2): context parameters location (Region ≺ City ≺ Country ≺ ALL),
// temperature (Conditions ≺ Characterization ≺ ALL) and
// accompanying_people (Relationship ≺ ALL). It is used throughout the
// tests, the examples and the usability study.
func ReferenceEnvironment() (*Environment, error) {
	loc, err := hierarchy.NewBuilder("location", "Region", "City", "Country").
		Add("Plaka", "Athens", "Greece").
		Add("Kifisia", "Athens", "Greece").
		Add("Acropolis_Area", "Athens", "Greece").
		Add("Perama", "Ioannina", "Greece").
		Add("Kastro", "Ioannina", "Greece").
		Add("Ladadika", "Thessaloniki", "Greece").
		Add("Ano_Poli", "Thessaloniki", "Greece").
		Build()
	if err != nil {
		return nil, err
	}
	temp, err := hierarchy.NewBuilder("temperature", "Conditions", "Characterization").
		Add("freezing", "bad").
		Add("cold", "bad").
		Add("mild", "good").
		Add("warm", "good").
		Add("hot", "good").
		Build()
	if err != nil {
		return nil, err
	}
	people, err := hierarchy.NewBuilder("accompanying_people", "Relationship").
		Add("friends").
		Add("family").
		Add("alone").
		Build()
	if err != nil {
		return nil, err
	}
	pl, err := NewParameter("location", loc)
	if err != nil {
		return nil, err
	}
	pt, err := NewParameter("temperature", temp)
	if err != nil {
		return nil, err
	}
	pp, err := NewParameter("accompanying_people", people)
	if err != nil {
		return nil, err
	}
	return NewEnvironment(pl, pt, pp)
}

// MustReferenceEnvironment is ReferenceEnvironment that panics on error.
func MustReferenceEnvironment() *Environment {
	e, err := ReferenceEnvironment()
	if err != nil {
		panic(err)
	}
	return e
}
