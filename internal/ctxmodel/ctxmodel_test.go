package ctxmodel

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"contextpref/internal/hierarchy"
)

func env(t *testing.T) *Environment {
	t.Helper()
	e, err := ReferenceEnvironment()
	if err != nil {
		t.Fatalf("ReferenceEnvironment: %v", err)
	}
	return e
}

func mustState(t *testing.T, e *Environment, vs ...string) State {
	t.Helper()
	s, err := e.NewState(vs...)
	if err != nil {
		t.Fatalf("NewState(%v): %v", vs, err)
	}
	return s
}

func TestEnvironmentBasics(t *testing.T) {
	e := env(t)
	if e.NumParams() != 3 {
		t.Fatalf("NumParams = %d, want 3", e.NumParams())
	}
	want := []string{"location", "temperature", "accompanying_people"}
	if got := e.Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names = %v, want %v", got, want)
	}
	for i, n := range want {
		p, ok := e.ParamByName(n)
		if !ok || p.Name() != n {
			t.Errorf("ParamByName(%q) missing", n)
		}
		if j, ok := e.ParamIndex(n); !ok || j != i {
			t.Errorf("ParamIndex(%q) = %d, want %d", n, j, i)
		}
		if e.Param(i).Name() != n {
			t.Errorf("Param(%d) = %q, want %q", i, e.Param(i).Name(), n)
		}
	}
	if _, ok := e.ParamByName("noise"); ok {
		t.Error("ParamByName(noise) should be absent")
	}
	// 7 regions × 5 conditions × 3 relationships.
	if got := e.WorldSize(); got != 7*5*3 {
		t.Errorf("WorldSize = %d, want %d", got, 7*5*3)
	}
	// edoms: location 7+3+1+1=12, temperature 5+2+1=8, people 3+1=4.
	if got := e.ExtendedWorldSize(); got != 12*8*4 {
		t.Errorf("ExtendedWorldSize = %d, want %d", got, 12*8*4)
	}
}

func TestEnvironmentErrors(t *testing.T) {
	if _, err := NewEnvironment(); err == nil {
		t.Error("empty environment should fail")
	}
	if _, err := NewEnvironment(nil); err == nil {
		t.Error("nil parameter should fail")
	}
	h, _ := hierarchy.Uniform("p", 3)
	p1, _ := NewParameter("p", h)
	p2, _ := NewParameter("p", h)
	if _, err := NewEnvironment(p1, p2); err == nil {
		t.Error("duplicate parameter names should fail")
	}
	if _, err := NewParameter("x", nil); err == nil {
		t.Error("nil hierarchy should fail")
	}
	// Default name from hierarchy.
	p, err := NewParameter("", h)
	if err != nil || p.Name() != "p" {
		t.Errorf("NewParameter default name = %q, %v; want p", p.Name(), err)
	}
	if p.Hierarchy() != h {
		t.Error("Hierarchy() did not round-trip")
	}
}

func TestStates(t *testing.T) {
	e := env(t)
	s := mustState(t, e, "Plaka", "warm", "friends")
	if s.String() != "(Plaka, warm, friends)" {
		t.Errorf("String = %q", s.String())
	}
	if !s.Equal(s.Clone()) {
		t.Error("clone not equal")
	}
	if s.Equal(mustState(t, e, "Plaka", "warm", "family")) {
		t.Error("different states compare equal")
	}
	if s.Equal(State{"Plaka"}) {
		t.Error("different arity compares equal")
	}
	// Extended state with mixed levels (paper: (Greece, good, all)).
	s2 := mustState(t, e, "Greece", "good", "all")
	levels, err := e.LevelsOf(s2)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{2, 1, 1}; !reflect.DeepEqual(levels, want) {
		t.Errorf("LevelsOf = %v, want %v", levels, want)
	}
	if e.IsDetailed(s2) {
		t.Error("(Greece, good, all) should not be detailed")
	}
	if !e.IsDetailed(s) {
		t.Error("(Plaka, warm, friends) should be detailed")
	}
	all := e.AllState()
	if all.String() != "(all, all, all)" {
		t.Errorf("AllState = %v", all)
	}
	if err := e.Validate(all); err != nil {
		t.Errorf("Validate(AllState) = %v", err)
	}
	// Errors.
	if _, err := e.NewState("Plaka", "warm"); err == nil {
		t.Error("short state should fail")
	}
	if _, err := e.NewState("Plaka", "warm", "enemies"); err == nil {
		t.Error("unknown value should fail")
	}
	if _, err := e.LevelsOf(State{"Plaka"}); err == nil {
		t.Error("LevelsOf with wrong arity should fail")
	}
	if _, err := e.LevelsOf(State{"Plaka", "warm", "enemies"}); err == nil {
		t.Error("LevelsOf with unknown value should fail")
	}
}

func TestStateKeyRoundTrip(t *testing.T) {
	e := env(t)
	s := mustState(t, e, "Greece", "good", "all")
	got := StateFromKey(s.Key())
	if !got.Equal(s) {
		t.Errorf("StateFromKey(Key) = %v, want %v", got, s)
	}
}

func TestCovers(t *testing.T) {
	e := env(t)
	q := mustState(t, e, "Plaka", "warm", "friends")
	cases := []struct {
		s    State
		want bool
	}{
		{mustState(t, e, "Plaka", "warm", "friends"), true},  // reflexive
		{mustState(t, e, "Athens", "warm", "friends"), true}, // location one level up
		{mustState(t, e, "Greece", "good", "all"), true},     // several levels up
		{e.AllState(), true}, // top covers everything
		{mustState(t, e, "Kifisia", "warm", "friends"), false}, // sibling
		{mustState(t, e, "Athens", "cold", "friends"), false},  // incomparable temperature
		{mustState(t, e, "Athens", "bad", "friends"), false},   // ancestor of wrong branch
		{mustState(t, e, "Ioannina", "warm", "friends"), false},
	}
	for _, c := range cases {
		if got := e.Covers(c.s, q); got != c.want {
			t.Errorf("Covers(%v, %v) = %v, want %v", c.s, q, got, c.want)
		}
	}
	// A detailed state never covers a rougher one.
	if e.Covers(q, mustState(t, e, "Athens", "warm", "friends")) {
		t.Error("detailed state covers its own generalization")
	}
	// Arity mismatch is simply false.
	if e.Covers(State{"Plaka"}, q) || e.Covers(q, State{"Plaka"}) {
		t.Error("covers with arity mismatch should be false")
	}
}

func TestCoversSet(t *testing.T) {
	e := env(t)
	si := []State{
		mustState(t, e, "Athens", "warm", "all"),
		mustState(t, e, "Greece", "bad", "all"),
	}
	sj := []State{
		mustState(t, e, "Plaka", "warm", "friends"),
		mustState(t, e, "Perama", "cold", "family"),
	}
	if !e.CoversSet(si, sj) {
		t.Error("CoversSet should hold")
	}
	sj = append(sj, mustState(t, e, "Plaka", "mild", "friends"))
	if e.CoversSet(si, []State{sj[2]}) {
		t.Error("CoversSet should fail for (Plaka, mild, friends)")
	}
	if !e.CoversSet(si, nil) {
		t.Error("CoversSet over empty Sj should hold vacuously")
	}
}

func TestParamDescriptorContext(t *testing.T) {
	e := env(t)
	// Eq.
	got, err := Eq("location", "Plaka").Context(e)
	if err != nil || !reflect.DeepEqual(got, []string{"Plaka"}) {
		t.Errorf("Eq.Context = %v, %v", got, err)
	}
	// In with duplicates collapsed.
	got, err = In("location", "Plaka", "Acropolis_Area", "Plaka").Context(e)
	if err != nil || !reflect.DeepEqual(got, []string{"Plaka", "Acropolis_Area"}) {
		t.Errorf("In.Context = %v, %v", got, err)
	}
	// Range (paper: temperature ∈ [mild, hot] = {mild, warm, hot}).
	got, err = Between("temperature", "mild", "hot").Context(e)
	if err != nil || !reflect.DeepEqual(got, []string{"mild", "warm", "hot"}) {
		t.Errorf("Between.Context = %v, %v", got, err)
	}
	// Eq on a non-detailed level is allowed (extended domain).
	got, err = Eq("temperature", "good").Context(e)
	if err != nil || !reflect.DeepEqual(got, []string{"good"}) {
		t.Errorf("Eq(good).Context = %v, %v", got, err)
	}
	// Errors.
	if _, err := Eq("altitude", "high").Context(e); err == nil {
		t.Error("unknown parameter should fail")
	}
	if _, err := Eq("location", "Atlantis").Context(e); err == nil {
		t.Error("unknown value should fail")
	}
	if _, err := In("location").Context(e); err == nil {
		t.Error("empty In should fail")
	}
	if _, err := In("location", "Plaka", "Atlantis").Context(e); err == nil {
		t.Error("In with unknown value should fail")
	}
	if _, err := Between("temperature", "hot", "mild").Context(e); err == nil {
		t.Error("reversed range should fail")
	}
	if _, err := (ParamDescriptor{Param: "location", Kind: KindEq}).Context(e); err == nil {
		t.Error("eq with no values should fail")
	}
	if _, err := (ParamDescriptor{Param: "location", Kind: KindRange, Values: []string{"Plaka"}}).Context(e); err == nil {
		t.Error("range with one endpoint should fail")
	}
	if _, err := (ParamDescriptor{Param: "location", Kind: DescriptorKind(99), Values: []string{"Plaka"}}).Context(e); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestDescriptorContextPaperExample(t *testing.T) {
	e := env(t)
	// (location = Plaka ∧ temperature ∈ {warm, hot} ∧ people = friends)
	// → (Plaka, warm, friends) and (Plaka, hot, friends).
	d := MustDescriptor(
		Eq("location", "Plaka"),
		In("temperature", "warm", "hot"),
		Eq("accompanying_people", "friends"),
	)
	states, err := d.Context(e)
	if err != nil {
		t.Fatal(err)
	}
	want := []State{
		{"Plaka", "warm", "friends"},
		{"Plaka", "hot", "friends"},
	}
	if !reflect.DeepEqual(states, want) {
		t.Errorf("Context = %v, want %v", states, want)
	}
}

func TestDescriptorMissingParamsDefaultToAll(t *testing.T) {
	e := env(t)
	// (accompanying_people = friends) → (all, all, friends).
	d := MustDescriptor(Eq("accompanying_people", "friends"))
	states, err := d.Context(e)
	if err != nil {
		t.Fatal(err)
	}
	want := []State{{"all", "all", "friends"}}
	if !reflect.DeepEqual(states, want) {
		t.Errorf("Context = %v, want %v", states, want)
	}
	// Empty descriptor → the (all, all, all) state (Def. 4 remark).
	states, err = Descriptor{}.Context(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || !states[0].Equal(e.AllState()) {
		t.Errorf("empty descriptor Context = %v", states)
	}
}

func TestDescriptorCartesianOrderAndSize(t *testing.T) {
	e := env(t)
	d := MustDescriptor(
		In("location", "Plaka", "Kifisia"),
		In("temperature", "warm", "hot"),
		In("accompanying_people", "friends", "family", "alone"),
	)
	states, err := d.Context(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 2*2*3 {
		t.Fatalf("Context size = %d, want 12", len(states))
	}
	// Last parameter varies fastest.
	if !states[0].Equal(State{"Plaka", "warm", "friends"}) ||
		!states[1].Equal(State{"Plaka", "warm", "family"}) ||
		!states[3].Equal(State{"Plaka", "hot", "friends"}) {
		t.Errorf("unexpected enumeration order: %v", states[:4])
	}
	// All distinct.
	seen := map[string]bool{}
	for _, s := range states {
		if seen[s.Key()] {
			t.Fatalf("duplicate state %v", s)
		}
		seen[s.Key()] = true
	}
}

func TestDescriptorErrors(t *testing.T) {
	e := env(t)
	if _, err := NewDescriptor(Eq("location", "Plaka"), Eq("location", "Kifisia")); err == nil {
		t.Error("repeated parameter should fail")
	}
	d := MustDescriptor(Eq("altitude", "high"))
	if _, err := d.Context(e); err == nil {
		t.Error("unknown parameter should fail at expansion")
	}
	d = MustDescriptor(Eq("location", "Atlantis"))
	if _, err := d.Context(e); err == nil {
		t.Error("unknown value should fail at expansion")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustDescriptor should panic on error")
		}
	}()
	MustDescriptor(Eq("p", "v"), Eq("p", "w"))
}

func TestExtendedDescriptor(t *testing.T) {
	e := env(t)
	ed := ExtendedDescriptor{
		MustDescriptor(Eq("location", "Plaka"), Eq("temperature", "warm")),
		MustDescriptor(Eq("location", "Plaka"), In("temperature", "warm", "hot")),
	}
	states, err := ed.Context(e)
	if err != nil {
		t.Fatal(err)
	}
	// Union with dedup: (Plaka, warm, all), (Plaka, hot, all).
	want := []State{{"Plaka", "warm", "all"}, {"Plaka", "hot", "all"}}
	if !reflect.DeepEqual(states, want) {
		t.Errorf("Context = %v, want %v", states, want)
	}
	// Error propagation.
	bad := ExtendedDescriptor{MustDescriptor(Eq("location", "Atlantis"))}
	if _, err := bad.Context(e); err == nil {
		t.Error("extended descriptor with bad component should fail")
	}
	// Empty extended descriptor denotes no explicit context.
	states, err = ExtendedDescriptor{}.Context(e)
	if err != nil || len(states) != 0 {
		t.Errorf("empty extended Context = %v, %v", states, err)
	}
}

func TestStringRendering(t *testing.T) {
	e := env(t)
	_ = e
	d := MustDescriptor(Eq("location", "Plaka"), In("temperature", "warm", "hot"))
	s := d.String()
	for _, frag := range []string{"location = Plaka", "temperature ∈ {warm, hot}", "∧"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Descriptor.String() = %q missing %q", s, frag)
		}
	}
	if got := (Descriptor{}).String(); got != "(⊤)" {
		t.Errorf("empty Descriptor.String() = %q", got)
	}
	r := Between("temperature", "mild", "hot").String()
	if !strings.Contains(r, "[mild, hot]") {
		t.Errorf("range String() = %q", r)
	}
	ed := ExtendedDescriptor{d, MustDescriptor()}
	if !strings.Contains(ed.String(), " ∨ ") {
		t.Errorf("ExtendedDescriptor.String() = %q", ed.String())
	}
	if (ExtendedDescriptor{}).String() != "(⊤)" {
		t.Errorf("empty ExtendedDescriptor.String() = %q", (ExtendedDescriptor{}).String())
	}
	for k, want := range map[DescriptorKind]string{KindEq: "eq", KindIn: "in", KindRange: "range"} {
		if k.String() != want {
			t.Errorf("Kind.String() = %q, want %q", k.String(), want)
		}
	}
	if !strings.Contains(DescriptorKind(42).String(), "42") {
		t.Error("unknown kind String() should embed the code")
	}
}

func TestSortStates(t *testing.T) {
	ss := []State{{"b", "x"}, {"a", "y"}, {"a", "x"}, {"a"}}
	SortStates(ss)
	want := []State{{"a"}, {"a", "x"}, {"a", "y"}, {"b", "x"}}
	if !reflect.DeepEqual(ss, want) {
		t.Errorf("SortStates = %v, want %v", ss, want)
	}
}

// randomState draws a random extended state of the reference environment.
func randomState(e *Environment, r *rand.Rand) State {
	s := make(State, e.NumParams())
	for i := 0; i < e.NumParams(); i++ {
		ed := e.Param(i).Hierarchy().ExtendedDomain()
		s[i] = ed[r.Intn(len(ed))]
	}
	return s
}

// generalize returns a random state covering s (walking each component
// up zero or more levels).
func generalize(e *Environment, s State, r *rand.Rand) State {
	out := s.Clone()
	for i := range out {
		h := e.Param(i).Hierarchy()
		lv, _ := h.LevelOf(out[i])
		target := lv + r.Intn(h.NumLevels()-lv)
		a, err := h.Anc(out[i], target)
		if err != nil {
			panic(err)
		}
		out[i] = a
	}
	return out
}

// Theorem 1, property (1): covers is reflexive.
func TestQuickCoversReflexive(t *testing.T) {
	e := env(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomState(e, r)
		return e.Covers(s, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Theorem 1, property (2): covers is antisymmetric.
func TestQuickCoversAntisymmetric(t *testing.T) {
	e := env(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s1 := randomState(e, r)
		s2 := randomState(e, r)
		if e.Covers(s1, s2) && e.Covers(s2, s1) {
			return s1.Equal(s2)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Theorem 1, property (3): covers is transitive. We construct chains
// s3 ⪰ s2 ⪰ s1 by generalization so the premise is commonly satisfied.
func TestQuickCoversTransitive(t *testing.T) {
	e := env(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s1 := randomState(e, r)
		s2 := generalize(e, s1, r)
		s3 := generalize(e, s2, r)
		if !e.Covers(s2, s1) || !e.Covers(s3, s2) {
			return false // generalize must produce covering states
		}
		return e.Covers(s3, s1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Context(cod) cardinality equals the product of the
// component descriptor contexts.
func TestQuickDescriptorCardinality(t *testing.T) {
	e := env(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var pds []ParamDescriptor
		expect := 1
		for i := 0; i < e.NumParams(); i++ {
			if r.Intn(3) == 0 {
				continue // leave the parameter unconstrained
			}
			ed := e.Param(i).Hierarchy().ExtendedDomain()
			m := 1 + r.Intn(3)
			seen := map[string]bool{}
			var vs []string
			for len(vs) < m {
				v := ed[r.Intn(len(ed))]
				if !seen[v] {
					seen[v] = true
					vs = append(vs, v)
				}
			}
			pds = append(pds, In(e.Param(i).Name(), vs...))
			expect *= len(vs)
		}
		d, err := NewDescriptor(pds...)
		if err != nil {
			return false
		}
		states, err := d.Context(e)
		if err != nil {
			return false
		}
		return len(states) == expect
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: every state produced by a descriptor is covered by the
// state produced by generalizing each component to "all" — and the
// descriptor's own states cover themselves (set-covering sanity).
func TestQuickDescriptorStatesCoveredByAll(t *testing.T) {
	e := env(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randomState(e, r)
		var pds []ParamDescriptor
		for i, v := range s {
			pds = append(pds, Eq(e.Param(i).Name(), v))
		}
		d, err := NewDescriptor(pds...)
		if err != nil {
			return false
		}
		states, err := d.Context(e)
		if err != nil || len(states) != 1 {
			return false
		}
		return e.Covers(e.AllState(), states[0]) && e.CoversSet(states, states)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDescriptorAccessors(t *testing.T) {
	d := MustDescriptor(Eq("location", "Plaka"), In("temperature", "warm", "hot"))
	if got := d.Params(); !reflect.DeepEqual(got, []string{"location", "temperature"}) {
		t.Errorf("Params = %v", got)
	}
	pds := d.ParamDescriptors()
	if len(pds) != 2 || pds[0].Kind != KindEq || pds[1].Kind != KindIn {
		t.Errorf("ParamDescriptors = %v", pds)
	}
	// The returned slice is a copy: mutating it leaves d intact.
	pds[0] = Eq("location", "Kifisia")
	if d.ParamDescriptors()[0].Values[0] != "Plaka" {
		t.Error("ParamDescriptors exposed internal state")
	}
	// MustReferenceEnvironment returns a working environment.
	e := MustReferenceEnvironment()
	if e.NumParams() != 3 {
		t.Errorf("MustReferenceEnvironment params = %d", e.NumParams())
	}
}
