// Package ctxmodel implements the context model of Section 3.1 of
// "Adding Context to Preferences" (ICDE 2007): context parameters with
// hierarchical domains, context environments, (extended) context states,
// context descriptors (per-parameter, composite and extended), the
// expansion of descriptors into their finite sets of states, and the
// covers partial order between states (Def. 10).
package ctxmodel

import (
	"fmt"
	"sort"
	"strings"

	"contextpref/internal/hierarchy"
)

// Parameter is a context parameter Ci: a named attribute whose extended
// domain is given by a hierarchy of levels.
type Parameter struct {
	name string
	h    *hierarchy.Hierarchy
}

// NewParameter creates a context parameter backed by the hierarchy.
// The parameter name defaults to the hierarchy name when name is empty.
func NewParameter(name string, h *hierarchy.Hierarchy) (*Parameter, error) {
	if h == nil {
		return nil, fmt.Errorf("ctxmodel: parameter %q has nil hierarchy", name)
	}
	if name == "" {
		name = h.Name()
	}
	return &Parameter{name: name, h: h}, nil
}

// Name returns the parameter name.
func (p *Parameter) Name() string { return p.name }

// Hierarchy returns the parameter's hierarchy.
func (p *Parameter) Hierarchy() *hierarchy.Hierarchy { return p.h }

// Environment is the context environment CE: an ordered, finite set of
// context parameters {C1, ..., Cn}.
type Environment struct {
	params []*Parameter
	index  map[string]int
}

// NewEnvironment creates an environment over the given parameters.
// Parameter names must be distinct and at least one parameter is
// required.
func NewEnvironment(params ...*Parameter) (*Environment, error) {
	if len(params) == 0 {
		return nil, fmt.Errorf("ctxmodel: environment needs at least one parameter")
	}
	e := &Environment{
		params: append([]*Parameter(nil), params...),
		index:  make(map[string]int, len(params)),
	}
	for i, p := range params {
		if p == nil {
			return nil, fmt.Errorf("ctxmodel: nil parameter at position %d", i)
		}
		if _, dup := e.index[p.name]; dup {
			return nil, fmt.Errorf("ctxmodel: duplicate parameter %q", p.name)
		}
		e.index[p.name] = i
	}
	return e, nil
}

// NumParams returns n, the number of context parameters.
func (e *Environment) NumParams() int { return len(e.params) }

// Param returns the i-th parameter.
func (e *Environment) Param(i int) *Parameter { return e.params[i] }

// ParamByName returns the parameter with the given name.
func (e *Environment) ParamByName(name string) (*Parameter, bool) {
	i, ok := e.index[name]
	if !ok {
		return nil, false
	}
	return e.params[i], true
}

// ParamIndex returns the position of the named parameter.
func (e *Environment) ParamIndex(name string) (int, bool) {
	i, ok := e.index[name]
	return i, ok
}

// Names returns the parameter names in environment order.
func (e *Environment) Names() []string {
	out := make([]string, len(e.params))
	for i, p := range e.params {
		out[i] = p.name
	}
	return out
}

// WorldSize returns |W| = ∏ |dom(Ci)|, the number of detailed states.
func (e *Environment) WorldSize() int {
	n := 1
	for _, p := range e.params {
		n *= len(p.h.DetailedValues())
	}
	return n
}

// ExtendedWorldSize returns |EW| = ∏ |edom(Ci)|.
func (e *Environment) ExtendedWorldSize() int {
	n := 1
	for _, p := range e.params {
		n *= p.h.ExtendedDomainSize()
	}
	return n
}

// State is an extended context state: an n-tuple (c1, ..., cn) with
// ci ∈ edom(Ci), in environment parameter order.
type State []string

// stateSep separates values inside State.Key; it cannot occur in values.
const stateSep = "\x1f"

// Key returns a canonical string form usable as a map key.
func (s State) Key() string { return strings.Join(s, stateSep) }

// StateFromKey reconstructs a state from a Key().
func StateFromKey(k string) State { return State(strings.Split(k, stateSep)) }

// Clone returns a copy of the state.
func (s State) Clone() State { return append(State(nil), s...) }

// Equal reports componentwise equality.
func (s State) Equal(t State) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// String renders the state as (c1, c2, ..., cn).
func (s State) String() string { return "(" + strings.Join(s, ", ") + ")" }

// NewState validates values against the environment's extended domains
// and returns them as a state.
func (e *Environment) NewState(values ...string) (State, error) {
	if len(values) != len(e.params) {
		return nil, fmt.Errorf("ctxmodel: state has %d values, environment has %d parameters",
			len(values), len(e.params))
	}
	for i, v := range values {
		if !e.params[i].h.Contains(v) {
			return nil, fmt.Errorf("ctxmodel: value %q not in edom(%s)", v, e.params[i].name)
		}
	}
	return State(append([]string(nil), values...)), nil
}

// AllState returns the empty-context state (all, all, ..., all).
func (e *Environment) AllState() State {
	s := make(State, len(e.params))
	for i := range s {
		s[i] = hierarchy.All
	}
	return s
}

// Validate checks that s is a well-formed state of this environment.
func (e *Environment) Validate(s State) error {
	_, err := e.NewState(s...)
	return err
}

// LevelsOf implements Def. 13: the hierarchy level index of each value
// of the state.
func (e *Environment) LevelsOf(s State) ([]int, error) {
	if len(s) != len(e.params) {
		return nil, fmt.Errorf("ctxmodel: state arity %d, want %d", len(s), len(e.params))
	}
	out := make([]int, len(s))
	for i, v := range s {
		l, ok := e.params[i].h.LevelOf(v)
		if !ok {
			return nil, fmt.Errorf("ctxmodel: value %q not in edom(%s)", v, e.params[i].name)
		}
		out[i] = l
	}
	return out, nil
}

// IsDetailed reports whether every value of s belongs to the detailed
// level of its parameter — i.e. s ∈ W, not merely EW.
func (e *Environment) IsDetailed(s State) bool {
	for i, v := range s {
		if l, ok := e.params[i].h.LevelOf(v); !ok || l != 0 {
			return false
		}
	}
	return true
}

// Covers implements Def. 10: s1 covers s2 iff for every parameter k,
// s1[k] = s2[k] or s1[k] is an ancestor of s2[k] in the parameter's
// hierarchy. Covers is a partial order (Theorem 1).
func (e *Environment) Covers(s1, s2 State) bool {
	if len(s1) != len(e.params) || len(s2) != len(e.params) {
		return false
	}
	for i := range s1 {
		if !e.params[i].h.IsAncestorOrSelf(s1[i], s2[i]) {
			return false
		}
	}
	return true
}

// CoversSet implements Def. 11: Si covers Sj iff every state of Sj is
// covered by some state of Si.
func (e *Environment) CoversSet(si, sj []State) bool {
	for _, s := range sj {
		covered := false
		for _, sc := range si {
			if e.Covers(sc, s) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// DescriptorKind distinguishes the three forms of Def. 1.
type DescriptorKind int

const (
	// KindEq is Ci = v.
	KindEq DescriptorKind = iota
	// KindIn is Ci ∈ {v1, ..., vm}.
	KindIn
	// KindRange is Ci ∈ [v1, vm].
	KindRange
)

// String names the descriptor kind.
func (k DescriptorKind) String() string {
	switch k {
	case KindEq:
		return "eq"
	case KindIn:
		return "in"
	case KindRange:
		return "range"
	}
	return fmt.Sprintf("DescriptorKind(%d)", int(k))
}

// ParamDescriptor is a context parameter descriptor cod(Ci) (Def. 1).
type ParamDescriptor struct {
	// Param is the context parameter name the descriptor constrains.
	Param string
	// Kind selects among Ci = v, Ci ∈ {…} and Ci ∈ [lo, hi].
	Kind DescriptorKind
	// Values holds the single value (KindEq), the value set (KindIn) or
	// the two range endpoints (KindRange).
	Values []string
}

// Eq builds the descriptor Ci = v.
func Eq(param, v string) ParamDescriptor {
	return ParamDescriptor{Param: param, Kind: KindEq, Values: []string{v}}
}

// In builds the descriptor Ci ∈ {vs...}.
func In(param string, vs ...string) ParamDescriptor {
	return ParamDescriptor{Param: param, Kind: KindIn, Values: append([]string(nil), vs...)}
}

// Between builds the descriptor Ci ∈ [lo, hi] over the total order of
// the endpoints' level.
func Between(param, lo, hi string) ParamDescriptor {
	return ParamDescriptor{Param: param, Kind: KindRange, Values: []string{lo, hi}}
}

// Context implements Def. 2: the finite set of values the descriptor
// denotes, validated against the parameter's extended domain.
func (pd ParamDescriptor) Context(e *Environment) ([]string, error) {
	p, ok := e.ParamByName(pd.Param)
	if !ok {
		return nil, fmt.Errorf("ctxmodel: unknown context parameter %q", pd.Param)
	}
	switch pd.Kind {
	case KindEq:
		if len(pd.Values) != 1 {
			return nil, fmt.Errorf("ctxmodel: %s: eq descriptor needs exactly one value, got %d", pd.Param, len(pd.Values))
		}
		if !p.h.Contains(pd.Values[0]) {
			return nil, fmt.Errorf("ctxmodel: value %q not in edom(%s)", pd.Values[0], pd.Param)
		}
		return []string{pd.Values[0]}, nil
	case KindIn:
		if len(pd.Values) == 0 {
			return nil, fmt.Errorf("ctxmodel: %s: empty in-descriptor", pd.Param)
		}
		out := make([]string, 0, len(pd.Values))
		seen := make(map[string]bool, len(pd.Values))
		for _, v := range pd.Values {
			if !p.h.Contains(v) {
				return nil, fmt.Errorf("ctxmodel: value %q not in edom(%s)", v, pd.Param)
			}
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		return out, nil
	case KindRange:
		if len(pd.Values) != 2 {
			return nil, fmt.Errorf("ctxmodel: %s: range descriptor needs exactly two endpoints, got %d", pd.Param, len(pd.Values))
		}
		return p.h.Range(pd.Values[0], pd.Values[1])
	}
	return nil, fmt.Errorf("ctxmodel: %s: unknown descriptor kind %d", pd.Param, int(pd.Kind))
}

// String renders the parameter descriptor in the paper's notation.
func (pd ParamDescriptor) String() string {
	switch pd.Kind {
	case KindEq:
		return fmt.Sprintf("%s = %s", pd.Param, strings.Join(pd.Values, ","))
	case KindIn:
		return fmt.Sprintf("%s ∈ {%s}", pd.Param, strings.Join(pd.Values, ", "))
	case KindRange:
		if len(pd.Values) == 2 {
			return fmt.Sprintf("%s ∈ [%s, %s]", pd.Param, pd.Values[0], pd.Values[1])
		}
	}
	return fmt.Sprintf("%s ?%v", pd.Param, pd.Values)
}

// Descriptor is a composite context descriptor (Def. 3): a conjunction
// of parameter descriptors with at most one per parameter. Parameters
// without a descriptor implicitly take the value "all".
type Descriptor struct {
	pds []ParamDescriptor
}

// NewDescriptor builds a composite descriptor, rejecting repeated
// parameters. An empty descriptor denotes the (all, ..., all) state.
func NewDescriptor(pds ...ParamDescriptor) (Descriptor, error) {
	seen := make(map[string]bool, len(pds))
	for _, pd := range pds {
		if seen[pd.Param] {
			return Descriptor{}, fmt.Errorf("ctxmodel: composite descriptor repeats parameter %q", pd.Param)
		}
		seen[pd.Param] = true
	}
	return Descriptor{pds: append([]ParamDescriptor(nil), pds...)}, nil
}

// MustDescriptor is NewDescriptor that panics on error; for literals in
// tests and examples.
func MustDescriptor(pds ...ParamDescriptor) Descriptor {
	d, err := NewDescriptor(pds...)
	if err != nil {
		panic(err)
	}
	return d
}

// Params returns the constrained parameter names in declaration order.
func (d Descriptor) Params() []string {
	out := make([]string, len(d.pds))
	for i, pd := range d.pds {
		out[i] = pd.Param
	}
	return out
}

// ParamDescriptors returns the component descriptors.
func (d Descriptor) ParamDescriptors() []ParamDescriptor {
	return append([]ParamDescriptor(nil), d.pds...)
}

// Context implements Def. 4: the Cartesian product of the contexts of
// the component descriptors, with {all} for absent parameters, in
// environment parameter order. The result is deterministic: the product
// enumerates the last parameter fastest.
func (d Descriptor) Context(e *Environment) ([]State, error) {
	perParam := make([][]string, e.NumParams())
	for i := range perParam {
		perParam[i] = []string{hierarchy.All}
	}
	for _, pd := range d.pds {
		i, ok := e.ParamIndex(pd.Param)
		if !ok {
			return nil, fmt.Errorf("ctxmodel: unknown context parameter %q", pd.Param)
		}
		vals, err := pd.Context(e)
		if err != nil {
			return nil, err
		}
		perParam[i] = vals
	}
	total := 1
	for _, vals := range perParam {
		total *= len(vals)
	}
	out := make([]State, 0, total)
	idx := make([]int, len(perParam))
	for {
		s := make(State, len(perParam))
		for i, vals := range perParam {
			s[i] = vals[idx[i]]
		}
		out = append(out, s)
		// Advance the mixed-radix counter, last parameter fastest.
		k := len(idx) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(perParam[k]) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			break
		}
	}
	return out, nil
}

// String renders the composite descriptor as a conjunction.
func (d Descriptor) String() string {
	if len(d.pds) == 0 {
		return "(⊤)"
	}
	parts := make([]string, len(d.pds))
	for i, pd := range d.pds {
		parts[i] = pd.String()
	}
	return "(" + strings.Join(parts, " ∧ ") + ")"
}

// ExtendedDescriptor is an extended context descriptor (Def. 8): a
// disjunction of composite descriptors, as attached to queries.
type ExtendedDescriptor []Descriptor

// Context returns the union of the component contexts with duplicate
// states removed, preserving first-occurrence order.
func (ed ExtendedDescriptor) Context(e *Environment) ([]State, error) {
	var out []State
	seen := make(map[string]bool)
	for _, d := range ed {
		states, err := d.Context(e)
		if err != nil {
			return nil, err
		}
		for _, s := range states {
			k := s.Key()
			if !seen[k] {
				seen[k] = true
				out = append(out, s)
			}
		}
	}
	return out, nil
}

// String renders the extended descriptor as a disjunction.
func (ed ExtendedDescriptor) String() string {
	if len(ed) == 0 {
		return "(⊤)"
	}
	parts := make([]string, len(ed))
	for i, d := range ed {
		parts[i] = d.String()
	}
	return strings.Join(parts, " ∨ ")
}

// SortStates orders states lexicographically by their components; a
// convenience for deterministic test assertions.
func SortStates(ss []State) {
	sort.Slice(ss, func(i, j int) bool {
		a, b := ss[i], ss[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}
