package lint

import (
	"go/ast"
)

// CtxLoop enforces the PR 4 cancellation contract on the resolution
// and scan hot paths: every function anchored with //cpvet:scanloop
// (the profile-tree cover searches, the sequential store scan, the
// relation full scan, multi-state query evaluation) must consult
// ctx.Err() or ctx.Done() inside a loop body, so a server deadline or
// a departed client stops the work early instead of running it to
// completion.
//
// The check is syntactic: it looks for a call to Err() or Done() on a
// receiver identifier named ctx anywhere inside a for/range body of
// the anchored function, including loops inside nested function
// literals (the tree walks recurse through a local closure). The
// anchor comment is the contract: removing it to silence the analyzer
// is exactly as visible in review as deleting the check itself.
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc:  "//cpvet:scanloop functions must check ctx.Err()/ctx.Done() inside their loop bodies",
	Run:  runCtxLoop,
}

func runCtxLoop(r *Repo) []Diagnostic {
	var out []Diagnostic
	for _, f := range r.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasDirective(fd, scanloopVerb) {
				continue
			}
			if fd.Body == nil || !hasLoopCtxCheck(fd.Body) {
				out = append(out, Diagnostic{r.Fset.Position(fd.Pos()), "ctxloop",
					"function is marked //cpvet:scanloop but no loop body checks ctx.Err()/ctx.Done(); hot-path scans must cancel cooperatively"})
			}
		}
	}
	return out
}

// hasLoopCtxCheck reports whether any for/range statement under body
// contains a ctx.Err() or ctx.Done() call inside its own body.
func hasLoopCtxCheck(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		var loopBody *ast.BlockStmt
		switch s := n.(type) {
		case *ast.ForStmt:
			loopBody = s.Body
		case *ast.RangeStmt:
			loopBody = s.Body
		default:
			return true
		}
		ast.Inspect(loopBody, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Err" && sel.Sel.Name != "Done") {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "ctx" {
				found = true
				return false
			}
			return true
		})
		return true
	})
	return found
}
