package lint

import (
	"go/ast"
	"go/types"
)

// CtxLoop enforces the PR 4 cancellation contract on the resolution
// and scan hot paths: every function anchored with //cpvet:scanloop
// (the profile-tree cover searches, the sequential store scan, the
// relation full scan, multi-state query evaluation) must consult
// ctx.Err() or ctx.Done() inside a loop body, so a server deadline or
// a departed client stops the work early instead of running it to
// completion.
//
// The direct check looks for a call to Err() or Done() on a receiver
// identifier named ctx (or one that resolves to context.Context)
// anywhere inside a for/range body of the anchored function, including
// loops inside nested function literals (the tree walks recurse
// through a local closure). Since the pass grew type information, the
// check also sees one hop through calls: a loop body that invokes a
// declared function or method whose own body checks the context
// counts, whether the call is spelled directly (t.cancelled(ctx)), or
// through a method value bound earlier in the function
// (check := t.cancelled; ... check(ctx)) — the hoisted-bound-method
// shape the scan loops use to keep the per-row code small. The anchor
// comment is the contract: removing it to silence the analyzer is
// exactly as visible in review as deleting the check itself.
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc:  "//cpvet:scanloop functions must check ctx.Err()/ctx.Done() inside their loop bodies (directly or one resolved call away)",
	Run:  runCtxLoop,
}

func runCtxLoop(r *Repo) []Diagnostic {
	var out []Diagnostic
	for _, f := range r.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasDirective(fd, scanloopVerb) {
				continue
			}
			if fd.Body == nil || !r.hasLoopCtxCheck(fd.Body) {
				out = append(out, Diagnostic{r.Fset.Position(fd.Pos()), "ctxloop",
					"function is marked //cpvet:scanloop but no loop body checks ctx.Err()/ctx.Done(); hot-path scans must cancel cooperatively"})
			}
		}
	}
	return out
}

// hasLoopCtxCheck reports whether any for/range statement under body
// contains a context check inside its own body: a ctx.Err()/ctx.Done()
// call, or a call into a declared function whose body performs one.
func (r *Repo) hasLoopCtxCheck(body *ast.BlockStmt) bool {
	bound := r.methodValues(body)
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		var loopBody *ast.BlockStmt
		switch s := n.(type) {
		case *ast.ForStmt:
			loopBody = s.Body
		case *ast.RangeStmt:
			loopBody = s.Body
		default:
			return true
		}
		ast.Inspect(loopBody, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if r.ctxCheckCall(call) {
				found = true
				return false
			}
			callee := r.calleeFunc(call)
			if callee == nil {
				// A call through an identifier may be a method value
				// bound earlier in this function.
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && r.Types != nil {
					callee = bound[r.Types.Uses[id]]
				}
			}
			if callee != nil {
				if fd := r.funcDecl(callee); fd != nil && fd.Body != nil && r.bodyChecksCtx(fd.Body) {
					found = true
					return false
				}
			}
			return true
		})
		return true
	})
	return found
}

// ctxCheckCall reports whether call is ctx.Err() or ctx.Done() — by
// the conventional receiver name, or by a receiver that resolves to
// context.Context.
func (r *Repo) ctxCheckCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Err" && sel.Sel.Name != "Done") || len(call.Args) != 0 {
		return false
	}
	if id, ok := sel.X.(*ast.Ident); ok && id.Name == "ctx" {
		return true
	}
	return namedPath(r.typeOf(sel.X)) == "context.Context"
}

// bodyChecksCtx reports whether a callee body contains a context check
// anywhere: called from inside a loop, it runs on every iteration, so
// it need not sit in a loop of its own.
func (r *Repo) bodyChecksCtx(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && r.ctxCheckCall(call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// methodValues maps identifiers assigned a bound method value
// (check := t.cancelled) to the method they name, so calls through the
// identifier resolve to the method's declaration.
func (r *Repo) methodValues(body *ast.BlockStmt) map[types.Object]*types.Func {
	out := make(map[types.Object]*types.Func)
	if r.Types == nil {
		return out
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			sel, ok := ast.Unparen(rhs).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			fn, ok := r.Types.Uses[sel.Sel].(*types.Func)
			if !ok {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := r.Types.Defs[id]; obj != nil {
					out[obj] = fn
				} else if obj := r.Types.Uses[id]; obj != nil {
					out[obj] = fn
				}
			}
		}
		return true
	})
	return out
}
