package lint

import (
	"strings"
)

// SlogOnly enforces the PR 2 logging contract: library code logs only
// through log/slog, where every record carries structured fields and
// the serving layer attaches the request ID. The unstructured stdlib
// log package (and its process-killing Fatal variants) is allowed
// only in cmd/* mains and examples/, which own the process.
//
// Importing "log" at all is the violation — the package has no
// structured call, so the import line is the single choke point.
var SlogOnly = &Analyzer{
	Name: "slogonly",
	Doc:  "library code must log via log/slog; stdlib log only in cmd/ and examples/",
	Run:  runSlogOnly,
}

func runSlogOnly(r *Repo) []Diagnostic {
	var out []Diagnostic
	for _, f := range r.Files {
		if strings.HasPrefix(f.Path, "cmd/") || strings.HasPrefix(f.Path, "examples/") {
			continue
		}
		for _, imp := range f.AST.Imports {
			if imp.Path.Value != `"log"` {
				continue
			}
			out = append(out, Diagnostic{r.Fset.Position(imp.Pos()), "slogonly",
				"library code imports stdlib log; use log/slog so records are structured and request-correlated (raw log is for cmd/ mains and examples/ only)"})
		}
	}
	return out
}
