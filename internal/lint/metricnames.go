package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// MetricNames enforces the PR 2 telemetry naming contract on every
// literal metric name passed to a registry constructor
// (Counter/CounterVec, Gauge/GaugeFunc, Histogram/HistogramVec):
//
//   - names match ^cp_[a-z0-9_]+$ (one product prefix, Prometheus
//     lowercase grammar);
//   - counters end in _total;
//   - histograms end in _seconds (timing distributions) — a unitless
//     distribution needs a //cpvet:ignore with its reason;
//   - gauges must not end in _total (that suffix promises a counter);
//   - a name is registered from exactly one call site, repo-wide, so
//     two subsystems cannot silently share (or shadow) an instrument;
//   - label names stay bounded: per-user labels (user, user_id, ...)
//     are rejected outright, because the series count would grow with
//     the user population;
//   - per-shard metrics (cp_shard_* and cp_replication_shard_*) are
//     registered as vectors carrying the bounded "shard" label — the
//     numeric shard index, whose cardinality is fixed at store
//     creation. The replication family exists because a sharded
//     store's segment streams are independent fault domains: their
//     lag and reconnect churn must be attributable per shard.
//
// Dynamically built names and labels are invisible to this pass; the
// runtime conformance test over the live registry covers those.
var MetricNames = &Analyzer{
	Name: "metricnames",
	Doc:  "telemetry names must match cp_[a-z0-9_]+, counters _total, histograms _seconds, unique repo-wide",
	Run:  runMetricNames,
}

var metricNameRE = regexp.MustCompile(`^cp_[a-z0-9_]+$`)

// metricKind maps registry constructor names to the metric kind they
// register.
var metricKind = map[string]string{
	"Counter":      "counter",
	"CounterVec":   "counter",
	"Gauge":        "gauge",
	"GaugeFunc":    "gauge",
	"GaugeVec":     "gauge",
	"Histogram":    "histogram",
	"HistogramVec": "histogram",
}

// vecLabelStart maps vector constructors to the argument index where
// their variadic label names begin (HistogramVec takes the bucket
// slice between help and labels).
var vecLabelStart = map[string]int{
	"CounterVec":   2,
	"GaugeVec":     2,
	"HistogramVec": 3,
}

// unboundedLabels are label names whose value set grows with the user
// population. One series per user defeats the point of aggregate
// metrics (and leaks user identifiers into the scrape).
var unboundedLabels = map[string]bool{
	"user":     true,
	"user_id":  true,
	"username": true,
	"uid":      true,
}

// perShardMetric reports whether a metric name promises per-shard
// series: the cp_shard_ family (shard-local state) and the
// cp_replication_shard_ family (per-segment replication streams).
func perShardMetric(name string) bool {
	return strings.HasPrefix(name, "cp_shard_") ||
		strings.HasPrefix(name, "cp_replication_shard_")
}

func runMetricNames(r *Repo) []Diagnostic {
	var out []Diagnostic
	firstSite := make(map[string]token.Position)
	for _, f := range r.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind, ok := metricKind[sel.Sel.Name]
			if !ok {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			pos := r.Fset.Position(lit.Pos())
			if !metricNameRE.MatchString(name) {
				out = append(out, Diagnostic{pos, "metricnames",
					fmt.Sprintf("metric name %q does not match ^cp_[a-z0-9_]+$", name)})
			}
			switch kind {
			case "counter":
				if !strings.HasSuffix(name, "_total") {
					out = append(out, Diagnostic{pos, "metricnames",
						fmt.Sprintf("counter %q must end in _total", name)})
				}
			case "histogram":
				if !strings.HasSuffix(name, "_seconds") {
					out = append(out, Diagnostic{pos, "metricnames",
						fmt.Sprintf("histogram %q must end in _seconds; suppress with a reason if the distribution is genuinely unitless", name)})
				}
			case "gauge":
				if strings.HasSuffix(name, "_total") {
					out = append(out, Diagnostic{pos, "metricnames",
						fmt.Sprintf("gauge %q must not end in _total (that suffix promises a monotonic counter)", name)})
				}
			}
			labels, allLiteral := vecLabels(r, call, sel.Sel.Name, &out)
			if perShardMetric(name) {
				if _, isVec := vecLabelStart[sel.Sel.Name]; !isVec {
					out = append(out, Diagnostic{pos, "metricnames",
						fmt.Sprintf("per-shard metric %q must be a vector carrying the \"shard\" label", name)})
				} else if allLiteral && !labels["shard"] {
					out = append(out, Diagnostic{pos, "metricnames",
						fmt.Sprintf("per-shard metric %q must carry the bounded \"shard\" label (the numeric shard index)", name)})
				}
			}
			if first, dup := firstSite[name]; dup {
				out = append(out, Diagnostic{pos, "metricnames",
					fmt.Sprintf("metric %q is already registered at %s:%d; share the instrument instead of re-registering the name", name, first.Filename, first.Line)})
			} else {
				firstSite[name] = pos
			}
			return true
		})
	}
	return out
}

// vecLabels collects the literal label names of a vector-constructor
// call, flagging unbounded ones as it goes. It reports whether every
// label argument was a string literal: a dynamically built label list
// cannot prove (or disprove) the presence of "shard", so the per-shard
// check is left to the runtime conformance test.
func vecLabels(r *Repo, call *ast.CallExpr, ctor string, out *[]Diagnostic) (map[string]bool, bool) {
	start, ok := vecLabelStart[ctor]
	if !ok || len(call.Args) <= start {
		return nil, false
	}
	labels := make(map[string]bool)
	allLiteral := true
	for _, arg := range call.Args[start:] {
		lit, ok := arg.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			allLiteral = false
			continue
		}
		label, err := strconv.Unquote(lit.Value)
		if err != nil {
			allLiteral = false
			continue
		}
		labels[label] = true
		if unboundedLabels[label] {
			*out = append(*out, Diagnostic{r.Fset.Position(lit.Pos()), "metricnames",
				fmt.Sprintf("label %q is unbounded (one series per user); aggregate per shard instead", label)})
		}
	}
	return labels, allLiteral
}
