package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// MetricNames enforces the PR 2 telemetry naming contract on every
// literal metric name passed to a registry constructor
// (Counter/CounterVec, Gauge/GaugeFunc, Histogram/HistogramVec):
//
//   - names match ^cp_[a-z0-9_]+$ (one product prefix, Prometheus
//     lowercase grammar);
//   - counters end in _total;
//   - histograms end in _seconds (timing distributions) — a unitless
//     distribution needs a //cpvet:ignore with its reason;
//   - gauges must not end in _total (that suffix promises a counter);
//   - a name is registered from exactly one call site, repo-wide, so
//     two subsystems cannot silently share (or shadow) an instrument.
//
// Dynamically built names are invisible to this pass; the runtime
// conformance test over the live registry covers those.
var MetricNames = &Analyzer{
	Name: "metricnames",
	Doc:  "telemetry names must match cp_[a-z0-9_]+, counters _total, histograms _seconds, unique repo-wide",
	Run:  runMetricNames,
}

var metricNameRE = regexp.MustCompile(`^cp_[a-z0-9_]+$`)

// metricKind maps registry constructor names to the metric kind they
// register.
var metricKind = map[string]string{
	"Counter":      "counter",
	"CounterVec":   "counter",
	"Gauge":        "gauge",
	"GaugeFunc":    "gauge",
	"Histogram":    "histogram",
	"HistogramVec": "histogram",
}

func runMetricNames(r *Repo) []Diagnostic {
	var out []Diagnostic
	firstSite := make(map[string]token.Position)
	for _, f := range r.Files {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind, ok := metricKind[sel.Sel.Name]
			if !ok {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			pos := r.Fset.Position(lit.Pos())
			if !metricNameRE.MatchString(name) {
				out = append(out, Diagnostic{pos, "metricnames",
					fmt.Sprintf("metric name %q does not match ^cp_[a-z0-9_]+$", name)})
			}
			switch kind {
			case "counter":
				if !strings.HasSuffix(name, "_total") {
					out = append(out, Diagnostic{pos, "metricnames",
						fmt.Sprintf("counter %q must end in _total", name)})
				}
			case "histogram":
				if !strings.HasSuffix(name, "_seconds") {
					out = append(out, Diagnostic{pos, "metricnames",
						fmt.Sprintf("histogram %q must end in _seconds; suppress with a reason if the distribution is genuinely unitless", name)})
				}
			case "gauge":
				if strings.HasSuffix(name, "_total") {
					out = append(out, Diagnostic{pos, "metricnames",
						fmt.Sprintf("gauge %q must not end in _total (that suffix promises a monotonic counter)", name)})
				}
			}
			if first, dup := firstSite[name]; dup {
				out = append(out, Diagnostic{pos, "metricnames",
					fmt.Sprintf("metric %q is already registered at %s:%d; share the instrument instead of re-registering the name", name, first.Filename, first.Line)})
			} else {
				firstSite[name] = pos
			}
			return true
		})
	}
	return out
}
