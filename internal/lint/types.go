package lint

// Type resolution for the analyzer suite. PR 5's analyzers were purely
// syntactic; the concurrency-contract analyzers (lockorder,
// deferunlock, goroutinelife, allocbudget) need to know what a selector
// *is* — whether s.mu is a sync.RWMutex owned by a SafeSystem, whether
// an argument is a context.Context, whether a call parameter is an
// interface — so Load now runs go/types over the parsed forest.
//
// The resolution is stdlib-only and best-effort by design:
//
//   - Repo packages are grouped by directory, topologically sorted by
//     their intra-module imports, and type-checked in that order with a
//     repo-local importer, so cross-package references (cmd/cpserver →
//     contextpref → internal/journal) resolve to real objects.
//   - Standard-library imports resolve through go/importer's source
//     importer, shared process-wide so the (expensive) first resolution
//     of sync/net/context is paid once across fixture loads.
//   - Errors never fail Load: golden fixtures are deliberately
//     fragmentary, and an analyzer asking about an unresolved
//     expression simply gets nil and falls back to its syntactic
//     heuristic.

import (
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// stdImporterMu guards the process-wide source importer. The importer
// caches every stdlib package it has checked, so sharing one instance
// across Load calls makes fixture-heavy test runs pay for `sync`,
// `context`, and `net` once instead of per fixture. Positions inside
// stdlib objects belong to stdFset, never to a Repo's Fset — the
// analyzers only ever report positions of repo nodes, so the mix is
// harmless.
var (
	stdImporterMu sync.Mutex
	stdFset       = token.NewFileSet()
	stdImporter   = importer.ForCompiler(stdFset, "source", nil)
	stdCache      = map[string]*types.Package{}
)

// importStd resolves a standard-library import path, returning a stub
// empty package when source resolution fails (vendored build tags, cgo
// shims) so type checking of the repo proceeds with partial info.
func importStd(ipath string) *types.Package {
	stdImporterMu.Lock()
	defer stdImporterMu.Unlock()
	if pkg, ok := stdCache[ipath]; ok {
		return pkg
	}
	pkg, err := stdImporter.Import(ipath)
	if err != nil || pkg == nil {
		pkg = types.NewPackage(ipath, path.Base(ipath))
		pkg.MarkComplete()
	}
	stdCache[ipath] = pkg
	return pkg
}

// repoImporter resolves imports during the repo's own type check:
// intra-module paths come from the already-checked package set (the
// topological order below guarantees they exist), everything else from
// the shared stdlib importer.
type repoImporter struct {
	modPath string
	pkgs    map[string]*types.Package
}

func (ri *repoImporter) Import(ipath string) (*types.Package, error) {
	if pkg, ok := ri.pkgs[ipath]; ok {
		return pkg, nil
	}
	return importStd(ipath), nil
}

// typecheck resolves types over the loaded forest, filling Repo.Types
// and Repo.FuncDecls. It never fails: fixtures with dangling references
// type-check partially and the analyzers degrade to syntax.
func (r *Repo) typecheck(root string) {
	r.Types = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	modPath := modulePath(root)

	// Group the parsed files by directory; each directory is one
	// package (mixed-package directories keep the majority and drop the
	// rest from type checking — they still get the syntactic passes).
	byDir := make(map[string][]*File)
	var dirs []string
	for _, f := range r.Files {
		dir := path.Dir(f.Path)
		if _, ok := byDir[dir]; !ok {
			dirs = append(dirs, dir)
		}
		byDir[dir] = append(byDir[dir], f)
	}

	importPathOf := func(dir string) string {
		if dir == "." {
			return modPath
		}
		return modPath + "/" + dir
	}

	// Topological order over intra-module imports, so dependencies are
	// checked before their importers. Cycles (impossible in a compiling
	// tree, possible in fixtures) fall back to name order.
	deps := make(map[string][]string)
	for _, dir := range dirs {
		for _, f := range byDir[dir] {
			for _, imp := range f.AST.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if p == modPath {
					deps[dir] = append(deps[dir], ".")
				} else if strings.HasPrefix(p, modPath+"/") {
					deps[dir] = append(deps[dir], strings.TrimPrefix(p, modPath+"/"))
				}
			}
		}
	}
	sort.Strings(dirs)
	order := topoSort(dirs, deps)

	ri := &repoImporter{modPath: modPath, pkgs: make(map[string]*types.Package)}
	for _, dir := range order {
		files := make([]*ast.File, 0, len(byDir[dir]))
		pkgName := ""
		for _, f := range byDir[dir] {
			if pkgName == "" {
				pkgName = f.AST.Name.Name
			}
			if f.AST.Name.Name == pkgName {
				files = append(files, f.AST)
			}
		}
		cfg := types.Config{
			Importer: ri,
			Error:    func(error) {}, // tolerate: fixtures are fragments
		}
		pkg, _ := cfg.Check(importPathOf(dir), r.Fset, files, r.Types)
		if pkg != nil {
			ri.pkgs[importPathOf(dir)] = pkg
		}
	}
	r.ModPath = modPath

	// Index every function declaration by its defining object, so
	// analyzers can walk from a call site into the callee's body.
	r.FuncDecls = make(map[*types.Func]*ast.FuncDecl)
	for _, f := range r.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if obj, ok := r.Types.Defs[fd.Name].(*types.Func); ok {
				r.FuncDecls[obj] = fd
			}
		}
	}
}

// topoSort orders dirs so that dependencies precede dependents; nodes
// on cycles keep their name order.
func topoSort(dirs []string, deps map[string][]string) []string {
	state := make(map[string]int) // 0 unseen, 1 visiting, 2 done
	var out []string
	var visit func(d string)
	visit = func(d string) {
		if state[d] != 0 {
			return
		}
		state[d] = 1
		seen := make(map[string]bool)
		for _, dep := range deps[d] {
			if dep != d && !seen[dep] && state[dep] == 0 {
				seen[dep] = true
				visit(dep)
			}
		}
		state[d] = 2
		out = append(out, d)
	}
	for _, d := range dirs {
		visit(d)
	}
	return out
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// modulePath reads the module path from root's go.mod; fixture roots
// without one get the placeholder "fixture".
func modulePath(root string) string {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err == nil {
		if m := moduleRe.FindSubmatch(data); m != nil {
			return string(m[1])
		}
	}
	return "fixture"
}

// --- shared type helpers -------------------------------------------------

// typeOf returns the resolved type of an expression, or nil.
func (r *Repo) typeOf(e ast.Expr) types.Type {
	if r.Types == nil {
		return nil
	}
	if tv, ok := r.Types.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// namedOf unwraps pointers and aliases down to the *types.Named beneath
// a type, or nil.
func namedOf(t types.Type) *types.Named {
	for t != nil {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		case *types.Alias:
			t = types.Unalias(u)
		default:
			return nil
		}
	}
	return nil
}

// namedPath renders a named type as "import/path.Name" ("" when the
// type is not a named type or has no package).
func namedPath(t types.Type) string {
	n := namedOf(t)
	if n == nil || n.Obj() == nil {
		return ""
	}
	if n.Obj().Pkg() == nil {
		return n.Obj().Name()
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

// isType reports whether e resolves to the named type "path.Name"
// (pointers unwrapped).
func (r *Repo) isType(e ast.Expr, full string) bool {
	return namedPath(r.typeOf(e)) == full
}

// isContextType reports whether t is context.Context or implements it
// (the tracing span is itself a context).
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	if namedPath(t) == "context.Context" {
		return true
	}
	iface, _ := namedOf(t).Underlying().(*types.Interface)
	_ = iface
	return false
}

// calleeFunc resolves the function or method a call invokes, when it
// statically resolves to a declared function ("" otherwise): direct
// calls, package-qualified calls, and method calls on concrete
// receivers. Interface method calls do not resolve — which is exactly
// the fault-isolation boundary the lock analyzers rely on.
func (r *Repo) calleeFunc(call *ast.CallExpr) *types.Func {
	if r.Types == nil {
		return nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := r.Types.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := r.Types.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				// An interface method has no body to walk.
				if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
					return nil
				}
				return fn
			}
		}
		if fn, ok := r.Types.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// funcPosition returns the declaring position of fn inside the repo
// (zero Position if fn was not declared in the loaded forest).
func (r *Repo) funcDecl(fn *types.Func) *ast.FuncDecl {
	if fn == nil || r.FuncDecls == nil {
		return nil
	}
	return r.FuncDecls[fn]
}
