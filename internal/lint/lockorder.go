package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder enforces the repo's declared lock hierarchy and its
// lock-across-I/O contract.
//
// The hierarchy, outermost first, is the one DESIGN §14 declares:
//
//	1 Directory shard mu (dirShard, Directory)
//	2 SafeSystem mu
//	3 journal mu (Journal)
//	4 telemetry mu (Registry, CounterVec, GaugeVec, HistogramVec)
//
// Acquiring a lower-numbered (outer) lock while holding a
// higher-numbered (inner) one is a finding, whether the acquisition is
// textual or hidden behind a call: the analyzer resolves static calls
// with go/types and propagates "may acquire level N" facts over the
// call graph, so a journal function that reaches back into a
// SafeSystem method is caught even across files. Interface method
// calls do not resolve and deliberately stop propagation — the
// Persister seam between layers is the designed fault-isolation
// boundary, and its implementations are checked where they acquire
// their own locks. Same-level acquisitions (two SafeSystems) and
// TryLock acquisitions (which fail rather than deadlock) are exempt
// from the order check.
//
// Independently, holding any mutex — leveled or not — across blocking
// I/O (an fsync or a network operation, detected directly and through
// resolved calls) is a finding unless the function is anchored with
// //cpvet:lockheld <reason>. The journal holds its mu across fsync by
// design (the lock IS the durability serialization point); the anchor
// makes that decision, and its reason, part of the source text.
//
// The hierarchy is declared over bare type names so the golden
// fixtures can model the real shapes without importing the real
// packages; the names are unique within this module.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "lock acquisitions must follow the declared hierarchy (shard -> SafeSystem -> journal -> telemetry); no lock may be held across fsync/network I/O without //cpvet:lockheld",
	Run:  runLockOrder,
}

// lockHierarchy maps mutex-owning type names to their level in the
// declared order; lower acquires first (outermost).
var lockHierarchy = map[string]int{
	"dirShard":     1,
	"Directory":    1,
	"SafeSystem":   2,
	"Journal":      3,
	"Registry":     4,
	"CounterVec":   4,
	"GaugeVec":     4,
	"HistogramVec": 4,
}

// lockLevelName renders a level for messages.
func lockLevelName(level int) string {
	switch level {
	case 1:
		return "shard"
	case 2:
		return "SafeSystem"
	case 3:
		return "journal"
	case 4:
		return "telemetry"
	}
	return fmt.Sprintf("level %d", level)
}

// lockFacts holds the whole-repo fixpoint: which declared functions
// may acquire which hierarchy levels, and which perform blocking I/O.
type lockFacts struct {
	repo *Repo
	// acquires[fn] is the set of hierarchy levels fn may acquire,
	// directly or through resolved calls (TryLock excluded).
	acquires map[*types.Func]map[int]bool
	// io[fn] is "" or the kind of blocking I/O fn may perform
	// ("fsync", "network I/O"), directly or through resolved calls.
	io map[*types.Func]string
}

func runLockOrder(r *Repo) []Diagnostic {
	facts := computeLockFacts(r)
	var out []Diagnostic
	for _, f := range r.Files {
		netPkg, _ := importName(f, "net")
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			anchored := hasDirective(fd, lockheldVerb)
			forEachFuncBody(fd.Body, func(body *ast.BlockStmt) {
				out = append(out, facts.checkBody(body, netPkg, anchored)...)
			})
		}
	}
	return out
}

// computeLockFacts runs the call-graph fixpoint over every declared
// function in the forest.
func computeLockFacts(r *Repo) *lockFacts {
	facts := &lockFacts{
		repo:     r,
		acquires: make(map[*types.Func]map[int]bool),
		io:       make(map[*types.Func]string),
	}
	type declFile struct {
		fd     *ast.FuncDecl
		netPkg string
	}
	var decls []declFile
	objs := make(map[*ast.FuncDecl]*types.Func)
	for _, f := range r.Files {
		netPkg, _ := importName(f, "net")
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			decls = append(decls, declFile{fd, netPkg})
			if r.Types != nil {
				if obj, ok := r.Types.Defs[fd.Name].(*types.Func); ok {
					objs[fd] = obj
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			obj := objs[d.fd]
			if obj == nil {
				continue
			}
			levels := facts.acquires[obj]
			if levels == nil {
				levels = make(map[int]bool)
				facts.acquires[obj] = levels
			}
			before := len(levels)
			hadIO := facts.io[obj] != ""
			ast.Inspect(d.fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if recv, kind, _, ok := r.mutexCall(call); ok && kind == opLock {
					if lvl := lockHierarchy[r.lockOwner(recv)]; lvl > 0 {
						levels[lvl] = true
					}
					return true
				}
				if !hadIO {
					if kind := directIO(r, d.netPkg, call); kind != "" {
						facts.io[obj] = kind
					} else if callee := r.calleeFunc(call); callee != nil && callee != obj {
						if k := facts.io[callee]; k != "" {
							facts.io[obj] = k
						}
					}
				}
				if callee := r.calleeFunc(call); callee != nil && callee != obj {
					for lvl := range facts.acquires[callee] {
						levels[lvl] = true
					}
				}
				return true
			})
			if len(levels) > before || (!hadIO && facts.io[obj] != "") {
				changed = true
			}
		}
	}
	return facts
}

// directIO classifies a call as blocking I/O: a zero-argument .Sync()
// (the fsync idiom on os.File and faultfs.File alike), a method call
// on a net.Conn/net.Listener value, or a net dial/listen.
func directIO(r *Repo, netPkg string, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if sel.Sel.Name == "Sync" && len(call.Args) == 0 {
		return "fsync"
	}
	if netPkg != "" {
		if name, ok := pkgSelCall(call, netPkg); ok {
			switch {
			case strings.HasPrefix(name, "Dial"), strings.HasPrefix(name, "Listen"):
				return "network I/O"
			}
		}
	}
	switch namedPath(r.typeOf(sel.X)) {
	case "net.Conn", "net.TCPConn", "net.UnixConn", "net.Listener", "net.TCPListener":
		return "network I/O"
	}
	return ""
}

// checkBody reports order inversions and unanchored lock-across-I/O
// inside one function body.
func (facts *lockFacts) checkBody(body *ast.BlockStmt, netPkg string, anchored bool) []Diagnostic {
	r := facts.repo
	ops, _, handoffs, _ := r.collectLockOps(body)
	if len(ops) == 0 {
		return nil
	}
	var out []Diagnostic
	seenIO := make(map[token.Pos]bool) // one I/O finding per call site
	for i, acq := range ops {
		if acq.kind == opUnlock {
			continue
		}
		from, to := heldRegion(ops, i, handoffs, body.End())
		heldLevel := lockHierarchy[acq.owner]

		// Order: later textual acquisitions inside the region.
		if heldLevel > 0 {
			for j, other := range ops {
				if j == i || other.kind != opLock || other.pos <= from || other.pos >= to {
					continue
				}
				if lvl := lockHierarchy[other.owner]; lvl > 0 && lvl < heldLevel {
					out = append(out, Diagnostic{r.Fset.Position(other.pos), "lockorder",
						fmt.Sprintf("acquires the %s lock (%s, level %d) while holding the %s lock (%s, level %d); the declared order is shard -> SafeSystem -> journal -> telemetry",
							lockLevelName(lvl), other.recv, lvl, lockLevelName(heldLevel), acq.recv, heldLevel)})
				}
			}
		}

		// Calls inside the region: hidden acquisitions and blocking I/O.
		walkShallow(body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok || call.Pos() <= from || call.Pos() >= to {
				return
			}
			if _, _, _, isMutex := r.mutexCall(call); isMutex {
				return
			}
			callee := r.calleeFunc(call)
			if heldLevel > 0 && callee != nil {
				var inverted []int
				for lvl := range facts.acquires[callee] {
					if lvl < heldLevel {
						inverted = append(inverted, lvl)
					}
				}
				if len(inverted) > 0 {
					sort.Ints(inverted)
					out = append(out, Diagnostic{r.Fset.Position(call.Pos()), "lockorder",
						fmt.Sprintf("calls %s, which acquires the %s lock (level %d), while holding the %s lock (%s, level %d); the declared order is shard -> SafeSystem -> journal -> telemetry",
							callee.Name(), lockLevelName(inverted[0]), inverted[0], lockLevelName(heldLevel), acq.recv, heldLevel)})
				}
			}
			if anchored || seenIO[call.Pos()] {
				return
			}
			kind := directIO(r, netPkg, call)
			via := ""
			if kind == "" && callee != nil {
				if k := facts.io[callee]; k != "" {
					kind, via = k, fmt.Sprintf(" (via %s)", callee.Name())
				}
			}
			if kind != "" {
				seenIO[call.Pos()] = true
				out = append(out, Diagnostic{r.Fset.Position(call.Pos()), "lockorder",
					fmt.Sprintf("performs %s%s while holding %s; release the lock first, or anchor the function with //cpvet:lockheld <reason>",
						kind, via, acq.recv)})
			}
		})
	}
	return out
}
