package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// ErrWrap enforces the PR 4 error-classification contract: when
// fmt.Errorf embeds an error value, the verb must be %w, so
// errors.Is/errors.As can walk the chain (deadline vs. cancel
// classification in httpapi, ErrWedged and persist-cause detection in
// the journal). A %v or %s flattens the error to text and silently
// breaks every errors.Is downstream.
//
// Without type information the pass recognizes error values by the
// repo's naming convention: identifiers or selector fields named err
// or ending in err/Err/Error, and calls to an Err() method (ctx.Err(),
// r.Context().Err()). Formats using explicit argument indexes (%[1]v)
// are skipped rather than misattributed.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf must wrap error values with %w, not %v/%s",
	Run:  runErrWrap,
}

func runErrWrap(r *Repo) []Diagnostic {
	var out []Diagnostic
	for _, f := range r.Files {
		fmtName, ok := importName(f, "fmt")
		if !ok {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			if fn, ok := pkgSelCall(call, fmtName); !ok || fn != "Errorf" {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			vs, ok := formatVerbs(format)
			if !ok {
				return true
			}
			args := call.Args[1:]
			for i, v := range vs {
				if i >= len(args) {
					break
				}
				if (v == 'v' || v == 's') && errorish(args[i]) {
					out = append(out, Diagnostic{r.Fset.Position(args[i].Pos()), "errwrap",
						fmt.Sprintf("error value %s formatted with %%%c; use %%w so errors.Is/errors.As keep working", exprText(args[i]), v)})
				}
			}
			return true
		})
	}
	return out
}

// formatVerbs returns one byte per argument-consuming verb in order:
// the verb letter, or '*' for a width/precision argument. ok is false
// for formats the simple scanner cannot attribute (explicit argument
// indexes).
func formatVerbs(format string) (verbs []byte, ok bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// flags
		for i < len(format) && strings.ContainsRune("+-# 0", rune(format[i])) {
			i++
		}
		// width
		if i < len(format) && format[i] == '*' {
			verbs = append(verbs, '*')
			i++
		} else {
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
		}
		// precision
		if i < len(format) && format[i] == '.' {
			i++
			if i < len(format) && format[i] == '*' {
				verbs = append(verbs, '*')
				i++
			} else {
				for i < len(format) && format[i] >= '0' && format[i] <= '9' {
					i++
				}
			}
		}
		if i >= len(format) {
			break
		}
		switch c := format[i]; {
		case c == '%':
			// literal percent, no argument
		case c == '[':
			return nil, false
		default:
			verbs = append(verbs, c)
		}
	}
	return verbs, true
}

// errorish reports whether the expression is, by naming convention, an
// error value.
func errorish(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.Ident:
		return errName(v.Name)
	case *ast.SelectorExpr:
		return errName(v.Sel.Name)
	case *ast.CallExpr:
		if sel, ok := v.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Err" {
			return true
		}
	}
	return false
}

func errName(name string) bool {
	n := strings.ToLower(name)
	return n == "err" || strings.HasSuffix(n, "err") || strings.HasSuffix(n, "error")
}

// exprText renders a small expression for the diagnostic message.
func exprText(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprText(v.X) + "." + v.Sel.Name
	case *ast.CallExpr:
		return exprText(v.Fun) + "()"
	}
	return "argument"
}
