package lint

import (
	"go/ast"
)

// StructErr enforces the PR 1 error contract: httpapi handlers answer
// every failure through the structured writeError/writeJSON path
// (JSON {"error","code"} bodies with machine-readable codes), never
// raw http.Error or a bare w.WriteHeader. The analyzer is scoped to
// package httpapi, where the contract lives.
//
// One escape hatch is built in: delegation through an embedded
// ResponseWriter (x.ResponseWriter.WriteHeader(...)) is allowed, so a
// status-recording wrapper can implement the interface. The single
// blessed raw WriteHeader call inside writeJSON itself carries a
// //cpvet:ignore with its reason.
var StructErr = &Analyzer{
	Name: "structerr",
	Doc:  "httpapi must answer errors via writeError/writeJSON, never raw http.Error or WriteHeader",
	Run:  runStructErr,
}

func runStructErr(r *Repo) []Diagnostic {
	var out []Diagnostic
	for _, f := range r.Files {
		if f.AST.Name.Name != "httpapi" {
			continue
		}
		httpName, hasHTTP := importName(f, "net/http")
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if hasHTTP {
				if fn, ok := pkgSelCall(call, httpName); ok && fn == "Error" {
					out = append(out, Diagnostic{r.Fset.Position(call.Pos()), "structerr",
						"http.Error writes a plain-text body; answer through writeError so clients get the structured {error, code} JSON"})
					return true
				}
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "WriteHeader" {
				return true
			}
			// Embedded-delegation form x.ResponseWriter.WriteHeader(code)
			// is the one legitimate wrapper pattern.
			if inner, ok := sel.X.(*ast.SelectorExpr); ok && inner.Sel.Name == "ResponseWriter" {
				return true
			}
			out = append(out, Diagnostic{r.Fset.Position(call.Pos()), "structerr",
				"raw WriteHeader bypasses the structured error path; respond via writeJSON/writeError"})
			return true
		})
	}
	return out
}
