// Package lint implements cpvet, the repository's static-analysis
// pass. It enforces the cross-cutting service-layer contracts the
// serving PRs introduced — structured HTTP errors, slog-only logging,
// cooperative cancellation in scan loops, cp_* telemetry naming,
// deterministic fault-injection paths, and %w error wrapping — so the
// invariants survive refactors without depending on reviewer
// vigilance.
//
// The pass is stdlib-only (go/ast, go/parser, go/token, go/types): it
// parses every non-test .go file under the module root, resolves types
// across the whole forest (see types.go), and runs the analyzers over
// it. The original seven analyzers are purely syntactic; the
// concurrency-contract analyzers added in PR 10 (lockorder,
// deferunlock, goroutinelife, allocbudget) consume the type
// information and degrade to documented syntactic heuristics when an
// expression does not resolve (fixtures, broken builds).
//
// Directives. Five magic comments steer the pass:
//
//	//cpvet:ignore <analyzer> <reason>   suppress findings on this or the next line
//	//cpvet:scanloop                     marks a hot-path scan function (ctxloop)
//	//cpvet:deterministic                marks a replay-deterministic function (nondeterminism)
//	//cpvet:lockheld <reason>            function doc: this function intentionally holds a lock across fsync/network I/O (lockorder)
//	//cpvet:hotpath allocs=<N>           function doc: allocation budget, enforced statically (allocbudget) and at runtime (AllocsPerRun conformance)
//
// An ignore directive without a reason is itself a finding: every
// suppression must say why the contract does not apply. Likewise a
// lockheld anchor without a reason and a hotpath anchor without a
// parseable allocs=<N> budget.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Diagnostic is one finding, printed as "file:line: analyzer: message".
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// File is one parsed source file.
type File struct {
	// Path is the slash-separated path relative to the analyzed root.
	Path string
	AST  *ast.File
}

// Repo is the parsed forest the analyzers run over, plus best-effort
// type information resolved across all of its packages.
type Repo struct {
	Fset  *token.FileSet
	Files []*File

	// ModPath is the module path from go.mod ("fixture" when the
	// analyzed root has none, as golden-fixture directories do).
	ModPath string
	// Types holds the merged go/types resolution for every package in
	// the forest. Never nil after Load, but entries are best-effort:
	// fixtures that do not compile resolve partially.
	Types *types.Info
	// FuncDecls maps each declared function or method object to its
	// declaration, so analyzers can walk from a resolved call site into
	// the callee's body.
	FuncDecls map[*types.Func]*ast.FuncDecl
}

// Analyzer is one named check over the whole repository. Run returns
// raw findings; the driver applies //cpvet:ignore suppressions.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Repo) []Diagnostic
}

// All returns the full analyzer set, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		StructErr,
		SlogOnly,
		CtxLoop,
		MetricNames,
		NonDeterminism,
		ErrWrap,
		Spanend,
		LockOrder,
		DeferUnlock,
		GoroutineLife,
		AllocBudget,
	}
}

// Load parses every non-test .go file under root. Directories named
// testdata or vendor and hidden directories are skipped, as are
// _test.go files: the contracts govern production code, and tests
// routinely violate them on purpose (raw log output, fake metric
// names, wall-clock assertions).
func Load(root string) (*Repo, error) {
	repo, err := LoadSyntax(root)
	if err != nil {
		return nil, err
	}
	repo.typecheck(root)
	return repo, nil
}

// LoadSyntax is Load without the whole-module type resolution: parse
// and comments only. Directive extraction (Hotpaths, the conformance
// test's anchor inventory) needs nothing more, and skipping the
// typecheck keeps those callers fast.
func LoadSyntax(root string) (*Repo, error) {
	fset := token.NewFileSet()
	repo := &Repo{Fset: fset}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		f, err := parser.ParseFile(fset, rel, src, parser.ParseComments)
		if err != nil {
			return err
		}
		repo.Files = append(repo.Files, &File{Path: rel, AST: f})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(repo.Files, func(i, j int) bool { return repo.Files[i].Path < repo.Files[j].Path })
	return repo, nil
}

// Run executes the analyzers over the repo, applies suppressions, and
// returns the surviving findings sorted by position. Malformed
// //cpvet directives are reported under the pseudo-analyzer "cpvet"
// and cannot be suppressed.
func Run(repo *Repo, analyzers []*Analyzer) []Diagnostic {
	ignores, diags := collectDirectives(repo)
	for _, a := range analyzers {
		for _, d := range a.Run(repo) {
			if !suppressed(ignores, d) {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// ignoreDirective is one parsed //cpvet:ignore comment.
type ignoreDirective struct {
	file     string
	line     int
	analyzer string
}

const (
	directivePrefix = "//cpvet:"
	ignoreVerb      = "ignore"
	scanloopVerb    = "scanloop"
	deterministic   = "deterministic"
	lockheldVerb    = "lockheld"
	hotpathVerb     = "hotpath"
)

// collectDirectives parses every //cpvet: comment in the repo,
// returning the valid ignore directives plus diagnostics for
// malformed ones (unknown verb, missing analyzer, missing reason).
func collectDirectives(repo *Repo) ([]ignoreDirective, []Diagnostic) {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	var ignores []ignoreDirective
	var diags []Diagnostic
	for _, f := range repo.Files {
		for _, cg := range f.AST.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := repo.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				verb, args, _ := strings.Cut(rest, " ")
				switch verb {
				case scanloopVerb, deterministic:
					// Anchors; consumed by their analyzers. Trailing
					// prose is allowed as a note.
				case lockheldVerb:
					if strings.TrimSpace(args) == "" {
						diags = append(diags, Diagnostic{pos, "cpvet",
							"//cpvet:lockheld is missing the mandatory reason"})
					}
				case hotpathVerb:
					if _, err := parseAllocBudget(args); err != nil {
						diags = append(diags, Diagnostic{pos, "cpvet",
							fmt.Sprintf("//cpvet:hotpath %v", err)})
					}
				case ignoreVerb:
					analyzer, reason, _ := strings.Cut(strings.TrimSpace(args), " ")
					switch {
					case analyzer == "":
						diags = append(diags, Diagnostic{pos, "cpvet",
							"//cpvet:ignore needs an analyzer name and a reason"})
					case !known[analyzer]:
						diags = append(diags, Diagnostic{pos, "cpvet",
							fmt.Sprintf("//cpvet:ignore names unknown analyzer %q", analyzer)})
					case strings.TrimSpace(reason) == "":
						diags = append(diags, Diagnostic{pos, "cpvet",
							fmt.Sprintf("//cpvet:ignore %s is missing the mandatory reason", analyzer)})
					default:
						ignores = append(ignores, ignoreDirective{
							file: f.Path, line: pos.Line, analyzer: analyzer,
						})
					}
				default:
					diags = append(diags, Diagnostic{pos, "cpvet",
						fmt.Sprintf("unknown directive //cpvet:%s (want ignore, scanloop, deterministic, lockheld, or hotpath)", verb)})
				}
			}
		}
	}
	return ignores, diags
}

// suppressed reports whether an ignore directive for the diagnostic's
// analyzer sits on the same line or the line directly above it.
func suppressed(ignores []ignoreDirective, d Diagnostic) bool {
	for _, ig := range ignores {
		if ig.file == d.Pos.Filename && ig.analyzer == d.Analyzer &&
			(ig.line == d.Pos.Line || ig.line == d.Pos.Line-1) {
			return true
		}
	}
	return false
}

// --- shared AST helpers -------------------------------------------------

// importName returns the local name under which the file imports path
// ("" and false if it does not). An unnamed import of "net/http" is
// "http"; a named import is its alias.
func importName(f *File, path string) (string, bool) {
	for _, imp := range f.AST.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name, true
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		return p, true
	}
	return "", false
}

// hasDirective reports whether the function's doc comment contains the
// //cpvet:<verb> anchor.
func hasDirective(fd *ast.FuncDecl, verb string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == directivePrefix+verb || strings.HasPrefix(c.Text, directivePrefix+verb+" ") {
			return true
		}
	}
	return false
}

// directiveArgs returns the arguments of the //cpvet:<verb> anchor in
// the function's doc comment ("", false when absent).
func directiveArgs(fd *ast.FuncDecl, verb string) (string, bool) {
	if fd.Doc == nil {
		return "", false
	}
	for _, c := range fd.Doc.List {
		if c.Text == directivePrefix+verb {
			return "", true
		}
		if strings.HasPrefix(c.Text, directivePrefix+verb+" ") {
			return strings.TrimSpace(strings.TrimPrefix(c.Text, directivePrefix+verb+" ")), true
		}
	}
	return "", false
}

// parseAllocBudget parses the "allocs=<N>" argument of a
// //cpvet:hotpath anchor. Trailing prose after the budget is allowed
// as a note.
func parseAllocBudget(args string) (int, error) {
	first, _, _ := strings.Cut(strings.TrimSpace(args), " ")
	val, ok := strings.CutPrefix(first, "allocs=")
	if !ok {
		return 0, fmt.Errorf("needs an allocs=<N> budget, got %q", strings.TrimSpace(args))
	}
	n, err := strconv.Atoi(val)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("allocs budget %q is not a non-negative integer", val)
	}
	return n, nil
}

// Hotpath is one //cpvet:hotpath anchor found in the repo; the runtime
// conformance test mirrors each with testing.AllocsPerRun.
type Hotpath struct {
	File   string // repo-relative path of the declaring file
	Func   string // "<dir>.<recv>.<name>", e.g. "internal/querytree.(*Cache).Get"
	Allocs int    // declared budget
}

// Hotpaths returns every well-formed //cpvet:hotpath anchor in the
// repo, sorted by qualified function name.
func Hotpaths(r *Repo) []Hotpath {
	var out []Hotpath
	for _, f := range r.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			args, ok := directiveArgs(fd, hotpathVerb)
			if !ok {
				continue
			}
			n, err := parseAllocBudget(args)
			if err != nil {
				continue // reported by collectDirectives
			}
			out = append(out, Hotpath{File: f.Path, Func: qualifiedFuncName(f.Path, fd), Allocs: n})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Func < out[j].Func })
	return out
}

// qualifiedFuncName renders a stable identity for a declared function:
// the declaring directory plus receiver plus name.
func qualifiedFuncName(path string, fd *ast.FuncDecl) string {
	dir := filepath.ToSlash(filepath.Dir(path))
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		recv := types.ExprString(fd.Recv.List[0].Type)
		if strings.HasPrefix(recv, "*") {
			recv = "(" + recv + ")"
		}
		name = recv + "." + name
	}
	return dir + "." + name
}

// pkgSelCall matches a call of the form pkg.Fn(...) where pkg is the
// local name of an imported package, returning the called name.
func pkgSelCall(call *ast.CallExpr, pkg string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != pkg {
		return "", false
	}
	return sel.Sel.Name, true
}
