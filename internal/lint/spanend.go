package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// Spanend enforces the PR 7 tracing contract: every span obtained from
// tracing.Start or a tracer's StartRoot must be ended on every path,
// or its trace never finalizes — the root span stays open, the request
// trace is never retained, and child spans accumulate on a trace that
// cannot complete. A span must therefore either be closed by a defer
// (a `defer sp.End()` statement, or any deferred closure that calls
// sp.End()) or be ended explicitly before every return that follows
// the Start in the same function body.
//
// The check is syntactic and per-function-body: nested function
// literals are analyzed as their own bodies, and a span variable is
// tracked by name (the last left-hand side of the Start assignment).
// Assigning the span to the blank identifier is itself a finding — a
// span nobody can End is always a leak.
var Spanend = &Analyzer{
	Name: "spanend",
	Doc:  "spans from tracing.Start/StartRoot/StartRootAt must be ended (End or EndAfter) by defer or before every later return",
	Run:  runSpanend,
}

func runSpanend(r *Repo) []Diagnostic {
	var out []Diagnostic
	for _, f := range r.Files {
		tracingPkg, _ := importName(f, "contextpref/internal/tracing")
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			forEachFuncBody(fd.Body, func(body *ast.BlockStmt) {
				out = append(out, checkSpanBody(r, body, tracingPkg)...)
			})
		}
	}
	return out
}

// forEachFuncBody visits body and the body of every function literal
// under it, calling fn once per body. Each body is analyzed on its
// own: a return inside a closure does not leave the enclosing
// function, so span bookkeeping must not cross the boundary.
func forEachFuncBody(body *ast.BlockStmt, fn func(*ast.BlockStmt)) {
	fn(body)
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
			forEachFuncBody(lit.Body, fn)
			return false
		}
		return true
	})
}

// spanStart is one Start/StartRoot assignment in a function body.
type spanStart struct {
	name string
	pos  token.Pos
	call string // "tracing.Start" or "StartRoot", for the message
}

// checkSpanBody applies the span-lifecycle rule to one function body,
// ignoring nested function literals (they are visited separately),
// except that deferred closures count as End sites: a span ended in a
// defer is ended on every path.
func checkSpanBody(r *Repo, body *ast.BlockStmt, tracingPkg string) []Diagnostic {
	var starts []spanStart
	var returns []token.Pos
	ends := map[string][]token.Pos{} // inline v.End() calls by span name
	deferred := map[string]bool{}    // v.End() somewhere under a defer

	walkShallow(body, func(n ast.Node) {
		switch s := n.(type) {
		case *ast.AssignStmt:
			call, callName := spanStartCall(s, tracingPkg)
			if call == nil {
				return
			}
			name := "_"
			if id, ok := s.Lhs[len(s.Lhs)-1].(*ast.Ident); ok {
				name = id.Name
			}
			starts = append(starts, spanStart{name: name, pos: s.Pos(), call: callName})
		case *ast.ReturnStmt:
			returns = append(returns, s.Pos())
		case *ast.DeferStmt:
			// Anything End()ed under a defer — directly or inside a
			// deferred closure — runs on every exit path.
			ast.Inspect(s, func(m ast.Node) bool {
				if v, ok := endCallReceiver(m); ok {
					deferred[v] = true
				}
				return true
			})
		case *ast.ExprStmt:
			if v, ok := endCallReceiver(s.X); ok {
				ends[v] = append(ends[v], s.Pos())
			}
		}
	})

	var out []Diagnostic
	for _, st := range starts {
		if st.name == "_" {
			out = append(out, Diagnostic{r.Fset.Position(st.pos), "spanend",
				fmt.Sprintf("span from %s is assigned to the blank identifier and can never be End()ed", st.call)})
			continue
		}
		if deferred[st.name] {
			continue
		}
		leaks := false
		after := 0
		for _, ret := range returns {
			if ret <= st.pos {
				continue
			}
			after++
			if !endedBetween(ends[st.name], st.pos, ret) {
				leaks = true
				break
			}
		}
		if after == 0 && !endedBetween(ends[st.name], st.pos, token.Pos(1<<60)) {
			// No return after the Start: the body falls off its end, so
			// an End must still appear somewhere after the Start.
			leaks = true
		}
		if leaks {
			out = append(out, Diagnostic{r.Fset.Position(st.pos), "spanend",
				fmt.Sprintf("span %q from %s is not End()ed on every path; defer %s.End() or End it before each return",
					st.name, st.call, st.name)})
		}
	}
	return out
}

// walkShallow visits every node under body without descending into
// function literals.
func walkShallow(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// spanStartCall reports whether the assignment's sole RHS is a span
// start: tracing.Start(...) (pkg-qualified by the file's import name)
// or any <expr>.StartRoot(...) (StartRoot is a *tracing.Tracer method;
// the name is unique to the tracing API in this module).
func spanStartCall(s *ast.AssignStmt, tracingPkg string) (*ast.CallExpr, string) {
	if len(s.Rhs) != 1 || len(s.Lhs) != 2 {
		return nil, ""
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	switch sel.Sel.Name {
	case "Start":
		if id, ok := sel.X.(*ast.Ident); ok && tracingPkg != "" && id.Name == tracingPkg {
			return call, "tracing.Start"
		}
	case "StartRoot", "StartRootAt":
		return call, sel.Sel.Name
	}
	return nil, ""
}

// endCallReceiver matches a span-ending call — v.End() or
// v.EndAfter(d) — on a plain identifier receiver, returning the
// identifier name.
func endCallReceiver(n ast.Node) (string, bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "End":
		if len(call.Args) != 0 {
			return "", false
		}
	case "EndAfter":
		if len(call.Args) != 1 {
			return "", false
		}
	default:
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	return id.Name, true
}

// endedBetween reports whether any End position falls strictly between
// start and limit.
func endedBetween(ends []token.Pos, start, limit token.Pos) bool {
	for _, e := range ends {
		if e > start && e < limit {
			return true
		}
	}
	return false
}
