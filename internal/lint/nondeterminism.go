package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// NonDeterminism enforces the PR 3/4 replay contract: code that tests
// replay deterministically — the chaos middleware (httpapi/chaos.go),
// the fault-injecting filesystem (internal/faultfs), and the journal
// recovery path — must not consult the wall clock (time.Now,
// time.Since) or the global math/rand source. Chaos and fault
// schedules draw from an explicitly seeded *rand.Rand so the same
// seed replays the same faults; recovery decisions depend only on the
// bytes on disk.
//
// Scope: files named in deterministicFiles (by relative path or
// prefix) plus any function anchored with //cpvet:deterministic.
// Constructing a seeded source (rand.New, rand.NewSource) is the
// approved pattern and is not flagged.
var NonDeterminism = &Analyzer{
	Name: "nondeterminism",
	Doc:  "no time.Now()/global math/rand in chaos, faultfs, or journal-recovery code",
	Run:  runNonDeterminism,
}

// deterministicFiles are the replay-deterministic regions by path; an
// entry ending in "/" matches the whole directory.
var deterministicFiles = []string{
	"httpapi/chaos.go",
	"internal/faultfs/",
}

func deterministicPath(path string) bool {
	for _, p := range deterministicFiles {
		if strings.HasSuffix(p, "/") && strings.HasPrefix(path, p) {
			return true
		}
		if path == p {
			return true
		}
	}
	return false
}

func runNonDeterminism(r *Repo) []Diagnostic {
	var out []Diagnostic
	for _, f := range r.Files {
		if deterministicPath(f.Path) {
			out = append(out, checkDeterministic(r, f, f.AST)...)
			continue
		}
		for _, decl := range f.AST.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && hasDirective(fd, deterministic) && fd.Body != nil {
				out = append(out, checkDeterministic(r, f, fd.Body)...)
			}
		}
	}
	return out
}

// randAllowed are math/rand calls that build a seeded source — the
// approved alternative to the global functions.
var randAllowed = map[string]bool{"New": true, "NewSource": true}

func checkDeterministic(r *Repo, f *File, root ast.Node) []Diagnostic {
	var out []Diagnostic
	timeName, hasTime := importName(f, "time")
	randName, hasRand := importName(f, "math/rand")
	if !hasRand {
		randName, hasRand = importName(f, "math/rand/v2")
	}
	if !hasTime && !hasRand {
		return nil
	}
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if hasTime {
			if fn, ok := pkgSelCall(call, timeName); ok && (fn == "Now" || fn == "Since") {
				out = append(out, Diagnostic{r.Fset.Position(call.Pos()), "nondeterminism",
					fmt.Sprintf("time.%s in a deterministic replay path; timestamps here break seeded replay — inject the value or drop it", fn)})
				return true
			}
		}
		if hasRand {
			if fn, ok := pkgSelCall(call, randName); ok && !randAllowed[fn] {
				out = append(out, Diagnostic{r.Fset.Position(call.Pos()), "nondeterminism",
					fmt.Sprintf("global math/rand %s() in a deterministic replay path; draw from an explicitly seeded *rand.Rand", fn)})
			}
		}
		return true
	})
	return out
}
