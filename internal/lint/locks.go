package lint

// Shared lock model for the concurrency-contract analyzers (lockorder,
// deferunlock). Both need the same two judgments about an expression:
// "is this call a mutex operation, and on which lock?" and "over which
// statement range is that lock held?".
//
// A mutex operation is a call X.Lock() / X.RLock() / X.Unlock() /
// X.RUnlock() / X.TryLock() / X.TryRLock() whose receiver X resolves to
// sync.Mutex or sync.RWMutex. When type information is unavailable
// (golden fixtures are deliberately fragmentary) the analyzers fall
// back to the repo's naming convention: a receiver whose final selector
// component is "mu" (or a *Mu-suffixed identifier) is assumed to be a
// mutex. Locks are identified intra-procedurally by the rendered
// receiver expression ("s.mu", "sh.mu"), which is how humans match a
// Lock to its Unlock in review too.
//
// The held region of an acquire is approximated positionally, the same
// way spanend approximates span lifetimes: from the acquire to the
// earliest later inline release of the same lock (matching read/write
// kind), or to the end of the function body when the release is
// deferred or missing. Returning the unlock method value itself
// (`return s.mu.Unlock, nil` — the rlock/wlock idiom) counts as a
// release at that return: responsibility is handed to the caller.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockOpKind classifies one mutex call.
type lockOpKind int

const (
	opLock lockOpKind = iota
	opUnlock
	opTryLock
)

// lockOp is one mutex operation found in a function body.
type lockOp struct {
	recv  string     // rendered receiver expression, e.g. "s.mu"
	owner string     // bare name of the named type owning the mutex field ("" when unresolved or not a field)
	kind  lockOpKind //
	read  bool       // RLock/RUnlock/TryRLock
	pos   token.Pos
	// ifStmt is set for TryLock operations appearing as an if condition
	// (the two idioms the repo uses); nil otherwise.
	ifStmt  *ast.IfStmt
	negated bool // the TryLock is under a ! in the if condition
}

// mutexMethods maps the sync mutex method set to (kind, read).
var mutexMethods = map[string]struct {
	kind lockOpKind
	read bool
}{
	"Lock":     {opLock, false},
	"RLock":    {opLock, true},
	"Unlock":   {opUnlock, false},
	"RUnlock":  {opUnlock, true},
	"TryLock":  {opTryLock, false},
	"TryRLock": {opTryLock, true},
}

// mutexCall reports whether call is a mutex operation, returning the
// receiver expression and operation classification.
func (r *Repo) mutexCall(call *ast.CallExpr) (recv ast.Expr, kind lockOpKind, read bool, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return nil, 0, false, false
	}
	m, isMutexMethod := mutexMethods[sel.Sel.Name]
	if !isMutexMethod {
		return nil, 0, false, false
	}
	if !r.isMutexExpr(sel.X) {
		return nil, 0, false, false
	}
	return sel.X, m.kind, m.read, true
}

// isMutexExpr reports whether e is a sync.Mutex or sync.RWMutex — by
// resolved type when available, by the repo's "mu" naming convention
// otherwise.
func (r *Repo) isMutexExpr(e ast.Expr) bool {
	switch namedPath(r.typeOf(e)) {
	case "sync.Mutex", "sync.RWMutex":
		return true
	}
	if r.typeOf(e) != nil {
		return false // resolved to something that is not a mutex
	}
	name := ""
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	}
	return name == "mu" || strings.HasSuffix(name, "Mu")
}

// lockOwner returns the bare name of the named type that owns the
// mutex field ("" for package-level or unresolved locks): for "s.mu"
// it is the type of s. The lock hierarchy is declared over these bare
// names so golden fixtures can model the real types without importing
// the real packages; the names are unique within this module.
func (r *Repo) lockOwner(recv ast.Expr) string {
	sel, ok := ast.Unparen(recv).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	n := namedOf(r.typeOf(sel.X))
	if n == nil || n.Obj() == nil {
		return ""
	}
	return n.Obj().Name()
}

// collectLockOps walks one function body (not descending into function
// literals) and returns its mutex operations in source order, plus the
// set of lock keys released by a defer ("recv\x00R"-keyed) and the
// positions of return statements that hand off an unlock method value
// per lock key.
func (r *Repo) collectLockOps(body *ast.BlockStmt) (ops []lockOp, deferred map[string]bool, handoffs map[string][]token.Pos, returns []token.Pos) {
	deferred = make(map[string]bool)
	handoffs = make(map[string][]token.Pos)
	// TryLock calls matched as if-conditions, so the ExprStmt pass
	// below does not double-count them.
	inCond := make(map[*ast.CallExpr]bool)
	walkShallow(body, func(n ast.Node) {
		switch s := n.(type) {
		case *ast.IfStmt:
			cond := ast.Unparen(s.Cond)
			neg := false
			if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
				cond, neg = ast.Unparen(u.X), true
			}
			call, ok := cond.(*ast.CallExpr)
			if !ok {
				return
			}
			if recv, kind, read, ok := r.mutexCall(call); ok && kind == opTryLock {
				inCond[call] = true
				ops = append(ops, lockOp{
					recv: types.ExprString(recv), owner: r.lockOwner(recv),
					kind: opTryLock, read: read, pos: s.Pos(), ifStmt: s, negated: neg,
				})
			}
		case *ast.DeferStmt:
			ast.Inspect(s, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if recv, kind, read, ok := r.mutexCall(call); ok && kind == opUnlock {
						deferred[lockKey(types.ExprString(recv), read)] = true
					}
				}
				return true
			})
		case *ast.ReturnStmt:
			returns = append(returns, s.Pos())
			for _, res := range s.Results {
				if sel, ok := ast.Unparen(res).(*ast.SelectorExpr); ok {
					if m, isMutex := mutexMethods[sel.Sel.Name]; isMutex && m.kind == opUnlock && r.isMutexExpr(sel.X) {
						key := lockKey(types.ExprString(sel.X), m.read)
						handoffs[key] = append(handoffs[key], s.Pos())
					}
				}
			}
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok || inCond[call] {
				return
			}
			if recv, kind, read, ok := r.mutexCall(call); ok {
				ops = append(ops, lockOp{
					recv: types.ExprString(recv), owner: r.lockOwner(recv),
					kind: kind, read: read, pos: s.Pos(),
				})
			}
		case *ast.CallExpr:
			// An immediately-invoked function literal runs synchronously,
			// so a defer inside it fires before the enclosing body
			// continues: record its unlocks (deferred or inline) as
			// inline releases at the call site. The directory's
			// create-user path uses this to scope the shard lock to a
			// closure (`sys, err := func() { defer sh.mu.Unlock(); ... }()`).
			lit, ok := s.Fun.(*ast.FuncLit)
			if !ok {
				return
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if recv, kind, read, ok := r.mutexCall(call); ok && kind == opUnlock {
						ops = append(ops, lockOp{
							recv: types.ExprString(recv), owner: r.lockOwner(recv),
							kind: opUnlock, read: read, pos: s.Pos(),
						})
						return false
					}
				}
				return true
			})
		}
	})
	return ops, deferred, handoffs, returns
}

// lockKey joins a receiver expression and read-ness into the map key
// both analyzers share.
func lockKey(recv string, read bool) string {
	if read {
		return recv + "\x00R"
	}
	return recv
}

// heldRegion computes the statement range over which the acquire at
// ops[i] is held: from the acquire to the earliest later inline
// release or handoff return of the same lock, or to end (the end of
// the body) when it is released by defer or not at all. Negated
// if-condition TryLocks are held only from the end of their if
// statement (the failure branch returns without the lock).
func heldRegion(ops []lockOp, i int, handoffs map[string][]token.Pos, end token.Pos) (from, to token.Pos) {
	acq := ops[i]
	from = acq.pos
	if acq.kind == opTryLock && acq.ifStmt != nil && acq.negated {
		from = acq.ifStmt.End()
	}
	to = end
	key := lockKey(acq.recv, acq.read)
	for _, op := range ops {
		if op.kind == opUnlock && op.pos > from && op.pos < to && lockKey(op.recv, op.read) == key {
			to = op.pos
		}
	}
	for _, h := range handoffs[key] {
		if h > from && h < to {
			to = h
		}
	}
	return from, to
}
