package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// DeferUnlock enforces the release discipline on every mutex
// acquisition: a Lock/RLock must be released by a defer (directly or
// inside a deferred closure), released inline before every later
// return and before the body falls off its end, or handed off to the
// caller by returning the unlock method value (`return s.mu.Unlock,
// nil` — the rlock/wlock idiom, where the caller defers the returned
// func). The try-lock idioms from shard parking are understood:
//
//	if !s.mu.TryLock() { return false }   // failure branch exits unlocked
//	defer s.mu.Unlock()                   // success path defers
//
//	if s.mu.TryRLock() { ...; s.mu.RUnlock() }  // release inside the hit branch
//
// A negated TryLock is held only after its if statement; a positive
// TryLock must release inside the guarded branch. TryLock results
// assigned to variables are not tracked (no such idiom exists in this
// repo); findings name the lock so the fix is local.
//
// Like the rest of the suite the check is per function body: function
// literals are analyzed as their own bodies, because a return inside a
// closure does not leave the enclosing function. Locks are matched by
// rendered receiver expression and read/write kind (Lock pairs with
// Unlock, RLock with RUnlock), by resolved sync.Mutex/RWMutex type
// when available and by the "mu" naming convention in fixtures.
var DeferUnlock = &Analyzer{
	Name: "deferunlock",
	Doc:  "every Lock/RLock must be released by defer, on every return path, or by handing the unlock method value to the caller",
	Run:  runDeferUnlock,
}

func runDeferUnlock(r *Repo) []Diagnostic {
	var out []Diagnostic
	for _, f := range r.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			forEachFuncBody(fd.Body, func(body *ast.BlockStmt) {
				out = append(out, checkUnlockBody(r, body)...)
			})
		}
	}
	return out
}

func checkUnlockBody(r *Repo, body *ast.BlockStmt) []Diagnostic {
	ops, deferred, handoffs, returns := r.collectLockOps(body)
	var out []Diagnostic
	for i, acq := range ops {
		if acq.kind == opUnlock {
			continue
		}
		key := lockKey(acq.recv, acq.read)
		verb := unlockName(acq.read)

		// Positive if-condition TryLock: the lock exists only inside the
		// guarded branch, so the release must be in there.
		if acq.kind == opTryLock && acq.ifStmt != nil && !acq.negated {
			if !branchReleases(r, acq.ifStmt.Body, acq.recv, acq.read) {
				out = append(out, Diagnostic{r.Fset.Position(acq.pos), "deferunlock",
					fmt.Sprintf("TryLock on %s succeeds into a branch that does not %s; release inside the guarded branch", acq.recv, verb)})
			}
			continue
		}
		if acq.kind == opTryLock && acq.ifStmt == nil {
			// Assigned TryLock results have no idiom here; skip rather
			// than guess (see the analyzer doc).
			continue
		}
		if deferred[key] {
			continue
		}
		from, _ := heldRegion(ops, i, handoffs, body.End())
		inline := inlineReleases(ops, key)
		leaks := false
		after := 0
		for _, ret := range returns {
			if ret <= from {
				continue
			}
			after++
			if !releasedBetween(inline, handoffs[key], from, ret) {
				leaks = true
				break
			}
		}
		if after == 0 && !releasedBetween(inline, handoffs[key], from, token.Pos(1<<60)) {
			// No return after the acquire: the body falls off its end, so
			// a release must still appear somewhere after it.
			leaks = true
		}
		if leaks {
			out = append(out, Diagnostic{r.Fset.Position(acq.pos), "deferunlock",
				fmt.Sprintf("%s on %s is not released on every path; defer %s.%s() or release it before each return", lockName(acq.read), acq.recv, acq.recv, verb)})
		}
	}
	return out
}

func lockName(read bool) string {
	if read {
		return "RLock"
	}
	return "Lock"
}

func unlockName(read bool) string {
	if read {
		return "RUnlock"
	}
	return "Unlock"
}

// inlineReleases collects the positions of inline unlock statements
// matching key.
func inlineReleases(ops []lockOp, key string) []token.Pos {
	var out []token.Pos
	for _, op := range ops {
		if op.kind == opUnlock && lockKey(op.recv, op.read) == key {
			out = append(out, op.pos)
		}
	}
	return out
}

// releasedBetween reports whether an inline release or an unlock
// handoff return falls strictly between from and limit.
func releasedBetween(inline, handoffs []token.Pos, from, limit token.Pos) bool {
	for _, p := range inline {
		if p > from && p < limit {
			return true
		}
	}
	for _, p := range handoffs {
		if p > from && p <= limit {
			return true
		}
	}
	return false
}

// branchReleases reports whether the guarded branch of a positive
// TryLock contains a matching release — inline, deferred, or handed
// off by returning the unlock method value.
func branchReleases(r *Repo, branch *ast.BlockStmt, recv string, read bool) bool {
	found := false
	ast.Inspect(branch, func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.CallExpr:
			if rx, kind, rd, ok := r.mutexCall(s); ok && kind == opUnlock && rd == read && types.ExprString(rx) == recv {
				found = true
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if sel, ok := ast.Unparen(res).(*ast.SelectorExpr); ok {
					if m, isMutex := mutexMethods[sel.Sel.Name]; isMutex && m.kind == opUnlock && m.read == read &&
						r.isMutexExpr(sel.X) && types.ExprString(sel.X) == recv {
						found = true
					}
				}
			}
		}
		return true
	})
	return found
}
