package lint

import (
	"go/ast"
	"regexp"
	"strings"
)

// GoroutineLife enforces the goroutine-lifecycle contract: every `go`
// statement in production code must be visibly tied to a shutdown
// mechanism, so the goroutine-leak checks in the overload tests are
// statically guaranteed rather than sampled. A spawn is considered
// tied when the goroutine — its function literal body, its arguments,
// or (one hop, via go/types) the body of the declared function it
// calls — shows one of:
//
//   - a context: an identifier of type context.Context (or named ctx),
//     whose Done/Err the spawned work consults or inherits;
//   - a shutdown channel: a receive, send, select case, close, or
//     range over a channel whose name matches done|stop|quit|closed|
//     shutdown|wake — the repo's lifecycle-channel vocabulary;
//   - a WaitGroup: wg.Done()/wg.Add() inside the goroutine, or an
//     Add() on the same WaitGroup anywhere in the spawning body;
//   - a resource close: the goroutine Close()es the resource whose
//     blocking calls bound its life (the replication ack-reader
//     closing its conn on every exit path);
//   - the result-channel handoff idiom `go func() { errc <- f(x) }()`,
//     a single send of a call result: the goroutine lives exactly as
//     long as the blocking call, whose own shutdown (ln.Close
//     stopping Serve) is the registered Run/Close pair.
//
// A spawn with none of these is a finding. The check is a liveness
// contract, not a proof: a ctx the goroutine ignores still passes.
// What it catches is the dangerous default — a bare `go func() { for
// { ... } }()` with no way to stop — and it keeps the tie visible at
// the spawn site, where reviewers look for it.
var GoroutineLife = &Analyzer{
	Name: "goroutinelife",
	Doc:  "every go statement must be tied to a shutdown mechanism (ctx, done channel, WaitGroup, or a call bounded by a Run/Close pair)",
	Run:  runGoroutineLife,
}

var lifecycleChanRe = regexp.MustCompile(`(?i)^(done|stop|quit|closed|shutdown|wake|ctx)`)

func runGoroutineLife(r *Repo) []Diagnostic {
	var out []Diagnostic
	for _, f := range r.Files {
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !r.goStmtTied(fd.Body, g) {
					out = append(out, Diagnostic{r.Fset.Position(g.Pos()), "goroutinelife",
						"goroutine is not tied to a shutdown mechanism (no ctx, done channel, WaitGroup, or bounded call in sight); leaked goroutines survive graceful shutdown"})
				}
				return true
			})
		}
	}
	return out
}

// goStmtTied applies the lifecycle evidence search to one go
// statement inside the enclosing body.
func (r *Repo) goStmtTied(enclosing *ast.BlockStmt, g *ast.GoStmt) bool {
	// Evidence in the call expression itself: arguments like ctx or
	// c.done tie the goroutine to its parent's lifecycle.
	for _, arg := range g.Call.Args {
		if r.lifecycleExpr(arg) {
			return true
		}
	}
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		if resultChannelHandoff(fun.Body) {
			return true
		}
		if r.bodyHasLifecycleEvidence(fun.Body) {
			return true
		}
	default:
		// A declared function or method: look one hop into its body.
		if callee := r.calleeFunc(g.Call); callee != nil {
			if fd := r.funcDecl(callee); fd != nil && fd.Body != nil && r.bodyHasLifecycleEvidence(fd.Body) {
				return true
			}
		}
		if r.lifecycleExpr(g.Call.Fun) {
			return true
		}
	}
	// A WaitGroup Add anywhere in the spawning body counts: the spawn
	// is awaited even if the Done lives in a helper.
	return r.bodyAddsToWaitGroup(enclosing)
}

// bodyHasLifecycleEvidence scans a goroutine body (descending into its
// nested literals) for any lifecycle tie.
func (r *Repo) bodyHasLifecycleEvidence(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.Ident, *ast.SelectorExpr:
			if r.lifecycleExpr(s.(ast.Expr)) {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := s.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Done", "Wait", "Add":
					// Only on a resolved sync.WaitGroup (or a ctx, which
					// the Ident case already caught): clock.Add(1) on an
					// atomic counter is not a lifecycle tie.
					if namedPath(r.typeOf(sel.X)) == "sync.WaitGroup" {
						found = true
					}
				case "Close":
					// A goroutine that closes its own resource on exit
					// (the replication ack-reader closing its conn) is
					// bounded by that resource's lifetime.
					if len(s.Args) == 0 {
						found = true
					}
				}
			}
			if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "close" {
				found = true
			}
		}
		return true
	})
	return found
}

// lifecycleExpr reports whether e names a lifecycle handle: a
// context.Context (by type, or by the conventional name ctx) or a
// channel in the shutdown vocabulary.
func (r *Repo) lifecycleExpr(e ast.Expr) bool {
	name := ""
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	default:
		return false
	}
	if namedPath(r.typeOf(e)) == "context.Context" {
		return true
	}
	return lifecycleChanRe.MatchString(name) || strings.EqualFold(name, "wg")
}

// resultChannelHandoff matches the bounded-spawn idiom: a body that is
// exactly one statement, a send of a call result (`errc <- f(x)`).
func resultChannelHandoff(body *ast.BlockStmt) bool {
	if len(body.List) != 1 {
		return false
	}
	send, ok := body.List[0].(*ast.SendStmt)
	if !ok {
		return false
	}
	_, isCall := ast.Unparen(send.Value).(*ast.CallExpr)
	return isCall
}

// bodyAddsToWaitGroup reports whether the spawning body calls Add on a
// WaitGroup (the tie may precede the spawn): resolved sync.WaitGroup
// receivers, or wg-named ones when types are unavailable.
func (r *Repo) bodyAddsToWaitGroup(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" || len(call.Args) != 1 {
			return true
		}
		switch namedPath(r.typeOf(sel.X)) {
		case "sync.WaitGroup":
			found = true
		case "":
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && strings.Contains(strings.ToLower(id.Name), "wg") {
				found = true
			}
		}
		return true
	})
	return found
}
