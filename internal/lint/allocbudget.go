package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AllocBudget is the static half of the hot-path allocation contract.
// A function anchored with //cpvet:hotpath allocs=<N> declares an
// allocation budget; the runtime half mirrors every anchor with a
// testing.AllocsPerRun conformance assertion against the live code
// (TestHotpathAllocBudgets), so the budget is a ratchet, not a
// comment. Inside an anchored function's own body this analyzer flags
// the constructs that allocate on every execution and creep in
// silently during refactors:
//
//   - function literals (closures capture and escape);
//   - fmt.Sprintf/Sprint/Sprintln/Errorf and string concatenation
//     with + (each builds a fresh string);
//   - map and slice composite literals, make(), new(), and &T{}
//     (struct literals used by value stay on the stack and are fine);
//   - interface boxing: passing a non-pointer concrete value to an
//     interface parameter of a resolved callee (pointers fit in the
//     interface word; values are copied to the heap).
//
// The check is per anchored body, deliberately not transitive: callees
// are priced by the runtime conformance test, where the real allocator
// is the judge; the static pass keeps the anchored body itself honest
// between benchmark runs. Anchors are validated by the driver — a
// //cpvet:hotpath without a parseable allocs=<N> is a finding from
// collectDirectives — and an anchor on a function the conformance test
// does not exercise fails that test, not this analyzer.
var AllocBudget = &Analyzer{
	Name: "allocbudget",
	Doc:  "//cpvet:hotpath allocs=<N> functions must avoid closures, fmt/string building, map/slice literals, make/new, and interface boxing",
	Run:  runAllocBudget,
}

func runAllocBudget(r *Repo) []Diagnostic {
	var out []Diagnostic
	for _, f := range r.Files {
		fmtPkg, _ := importName(f, "fmt")
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd, hotpathVerb) {
				continue
			}
			out = append(out, checkAllocBody(r, fd, fmtPkg)...)
		}
	}
	return out
}

func checkAllocBody(r *Repo, fd *ast.FuncDecl, fmtPkg string) []Diagnostic {
	var out []Diagnostic
	report := func(pos token.Pos, msg string) {
		out = append(out, Diagnostic{r.Fset.Position(pos), "allocbudget",
			fmt.Sprintf("%s inside //cpvet:hotpath function %s", msg, fd.Name.Name)})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			report(e.Pos(), "closure allocates")
			return false // its body is priced with the closure
		case *ast.BinaryExpr:
			if e.Op == token.ADD && (isStringExpr(r, e.X) || isStringExpr(r, e.Y)) {
				report(e.Pos(), "string concatenation allocates")
			}
		case *ast.CompositeLit:
			if allocatingLiteral(r, e) {
				report(e.Pos(), "map/slice literal allocates")
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					report(e.Pos(), "&T{} escapes to the heap")
				}
			}
		case *ast.CallExpr:
			if id, ok := e.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "make":
					report(e.Pos(), "make allocates")
				case "new":
					report(e.Pos(), "new allocates")
				}
			}
			if fmtPkg != "" {
				if name, ok := pkgSelCall(e, fmtPkg); ok {
					switch name {
					case "Sprintf", "Sprint", "Sprintln", "Errorf", "Appendf":
						report(e.Pos(), "fmt."+name+" allocates")
					}
				}
			}
			for _, d := range boxingArgs(r, e) {
				report(d, "interface boxing allocates")
			}
		}
		return true
	})
	return out
}

// isStringExpr reports whether e is a string: by resolved type, or a
// string literal when types are unavailable.
func isStringExpr(r *Repo, e ast.Expr) bool {
	if t := r.typeOf(e); t != nil {
		basic, ok := t.Underlying().(*types.Basic)
		return ok && basic.Info()&types.IsString != 0
	}
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.STRING
}

// allocatingLiteral reports whether the composite literal builds a map
// or slice (struct literals used by value do not heap-allocate).
func allocatingLiteral(r *Repo, e *ast.CompositeLit) bool {
	switch e.Type.(type) {
	case *ast.MapType:
		return true
	case *ast.ArrayType:
		return e.Type.(*ast.ArrayType).Len == nil // []T{...}; [N]T{...} is a value
	}
	if t := r.typeOf(e); t != nil {
		switch t.Underlying().(type) {
		case *types.Map, *types.Slice:
			return true
		}
	}
	return false
}

// boxingArgs returns the positions of call arguments that box a
// non-pointer concrete value into an interface parameter of a
// resolved callee.
func boxingArgs(r *Repo, call *ast.CallExpr) []token.Pos {
	if r.Types == nil {
		return nil
	}
	tv, ok := r.Types.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return nil
	}
	var out []token.Pos
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := r.typeOf(arg)
		if at == nil {
			continue
		}
		if _, already := at.Underlying().(*types.Interface); already {
			continue
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if basic, ok := at.Underlying().(*types.Basic); ok && basic.Kind() == types.UntypedNil {
			continue
		}
		out = append(out, arg.Pos())
	}
	return out
}
