package lint_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"contextpref/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// runFixture loads testdata/<name> and runs the given analyzers
// through the full driver (so //cpvet:ignore handling is part of what
// the goldens lock in), returning the formatted report.
func runFixture(t *testing.T, name string, analyzers []*lint.Analyzer) string {
	t.Helper()
	repo, err := lint.Load(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	if len(repo.Files) == 0 {
		t.Fatalf("fixture %s loaded no files", name)
	}
	var b strings.Builder
	for _, d := range lint.Run(repo, analyzers) {
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	return b.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	golden := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run go test ./internal/lint -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestAnalyzerGoldens runs each analyzer alone over its fixture
// directory. Every fixture contains flagged (positive) and clean
// (negative) declarations; the golden holding exactly the positive
// lines proves both directions.
func TestAnalyzerGoldens(t *testing.T) {
	for _, a := range lint.All() {
		t.Run(a.Name, func(t *testing.T) {
			got := runFixture(t, a.Name, []*lint.Analyzer{a})
			if got == "" {
				t.Fatalf("fixture %s produced no findings; positive cases are missing", a.Name)
			}
			checkGolden(t, a.Name, got)
		})
	}
}

// TestSuppressions locks in the directive semantics: reasoned ignores
// on the same or preceding line suppress, and malformed directives
// (missing reason, unknown analyzer, unknown verb) are findings
// themselves that suppress nothing.
func TestSuppressions(t *testing.T) {
	got := runFixture(t, "suppress", lint.All())
	checkGolden(t, "suppress", got)
	for _, banned := range []string{"flattened on purpose", "also flattened"} {
		if strings.Contains(got, banned) {
			t.Errorf("suppressed finding leaked into the report: %q\n%s", banned, got)
		}
	}
	for _, needed := range []string{"missing the mandatory reason", "unknown analyzer", "unknown directive"} {
		if !strings.Contains(got, needed) {
			t.Errorf("report is missing a malformed-directive finding containing %q\n%s", needed, got)
		}
	}
}

// TestRepoShipsClean is the acceptance gate inside the test suite:
// the analyzers run over this repository's own tree must report
// nothing. Reverting any invariant fix (a %w, a suppression reason, a
// scan-loop check) fails this test, not just make lint.
func TestRepoShipsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("module root not found at %s: %v", root, err)
	}
	repo, err := lint.Load(root)
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run(repo, lint.All())
	for _, d := range diags {
		t.Errorf("%s", d.String())
	}
}

// TestAnchorsPresent guards the anchor comments themselves: the
// ctxloop contract is only as strong as the //cpvet:scanloop markers
// on the hot-path functions, so losing one during a refactor must
// fail loudly.
func TestAnchorsPresent(t *testing.T) {
	anchors := map[string]int{
		"internal/profiletree/tree.go":       2, // SearchCoverCtx, SearchCoverBestCtx
		"internal/profiletree/sequential.go": 1, // SearchCoverCtx
		"internal/relation/relation.go":      1, // SelectCtx
		"internal/query/query.go":            1, // ExecuteCtx
	}
	for rel, want := range anchors {
		src, err := os.ReadFile(filepath.Join("..", "..", filepath.FromSlash(rel)))
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.Count(string(src), "//cpvet:scanloop"); got < want {
			t.Errorf("%s has %d //cpvet:scanloop anchors, want at least %d", rel, got, want)
		}
	}
	journal, err := os.ReadFile(filepath.Join("..", "..", "internal", "journal", "journal.go"))
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(journal), "//cpvet:deterministic"); got < 3 {
		t.Errorf("journal.go has %d //cpvet:deterministic anchors, want at least 3 (readSnapshot, readJournal, migrate)", got)
	}

	// The lock-across-fsync decisions must stay documented at their
	// functions: losing a //cpvet:lockheld anchor either resurrects a
	// lockorder finding (if the code still holds the lock) or silently
	// drops the documented contract (if it no longer does).
	lockheld := map[string]int{
		"internal/journal/journal.go":   4, // AppendCtx, Probe, SnapshotCtx, Close
		"internal/journal/replicate.go": 2, // AppendReplicatedCtx, InstallSnapshot
		"compact.go":                    2, // CompactNext, CompactAll
	}
	for rel, want := range lockheld {
		src, err := os.ReadFile(filepath.Join("..", "..", filepath.FromSlash(rel)))
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.Count(string(src), "//cpvet:lockheld"); got < want {
			t.Errorf("%s has %d //cpvet:lockheld anchors, want at least %d", rel, got, want)
		}
	}
}

// TestHotpathInventory guards the allocation anchors: every declared
// hot path must keep its //cpvet:hotpath budget, and each budget is
// mirrored by a testing.AllocsPerRun assertion in the root package's
// TestHotpathAllocBudgets.
func TestHotpathInventory(t *testing.T) {
	root := filepath.Join("..", "..")
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("module root not found: %v", err)
	}
	repo, err := lint.LoadSyntax(root)
	if err != nil {
		t.Fatal(err)
	}
	hotpaths := lint.Hotpaths(repo)
	got := make(map[string]int, len(hotpaths))
	for _, hp := range hotpaths {
		got[hp.Func] = hp.Allocs
	}
	want := []string{
		"internal/profiletree.(*Tree).ResolveCtx",
		"internal/querytree.(*Cache).Get",
		"internal/telemetry.(*Histogram).Observe",
		"internal/tracing.Start",
	}
	for _, fn := range want {
		if _, ok := got[fn]; !ok {
			t.Errorf("hot path %s lost its //cpvet:hotpath anchor", fn)
		}
	}
}
