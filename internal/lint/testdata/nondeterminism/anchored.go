package recovery

import "time"

// replay is annotated replay-deterministic but reads the wall clock.
//
//cpvet:deterministic
func replay() int64 {
	return time.Now().UnixNano()
}

// stamp is ordinary production code outside any deterministic region;
// the wall clock is fine here.
func stamp() int64 {
	return time.Now().UnixNano()
}
