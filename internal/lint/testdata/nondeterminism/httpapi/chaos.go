package httpapi

import (
	"math/rand"
	"time"
)

type chaos struct {
	rng *rand.Rand
}

// newChaos builds a seeded source — the approved pattern.
func newChaos(seed int64) *chaos {
	return &chaos{rng: rand.New(rand.NewSource(seed))}
}

// draw uses the global source and the wall clock: both break seeded
// replay.
func (c *chaos) draw() (time.Duration, bool) {
	delay := time.Duration(rand.Int63n(1000))
	start := time.Now()
	_ = start
	return delay, rand.Float64() < 0.5
}

// drawSeeded draws from the instance source: fine.
func (c *chaos) drawSeeded() bool {
	return c.rng.Float64() < 0.5
}
