package faultfs

import "time"

// elapsed consults the wall clock inside the fault-injection seam.
func elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

// schedule is deterministic arithmetic: fine.
func schedule(n int) int {
	return n * 2
}
