package lockorder

// correctOrder takes shard, then SafeSystem, then journal — the
// declared order, outermost first.
func correctOrder(sh *dirShard, s *SafeSystem, j *Journal) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	j.mu.Lock()
	defer j.mu.Unlock()
}

// anchoredFsync documents its lock-across-fsync decision; the anchor
// suppresses the I/O finding, not the order check.
//
//cpvet:lockheld the fixture journal's lock is its durability serialization point
func anchoredFsync(j *Journal) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Sync()
}

// tryOutOfOrder is exempt from the order check: a TryLock fails rather
// than deadlocks.
func tryOutOfOrder(j *Journal, sh *dirShard) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if sh.mu.TryLock() {
		sh.mu.Unlock()
		return true
	}
	return false
}

// releaseFirst drops the inner lock before acquiring the outer one:
// sequential, not nested, so no inversion.
func releaseFirst(j *Journal, sh *dirShard) {
	j.mu.Lock()
	j.mu.Unlock()
	sh.mu.Lock()
	sh.mu.Unlock()
}

// ioAfterRelease performs the fsync once the lock is gone.
func ioAfterRelease(j *Journal) error {
	j.mu.Lock()
	j.mu.Unlock()
	return j.f.Sync()
}
