package lockorder

import (
	"net"
	"os"
	"sync"
)

// The shapes mirror the real hierarchy by bare type name (DESIGN §14):
// dirShard (level 1), SafeSystem (level 2), Journal (level 3).
type dirShard struct{ mu sync.RWMutex }

type SafeSystem struct{ mu sync.RWMutex }

type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// inverted acquires the shard lock while holding the journal lock —
// levels 3 then 1, against the declared order.
func inverted(j *Journal, sh *dirShard) {
	j.mu.Lock()
	defer j.mu.Unlock()
	sh.mu.Lock()
	sh.mu.Unlock()
}

// hiddenInversion reaches the outer lock through a call: the fixpoint
// propagates "acquires level 1" out of lockShard.
func hiddenInversion(s *SafeSystem, sh *dirShard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lockShard(sh)
}

func lockShard(sh *dirShard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
}

// fsyncUnderLock holds the journal lock across an fsync with no
// //cpvet:lockheld anchor explaining why.
func fsyncUnderLock(j *Journal) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Sync()
}

// dialUnderLock holds the SafeSystem lock across a network dial.
func dialUnderLock(s *SafeSystem) (net.Conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return net.Dial("tcp", "localhost:1")
}

// fsyncViaCall reaches the fsync through a resolved call: the I/O fact
// propagates out of flush.
func fsyncViaCall(j *Journal) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return flush(j)
}

func flush(j *Journal) error { return j.f.Sync() }
