package allocbudget

import "fmt"

type resolver struct{ hits int }

func box(v interface{}) {}

// hot is anchored at zero and violates every construct the static
// pass knows about, one per line.
//
//cpvet:hotpath allocs=0 fixture budget
func (r *resolver) hot(key string, n int) int {
	f := func() int { return n }
	msg := "key=" + key
	_ = fmt.Sprintf("%s=%d", msg, n)
	xs := []int{n}
	m := map[string]int{}
	p := &resolver{}
	q := make([]int, n)
	box(n)
	_ = new(int)
	_ = f
	_ = xs
	_ = m
	_ = p
	_ = q
	return r.hits
}
