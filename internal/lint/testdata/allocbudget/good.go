package allocbudget

import "fmt"

type pair struct{ a, b int }

// cold does all the allocating things without an anchor: the analyzer
// prices only declared hot paths.
func cold(key string, n int) string {
	xs := []int{n}
	return fmt.Sprintf("%s:%v", key, xs)
}

// lean is anchored and clean: fixed-size arrays and struct literals
// used by value stay on the stack, and plain calls are priced by the
// runtime conformance test instead.
//
//cpvet:hotpath allocs=0 fixture budget
func lean(n int) int {
	var buf [4]int
	buf[0] = n
	v := pair{a: n, b: n + 1}
	return v.a + v.b + buf[0] + cheap(n)
}

func cheap(n int) int { return n * 2 }
