//go:build ignore

package notapi

import "net/http"

// Outside package httpapi the structured-error contract does not
// apply: admin/debug listeners may use plain-text errors.
func plain(w http.ResponseWriter) {
	http.Error(w, "nope", http.StatusNotFound)
	w.WriteHeader(http.StatusOK)
}
