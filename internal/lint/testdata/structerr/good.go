package httpapi

import "net/http"

// writeJSON mirrors the blessed helper: the raw WriteHeader carries a
// reasoned suppression.
func writeJSON(w http.ResponseWriter, status int, v any) {
	//cpvet:ignore structerr blessed single WriteHeader call site
	w.WriteHeader(status)
	_ = v
}

// statusRecorder delegation through the embedded ResponseWriter is
// allowed without a suppression.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}
