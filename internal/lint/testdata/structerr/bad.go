package httpapi

import "net/http"

func handleBad(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusInternalServerError)
	w.WriteHeader(http.StatusTeapot)
}
