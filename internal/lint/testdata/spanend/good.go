package spans

import (
	"context"
	"errors"

	"contextpref/internal/tracing"
)

// deferredEnd is the canonical shape: defer right after Start covers
// every path.
func deferredEnd(ctx context.Context, fail bool) error {
	ctx, sp := tracing.Start(ctx, "op")
	defer sp.End()
	if fail {
		return errors.New("boom")
	}
	_ = ctx
	return nil
}

// inlineEnd ends the span before any later return — the journal's
// per-attempt fsync span uses this shape inside a retry closure.
func inlineEnd(ctx context.Context, work func() error) error {
	_, sp := tracing.Start(ctx, "op")
	err := work()
	sp.Fail(err)
	sp.End()
	if err != nil {
		return err
	}
	return nil
}

// deferredClosure ends the span inside a deferred function literal,
// like the HTTP middleware's root span; that still covers every path.
func deferredClosure(t *tracing.Tracer, fail bool) error {
	_, sp := t.StartRoot(context.Background(), "op", tracing.Traceparent{})
	defer func() {
		sp.SetBool("failed", fail)
		sp.End()
	}()
	if fail {
		return errors.New("boom")
	}
	return nil
}

// earlyReturnBeforeStart returns before the span exists; only returns
// after the Start need an End.
func earlyReturnBeforeStart(ctx context.Context, skip bool) error {
	if skip {
		return nil
	}
	_, sp := tracing.Start(ctx, "op")
	defer sp.End()
	return nil
}

// notATracerStart is a Start on some other type: two values, same
// method name, but not the tracing package — not a span.
func notATracerStart(w worker) error {
	res, err := w.Start("job")
	_ = res
	return err
}

type worker struct{}

func (worker) Start(string) (int, error) { return 0, nil }
