package spans

import (
	"context"
	"errors"

	"contextpref/internal/tracing"
)

// leakOnError ends the span on the happy path only: the error return
// leaves it open.
func leakOnError(ctx context.Context, fail bool) error {
	_, sp := tracing.Start(ctx, "op")
	if fail {
		return errors.New("boom")
	}
	sp.End()
	return nil
}

// neverEnded starts a span and falls off the end of the function
// without ever ending it.
func neverEnded(ctx context.Context) {
	_, sp := tracing.Start(ctx, "op")
	sp.SetInt("n", 1)
}

// blankSpan discards the span; nobody can ever End it.
func blankSpan(ctx context.Context) {
	_, _ = tracing.Start(ctx, "op")
}

// rootLeak applies the same rule to StartRoot: the early return
// escapes before the End.
func rootLeak(t *tracing.Tracer, fail bool) error {
	_, sp := t.StartRoot(context.Background(), "op", tracing.Traceparent{})
	if fail {
		return errors.New("boom")
	}
	sp.End()
	return nil
}

// closureLeak shows that bodies are checked independently: the span
// started inside the function literal leaks even though the enclosing
// function defers an End of its own span.
func closureLeak(ctx context.Context) func() {
	_, outer := tracing.Start(ctx, "outer")
	defer outer.End()
	return func() {
		_, inner := tracing.Start(ctx, "inner")
		inner.SetBool("leaked", true)
	}
}
