package deferunlock

// deferRelease is the baseline discipline.
func (s *store) deferRelease() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

// everyPath releases inline before each return.
func (s *store) everyPath(fail bool) error {
	s.mu.Lock()
	if fail {
		s.mu.Unlock()
		return errFail
	}
	s.n++
	s.mu.Unlock()
	return nil
}

// handoff returns the unlock method value — the rlock/wlock idiom;
// the caller defers the returned func.
func (s *store) handoff() (func(), error) {
	s.mu.RLock()
	return s.mu.RUnlock, nil
}

// tryGuarded releases inside the guarded branch of a positive TryLock.
func (s *store) tryGuarded() bool {
	if s.mu.TryRLock() {
		n := s.n
		s.mu.RUnlock()
		return n > 0
	}
	return false
}

// tryNegated exits unlocked on failure and defers on success — the
// shard-parking idiom.
func (s *store) tryNegated() bool {
	if !s.mu.TryLock() {
		return false
	}
	defer s.mu.Unlock()
	s.n++
	return true
}

// iife scopes the lock to an immediately-invoked closure whose defer
// fires before the enclosing body continues.
func (s *store) iife() int {
	s.mu.Lock()
	n := func() int {
		defer s.mu.Unlock()
		return s.n
	}()
	return n
}
