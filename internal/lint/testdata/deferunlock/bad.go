package deferunlock

import (
	"errors"
	"sync"
)

var errFail = errors.New("fail")

type store struct {
	mu sync.RWMutex
	n  int
}

// leakOnError returns early with the lock still held.
func (s *store) leakOnError(fail bool) error {
	s.mu.Lock()
	if fail {
		return errFail
	}
	s.mu.Unlock()
	return nil
}

// fallsOffEnd never releases at all.
func (s *store) fallsOffEnd() {
	s.mu.Lock()
	s.n++
}

// readLeak pairs an RLock with a write Unlock: the read lock is never
// released (kinds must match).
func (s *store) readLeak() int {
	s.mu.RLock()
	defer s.mu.Unlock()
	return s.n
}

// tryBranchLeak succeeds into a branch that never releases.
func (s *store) tryBranchLeak() bool {
	if s.mu.TryLock() {
		s.n++
		return true
	}
	return false
}

// closureLeak shows bodies are independent: the literal acquires and
// falls off its own end still holding the lock.
func (s *store) closureLeak() func() {
	return func() {
		s.mu.Lock()
		s.n++
	}
}
