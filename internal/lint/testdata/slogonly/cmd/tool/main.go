package main

import "log"

// cmd/* mains own the process: log.Fatal is allowed here.
func main() {
	log.Fatal("fine in a main")
}
