package somelib

import (
	"log"
)

func noisy() {
	log.Printf("unstructured, uncorrelated")
}
