package somelib

import (
	"log/slog"
)

func structured() {
	slog.Info("structured", "request_id", "42")
}
