package main

import "log"

// examples/ are teaching code: raw log keeps them short.
func main() {
	log.Println("fine in an example")
}
