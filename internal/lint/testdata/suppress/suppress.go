package somelib

import (
	"fmt"
)

// wrapped is suppressed with a reasoned directive on the line above.
func wrapped(err error) error {
	//cpvet:ignore errwrap this message is user-facing copy, the chain is rewrapped by the caller
	return fmt.Errorf("flattened on purpose: %v", err)
}

// sameLine is suppressed by a trailing directive on the same line.
func sameLine(err error) error {
	return fmt.Errorf("also flattened: %v", err) //cpvet:ignore errwrap caller compares rendered text in golden files
}

// missingReason must be reported: every suppression says why.
func missingReason(err error) error {
	//cpvet:ignore errwrap
	return fmt.Errorf("no reason given: %v", err)
}

// unknownAnalyzer must be reported: a typo would silently suppress
// nothing.
func unknownAnalyzer(err error) error {
	//cpvet:ignore errwarp transposed letters
	return fmt.Errorf("typo'd analyzer: %v", err)
}

// unknownVerb must be reported.
//
//cpvet:scanlop
func unknownVerb() {}
