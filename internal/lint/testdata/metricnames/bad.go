package obs

func registerBad(reg registry) {
	reg.Counter("cp_requests", "counter missing the _total suffix")
	reg.Histogram("cp_latency", "histogram missing the _seconds suffix")
	reg.Gauge("cp_cache_hits_total", "gauge masquerading as a counter")
	reg.Counter("http_requests_total", "missing the cp_ prefix")
	reg.Counter("cp_Bad_Name_total", "uppercase breaks the grammar")
	reg.Counter("cp_dup_total", "first registration is fine")
	reg.CounterVec("cp_lookups_total", "per-user series are unbounded", "user")
	reg.GaugeVec("cp_sessions", "so are these", "region", "user_id")
	reg.Gauge("cp_shard_queue_depth", "per-shard metric registered without a shard label")
	reg.CounterVec("cp_shard_flushes_total", "vector missing the shard label", "outcome")
	reg.Counter("cp_replication_shard_drops_total", "per-segment metric without a shard label")
}

func registerDup(reg registry) {
	reg.Counter("cp_dup_total", "second call site re-registers the name")
}

type registry interface {
	Counter(name, help string)
	CounterVec(name, help string, labels ...string)
	Gauge(name, help string)
	GaugeVec(name, help string, labels ...string)
	Histogram(name, help string)
}
