package obs

func registerGood(reg registry) {
	reg.Counter("cp_http_requests_total", "well-formed counter")
	reg.Histogram("cp_http_request_seconds", "well-formed histogram")
	reg.Gauge("cp_http_inflight_requests", "well-formed gauge")
	//cpvet:ignore metricnames unitless distribution, suppressed with a reason
	reg.Histogram("cp_resolve_cells", "cells per resolution")
	reg.GaugeVec("cp_shard_depth", "per-shard vector with the bounded index label", "shard")
	reg.CounterVec("cp_shard_errors_total", "extra bounded labels are fine", "shard", "outcome")
	reg.GaugeVec("cp_replication_shard_lag", "per-segment streams carry the shard label too", "shard")
}

// Non-literal names and labels are out of scope for the AST pass; the
// runtime conformance test covers them.
func registerDynamic(reg registry, name string, labels []string) {
	reg.Counter(name, "dynamic")
	reg.CounterVec("cp_shard_dynamic_total", "dynamic labels defer to runtime", labels...)
}
