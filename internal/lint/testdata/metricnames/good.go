package obs

func registerGood(reg registry) {
	reg.Counter("cp_http_requests_total", "well-formed counter")
	reg.Histogram("cp_http_request_seconds", "well-formed histogram")
	reg.Gauge("cp_http_inflight_requests", "well-formed gauge")
	//cpvet:ignore metricnames unitless distribution, suppressed with a reason
	reg.Histogram("cp_resolve_cells", "cells per resolution")
}

// Non-literal names are out of scope for the AST pass; the runtime
// conformance test covers them.
func registerDynamic(reg registry, name string) {
	reg.Counter(name, "dynamic")
}
