package goroutinelife

import "time"

type poller struct{ n int }

// untetheredLoop is the dangerous default: a forever loop with no way
// to stop it.
func untetheredLoop(p *poller) {
	go func() {
		for {
			p.n++
			time.Sleep(time.Millisecond)
		}
	}()
}

// untetheredCall spawns a declared function whose body (one resolved
// hop away) shows no lifecycle evidence either.
func untetheredCall(p *poller) {
	go spin(p)
}

func spin(p *poller) {
	for i := 0; i < 1e6; i++ {
		p.n++
	}
}
