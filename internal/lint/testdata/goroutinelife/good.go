package goroutinelife

import (
	"context"
	"io"
	"sync"
)

// ctxTied consults ctx.Done: cancellation ends the loop.
func ctxTied(ctx context.Context, p *poller) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				p.n++
			}
		}
	}()
}

// chanTied ranges a channel from the shutdown vocabulary; closing
// stopc ends the goroutine.
func chanTied(stopc chan struct{}, p *poller) {
	go func() {
		for range stopc {
			p.n++
		}
	}()
}

// wgTied is awaited through a WaitGroup.
func wgTied(wg *sync.WaitGroup, p *poller) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.n++
	}()
}

// handoff is the bounded result-channel idiom: the goroutine lives
// exactly as long as the blocking call whose result it sends.
func handoff(p *poller, errc chan error) {
	go func() { errc <- run(p) }()
}

func run(p *poller) error { p.n++; return nil }

// closerTied is bounded by the resource it closes on exit (the
// replication ack-reader shape).
func closerTied(rc io.ReadCloser, p *poller) {
	go func() {
		defer rc.Close()
		p.n++
	}()
}

// argTied passes a lifecycle handle to the spawned function; the tie
// is visible at the spawn site.
func argTied(ctx context.Context, p *poller) {
	go watch(ctx, p)
}

func watch(ctx context.Context, p *poller) {
	<-ctx.Done()
	p.n = 0
}
