package wrap

import (
	"context"
	"fmt"
)

func open(name string) error {
	err := fmt.Errorf("inner")
	return fmt.Errorf("open %s: %v", name, err)
}

func parse(parseErr error) error {
	return fmt.Errorf("parse failed: %s", parseErr)
}

func stop(ctx context.Context) error {
	return fmt.Errorf("scan stopped: %v", ctx.Err())
}

func wedge(base, terr, aerr error) error {
	return fmt.Errorf("%w (rollback: %v; append: %v)", base, terr, aerr)
}
