package wrap

import (
	"context"
	"fmt"
)

func openW(name string, err error) error {
	return fmt.Errorf("open %s: %w", name, err)
}

func multiWrap(base, terr, aerr error) error {
	return fmt.Errorf("%w (rollback: %w; append: %w)", base, terr, aerr)
}

func stopW(ctx context.Context) error {
	return fmt.Errorf("scan stopped: %w", ctx.Err())
}

// %v of a non-error is fine.
func report(order []int, n int) error {
	return fmt.Errorf("order %v is not a permutation of 0..%d", order, n-1)
}

// width/precision stars consume arguments before the verb; the err
// still lines up with its %w.
func padded(width int, err error) error {
	return fmt.Errorf("%*d: %w", width, 7, err)
}

// %% consumes no argument.
func percent(pct float64) error {
	return fmt.Errorf("at %f%% capacity", pct)
}

// Explicit argument indexes are skipped, not misattributed.
func indexed(err error) error {
	return fmt.Errorf("%[1]v", err)
}
