package scans

import "context"

// scanAll walks every row but never consults the context.
//
//cpvet:scanloop
func scanAll(ctx context.Context, rows []int) int {
	total := 0
	for _, r := range rows {
		total += r
	}
	_ = ctx
	return total
}

// noLoops is anchored but has no loop at all — still a violation: the
// anchor promises a cooperative scan.
//
//cpvet:scanloop
func noLoops(ctx context.Context) error {
	return ctx.Err()
}
