package scans

import "context"

// scanChecked checks ctx.Err() inside the loop body.
//
//cpvet:scanloop
func scanChecked(ctx context.Context, rows []int) (int, error) {
	total := 0
	for i, r := range rows {
		if i&63 == 0 {
			if err := ctx.Err(); err != nil {
				return total, err
			}
		}
		total += r
	}
	return total, nil
}

// scanClosure keeps its loop inside a recursive closure, like the
// profile-tree cover search; the check still counts.
//
//cpvet:scanloop
func scanClosure(ctx context.Context, rows []int) error {
	var rec func(depth int) error
	rec = func(depth int) error {
		for range rows {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
		}
		return nil
	}
	return rec(0)
}

// unanchored functions are out of scope even without any check.
func unanchored(rows []int) int {
	total := 0
	for _, r := range rows {
		total += r
	}
	return total
}
