package scans

import "context"

type walker struct{ rows []int }

// cancelled is the hoisted per-row check the scan loops share.
func (w *walker) cancelled(ctx context.Context) error {
	return ctx.Err()
}

// opaque does per-row work but never consults the context.
func (w *walker) opaque(n int) int { return n * 2 }

// viaMethodCall checks the context one resolved call away: the loop
// body invokes a method whose body performs the check.
//
//cpvet:scanloop
func (w *walker) viaMethodCall(ctx context.Context) (int, error) {
	total := 0
	for _, r := range w.rows {
		if err := w.cancelled(ctx); err != nil {
			return total, err
		}
		total += r
	}
	return total, nil
}

// viaMethodValue binds the check to a local before the loop — the
// bound-method shape — and calls it through the identifier.
//
//cpvet:scanloop
func (w *walker) viaMethodValue(ctx context.Context) (int, error) {
	check := w.cancelled
	total := 0
	for _, r := range w.rows {
		if err := check(ctx); err != nil {
			return total, err
		}
		total += r
	}
	return total, nil
}

// viaOpaqueCall calls a method that does NOT check the context: one
// hop of resolution finds nothing, so the anchor is violated.
//
//cpvet:scanloop
func (w *walker) viaOpaqueCall(ctx context.Context) int {
	total := 0
	for _, r := range w.rows {
		total += w.opaque(r)
	}
	_ = ctx
	return total
}
