package contextpref

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"contextpref/internal/journal"
	"contextpref/internal/tracing"
)

// SafeSystem wraps a System for concurrent use: reads (queries,
// resolution, stats) take a shared lock and writes (preference
// insertion) an exclusive one. Systems built with WithQueryCache take
// the exclusive lock on queries too, because serving a query mutates
// the cache.
//
// Directory-managed systems can additionally be "parked" to bound
// resident memory (see WithMaxResidentUsers): the materialized System
// — profile tree, query cache, engines — is dropped and the profile is
// kept as its compact journal-record form in the handle itself. The
// handle's identity never changes; the next access rebuilds the System
// transparently under the write lock. Parking is lossless: the records
// are an in-memory archive, never a disk reload.
type SafeSystem struct {
	mu      sync.RWMutex
	sys     *System // nil while parked
	caching bool

	// Parking support; zero for standalone Synchronized systems, which
	// never park. shard is atomic because the LRU touch on every access
	// reads it without the lock, while removal clears it under the lock.
	shard atomic.Pointer[dirShard] // owning shard; nil after the user is removed
	user  string                   // directory key
	// parked holds the profile as add/remove records while sys is nil.
	parked []journal.Record
	// parkPersist/parkHealth are the hooks to re-attach on unpark;
	// meaningful only while parked.
	parkPersist Persister
	parkHealth  *Health
	// lastTouch is the shard-LRU stamp of the most recent access.
	lastTouch atomic.Int64
}

// Synchronized wraps the system. The wrapped System must not be used
// directly afterwards.
func Synchronized(sys *System) *SafeSystem {
	return &SafeSystem{sys: sys, caching: sys.cache != nil}
}

// touch stamps the handle for the owning shard's LRU clock.
func (s *SafeSystem) touch() {
	if sh := s.shard.Load(); sh != nil {
		s.lastTouch.Store(sh.clock.Add(1))
	}
}

// ensureLocked materializes a parked system; the caller must hold the
// write lock. The parked records were validated when first committed,
// so a rebuild failure indicates resource exhaustion or a foreign
// record slipped into the journal — the error surfaces to the caller
// and the handle stays parked for a later retry. It returns the owning
// shard when this call materialized the system (nil when it was
// already resident), so the caller can run the eviction sweep after
// releasing the handle lock: sweeping from under s.mu would acquire
// the shard lock against the declared shard -> SafeSystem order and
// deadlock against setPersister/setHealth, which hold the shard lock
// while attaching hooks to every handle (cpvet:lockorder caught this).
func (s *SafeSystem) ensureLocked() (*dirShard, error) {
	if s.sys != nil {
		return nil, nil
	}
	sh := s.shard.Load()
	if sh == nil {
		return nil, fmt.Errorf("contextpref: user %q was removed", s.user)
	}
	sys, err := sh.rebuild()
	if err != nil {
		return nil, fmt.Errorf("contextpref: loading user %q: %w", s.user, err)
	}
	sys.SetHealth(s.parkHealth)
	for _, r := range s.parked {
		if err := applyRecord(sys, r); err != nil {
			return nil, fmt.Errorf("contextpref: loading user %q: %w", s.user, err)
		}
	}
	// Hooks re-attach only after the records applied, so the rebuild is
	// never re-journaled and never health-gated.
	sys.SetPersister(s.parkPersist, s.user)
	s.sys = sys
	s.parked = nil
	s.parkPersist, s.parkHealth = nil, nil
	sh.loads.Inc()
	sh.noteResident(1)
	return sh, nil
}

// rlock acquires the handle for reading, materializing a parked system
// first (which upgrades to the write lock for this access). It returns
// the matching unlock; on the materialize path the unlock also runs
// the shard's eviction sweep, after the handle lock is released.
func (s *SafeSystem) rlock() (func(), error) {
	s.touch()
	s.mu.RLock()
	if s.sys != nil {
		return s.mu.RUnlock, nil
	}
	s.mu.RUnlock()
	s.mu.Lock()
	sh, err := s.ensureLocked()
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	if sh != nil {
		return func() { s.mu.Unlock(); sh.maybeEvict(s) }, nil
	}
	return s.mu.Unlock, nil
}

// wlock acquires the handle for writing, materializing a parked system
// first. It returns the matching unlock; on the materialize path the
// unlock also runs the shard's eviction sweep, after the handle lock
// is released.
func (s *SafeSystem) wlock() (func(), error) {
	s.touch()
	s.mu.Lock()
	sh, err := s.ensureLocked()
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	if sh != nil {
		return func() { s.mu.Unlock(); sh.maybeEvict(s) }, nil
	}
	return s.mu.Unlock, nil
}

// Resident reports whether the system is materialized (not parked).
func (s *SafeSystem) Resident() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sys != nil
}

// residentHint is Resident without blocking: eviction scans use it to
// skip parked entries, tolerating staleness (tryPark re-checks under
// the lock).
func (s *SafeSystem) residentHint() bool {
	if s.mu.TryRLock() {
		resident := s.sys != nil
		s.mu.RUnlock()
		return resident
	}
	// Locked by someone — it is in active use; not an eviction victim.
	return false
}

// tryPark parks an idle resident system: the profile is exported to
// its normalized record form, the hooks are detached into the parked
// fields, and the System is dropped. It refuses without blocking if
// the handle is in use (TryLock fails), already parked, not
// directory-managed, or its export fails; it reports whether it
// parked. Counter updates are the caller's.
func (s *SafeSystem) tryPark() bool {
	if !s.mu.TryLock() {
		return false
	}
	defer s.mu.Unlock()
	if s.sys == nil || s.shard.Load() == nil {
		return false
	}
	recs, err := s.sys.SnapshotRecords(s.user)
	if err != nil {
		return false
	}
	s.parked = recs
	s.parkPersist = s.sys.persist
	s.parkHealth = s.sys.health
	s.sys = nil
	return true
}

// detach quiesces the handle for removal: in-flight mutations finish
// (their journal records land before the caller's drop record), the
// persister detaches, and the handle stops counting against its shard.
// It reports whether the system was resident.
func (s *SafeSystem) detach() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	resident := s.sys != nil
	if resident {
		s.sys.SetPersister(nil, "")
	} else {
		s.parkPersist = nil
	}
	s.shard.Store(nil)
	return resident
}

// reattach undoes detach after a failed drop append: the handle
// rejoins its shard with the persister re-attached, so memory and
// replay agree the user still exists.
func (s *SafeSystem) reattach(sh *dirShard, p Persister, name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shard.Store(sh)
	if s.sys != nil {
		s.sys.SetPersister(p, name)
	} else {
		s.parkPersist = p
	}
}

// appendParked folds one validated journal record into the handle:
// applied directly if the system is resident, accumulated in the
// parked archive otherwise. Shared by directory replay and the
// replication apply path.
func (s *SafeSystem) appendParked(r journal.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sys != nil {
		return applyRecord(s.sys, r)
	}
	s.parked = append(s.parked, r)
	return nil
}

// AddPreference inserts one preference under the write lock.
func (s *SafeSystem) AddPreference(p Preference) error {
	unlock, err := s.wlock()
	if err != nil {
		return err
	}
	defer unlock()
	return s.sys.AddPreference(p)
}

// AddPreferences inserts a batch under the write lock.
func (s *SafeSystem) AddPreferences(ps ...Preference) error {
	return s.AddPreferencesCtx(context.Background(), ps...)
}

// AddPreferencesCtx inserts a batch under the write lock, carrying the
// request context for span provenance. The system.add_preferences span
// starts inside the lock; write-lock contention shows up as the gap
// between the root span and it.
func (s *SafeSystem) AddPreferencesCtx(ctx context.Context, ps ...Preference) error {
	unlock, err := s.wlock()
	if err != nil {
		return err
	}
	defer unlock()
	return s.sys.AddPreferencesCtx(ctx, ps...)
}

// RemovePreference deletes a preference under the write lock.
func (s *SafeSystem) RemovePreference(p Preference) (int, error) {
	return s.RemovePreferenceCtx(context.Background(), p)
}

// RemovePreferenceCtx deletes a preference under the write lock,
// carrying the request context for span provenance.
func (s *SafeSystem) RemovePreferenceCtx(ctx context.Context, p Preference) (int, error) {
	unlock, err := s.wlock()
	if err != nil {
		return 0, err
	}
	defer unlock()
	return s.sys.RemovePreferenceCtx(ctx, p)
}

// LoadProfile parses and inserts a profile under the write lock.
func (s *SafeSystem) LoadProfile(text string) error {
	return s.LoadProfileCtx(context.Background(), text)
}

// LoadProfileCtx parses and inserts a profile under the write lock,
// carrying the request context for span provenance.
func (s *SafeSystem) LoadProfileCtx(ctx context.Context, text string) error {
	unlock, err := s.wlock()
	if err != nil {
		return err
	}
	defer unlock()
	return s.sys.LoadProfileCtx(ctx, text)
}

// Query executes a contextual query; shared lock unless caching.
func (s *SafeSystem) Query(q Query, current State) (*Result, error) {
	return s.QueryCtx(context.Background(), q, current)
}

// QueryCtx executes a contextual query with cooperative cancellation
// (see System.QueryCtx); shared lock unless caching. Lock acquisition
// itself is not interruptible — the deadline takes effect once the
// evaluation starts scanning.
func (s *SafeSystem) QueryCtx(ctx context.Context, q Query, current State) (*Result, error) {
	ctx, sp := tracing.Start(ctx, "system.query")
	defer sp.End()
	var unlock func()
	var err error
	if s.caching {
		unlock, err = s.wlock()
	} else {
		unlock, err = s.rlock()
	}
	if err != nil {
		sp.Fail(err)
		return nil, err
	}
	defer unlock()
	res, err := s.sys.QueryCtx(ctx, q, current)
	sp.Fail(err)
	return res, err
}

// Resolve performs context resolution under the shared lock.
func (s *SafeSystem) Resolve(st State) (Candidate, bool, error) {
	unlock, err := s.rlock()
	if err != nil {
		return Candidate{}, false, err
	}
	defer unlock()
	return s.sys.Resolve(st)
}

// ResolveCtx performs cancellable context resolution under the shared
// lock (see System.ResolveCtx).
func (s *SafeSystem) ResolveCtx(ctx context.Context, st State) (Candidate, bool, error) {
	ctx, sp := tracing.Start(ctx, "system.resolve")
	defer sp.End()
	unlock, err := s.rlock()
	if err != nil {
		sp.Fail(err)
		return Candidate{}, false, err
	}
	defer unlock()
	cand, ok, err := s.sys.ResolveCtx(ctx, st)
	sp.Fail(err)
	return cand, ok, err
}

// ResolveAll lists covering states under the shared lock.
func (s *SafeSystem) ResolveAll(st State) ([]Candidate, error) {
	unlock, err := s.rlock()
	if err != nil {
		return nil, err
	}
	defer unlock()
	return s.sys.ResolveAll(st)
}

// ResolveAllCtx lists covering states with cooperative cancellation
// under the shared lock (see System.ResolveAllCtx).
func (s *SafeSystem) ResolveAllCtx(ctx context.Context, st State) ([]Candidate, error) {
	ctx, sp := tracing.Start(ctx, "system.resolve_all")
	defer sp.End()
	unlock, err := s.rlock()
	if err != nil {
		sp.Fail(err)
		return nil, err
	}
	defer unlock()
	cands, err := s.sys.ResolveAllCtx(ctx, st)
	sp.Fail(err)
	return cands, err
}

// NewState validates a context state (no lock needed: the environment
// is immutable, and a Directory-managed handle validates against the
// directory's shared environment whether or not it is parked).
func (s *SafeSystem) NewState(values ...string) (State, error) {
	if sh := s.shard.Load(); sh != nil {
		return sh.d.env.NewState(values...)
	}
	s.mu.RLock()
	sys := s.sys
	s.mu.RUnlock()
	if sys == nil {
		return nil, fmt.Errorf("contextpref: user %q was removed", s.user)
	}
	return sys.NewState(values...)
}

// Stats snapshots the storage statistics under the shared lock. A
// parked system is materialized first; if that fails, zero stats are
// returned.
func (s *SafeSystem) Stats() Stats {
	unlock, err := s.rlock()
	if err != nil {
		return Stats{}
	}
	defer unlock()
	return s.sys.Stats()
}

// ExportProfile renders the stored preferences under the shared lock.
func (s *SafeSystem) ExportProfile() (string, error) {
	unlock, err := s.rlock()
	if err != nil {
		return "", err
	}
	defer unlock()
	return s.sys.ExportProfile()
}

// NumPreferences returns the stored preference count (0 if a parked
// system fails to materialize).
func (s *SafeSystem) NumPreferences() int {
	unlock, err := s.rlock()
	if err != nil {
		return 0
	}
	defer unlock()
	return s.sys.NumPreferences()
}
