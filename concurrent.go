package contextpref

import (
	"context"
	"sync"

	"contextpref/internal/tracing"
)

// SafeSystem wraps a System for concurrent use: reads (queries,
// resolution, stats) take a shared lock and writes (preference
// insertion) an exclusive one. Systems built with WithQueryCache take
// the exclusive lock on queries too, because serving a query mutates
// the cache.
type SafeSystem struct {
	mu      sync.RWMutex
	sys     *System
	caching bool
}

// Synchronized wraps the system. The wrapped System must not be used
// directly afterwards.
func Synchronized(sys *System) *SafeSystem {
	return &SafeSystem{sys: sys, caching: sys.cache != nil}
}

// AddPreference inserts one preference under the write lock.
func (s *SafeSystem) AddPreference(p Preference) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.AddPreference(p)
}

// AddPreferences inserts a batch under the write lock.
func (s *SafeSystem) AddPreferences(ps ...Preference) error {
	return s.AddPreferencesCtx(context.Background(), ps...)
}

// AddPreferencesCtx inserts a batch under the write lock, carrying the
// request context for span provenance. The system.add_preferences span
// starts inside the lock; write-lock contention shows up as the gap
// between the root span and it.
func (s *SafeSystem) AddPreferencesCtx(ctx context.Context, ps ...Preference) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.AddPreferencesCtx(ctx, ps...)
}

// RemovePreference deletes a preference under the write lock.
func (s *SafeSystem) RemovePreference(p Preference) (int, error) {
	return s.RemovePreferenceCtx(context.Background(), p)
}

// RemovePreferenceCtx deletes a preference under the write lock,
// carrying the request context for span provenance.
func (s *SafeSystem) RemovePreferenceCtx(ctx context.Context, p Preference) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.RemovePreferenceCtx(ctx, p)
}

// LoadProfile parses and inserts a profile under the write lock.
func (s *SafeSystem) LoadProfile(text string) error {
	return s.LoadProfileCtx(context.Background(), text)
}

// LoadProfileCtx parses and inserts a profile under the write lock,
// carrying the request context for span provenance.
func (s *SafeSystem) LoadProfileCtx(ctx context.Context, text string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.LoadProfileCtx(ctx, text)
}

// Query executes a contextual query; shared lock unless caching.
func (s *SafeSystem) Query(q Query, current State) (*Result, error) {
	return s.QueryCtx(context.Background(), q, current)
}

// QueryCtx executes a contextual query with cooperative cancellation
// (see System.QueryCtx); shared lock unless caching. Lock acquisition
// itself is not interruptible — the deadline takes effect once the
// evaluation starts scanning.
func (s *SafeSystem) QueryCtx(ctx context.Context, q Query, current State) (*Result, error) {
	ctx, sp := tracing.Start(ctx, "system.query")
	defer sp.End()
	if s.caching {
		s.mu.Lock()
		defer s.mu.Unlock()
	} else {
		s.mu.RLock()
		defer s.mu.RUnlock()
	}
	res, err := s.sys.QueryCtx(ctx, q, current)
	sp.Fail(err)
	return res, err
}

// Resolve performs context resolution under the shared lock.
func (s *SafeSystem) Resolve(st State) (Candidate, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sys.Resolve(st)
}

// ResolveCtx performs cancellable context resolution under the shared
// lock (see System.ResolveCtx).
func (s *SafeSystem) ResolveCtx(ctx context.Context, st State) (Candidate, bool, error) {
	ctx, sp := tracing.Start(ctx, "system.resolve")
	defer sp.End()
	s.mu.RLock()
	defer s.mu.RUnlock()
	cand, ok, err := s.sys.ResolveCtx(ctx, st)
	sp.Fail(err)
	return cand, ok, err
}

// ResolveAll lists covering states under the shared lock.
func (s *SafeSystem) ResolveAll(st State) ([]Candidate, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sys.ResolveAll(st)
}

// ResolveAllCtx lists covering states with cooperative cancellation
// under the shared lock (see System.ResolveAllCtx).
func (s *SafeSystem) ResolveAllCtx(ctx context.Context, st State) ([]Candidate, error) {
	ctx, sp := tracing.Start(ctx, "system.resolve_all")
	defer sp.End()
	s.mu.RLock()
	defer s.mu.RUnlock()
	cands, err := s.sys.ResolveAllCtx(ctx, st)
	sp.Fail(err)
	return cands, err
}

// NewState validates a context state (no lock needed: the environment
// is immutable).
func (s *SafeSystem) NewState(values ...string) (State, error) {
	return s.sys.NewState(values...)
}

// Stats snapshots the storage statistics under the shared lock.
func (s *SafeSystem) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sys.Stats()
}

// ExportProfile renders the stored preferences under the shared lock.
func (s *SafeSystem) ExportProfile() (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sys.ExportProfile()
}

// NumPreferences returns the stored preference count.
func (s *SafeSystem) NumPreferences() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sys.NumPreferences()
}
