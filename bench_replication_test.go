package contextpref

// Replication throughput benchmark: how fast the leader→follower
// pipeline moves committed records end to end — leader durable append,
// tap, wire framing over an in-memory connection, follower durable
// graft, and ack — with both journals on the in-memory filesystem so
// the number isolates the replication machinery from disk speed.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"contextpref/internal/faultfs"
	"contextpref/internal/journal"
	"contextpref/internal/replication"
)

// BenchmarkReplicationShip appends one record per iteration on the
// leader and waits for the follower to durably hold the full stream;
// ns/op is therefore the amortized replicated-append latency and
// 1e9/ns-per-op the records/sec shipping rate.
func BenchmarkReplicationShip(b *testing.B) {
	lj, _, err := journal.OpenFS(faultfs.NewMemFS(), "/leader")
	if err != nil {
		b.Fatal(err)
	}
	defer lj.Close()
	ln := newPipeListener()
	leader := replication.NewLeader(lj, replication.LeaderConfig{
		Heartbeat:  time.Second,
		SendBuffer: 4096,
	})
	go leader.Serve(ln)
	defer leader.Close()

	fj, _, err := journal.OpenFS(faultfs.NewMemFS(), "/replica")
	if err != nil {
		b.Fatal(err)
	}
	defer fj.Close()
	fol, err := replication.NewFollower(fj, replication.FollowerConfig{
		Dial:        ln.dial,
		Apply:       func([]journal.Record) error { return nil },
		Reset:       func([]journal.Record) error { return nil },
		Backoff:     time.Millisecond,
		ReadTimeout: time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go fol.Run(ctx)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := lj.Append(journal.Record{
			Op:   journal.OpAdd,
			User: "bench",
			Line: fmt.Sprintf("[accompanying_people = friends] => type = museum : 0.%d", i%9+1),
		}); err != nil {
			b.Fatal(err)
		}
		// Backpressure: never outrun the send buffer, or the bench
		// degenerates into cut-and-resync churn instead of measuring
		// the steady-state pipeline.
		for lj.LastSeq()-fol.AppliedSeq() > 2048 {
			time.Sleep(20 * time.Microsecond)
		}
	}
	target := lj.LastSeq()
	for fol.AppliedSeq() < target {
		time.Sleep(50 * time.Microsecond)
	}
}
