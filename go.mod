module contextpref

go 1.22
