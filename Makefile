# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race cover bench bench-json bench-smoke experiments fuzz fuzz-smoke verify fmt vet lint lint-json clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem .

# Tier-1 benchmarks as machine-readable JSON, for diffing in CI.
# Parameterized by PR so each PR's numbers land in their own file
# instead of silently overwriting the previous baseline.
BENCH_PR ?= PR10
BENCH_OUT ?= BENCH_$(BENCH_PR).json
# The paired tracing benchmark runs in its own pass with a long fixed
# iteration count: its overhead_% metric compares two loopback-HTTP
# arms whose scheduler noise only averages out over tens of thousands
# of requests, far past what the default benchtime samples. Both
# outputs feed the same JSON file.
bench-json:
	{ $(GO) test -run='^$$' -bench=. -benchmem -skip='ResolveTracing/paired$$' . && \
	  $(GO) test -run='^$$' -bench='ResolveTracing/paired$$' -benchtime=2500x -benchmem . ; } | tee /dev/stderr | $(GO) run ./cmd/benchjson > $(BENCH_OUT)

# One-iteration smoke of the bench-json pipeline: proves the benchmarks
# still compile and the JSON converter still parses their output,
# without paying for a real measurement. CI runs this on every PR.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x -benchmem . | $(GO) run ./cmd/benchjson > /dev/null

# Regenerates every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/experiments -run all

# Short fuzzing sessions over the text parsers and journal recovery.
fuzz:
	$(GO) test -fuzz=FuzzParseLine -fuzztime=30s ./internal/preference/
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/cpql/
	$(GO) test -fuzz=FuzzJournalRecovery -fuzztime=30s ./internal/journal/
	$(GO) test -fuzz='FuzzReplicationFrame$$' -fuzztime=30s ./internal/replication/
	$(GO) test -fuzz=FuzzTraceparent -fuzztime=30s ./internal/tracing/

# Quick fuzz smoke of the query parser and journal recovery, cheap
# enough for CI.
fuzz-smoke:
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/cpql/
	$(GO) test -fuzz=FuzzParseLine -fuzztime=5s ./internal/preference/
	$(GO) test -fuzz=FuzzJournalRecovery -fuzztime=5s ./internal/journal/
	$(GO) test -fuzz='FuzzReplicationFrame$$' -fuzztime=5s ./internal/replication/
	$(GO) test -fuzz=FuzzTraceparent -fuzztime=5s ./internal/tracing/

# The pre-merge gate: static checks, the race detector, and a fuzz smoke.
verify: vet lint race fuzz-smoke

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# cpvet: the repo's own static-analysis pass over the service-layer
# contracts (structured errors, slog-only logging, scan-loop
# cancellation, cp_* metric naming, deterministic replay paths, %w
# wrapping, span lifetimes) and the concurrency/allocation contracts
# (lock ordering, unlock discipline, goroutine lifecycles, hot-path
# allocation budgets). Runs against the committed baseline: zero fresh
# findings and zero stale baseline entries required; see README
# "Static analysis" and DESIGN §14.
lint:
	$(GO) run ./cmd/cpvet -baseline .cpvet-baseline.json ./...

# Machine-readable lint report, uploaded as a CI artifact.
lint-json:
	$(GO) run ./cmd/cpvet -baseline .cpvet-baseline.json -json ./... > cpvet-report.json

# Reproduces the artifacts checked into the repository root.
artifacts:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	rm -f cover.out
