package httpapi

// Follower-mode serving contract: mutations are rejected with a
// structured 503 "read_only", data reads serve while the replica is
// within its staleness bound and fail with 503 "stale" beyond it, and
// /readyz walks the Following / stale / Promoting states.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"contextpref"
	"contextpref/internal/dataset"
)

// followerFixture is a multi-user server in follower role with a
// controllable staleness source.
type followerFixture struct {
	ts     *httptest.Server
	health *contextpref.Health

	mu  sync.Mutex
	lag time.Duration
}

func (f *followerFixture) setLag(d time.Duration) {
	f.mu.Lock()
	f.lag = d
	f.mu.Unlock()
}

func (f *followerFixture) staleness() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lag
}

func newFollowerServer(t *testing.T, maxStaleness time.Duration) *followerFixture {
	t.Helper()
	env, err := dataset.RealEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	rel, err := dataset.POIs(env, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := contextpref.NewDirectory(env, rel)
	if err != nil {
		t.Fatal(err)
	}
	// Replicated state the follower already holds, loaded before the
	// role flips (the stream's own applies bypass the role gate).
	sys, err := dir.User("alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadProfile("[accompanying_people = friends] => type = bar : 0.8\n"); err != nil {
		t.Fatal(err)
	}
	health := contextpref.NewHealth()
	health.SetRole(contextpref.RoleFollower)
	dir.SetHealth(health)

	f := &followerFixture{health: health}
	srv, err := NewMultiUser(dir,
		WithHealth(health),
		WithReplica(f.staleness, maxStaleness))
	if err != nil {
		t.Fatal(err)
	}
	f.ts = httptest.NewServer(srv)
	t.Cleanup(f.ts.Close)
	return f
}

func errCode(t *testing.T, body string) string {
	t.Helper()
	var e struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal([]byte(body), &e); err != nil {
		t.Fatalf("response %q is not a structured error: %v", body, err)
	}
	return e.Code
}

func TestFollowerRejectsMutationsReadOnly(t *testing.T) {
	f := newFollowerServer(t, time.Second)
	pref := "[accompanying_people = friends] => type = brewery : 0.9\n"

	resp, body := post(t, f.ts.URL+"/preferences?user=alice", "text/plain", pref)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /preferences on follower: %d %s", resp.StatusCode, body)
	}
	if code := errCode(t, body); code != "read_only" {
		t.Fatalf("POST /preferences code %q, want read_only", code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("read_only rejection carries no Retry-After")
	}

	respDel, bodyDel := doBody(t, http.MethodDelete, f.ts.URL+"/preferences?user=alice", pref)
	if respDel.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("DELETE /preferences on follower: %d %s", respDel.StatusCode, bodyDel)
	}
	if code := errCode(t, bodyDel); code != "read_only" {
		t.Fatalf("DELETE /preferences code %q, want read_only", code)
	}
}

func TestFollowerServesReadsWithinBound(t *testing.T) {
	f := newFollowerServer(t, time.Second)
	f.setLag(10 * time.Millisecond)

	resp, body := get(t, f.ts.URL+"/preferences?user=alice")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /preferences on fresh follower: %d %s", resp.StatusCode, body)
	}
	if body == "" {
		t.Fatal("fresh follower served an empty profile")
	}
	resp, body = get(t, f.ts.URL+"/resolve?user=alice&state=friends,t03,ath_r01")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /resolve on fresh follower: %d %s", resp.StatusCode, body)
	}
	resp, body = get(t, f.ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /readyz on fresh follower: %d %s", resp.StatusCode, body)
	}
	var st struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "following" {
		t.Fatalf("/readyz status %q, want following", st.Status)
	}
}

func TestFollowerRejectsStaleReads(t *testing.T) {
	f := newFollowerServer(t, 50*time.Millisecond)
	f.setLag(10 * time.Second)

	for _, path := range []string{
		"/preferences?user=alice",
		"/resolve?user=alice&state=friends,t03,ath_r01",
		"/stats?user=alice",
	} {
		resp, body := get(t, f.ts.URL+path)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("GET %s on stale follower: %d %s", path, resp.StatusCode, body)
		}
		if code := errCode(t, body); code != "stale" {
			t.Fatalf("GET %s code %q, want stale", path, code)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("GET %s: stale rejection carries no Retry-After", path)
		}
	}
	// Queries read replicated data too.
	resp, body := post(t, f.ts.URL+"/query?user=alice", "application/json",
		`{"query":"top 3","current":["friends","t03","ath_r01"]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST /query on stale follower: %d %s", resp.StatusCode, body)
	}
	if code := errCode(t, body); code != "stale" {
		t.Fatalf("POST /query code %q, want stale", code)
	}
	// The immutable environment and the probes still serve.
	resp, _ = get(t, f.ts.URL+"/env")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /env on stale follower: %d", resp.StatusCode)
	}
	resp, _ = get(t, f.ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz on stale follower: %d", resp.StatusCode)
	}
	// readyz reflects the lag so balancers drain the replica.
	resp, body = get(t, f.ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /readyz on stale follower: %d %s", resp.StatusCode, body)
	}
	var st struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "stale" {
		t.Fatalf("/readyz status %q, want stale", st.Status)
	}
	// Recovery: the stream catches up and reads serve again.
	f.setLag(time.Millisecond)
	resp, _ = get(t, f.ts.URL+"/preferences?user=alice")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /preferences after catch-up: %d", resp.StatusCode)
	}
}

func TestReadyzPromotionStates(t *testing.T) {
	f := newFollowerServer(t, time.Second)
	read := func() (int, string) {
		resp, body := get(t, f.ts.URL+"/readyz")
		var st struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, st.Status
	}
	if code, status := read(); code != http.StatusOK || status != "following" {
		t.Fatalf("follower readyz: %d %q, want 200 following", code, status)
	}
	f.health.SetRole(contextpref.RolePromoting)
	if code, status := read(); code != http.StatusServiceUnavailable || status != "promoting" {
		t.Fatalf("promoting readyz: %d %q, want 503 promoting", code, status)
	}
	// Mutations stay rejected mid-promotion.
	resp, body := post(t, f.ts.URL+"/preferences?user=alice", "text/plain",
		"[accompanying_people = friends] => type = brewery : 0.9\n")
	if resp.StatusCode != http.StatusServiceUnavailable || errCode(t, body) != "read_only" {
		t.Fatalf("mutation mid-promotion: %d %s", resp.StatusCode, body)
	}
	f.health.SetRole(contextpref.RoleLeader)
	if code, status := read(); code != http.StatusOK || status != "ready" {
		t.Fatalf("promoted readyz: %d %q, want 200 ready", code, status)
	}
	// And the promoted node accepts writes again.
	resp, body = post(t, f.ts.URL+"/preferences?user=alice", "text/plain",
		"[accompanying_people = friends] => type = brewery : 0.9\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutation after promotion: %d %s", resp.StatusCode, body)
	}
}

// doBody issues a request with a body for methods http.Post won't do.
func doBody(t *testing.T, method, url, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, b.String()
}
