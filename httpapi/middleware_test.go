package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"contextpref"
	"contextpref/internal/telemetry"
)

// telemetryServer builds a server with a fresh registry, a
// buffer-backed structured logger, and any extra options, plus a /boom
// route for exercising panic recovery.
func telemetryServer(t *testing.T, opts ...ServerOption) (*httptest.Server, *telemetry.Registry, *bytes.Buffer) {
	t.Helper()
	env, rel := newFixture(t)
	sys, err := contextpref.NewSystem(env, rel)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	var logs bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logs, nil))
	srv, err := New(sys, append([]ServerOption{
		WithTelemetry(reg),
		WithLogger(logger),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	srv.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, reg, &logs
}

func scrape(t *testing.T, reg *telemetry.Registry) string {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestRequestMetrics: served requests show up in cp_http_requests_total
// with endpoint/method/code labels, the latency histogram counts them,
// and the in-flight gauge returns to zero.
func TestRequestMetrics(t *testing.T) {
	ts, reg, _ := telemetryServer(t)

	for i := 0; i < 3; i++ {
		if resp, _ := get(t, ts.URL+"/env"); resp.StatusCode != http.StatusOK {
			t.Fatalf("/env = %d", resp.StatusCode)
		}
	}
	if resp, _ := get(t, ts.URL+"/no-such-route"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown route = %d", resp.StatusCode)
	}

	out := scrape(t, reg)
	for _, want := range []string{
		`cp_http_requests_total{endpoint="/env",method="GET",code="200"} 3`,
		`cp_http_requests_total{endpoint="other",method="GET",code="404"} 1`,
		`cp_http_request_seconds_count{endpoint="/env"} 3`,
		"cp_http_inflight_requests 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

// TestPanicMetricsAndRequestID: a recovered panic increments
// cp_http_panics_total, is counted as a 500 response, and the recovery
// log line carries the request ID the client received.
func TestPanicMetricsAndRequestID(t *testing.T) {
	ts, reg, logs := telemetryServer(t)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/boom", nil)
	req.Header.Set("X-Request-ID", "rid-panic-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "rid-panic-42" {
		t.Errorf("request id not echoed: %q", got)
	}

	out := scrape(t, reg)
	for _, want := range []string{
		"cp_http_panics_total 1",
		`cp_http_requests_total{endpoint="other",method="GET",code="500"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}

	logged := logs.String()
	if !strings.Contains(logged, "panic serving request") {
		t.Fatalf("no recovery log line:\n%s", logged)
	}
	if !strings.Contains(logged, "request_id=rid-panic-42") {
		t.Errorf("recovery log missing request id:\n%s", logged)
	}
	if !strings.Contains(logged, "kaboom") {
		t.Errorf("recovery log missing panic value:\n%s", logged)
	}
}

// TestSlowRequestLog: requests at or over the threshold emit a Warn
// line with the request ID, path, status, and duration.
func TestSlowRequestLog(t *testing.T) {
	ts, _, logs := telemetryServer(t, WithSlowRequestThreshold(time.Nanosecond))

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "rid-slow-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	logged := logs.String()
	if !strings.Contains(logged, "slow request") {
		t.Fatalf("no slow-request log:\n%s", logged)
	}
	for _, want := range []string{
		"request_id=rid-slow-7", "path=/healthz", "status=200", "duration=",
	} {
		if !strings.Contains(logged, want) {
			t.Errorf("slow-request log missing %q:\n%s", want, logged)
		}
	}
}

// TestShedMetrics: requests shed by the concurrency limiter count into
// cp_http_shed_total and are recorded as 503s.
func TestShedMetrics(t *testing.T) {
	ts, reg, _ := telemetryServer(t, WithMaxInflight(1))

	// Saturate the limiter deterministically by taking its only slot.
	srv := tsHandler(t, ts)
	srv.sem <- struct{}{}
	defer func() { <-srv.sem }()

	resp, body := get(t, ts.URL+"/env")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expected shed, got %d %q", resp.StatusCode, body)
	}
	out := scrape(t, reg)
	for _, want := range []string{
		"cp_http_shed_total 1",
		`cp_http_requests_total{endpoint="/env",method="GET",code="503"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

// tsHandler digs the *Server back out of the httptest.Server config.
func tsHandler(t *testing.T, ts *httptest.Server) *Server {
	t.Helper()
	srv, ok := ts.Config.Handler.(*Server)
	if !ok {
		t.Fatalf("handler is %T, not *Server", ts.Config.Handler)
	}
	return srv
}

// TestTelemetryDisabled: without WithTelemetry every endpoint works and
// nothing is registered anywhere — the no-op path.
func TestTelemetryDisabled(t *testing.T) {
	env, rel := newFixture(t)
	sys, err := contextpref.NewSystem(env, rel)
	if err != nil {
		t.Fatal(err)
	}
	var logs bytes.Buffer
	srv, err := New(sys, WithLogger(slog.New(slog.NewTextHandler(&logs, nil))))
	if err != nil {
		t.Fatal(err)
	}
	srv.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if resp, _ := get(t, ts.URL+"/env"); resp.StatusCode != http.StatusOK {
		t.Errorf("/env = %d", resp.StatusCode)
	}
	// Panic recovery must not trip over the nil metrics handle.
	if resp, _ := get(t, ts.URL+"/boom"); resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("/boom = %d", resp.StatusCode)
	}
	if !strings.Contains(logs.String(), "panic serving request") {
		t.Error("recovery log missing without telemetry")
	}
}

// TestMetricsEndpointFormat: every non-comment line the registry emits
// is a parseable "name{labels} value" pair and the core families carry
// TYPE headers — the contract a Prometheus scraper relies on.
func TestMetricsEndpointFormat(t *testing.T) {
	ts, reg, _ := telemetryServer(t)
	if resp, _ := get(t, ts.URL+"/env"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/env failed: %d", resp.StatusCode)
	}

	mts := httptest.NewServer(reg.MetricsHandler())
	defer mts.Close()
	resp, body := get(t, mts.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		var name string
		var value float64
		rest := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name, rest = line[:i], line[i:]
		}
		if j := strings.LastIndex(rest, " "); j >= 0 {
			if _, err := fmt.Sscanf(rest[j+1:], "%g", &value); err != nil {
				t.Errorf("unparseable value in line %q: %v", line, err)
			}
		} else {
			t.Errorf("no value in line %q", line)
		}
		if name == "" {
			t.Errorf("no metric name in line %q", line)
		}
	}
	for _, want := range []string{
		"# TYPE cp_http_requests_total counter",
		"# TYPE cp_http_request_seconds histogram",
		"# TYPE cp_http_inflight_requests gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in metrics output", want)
		}
	}

	// /varz must be valid JSON mirroring the same names.
	vts := httptest.NewServer(reg.VarzHandler())
	defer vts.Close()
	resp, body = get(t, vts.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("varz = %d", resp.StatusCode)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("varz not JSON: %v\n%s", err, body)
	}
	if _, ok := snap["cp_http_inflight_requests"]; !ok {
		t.Errorf("varz missing cp_http_inflight_requests: %v", snap)
	}
}
