package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"contextpref"
	"contextpref/internal/dataset"
)

func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	env, err := dataset.RealEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	rel, err := dataset.POIs(env, 120, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := contextpref.NewSystem(env, rel, contextpref.WithQueryCache(32))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, url, contentType, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, b.String()
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, b.String()
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil system should fail")
	}
}

func TestEnvEndpoint(t *testing.T) {
	ts := newServer(t)
	resp, body := get(t, ts.URL+"/env")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var params []EnvParameter
	if err := json.Unmarshal([]byte(body), &params); err != nil {
		t.Fatal(err)
	}
	if len(params) != 3 {
		t.Fatalf("params = %d", len(params))
	}
	if params[2].Name != "location" || params[2].DetailedDomain != 100 {
		t.Errorf("location param = %+v", params[2])
	}
	if len(params[2].SampleValues) != 10 {
		t.Errorf("samples = %d", len(params[2].SampleValues))
	}
}

func TestPreferenceLifecycle(t *testing.T) {
	ts := newServer(t)
	// Add two preferences.
	profile := `[accompanying_people = friends] => type = brewery : 0.9
[time = morning] => type = museum : 0.8`
	resp, body := post(t, ts.URL+"/preferences", "text/plain", profile)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"preferences":2`) {
		t.Errorf("add response = %s", body)
	}
	// Export round-trips.
	resp, body = get(t, ts.URL+"/preferences")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "brewery") {
		t.Errorf("export = %d %q", resp.StatusCode, body)
	}
	// Stats reflect the profile.
	resp, body = get(t, ts.URL+"/stats")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"Preferences":2`) {
		t.Errorf("stats = %d %s", resp.StatusCode, body)
	}
	// A conflicting preference yields 409.
	resp, body = post(t, ts.URL+"/preferences", "text/plain",
		"[accompanying_people = friends] => type = brewery : 0.1")
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("conflict status = %d %s", resp.StatusCode, body)
	}
	// Malformed preference yields 400.
	resp, _ = post(t, ts.URL+"/preferences", "text/plain", "garbage")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad add status = %d", resp.StatusCode)
	}
}

func TestQueryEndpoint(t *testing.T) {
	ts := newServer(t)
	post(t, ts.URL+"/preferences", "text/plain",
		"[accompanying_people = friends] => type = brewery : 0.9")

	// Query under a current context.
	req := `{"query": "top 5", "current": ["friends", "t03", "ath_r01"]}`
	resp, body := post(t, ts.URL+"/query", "application/json", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal([]byte(body), &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Contextual || len(qr.Tuples) == 0 {
		t.Fatalf("response = %+v", qr)
	}
	if qr.Tuples[0].Score != 0.9 {
		t.Errorf("top score = %v", qr.Tuples[0].Score)
	}
	if len(qr.Matched) != 1 || !strings.Contains(qr.Matched[0], "friends") {
		t.Errorf("matched = %v", qr.Matched)
	}
	// Query with an explicit context clause, no current state.
	req = `{"query": "top 3 context accompanying_people = friends"}`
	resp, body = post(t, ts.URL+"/query", "application/json", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explicit-context query: %d %s", resp.StatusCode, body)
	}
	// Errors.
	for _, bad := range []string{
		`not json`,
		`{"query": "garbage query"}`,
		`{"query": "top 5"}`,                      // no context at all
		`{"query": "top 5", "current": ["nope"]}`, // bad state
		`{"query": "where bogus = 1", "current": ["friends", "t03", "ath_r01"]}`, // bad column
	} {
		resp, _ := post(t, ts.URL+"/query", "application/json", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q status = %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestResolveEndpoint(t *testing.T) {
	ts := newServer(t)
	post(t, ts.URL+"/preferences", "text/plain",
		"[accompanying_people = friends] => type = brewery : 0.9\n[] => type = park : 0.4")

	resp, body := get(t, ts.URL+"/resolve?state=friends,t03,ath_r01")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resolve: %d %s", resp.StatusCode, body)
	}
	var cands []ResolveCandidate
	if err := json.Unmarshal([]byte(body), &cands); err != nil {
		t.Fatal(err)
	}
	// (friends, all, all) and (all, all, all) both cover.
	if len(cands) != 2 {
		t.Fatalf("candidates = %v", cands)
	}
	if cands[0].Distance > cands[1].Distance {
		t.Error("candidates not sorted by distance")
	}
	if len(cands[0].Entries) == 0 {
		t.Error("candidate without entries")
	}
	// Errors.
	if resp, _ := get(t, ts.URL+"/resolve"); resp.StatusCode != http.StatusBadRequest {
		t.Error("missing state should 400")
	}
	if resp, _ := get(t, ts.URL+"/resolve?state=nope"); resp.StatusCode != http.StatusBadRequest {
		t.Error("bad state should 400")
	}
}

func TestMethodRouting(t *testing.T) {
	ts := newServer(t)
	// Wrong method on a route.
	resp, err := http.Post(ts.URL+"/env", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /env status = %d", resp.StatusCode)
	}
	// Unknown route.
	r2, _ := get(t, ts.URL+"/nope")
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope status = %d", r2.StatusCode)
	}
}

func TestMultiUserServer(t *testing.T) {
	env, err := dataset.RealEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	rel, err := dataset.POIs(env, 80, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMultiUser(nil); err == nil {
		t.Error("nil directory should fail")
	}
	defaults, err := dataset.DefaultProfiles(env)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := contextpref.NewDirectory(env, rel,
		contextpref.WithDefaultProfile(func(user string) ([]contextpref.Preference, error) {
			// Seed every user with one of the usability study's
			// demographic defaults.
			return defaults["under30_male_mainstream"], nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewMultiUser(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Alice and Bob have isolated profiles; both start from the seed.
	resp, body := post(t, ts.URL+"/preferences?user=alice", "text/plain",
		"[location = ath_r01] => type = gallery : 0.85")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alice add: %d %s", resp.StatusCode, body)
	}
	resp, body = get(t, ts.URL+"/stats?user=bob")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bob stats: %d %s", resp.StatusCode, body)
	}
	var bobStats contextpref.Stats
	if err := json.Unmarshal([]byte(body), &bobStats); err != nil {
		t.Fatal(err)
	}
	_, aliceBody := get(t, ts.URL+"/stats?user=alice")
	var aliceStats contextpref.Stats
	if err := json.Unmarshal([]byte(aliceBody), &aliceStats); err != nil {
		t.Fatal(err)
	}
	if aliceStats.Preferences != bobStats.Preferences+1 {
		t.Errorf("alice %d prefs, bob %d: expected alice = bob+1",
			aliceStats.Preferences, bobStats.Preferences)
	}
	// Queries go to the right profile.
	req := `{"query": "top 3", "current": ["friends", "t03", "ath_r01"]}`
	resp, body = post(t, ts.URL+"/query?user=alice", "application/json", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alice query: %d %s", resp.StatusCode, body)
	}
	// The users listing includes both plus the implicit default user if
	// touched; here only alice and bob exist.
	resp, body = get(t, ts.URL+"/users")
	if resp.StatusCode != http.StatusOK {
		t.Fatal("users endpoint missing")
	}
	var users []string
	if err := json.Unmarshal([]byte(body), &users); err != nil {
		t.Fatal(err)
	}
	if len(users) != 2 || users[0] != "alice" || users[1] != "bob" {
		t.Errorf("users = %v", users)
	}
	// Omitted user falls back to "default".
	resp, _ = get(t, ts.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Error("default user stats failed")
	}
	if _, body := get(t, ts.URL+"/users"); !strings.Contains(body, "default") {
		t.Errorf("default user not registered: %s", body)
	}
}

func TestRemoveEndpoint(t *testing.T) {
	ts := newServer(t)
	post(t, ts.URL+"/preferences", "text/plain",
		"[accompanying_people = friends] => type = brewery : 0.9\n[time = morning] => type = museum : 0.8")

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/preferences",
		strings.NewReader("[time = morning] => type = museum : 0.8"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d %s", resp.StatusCode, buf[:n])
	}
	if !strings.Contains(string(buf[:n]), `"removed":1`) ||
		!strings.Contains(string(buf[:n]), `"preferences":1`) {
		t.Errorf("delete response = %s", buf[:n])
	}
	// Removing a non-existent preference reports zero.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/preferences",
		strings.NewReader("[time = morning] => type = museum : 0.8"))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	n, _ = resp.Body.Read(buf)
	resp.Body.Close()
	if !strings.Contains(string(buf[:n]), `"removed":0`) {
		t.Errorf("second delete = %s", buf[:n])
	}
	// Malformed body is a 400.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/preferences", strings.NewReader("garbage"))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad delete status = %d", resp.StatusCode)
	}
}
