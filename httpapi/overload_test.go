package httpapi

// Overload-resilience tests: with a server deadline, admission control,
// and chaos-injected latency longer than the deadline, every response
// must be a structured error — no hung requests, no goroutine leaks —
// and a departed client stops the underlying resolution scan early.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"contextpref"
	"contextpref/internal/dataset"
	"contextpref/internal/telemetry"
)

// overloadSystem builds a single-user system over the real environment
// with a profile wide enough that context resolution scans well past
// one cancellation-check window (one preference per location region).
func overloadSystem(t *testing.T, opts ...contextpref.Option) *contextpref.System {
	t.Helper()
	env, err := dataset.RealEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	rel, err := dataset.POIs(env, 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := contextpref.NewSystem(env, rel, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var profile strings.Builder
	for r := 1; r <= 60; r++ {
		fmt.Fprintf(&profile, "[location = ath_r%02d] => type = museum : 0.5\n", r)
	}
	for r := 1; r <= 40; r++ {
		fmt.Fprintf(&profile, "[location = the_r%02d] => type = park : 0.5\n", r)
	}
	if err := sys.LoadProfile(profile.String()); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestRequestTimeoutDeadline(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv, err := New(overloadSystem(t),
		WithRequestTimeout(30*time.Millisecond),
		WithChaos(ChaosConfig{Latency: 300 * time.Millisecond, Seed: 1}),
		WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/resolve?state=friends,t03,ath_r01", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", rec.Code)
	}
	if e := decodeErr(t, rec.Body.String()); e.Code != "deadline" {
		t.Errorf("code = %q, want deadline", e.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("deadline response missing Retry-After")
	}
	if n := reg.Counter("cp_request_timeouts_total", "").Value(); n != 1 {
		t.Errorf("cp_request_timeouts_total = %d, want 1", n)
	}
	// Probes bypass the deadline and the chaos latency entirely.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("probe status = %d, want 200", rec.Code)
	}
}

func TestRateLimitPerKey(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv, err := New(overloadSystem(t), WithRateLimit(1, 1), WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	do := func(key string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", "/env", nil)
		req.Header.Set("X-API-Key", key)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec
	}
	if rec := do("alice"); rec.Code != http.StatusOK {
		t.Fatalf("first request: status = %d, want 200", rec.Code)
	}
	rec := do("alice")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second request: status = %d, want 429", rec.Code)
	}
	if e := decodeErr(t, rec.Body.String()); e.Code != "rate_limited" {
		t.Errorf("code = %q, want rate_limited", e.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("rate-limited response missing Retry-After")
	}
	// A different key has its own bucket.
	if rec := do("bob"); rec.Code != http.StatusOK {
		t.Errorf("other key: status = %d, want 200", rec.Code)
	}
	if n := reg.Counter("cp_rate_limited_total", "").Value(); n != 1 {
		t.Errorf("cp_rate_limited_total = %d, want 1", n)
	}
}

// TestOverloadAllStructuredErrors is the chaos-driven acceptance test:
// injected latency far beyond the server deadline over a tiny inflight
// budget. Every concurrent request must still get a structured
// deadline/shed answer within bounded time, and the goroutine count
// must return to its baseline (nothing hung, nothing leaked).
func TestOverloadAllStructuredErrors(t *testing.T) {
	baseline := runtime.NumGoroutine()
	reg := telemetry.NewRegistry()
	srv, err := New(overloadSystem(t),
		WithMaxInflight(2),
		WithRequestTimeout(40*time.Millisecond),
		WithChaos(ChaosConfig{Latency: 200 * time.Millisecond, Jitter: 50 * time.Millisecond, Seed: 42}),
		WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	client := &http.Client{Timeout: 30 * time.Second}

	const n = 24
	type result struct {
		status int
		code   string
		err    error
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := client.Get(ts.URL + "/resolve?state=friends,t03,ath_r01")
			if err != nil {
				results[i] = result{err: err}
				return
			}
			defer resp.Body.Close()
			var e errBody
			derr := json.NewDecoder(resp.Body).Decode(&e)
			results[i] = result{status: resp.StatusCode, code: e.Code, err: derr}
		}(i)
	}
	wg.Wait()

	sawDeadline := false
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("request %d did not complete cleanly: %v", i, r.err)
		}
		switch r.code {
		case "deadline":
			sawDeadline = true
		case "shed":
		default:
			t.Errorf("request %d: status %d code %q — not a structured overload error", i, r.status, r.code)
		}
		if r.status != http.StatusServiceUnavailable {
			t.Errorf("request %d: status = %d, want 503", i, r.status)
		}
	}
	if !sawDeadline {
		t.Error("no request hit the chaos-latency deadline path")
	}
	if n := reg.Counter("cp_request_timeouts_total", "").Value(); n == 0 {
		t.Error("cp_request_timeouts_total = 0, want > 0")
	}
	if n := reg.CounterVec("cp_chaos_injected_total", "", "kind").With("latency").Value(); n == 0 {
		t.Error("cp_chaos_injected_total{kind=latency} = 0, want > 0")
	}

	client.CloseIdleConnections()
	ts.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseline+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", g, baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCanceledClientStopsScan proves a departed client stops the
// resolution scan early: the cells-visited counter advances far less
// for a cancelled request than for the same request run to completion,
// and the response is the structured 499.
func TestCanceledClientStopsScan(t *testing.T) {
	sysReg := contextpref.NewTelemetryRegistry()
	srv, err := New(overloadSystem(t, contextpref.WithTelemetry(sysReg)))
	if err != nil {
		t.Fatal(err)
	}
	cells := sysReg.Counter("cp_resolve_cells_total", "")

	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/resolve?state=friends,t03,ath_r01", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("full resolve: status = %d body %s", rec.Code, rec.Body.String())
	}
	fullCells := cells.Value()
	if fullCells == 0 {
		t.Fatal("fixture broken: full resolve visited no cells")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET", "/resolve?state=friends,t03,ath_r01", nil).WithContext(ctx)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Errorf("status = %d, want %d", rec.Code, statusClientClosedRequest)
	}
	if e := decodeErr(t, rec.Body.String()); e.Code != "canceled" {
		t.Errorf("code = %q, want canceled", e.Code)
	}
	canceledCells := cells.Value() - fullCells
	if canceledCells == 0 {
		t.Error("cancelled resolve not visible in cp_resolve_cells_total")
	}
	if canceledCells >= fullCells {
		t.Errorf("cancelled resolve visited %d cells, full resolve %d — scan did not stop early",
			canceledCells, fullCells)
	}

	// The query path classifies cancellation the same way.
	body := `{"query":"","current":["friends","t03","ath_r01"]}`
	req = httptest.NewRequest("POST", "/query", strings.NewReader(body)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Errorf("query status = %d body %s, want %d", rec.Code, rec.Body.String(), statusClientClosedRequest)
	}
	if e := decodeErr(t, rec.Body.String()); e.Code != "canceled" {
		t.Errorf("query code = %q, want canceled", e.Code)
	}
}
