package httpapi

// Regression tests for the error-wrapping contract on the serving
// path: context-expiry errors surfacing from deep inside the
// evaluation loops must stay errors.Is-classifiable when they reach
// writeCtxError, so the structured 503 "deadline" / 499 "canceled"
// mapping never degrades into a generic bad_request.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"

	"contextpref"
	"contextpref/internal/dataset"
)

// TestScanErrorStaysClassifiable drives a real query evaluation with
// an already-canceled context and asserts the error that comes back
// up through SafeSystem still matches context.Canceled — the
// in-process half of the contract writeCtxError depends on. The
// per-state check in query.ExecuteCtx fires before any work, so the
// path is deterministic regardless of profile size.
func TestScanErrorStaysClassifiable(t *testing.T) {
	env, err := dataset.RealEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	rel, err := dataset.POIs(env, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := contextpref.NewSystem(env, rel)
	if err != nil {
		t.Fatal(err)
	}
	safe := contextpref.Synchronized(sys)
	if err := safe.LoadProfile("[] => type = museum : 0.6"); err != nil {
		t.Fatal(err)
	}
	vals := make([]string, env.NumParams())
	for i := 0; i < env.NumParams(); i++ {
		vals[i] = env.Param(i).Hierarchy().DetailedValues()[0]
	}
	st, err := safe.NewState(vals...)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := contextpref.ParseQuery("")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, scanErr := safe.QueryCtx(ctx, cq, st)
	if scanErr == nil {
		t.Fatal("query with canceled context succeeded, want a wrapped ctx error")
	}
	if !errors.Is(scanErr, context.Canceled) {
		t.Errorf("errors.Is(scanErr, context.Canceled) = false for %v", scanErr)
	}
	// A further wrap — as the handler plumbing does — must not break
	// classification either.
	wrapped := fmt.Errorf("httpapi: request ended during evaluation: %w", scanErr)
	if !errors.Is(wrapped, context.Canceled) {
		t.Errorf("rewrapped error lost its cause: %v", wrapped)
	}
}

// TestWriteCtxErrorClassification pins the HTTP mapping itself: a
// deadline chain answers 503 {"code":"deadline"}, a cancel chain 499
// {"code":"canceled"}, and an unrelated error is left for the generic
// mapping.
func TestWriteCtxErrorClassification(t *testing.T) {
	s := &Server{}
	s.init(nil)

	cases := []struct {
		err     error
		handled bool
		status  int
		code    string
	}{
		{fmt.Errorf("profiletree: scan stopped: %w", context.DeadlineExceeded), true, 503, "deadline"},
		{fmt.Errorf("relation r: scan stopped: %w", context.Canceled), true, statusClientClosedRequest, "canceled"},
		{fmt.Errorf("parse: bad input"), false, 0, ""},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		if got := s.writeCtxError(rec, tc.err); got != tc.handled {
			t.Errorf("writeCtxError(%v) = %v, want %v", tc.err, got, tc.handled)
			continue
		}
		if !tc.handled {
			continue
		}
		if rec.Code != tc.status {
			t.Errorf("status for %v = %d, want %d", tc.err, rec.Code, tc.status)
		}
		var body map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("response body is not the structured JSON error: %v", err)
		}
		if body["code"] != tc.code {
			t.Errorf("code for %v = %q, want %q", tc.err, body["code"], tc.code)
		}
	}
}
