package httpapi

// Tracing middleware coverage: the root span per request, W3C
// traceparent propagation in both directions, probe exemption, and the
// end-to-end provenance test — a deterministically slowed journal
// fsync must show up as the guilty stage in the retained trace's span
// tree, with correct parentage and attributes, and the slow-request
// log must quote the trace ID and the slowest spans.

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"contextpref"
	"contextpref/internal/dataset"
	"contextpref/internal/faultfs"
	"contextpref/internal/journal"
	"contextpref/internal/tracing"
)

// tracedServer builds a single-user server with the given tracer.
func tracedServer(t *testing.T, tracer *tracing.Tracer) *httptest.Server {
	t.Helper()
	env, err := dataset.RealEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	rel, err := dataset.POIs(env, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := contextpref.NewSystem(env, rel)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, WithTracer(tracer))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// traceIDOf extracts the 32-hex trace ID from a traceparent header.
func traceIDOf(t *testing.T, header string) string {
	t.Helper()
	parts := strings.Split(header, "-")
	if len(parts) != 4 || len(parts[1]) != 32 {
		t.Fatalf("malformed traceparent header %q", header)
	}
	return parts[1]
}

// TestTracingRootSpanPerRequest: with full sampling, every request is
// retained with a root span named after its endpoint and carrying the
// method, path, request ID, and status attributes; the response quotes
// the trace on a traceparent header.
func TestTracingRootSpanPerRequest(t *testing.T) {
	tracer := tracing.New(tracing.Config{SampleRate: 1})
	ts := tracedServer(t, tracer)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	tp := resp.Header.Get("Traceparent")
	if tp == "" {
		t.Fatal("response has no traceparent header")
	}
	snap := tracer.Lookup(traceIDOf(t, tp))
	if snap == nil {
		t.Fatalf("trace %s not retained at sample rate 1", tp)
	}
	if snap.Status != tracing.StatusSampled {
		t.Errorf("trace status = %q, want %q", snap.Status, tracing.StatusSampled)
	}
	if snap.Root != "http /stats" {
		t.Errorf("root span = %q, want %q", snap.Root, "http /stats")
	}
	attrs := map[string]any{}
	for _, sd := range snap.Spans {
		if sd.Parent == 0 {
			for _, a := range sd.Attrs {
				attrs[a.Key] = a.Value()
			}
		}
	}
	for key, want := range map[string]any{
		"method": "GET", "path": "/stats", "status": int64(200),
	} {
		if attrs[key] != want {
			t.Errorf("root attr %s = %v, want %v", key, attrs[key], want)
		}
	}
}

// TestTracingInboundTraceparent: a sampled remote parent is adopted —
// the trace continues the caller's trace ID and is retained even at
// sample rate zero; an unsampled remote parent adopts the ID but is
// not retained.
func TestTracingInboundTraceparent(t *testing.T) {
	tracer := tracing.New(tracing.Config{SlowTrace: time.Hour})
	ts := tracedServer(t, tracer)

	const sampledID = "0af7651916cd43dd8448eb211c80319c"
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/stats", nil)
	req.Header.Set("traceparent", "00-"+sampledID+"-b7ad6b7169203331-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := traceIDOf(t, resp.Header.Get("Traceparent")); got != sampledID {
		t.Errorf("response trace ID = %s, want the inbound %s", got, sampledID)
	}
	if tracer.Lookup(sampledID) == nil {
		t.Error("sampled remote parent did not force retention")
	}

	const unsampledID = "1bf7651916cd43dd8448eb211c80319c"
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/stats", nil)
	req.Header.Set("traceparent", "00-"+unsampledID+"-b7ad6b7169203331-00")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := traceIDOf(t, resp.Header.Get("Traceparent")); got != unsampledID {
		t.Errorf("response trace ID = %s, want the inbound %s", got, unsampledID)
	}
	if tracer.Lookup(unsampledID) != nil {
		t.Error("unsampled healthy trace retained at sample rate 0")
	}
}

// TestTracingProbesAndNilTracer: probes are never traced, and a server
// without a tracer emits no traceparent header at all.
func TestTracingProbesAndNilTracer(t *testing.T) {
	tracer := tracing.New(tracing.Config{SampleRate: 1})
	ts := tracedServer(t, tracer)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tp := resp.Header.Get("Traceparent"); tp != "" {
		t.Errorf("probe response carries traceparent %q", tp)
	}
	for _, snap := range tracer.Snapshots() {
		if snap.Root == "http /healthz" {
			t.Error("probe request was traced")
		}
	}

	plain := tracedServer(t, nil)
	resp, err = http.Get(plain.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tp := resp.Header.Get("Traceparent"); tp != "" {
		t.Errorf("untraced server emitted traceparent %q", tp)
	}
}

// slowSyncFS delays every file Sync: the deterministic stand-in for a
// saturated disk, injected under the journal so the fsync span is the
// provably slowest stage of a mutation.
type slowSyncFS struct {
	faultfs.FS
	delay time.Duration
}

func (s slowSyncFS) OpenFile(name string, flag int) (faultfs.File, error) {
	f, err := s.FS.OpenFile(name, flag)
	if err != nil {
		return nil, err
	}
	return slowSyncFile{File: f, delay: s.delay}, nil
}

type slowSyncFile struct {
	faultfs.File
	delay time.Duration
}

func (f slowSyncFile) Sync() error {
	time.Sleep(f.delay)
	return f.File.Sync()
}

// TestSlowTraceProvenance is the end-to-end tail-retention test: a
// journaled multi-user server whose fsync is deterministically slowed
// serves a mutation; the request must come back with a trace the ring
// retained as slow, whose span tree names the journal fsync as the
// guilty stage — http root → system.add_preferences → journal.append →
// journal.fsync, with the delay on the fsync span — and the
// slow-request log must quote the trace ID and the slowest spans.
func TestSlowTraceProvenance(t *testing.T) {
	const delay = 25 * time.Millisecond
	env, err := dataset.RealEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	rel, err := dataset.POIs(env, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	fsys := slowSyncFS{FS: faultfs.NewMemFS(), delay: delay}
	j, recovered, err := journal.OpenFS(fsys, "/store")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	dir, err := contextpref.NewDirectory(env, rel)
	if err != nil {
		t.Fatal(err)
	}
	if err := dir.Replay(recovered); err != nil {
		t.Fatal(err)
	}
	dir.SetPersister(contextpref.NewJournalPersister(j))
	// Materialize the default user up front: lazy creation would
	// otherwise journal a second append+fsync inside the traced
	// request, and which of the two chains lands in the log's top-3
	// digest would come down to nanosecond timing.
	if _, err := dir.User("default"); err != nil {
		t.Fatal(err)
	}

	// Slow threshold well under the injected delay, zero sampling: the
	// trace can only be retained through the tail (slow) path.
	tracer := tracing.New(tracing.Config{SlowTrace: 5 * time.Millisecond})
	var logs bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logs, nil))
	srv, err := NewMultiUser(dir,
		WithTracer(tracer),
		WithLogger(logger),
		WithSlowRequestThreshold(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/preferences", "text/plain",
		strings.NewReader("[] => type = park : 0.4"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /preferences = %d", resp.StatusCode)
	}

	snap := tracer.Lookup(traceIDOf(t, resp.Header.Get("Traceparent")))
	if snap == nil {
		t.Fatal("slow mutation's trace was not retained")
	}
	if snap.Status != tracing.StatusSlow {
		t.Errorf("trace status = %q, want %q", snap.Status, tracing.StatusSlow)
	}
	if snap.Root != "http /preferences" {
		t.Errorf("root span = %q, want %q", snap.Root, "http /preferences")
	}

	// Walk the tree bottom-up from the fsync under the preference add
	// (user creation journals its own fsync; follow the add chain).
	byID := map[uint64]tracing.SpanData{}
	for _, sd := range snap.Spans {
		byID[sd.ID] = sd
	}
	var add tracing.SpanData
	for _, sd := range snap.Spans {
		if sd.Name == "system.add_preferences" {
			add = sd
		}
	}
	if add.ID == 0 {
		t.Fatalf("no system.add_preferences span in trace:\n%s", tracing.RenderTree(snap))
	}
	if parent := byID[add.Parent]; parent.Parent != 0 || parent.Name != "http /preferences" {
		t.Errorf("add_preferences hangs under %q, want the http root", parent.Name)
	}
	var appendSpan tracing.SpanData
	for _, sd := range snap.Spans {
		if sd.Name == "journal.append" && sd.Parent == add.ID {
			appendSpan = sd
		}
	}
	if appendSpan.ID == 0 {
		t.Fatalf("no journal.append under system.add_preferences:\n%s", tracing.RenderTree(snap))
	}
	var fsync tracing.SpanData
	for _, sd := range snap.Spans {
		if sd.Name == "journal.fsync" && sd.Parent == appendSpan.ID {
			fsync = sd
		}
	}
	if fsync.ID == 0 {
		t.Fatalf("no journal.fsync under journal.append:\n%s", tracing.RenderTree(snap))
	}

	// The guilty stage: the injected delay sits on the fsync span, and
	// the fsync dominates its parent append (everything else the append
	// does is in-memory).
	if fsync.Duration < delay {
		t.Errorf("fsync span lasted %s, want >= the injected %s", fsync.Duration, delay)
	}
	if overhead := appendSpan.Duration - fsync.Duration; overhead > delay/2 {
		t.Errorf("append span spends %s outside fsync; the fsync should dominate", overhead)
	}
	records := int64(-1)
	for _, a := range appendSpan.Attrs {
		if a.Key == "records" {
			records = a.Int
		}
	}
	if records != 1 {
		t.Errorf("journal.append records attr = %d, want 1", records)
	}

	logged := logs.String()
	if !strings.Contains(logged, "slow request") {
		t.Fatalf("no slow-request log:\n%s", logged)
	}
	if !strings.Contains(logged, "trace_id="+snap.TraceID) {
		t.Errorf("slow-request log does not quote the trace ID:\n%s", logged)
	}
	if !strings.Contains(logged, "span1=") || !strings.Contains(logged, "journal.fsync") {
		t.Errorf("slow-request log does not name the slowest spans:\n%s", logged)
	}
}
