package httpapi

// Serving-layer observability: per-endpoint request metrics, the
// response recorder that captures status codes for them, and the
// structured request/slow-request/panic logging configuration. The
// middleware chain in ServeHTTP applies these around every request.

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"contextpref/internal/telemetry"
	"contextpref/internal/tracing"
)

// WithTelemetry reports serving metrics (cp_http_*) into the registry:
// per-endpoint request counts and latency, in-flight requests, shed
// requests, and recovered panics. A nil registry leaves telemetry
// disabled (the default): every hook degrades to a nil check.
func WithTelemetry(reg *telemetry.Registry) ServerOption {
	return func(s *Server) { s.metrics = newHTTPMetrics(reg) }
}

// WithLogger sets the structured logger for request, slow-request, and
// panic logs. The default is slog.Default(), which writes through the
// standard log package.
func WithLogger(l *slog.Logger) ServerOption {
	return func(s *Server) {
		if l != nil {
			s.logger = l
		}
	}
}

// WithSlowRequestThreshold enables the slow-request log: any request
// served in d or longer is logged at Warn level with its request ID,
// endpoint, status, and duration. d <= 0 disables it (the default).
func WithSlowRequestThreshold(d time.Duration) ServerOption {
	return func(s *Server) { s.slowThreshold = d }
}

// WithTracer attaches a span tracer: every non-probe request gets a
// root span named after its endpoint, an inbound W3C traceparent header
// is honored as the remote parent (a sampled remote forces retention),
// and the response carries a traceparent header so clients can quote
// the trace ID back. The request context threads the root span through
// the store, so resolution, query evaluation, and journal spans nest
// under it. A nil tracer leaves tracing disabled (the default).
func WithTracer(t *tracing.Tracer) ServerOption {
	return func(s *Server) { s.tracer = t }
}

// httpMetrics holds the serving-layer instruments. A nil *httpMetrics
// (telemetry disabled) makes every method a no-op.
type httpMetrics struct {
	requests    *telemetry.CounterVec   // endpoint, method, code
	latency     *telemetry.HistogramVec // endpoint
	inflight    *telemetry.Gauge
	shed        *telemetry.Counter
	panics      *telemetry.Counter
	timeouts    *telemetry.Counter
	rateLimits  *telemetry.Counter
	chaosInject *telemetry.CounterVec // kind
}

func newHTTPMetrics(reg *telemetry.Registry) *httpMetrics {
	if reg == nil {
		return nil
	}
	return &httpMetrics{
		requests: reg.CounterVec("cp_http_requests_total",
			"HTTP requests served, by endpoint, method, and status code.",
			"endpoint", "method", "code"),
		latency: reg.HistogramVec("cp_http_request_seconds",
			"HTTP request latency by endpoint.", telemetry.DefBuckets, "endpoint"),
		inflight: reg.Gauge("cp_http_inflight_requests",
			"HTTP requests currently being served."),
		shed: reg.Counter("cp_http_shed_total",
			"HTTP requests shed by admission control (overloaded or predicted to miss their deadline)."),
		panics: reg.Counter("cp_http_panics_total",
			"Handler panics recovered by the middleware."),
		timeouts: reg.Counter("cp_request_timeouts_total",
			"Requests answered with the structured deadline error (server deadline exceeded)."),
		rateLimits: reg.Counter("cp_rate_limited_total",
			"Requests rejected by the per-user/per-key token-bucket rate limiter."),
		chaosInject: reg.CounterVec("cp_chaos_injected_total",
			"Faults injected by the chaos middleware, by kind (latency, error).", "kind"),
	}
}

// begin marks a request in flight.
func (m *httpMetrics) begin() {
	if m != nil {
		m.inflight.Inc()
	}
}

// done records a finished request.
func (m *httpMetrics) done(endpoint, method string, code int, d time.Duration) {
	if m == nil {
		return
	}
	m.inflight.Dec()
	m.requests.With(endpoint, method, strconv.Itoa(code)).Inc()
	m.latency.With(endpoint).Observe(d.Seconds())
}

// shedded records a load-shed request.
func (m *httpMetrics) shedded() {
	if m != nil {
		m.shed.Inc()
	}
}

// panicked records a recovered handler panic.
func (m *httpMetrics) panicked() {
	if m != nil {
		m.panics.Inc()
	}
}

// timedOut records a request answered with the structured deadline
// error.
func (m *httpMetrics) timedOut() {
	if m != nil {
		m.timeouts.Inc()
	}
}

// rateLimited records a request rejected by the rate limiter.
func (m *httpMetrics) rateLimited() {
	if m != nil {
		m.rateLimits.Inc()
	}
}

// chaosInjected records one injected fault ("latency" or "error").
func (m *httpMetrics) chaosInjected(kind string) {
	if m != nil {
		m.chaosInject.With(kind).Inc()
	}
}

// endpointLabel maps a request path to a bounded metric label: the
// fixed route set of this API, with everything else folded into
// "other" so an URL-scanning client cannot explode label cardinality.
func endpointLabel(path string) string {
	switch path {
	case "/env", "/stats", "/preferences", "/query", "/resolve",
		"/healthz", "/readyz", "/users":
		return path
	}
	return "other"
}

// rootSpanName returns the root-span name for a bounded endpoint
// label. The names are constants so the traced hot path pays no
// per-request string concatenation.
func rootSpanName(endpoint string) string {
	switch endpoint {
	case "/env":
		return "http /env"
	case "/stats":
		return "http /stats"
	case "/preferences":
		return "http /preferences"
	case "/query":
		return "http /query"
	case "/resolve":
		return "http /resolve"
	case "/users":
		return "http /users"
	}
	return "http other"
}

// statusRecorder captures the status code and body size a handler
// writes, for metrics and the slow-request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }
