package httpapi

// Tests for the lazy deadline context: stdlib-equivalent semantics
// (Err, Done, Deadline, parent propagation, cancel) without the eager
// timer arm.

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestLazyDeadlineErrPolling(t *testing.T) {
	ctx, cancel := withLazyDeadline(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := ctx.Err(); err != nil {
		t.Fatalf("Err before deadline = %v", err)
	}
	dl, ok := ctx.Deadline()
	if !ok || time.Until(dl) > 30*time.Millisecond {
		t.Errorf("Deadline() = %v %v", dl, ok)
	}
	time.Sleep(40 * time.Millisecond)
	if err := ctx.Err(); err != context.DeadlineExceeded {
		t.Errorf("Err after deadline = %v, want DeadlineExceeded", err)
	}
	// Cancel after expiry keeps the deadline error, like stdlib.
	cancel()
	if err := ctx.Err(); err != context.DeadlineExceeded {
		t.Errorf("Err after cancel-past-deadline = %v, want DeadlineExceeded", err)
	}
}

func TestLazyDeadlineDoneFires(t *testing.T) {
	ctx, cancel := withLazyDeadline(context.Background(), 20*time.Millisecond)
	defer cancel()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("Done never fired")
	}
	if err := ctx.Err(); err != context.DeadlineExceeded {
		t.Errorf("Err = %v, want DeadlineExceeded", err)
	}
}

func TestLazyDeadlineDoneAlreadyExpired(t *testing.T) {
	ctx, cancel := withLazyDeadline(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	select {
	case <-ctx.Done():
	default:
		t.Fatal("Done channel of an expired context must be closed on creation")
	}
}

func TestLazyDeadlineParentCancelPropagates(t *testing.T) {
	parent, pcancel := context.WithCancel(context.Background())
	ctx, cancel := withLazyDeadline(parent, time.Hour)
	defer cancel()
	done := ctx.Done() // arm the watcher
	pcancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("parent cancellation never propagated to Done")
	}
	if err := ctx.Err(); err != context.Canceled {
		t.Errorf("Err = %v, want Canceled from parent", err)
	}
}

func TestLazyDeadlineParentErrWithoutDone(t *testing.T) {
	parent, pcancel := context.WithCancel(context.Background())
	ctx, cancel := withLazyDeadline(parent, time.Hour)
	defer cancel()
	pcancel()
	if err := ctx.Err(); err != context.Canceled {
		t.Errorf("Err = %v, want parent's Canceled even when Done was never requested", err)
	}
}

func TestLazyDeadlineCancelUnblocksAndIsIdempotent(t *testing.T) {
	ctx, cancel := withLazyDeadline(context.Background(), time.Hour)
	done := ctx.Done()
	cancel()
	cancel()
	select {
	case <-done:
	default:
		t.Fatal("cancel must close Done")
	}
	if err := ctx.Err(); err != context.Canceled {
		t.Errorf("Err = %v, want Canceled", err)
	}
}

func TestLazyDeadlineInheritsEarlierParentDeadline(t *testing.T) {
	parent, pcancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer pcancel()
	ctx, cancel := withLazyDeadline(parent, time.Hour)
	defer cancel()
	dl, ok := ctx.Deadline()
	if !ok || time.Until(dl) > 10*time.Millisecond {
		t.Errorf("Deadline() = %v, want the parent's nearer deadline", dl)
	}
}

func TestLazyDeadlineValueDelegates(t *testing.T) {
	type key struct{}
	parent := context.WithValue(context.Background(), key{}, "v")
	ctx, cancel := withLazyDeadline(parent, time.Hour)
	defer cancel()
	if got := ctx.Value(key{}); got != "v" {
		t.Errorf("Value = %v, want v", got)
	}
}

func TestLazyDeadlineConcurrent(t *testing.T) {
	ctx, cancel := withLazyDeadline(context.Background(), 5*time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				ctx.Err()
				if j == 50 {
					<-ctx.Done()
				}
			}
			if i == 3 {
				cancel()
			}
		}(i)
	}
	wg.Wait()
	if ctx.Err() == nil {
		t.Error("context should have ended")
	}
}
