package httpapi

// Chaos middleware: deterministic, seedable fault injection for
// resilience testing. Injected latency holds an inflight slot exactly
// like a slow disk stalling a journal append would, so overload tests
// can drive the server past its deadline and admission limits and
// assert that every response is still a structured error — the
// fault-injection analogue of internal/faultfs, one layer up.

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// ChaosConfig configures injected faults. The zero value injects
// nothing.
type ChaosConfig struct {
	// Latency is added to every request before the handler runs. The
	// sleep respects the request context: a deadline or disconnect cuts
	// it short and the request answers the structured deadline error,
	// which is exactly what overload tests assert.
	Latency time.Duration
	// Jitter adds a uniformly distributed extra in [0, Jitter) on top
	// of Latency.
	Jitter time.Duration
	// ErrorRate is the probability in [0, 1] that a request is failed
	// with 500 {"code":"chaos"} after the latency injection.
	ErrorRate float64
	// Seed seeds the fault source: the same seed over the same serial
	// request sequence draws the same faults. (Concurrent requests
	// contend for the source, so cross-request ordering is up to the
	// scheduler; each individual draw is still from the seeded stream.)
	Seed int64
}

// WithChaos enables fault injection for every non-probe request.
// Chaos runs after admission control (rate limit, inflight semaphore)
// and before the handler, so injected latency occupies an inflight
// slot and genuinely starves capacity, the way a real slow dependency
// would. Injections are counted in cp_chaos_injected_total by kind.
func WithChaos(cfg ChaosConfig) ServerOption {
	return func(s *Server) {
		if cfg.Latency > 0 || cfg.Jitter > 0 || cfg.ErrorRate > 0 {
			s.chaos = &chaos{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
		}
	}
}

// chaos is the installed fault injector.
type chaos struct {
	cfg ChaosConfig
	mu  sync.Mutex
	rng *rand.Rand
}

// draw picks this request's faults from the seeded stream.
func (c *chaos) draw() (delay time.Duration, fail bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delay = c.cfg.Latency
	if c.cfg.Jitter > 0 {
		delay += time.Duration(c.rng.Int63n(int64(c.cfg.Jitter)))
	}
	if c.cfg.ErrorRate > 0 {
		fail = c.rng.Float64() < c.cfg.ErrorRate
	}
	return delay, fail
}

// intercept applies the drawn faults; handled reports that a response
// was written and the handler must not run.
func (c *chaos) intercept(s *Server, w http.ResponseWriter, r *http.Request) (handled bool) {
	delay, fail := c.draw()
	if delay > 0 {
		s.metrics.chaosInjected("latency")
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-r.Context().Done():
			t.Stop()
			s.writeCtxError(w, fmt.Errorf("httpapi: request ended during chaos latency: %w", r.Context().Err()))
			return true
		}
	}
	if fail {
		s.metrics.chaosInjected("error")
		writeError(w, http.StatusInternalServerError, "chaos",
			fmt.Errorf("httpapi: chaos-injected failure"))
		return true
	}
	return false
}
