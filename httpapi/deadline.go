package httpapi

// A lighter context.WithTimeout for the per-request deadline. The
// serving hot path only ever polls ctx.Err() — the cooperative checks
// inside the profile-tree and relation scan loops — and a poll can
// compute expiry from the clock on demand. Arming a runtime timer and
// linking into the parent's cancellation tree, which is most of
// context.WithTimeout's per-request cost, is deferred until the first
// Done() call: only requests that actually queue for admission or sleep
// under chaos latency pay for it.

import (
	"context"
	"sync"
	"time"
)

// deadlineContext implements context.Context with an on-demand Done
// channel. The zero cost path is: one allocation, Err() reads the
// clock; Done() lazily arms the timer and (when the parent is
// cancellable) a watcher goroutine, both released by cancel, which the
// request's deferred cleanup always calls.
type deadlineContext struct {
	parent   context.Context
	deadline time.Time

	mu     sync.Mutex
	err    error
	done   chan struct{}
	closed bool
	timer  *time.Timer
}

// withLazyDeadline derives a deadline d from now on parent. The
// returned cancel must be called when the request finishes; it releases
// the timer and watcher if Done was ever requested.
func withLazyDeadline(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	dl := time.Now().Add(d)
	if pd, ok := parent.Deadline(); ok && pd.Before(dl) {
		dl = pd
	}
	c := &deadlineContext{parent: parent, deadline: dl}
	return c, c.cancel
}

func (c *deadlineContext) Deadline() (time.Time, bool) { return c.deadline, true }

func (c *deadlineContext) Value(key any) any { return c.parent.Value(key) }

// Err reports expiry on demand: a parent error wins, then the clock.
func (c *deadlineContext) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.errLocked()
}

func (c *deadlineContext) errLocked() error {
	if c.err == nil {
		if perr := c.parent.Err(); perr != nil {
			c.err = perr
		} else if !time.Now().Before(c.deadline) {
			c.err = context.DeadlineExceeded
		}
	}
	return c.err
}

// Done lazily creates the signalled channel: already-expired contexts
// get a closed channel, live ones arm the deadline timer and watch the
// parent so client disconnects still propagate to selecters.
func (c *deadlineContext) Done() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done == nil {
		c.done = make(chan struct{})
		if c.errLocked() != nil {
			c.closeLocked()
		} else {
			c.timer = time.AfterFunc(time.Until(c.deadline), c.expire)
			if pd := c.parent.Done(); pd != nil {
				go c.watchParent(pd, c.done)
			}
		}
	}
	return c.done
}

// expire is the timer callback.
func (c *deadlineContext) expire() {
	c.mu.Lock()
	if c.err == nil {
		c.err = context.DeadlineExceeded
	}
	c.closeLocked()
	c.mu.Unlock()
}

// watchParent propagates parent cancellation to done; it exits when
// done closes for any reason (deadline, cancel), so it never outlives
// the request.
func (c *deadlineContext) watchParent(parent <-chan struct{}, done chan struct{}) {
	select {
	case <-parent:
		c.mu.Lock()
		if c.err == nil {
			c.err = c.parent.Err()
		}
		c.closeLocked()
		c.mu.Unlock()
	case <-done:
	}
}

// cancel releases the timer and unblocks selecters; the context reports
// context.Canceled afterwards, like a stdlib CancelFunc. An already
// expired context keeps DeadlineExceeded (errLocked settles it first).
func (c *deadlineContext) cancel() {
	c.mu.Lock()
	if c.errLocked() == nil {
		c.err = context.Canceled
	}
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	if c.done != nil {
		c.closeLocked()
	}
	c.mu.Unlock()
}

func (c *deadlineContext) closeLocked() {
	if !c.closed && c.done != nil {
		c.closed = true
		close(c.done)
	}
}
