package httpapi

// Unit tests for the admission-control pieces: the token-bucket rate
// limiter (with an injected clock), request key attribution, the
// deadline-aware admit paths, and the determinism of the chaos fault
// stream.

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestRateLimiterRefill(t *testing.T) {
	rl := newRateLimiter(2, 2) // 2 rps, burst 2
	now := time.Unix(1000, 0)
	rl.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if _, ok := rl.allow("k"); !ok {
			t.Fatalf("request %d within burst should pass", i)
		}
	}
	retry, ok := rl.allow("k")
	if ok {
		t.Fatal("request beyond burst should be denied")
	}
	if retry <= 0 || retry > time.Second {
		t.Errorf("retryAfter = %v, want in (0, 500ms] at 2 rps (got full-token wait %v)", retry, retry)
	}
	// Half a second refills one token at 2 rps.
	now = now.Add(500 * time.Millisecond)
	if _, ok := rl.allow("k"); !ok {
		t.Error("refilled token should pass")
	}
	if _, ok := rl.allow("k"); ok {
		t.Error("bucket should be empty again")
	}
}

func TestRateLimiterDefaultBurst(t *testing.T) {
	if rl := newRateLimiter(2.5, 0); rl.burst != 3 {
		t.Errorf("burst = %v, want ceil(rate) = 3", rl.burst)
	}
	if rl := newRateLimiter(0.1, 0); rl.burst != 1 {
		t.Errorf("burst = %v, want minimum 1", rl.burst)
	}
}

func TestRateLimiterSweep(t *testing.T) {
	rl := newRateLimiter(1, 1)
	now := time.Unix(1000, 0)
	rl.now = func() time.Time { return now }
	if _, ok := rl.allow("busy"); !ok {
		t.Fatal("first request should pass")
	}
	rl.buckets["stale"] = &tokenBucket{tokens: 1, last: now.Add(-time.Hour)}
	rl.sweepLocked(now)
	if _, ok := rl.buckets["stale"]; ok {
		t.Error("fully refilled bucket should be swept")
	}
	if _, ok := rl.buckets["busy"]; !ok {
		t.Error("drained bucket must survive the sweep")
	}
}

func TestRateKey(t *testing.T) {
	req := httptest.NewRequest("GET", "/env", nil)
	if k := rateKey(req); k != "default" {
		t.Errorf("bare request key = %q, want default", k)
	}
	req = httptest.NewRequest("GET", "/env?user=alice", nil)
	if k := rateKey(req); k != "alice" {
		t.Errorf("?user key = %q, want alice", k)
	}
	req.Header.Set("X-API-Key", "secret")
	if k := rateKey(req); k != "secret" {
		t.Errorf("header key = %q, want secret (header wins over ?user)", k)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	if s := retryAfterSeconds(time.Millisecond); s != "1" {
		t.Errorf("tiny wait = %q, want minimum 1", s)
	}
	if s := retryAfterSeconds(2300 * time.Millisecond); s != "3" {
		t.Errorf("2.3s wait = %q, want ceil 3", s)
	}
}

func TestEstimateQueueWait(t *testing.T) {
	s := &Server{sem: make(chan struct{}, 2)}
	if est := s.estimateQueueWait(); est != 0 {
		t.Errorf("estimate before any observation = %v, want 0", est)
	}
	s.observeService(100 * time.Millisecond)
	// One waiter (this request) over 2 slots draining every 100ms.
	if est := s.estimateQueueWait(); est < 40*time.Millisecond || est > 60*time.Millisecond {
		t.Errorf("estimate = %v, want ~50ms", est)
	}
}

// admitFixture returns a server whose single inflight slot is already
// taken, so admit must queue or reject.
func admitFixture() *Server {
	s := &Server{sem: make(chan struct{}, 1)}
	s.sem <- struct{}{}
	return s
}

func TestAdmitOverloadedWithoutDeadline(t *testing.T) {
	s := admitFixture()
	rec := httptest.NewRecorder()
	if s.admit(rec, httptest.NewRequest("GET", "/env", nil)) {
		t.Fatal("full semaphore without deadline should shed")
	}
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", rec.Code)
	}
	if e := decodeErr(t, rec.Body.String()); e.Code != "overloaded" {
		t.Errorf("code = %q, want overloaded", e.Code)
	}
}

func TestAdmitDeadlineWhileQueued(t *testing.T) {
	s := admitFixture()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest("GET", "/env", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	start := time.Now()
	if s.admit(rec, req) {
		t.Fatal("deadline should fire before a slot frees")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("admit blocked %v past the deadline", elapsed)
	}
	if e := decodeErr(t, rec.Body.String()); e.Code != "deadline" {
		t.Errorf("code = %q, want deadline", e.Code)
	}
}

func TestAdmitPredictiveShed(t *testing.T) {
	s := admitFixture()
	s.observeService(2 * time.Second) // EWMA far beyond any test deadline
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest("GET", "/env", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	if s.admit(rec, req) {
		t.Fatal("predicted queue wait beyond the deadline should shed on arrival")
	}
	if e := decodeErr(t, rec.Body.String()); e.Code != "shed" {
		t.Errorf("code = %q, want shed", e.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
}

func TestAdmitReleasedSlot(t *testing.T) {
	s := &Server{sem: make(chan struct{}, 1)}
	rec := httptest.NewRecorder()
	if !s.admit(rec, httptest.NewRequest("GET", "/env", nil)) {
		t.Fatal("free slot should admit immediately")
	}
	<-s.sem // release like ServeHTTP's deferred drain
	if !s.admit(httptest.NewRecorder(), httptest.NewRequest("GET", "/env", nil)) {
		t.Fatal("released slot should admit the next request")
	}
}

func TestChaosDeterministicStream(t *testing.T) {
	cfg := ChaosConfig{Latency: time.Millisecond, Jitter: 50 * time.Millisecond, ErrorRate: 0.3, Seed: 7}
	a := &chaos{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	b := &chaos{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	for i := 0; i < 100; i++ {
		da, fa := a.draw()
		db, fb := b.draw()
		if da != db || fa != fb {
			t.Fatalf("draw %d diverged: (%v,%v) vs (%v,%v)", i, da, fa, db, fb)
		}
	}
}

func TestWithChaosZeroConfigDisabled(t *testing.T) {
	s := &Server{}
	WithChaos(ChaosConfig{Seed: 99})(s)
	if s.chaos != nil {
		t.Error("zero fault rates should leave chaos disabled")
	}
	WithChaos(ChaosConfig{ErrorRate: 1})(s)
	if s.chaos == nil {
		t.Fatal("error-rate config should install chaos")
	}
	rec := httptest.NewRecorder()
	if !s.chaos.intercept(s, rec, httptest.NewRequest("GET", "/env", nil)) {
		t.Fatal("ErrorRate 1 must fail every request")
	}
	if e := decodeErr(t, rec.Body.String()); e.Code != "chaos" {
		t.Errorf("code = %q, want chaos", e.Code)
	}
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
}
