package httpapi

// End-to-end degraded-mode serving: ENOSPC injected under the journal
// flips the server read-only — mutations get structured 503 "degraded"
// with a Retry-After hint while reads and resolution keep serving —
// and the probe loop flips it back once the fault lifts.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"contextpref"
	"contextpref/internal/dataset"
	"contextpref/internal/faultfs"
	"contextpref/internal/journal"
)

type errBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func decodeErr(t *testing.T, body string) errBody {
	t.Helper()
	var e errBody
	if err := json.Unmarshal([]byte(body), &e); err != nil {
		t.Fatalf("error body %q: %v", body, err)
	}
	return e
}

func del(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, b.String()
}

func TestDegradedModeServing(t *testing.T) {
	env, err := dataset.RealEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	rel, err := dataset.POIs(env, 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultfs.NewInject(faultfs.NewMemFS())
	j, recs, err := journal.OpenFS(inj, "/store", journal.WithRetry(1, time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	sys, err := contextpref.NewSystem(env, rel)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Replay(recs); err != nil {
		t.Fatal(err)
	}
	sys.SetPersister(contextpref.NewJournalPersister(j), "")
	health := contextpref.NewHealth()
	sys.SetHealth(health)
	srv, err := New(sys, WithHealth(health))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Healthy: mutations and reads work.
	resp, body := post(t, ts.URL+"/preferences", "text/plain", "[] => type = museum : 0.8")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy POST = %d: %s", resp.StatusCode, body)
	}
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy readyz = %d", resp.StatusCode)
	}

	// The disk fills up: every journal write fails with ENOSPC.
	inj.AddFault(faultfs.Fault{Op: faultfs.OpWrite, Path: "journal", Err: faultfs.ErrNoSpace})

	resp, body = post(t, ts.URL+"/preferences", "text/plain", "[] => type = park : 0.4")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST on full disk = %d: %s", resp.StatusCode, body)
	}
	if e := decodeErr(t, body); e.Code != "degraded" {
		t.Errorf("POST on full disk code = %q, want %q (%s)", e.Code, "degraded", e.Error)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded mutation response missing Retry-After")
	}
	// Every mutation endpoint is read-only now.
	resp, body = del(t, ts.URL+"/preferences", "[] => type = museum : 0.8")
	if e := decodeErr(t, body); resp.StatusCode != http.StatusServiceUnavailable || e.Code != "degraded" {
		t.Errorf("DELETE while degraded = %d %q, want 503 degraded", resp.StatusCode, e.Code)
	}
	// Reads and resolution keep serving from memory.
	if resp, body := get(t, ts.URL+"/preferences"); resp.StatusCode != http.StatusOK ||
		!strings.Contains(body, "museum") {
		t.Errorf("GET /preferences while degraded = %d: %s", resp.StatusCode, body)
	}
	if resp, body := get(t, ts.URL+"/resolve?state=friends,t03,ath_r01"); resp.StatusCode != http.StatusOK {
		t.Errorf("GET /resolve while degraded = %d: %s", resp.StatusCode, body)
	}
	if resp, _ := get(t, ts.URL+"/stats"); resp.StatusCode != http.StatusOK {
		t.Errorf("GET /stats while degraded = %d", resp.StatusCode)
	}
	// Readiness reflects the read-only state.
	resp, body = get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "degraded") {
		t.Errorf("readyz while degraded = %d: %s", resp.StatusCode, body)
	}

	// The probe loop re-tests the store and flips back once space frees.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go health.Run(ctx, time.Millisecond, j.Probe)
	inj.Lift()
	deadline := time.Now().Add(5 * time.Second)
	for health.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("store never returned to healthy after the fault lifted")
		}
		time.Sleep(time.Millisecond)
	}
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Errorf("readyz after recovery = %d", resp.StatusCode)
	}
	resp, body = post(t, ts.URL+"/preferences", "text/plain", "[] => type = park : 0.4")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("POST after recovery = %d: %s", resp.StatusCode, body)
	}

	// Everything acknowledged (and nothing else) survives a restart.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs2, err := journal.OpenFS(inj, "/store")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != 2 {
		t.Errorf("restart replayed %d records, want the 2 acknowledged adds: %+v", len(recs2), recs2)
	}
}

func TestMaxBodyBytes(t *testing.T) {
	env, err := dataset.RealEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	rel, err := dataset.POIs(env, 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := contextpref.NewSystem(env, rel)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, WithMaxBodyBytes(64))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	small := "[] => type = museum : 0.8"
	if resp, body := post(t, ts.URL+"/preferences", "text/plain", small); resp.StatusCode != http.StatusOK {
		t.Fatalf("small POST = %d: %s", resp.StatusCode, body)
	}
	big := strings.Repeat("# padding line\n", 32)
	resp, body := post(t, ts.URL+"/preferences", "text/plain", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized POST = %d: %s", resp.StatusCode, body)
	}
	if e := decodeErr(t, body); e.Code != "too_large" {
		t.Errorf("oversized POST code = %q, want %q", e.Code, "too_large")
	}
	resp, body = post(t, ts.URL+"/query", "application/json", `{"query":"`+strings.Repeat("x", 100)+`"}`)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized query = %d: %s", resp.StatusCode, body)
	}
}
