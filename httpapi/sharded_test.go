package httpapi

// Sharded serving: /readyz reports per-shard health, a degraded shard's
// mutations answer 503 "degraded" naming the shard while other shards'
// users keep mutating, and the store is only store-wide degraded when
// every shard is.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"contextpref"
	"contextpref/internal/dataset"
)

// shardedFixture builds a 2-shard directory with directly controllable
// health trackers (no journal — health is what this test exercises) and
// one known user per shard. Extra server options layer on top of the
// shard-health wiring (e.g. WithShardReplica for follower tests).
func shardedFixture(t *testing.T, opts ...ServerOption) (*Server, []*contextpref.Health, [2]string) {
	t.Helper()
	env, err := dataset.RealEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	rel, err := dataset.POIs(env, 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := contextpref.NewDirectory(env, rel, contextpref.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		dir.SetShardHealth(i, contextpref.NewShardHealth(i))
	}
	hs := dir.ShardHealths()
	var users [2]string
	for i := 0; len(users[0]) == 0 || len(users[1]) == 0; i++ {
		name := fmt.Sprintf("u-%d", i)
		users[dir.ShardOf(name)] = name
	}
	srv, err := NewMultiUser(dir, append([]ServerOption{WithShardHealth(hs)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return srv, hs, users
}

func TestShardedReadyzAndDegraded(t *testing.T) {
	srv, hs, users := shardedFixture(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	type readyz struct {
		Status string `json:"status"`
		Shards []struct {
			Shard  int    `json:"shard"`
			Status string `json:"status"`
		} `json:"shards"`
	}
	fetchReady := func() (int, readyz) {
		t.Helper()
		resp, body := get(t, ts.URL+"/readyz")
		var rz readyz
		if err := json.Unmarshal([]byte(body), &rz); err != nil {
			t.Fatalf("readyz body %q: %v", body, err)
		}
		return resp.StatusCode, rz
	}

	// Baseline: create one user per shard while everything is healthy
	// (first contact creates the profile, which is itself a mutation).
	for _, u := range users {
		if resp, body := post(t, ts.URL+"/preferences?user="+u, "text/plain", "[] => type = park : 0.4"); resp.StatusCode != http.StatusOK {
			t.Fatalf("baseline POST for %q = %d: %s", u, resp.StatusCode, body)
		}
	}

	// All healthy: 200 "ready" with one entry per shard.
	code, rz := fetchReady()
	if code != http.StatusOK || rz.Status != "ready" || len(rz.Shards) != 2 {
		t.Fatalf("healthy readyz = %d %+v, want 200 ready with 2 shards", code, rz)
	}
	for i, sh := range rz.Shards {
		if sh.Shard != i || sh.Status != "healthy" {
			t.Errorf("readyz shard entry %d = %+v, want {%d healthy}", i, sh, i)
		}
	}

	// Shard 1 degrades: partial — still 200, per-shard states split, and
	// mutations route by user: shard 1's user gets 503 naming shard 1,
	// shard 0's user keeps mutating.
	hs[1].MarkDegraded(fmt.Errorf("disk full"))
	code, rz = fetchReady()
	if code != http.StatusOK || rz.Status != "degraded_partial" {
		t.Fatalf("partial readyz = %d %q, want 200 degraded_partial", code, rz.Status)
	}
	if rz.Shards[0].Status != "healthy" || rz.Shards[1].Status != "degraded" {
		t.Errorf("partial readyz shards = %+v", rz.Shards)
	}

	resp, body := post(t, ts.URL+"/preferences?user="+users[1], "text/plain", "[] => type = museum : 0.8")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST to degraded shard = %d: %s", resp.StatusCode, body)
	}
	var e struct {
		Code  string `json:"code"`
		Shard *int   `json:"shard"`
	}
	if err := json.Unmarshal([]byte(body), &e); err != nil {
		t.Fatalf("degraded body %q: %v", body, err)
	}
	if e.Code != "degraded" || e.Shard == nil || *e.Shard != 1 {
		t.Errorf("degraded mutation = code %q shard %v, want degraded shard 1", e.Code, e.Shard)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded mutation response missing Retry-After")
	}
	if resp, body := post(t, ts.URL+"/preferences?user="+users[0], "text/plain", "[] => type = museum : 0.8"); resp.StatusCode != http.StatusOK {
		t.Errorf("POST to healthy shard during partial degradation = %d: %s", resp.StatusCode, body)
	}
	// Reads on the degraded shard's user still serve.
	if resp, _ := get(t, ts.URL+"/preferences?user="+users[1]); resp.StatusCode != http.StatusOK {
		t.Errorf("GET on degraded shard = %d", resp.StatusCode)
	}

	// Every shard degraded: now the store as a whole is 503 "degraded".
	hs[0].MarkDegraded(fmt.Errorf("disk full too"))
	code, rz = fetchReady()
	if code != http.StatusServiceUnavailable || rz.Status != "degraded" {
		t.Fatalf("all-degraded readyz = %d %q, want 503 degraded", code, rz.Status)
	}

	// Recovery restores ready.
	hs[0].MarkHealthy()
	hs[1].MarkHealthy()
	code, rz = fetchReady()
	if code != http.StatusOK || rz.Status != "ready" {
		t.Fatalf("recovered readyz = %d %q, want 200 ready", code, rz.Status)
	}
	if resp, body := post(t, ts.URL+"/preferences?user="+users[1], "text/plain", "[] => type = museum : 0.8"); resp.StatusCode != http.StatusOK {
		t.Errorf("POST after recovery = %d: %s", resp.StatusCode, body)
	}
}

// TestShardedFollowerReadyzAndStaleGate: a sharded follower reports
// every shard's segment-stream lag on /readyz, marks lagging shards
// stale individually, and gates reads per shard — a user on a fresh
// shard keeps serving while the stale shard's users answer 503 naming
// their shard, and the all-shard /users enumeration is gated on the
// worst shard's lag.
func TestShardedFollowerReadyzAndStaleGate(t *testing.T) {
	const maxStale = 100 * time.Millisecond
	var mu sync.Mutex
	lags := [2]time.Duration{time.Millisecond, time.Millisecond}
	setLag := func(shard int, d time.Duration) {
		mu.Lock()
		lags[shard] = d
		mu.Unlock()
	}
	srv, hs, users := shardedFixture(t, WithShardReplica(func(shard int) time.Duration {
		mu.Lock()
		defer mu.Unlock()
		return lags[shard]
	}, maxStale))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	type readyz struct {
		Status string `json:"status"`
		Shards []struct {
			Shard      int      `json:"shard"`
			Status     string   `json:"status"`
			LagSeconds *float64 `json:"lag_seconds"`
		} `json:"shards"`
	}
	fetchReady := func() (int, readyz) {
		t.Helper()
		resp, body := get(t, ts.URL+"/readyz")
		var rz readyz
		if err := json.Unmarshal([]byte(body), &rz); err != nil {
			t.Fatalf("readyz body %q: %v", body, err)
		}
		return resp.StatusCode, rz
	}

	// Seed one user per shard while still a leader, then follow: a
	// node's shards change role together.
	for _, u := range users {
		if resp, body := post(t, ts.URL+"/preferences?user="+u, "text/plain", "[] => type = park : 0.4"); resp.StatusCode != http.StatusOK {
			t.Fatalf("seed POST for %q = %d: %s", u, resp.StatusCode, body)
		}
	}
	contextpref.SetRoleAll(hs, contextpref.RoleFollower)

	// Fresh on every segment stream: 200 "following", each shard
	// carrying its own lag.
	code, rz := fetchReady()
	if code != http.StatusOK || rz.Status != "following" || len(rz.Shards) != 2 {
		t.Fatalf("fresh follower readyz = %d %+v, want 200 following with 2 shards", code, rz)
	}
	for i, sh := range rz.Shards {
		if sh.Status != "following" || sh.LagSeconds == nil {
			t.Errorf("readyz shard %d = %+v, want following with lag_seconds", i, sh)
		}
	}

	// Shard 1's stream stalls: partial — its shard is marked stale with
	// the real lag, the store stays 200, and reads split per shard.
	setLag(1, time.Hour)
	code, rz = fetchReady()
	if code != http.StatusOK || rz.Status != "stale_partial" {
		t.Fatalf("partial-stale readyz = %d %q, want 200 stale_partial", code, rz.Status)
	}
	if rz.Shards[0].Status != "following" || rz.Shards[1].Status != "stale" {
		t.Errorf("partial-stale shards = %+v", rz.Shards)
	}
	if rz.Shards[1].LagSeconds == nil || *rz.Shards[1].LagSeconds < 3599 {
		t.Errorf("stale shard lag = %v, want ~3600s", rz.Shards[1].LagSeconds)
	}
	if resp, _ := get(t, ts.URL+"/preferences?user="+users[0]); resp.StatusCode != http.StatusOK {
		t.Errorf("read on fresh shard = %d, want 200", resp.StatusCode)
	}
	resp, body := get(t, ts.URL+"/preferences?user="+users[1])
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("read on stale shard = %d: %s", resp.StatusCode, body)
	}
	var e struct {
		Code  string `json:"code"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &e); err != nil {
		t.Fatalf("stale body %q: %v", body, err)
	}
	if e.Code != "stale" || !strings.Contains(e.Error, "shard 1") {
		t.Errorf("stale read = code %q error %q, want stale naming shard 1", e.Code, e.Error)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("stale read response missing Retry-After")
	}
	// The all-shard /users enumeration is gated on the worst shard: a
	// stale shard could hide recently created users.
	if resp, body := get(t, ts.URL+"/users"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/users with one stale shard = %d: %s", resp.StatusCode, body)
	}

	// Every stream stale: the store as a whole is 503 "stale".
	setLag(0, time.Hour)
	if code, rz := fetchReady(); code != http.StatusServiceUnavailable || rz.Status != "stale" {
		t.Fatalf("all-stale readyz = %d %q, want 503 stale", code, rz.Status)
	}

	// A degraded shard reports degraded even while its stream lags —
	// degradation is the stronger (read-only) state.
	hs[1].MarkDegraded(fmt.Errorf("segment wedged"))
	if _, rz := fetchReady(); rz.Shards[1].Status != "degraded" {
		t.Errorf("degraded+stale shard = %+v, want degraded", rz.Shards[1])
	}
	hs[1].MarkHealthy()

	// Streams recover: back to 200 "following", reads serve everywhere.
	setLag(0, time.Millisecond)
	setLag(1, time.Millisecond)
	if code, rz := fetchReady(); code != http.StatusOK || rz.Status != "following" {
		t.Fatalf("recovered readyz = %d %q, want 200 following", code, rz.Status)
	}
	if resp, _ := get(t, ts.URL+"/preferences?user="+users[1]); resp.StatusCode != http.StatusOK {
		t.Errorf("read after recovery = %d, want 200", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/users"); resp.StatusCode != http.StatusOK {
		t.Errorf("/users after recovery = %d, want 200", resp.StatusCode)
	}

	// Promotion in flight: the node as a whole answers 503 "promoting".
	contextpref.SetRoleAll(hs, contextpref.RolePromoting)
	if code, rz := fetchReady(); code != http.StatusServiceUnavailable || rz.Status != "promoting" {
		t.Fatalf("promoting readyz = %d %q, want 503 promoting", code, rz.Status)
	}
}
