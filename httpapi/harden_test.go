package httpapi

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	"contextpref"
	"contextpref/internal/dataset"
	"contextpref/internal/journal"
)

func newFixture(t *testing.T) (*contextpref.Environment, *contextpref.Relation) {
	t.Helper()
	env, err := dataset.RealEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	rel, err := dataset.POIs(env, 120, 7)
	if err != nil {
		t.Fatal(err)
	}
	return env, rel
}

func TestHealthEndpoints(t *testing.T) {
	env, rel := newFixture(t)
	sys, err := contextpref.NewSystem(env, rel)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Errorf("healthz = %d %q", resp.StatusCode, body)
	}
	resp, body = get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"ready"`) {
		t.Errorf("readyz = %d %q", resp.StatusCode, body)
	}

	srv.SetDraining(true)
	resp, body = get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, `"draining"`) {
		t.Errorf("readyz while draining = %d %q", resp.StatusCode, body)
	}
	// Liveness is unaffected by draining.
	resp, _ = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz while draining = %d", resp.StatusCode)
	}
	srv.SetDraining(false)
	if resp, _ = get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Errorf("readyz after drain cleared = %d", resp.StatusCode)
	}
}

// TestErrorCodes: error responses carry machine-readable codes, and
// conflicts are detected via the typed error, not string matching.
func TestErrorCodes(t *testing.T) {
	ts := newServer(t)

	decode := func(body string) map[string]string {
		var m map[string]string
		if err := json.Unmarshal([]byte(body), &m); err != nil {
			t.Fatalf("error body %q: %v", body, err)
		}
		return m
	}

	resp, body := post(t, ts.URL+"/preferences", "text/plain", "not a preference")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage add = %d", resp.StatusCode)
	}
	if m := decode(body); m["code"] != "bad_request" || m["error"] == "" {
		t.Errorf("garbage add body = %v", m)
	}

	pref := "[accompanying_people = friends] => type = brewery : 0.9"
	if resp, _ := post(t, ts.URL+"/preferences", "text/plain", pref); resp.StatusCode != http.StatusOK {
		t.Fatalf("add = %d", resp.StatusCode)
	}
	conflicting := "[accompanying_people = friends] => type = brewery : 0.2"
	resp, body = post(t, ts.URL+"/preferences", "text/plain", conflicting)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting add = %d %q", resp.StatusCode, body)
	}
	if m := decode(body); m["code"] != "conflict" {
		t.Errorf("conflict body = %v", m)
	}
}

// TestRequestID: responses echo an incoming X-Request-ID and mint one
// otherwise.
func TestRequestID(t *testing.T) {
	ts := newServer(t)

	req, _ := http.NewRequest("GET", ts.URL+"/stats", nil)
	req.Header.Set("X-Request-ID", "abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "abc-123" {
		t.Errorf("echoed request id = %q", got)
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got == "" {
		t.Error("no request id minted")
	}
}

// TestPanicRecovery: a panicking handler yields a 500 JSON error, not a
// dropped connection, and the server keeps serving.
func TestPanicRecovery(t *testing.T) {
	env, rel := newFixture(t)
	sys, err := contextpref.NewSystem(env, rel)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys)
	if err != nil {
		t.Fatal(err)
	}
	srv.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	log.SetOutput(io.Discard)
	defer log.SetOutput(os.Stderr)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := get(t, ts.URL+"/boom")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("panic = %d %q", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"internal"`) {
		t.Errorf("panic body = %q", body)
	}
	if resp, _ := get(t, ts.URL+"/stats"); resp.StatusCode != http.StatusOK {
		t.Errorf("server dead after panic: %d", resp.StatusCode)
	}
}

// TestMaxInflight: with a saturated semaphore, requests shed with 503 +
// "overloaded" while health probes still answer.
func TestMaxInflight(t *testing.T) {
	env, rel := newFixture(t)
	sys, err := contextpref.NewSystem(env, rel)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, WithMaxInflight(1))
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	entered := make(chan struct{})
	srv.mux.HandleFunc("GET /slow", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(ts.URL + "/slow")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered // the slot is held

	resp, body := get(t, ts.URL+"/stats")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("overloaded = %d %q", resp.StatusCode, body)
	}
	if !strings.Contains(body, `"overloaded"`) {
		t.Errorf("overloaded body = %q", body)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q", got)
	}
	// Probes bypass the limiter.
	if resp, _ := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz while saturated = %d", resp.StatusCode)
	}
	close(release)
	<-done
	if resp, _ := get(t, ts.URL+"/stats"); resp.StatusCode != http.StatusOK {
		t.Errorf("after release = %d", resp.StatusCode)
	}
}

// TestMultiUserJournalStress hammers a journaled multi-user server with
// parallel adds, removes, queries, exports, and user drops; run under
// -race this is the concurrency soak for the persistence path. It
// finishes by crash-recovering and checking the surviving users replay.
func TestMultiUserJournalStress(t *testing.T) {
	env, rel := newFixture(t)
	store := t.TempDir()
	j, _, err := journal.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := contextpref.NewDirectory(env, rel)
	if err != nil {
		t.Fatal(err)
	}
	dir.SetPersister(contextpref.NewJournalPersister(j))
	srv, err := NewMultiUser(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	client := ts.Client()
	do := func(req *http.Request) {
		resp, err := client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	const workers = 8
	iters := 25
	if testing.Short() {
		iters = 5
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			user := fmt.Sprintf("user%d", w%4) // contended users
			for i := 0; i < iters; i++ {
				pref := fmt.Sprintf("[time = t%02d] => type = museum : 0.%d", i%12+1, i%9+1)
				req, _ := http.NewRequest("POST", ts.URL+"/preferences?user="+user, strings.NewReader(pref))
				do(req)
				req, _ = http.NewRequest("GET", ts.URL+"/preferences?user="+user, nil)
				do(req)
				req, _ = http.NewRequest("DELETE", ts.URL+"/preferences?user="+user, strings.NewReader(pref))
				do(req)
				body := fmt.Sprintf(`{"query":"top 3 where type = museum","current":["friends","t%02d","ath_r01"]}`, i%12+1)
				req, _ = http.NewRequest("POST", ts.URL+"/query?user="+user, strings.NewReader(body))
				do(req)
				if i%10 == 9 {
					dir.Remove(fmt.Sprintf("user%d", (w+2)%4))
				}
			}
		}()
	}
	wg.Wait()

	// Crash without snapshot, then replay the full journal.
	wantUsers := dir.Users()
	wantExports := map[string]string{}
	for _, u := range wantUsers {
		sys, _ := dir.Lookup(u)
		text, err := sys.ExportProfile()
		if err != nil {
			t.Fatal(err)
		}
		wantExports[u] = text
	}
	j.Close()

	_, recs, err := journal.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	dir2, err := contextpref.NewDirectory(env, rel)
	if err != nil {
		t.Fatal(err)
	}
	if err := dir2.Replay(recs); err != nil {
		t.Fatal(err)
	}
	gotUsers := dir2.Users()
	if len(gotUsers) != len(wantUsers) {
		t.Fatalf("recovered users = %v, want %v", gotUsers, wantUsers)
	}
	for _, u := range wantUsers {
		sys, ok := dir2.Lookup(u)
		if !ok {
			t.Fatalf("user %q missing after replay", u)
		}
		text, err := sys.ExportProfile()
		if err != nil {
			t.Fatal(err)
		}
		if text != wantExports[u] {
			t.Errorf("user %q export mismatch after replay", u)
		}
	}
}

// TestKillAndRecoverMidStream truncates the journal at an arbitrary
// byte offset — a crash mid-write — and verifies the store reopens to a
// valid prefix of the history, replayable without error.
func TestKillAndRecoverMidStream(t *testing.T) {
	env, rel := newFixture(t)
	store := t.TempDir()
	j, _, err := journal.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := contextpref.NewSystem(env, rel)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetPersister(contextpref.NewJournalPersister(j), "")
	for i := 1; i <= 8; i++ {
		pref := fmt.Sprintf("[time = t%02d] => type = museum : 0.%d", i, i)
		if err := sys.LoadProfile(pref); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	jpath := store + "/journal.cpj"
	full, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file mid-way through the final record.
	cut := len(full) - len(full)/5
	if err := os.WriteFile(jpath, full[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := journal.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := contextpref.NewSystem(env, rel)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys2.Replay(recs); err != nil {
		t.Fatal(err)
	}
	n := sys2.NumPreferences()
	if n == 0 || n >= 8 {
		t.Errorf("recovered %d preferences from truncated journal, want a proper prefix", n)
	}
	// The reopened journal accepts new writes after the truncation.
	sys2.SetPersister(contextpref.NewJournalPersister(j2), "")
	if err := sys2.LoadProfile("[time = t12] => type = gallery : 0.5"); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	_, recs3, err := journal.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	sys3, err := contextpref.NewSystem(env, rel)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys3.Replay(recs3); err != nil {
		t.Fatal(err)
	}
	if got := sys3.NumPreferences(); got != n+1 {
		t.Errorf("after post-truncation write: %d preferences, want %d", got, n+1)
	}
}
