package httpapi

// Admission control: the per-user/per-key token-bucket rate limiter and
// the deadline-aware queue admission in front of the inflight
// semaphore. Together with the request timeout (WithRequestTimeout)
// they bound what one request — and one user — can cost the server:
//
//   - the rate limiter rejects a key's excess request rate on arrival
//     with 429 "rate_limited" before any work happens;
//   - admission to the inflight semaphore is deadline-aware: a request
//     whose estimated queue wait already exceeds its remaining deadline
//     is rejected immediately with 503 "shed" instead of queueing,
//     doing the work, and timing out anyway; a request that does queue
//     and sees its deadline fire before a slot frees answers 503
//     "deadline" without having done any work.
//
// Both paths answer before the handler runs, so overload converts into
// cheap structured errors instead of long queues.

import (
	"fmt"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"
)

// WithRequestTimeout enforces a server-side deadline on every non-probe
// request: the request context is given the deadline, every evaluation
// loop underneath (profile-tree resolution, relation scans) checks it
// cooperatively, and a request that exceeds it answers a structured
// 503 {"code":"deadline"} with a Retry-After hint. d <= 0 disables the
// server deadline (client disconnects still cancel the context).
func WithRequestTimeout(d time.Duration) ServerOption {
	return func(s *Server) {
		if d > 0 {
			s.reqTimeout = d
		}
	}
}

// WithRateLimit bounds each user/key to rps requests per second with
// the given burst capacity (burst <= 0 defaults to the ceiling of rps,
// minimum 1). Requests are attributed to the X-API-Key header when
// present, else the ?user query parameter, else "default"; a key over
// its budget answers 429 {"code":"rate_limited"} with a Retry-After
// hint and costs the server only the bucket lookup. rps <= 0 disables
// rate limiting.
func WithRateLimit(rps float64, burst int) ServerOption {
	return func(s *Server) {
		if rps > 0 {
			s.limiter = newRateLimiter(rps, burst)
		}
	}
}

// maxRateKeys bounds the rate limiter's bucket map: when exceeded,
// stale (fully refilled) buckets are swept. A key that was swept and
// returns simply starts from a full bucket again, so the bound costs
// accuracy only for keys idle long enough to deserve it.
const maxRateKeys = 8192

// tokenBucket is one key's budget.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// rateLimiter is a keyed token-bucket limiter. All state is behind one
// mutex: the critical section is a map lookup and a few floating-point
// operations, far cheaper than the request it gates.
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens added per second
	burst   float64 // bucket capacity
	buckets map[string]*tokenBucket
	now     func() time.Time // injectable for tests
}

// newRateLimiter builds a limiter; burst <= 0 defaults to ceil(rate)
// with a minimum of 1.
func newRateLimiter(rate float64, burst int) *rateLimiter {
	b := float64(burst)
	if burst <= 0 {
		b = math.Max(1, math.Ceil(rate))
	}
	return &rateLimiter{
		rate:    rate,
		burst:   b,
		buckets: make(map[string]*tokenBucket),
		now:     time.Now,
	}
}

// allow reports whether the key may proceed, consuming one token if so.
// When denied, retryAfter is the time until the bucket holds one token
// again, rounded up to a whole second for the Retry-After header.
func (rl *rateLimiter) allow(key string) (retryAfter time.Duration, ok bool) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	now := rl.now()
	b, exists := rl.buckets[key]
	if !exists {
		if len(rl.buckets) >= maxRateKeys {
			rl.sweepLocked(now)
		}
		b = &tokenBucket{tokens: rl.burst, last: now}
		rl.buckets[key] = b
	} else {
		b.tokens = math.Min(rl.burst, b.tokens+now.Sub(b.last).Seconds()*rl.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	wait := time.Duration((1 - b.tokens) / rl.rate * float64(time.Second))
	return wait, false
}

// sweepLocked drops buckets that have fully refilled — their key has
// been idle at least burst/rate seconds and loses nothing by starting
// fresh. Called with the lock held, only when the map is at capacity.
func (rl *rateLimiter) sweepLocked(now time.Time) {
	for k, b := range rl.buckets {
		if math.Min(rl.burst, b.tokens+now.Sub(b.last).Seconds()*rl.rate) >= rl.burst {
			delete(rl.buckets, k)
		}
	}
}

// rateKey attributes a request to a rate-limit bucket: the X-API-Key
// header when present, else the ?user query parameter, else "default".
// The query string is scanned directly instead of through url.Values —
// this runs on every request, before any admission decision, and must
// not allocate a parsed-query map just to read one key.
func rateKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	if u := userParam(r.URL.RawQuery); u != "" {
		return u
	}
	return "default"
}

// userParam extracts the first "user" value from a raw query string,
// unescaping only when the value actually contains escapes.
func userParam(raw string) string {
	for raw != "" {
		var kv string
		kv, raw, _ = strings.Cut(raw, "&")
		v, ok := strings.CutPrefix(kv, "user=")
		if !ok {
			continue
		}
		if strings.ContainsAny(v, "%+") {
			if u, err := url.QueryUnescape(v); err == nil {
				return u
			}
		}
		return v
	}
	return ""
}

// retryAfterSeconds renders a duration as a whole-second Retry-After
// value, minimum 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// observeService folds a completed request's service time into the
// exponentially weighted moving average the queue-wait estimate uses.
func (s *Server) observeService(elapsed time.Duration) {
	const alpha = 0.2
	sec := elapsed.Seconds()
	for {
		old := s.ewmaBits.Load()
		cur := math.Float64frombits(old)
		next := sec
		if old != 0 {
			next = (1-alpha)*cur + alpha*sec
		}
		if s.ewmaBits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// estimateQueueWait predicts how long a newly queued request would wait
// for an inflight slot: the requests already queued ahead of it (plus
// itself) divided by the drain rate, which is capacity slots retiring
// every EWMA service time. Zero until the first request completes.
func (s *Server) estimateQueueWait() time.Duration {
	ewma := math.Float64frombits(s.ewmaBits.Load())
	if ewma <= 0 || s.sem == nil {
		return 0
	}
	waiters := float64(s.queued.Load() + 1)
	return time.Duration(waiters * ewma / float64(cap(s.sem)) * float64(time.Second))
}

// admit acquires an inflight slot for the request, answering the
// structured rejection itself when admission fails. ok reports whether
// a slot was acquired (the caller must release it).
//
// Without a request deadline the behavior is the pre-deadline one:
// a full semaphore sheds immediately with 503 "overloaded". With a
// deadline, admission is deadline-aware: already-expired deadlines
// answer "deadline" on arrival, a predicted queue wait beyond the
// remaining deadline answers "shed" on arrival (the work would time
// out anyway — rejecting now costs nothing), and a request that queues
// answers "deadline" if the deadline fires before a slot frees.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (ok bool) {
	select {
	case s.sem <- struct{}{}:
		return true
	default:
	}
	ctx := r.Context()
	deadline, hasDeadline := ctx.Deadline()
	if !hasDeadline {
		s.metrics.shedded()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "overloaded",
			fmt.Errorf("httpapi: server overloaded, retry later"))
		return false
	}
	remaining := time.Until(deadline)
	if remaining <= 0 {
		s.writeCtxError(w, fmt.Errorf("httpapi: deadline expired on arrival: %w", ctx.Err()))
		return false
	}
	if est := s.estimateQueueWait(); est > remaining {
		s.metrics.shedded()
		w.Header().Set("Retry-After", retryAfterSeconds(est))
		writeError(w, http.StatusServiceUnavailable, "shed",
			fmt.Errorf("httpapi: estimated queue wait %v exceeds remaining deadline %v",
				est.Round(time.Millisecond), remaining.Round(time.Millisecond)))
		return false
	}
	s.queued.Add(1)
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return true
	case <-ctx.Done():
		s.writeCtxError(w, fmt.Errorf("httpapi: deadline fired while queued for admission: %w", ctx.Err()))
		return false
	}
}
